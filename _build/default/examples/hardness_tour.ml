(* A tour of the dichotomy (Theorem 3.4) and the hardness machinery:
   classify every FD set mentioned in the paper, then run one executable
   hardness gadget in each direction to see the correspondences hold on
   concrete instances.

   Run with:  dune exec examples/hardness_tour.exe *)

module R = Repair_core.Repair
open R.Relational
open R.Fd
open R.Sat
open R.Dichotomy
module W = R.Workload.Datasets

let banner title = Fmt.pr "@.=== %s ===@." title

let () =
  banner "Classification of the paper's FD sets";
  let sets =
    [ ("running example Δ", W.office_fds);
      ("Δ_A↔B→C (Example 3.1)", W.delta_a_b_c_marriage);
      ("Δ1 employee (Example 3.1)", W.delta_ssn);
      ("Δ0 purchase (intro)", W.delta0);
      ("Δ3 = {email→buyer, buyer→address}", W.delta3);
      ("Δ4 (intro)", W.delta4);
      ("passport (Example 4.7)", W.delta_passport);
      ("zip (Example 4.7)", W.delta_zip) ]
    @ W.table1
  in
  List.iter
    (fun (name, d) ->
      let s_side =
        if Simplify.succeeds d then "S-repair: P"
        else "S-repair: APX-complete"
      in
      let u_side =
        if R.Urepair.Opt_u_repair.tractable d then "U-repair: P"
        else "U-repair: not known tractable"
      in
      Fmt.pr "%-40s %-26s %s@." name s_side u_side)
    sets;

  banner "Example 3.5 derivation for the employee FD set";
  let _, trace = Simplify.run W.delta_ssn in
  Fmt.pr "%a" Simplify.pp_trace (W.delta_ssn, trace);

  banner "Five-class certificates (Example 3.8)";
  List.iter
    (fun (n, _, d) ->
      let c = Classify.certify d in
      Fmt.pr "Δ%d: %a@." n Classify.pp_certificate c)
    W.class_examples;

  banner "MAX-2-SAT gadget for Δ_A→B→C (Lemma A.5)";
  (* (x0 ∨ x1) ∧ (¬x0 ∨ x2) ∧ (¬x1 ∨ ¬x2) ∧ (x0 ∨ ¬x2) *)
  let f =
    Cnf.make ~n_vars:3
      [ [ Cnf.pos 0; Cnf.pos 1 ];
        [ Cnf.neg 0; Cnf.pos 2 ];
        [ Cnf.neg 1; Cnf.neg 2 ];
        [ Cnf.pos 0; Cnf.neg 2 ] ]
  in
  let _, maxsat = Max_sat.exact f in
  let gadget = R.Reductions.Sat_gadget.of_2cnf_chain f in
  let opt = R.Srepair.S_exact.optimal gadget.fds gadget.table in
  Fmt.pr
    "formula: %a@.max satisfiable clauses = %d; optimal S-repair keeps %d \
     of %d tuples (distance %g = #tuples − maxsat)@."
    Cnf.pp f maxsat (Table.size opt)
    (Table.size gadget.table)
    (Table.dist_sub opt gadget.table);

  banner "Vertex-cover gadget for Δ_A↔B→C (Theorem 4.10)";
  let g = R.Graph.Graph.of_edges 4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  let cover = R.Graph.Vertex_cover.exact g in
  let vg = R.Reductions.Vc_gadget.of_graph g in
  let u = R.Reductions.Vc_gadget.update_of_cover vg cover in
  Fmt.pr
    "C4 cycle: τ = %d; constructed consistent update has distance %g = \
     2|E| + τ = %g@."
    (List.length cover)
    (Table.dist_upd u vg.table)
    (R.Reductions.Vc_gadget.expected_distance vg ~tau:(List.length cover));

  banner "Fact-wise reduction for a class-5 set (Lemma A.17)";
  let d5 = Fd_set.parse "A B -> C; C -> A D" in
  let schema5 = Schema.make "R5" [ "A"; "B"; "C"; "D" ] in
  let cert = Classify.certify d5 in
  let red = Factwise.of_certificate schema5 d5 cert in
  let src =
    Table.of_tuples red.source_schema
      (List.map Tuple.make
         [ [ Value.int 1; Value.int 1; Value.int 1 ];
           [ Value.int 1; Value.int 1; Value.int 2 ];
           [ Value.int 1; Value.int 2; Value.int 1 ] ])
  in
  let img = Factwise.map_table red src in
  Fmt.pr
    "source over R(A,B,C) consistent w.r.t. %a: %b@.image over %a \
     consistent w.r.t. %a: %b (consistency preserved both ways)@."
    Fd_set.pp red.source_fds
    (Fd_set.satisfied_by red.source_fds src)
    Schema.pp red.target_schema Fd_set.pp d5
    (Fd_set.satisfied_by d5 img)
