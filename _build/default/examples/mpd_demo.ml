(* Probabilistic cleaning: the Most Probable Database problem (§3.4).

   Sensor readings arrive with confidences; the FD says a sensor has one
   location per reading window. We condition the tuple-independent
   distribution on the FD and return the most probable consistent world,
   via the log-odds reduction to optimal S-repairs (Theorem 3.10).

   Run with:  dune exec examples/mpd_demo.exe *)

module R = Repair_core.Repair
open R.Relational
open R.Fd
open R.Mpd

let schema = Schema.make "Reading" [ "sensor"; "window"; "location" ]

let fds = Fd_set.parse "sensor window -> location"

let reading ?(id = 0) ?(p = 0.9) tbl sensor window location =
  let id = if id = 0 then Table.size tbl + 1 else id in
  Table.add ~id ~weight:p tbl
    (Tuple.make [ Value.str sensor; Value.int window; Value.str location ])

let () =
  let t =
    Table.empty schema
    |> fun t -> reading t ~p:0.97 "s1" 1 "atrium"
    |> fun t -> reading t ~p:0.62 "s1" 1 "garage" (* conflicts with above *)
    |> fun t -> reading t ~p:0.55 "s1" 2 "atrium"
    |> fun t -> reading t ~p:0.58 "s1" 2 "lobby" (* conflicts with above *)
    |> fun t -> reading t ~p:1.0 "s2" 1 "roof" (* certain *)
    |> fun t -> reading t ~p:0.45 "s2" 1 "basement" (* < 1/2: never kept *)
    |> fun t -> reading t ~p:0.85 "s3" 1 "dock"
  in
  let pt = Prob_table.of_table t in
  Fmt.pr "Probabilistic readings:@.%a@." Table.pp t;

  (* Δ has a common lhs and passes OSRSucceeds, so MPD is in PTIME
     (Theorem 3.10). *)
  (match Mpd.solve ~strategy:Mpd.Poly fds pt with
  | Ok (Some world) ->
    Fmt.pr "Most probable consistent world (probability %.4f):@.%a@."
      (Prob_table.probability pt world)
      Table.pp world;
    (* Cross-check against brute force over all 2^7 worlds. *)
    let bf = Mpd.brute_force fds pt in
    Fmt.pr "Brute-force check: probability %.4f (%s)@."
      (Prob_table.probability pt bf)
      (if
         Prob_table.probability pt bf = Prob_table.probability pt world
       then "agrees"
       else "DISAGREES")
  | Ok None -> Fmt.pr "Certain tuples conflict: all worlds have probability 0@."
  | Error stuck ->
    Fmt.pr "Hard side of the dichotomy (stuck: %a)@." Fd_set.pp stuck);

  (* The reverse reduction (hardness direction): an unweighted table's
     maximum-cardinality repair is a most probable world at p = 0.9. *)
  let unweighted =
    Table.of_tuples schema
      (List.map Tuple.make
         [ [ Value.str "s9"; Value.int 1; Value.str "a" ];
           [ Value.str "s9"; Value.int 1; Value.str "b" ];
           [ Value.str "s9"; Value.int 2; Value.str "a" ] ])
  in
  let pt' = Mpd.of_unweighted_table unweighted in
  match Mpd.solve ~strategy:Mpd.Exact_search fds pt' with
  | Ok (Some world) ->
    Fmt.pr
      "@.Reverse reduction: max-cardinality repair of the unweighted table \
       keeps %d of %d tuples.@."
      (Table.size world) (Table.size unweighted)
  | _ -> assert false
