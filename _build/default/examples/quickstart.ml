(* Quickstart: the paper's running example (Figure 1) end to end.

   Run with:  dune exec examples/quickstart.exe *)

module R = Repair_core.Repair
open R.Relational
open R.Fd

let () =
  (* 1. Declare a schema and its functional dependencies. *)
  let schema = Schema.make "Office" [ "facility"; "room"; "floor"; "city" ] in
  let fds =
    Fd_set.parse "facility -> city; facility room -> floor"
  in

  (* 2. Build a weighted table; weights encode trust in each tuple. *)
  let row facility room floor city =
    Tuple.make
      [ Value.str facility; Value.str room; Value.int floor; Value.str city ]
  in
  let t =
    Table.of_list schema
      [ (1, 2.0, row "HQ" "322" 3 "Paris");
        (2, 1.0, row "HQ" "322" 30 "Madrid");
        (3, 1.0, row "HQ" "122" 1 "Madrid");
        (4, 2.0, row "Lab1" "B35" 3 "London") ]
  in
  Fmt.pr "Input table:@.%a@." Table.pp t;
  Fmt.pr "Satisfies Δ? %b@.@." (Fd_set.satisfied_by fds t);

  (* 3. Ask the driver for both kinds of optimal repair; it consults the
        dichotomy (Theorem 3.4) and picks the polynomial algorithm. *)
  let s = R.Driver.s_repair fds t in
  Fmt.pr "Optimal S-repair (deleted weight %g, via %s):@.%a@." s.distance
    s.method_used Table.pp s.result;

  let u = R.Driver.u_repair fds t in
  Fmt.pr "Optimal U-repair (update cost %g, via %s):@.%a@." u.distance
    u.method_used Table.pp u.result;

  (* 4. The complexity report the classification is based on. *)
  print_string (R.Driver.describe fds)
