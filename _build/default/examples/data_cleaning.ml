(* Data cleaning at (moderate) scale: the human-in-the-loop scenario from
   the paper's introduction. A purchase log integrated from two sources
   carries FDs {product → price, buyer → email}; source A is trusted twice
   as much as source B. We estimate dirtiness with the optimal-repair cost
   (the paper's second motivation) and then clean automatically.

   Run with:  dune exec examples/data_cleaning.exe *)

module R = Repair_core.Repair
open R.Relational
open R.Fd
open R.Workload

let schema =
  Schema.make "Purchase" [ "product"; "price"; "buyer"; "email"; "address" ]

let fds = Fd_set.parse "product -> price; buyer -> email"

let () =
  (* Generate a mostly-clean log and dirty it with 3% cell noise,
     simulating OCR/integration errors; trusted tuples get weight 2. *)
  let rng = Rng.make 2026 in
  let spec =
    { Gen_table.default with n = 400; domain_size = 40; noise = 0.03; zipf_s = 0.8 }
  in
  let t0 = Gen_table.dirty rng schema fds spec in
  let t =
    Table.map_weights t0 (fun i _ -> if i mod 2 = 0 then 2.0 else 1.0)
  in
  let violations = Fd_set.violations fds t in
  Fmt.pr "Log: %d tuples, %d conflicting pairs.@." (Table.size t)
    (List.length violations);

  (* Δ0 = {product → price, buyer → email} decomposes into two
     attribute-disjoint single-FD components: U-repairs are tractable
     (Example 4.2) while S-repairs are APX-complete (Example 3.5 family),
     so the driver solves U exactly and approximates S. *)
  Fmt.pr "@.%s@." (R.Driver.describe fds);

  let u = R.Driver.u_repair fds t in
  Fmt.pr "Update-based cleaning: %g weighted cell fixes (%s).@." u.distance
    u.method_used;
  assert (Fd_set.satisfied_by fds u.result);

  let s = R.Driver.s_repair fds t in
  Fmt.pr "Deletion-based cleaning: %g weighted deletions (%s%s).@."
    s.distance s.method_used
    (if s.optimal then ", optimal" else Fmt.str ", ≤ %g× optimal" s.ratio);
  assert (Fd_set.satisfied_by fds s.result);

  (* A second, larger workload: the embedded hospital provider directory
     (a classic data-cleaning benchmark shape; APX-hard FD set). *)
  let hospital = R.Workload.Datasets.hospital ~n:600 () in
  let he =
    R.Cleaning.Dirtiness.estimate R.Workload.Datasets.hospital_fds hospital
  in
  Fmt.pr "@.Hospital directory (600 rows): %a@." R.Cleaning.Dirtiness.pp he;

  (* Corollary 4.5 in action: dist_sub of the optimal S-repair is at most
     dist_upd of the optimal U-repair. *)
  Fmt.pr
    "@.Dirtiness estimate: at least %g weighted deletions, i.e. at most \
     %.1f%% of total weight %g.@."
    (u.distance /. 2.0 (* ratio bound: s.distance / 2 ≤ opt ≤ u.distance *))
    (100.0 *. s.distance /. Table.total_weight t)
    (Table.total_weight t)
