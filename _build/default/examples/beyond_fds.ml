(* Beyond plain FDs: the Section 5 extension directions in action —
   conditional FDs, binary denial constraints, mixed deletion/update
   repairs, and repair enumeration/counting.

   Run with:  dune exec examples/beyond_fds.exe *)

module R = Repair_core.Repair
open R.Relational
open R.Fd
module Cfd = R.Cfd.Cfd
module Denial = R.Denial.Denial
module Mixed = R.Mixed.Mixed_exact

let banner title = Fmt.pr "@.=== %s ===@." title

let schema = Schema.make "Cust" [ "country"; "zip"; "city" ]
let mk c z ci = Tuple.make [ Value.str c; Value.int z; Value.str ci ]

let () =
  banner "Conditional FDs (pattern tableaux)";
  (* Within the UK, zip determines city; zip 10001 is always NYC. *)
  let uk_zip = Cfd.parse "country='UK' zip -> city" in
  let nyc = Cfd.parse "zip='10001' -> city='NYC'" in
  Fmt.pr "constraints: %a;  %a@." Cfd.pp uk_zip Cfd.pp nyc;
  let t =
    Table.of_list schema
      [ (1, 1.0, mk "UK" 7 "Leeds");
        (2, 1.0, mk "UK" 7 "York"); (* conflicts with 1 under uk_zip *)
        (3, 1.0, mk "FR" 7 "Paris"); (* exempt: pattern is UK-only *)
        (4, 2.0, mk "US" 10001 "Boston") (* violates nyc all by itself *) ]
  in
  Fmt.pr "input satisfies constraints: %b@." (Cfd.satisfied_by [ uk_zip; nyc ] t);
  let s = Cfd.optimal_s_repair [ uk_zip; nyc ] t in
  Fmt.pr "optimal CFD S-repair keeps ids %a (Boston must go despite its \
          weight; one of Leeds/York goes)@."
    Fmt.(list ~sep:(any ", ") int) (Table.ids s);

  banner "Denial constraints (semantic predicates)";
  let no_self_ship =
    Denial.binary "same-zip-different-country" (fun sch t1 t2 ->
        Value.equal (Tuple.get_attr sch t1 "zip") (Tuple.get_attr sch t2 "zip")
        && not
             (Value.equal
                (Tuple.get_attr sch t1 "country")
                (Tuple.get_attr sch t2 "country")))
  in
  let v = Denial.violations [ no_self_ship ] t in
  Fmt.pr "violations of %s: %d pairs@." (Denial.name no_self_ship)
    (List.length v);
  let s2 = Denial.optimal_s_repair [ no_self_ship ] t in
  Fmt.pr "optimal denial S-repair keeps %d of %d tuples@." (Table.size s2)
    (Table.size t);

  banner "Mixed deletion/update repairs";
  let fds = Fd_set.parse "zip -> city" in
  let dirty =
    Table.of_list schema
      [ (1, 1.0, mk "UK" 7 "Leeds"); (2, 1.0, mk "UK" 7 "York");
        (3, 1.0, mk "FR" 8 "Paris") ]
  in
  List.iter
    (fun df ->
      let o = Mixed.optimal ~delete_factor:df fds dirty in
      Fmt.pr "delete costs %.2f× a cell update → cost %.2f, deletions %a@."
        df o.Mixed.cost
        Fmt.(list ~sep:(any ", ") int) o.Mixed.deleted)
    [ 2.0; 1.0; 0.25 ];

  banner "Enumerating and counting repairs";
  let office = R.Workload.Datasets.office_table in
  let office_fds = R.Workload.Datasets.office_fds in
  let reps = R.Enumerate.Enumerate.s_repairs office_fds office in
  Fmt.pr "the Office table has %d S-repairs (maximal consistent subsets):@."
    (List.length reps);
  List.iter
    (fun s ->
      Fmt.pr "  ids %a (deleted weight %g)@."
        Fmt.(list ~sep:(any ", ") int) (Table.ids s)
        (Table.dist_sub s office))
    reps;
  Fmt.pr "of which optimal: %d (counted in polynomial time: %d)@."
    (List.length (R.Enumerate.Enumerate.optimal_s_repairs office_fds office))
    (R.Enumerate.Count.optimal_s_repairs_exn office_fds office)
