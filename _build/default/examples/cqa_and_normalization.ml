(* Consistent query answering and schema normalization: what to do with an
   inconsistent table when you must answer queries *now* (CQA: answers true
   in every repair) and how to prevent the inconsistency class altogether
   (normalize the schema so only key violations remain).

   Run with:  dune exec examples/cqa_and_normalization.exe *)

module R = Repair_core.Repair
open R.Relational
module Cqa = R.Cqa.Cqa
module Prioritized = R.Prioritized.Prioritized

let banner title = Fmt.pr "@.=== %s ===@." title

let () =
  let t = R.Workload.Datasets.office_table in
  let fds = R.Workload.Datasets.office_fds in

  banner "Consistent query answering over the Office table";
  Fmt.pr "%a@." Table.pp t;
  let q_hq = Cqa.query ~select:[ ("facility", Value.str "HQ") ] [ "city" ] in
  let certain, possible = Cqa.range q_hq fds t in
  Fmt.pr "Q1: city of facility HQ?@.";
  Fmt.pr "  certain : {%a}  (conflicting repairs disagree)@."
    Fmt.(list ~sep:(any ", ") Tuple.pp) certain;
  Fmt.pr "  possible: {%a}@." Fmt.(list ~sep:(any ", ") Tuple.pp) possible;
  let q_lab = Cqa.query ~select:[ ("facility", Value.str "Lab1") ] [ "city" ] in
  Fmt.pr "Q2: city of facility Lab1?@.";
  Fmt.pr "  certain : {%a}  (tuple 4 is conflict-free)@."
    Fmt.(list ~sep:(any ", ") Tuple.pp)
    (Cqa.certain q_lab fds t);

  banner "Resolving the ambiguity with priorities (Section 5)";
  (* Trust tuple 1 (weight 2, a curated source) over its conflicts. *)
  let p = Prioritized.create fds t [ (1, 2); (1, 3) ] in
  Fmt.pr "declare: tuple 1 ≻ tuple 2, tuple 1 ≻ tuple 3@.";
  Fmt.pr "priority is unambiguous: %b@." (Prioritized.is_unambiguous p);
  let c = Prioritized.c_repair p in
  Fmt.pr "the unique completion-optimal repair keeps ids %a@."
    Fmt.(list ~sep:(any ", ") int)
    (Table.ids c);
  Fmt.pr "and now Q1 has a definite answer: {%a}@."
    Fmt.(list ~sep:(any ", ") Tuple.pp)
    (Cqa.answers q_hq c);

  banner "Normalization: removing the anomaly at the schema level";
  let attrs = Schema.attribute_set (Table.schema t) in
  Fmt.pr "Office in BCNF? %b; in 3NF? %b@."
    (R.Fd.Normalize.is_bcnf fds ~attrs)
    (R.Fd.Normalize.is_3nf fds ~attrs);
  let frags = R.Fd.Normalize.bcnf_decompose fds ~attrs in
  Fmt.pr "BCNF decomposition:@.";
  List.iter (fun f -> Fmt.pr "  %a@." R.Fd.Normalize.pp_fragment f) frags;
  List.iter
    (fun f ->
      let sub_schema, sub = R.Fd.Normalize.decompose_table (Table.schema t) t f.R.Fd.Normalize.attrs in
      Fmt.pr "fragment %a holds %d distinct tuples@." Schema.pp sub_schema
        (Table.size sub))
    frags
