examples/quickstart.ml: Fd_set Fmt Repair_core Schema Table Tuple Value
