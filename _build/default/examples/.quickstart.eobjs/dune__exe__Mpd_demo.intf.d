examples/mpd_demo.mli:
