examples/cqa_and_normalization.mli:
