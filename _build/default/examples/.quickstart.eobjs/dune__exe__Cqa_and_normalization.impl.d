examples/cqa_and_normalization.ml: Fmt List Repair_core Schema Table Tuple Value
