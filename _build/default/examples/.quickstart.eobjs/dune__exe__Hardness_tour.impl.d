examples/hardness_tour.ml: Classify Cnf Factwise Fd_set Fmt List Max_sat Repair_core Schema Simplify Table Tuple Value
