examples/mpd_demo.ml: Fd_set Fmt List Mpd Prob_table Repair_core Schema Table Tuple Value
