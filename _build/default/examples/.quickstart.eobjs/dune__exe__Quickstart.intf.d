examples/quickstart.mli:
