examples/data_cleaning.ml: Fd_set Fmt Gen_table List Repair_core Rng Schema Table
