examples/beyond_fds.ml: Fd_set Fmt List Repair_core Schema Table Tuple Value
