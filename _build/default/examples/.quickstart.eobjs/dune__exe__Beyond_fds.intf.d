examples/beyond_fds.mli:
