open Repair_relational
open Repair_fd
open Repair_dichotomy
open Helpers
module D = Repair_workload.Datasets
module Gen_fd = Repair_workload.Gen_fd
module Rng = Repair_workload.Rng

(* ---------- Example 3.5 derivations ---------- *)

let step_names trace =
  List.map
    (fun (step, _) ->
      match step with
      | Simplify.Removed_trivial _ -> "trivial"
      | Simplify.Common_lhs _ -> "common"
      | Simplify.Consensus _ -> "consensus"
      | Simplify.Marriage _ -> "marriage")
    trace

let test_office_trace () =
  let outcome, trace = Simplify.run D.office_fds in
  Alcotest.(check bool) "tractable" true (outcome = Simplify.Tractable);
  Alcotest.(check (list string)) "steps as in Example 3.5"
    [ "common"; "consensus"; "common"; "consensus" ]
    (step_names trace)

let test_marriage_trace () =
  let outcome, trace = Simplify.run D.delta_a_b_c_marriage in
  Alcotest.(check bool) "tractable" true (outcome = Simplify.Tractable);
  Alcotest.(check (list string)) "marriage then consensus"
    [ "marriage"; "consensus" ] (step_names trace)

let test_ssn_trace () =
  let outcome, trace = Simplify.run D.delta_ssn in
  Alcotest.(check bool) "tractable" true (outcome = Simplify.Tractable);
  (* Example 3.5: marriage, consensus, common lhs, consensus (we split the
     final two-attribute consensus into two steps). *)
  Alcotest.(check string) "first step is marriage" "marriage"
    (List.hd (step_names trace))

let test_hard_examples () =
  List.iter
    (fun (name, d) ->
      match fst (Simplify.run d) with
      | Simplify.Tractable -> Alcotest.fail (name ^ " should be hard")
      | Simplify.Hard stuck ->
        Alcotest.(check bool) (name ^ " stuck is subset-free") false
          (Fd_set.is_empty stuck))
    (D.table1 @ [ ("{A→B,C→D}", Fd_set.parse "A -> B; C -> D");
                  ("zip", D.delta_zip); ("Δ3", D.delta3) ])

let test_tractable_examples () =
  List.iter
    (fun (name, d) ->
      Alcotest.(check bool) name true (Simplify.succeeds d))
    [ ("office", D.office_fds);
      ("marriage", D.delta_a_b_c_marriage);
      ("ssn", D.delta_ssn);
      ("passport", D.delta_passport);
      ("Δ4", D.delta4);
      ("empty", Fd_set.empty);
      ("trivial", Fd_set.parse "A -> A") ]

let test_trivial_input_trace () =
  let _, trace = Simplify.run (Fd_set.parse "A -> A; A -> B") in
  Alcotest.(check string) "records trivial removal" "trivial"
    (List.hd (step_names trace))

(* ---------- chain corollary ---------- *)

let prop_chain_always_tractable =
  qcheck ~count:50 "Cor 3.6: chain FD sets pass OSRSucceeds"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.make seed in
      let _, d = Gen_fd.chain rng ~n_attrs:5 ~n_fds:4 in
      Simplify.succeeds d)

(* ---------- five classes (Example 3.8) ---------- *)

let test_class_examples () =
  List.iter
    (fun (n, _, d) ->
      let c = Classify.certify d in
      Alcotest.(check int) (Printf.sprintf "Δ%d class" n) n c.Classify.cls)
    D.class_examples

let test_certify_table1 () =
  let sources =
    List.map
      (fun (name, d) -> (name, (Classify.certify d).Classify.source))
      D.table1
  in
  (* Each Table-1 set must certify against *some* hard source; the pair
     (Δ_AB→C→B, Δ_AB↔AC↔BC) certify against themselves. *)
  List.iter
    (fun (name, src) ->
      Alcotest.(check bool) (name ^ " has a source") true
        (List.mem src
           [ Classify.From_a_c_b; Classify.From_a_b_c; Classify.From_triangle;
             Classify.From_ab_c_b ]))
    sources;
  Alcotest.(check bool) "triangle set certifies class 4" true
    ((Classify.certify D.delta_ab_ac_bc).Classify.cls = 4);
  Alcotest.(check bool) "AB→C→B certifies class 5" true
    ((Classify.certify D.delta_ab_to_c_to_b).Classify.cls = 5)

let test_certify_rejects_simplifiable () =
  Alcotest.(check bool) "rejects common lhs" true
    (try ignore (Classify.certify D.office_fds); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "rejects trivial" true
    (try ignore (Classify.certify Fd_set.empty); false
     with Invalid_argument _ -> true)

let prop_classify_total =
  qcheck ~count:500 "the five-class analysis has no gaps (random 3-6 attr sets)"
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.make seed in
      let n_attrs = 3 + Rng.int rng 4 in
      let _, d =
        Gen_fd.random rng ~n_attrs ~n_fds:(1 + Rng.int rng 4) ~max_lhs:3
      in
      match Classify.classify d with
      | `Tractable _ -> true
      | `Hard (stuck, _, cert) ->
        (not (Fd_set.is_empty stuck))
        && cert.Classify.cls >= 1 && cert.Classify.cls <= 5
        && (cert.Classify.cls <> 4 || cert.Classify.x3 <> None))

(* ---------- fact-wise reductions ---------- *)

let gen_abc_table = gen_table ~dom:3 ~max_size:6 small_schema

let reduction_for cls =
  let _, schema, d =
    List.find (fun (n, _, _) -> n = cls) D.class_examples
  in
  let cert = Classify.certify d in
  (d, Factwise.of_certificate schema d cert)

let prop_factwise_preserves cls =
  qcheck ~count:80
    (Printf.sprintf "fact-wise reduction class %d preserves consistency" cls)
    gen_abc_table
    (fun t ->
      let d, red = reduction_for cls in
      let t = Table.map_weights t (fun _ w -> w) in
      let img = Factwise.map_table red t in
      Fd_set.satisfied_by red.Factwise.source_fds t
      = Fd_set.satisfied_by d img)

let prop_factwise_injective cls =
  qcheck ~count:80 (Printf.sprintf "fact-wise reduction class %d is injective" cls)
    QCheck2.Gen.(pair (gen_tuple ~dom:4 small_schema) (gen_tuple ~dom:4 small_schema))
    (fun (t1, t2) ->
      let _, red = reduction_for cls in
      Tuple.equal t1 t2
      || not (Tuple.equal (red.Factwise.map_tuple t1) (red.Factwise.map_tuple t2)))

let prop_minus_reduction =
  qcheck ~count:80 "Lemma A.18 reduction preserves consistency"
    gen_abc_table
    (fun t ->
      let d = Fd_set.parse "A B -> C; C -> B" in
      let x = Attr_set.singleton "B" in
      let red = Factwise.minus_reduction small_schema d x in
      let img = Factwise.map_table red t in
      Fd_set.satisfied_by (Fd_set.minus d x) t = Fd_set.satisfied_by d img)

let test_factwise_schema_check () =
  let _, red = reduction_for 1 in
  Alcotest.(check bool) "wrong schema rejected" true
    (try
       ignore (Factwise.map_table red (Table.empty (Schema.make "X" [ "A" ])));
       false
     with Invalid_argument _ -> true)

(* Lemma 3.7: the reduction maps optimal repairs to optimal repairs — check
   distances transfer on small instances. *)
let prop_factwise_strict =
  qcheck ~count:25 "fact-wise reduction preserves optimal S-repair distance"
    gen_abc_table
    (fun t ->
      let d, red = reduction_for 1 in
      let img = Factwise.map_table red t in
      consistent_distance_eq
        (Repair_srepair.S_exact.distance red.Factwise.source_fds t)
        (Repair_srepair.S_exact.distance d img))

let () =
  Alcotest.run "dichotomy"
    [ ( "simplify",
        [ Alcotest.test_case "office trace" `Quick test_office_trace;
          Alcotest.test_case "marriage trace" `Quick test_marriage_trace;
          Alcotest.test_case "ssn trace" `Quick test_ssn_trace;
          Alcotest.test_case "hard examples" `Quick test_hard_examples;
          Alcotest.test_case "tractable examples" `Quick test_tractable_examples;
          Alcotest.test_case "trivial input" `Quick test_trivial_input_trace;
          prop_chain_always_tractable ] );
      ( "classify",
        [ Alcotest.test_case "Example 3.8 classes" `Quick test_class_examples;
          Alcotest.test_case "Table 1 certificates" `Quick test_certify_table1;
          Alcotest.test_case "rejects simplifiable" `Quick test_certify_rejects_simplifiable;
          prop_classify_total ] );
      ( "factwise",
        [ prop_factwise_preserves 1;
          prop_factwise_preserves 2;
          prop_factwise_preserves 3;
          prop_factwise_preserves 4;
          prop_factwise_preserves 5;
          prop_factwise_injective 1;
          prop_factwise_injective 2;
          prop_factwise_injective 3;
          prop_factwise_injective 4;
          prop_factwise_injective 5;
          prop_minus_reduction;
          Alcotest.test_case "schema check" `Quick test_factwise_schema_check;
          prop_factwise_strict ] ) ]
