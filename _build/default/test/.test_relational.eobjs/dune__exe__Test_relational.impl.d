test/test_relational.ml: Alcotest Attr_set Csv_io Database Filename Fun Helpers Jsonl_io List QCheck2 Repair_relational Repair_runtime Schema Sys Table Tuple Value
