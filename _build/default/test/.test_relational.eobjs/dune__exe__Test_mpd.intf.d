test/test_mpd.mli:
