test/test_adversarial.ml: Alcotest Fd_set Helpers List Repair_fd Repair_relational Repair_srepair Repair_urepair Repair_workload Schema Table Tuple Value
