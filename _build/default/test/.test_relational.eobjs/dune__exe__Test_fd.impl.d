test/test_fd.ml: Alcotest Armstrong Attr_set Cover Fd Fd_set Helpers Lhs_analysis List Printf QCheck2 Repair_fd Repair_relational Repair_workload Schema Table Tuple Value
