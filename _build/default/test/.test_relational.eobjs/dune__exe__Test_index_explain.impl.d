test/test_index_explain.ml: Alcotest Fd_index Fd_set Fmt Helpers List QCheck2 Repair_fd Repair_relational Repair_srepair Repair_workload Schema Table Tuple Value
