test/test_dichotomy.ml: Alcotest Attr_set Classify Factwise Fd_set Helpers List Printf QCheck2 Repair_dichotomy Repair_fd Repair_relational Repair_srepair Repair_workload Schema Simplify Table Tuple
