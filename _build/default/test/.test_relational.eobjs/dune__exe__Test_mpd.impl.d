test/test_mpd.ml: Alcotest Fd_set Helpers List Mpd Prob_table QCheck2 Repair_fd Repair_mpd Repair_relational Repair_workload Schema Table Tuple Value
