test/test_extensions.ml: Alcotest Fd Fd_set Helpers List QCheck2 Repair_denial Repair_fd Repair_mixed Repair_relational Repair_srepair Repair_urepair Repair_workload Schema Table Tuple Value
