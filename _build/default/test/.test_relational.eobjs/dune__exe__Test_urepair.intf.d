test/test_urepair.mli:
