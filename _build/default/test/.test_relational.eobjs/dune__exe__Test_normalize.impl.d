test/test_normalize.ml: Alcotest Attr_set Cover Fd Fd_set Helpers List Normalize Repair_fd Repair_relational Schema Table Tuple Value
