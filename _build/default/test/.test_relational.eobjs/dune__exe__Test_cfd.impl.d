test/test_cfd.ml: Alcotest Cfd Fd Fd_set Fmt Helpers List QCheck2 Repair_cfd Repair_fd Repair_relational Repair_srepair Repair_workload Schema Table Tuple Value
