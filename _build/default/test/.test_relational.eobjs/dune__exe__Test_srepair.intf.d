test/test_srepair.mli:
