test/test_sat.ml: Alcotest Cnf Helpers List Max_sat QCheck2 Repair_sat
