test/test_cleaning.ml: Alcotest Fd_set Helpers List QCheck2 Repair_cleaning Repair_fd Repair_relational Repair_srepair Repair_workload Table Value
