test/test_index_explain.mli:
