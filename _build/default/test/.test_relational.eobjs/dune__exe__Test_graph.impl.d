test/test_graph.ml: Alcotest Array Bipartite_matching Float Graph Helpers List Max_flow QCheck2 Repair_graph Repair_workload Triangle Vertex_cover
