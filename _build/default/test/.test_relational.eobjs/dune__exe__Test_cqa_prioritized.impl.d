test/test_cqa_prioritized.ml: Alcotest Fd_set Helpers List QCheck2 Repair_cqa Repair_fd Repair_prioritized Repair_relational Repair_workload Schema Table Tuple Value
