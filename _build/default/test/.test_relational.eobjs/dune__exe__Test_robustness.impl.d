test/test_robustness.ml: Alcotest Fd_set Helpers List QCheck2 Repair_core Repair_runtime String Table Tuple Value
