test/test_integration.ml: Alcotest Array Csv_io Database Fd_set Helpers Option Repair_core String Table Tuple Value
