test/test_cqa_prioritized.mli:
