test/test_cleaning.mli:
