test/test_dichotomy.mli:
