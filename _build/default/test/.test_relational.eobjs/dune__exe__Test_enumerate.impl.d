test/test_enumerate.ml: Alcotest Array Count Enumerate Fd_set Helpers List QCheck2 Repair_enumerate Repair_fd Repair_relational Repair_srepair Repair_workload Result Schema Table Tuple Value
