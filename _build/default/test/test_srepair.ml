open Repair_relational
open Repair_fd
open Repair_srepair
open Helpers
module D = Repair_workload.Datasets
module Gen_fd = Repair_workload.Gen_fd
module Gen_table = Repair_workload.Gen_table
module Rng = Repair_workload.Rng

(* ---------- Figure 1 / Example 2.3 ---------- *)

let test_office_distances () =
  let t = D.office_table in
  check_float "S1" 2.0 (Table.dist_sub D.office_s1 t);
  check_float "S2" 2.0 (Table.dist_sub D.office_s2 t);
  check_float "S3" 3.0 (Table.dist_sub D.office_s3 t);
  List.iter
    (fun s -> Alcotest.(check bool) "consistent" true (Fd_set.satisfied_by D.office_fds s))
    [ D.office_s1; D.office_s2; D.office_s3 ]

let test_office_optimal () =
  let s = Opt_s_repair.run_exn D.office_fds D.office_table in
  check_float "optimal distance 2" 2.0 (Table.dist_sub s D.office_table);
  Alcotest.(check bool) "consistent" true (Fd_set.satisfied_by D.office_fds s);
  Alcotest.(check bool) "is maximal S-repair" true
    (S_check.is_s_repair D.office_fds ~of_:D.office_table s);
  (* Exact baselines agree. *)
  check_float "vc baseline" 2.0 (S_exact.distance D.office_fds D.office_table);
  check_float "brute force" 2.0
    (Table.dist_sub (S_exact.brute_force D.office_fds D.office_table) D.office_table)

let test_s3_is_repair_but_not_optimal () =
  (* S3 is a consistent subset that is 1.5-optimal (Example 2.3). It is not
     maximal — tuple 2 can be restored — illustrating that the paper
     identifies S-repairs with consistent subsets. *)
  Alcotest.(check bool) "S3 consistent subset" true
    (S_check.is_consistent_subset D.office_fds ~of_:D.office_table D.office_s3);
  Alcotest.(check bool) "S3 not maximal" false
    (S_check.is_s_repair D.office_fds ~of_:D.office_table D.office_s3);
  let maximal = S_check.make_maximal D.office_fds ~of_:D.office_table D.office_s3 in
  Alcotest.(check (list int)) "restoring tuple 2" [ 2; 3; 4 ] (Table.ids maximal);
  Alcotest.(check bool) "S3 1.5-optimal" true
    (S_check.is_alpha_optimal D.office_fds ~of_:D.office_table ~alpha:1.5 D.office_s3);
  Alcotest.(check bool) "S3 not 1.4-optimal" false
    (S_check.is_alpha_optimal D.office_fds ~of_:D.office_table ~alpha:1.4 D.office_s3)

(* ---------- Algorithm 1 cases ---------- *)

let test_trivial_fds () =
  let t = D.office_table in
  let s = Opt_s_repair.run_exn Fd_set.empty t in
  Alcotest.check table "empty Δ returns T" t s;
  let s2 = Opt_s_repair.run_exn (Fd_set.parse "facility -> facility") t in
  Alcotest.check table "trivial Δ returns T" t s2

let test_empty_table () =
  let t = Table.empty D.r3_schema in
  List.iter
    (fun d ->
      match Opt_s_repair.run d t with
      | Ok s -> Alcotest.(check int) "empty stays empty" 0 (Table.size s)
      | Error _ -> Alcotest.fail "should handle empty table")
    [ D.delta_a_b_c_marriage; Fd_set.parse "A -> B"; Fd_set.parse "-> A" ]

let test_consensus_case () =
  (* ∅ → A keeps the heaviest A-group. *)
  let s = Schema.make "R" [ "A"; "B" ] in
  let mk a b = Tuple.make [ Value.int a; Value.int b ] in
  let t =
    Table.of_list s
      [ (1, 1.0, mk 1 1); (2, 1.0, mk 1 2); (3, 2.5, mk 2 1) ]
  in
  let rep = Opt_s_repair.run_exn (Fd_set.parse "-> A") t in
  Alcotest.(check (list int)) "heavier group kept" [ 3 ] (Table.ids rep);
  (* With unit weights the bigger group wins. *)
  let t2 = Table.of_list s [ (1, 1.0, mk 1 1); (2, 1.0, mk 1 2); (3, 1.0, mk 2 1) ] in
  let rep2 = Opt_s_repair.run_exn (Fd_set.parse "-> A") t2 in
  Alcotest.(check (list int)) "bigger group kept" [ 1; 2 ] (Table.ids rep2)

let test_duplicates_and_weights () =
  (* Duplicate tuples must both be kept (they never conflict). *)
  let s = Schema.make "R" [ "A"; "B" ] in
  let mk a b = Tuple.make [ Value.int a; Value.int b ] in
  let t =
    Table.of_list s
      [ (1, 1.0, mk 1 1); (2, 1.0, mk 1 1); (3, 1.0, mk 1 2) ]
  in
  let rep = Opt_s_repair.run_exn (Fd_set.parse "A -> B") t in
  Alcotest.(check (list int)) "duplicates kept together" [ 1; 2 ] (Table.ids rep);
  (* A heavy conflicting tuple outweighs two duplicates. *)
  let t2 =
    Table.of_list s
      [ (1, 1.0, mk 1 1); (2, 1.0, mk 1 1); (3, 5.0, mk 1 2) ]
  in
  let rep2 = Opt_s_repair.run_exn (Fd_set.parse "A -> B") t2 in
  Alcotest.(check (list int)) "heavy tuple kept" [ 3 ] (Table.ids rep2)

let test_marriage_case_nontrivial () =
  (* Δ_A↔B→C: matching must pair A-values with B-values. *)
  let mk a b c = Tuple.make [ Value.int a; Value.int b; Value.int c ] in
  let t =
    Table.of_list D.r3_schema
      [ (1, 1.0, mk 1 1 0); (2, 1.0, mk 1 2 0); (3, 1.0, mk 2 2 0); (4, 1.0, mk 2 1 0) ]
  in
  let rep = Opt_s_repair.run_exn D.delta_a_b_c_marriage t in
  check_float "keeps a perfect matching" 2.0 (Table.total_weight rep);
  Alcotest.(check bool) "consistent" true
    (Fd_set.satisfied_by D.delta_a_b_c_marriage rep);
  check_float "matches exact" (S_exact.distance D.delta_a_b_c_marriage t)
    (Table.dist_sub rep t)

let test_fails_on_empty_table_hard_delta () =
  (* Regression (found by repair-fuzz): success must depend only on Δ, even
     when a simplification step leaves no tuples. The zip FD set applies a
     common-lhs step before getting stuck. *)
  List.iter
    (fun tbl ->
      match Opt_s_repair.run D.delta_zip tbl with
      | Ok _ -> Alcotest.fail "zip Δ must fail regardless of data"
      | Error _ -> ())
    [ Table.empty D.zip_schema;
      Table.of_tuples D.zip_schema
        [ Tuple.make [ Value.int 1; Value.int 1; Value.int 1; Value.int 1 ] ] ]

let test_fails_on_table1 () =
  List.iter
    (fun (name, d) ->
      match Opt_s_repair.run d (Table.empty D.r3_schema) with
      | Ok _ -> Alcotest.fail (name ^ " should fail")
      | Error stuck ->
        Alcotest.(check bool) (name ^ " stuck nonempty") false (Fd_set.is_empty stuck))
    D.table1

(* ---------- Conflict graph ---------- *)

let test_conflict_graph () =
  let cg = Conflict_graph.build D.office_fds D.office_table in
  (* Pairs (1,2) — violating both FDs — and (1,3) conflict: 2 edges. *)
  Alcotest.(check int) "two conflict edges" 2 (Conflict_graph.n_conflicts cg);
  let g = Conflict_graph.graph cg in
  Alcotest.(check int) "four vertices" 4 (Repair_graph.Graph.n_vertices g);
  (* vertex weights come from tuples *)
  let v1 = Conflict_graph.vertex_of_id cg 1 in
  check_float "weight carried" 2.0 (Repair_graph.Graph.weight g v1);
  Alcotest.(check int) "roundtrip id" 1 (Conflict_graph.id_of_vertex cg v1)

(* ---------- checking utilities ---------- *)

let test_make_maximal () =
  let empty = Table.empty (Table.schema D.office_table) in
  let m = S_check.make_maximal D.office_fds ~of_:D.office_table empty in
  Alcotest.(check bool) "maximal" true
    (S_check.is_s_repair D.office_fds ~of_:D.office_table m);
  Alcotest.(check bool) "nonempty" true (Table.size m > 0)

let test_is_consistent_subset_rejects () =
  Alcotest.(check bool) "T itself inconsistent" false
    (S_check.is_consistent_subset D.office_fds ~of_:D.office_table D.office_table);
  (* A "subset" with altered weight is not a subset. *)
  let fake = Table.map_weights D.office_s1 (fun _ w -> w +. 1.0) in
  Alcotest.(check bool) "weight mismatch" false
    (S_check.is_consistent_subset D.office_fds ~of_:D.office_table fake)

(* ---------- properties: Algorithm 1 = exact baseline ---------- *)

let random_instance rng schema d ~n ~noise =
  Gen_table.dirty rng schema d
    { Gen_table.default with n; noise; domain_size = 4; weighted = true }

(* Algorithm 1 must succeed exactly when Algorithm 2 (OSRSucceeds) says so,
   and on success match the exact baseline. *)
let prop_optsrepair_matches_exact_family name mk_family =
  qcheck ~count:25 ("OptSRepair = exact VC baseline: " ^ name)
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.make seed in
      let schema, d = mk_family rng in
      let t = random_instance rng schema d ~n:10 ~noise:0.25 in
      match Opt_s_repair.run d t with
      | Error _ -> not (Repair_dichotomy.Simplify.succeeds d)
      | Ok s ->
        Repair_dichotomy.Simplify.succeeds d
        && Fd_set.satisfied_by d s
        && S_check.is_consistent_subset d ~of_:t s
        && consistent_distance_eq (Table.dist_sub s t) (S_exact.distance d t))

let prop_chain = prop_optsrepair_matches_exact_family "chain FD sets"
    (fun rng -> Gen_fd.chain rng ~n_attrs:4 ~n_fds:3)

let prop_common_lhs = prop_optsrepair_matches_exact_family "common-lhs FD sets"
    (fun rng -> Gen_fd.common_lhs rng ~n_attrs:4 ~n_fds:3)

let prop_marriage = prop_optsrepair_matches_exact_family "lhs-marriage FD sets"
    (fun rng ->
      let n = 1 + Rng.int rng 2 in
      Gen_fd.marriage n)

let prop_office_family = prop_optsrepair_matches_exact_family "running example"
    (fun _ -> (D.office_schema, D.office_fds))

let prop_approx2_bound =
  qcheck ~count:40 "2-approximation within bound on hard sets (Prop 3.3)"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.make seed in
      let d = D.delta_a_to_b_to_c in
      let t = random_instance rng D.r3_schema d ~n:12 ~noise:0.3 in
      let s = S_approx.approx2 d t in
      S_check.is_consistent_subset d ~of_:t s
      && Table.dist_sub s t <= (2.0 *. S_exact.distance d t) +. 1e-9)

let prop_exact_consistent_all_fd_sets =
  qcheck ~count:60 "exact baseline always returns a consistent subset"
    QCheck2.Gen.(pair (gen_fd_set small_schema) (gen_table ~max_size:7 small_schema))
    (fun (d, t) ->
      let s = S_exact.optimal d t in
      S_check.is_consistent_subset d ~of_:t s
      && consistent_distance_eq (Table.dist_sub s t)
           (Table.dist_sub (S_exact.brute_force d t) t))

let prop_brute_vs_vc =
  qcheck ~count:40 "branch-and-bound VC equals 2^n brute force"
    QCheck2.Gen.(pair (gen_fd_set small_schema) (gen_table ~max_size:8 ~weighted:false small_schema))
    (fun (d, t) ->
      consistent_distance_eq (S_exact.distance d t)
        (Table.dist_sub (S_exact.brute_force d t) t))

let () =
  Alcotest.run "srepair"
    [ ( "figure 1",
        [ Alcotest.test_case "subset distances (Ex 2.3)" `Quick test_office_distances;
          Alcotest.test_case "optimal repair" `Quick test_office_optimal;
          Alcotest.test_case "S3 is 1.5-optimal" `Quick test_s3_is_repair_but_not_optimal ] );
      ( "algorithm 1",
        [ Alcotest.test_case "trivial Δ" `Quick test_trivial_fds;
          Alcotest.test_case "empty table" `Quick test_empty_table;
          Alcotest.test_case "consensus case" `Quick test_consensus_case;
          Alcotest.test_case "duplicates & weights" `Quick test_duplicates_and_weights;
          Alcotest.test_case "marriage matching" `Quick test_marriage_case_nontrivial;
          Alcotest.test_case "fails on Table 1" `Quick test_fails_on_table1;
          Alcotest.test_case "fails on empty tables too" `Quick
            test_fails_on_empty_table_hard_delta ] );
      ( "conflict graph",
        [ Alcotest.test_case "office conflicts" `Quick test_conflict_graph ] );
      ( "checking",
        [ Alcotest.test_case "make_maximal" `Quick test_make_maximal;
          Alcotest.test_case "subset rejection" `Quick test_is_consistent_subset_rejects ] );
      ( "properties",
        [ prop_chain;
          prop_common_lhs;
          prop_marriage;
          prop_office_family;
          prop_approx2_bound;
          prop_exact_consistent_all_fd_sets;
          prop_brute_vs_vc ] ) ]
