(* Tests for the Section 5 extension libraries: denial constraints and
   mixed-operation repairs. *)

open Repair_relational
open Repair_fd
open Helpers
module Denial = Repair_denial.Denial
module Mixed = Repair_mixed.Mixed_exact
module Rng = Repair_workload.Rng
module Gen_table = Repair_workload.Gen_table

let schema = Schema.make "R" [ "A"; "B" ]
let mk a b = Tuple.make [ Value.int a; Value.int b ]

(* ---------- denial constraints ---------- *)

let no_nines = Denial.unary "no-nines" (fun s t -> Tuple.get_attr s t "A" = Value.int 9)

let fd_ab = Fd.parse "A -> B"

let test_denial_of_fd_matches_fd () =
  let d = Fd_set.of_list [ fd_ab ] in
  let cs = Denial.of_fd_set d in
  let t = Table.of_list schema [ (1, 1.0, mk 1 1); (2, 1.0, mk 1 2); (3, 1.0, mk 2 1) ] in
  Alcotest.(check bool) "same satisfaction" (Fd_set.satisfied_by d t)
    (Denial.satisfied_by cs t);
  check_float "same optimal distance"
    (Repair_srepair.S_exact.distance d t)
    (Table.dist_sub (Denial.optimal_s_repair cs t) t)

let test_denial_unary () =
  let t = Table.of_list schema [ (1, 5.0, mk 9 1); (2, 1.0, mk 1 1) ] in
  let v = Denial.violations [ no_nines ] t in
  Alcotest.(check int) "one violation" 1 (List.length v);
  (match v with
  | [ `Unary (1, "no-nines") ] -> ()
  | _ -> Alcotest.fail "expected unary violation of tuple 1");
  let s = Denial.optimal_s_repair [ no_nines ] t in
  Alcotest.(check (list int)) "mandatory deletion despite weight" [ 2 ]
    (Table.ids s)

let test_denial_order_constraint () =
  (* lt_atom A A symmetrized forbids any two tuples with different A. *)
  let c = Denial.lt_atom "A" "A" in
  let t = Table.of_list schema [ (1, 1.0, mk 1 1); (2, 1.0, mk 2 2); (3, 1.0, mk 1 9) ] in
  Alcotest.(check bool) "violated" false (Denial.satisfied_by [ c ] t);
  let s = Denial.optimal_s_repair [ c ] t in
  Alcotest.(check bool) "consistent after repair" true (Denial.satisfied_by [ c ] s);
  Alcotest.(check int) "keeps the two A=1 tuples" 2 (Table.size s)

let test_denial_mixed_family () =
  let cs = no_nines :: Denial.of_fd_set (Fd_set.of_list [ fd_ab ]) in
  let t =
    Table.of_list schema
      [ (1, 1.0, mk 9 1); (2, 1.0, mk 1 1); (3, 1.0, mk 1 2); (4, 1.0, mk 2 2) ]
  in
  let s = Denial.optimal_s_repair cs t in
  Alcotest.(check bool) "consistent" true (Denial.satisfied_by cs s);
  Alcotest.(check int) "keeps 2 of 4" 2 (Table.size s)

let prop_denial_approx_bound =
  qcheck ~count:40 "denial 2-approximation within factor 2"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.make seed in
      let t =
        Gen_table.uniform rng schema
          { Gen_table.default with n = 8; domain_size = 3; weighted = true }
      in
      let cs = no_nines :: Denial.of_fd_set (Fd_set.of_list [ fd_ab ]) in
      let apx = Denial.approx_s_repair cs t in
      let opt = Denial.optimal_s_repair cs t in
      Denial.satisfied_by cs apx
      && Table.dist_sub apx t <= (2.0 *. Table.dist_sub opt t) +. 1e-9)

(* ---------- mixed repairs ---------- *)

let test_mixed_prefers_update () =
  (* (1,1) vs (1,2): one cell update beats deleting a tuple when deletions
     are expensive. *)
  let t = Table.of_list schema [ (1, 1.0, mk 1 1); (2, 1.0, mk 1 2) ] in
  let fd = Fd_set.parse "A -> B" in
  let o = Mixed.optimal ~delete_factor:2.0 fd t in
  check_float "cost one update" 1.0 o.cost;
  Alcotest.(check (list int)) "nothing deleted" [] o.deleted;
  Alcotest.(check int) "both kept" 2 (Table.size o.result);
  Alcotest.(check bool) "consistent" true (Fd_set.satisfied_by fd o.result)

let test_mixed_prefers_delete () =
  (* A tuple violating in two attributes: deleting (cost 0.5·w) beats two
     updates. *)
  let fd = Fd_set.parse "A -> B" in
  let t = Table.of_list schema [ (1, 1.0, mk 1 1); (2, 1.0, mk 1 2) ] in
  let o = Mixed.optimal ~delete_factor:0.25 fd t in
  check_float "cheap deletion wins" 0.25 o.cost;
  Alcotest.(check int) "one deleted" 1 (List.length o.deleted)

let test_mixed_consistent_input () =
  let fd = Fd_set.parse "A -> B" in
  let t = Table.of_list schema [ (1, 1.0, mk 1 1); (2, 1.0, mk 2 2) ] in
  let o = Mixed.optimal fd t in
  check_float "zero cost" 0.0 o.cost;
  Alcotest.check table "unchanged" t o.result

let prop_mixed_lower_bound =
  qcheck ~count:25 "mixed optimum ≤ min(subset, update) at delete_factor 1"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.make seed in
      let fd = Fd_set.parse "A -> B" in
      let t =
        Gen_table.dirty rng schema fd
          { Gen_table.default with n = 4; noise = 0.4; domain_size = 3 }
      in
      let mixed = Mixed.cost fd t in
      let subset = Repair_srepair.S_exact.distance fd t in
      let update = Repair_urepair.U_exact.distance fd t in
      mixed <= subset +. 1e-9
      && mixed <= update +. 1e-9
      (* and with free-ish deletions it can only get cheaper *)
      && Mixed.cost ~delete_factor:0.5 fd t <= mixed +. 1e-9)

let prop_mixed_result_consistent =
  qcheck ~count:25 "mixed repair output is always consistent"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.make seed in
      let fd = Fd_set.parse "A -> B; B -> A" in
      let t =
        Gen_table.dirty rng schema fd
          { Gen_table.default with n = 4; noise = 0.5; domain_size = 2 }
      in
      let o = Mixed.optimal fd t in
      Fd_set.satisfied_by fd o.result
      && List.for_all (fun i -> not (Table.mem o.result i)) o.deleted)

let () =
  Alcotest.run "extensions"
    [ ( "denial",
        [ Alcotest.test_case "FDs as denial constraints" `Quick test_denial_of_fd_matches_fd;
          Alcotest.test_case "unary violations" `Quick test_denial_unary;
          Alcotest.test_case "order constraint" `Quick test_denial_order_constraint;
          Alcotest.test_case "mixed family" `Quick test_denial_mixed_family;
          prop_denial_approx_bound ] );
      ( "mixed",
        [ Alcotest.test_case "prefers update" `Quick test_mixed_prefers_update;
          Alcotest.test_case "prefers delete" `Quick test_mixed_prefers_delete;
          Alcotest.test_case "consistent input" `Quick test_mixed_consistent_input;
          prop_mixed_lower_bound;
          prop_mixed_result_consistent ] ) ]
