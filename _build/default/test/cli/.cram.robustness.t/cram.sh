  $ cat > hard.csv <<'CSV'
  > #id,A,B,C
  > 1,1,1,1
  > 2,1,1,2
  > 3,1,2,1
  > CSV
  $ repair-cli s-repair -f "A -> B; B -> C" hard.csv
  $ repair-cli s-repair -f "A -> B; B -> C" --max-steps 1 hard.csv
  $ repair-cli s-repair -f "A -> B; B -> C" --max-steps 1 hard.csv 2>/dev/null
  $ repair-cli s-repair -f "A -> B; B -> C" --max-steps 1 --on-budget=fail hard.csv 2>/dev/null
  $ repair-cli s-repair -f "A -> B; B -> C" --max-steps 1 --on-budget=fail hard.csv 2>&1 | sed -E 's/\([0-9.]+s\)/(_s)/'
  $ repair-cli s-repair -f "A -> B; B -> C" --timeout 0 --on-budget=fail hard.csv 2>&1 | grep -c "budget exhausted"
  $ repair-cli u-repair -f "A -> B; B -> C" --max-steps 1 hard.csv 1>/dev/null
  $ repair-cli s-repair -f "A -> B; B -> C" --strategy poly hard.csv
  $ mkdir dir && repair-cli s-repair -f "A -> B" dir 2>/dev/null
