  $ repair-cli classify -f "facility -> city; facility room -> floor" | head -3
  $ repair-cli classify -f "A -> B; B -> C" | grep -c "APX"
  $ cat > office.csv <<'CSV'
  > #id,#weight,facility,room,floor,city
  > 1,2,HQ,322,3,Paris
  > 2,1,HQ,322,30,Madrid
  > 3,1,HQ,122,1,Madrid
  > 4,2,Lab1,B35,3,London
  > CSV
  $ repair-cli s-repair -f "facility -> city; facility room -> floor" office.csv
  $ repair-cli u-repair -f "facility -> city; facility room -> floor" office.csv
  $ cat > readings.csv <<'CSV'
  > #id,#weight,sensor,location
  > 1,0.9,s1,atrium
  > 2,0.6,s1,garage
  > 3,0.8,s2,roof
  > CSV
  $ repair-cli mpd -f "sensor -> location" readings.csv
  $ repair-cli s-repair -f "A -> " office.csv
  $ repair-cli generate -f "A -> B" -a "A B C" --size 5 --seed 3 --noise 0.2 --domain 3 -o gen.csv
  $ repair-cli s-repair -f "A -> B" gen.csv -o /dev/null
  $ repair-cli generate -f "A -> B" -a "A B" --size 3 --seed 1
  $ repair-cli cqa -f "facility -> city; facility room -> floor" -w "facility=HQ" -p "city" office.csv
  $ repair-cli cqa -f "facility -> city; facility room -> floor" -w "facility=Lab1" -p "city" office.csv
  $ repair-cli s-repair -f "facility -> city; facility room -> floor" --explain office.csv -o /dev/null
  $ repair-cli normalize -f "facility -> city; facility room -> floor"
  $ repair-cli dirtiness -f "facility -> city; facility room -> floor" office.csv
  $ repair-cli s-repair -f "facility -> city; facility room -> floor" office.csv -o office.jsonl
  $ cat office.jsonl
  $ repair-cli dirtiness -f "facility -> city" office.jsonl
  $ printf 'violations\ndelete 1\ncost\nfinish updates\n' | repair-cli session -f "facility -> city; facility room -> floor" office.csv
  $ repair-cli u-repair -f "facility -> city; facility room -> floor" --explain office.csv -o /dev/null
  $ repair-cli generate -f "A -> B" -a "A C" --size 3
  $ repair-cli armstrong -f "A -> B"
