open Repair_relational
open Repair_fd
open Helpers
module Cqa = Repair_cqa.Cqa
module Prioritized = Repair_prioritized.Prioritized
module D = Repair_workload.Datasets

let schema = Schema.make "R" [ "A"; "B" ]
let mk a b = Tuple.make [ Value.int a; Value.int b ]
let fd_ab = Fd_set.parse "A -> B"

(* ---------- CQA ---------- *)

(* (1,1) (1,2) (2,1): repairs {1,3} and {2,3}. *)
let t3 = Table.of_list schema [ (1, 1.0, mk 1 1); (2, 1.0, mk 1 2); (3, 1.0, mk 2 1) ]

let test_answers () =
  let q = Cqa.query ~select:[ ("A", Value.int 1) ] [ "B" ] in
  Alcotest.(check int) "two B values for A=1" 2 (List.length (Cqa.answers q t3));
  let q_all = Cqa.query [ "A" ] in
  Alcotest.(check int) "two distinct A" 2 (List.length (Cqa.answers q_all t3))

let test_certain_possible () =
  let q = Cqa.query [ "A" ] in
  (* A=2 appears in every repair; A=1 also appears in every repair (either
     tuple 1 or 2 survives). *)
  Alcotest.(check int) "both A certain" 2 (List.length (Cqa.certain q fd_ab t3));
  let qb = Cqa.query ~select:[ ("A", Value.int 1) ] [ "B" ] in
  (* B for A=1 differs across repairs: no certain answer, two possible. *)
  Alcotest.(check int) "no certain B" 0 (List.length (Cqa.certain qb fd_ab t3));
  Alcotest.(check int) "two possible B" 2 (List.length (Cqa.possible qb fd_ab t3));
  let certain, possible = Cqa.range qb fd_ab t3 in
  Alcotest.(check int) "range certain" 0 (List.length certain);
  Alcotest.(check int) "range possible" 2 (List.length possible)

let test_cqa_consistent_table () =
  let t = Table.of_list schema [ (1, 1.0, mk 1 1); (2, 1.0, mk 2 2) ] in
  let q = Cqa.query [ "A"; "B" ] in
  Alcotest.(check int) "certain = all tuples" 2
    (List.length (Cqa.certain q fd_ab t))

let test_cqa_office () =
  (* city of facility HQ across office repairs: Paris in one, Madrid in the
     other — not certain. *)
  let q =
    Cqa.query ~select:[ ("facility", Value.str "HQ") ] [ "city" ]
  in
  Alcotest.(check int) "city of HQ uncertain" 0
    (List.length (Cqa.certain q D.office_fds D.office_table));
  Alcotest.(check int) "two possible cities" 2
    (List.length (Cqa.possible q D.office_fds D.office_table));
  (* London is certain: tuple 4 conflicts with nothing. *)
  let q4 = Cqa.query ~select:[ ("facility", Value.str "Lab1") ] [ "city" ] in
  Alcotest.(check int) "Lab1 city certain" 1
    (List.length (Cqa.certain q4 D.office_fds D.office_table))

let prop_certain_subset_possible =
  qcheck ~count:40 "certain ⊆ possible ⊆ answers on the full table"
    QCheck2.Gen.(pair (gen_fd_set small_schema) (gen_table ~max_size:6 small_schema))
    (fun (d, t) ->
      let q = Cqa.query [ "A"; "B" ] in
      let certain, possible = Cqa.range q d t in
      let full = Cqa.answers q t in
      let subset xs ys = List.for_all (fun x -> List.exists (Tuple.equal x) ys) xs in
      subset certain possible && subset possible full)

(* ---------- prioritized repairs ---------- *)

let prio prefs = Prioritized.create fd_ab t3 prefs

let test_create_validation () =
  Alcotest.(check bool) "non-conflicting pair rejected" true
    (try ignore (prio [ (1, 3) ]); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "cycle rejected" true
    (try ignore (prio [ (1, 2); (2, 1) ]); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "unknown id rejected" true
    (try ignore (prio [ (1, 99) ]); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "valid priority accepted" true
    (ignore (prio [ (1, 2) ]); true)

let test_c_repair () =
  let p = prio [ (1, 2) ] in
  let c = Prioritized.c_repair p in
  Alcotest.(check (list int)) "preferred tuple wins" [ 1; 3 ] (Table.ids c);
  Alcotest.(check bool) "c-repair consistent" true
    (Fd_set.satisfied_by fd_ab c);
  (* with the opposite priority the other repair is produced *)
  let p2 = prio [ (2, 1) ] in
  Alcotest.(check (list int)) "reversed" [ 2; 3 ]
    (Table.ids (Prioritized.c_repair p2))

let test_all_c_repairs_and_ambiguity () =
  (* No priority: both repairs are c-repairs — ambiguous. *)
  let p0 = prio [] in
  Alcotest.(check int) "two c-repairs" 2 (List.length (Prioritized.all_c_repairs p0));
  Alcotest.(check bool) "ambiguous" false (Prioritized.is_unambiguous p0);
  (* One preference resolves everything. *)
  let p1 = prio [ (1, 2) ] in
  Alcotest.(check int) "one c-repair" 1 (List.length (Prioritized.all_c_repairs p1));
  Alcotest.(check bool) "unambiguous" true (Prioritized.is_unambiguous p1)

let test_pareto_global () =
  let p = prio [ (1, 2) ] in
  let s_good = Table.restrict t3 [ 1; 3 ] in
  let s_bad = Table.restrict t3 [ 2; 3 ] in
  Alcotest.(check bool) "preferred repair is Pareto-optimal" true
    (Prioritized.is_pareto_optimal p s_good);
  Alcotest.(check bool) "dominated repair is not" false
    (Prioritized.is_pareto_optimal p s_bad);
  Alcotest.(check bool) "preferred repair is globally optimal" true
    (Prioritized.is_globally_optimal p s_good);
  Alcotest.(check bool) "dominated repair is not globally optimal" false
    (Prioritized.is_globally_optimal p s_bad);
  (* without priorities both maximal repairs are optimal under both
     notions *)
  let p0 = prio [] in
  Alcotest.(check bool) "no-priority: both Pareto" true
    (Prioritized.is_pareto_optimal p0 s_good
     && Prioritized.is_pareto_optimal p0 s_bad)

let test_non_maximal_not_pareto () =
  let p = prio [] in
  Alcotest.(check bool) "non-maximal subset rejected" false
    (Prioritized.is_pareto_optimal p (Table.restrict t3 [ 3 ]))

(* Containment chain: every c-repair is globally optimal; every globally
   optimal repair is Pareto-optimal. *)
let prop_containment =
  qcheck ~count:30 "c-repairs ⊆ g-repairs ⊆ p-repairs"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Repair_workload.Rng.make seed in
      let t =
        Repair_workload.Gen_table.uniform rng schema
          { Repair_workload.Gen_table.default with n = 5; domain_size = 2 }
      in
      (* random acyclic priority: prefer lower id on a few conflicting
         pairs *)
      let prefs =
        List.concat_map
          (fun i ->
            List.filter_map
              (fun j ->
                let schema' = Table.schema t in
                if
                  i < j
                  && (not
                        (Fd_set.pair_consistent fd_ab schema'
                           (Table.tuple t i) (Table.tuple t j)))
                  && Repair_workload.Rng.bool rng
                then Some (i, j)
                else None)
              (Table.ids t))
          (Table.ids t)
      in
      let p = Prioritized.create fd_ab t prefs in
      let crs = Prioritized.all_c_repairs p in
      List.for_all
        (fun c ->
          Prioritized.is_globally_optimal p c && Prioritized.is_pareto_optimal p c)
        crs)

let () =
  Alcotest.run "cqa+prioritized"
    [ ( "cqa",
        [ Alcotest.test_case "plain answers" `Quick test_answers;
          Alcotest.test_case "certain/possible" `Quick test_certain_possible;
          Alcotest.test_case "consistent table" `Quick test_cqa_consistent_table;
          Alcotest.test_case "office" `Quick test_cqa_office;
          prop_certain_subset_possible ] );
      ( "prioritized",
        [ Alcotest.test_case "validation" `Quick test_create_validation;
          Alcotest.test_case "c-repair" `Quick test_c_repair;
          Alcotest.test_case "ambiguity" `Quick test_all_c_repairs_and_ambiguity;
          Alcotest.test_case "pareto/global" `Quick test_pareto_global;
          Alcotest.test_case "non-maximal" `Quick test_non_maximal_not_pareto;
          prop_containment ] ) ]
