open Repair_relational
open Repair_fd
open Repair_mpd
open Helpers
module Rng = Repair_workload.Rng

let schema = Schema.make "R" [ "A"; "B" ]
let mk a b = Tuple.make [ Value.int a; Value.int b ]
let fd_ab = Fd_set.parse "A -> B"

let prob_table rows = Prob_table.of_table (Table.of_list schema rows)

(* ---------- Equation (2) ---------- *)

let test_probability () =
  let pt = prob_table [ (1, 0.9, mk 1 1); (2, 0.6, mk 1 2) ] in
  let tbl = Prob_table.table pt in
  check_float "both kept" (0.9 *. 0.6) (Prob_table.probability pt tbl);
  check_float "first only" (0.9 *. 0.4)
    (Prob_table.probability pt (Table.restrict tbl [ 1 ]));
  check_float "none" (0.1 *. 0.4)
    (Prob_table.probability pt (Table.empty schema));
  check_float "log agrees" (log (0.9 *. 0.4))
    (Prob_table.log_probability pt (Table.restrict tbl [ 1 ]))

let test_validation () =
  Alcotest.(check bool) "p > 1 rejected" true
    (try ignore (prob_table [ (1, 1.5, mk 1 1) ]); false
     with Invalid_argument _ -> true)

let test_certain () =
  let pt = prob_table [ (1, 1.0, mk 1 1); (2, 0.7, mk 1 2) ] in
  Alcotest.(check (list int)) "certain ids" [ 1 ] (Prob_table.certain pt)

(* ---------- reduction mechanics ---------- *)

let test_weights_of_probabilities () =
  let pt =
    prob_table [ (1, 0.9, mk 1 1); (2, 0.5, mk 1 2); (3, 0.3, mk 2 1); (4, 1.0, mk 2 2) ]
  in
  let w = Mpd.weights_of_probabilities pt in
  (* p ≤ 0.5 tuples dropped; the certain tuple gets the dominant weight. *)
  Alcotest.(check (list int)) "kept ids" [ 1; 4 ] (Table.ids w);
  check_float "log-odds weight" (log (0.9 /. 0.1)) (Table.weight w 1);
  Alcotest.(check bool) "certain dominates" true
    (Table.weight w 4 > Table.weight w 1)

let test_certain_conflict () =
  let pt = prob_table [ (1, 1.0, mk 1 1); (2, 1.0, mk 1 2) ] in
  match Mpd.solve ~strategy:Mpd.Poly fd_ab pt with
  | Ok None -> ()
  | _ -> Alcotest.fail "conflicting certain tuples must yield None"

let test_solve_known () =
  (* One A-group with a strong and a weak reading. *)
  let pt = prob_table [ (1, 0.9, mk 1 1); (2, 0.6, mk 1 2); (3, 0.8, mk 2 1) ] in
  match Mpd.solve ~strategy:Mpd.Poly fd_ab pt with
  | Ok (Some world) ->
    Alcotest.(check (list int)) "keeps strong readings" [ 1; 3 ] (Table.ids world)
  | _ -> Alcotest.fail "expected a world"

let test_hard_side_reported () =
  let d = Fd_set.parse "A -> B; B -> A2" in
  (* {A→B, B→C} shape: OSRSucceeds fails, Poly must report it. *)
  let schema3 = Schema.make "R" [ "A"; "B"; "A2" ] in
  let pt =
    Prob_table.of_table
      (Table.of_list schema3 [ (1, 0.9, Tuple.make [ Value.int 1; Value.int 1; Value.int 1 ]) ])
  in
  match Mpd.solve ~strategy:Mpd.Poly d pt with
  | Error stuck -> Alcotest.(check bool) "stuck nonempty" false (Fd_set.is_empty stuck)
  | Ok _ -> Alcotest.fail "expected hard-side error"

let test_reverse_reduction () =
  let t = Table.of_list schema [ (1, 1.0, mk 1 1); (2, 1.0, mk 1 2); (3, 1.0, mk 2 1) ] in
  let pt = Mpd.of_unweighted_table t in
  (match Mpd.solve ~strategy:Mpd.Exact_search fd_ab pt with
  | Ok (Some world) ->
    (* max-cardinality repair keeps 2 tuples *)
    Alcotest.(check int) "keeps 2" 2 (Table.size world)
  | _ -> Alcotest.fail "expected world");
  Alcotest.(check bool) "p out of range rejected" true
    (try ignore (Mpd.of_unweighted_table ~p:0.4 t); false
     with Invalid_argument _ -> true)

(* ---------- solve = brute force ---------- *)

let gen_prob_rows =
  QCheck2.Gen.(
    let prob = map (fun i -> float_of_int i /. 10.0) (int_range 1 10) in
    list_size (int_range 1 7) (triple (int_range 1 2) (int_range 1 3) prob))

let world_log_prob pt = function
  | Some w -> Prob_table.log_probability pt w
  | None -> neg_infinity

let prop_solve_matches_brute_force strategy name =
  qcheck ~count:80 name gen_prob_rows (fun rows ->
      let tbl =
        List.fold_left
          (fun t (a, b, p) -> Table.add ~weight:p t (mk a b))
          (Table.empty schema) rows
      in
      let pt = Prob_table.of_table tbl in
      let certain = Table.restrict tbl (Prob_table.certain pt) in
      if not (Fd_set.satisfied_by fd_ab certain) then true
      else
        match Mpd.solve ~strategy fd_ab pt with
        | Error _ -> false
        | Ok world ->
          let bf = Mpd.brute_force fd_ab pt in
          consistent_distance_eq ~eps:1e-6
            (world_log_prob pt world)
            (Prob_table.log_probability pt bf))

let prop_poly = prop_solve_matches_brute_force Mpd.Poly
    "MPD via OptSRepair equals brute force (A → B)"

let prop_exact = prop_solve_matches_brute_force Mpd.Exact_search
    "MPD via exact search equals brute force (A → B)"

let () =
  Alcotest.run "mpd"
    [ ( "probability",
        [ Alcotest.test_case "equation 2" `Quick test_probability;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "certain" `Quick test_certain ] );
      ( "reduction",
        [ Alcotest.test_case "weights" `Quick test_weights_of_probabilities;
          Alcotest.test_case "certain conflict" `Quick test_certain_conflict;
          Alcotest.test_case "known instance" `Quick test_solve_known;
          Alcotest.test_case "hard side" `Quick test_hard_side_reported;
          Alcotest.test_case "reverse reduction" `Quick test_reverse_reduction ] );
      ("optimality", [ prop_poly; prop_exact ]) ]
