open Repair_relational
open Repair_fd
open Helpers
module D = Repair_workload.Datasets
module Explain = Repair_srepair.Explain

let schema = Schema.make "R" [ "A"; "B" ]
let mk a b = Tuple.make [ Value.int a; Value.int b ]
let fd_ab = Fd_set.parse "A -> B"

(* ---------- Fd_index ---------- *)

let test_index_basic () =
  let idx = Fd_index.create fd_ab schema in
  Alcotest.(check int) "empty" 0 (Fd_index.size idx);
  Fd_index.add idx 1 (mk 1 1);
  Alcotest.(check bool) "same tuple compatible" true
    (Fd_index.compatible idx (mk 1 1));
  Alcotest.(check bool) "conflicting tuple detected" false
    (Fd_index.compatible idx (mk 1 2));
  Alcotest.(check (list int)) "conflict ids" [ 1 ]
    (Fd_index.conflicts idx (mk 1 2));
  Alcotest.(check bool) "unrelated tuple fine" true
    (Fd_index.compatible idx (mk 2 9))

let test_index_add_remove () =
  let idx = Fd_index.create fd_ab schema in
  Fd_index.add idx 1 (mk 1 1);
  Fd_index.add idx 2 (mk 1 2);
  Alcotest.(check bool) "now inconsistent" false (Fd_index.is_consistent idx);
  Fd_index.remove idx 2 (mk 1 2);
  Alcotest.(check bool) "consistent after removal" true (Fd_index.is_consistent idx);
  Alcotest.(check int) "size" 1 (Fd_index.size idx);
  Alcotest.(check bool) "duplicate id rejected" true
    (try Fd_index.add idx 1 (mk 3 3); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad removal rejected" true
    (try Fd_index.remove idx 9 (mk 1 1); false with Invalid_argument _ -> true)

let test_index_multi_fd () =
  let d = D.office_fds in
  let idx = Fd_index.build d D.office_table in
  Alcotest.(check int) "all indexed" 4 (Fd_index.size idx);
  Alcotest.(check bool) "office table inconsistent" false
    (Fd_index.is_consistent idx);
  (* conflicts of a fresh tuple matching HQ with yet another city *)
  let probe =
    Tuple.make [ Value.str "HQ"; Value.str "777"; Value.int 1; Value.str "Rome" ]
  in
  Alcotest.(check (list int)) "conflicts with all HQ tuples" [ 1; 2; 3 ]
    (Fd_index.conflicts idx probe)

let prop_index_matches_pairwise =
  qcheck ~count:60 "index conflicts = pairwise scan"
    QCheck2.Gen.(
      pair
        (gen_fd_set small_schema)
        (pair (gen_table ~max_size:8 small_schema) (gen_tuple small_schema)))
    (fun (d, (t, probe)) ->
      let idx = Fd_index.build d t in
      let scan =
        Table.fold
          (fun i tp _ acc ->
            if Fd_set.pair_consistent d small_schema probe tp then acc
            else i :: acc)
          t []
        |> List.sort compare
      in
      Fd_index.conflicts idx probe = scan
      && Fd_index.compatible idx probe = (scan = []))

let prop_index_consistency_matches =
  qcheck ~count:60 "index consistency = Fd_set.satisfied_by"
    QCheck2.Gen.(pair (gen_fd_set small_schema) (gen_table ~max_size:8 small_schema))
    (fun (d, t) ->
      Fd_index.is_consistent (Fd_index.build d t) = Fd_set.satisfied_by d t)

(* Model-based: a random add/remove sequence keeps the index in sync with
   a naive association-list reference. *)
let prop_index_model_based =
  qcheck ~count:60 "random op sequences match the reference model"
    QCheck2.Gen.(
      pair (gen_fd_set small_schema)
        (list_size (int_range 1 25)
           (pair bool (gen_tuple ~dom:3 small_schema))))
    (fun (d, ops) ->
      let idx = Fd_index.create d small_schema in
      let reference = ref [] in
      let next = ref 0 in
      let ok = ref true in
      List.iter
        (fun (is_add, tuple) ->
          (if is_add || !reference = [] then begin
             incr next;
             Fd_index.add idx !next tuple;
             reference := (!next, tuple) :: !reference
           end
           else
             match !reference with
             | (i, t) :: rest ->
               Fd_index.remove idx i t;
               reference := rest
             | [] -> ());
          (* compare a probe after every operation *)
          let probe = tuple in
          let expected =
            List.filter_map
              (fun (i, t) ->
                if Fd_set.pair_consistent d small_schema probe t then None
                else Some i)
              !reference
            |> List.sort compare
          in
          if Fd_index.conflicts idx probe <> expected then ok := false;
          if Fd_index.size idx <> List.length !reference then ok := false)
        ops;
      !ok)

(* ---------- Explain ---------- *)

let test_explain_office () =
  let s = Repair_srepair.Opt_s_repair.run_exn D.office_fds D.office_table in
  let reasons = Explain.deletions D.office_fds ~table:D.office_table s in
  Alcotest.(check int) "one deletion" 1 (List.length reasons);
  let r = List.hd reasons in
  Alcotest.(check int) "tuple 1 deleted" 1 r.Explain.deleted;
  Alcotest.(check int) "three conflict facts" 3 (List.length r.Explain.conflicts);
  Alcotest.(check (list int)) "no gratuitous deletions" []
    (Explain.gratuitous D.office_fds ~table:D.office_table s)

let test_explain_gratuitous () =
  (* S3 = {3,4}: deleting tuple 2 was unnecessary. *)
  let g = Explain.gratuitous D.office_fds ~table:D.office_table D.office_s3 in
  Alcotest.(check (list int)) "tuple 2 restorable" [ 2 ] g;
  let reasons = Explain.deletions D.office_fds ~table:D.office_table D.office_s3 in
  let r2 = List.find (fun r -> r.Explain.deleted = 2) reasons in
  Alcotest.(check string) "pp mentions gratuitous"
    "tuple 2: gratuitous deletion (restorable)"
    (Fmt.str "%a" Explain.pp_reason r2)

let test_explain_rejects_inconsistent () =
  Alcotest.(check bool) "rejects non-subset" true
    (try
       ignore (Explain.deletions D.office_fds ~table:D.office_table D.office_table);
       false
     with Invalid_argument _ -> true)

let prop_explain_complete =
  qcheck ~count:40 "every deletion from an S-repair has a conflict"
    QCheck2.Gen.(pair (gen_fd_set small_schema) (gen_table ~max_size:8 small_schema))
    (fun (d, t) ->
      let s = Repair_srepair.S_exact.optimal d t in
      let reasons = Explain.deletions d ~table:t s in
      (* exact optimum is maximal (weights positive), so no gratuitous
         deletions, and the count matches *)
      List.length reasons = Table.size t - Table.size s
      && List.for_all (fun r -> r.Explain.conflicts <> []) reasons)

let () =
  Alcotest.run "index+explain"
    [ ( "fd_index",
        [ Alcotest.test_case "basics" `Quick test_index_basic;
          Alcotest.test_case "add/remove" `Quick test_index_add_remove;
          Alcotest.test_case "multi-FD office" `Quick test_index_multi_fd;
          prop_index_matches_pairwise;
          prop_index_consistency_matches;
          prop_index_model_based ] );
      ( "explain",
        [ Alcotest.test_case "office" `Quick test_explain_office;
          Alcotest.test_case "gratuitous" `Quick test_explain_gratuitous;
          Alcotest.test_case "validation" `Quick test_explain_rejects_inconsistent;
          prop_explain_complete ] ) ]
