open Repair_sat

let clause lits = List.map (fun (v, s) -> if s then Cnf.pos v else Cnf.neg v) lits

let test_cnf_basics () =
  let f = Cnf.make ~n_vars:3 [ clause [ (0, true); (1, false) ] ] in
  Alcotest.(check int) "n_vars" 3 (Cnf.n_vars f);
  Alcotest.(check int) "n_clauses" 1 (Cnf.n_clauses f);
  Alcotest.(check bool) "2cnf" true (Cnf.is_2cnf f);
  Alcotest.(check bool) "mixed clause" false (Cnf.is_non_mixed f)

let test_cnf_validation () =
  Alcotest.(check bool) "var out of range" true
    (try ignore (Cnf.make ~n_vars:1 [ clause [ (3, true) ] ]); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "empty clause" true
    (try ignore (Cnf.make ~n_vars:1 [ [] ]); false
     with Invalid_argument _ -> true)

let test_eval () =
  let f =
    Cnf.make ~n_vars:2
      [ clause [ (0, true); (1, true) ]; clause [ (0, false); (1, false) ] ]
  in
  Alcotest.(check int) "TT sat 1st only... both? (T∨T)=1,(F∨F)=0 →1" 1
    (Cnf.count_satisfied [| true; true |] f);
  Alcotest.(check int) "TF sat both" 2 (Cnf.count_satisfied [| true; false |] f)

let test_exact_known () =
  (* x ∧ ¬x unsatisfiable together: max 1 of 2. *)
  let f = Cnf.make ~n_vars:1 [ [ Cnf.pos 0 ]; [ Cnf.neg 0 ] ] in
  let _, k = Max_sat.exact f in
  Alcotest.(check int) "max 1" 1 k;
  Alcotest.(check int) "min unsat 1" 1 (Max_sat.min_unsatisfied f);
  (* Satisfiable 2-CNF. *)
  let f2 =
    Cnf.make ~n_vars:2
      [ clause [ (0, true); (1, true) ]; clause [ (0, false); (1, true) ] ]
  in
  let _, k2 = Max_sat.exact f2 in
  Alcotest.(check int) "all satisfiable" 2 k2

let test_non_mixed () =
  let f =
    Cnf.make ~n_vars:3
      [ clause [ (0, true); (1, true) ]; clause [ (0, false); (2, false) ] ]
  in
  Alcotest.(check bool) "non-mixed" true (Cnf.is_non_mixed f)

let prop_local_search_sound =
  Helpers.qcheck ~count:60 "local search never beats exact and stays valid"
    QCheck2.Gen.(
      let* n_vars = int_range 2 5 in
      let* clauses =
        list_size (int_range 1 8)
          (list_size (int_range 1 3)
             (pair (int_range 0 (n_vars - 1)) bool))
      in
      return (n_vars, clauses))
    (fun (n_vars, raw) ->
      let f = Cnf.make ~n_vars (List.map clause raw) in
      let a, k = Max_sat.local_search ~seed:42 ~restarts:4 f in
      let _, opt = Max_sat.exact f in
      k = Cnf.count_satisfied a f && k <= opt && opt <= Cnf.n_clauses f)

let prop_exact_assignment_consistent =
  Helpers.qcheck ~count:60 "exact returns an assignment achieving its count"
    QCheck2.Gen.(
      let* n_vars = int_range 1 5 in
      let* clauses =
        list_size (int_range 1 6)
          (list_size (int_range 1 2) (pair (int_range 0 (n_vars - 1)) bool))
      in
      return (n_vars, clauses))
    (fun (n_vars, raw) ->
      let f = Cnf.make ~n_vars (List.map clause raw) in
      let a, k = Max_sat.exact f in
      Cnf.count_satisfied a f = k)

let () =
  Alcotest.run "sat"
    [ ( "cnf",
        [ Alcotest.test_case "basics" `Quick test_cnf_basics;
          Alcotest.test_case "validation" `Quick test_cnf_validation;
          Alcotest.test_case "eval" `Quick test_eval;
          Alcotest.test_case "non-mixed" `Quick test_non_mixed ] );
      ( "max-sat",
        [ Alcotest.test_case "exact known" `Quick test_exact_known;
          prop_local_search_sound;
          prop_exact_assignment_consistent ] ) ]
