(* Adversarial and corner-case tests cutting across libraries: multi-attr
   right-hand sides, duplicates, heavy weights, the paper's bigger FD sets
   run end to end against exact baselines. *)

open Repair_relational
open Repair_fd
open Helpers
module D = Repair_workload.Datasets
module Gen_table = Repair_workload.Gen_table
module Rng = Repair_workload.Rng

(* ---------- employee set (Example 3.1) end to end ---------- *)

let employee_tuple rng =
  let v bound = Value.int (Rng.in_range rng 1 bound) in
  Tuple.make [ v 3; v 3; v 3; v 3; v 2; v 3; v 3 ]

let test_employee_repair_matches_exact () =
  let rng = Rng.make 271 in
  for _ = 1 to 10 do
    let t =
      Table.of_tuples D.employee_schema
        (List.init 9 (fun _ -> employee_tuple rng))
    in
    let s = Repair_srepair.Opt_s_repair.run_exn D.delta_ssn t in
    Alcotest.(check bool) "consistent" true (Fd_set.satisfied_by D.delta_ssn s);
    check_float "matches exact"
      (Repair_srepair.S_exact.distance D.delta_ssn t)
      (Table.dist_sub s t)
  done

let test_passport_repair_matches_exact () =
  let rng = Rng.make 137 in
  for _ = 1 to 10 do
    let t =
      Gen_table.dirty rng D.passport_schema D.delta_passport
        { Gen_table.default with n = 9; noise = 0.3; domain_size = 3 }
    in
    let s = Repair_srepair.Opt_s_repair.run_exn D.delta_passport t in
    check_float "matches exact"
      (Repair_srepair.S_exact.distance D.delta_passport t)
      (Table.dist_sub s t)
  done

(* ---------- multi-attribute right-hand sides ---------- *)

let test_multi_rhs () =
  let schema = Schema.make "R" [ "A"; "B"; "C" ] in
  let d = Fd_set.parse "A -> B C" in
  let mk a b c = Tuple.make [ Value.int a; Value.int b; Value.int c ] in
  let t = Table.of_tuples schema [ mk 1 1 1; mk 1 1 2; mk 1 2 1 ] in
  let s = Repair_srepair.Opt_s_repair.run_exn d t in
  Alcotest.(check int) "keeps one of the A=1 group" 1 (Table.size s);
  check_float "matches exact" (Repair_srepair.S_exact.distance d t)
    (Table.dist_sub s t);
  (* normalized Δ behaves identically *)
  let s' = Repair_srepair.Opt_s_repair.run_exn (Fd_set.normalize d) t in
  check_float "normalization irrelevant" (Table.dist_sub s t) (Table.dist_sub s' t)

(* ---------- duplicates at scale ---------- *)

let test_heavy_duplicates () =
  let schema = Schema.make "R" [ "A"; "B" ] in
  let mk a b = Tuple.make [ Value.int a; Value.int b ] in
  (* 5 copies of (1,1), 3 copies of (1,2): optimal keeps the 5 copies. *)
  let rows =
    List.init 5 (fun i -> (i + 1, 1.0, mk 1 1))
    @ List.init 3 (fun i -> (i + 6, 1.0, mk 1 2))
  in
  let t = Table.of_list schema rows in
  let d = Fd_set.parse "A -> B" in
  let s = Repair_srepair.Opt_s_repair.run_exn d t in
  Alcotest.(check int) "keeps the majority copies" 5 (Table.size s);
  Alcotest.(check bool) "all kept tuples equal" true
    (List.for_all (Tuple.equal (mk 1 1)) (Table.tuples s));
  (* U-repair: 3 single-cell updates collapse the minority. *)
  let u = Repair_urepair.Opt_u_repair.solve_exn d t in
  check_float "update distance 3" 3.0 (Table.dist_upd u t)

(* ---------- extreme weights ---------- *)

let test_extreme_weights () =
  let schema = Schema.make "R" [ "A"; "B" ] in
  let mk a b = Tuple.make [ Value.int a; Value.int b ] in
  let t =
    Table.of_list schema
      [ (1, 1e6, mk 1 1); (2, 1e-6, mk 1 2); (3, 1e-6, mk 1 3) ]
  in
  let d = Fd_set.parse "A -> B" in
  let s = Repair_srepair.Opt_s_repair.run_exn d t in
  Alcotest.(check (list int)) "heavy tuple always survives" [ 1 ] (Table.ids s);
  check_float ~eps:1e-9 "distance is the two light tuples" 2e-6
    (Table.dist_sub s t)

(* ---------- single tuple / single attribute ---------- *)

let test_degenerate_shapes () =
  let schema1 = Schema.make "R" [ "A" ] in
  let t1 = Table.of_tuples schema1 [ Tuple.make [ Value.int 1 ]; Tuple.make [ Value.int 2 ] ] in
  (* consensus FD over a single attribute *)
  let d = Fd_set.parse "-> A" in
  let s = Repair_srepair.Opt_s_repair.run_exn d t1 in
  Alcotest.(check int) "one survivor" 1 (Table.size s);
  let u = Repair_urepair.Opt_u_repair.solve_exn d t1 in
  check_float "one update" 1.0 (Table.dist_upd u t1);
  (* single tuple: everything is trivially consistent *)
  let t2 = Table.of_tuples schema1 [ Tuple.make [ Value.int 1 ] ] in
  Alcotest.check table "single tuple untouched" t2
    (Repair_srepair.Opt_s_repair.run_exn d t2)

(* ---------- equivalence robustness ---------- *)

let test_equivalent_fd_sets_same_answers () =
  (* Two equivalent presentations of the same constraints must yield the
     same optimal distances. *)
  let d1 = Fd_set.parse "A -> B C; B -> C" in
  let d2 = Fd_set.parse "A -> B; B -> C; A -> C" in
  Alcotest.(check bool) "equivalent" true (Fd_set.equivalent d1 d2);
  let rng = Rng.make 5 in
  for _ = 1 to 10 do
    let t =
      Gen_table.dirty rng small_schema d1
        { Gen_table.default with n = 8; noise = 0.3; domain_size = 3 }
    in
    check_float "same exact distance"
      (Repair_srepair.S_exact.distance d1 t)
      (Repair_srepair.S_exact.distance d2 t)
  done

(* ---------- U-repair of Δ0 (intro example) ---------- *)

let test_delta0_u_repair () =
  (* Δ0 is U-tractable but S-hard: Section 4.3's first separation. *)
  let rng = Rng.make 404 in
  for _ = 1 to 5 do
    let t =
      Gen_table.dirty rng D.purchase_schema D.delta0
        { Gen_table.default with n = 4; noise = 0.4; domain_size = 2 }
    in
    let u = Repair_urepair.Opt_u_repair.solve_exn D.delta0 t in
    Alcotest.(check bool) "consistent" true (Fd_set.satisfied_by D.delta0 u);
    (* compare against exhaustive search over the 4x5 = 20 cell table *)
    check_float "matches exhaustive optimum"
      (Repair_urepair.U_exact.distance ~max_cells:20 D.delta0 t)
      (Table.dist_upd u t)
  done

(* ---------- large consistent tables are returned unchanged ---------- *)

let test_clean_input_fast_path () =
  let rng = Rng.make 9 in
  let t =
    Gen_table.consistent rng D.office_schema D.office_fds
      { Gen_table.default with n = 2_000; domain_size = 25 }
  in
  let s = Repair_srepair.Opt_s_repair.run_exn D.office_fds t in
  check_float "nothing deleted" 0.0 (Table.dist_sub s t);
  let u = Repair_urepair.Opt_u_repair.solve_exn D.office_fds t in
  check_float "nothing updated" 0.0 (Table.dist_upd u t)

(* ---------- stress: consistency invariants at n=300 ---------- *)

let test_stress_consistency_invariants () =
  let rng = Rng.make 31415 in
  List.iter
    (fun (name, schema, d) ->
      let t =
        Gen_table.dirty rng schema d
          { Gen_table.default with n = 300; noise = 0.1; domain_size = 8;
            weighted = true; duplicate_rate = 0.1 }
      in
      (match Repair_srepair.Opt_s_repair.run d t with
      | Ok s ->
        Alcotest.(check bool) (name ^ ": poly S consistent") true
          (Fd_set.satisfied_by d s)
      | Error _ -> ());
      let apx = Repair_srepair.S_approx.approx2 d t in
      Alcotest.(check bool) (name ^ ": approx consistent") true
        (Fd_set.satisfied_by d apx);
      let u, _ = Repair_urepair.U_approx.best d t in
      Alcotest.(check bool) (name ^ ": U approx consistent") true
        (Fd_set.satisfied_by d u))
    [ ("office", D.office_schema, D.office_fds);
      ("A->B->C", D.r3_schema, D.delta_a_to_b_to_c);
      ("marriage", D.r3_schema, D.delta_a_b_c_marriage);
      ("employee", D.employee_schema, D.delta_ssn);
      ("zip", D.zip_schema, D.delta_zip) ]

let () =
  Alcotest.run "adversarial"
    [ ( "paper FD sets end to end",
        [ Alcotest.test_case "employee vs exact" `Quick test_employee_repair_matches_exact;
          Alcotest.test_case "passport vs exact" `Quick test_passport_repair_matches_exact;
          Alcotest.test_case "Δ0 U-repair vs exhaustive" `Quick test_delta0_u_repair ] );
      ( "shapes",
        [ Alcotest.test_case "multi-attribute rhs" `Quick test_multi_rhs;
          Alcotest.test_case "heavy duplicates" `Quick test_heavy_duplicates;
          Alcotest.test_case "extreme weights" `Quick test_extreme_weights;
          Alcotest.test_case "degenerate shapes" `Quick test_degenerate_shapes;
          Alcotest.test_case "equivalent FD sets" `Quick test_equivalent_fd_sets_same_answers ] );
      ( "scale",
        [ Alcotest.test_case "clean input" `Quick test_clean_input_fast_path;
          Alcotest.test_case "stress invariants n=300" `Quick test_stress_consistency_invariants ] ) ]
