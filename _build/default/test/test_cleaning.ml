open Repair_relational
open Repair_fd
open Helpers
module Dirtiness = Repair_cleaning.Dirtiness
module Session = Repair_cleaning.Session
module D = Repair_workload.Datasets

(* ---------- dirtiness ---------- *)

let test_dirtiness_exact_on_tractable () =
  let e = Dirtiness.estimate D.office_fds D.office_table in
  Alcotest.(check bool) "deletions exact" true e.Dirtiness.deletions_exact;
  Alcotest.(check bool) "updates exact" true e.Dirtiness.updates_exact;
  check_float "deletions = 2" 2.0 e.Dirtiness.deletions_upper;
  check_float "updates = 2" 2.0 e.Dirtiness.updates_upper;
  Alcotest.(check int) "conflicts" 3 e.Dirtiness.conflicts;
  check_float "fraction dirty = 2/6" (2.0 /. 6.0)
    (Dirtiness.fraction_dirty e D.office_table)

let test_dirtiness_bounds_on_hard () =
  let rng = Repair_workload.Rng.make 17 in
  for _ = 1 to 10 do
    let t =
      Repair_workload.Gen_table.dirty rng D.r3_schema D.delta_a_to_b_to_c
        { Repair_workload.Gen_table.default with n = 10; noise = 0.3; domain_size = 3 }
    in
    let e = Dirtiness.estimate D.delta_a_to_b_to_c t in
    Alcotest.(check bool) "not exact" false e.Dirtiness.deletions_exact;
    let s_opt = Repair_srepair.S_exact.distance D.delta_a_to_b_to_c t in
    Alcotest.(check bool) "S bounds sandwich the optimum" true
      (e.Dirtiness.deletions_lower <= s_opt +. 1e-9
       && s_opt <= e.Dirtiness.deletions_upper +. 1e-9);
    Alcotest.(check bool) "U lower ≥ S lower (Cor 4.5)" true
      (e.Dirtiness.updates_lower >= e.Dirtiness.deletions_lower -. 1e-9)
  done

let test_dirtiness_clean_table () =
  let e = Dirtiness.estimate D.office_fds D.office_s1 in
  Alcotest.(check int) "no conflicts" 0 e.Dirtiness.conflicts;
  check_float "no deletions" 0.0 e.Dirtiness.deletions_upper;
  check_float "fraction zero" 0.0 (Dirtiness.fraction_dirty e D.office_s1)

(* ---------- session ---------- *)

let test_session_lifecycle () =
  let s0 = Session.start D.office_fds D.office_table in
  Alcotest.(check bool) "starts dirty" false (Session.is_clean s0);
  Alcotest.(check int) "three violations" 3 (List.length (Session.violations s0));
  check_float "no cost yet" 0.0 (Session.cost s0);
  (* Delete the culprit: clean. *)
  let s1 = Session.delete s0 1 in
  Alcotest.(check bool) "clean after delete" true (Session.is_clean s1);
  check_float "cost = weight 2" 2.0 (Session.cost s1);
  (* Undo. *)
  let s2 = Session.restore s1 1 in
  Alcotest.(check bool) "dirty again" false (Session.is_clean s2);
  check_float "cost back to 0" 0.0 (Session.cost s2);
  Alcotest.(check int) "log has 2 entries" 2 (List.length (Session.log s2))

let test_session_update_path () =
  (* Reproduce U2 (Figure 1f) by hand. *)
  let s0 = Session.start D.office_fds D.office_table in
  let s1 = Session.update s0 2 "floor" (Value.int 3) in
  let s2 = Session.update s1 2 "city" (Value.str "Paris") in
  let s3 = Session.update s2 3 "city" (Value.str "Paris") in
  Alcotest.(check bool) "clean" true (Session.is_clean s3);
  check_float "cost 3 (= dist_upd U2)" 3.0 (Session.cost s3);
  Alcotest.check table "current equals U2" D.office_u2 (Session.current s3)

let test_session_edit_then_delete_costs_delete () =
  let s0 = Session.start D.office_fds D.office_table in
  let s1 = Session.update s0 1 "city" (Value.str "Rome") in
  check_float "one cell of weight 2" 2.0 (Session.cost s1);
  let s2 = Session.delete s1 1 in
  check_float "delete supersedes edit" 2.0 (Session.cost s2)

let test_session_validation () =
  let s0 = Session.start D.office_fds D.office_table in
  Alcotest.(check bool) "delete unknown" true
    (try ignore (Session.delete s0 99); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "update bad attr" true
    (try ignore (Session.update s0 1 "nope" (Value.int 1)); false
     with Invalid_argument _ -> true);
  let s1 = Session.delete s0 1 in
  Alcotest.(check bool) "update deleted tuple" true
    (try ignore (Session.update s1 1 "city" (Value.int 1)); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "restore never-existing" true
    (try ignore (Session.restore s0 99); false with Invalid_argument _ -> true)

let test_session_auto_finish () =
  let s0 = Session.start D.office_fds D.office_table in
  let by_del = Session.auto_finish ~prefer:`Deletions s0 in
  Alcotest.(check bool) "deletions finish clean" true
    (Fd_set.satisfied_by D.office_fds by_del);
  check_float "optimal deletions" 2.0 (Table.dist_sub by_del D.office_table);
  let by_upd = Session.auto_finish ~prefer:`Updates s0 in
  Alcotest.(check bool) "updates finish clean" true
    (Fd_set.satisfied_by D.office_fds by_upd);
  check_float "optimal updates" 2.0 (Table.dist_upd by_upd D.office_table);
  (* partial manual work first, then auto *)
  let s1 = Session.update s0 2 "city" (Value.str "Paris") in
  let fin = Session.auto_finish ~prefer:`Updates s1 in
  Alcotest.(check bool) "finishes after manual edits" true
    (Fd_set.satisfied_by D.office_fds fin)

let prop_dirtiness_monotone_cleaning =
  qcheck ~count:20 "deleting a violating tuple never raises the estimate"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Repair_workload.Rng.make seed in
      let t =
        Repair_workload.Gen_table.dirty rng D.office_schema D.office_fds
          { Repair_workload.Gen_table.default with n = 12; noise = 0.3; domain_size = 3 }
      in
      let s0 = Session.start D.office_fds t in
      match Session.violations s0 with
      | [] -> true
      | (i, _, _) :: _ ->
        let s1 = Session.delete s0 i in
        let e0 = Session.dirtiness s0 and e1 = Session.dirtiness s1 in
        (* office Δ is tractable, so estimates are exact; removing a tuple
           can only shrink the optimal deletion cost. *)
        e1.Dirtiness.deletions_upper <= e0.Dirtiness.deletions_upper +. 1e-9)

let prop_session_log_replays =
  qcheck ~count:40 "replaying the log reproduces the session state"
    QCheck2.Gen.(
      list_size (int_range 1 15)
        (triple (int_range 1 4) (int_range 0 2) (int_range 1 5)))
    (fun raw_ops ->
      let s0 = Session.start D.office_fds D.office_table in
      let attrs = [ "facility"; "room"; "floor"; "city" ] in
      let apply s (id, kind, v) =
        try
          match kind with
          | 0 -> Session.delete s id
          | 1 -> Session.update s id (List.nth attrs (v mod 4)) (Value.int v)
          | _ -> Session.restore s id
        with Invalid_argument _ -> s
      in
      let final = List.fold_left apply s0 raw_ops in
      (* replay the recorded log on a fresh session *)
      let replayed =
        List.fold_left
          (fun s op ->
            match op with
            | Session.Delete i -> Session.delete s i
            | Session.Update (i, a, v) -> Session.update s i a v
            | Session.Restore i -> Session.restore s i)
          (Session.start D.office_fds D.office_table)
          (Session.log final)
      in
      Table.equal (Session.current final) (Session.current replayed)
      && Session.cost final = Session.cost replayed)

let () =
  Alcotest.run "cleaning"
    [ ( "dirtiness",
        [ Alcotest.test_case "exact on tractable" `Quick test_dirtiness_exact_on_tractable;
          Alcotest.test_case "bounds on hard" `Quick test_dirtiness_bounds_on_hard;
          Alcotest.test_case "clean table" `Quick test_dirtiness_clean_table ] );
      ( "session",
        [ Alcotest.test_case "lifecycle" `Quick test_session_lifecycle;
          Alcotest.test_case "update path (U2)" `Quick test_session_update_path;
          Alcotest.test_case "edit then delete" `Quick test_session_edit_then_delete_costs_delete;
          Alcotest.test_case "validation" `Quick test_session_validation;
          Alcotest.test_case "auto finish" `Quick test_session_auto_finish;
          prop_dirtiness_monotone_cleaning;
          prop_session_log_replays ] ) ]
