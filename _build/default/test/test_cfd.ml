open Repair_relational
open Repair_fd
open Repair_cfd
open Helpers

let schema = Schema.make "Cust" [ "country"; "zip"; "city" ]
let mk c z ci = Tuple.make [ Value.str c; Value.int z; Value.str ci ]

(* CFD: within the UK, zip determines city. *)
let uk_zip = Cfd.parse "country='UK' zip -> city"

(* CFD with a constant rhs: zip 10001 is always NYC (any country). *)
let nyc = Cfd.parse "zip='10001' -> city='NYC'"

let test_parse_and_pp () =
  Alcotest.(check string) "pp uk" "country='UK' zip → city=_"
    (Fmt.str "%a" Cfd.pp uk_zip);
  Alcotest.(check string) "pp nyc" "zip='10001' → city='NYC'"
    (Fmt.str "%a" Cfd.pp nyc);
  Alcotest.(check bool) "bad rhs arity" true
    (try ignore (Cfd.parse "A -> B C"); false with Failure _ -> true)

let test_of_fd () =
  let c = Cfd.of_fd (Fd.parse "A -> B") in
  Alcotest.(check string) "all wildcards" "A → B=_" (Fmt.str "%a" Cfd.pp c)

let test_matching () =
  let t_uk = mk "UK" 1 "Leeds" and t_fr = mk "FR" 1 "Paris" in
  Alcotest.(check bool) "UK matches" true (Cfd.matches_lhs schema uk_zip t_uk);
  Alcotest.(check bool) "FR does not" false (Cfd.matches_lhs schema uk_zip t_fr)

let test_single_tuple_violation () =
  let bad = mk "US" 10001 "Boston" and good = mk "US" 10001 "NYC" in
  Alcotest.(check bool) "violates constant rhs" true
    (Cfd.single_tuple_violation schema nyc bad);
  Alcotest.(check bool) "satisfies constant rhs" false
    (Cfd.single_tuple_violation schema nyc good);
  Alcotest.(check bool) "non-matching tuple is fine" false
    (Cfd.single_tuple_violation schema nyc (mk "US" 20001 "Boston"))

let test_pair_violation () =
  let t1 = mk "UK" 7 "Leeds" and t2 = mk "UK" 7 "York" and t3 = mk "FR" 7 "Paris" in
  Alcotest.(check bool) "same UK zip, different city" true
    (Cfd.pair_violation schema uk_zip t1 t2);
  Alcotest.(check bool) "FR tuple exempt" false
    (Cfd.pair_violation schema uk_zip t1 t3)

let test_satisfied_by () =
  let ok = Table.of_tuples schema [ mk "UK" 7 "Leeds"; mk "FR" 7 "Paris"; mk "US" 10001 "NYC" ] in
  Alcotest.(check bool) "clean table" true (Cfd.satisfied_by [ uk_zip; nyc ] ok);
  let bad = Table.add ok (mk "UK" 7 "York") in
  Alcotest.(check bool) "pair violation detected" false
    (Cfd.satisfied_by [ uk_zip; nyc ] bad)

let test_repair_mandatory_deletion () =
  (* The Boston/10001 tuple violates alone: it must go even though no pair
     conflicts. *)
  let t =
    Table.of_list schema
      [ (1, 1.0, mk "US" 10001 "Boston"); (2, 1.0, mk "US" 2 "Boston") ]
  in
  let s = Cfd.optimal_s_repair [ nyc ] t in
  Alcotest.(check (list int)) "keeps only tuple 2" [ 2 ] (Table.ids s);
  Alcotest.(check bool) "consistent" true (Cfd.satisfied_by [ nyc ] s)

let test_repair_weighted_pairs () =
  let t =
    Table.of_list schema
      [ (1, 3.0, mk "UK" 7 "Leeds");
        (2, 1.0, mk "UK" 7 "York");
        (3, 1.0, mk "UK" 8 "Hull") ]
  in
  let s = Cfd.optimal_s_repair [ uk_zip ] t in
  Alcotest.(check (list int)) "drops the light conflicting tuple" [ 1; 3 ]
    (Table.ids s)

let test_plain_fd_agrees_with_srepair () =
  (* With all-wildcard CFDs, the repair must match the FD machinery. *)
  let d = Fd_set.parse "country zip -> city" in
  let cfds = List.map Cfd.of_fd (Fd_set.to_list d) in
  let t =
    Table.of_list schema
      [ (1, 1.0, mk "UK" 7 "Leeds"); (2, 1.0, mk "UK" 7 "York");
        (3, 2.0, mk "FR" 7 "Paris") ]
  in
  check_float "same optimal distance"
    (Repair_srepair.S_exact.distance d t)
    (Table.dist_sub (Cfd.optimal_s_repair cfds t) t)

let prop_cfd_approx_bound =
  qcheck ~count:40 "CFD 2-approximation within factor 2 of exact"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Repair_workload.Rng.make seed in
      let t = ref (Table.empty schema) in
      for _ = 1 to 8 do
        t :=
          Table.add !t
            (mk
               (if Repair_workload.Rng.bool rng then "UK" else "FR")
               (Repair_workload.Rng.in_range rng 1 3)
               (List.nth [ "Leeds"; "York"; "NYC" ]
                  (Repair_workload.Rng.int rng 3)))
      done;
      let cfds = [ uk_zip; nyc ] in
      let apx = Cfd.approx_s_repair cfds !t in
      let opt = Cfd.optimal_s_repair cfds !t in
      Cfd.satisfied_by cfds apx
      && Table.dist_sub apx !t <= (2.0 *. Table.dist_sub opt !t) +. 1e-9)

let prop_cfd_repair_consistent =
  qcheck ~count:40 "CFD exact repair is always consistent"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Repair_workload.Rng.make seed in
      let t = ref (Table.empty schema) in
      for _ = 1 to 7 do
        t :=
          Table.add
            ~weight:(float_of_int (Repair_workload.Rng.in_range rng 1 3))
            !t
            (mk
               (if Repair_workload.Rng.bool rng then "UK" else "US")
               (Repair_workload.Rng.in_range rng 1 2)
               (List.nth [ "Leeds"; "NYC" ] (Repair_workload.Rng.int rng 2)))
      done;
      let cfds = [ uk_zip; nyc ] in
      Cfd.satisfied_by cfds (Cfd.optimal_s_repair cfds !t))

let () =
  Alcotest.run "cfd"
    [ ( "structure",
        [ Alcotest.test_case "parse & pp" `Quick test_parse_and_pp;
          Alcotest.test_case "of_fd" `Quick test_of_fd;
          Alcotest.test_case "matching" `Quick test_matching;
          Alcotest.test_case "single-tuple violation" `Quick test_single_tuple_violation;
          Alcotest.test_case "pair violation" `Quick test_pair_violation;
          Alcotest.test_case "satisfied_by" `Quick test_satisfied_by ] );
      ( "repair",
        [ Alcotest.test_case "mandatory deletion" `Quick test_repair_mandatory_deletion;
          Alcotest.test_case "weighted pairs" `Quick test_repair_weighted_pairs;
          Alcotest.test_case "plain FDs agree" `Quick test_plain_fd_agrees_with_srepair;
          prop_cfd_approx_bound;
          prop_cfd_repair_consistent ] ) ]
