open Repair_relational
open Repair_fd
open Helpers

let aset = Attr_set.of_list

(* ---------- Fd ---------- *)

let test_fd_parse () =
  let fd = Fd.parse "A B -> C" in
  Alcotest.check attr_set "lhs" (aset [ "A"; "B" ]) (Fd.lhs fd);
  Alcotest.check attr_set "rhs" (aset [ "C" ]) (Fd.rhs fd);
  let consensus = Fd.parse "-> C D" in
  Alcotest.(check bool) "consensus" true (Fd.is_consensus consensus);
  Alcotest.check attr_set "consensus rhs" (aset [ "C"; "D" ]) (Fd.rhs consensus);
  let arrow = Fd.parse "facility → city" in
  Alcotest.check attr_set "utf8 arrow lhs" (aset [ "facility" ]) (Fd.lhs arrow);
  Alcotest.(check bool) "bad arrow count" true
    (try ignore (Fd.parse "A -> B -> C"); false with Failure _ -> true);
  Alcotest.(check bool) "empty rhs" true
    (try ignore (Fd.parse "A -> "); false with Failure _ -> true)

let test_fd_predicates () =
  Alcotest.(check bool) "trivial" true (Fd.is_trivial (Fd.parse "A B -> A"));
  Alcotest.(check bool) "nontrivial" false (Fd.is_trivial (Fd.parse "A -> B"));
  Alcotest.(check bool) "unary" true (Fd.is_unary (Fd.parse "A -> B C"));
  Alcotest.(check bool) "not unary" false (Fd.is_unary (Fd.parse "A B -> C"))

let test_fd_split_minus () =
  let fd = Fd.parse "A -> B C" in
  Alcotest.(check int) "split count" 2 (List.length (Fd.split fd));
  let m = Fd.minus (Fd.parse "A B -> C D") (aset [ "B"; "C" ]) in
  Alcotest.check fd_set "minus" (Fd_set.of_list [ Fd.parse "A -> D" ])
    (Fd_set.of_list [ m ])

let test_fd_holds_on () =
  let s = Schema.make "R" [ "A"; "B" ] in
  let mk a b = Tuple.make [ Value.int a; Value.int b ] in
  let fd = Fd.parse "A -> B" in
  Alcotest.(check bool) "violating pair" false (Fd.holds_on s (mk 1 1) (mk 1 2) fd);
  Alcotest.(check bool) "agreeing pair" true (Fd.holds_on s (mk 1 1) (mk 1 1) fd);
  Alcotest.(check bool) "different lhs" true (Fd.holds_on s (mk 1 1) (mk 2 2) fd)

(* ---------- Fd_set: closure & entailment ---------- *)

let test_closure () =
  let d = Fd_set.parse "A -> B; B -> C" in
  Alcotest.check attr_set "cl(A)" (aset [ "A"; "B"; "C" ])
    (Fd_set.closure_of d (aset [ "A" ]));
  Alcotest.check attr_set "cl(B)" (aset [ "B"; "C" ])
    (Fd_set.closure_of d (aset [ "B" ]));
  Alcotest.check attr_set "cl(C)" (aset [ "C" ]) (Fd_set.closure_of d (aset [ "C" ]));
  Alcotest.check attr_set "cl(∅) empty" Attr_set.empty (Fd_set.consensus_attrs d)

let test_closure_consensus_chain () =
  (* ∅ → A and A → C make C a consensus attribute too. *)
  let d = Fd_set.parse "-> A; A -> C" in
  Alcotest.check attr_set "cl(∅)" (aset [ "A"; "C" ]) (Fd_set.consensus_attrs d);
  Alcotest.(check bool) "not consensus free" false (Fd_set.is_consensus_free d)

let test_entails_equivalent () =
  let d = Fd_set.parse "A -> B; B -> C" in
  Alcotest.(check bool) "entails A->C" true (Fd_set.entails d (Fd.parse "A -> C"));
  Alcotest.(check bool) "entails trivial" true (Fd_set.entails d (Fd.parse "A B -> A"));
  Alcotest.(check bool) "no reverse" false (Fd_set.entails d (Fd.parse "C -> A"));
  let d2 = Fd_set.parse "A -> B C; B -> C" in
  Alcotest.(check bool) "equivalent" true (Fd_set.equivalent d d2);
  Alcotest.(check bool) "not equivalent" false
    (Fd_set.equivalent d (Fd_set.parse "A -> B"))

(* ---------- Fd_set: structure ---------- *)

let test_common_lhs () =
  Alcotest.(check (option string)) "office" (Some "facility")
    (Fd_set.common_lhs (Fd_set.parse "facility -> city; facility room -> floor"));
  Alcotest.(check (option string)) "none" None
    (Fd_set.common_lhs (Fd_set.parse "A -> B; B -> C"));
  Alcotest.(check (option string)) "empty set" None (Fd_set.common_lhs Fd_set.empty)

let test_consensus_fd () =
  let d = Fd_set.parse "-> B; A -> C" in
  (match Fd_set.consensus_fd d with
  | Some fd -> Alcotest.check attr_set "rhs B" (aset [ "B" ]) (Fd.rhs fd)
  | None -> Alcotest.fail "expected consensus FD");
  Alcotest.(check bool) "none" true
    (Fd_set.consensus_fd (Fd_set.parse "A -> B") = None)

let test_lhs_marriage () =
  (match Fd_set.lhs_marriage (Fd_set.parse "A -> B; B -> A; B -> C") with
  | Some (x1, x2) ->
    Alcotest.(check bool) "A,B sides" true
      (Attr_set.equal x1 (aset [ "A" ]) && Attr_set.equal x2 (aset [ "B" ])
       || Attr_set.equal x1 (aset [ "B" ]) && Attr_set.equal x2 (aset [ "A" ]))
  | None -> Alcotest.fail "expected marriage");
  Alcotest.(check bool) "employee marriage" true
    (Fd_set.lhs_marriage
       (Fd_set.parse
          "ssn -> first; ssn -> last; first last -> ssn; ssn -> address; ssn \
           office -> phone; ssn office -> fax")
     <> None);
  Alcotest.(check bool) "no marriage in chain-of-two" true
    (Fd_set.lhs_marriage (Fd_set.parse "A -> B; B -> C") = None);
  (* closures must coincide *)
  Alcotest.(check bool) "A->B,B->C closures differ" true
    (Fd_set.lhs_marriage (Fd_set.parse "A -> B; C -> D") = None)

let test_is_chain () =
  Alcotest.(check bool) "office is chain" true
    (Fd_set.is_chain (Fd_set.parse "facility -> city; facility room -> floor"));
  Alcotest.(check bool) "incomparable lhs" false
    (Fd_set.is_chain (Fd_set.parse "A -> B; C -> D"));
  Alcotest.(check bool) "empty chain" true (Fd_set.is_chain Fd_set.empty)

let test_local_minima () =
  let d = Fd_set.parse "A B -> C; A -> D; B -> E" in
  let minima = Fd_set.local_minima d in
  Alcotest.(check int) "two minima" 2 (List.length minima);
  Alcotest.(check bool) "A and B" true
    (List.exists (Attr_set.equal (aset [ "A" ])) minima
     && List.exists (Attr_set.equal (aset [ "B" ])) minima)

let test_components () =
  let d = Fd_set.parse "A -> B; B -> C; D -> E; F G -> H" in
  let comps = Fd_set.components d in
  Alcotest.(check int) "three components" 3 (List.length comps);
  let sizes = List.map Fd_set.size comps |> List.sort compare in
  Alcotest.(check (list int)) "sizes" [ 1; 1; 2 ] sizes;
  (* bridging FD merges components *)
  let d2 = Fd_set.add (Fd.parse "C -> D") d in
  Alcotest.(check int) "bridge merges" 2 (List.length (Fd_set.components d2))

let test_normalize () =
  let d = Fd_set.parse "A -> B C; B -> B" in
  let n = Fd_set.normalize d in
  Alcotest.(check int) "split & dropped trivial" 2 (Fd_set.size n);
  Alcotest.(check bool) "all singleton rhs" true
    (List.for_all (fun fd -> Attr_set.cardinal (Fd.rhs fd) = 1) (Fd_set.to_list n))

(* ---------- satisfaction ---------- *)

let office = Repair_workload.Datasets.office_table
let office_fds = Repair_workload.Datasets.office_fds

let test_satisfaction () =
  Alcotest.(check bool) "T violates" false (Fd_set.satisfied_by office_fds office);
  Alcotest.(check bool) "S1 ok" true
    (Fd_set.satisfied_by office_fds Repair_workload.Datasets.office_s1);
  Alcotest.(check bool) "U2 ok" true
    (Fd_set.satisfied_by office_fds Repair_workload.Datasets.office_u2);
  Alcotest.(check bool) "empty table" true
    (Fd_set.satisfied_by office_fds (Table.empty (Table.schema office)))

let test_violations () =
  let v = Fd_set.violations office_fds office in
  (* tuples 1,2 violate both FDs; 1,3 violate facility→city *)
  Alcotest.(check int) "three violations" 3 (List.length v);
  Alcotest.(check bool) "pair (1,2) twice" true
    (List.length (List.filter (fun (i, j, _) -> i = 1 && j = 2) v) = 2)

(* ---------- Cover ---------- *)

let test_minimal_cover () =
  let d = Fd_set.parse "A -> B C; B -> C; A -> B" in
  let m = Cover.minimal d in
  Alcotest.(check bool) "equivalent" true (Fd_set.equivalent d m);
  Alcotest.(check int) "redundancy removed" 2 (Fd_set.size m)

let test_extraneous_lhs () =
  let d = Fd_set.parse "A -> B; A B -> C" in
  let m = Cover.minimal d in
  Alcotest.(check bool) "equivalent" true (Fd_set.equivalent d m);
  Alcotest.(check bool) "AB -> C shrunk to A -> C" true
    (Fd_set.mem (Fd.parse "A -> C") m)

let test_keys () =
  let d = Fd_set.parse "A -> B; B -> C" in
  let ks = Cover.keys d ~attrs:(aset [ "A"; "B"; "C" ]) in
  Alcotest.(check int) "single key" 1 (List.length ks);
  Alcotest.check attr_set "A is the key" (aset [ "A" ]) (List.hd ks);
  let d2 = Fd_set.parse "A -> B; B -> A" in
  let ks2 = Cover.keys d2 ~attrs:(aset [ "A"; "B"; "C" ]) in
  Alcotest.(check int) "two keys" 2 (List.length ks2)

(* ---------- Lhs_analysis ---------- *)

let test_mlc () =
  Alcotest.(check int) "common lhs" 1
    (Lhs_analysis.mlc (Fd_set.parse "A B -> C; A -> D"));
  Alcotest.(check int) "disjoint" 2
    (Lhs_analysis.mlc (Fd_set.parse "A -> B; C -> D"));
  Alcotest.(check bool) "consensus rejected" true
    (try ignore (Lhs_analysis.mlc (Fd_set.parse "-> A")); false
     with Invalid_argument _ -> true)

let test_mfs_mci_families () =
  (* Section 4.4: MFS(Δk) = k+1, MCI(Δk) = k; MFS(Δ'k) = 2, MCI(Δ'k) = 1. *)
  List.iter
    (fun k ->
      let _, dk = Repair_workload.Datasets.delta_k k in
      Alcotest.(check int) (Printf.sprintf "MFS Δ%d" k) (k + 1)
        (Lhs_analysis.mfs dk);
      (* The paper states MCI(Δk) = k via A0's core implicant {B1..Bk};
         for k = 1 attribute C needs the size-2 core implicant {B0, A1},
         so MCI = max(k, 2). The Θ(k²) claim is unaffected. *)
      Alcotest.(check int) (Printf.sprintf "MCI Δ%d" k) (max k 2)
        (Lhs_analysis.mci dk);
      Alcotest.(check int) (Printf.sprintf "KL ratio Δ%d" k)
        ((max k 2 + 2) * ((2 * (k + 1)) - 1))
        (Lhs_analysis.kl_ratio dk);
      let _, dk' = Repair_workload.Datasets.delta'_k k in
      Alcotest.(check int) (Printf.sprintf "MFS Δ'%d" k) 2 (Lhs_analysis.mfs dk');
      Alcotest.(check int) (Printf.sprintf "MCI Δ'%d" k) 1 (Lhs_analysis.mci dk');
      Alcotest.(check int) (Printf.sprintf "KL ratio Δ'%d" k) 9
        (Lhs_analysis.kl_ratio dk');
      Alcotest.(check int)
        (Printf.sprintf "mlc Δ'%d" k)
        ((k + 2) / 2)
        (Lhs_analysis.mlc dk'))
    [ 1; 2; 3; 4 ]

let test_our_ratio () =
  (* Theorem 4.1 refinement: disjoint union takes the max of the parts. *)
  Alcotest.(check int) "single FD" 2
    (Lhs_analysis.our_ratio (Fd_set.parse "A -> B"));
  Alcotest.(check int) "disjoint union" 2
    (Lhs_analysis.our_ratio (Fd_set.parse "A -> B; C -> D"));
  Alcotest.(check int) "trivial" 1
    (Lhs_analysis.our_ratio Fd_set.empty)

let test_implicants () =
  let d = Fd_set.parse "A -> C; B -> C" in
  let imps = Lhs_analysis.implicants d "C" in
  Alcotest.(check int) "two implicants" 2 (List.length imps);
  let core = Lhs_analysis.min_core_implicant d "C" in
  Alcotest.(check int) "core hits both" 2 (Attr_set.cardinal core);
  (* A0's core implicant in Δk is {B1..Bk} (paper, Section 4.4). *)
  let _, d2 = Repair_workload.Datasets.delta_k 2 in
  Alcotest.check attr_set "Δ2 core implicant of A0" (aset [ "B1"; "B2" ])
    (Lhs_analysis.min_core_implicant d2 "A0")

(* ---------- Armstrong relations ---------- *)

let test_armstrong_known () =
  let d = Fd_set.parse "A -> B" in
  let t = Armstrong.relation d small_schema in
  Alcotest.(check bool) "satisfies A→B" true (Fd_set.satisfied_by d t);
  Alcotest.(check bool) "satisfies entailed A→B (trivial family)" true
    (Fd_set.satisfied_by (Fd_set.parse "A B -> B") t);
  Alcotest.(check bool) "violates B→A" false
    (Fd_set.satisfied_by (Fd_set.parse "B -> A") t);
  Alcotest.(check bool) "violates A→C" false
    (Fd_set.satisfied_by (Fd_set.parse "A -> C") t);
  Alcotest.(check bool) "duplicate free" true (Table.is_duplicate_free t)

let test_closed_sets () =
  let d = Fd_set.parse "A -> B" in
  let cs = Armstrong.closed_sets d small_schema in
  (* closed: ∅, B, C, BC, AB, ABC — not A, AC (closure adds B). *)
  Alcotest.(check int) "six closed sets" 6 (List.length cs);
  Alcotest.(check bool) "A not closed" false
    (List.exists (Attr_set.equal (aset [ "A" ])) cs)

let prop_armstrong_exact =
  qcheck ~count:60 "Armstrong relation satisfies exactly the entailed FDs"
    QCheck2.Gen.(pair (gen_fd_set ~max_fds:3 small_schema) (gen_fd small_schema))
    (fun (d, probe) ->
      let t = Armstrong.relation d small_schema in
      Fd_set.satisfied_by (Fd_set.of_list [ probe ]) t = Fd_set.entails d probe)

(* ---------- properties ---------- *)

let prop_closure_monotone_idempotent =
  qcheck "closure is monotone, extensive and idempotent"
    QCheck2.Gen.(pair (gen_fd_set small_schema) (int_range 0 7))
    (fun (d, mask) ->
      let attrs = Schema.attributes small_schema in
      let x =
        Attr_set.of_list (List.filteri (fun i _ -> mask land (1 lsl i) <> 0) attrs)
      in
      let cl = Fd_set.closure_of d x in
      Attr_set.subset x cl
      && Attr_set.equal cl (Fd_set.closure_of d cl)
      && Attr_set.subset cl (Fd_set.closure_of d (Attr_set.add "A" x)))

let prop_minimal_cover_equivalent =
  qcheck "minimal cover preserves the closure" (gen_fd_set ~max_fds:4 small_schema)
    (fun d -> Fd_set.equivalent d (Cover.minimal d))

let prop_satisfaction_matches_violations =
  qcheck "satisfied_by agrees with violations"
    QCheck2.Gen.(pair (gen_fd_set small_schema) (gen_table small_schema))
    (fun (d, t) -> Fd_set.satisfied_by d t = (Fd_set.violations d t = []))

let prop_pair_consistent_symmetric =
  qcheck "pair consistency is symmetric"
    QCheck2.Gen.(
      triple (gen_fd_set small_schema) (gen_tuple small_schema)
        (gen_tuple small_schema))
    (fun (d, t1, t2) ->
      Fd_set.pair_consistent d small_schema t1 t2
      = Fd_set.pair_consistent d small_schema t2 t1)

let prop_minus_removes_attrs =
  qcheck "Δ − X mentions no attribute of X" (gen_fd_set small_schema) (fun d ->
      let x = aset [ "A" ] in
      Attr_set.disjoint (Fd_set.attrs (Fd_set.minus d x)) x)

let prop_components_partition =
  qcheck "components partition Δ and are attribute-disjoint"
    (gen_fd_set ~max_fds:4 small_schema)
    (fun d ->
      let comps = Fd_set.components d in
      let total = List.fold_left (fun acc c -> acc + Fd_set.size c) 0 comps in
      let rec pairwise_disjoint = function
        | [] -> true
        | c :: rest ->
          List.for_all
            (fun c' -> Attr_set.disjoint (Fd_set.attrs c) (Fd_set.attrs c'))
            rest
          && pairwise_disjoint rest
      in
      total = Fd_set.size d && pairwise_disjoint comps)

let () =
  Alcotest.run "fd"
    [ ( "fd",
        [ Alcotest.test_case "parse" `Quick test_fd_parse;
          Alcotest.test_case "predicates" `Quick test_fd_predicates;
          Alcotest.test_case "split/minus" `Quick test_fd_split_minus;
          Alcotest.test_case "holds_on" `Quick test_fd_holds_on ] );
      ( "closure",
        [ Alcotest.test_case "basic" `Quick test_closure;
          Alcotest.test_case "consensus chain" `Quick test_closure_consensus_chain;
          Alcotest.test_case "entails/equivalent" `Quick test_entails_equivalent ] );
      ( "structure",
        [ Alcotest.test_case "common lhs" `Quick test_common_lhs;
          Alcotest.test_case "consensus fd" `Quick test_consensus_fd;
          Alcotest.test_case "lhs marriage" `Quick test_lhs_marriage;
          Alcotest.test_case "chain" `Quick test_is_chain;
          Alcotest.test_case "local minima" `Quick test_local_minima;
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "normalize" `Quick test_normalize ] );
      ( "satisfaction",
        [ Alcotest.test_case "office" `Quick test_satisfaction;
          Alcotest.test_case "violations" `Quick test_violations ] );
      ( "cover",
        [ Alcotest.test_case "minimal" `Quick test_minimal_cover;
          Alcotest.test_case "extraneous lhs" `Quick test_extraneous_lhs;
          Alcotest.test_case "keys" `Quick test_keys ] );
      ( "armstrong",
        [ Alcotest.test_case "known" `Quick test_armstrong_known;
          Alcotest.test_case "closed sets" `Quick test_closed_sets;
          prop_armstrong_exact ] );
      ( "lhs analysis",
        [ Alcotest.test_case "mlc" `Quick test_mlc;
          Alcotest.test_case "Δk and Δ'k measures (§4.4)" `Quick test_mfs_mci_families;
          Alcotest.test_case "our ratio" `Quick test_our_ratio;
          Alcotest.test_case "implicants" `Quick test_implicants ] );
      ( "properties",
        [ prop_closure_monotone_idempotent;
          prop_minimal_cover_equivalent;
          prop_satisfaction_matches_violations;
          prop_pair_consistent_symmetric;
          prop_minus_removes_attrs;
          prop_components_partition ] ) ]
