open Repair_relational
open Repair_fd
open Repair_enumerate
open Helpers
module D = Repair_workload.Datasets
module Gen_fd = Repair_workload.Gen_fd
module Gen_table = Repair_workload.Gen_table
module Rng = Repair_workload.Rng

let schema2 = Schema.make "R" [ "A"; "B" ]
let mk a b = Tuple.make [ Value.int a; Value.int b ]
let fd_ab = Fd_set.parse "A -> B"

(* ---------- enumeration ---------- *)

let test_enumerate_known () =
  (* (1,1) (1,2) (2,1): repairs are {1,3} and {2,3}. *)
  let t = Table.of_list schema2 [ (1, 1.0, mk 1 1); (2, 1.0, mk 1 2); (3, 1.0, mk 2 1) ] in
  let reps = Enumerate.s_repairs fd_ab t in
  Alcotest.(check int) "two repairs" 2 (List.length reps);
  List.iter
    (fun s ->
      Alcotest.(check bool) "each is an S-repair" true
        (Repair_srepair.S_check.is_s_repair fd_ab ~of_:t s))
    reps

let test_enumerate_consistent_table () =
  let t = Table.of_list schema2 [ (1, 1.0, mk 1 1); (2, 1.0, mk 2 2) ] in
  let reps = Enumerate.s_repairs fd_ab t in
  Alcotest.(check int) "single repair" 1 (List.length reps);
  Alcotest.check table "the table itself" t (List.hd reps)

let test_enumerate_empty () =
  let t = Table.empty schema2 in
  Alcotest.(check int) "empty table has the empty repair" 1
    (List.length (Enumerate.s_repairs fd_ab t))

let test_enumerate_office () =
  (* Office: conflicts 1-2 and 1-3, so repairs = {1,4} and {2,3,4}. *)
  let reps = Enumerate.s_repairs D.office_fds D.office_table in
  Alcotest.(check int) "two repairs" 2 (List.length reps);
  let optimal = Enumerate.optimal_s_repairs D.office_fds D.office_table in
  (* weights: {1,4} = 4; {2,3,4} = 4 — both optimal. *)
  Alcotest.(check int) "both are weight-optimal" 2 (List.length optimal)

let test_enumerate_limit () =
  (* An n-tuple all-conflicting instance has n repairs; limit must trip. *)
  let t =
    Table.of_list schema2 (List.init 6 (fun i -> (i + 1, 1.0, mk 1 (i + 1))))
  in
  Alcotest.(check int) "six singleton repairs" 6
    (Enumerate.count_s_repairs fd_ab t);
  Alcotest.(check bool) "limit raises" true
    (try ignore (Enumerate.s_repairs ~limit:3 fd_ab t); false
     with Failure _ -> true)

let test_cardinality_exists () =
  let t = Table.of_list schema2 [ (1, 1.0, mk 1 1); (2, 1.0, mk 1 2); (3, 1.0, mk 2 1) ] in
  Alcotest.(check bool) "1 deletion enough" true
    (Enumerate.cardinality_repair_exists fd_ab t ~max_deletions:1);
  Alcotest.(check bool) "0 deletions not enough" false
    (Enumerate.cardinality_repair_exists fd_ab t ~max_deletions:0)

(* Every enumerated repair is maximal-consistent; their count matches a
   brute-force maximal-subset scan. *)
let prop_enumeration_sound_complete =
  qcheck ~count:40 "enumeration = brute-force maximal consistent subsets"
    QCheck2.Gen.(pair (gen_fd_set small_schema) (gen_table ~max_size:6 small_schema))
    (fun (d, t) ->
      let reps = Enumerate.s_repairs d t in
      let brute =
        (* maximal consistent subsets by scanning all subsets *)
        let ids = Array.of_list (Table.ids t) in
        let n = Array.length ids in
        let subsets =
          List.init (1 lsl n) (fun mask ->
              Table.restrict t
                (List.filteri (fun b _ -> mask land (1 lsl b) <> 0)
                   (Array.to_list ids)))
        in
        let consistent = List.filter (Fd_set.satisfied_by d) subsets in
        List.filter
          (fun s ->
            not
              (List.exists
                 (fun s' ->
                   Table.size s' > Table.size s
                   && Table.is_subset_of s s'
                   && Fd_set.satisfied_by d s')
                 consistent))
          consistent
      in
      List.length reps = List.length brute
      && List.for_all
           (fun s -> Repair_srepair.S_check.is_s_repair d ~of_:t s)
           reps)

(* ---------- counting ---------- *)

let test_count_known () =
  let t = Table.of_list schema2 [ (1, 1.0, mk 1 1); (2, 1.0, mk 1 2); (3, 1.0, mk 2 1) ] in
  (* optimal repairs: delete tuple 1 or tuple 2 → 2 optima *)
  Alcotest.(check int) "two optima" 2 (Count.optimal_s_repairs_exn fd_ab t);
  (* weighted: tuple 1 heavier → unique optimum *)
  let t2 = Table.of_list schema2 [ (1, 2.0, mk 1 1); (2, 1.0, mk 1 2); (3, 1.0, mk 2 1) ] in
  Alcotest.(check int) "unique optimum" 1 (Count.optimal_s_repairs_exn fd_ab t2)

let test_count_office () =
  (* S1 and S2 both have distance 2. *)
  Alcotest.(check int) "office has 2 optimal repairs" 2
    (Count.optimal_s_repairs_exn D.office_fds D.office_table)

let test_count_refuses_marriage () =
  match Count.optimal_s_repairs D.delta_a_b_c_marriage (Table.empty D.r3_schema) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "marriage should be refused"

let prop_count_matches_enumeration =
  qcheck ~count:30 "polynomial count = enumerated count on chain FD sets"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.make seed in
      let schema, d = Gen_fd.chain rng ~n_attrs:4 ~n_fds:2 in
      let t =
        Gen_table.dirty rng schema d
          { Gen_table.default with n = 7; noise = 0.3; domain_size = 3 }
      in
      match Count.optimal_s_repairs d t with
      | Error _ -> false
      | Ok c ->
        c = List.length (Enumerate.optimal_s_repairs d t))

let prop_count_weight_matches_algorithm1 =
  qcheck ~count:30 "counting recursion's weight = OptSRepair's distance"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.make seed in
      let schema, d = Gen_fd.chain rng ~n_attrs:4 ~n_fds:3 in
      let t =
        Gen_table.dirty rng schema d
          { Gen_table.default with n = 12; noise = 0.3; domain_size = 3;
            weighted = true }
      in
      match Count.optimal_weight_and_count d t with
      | Error _ -> false
      | Ok (kept, _) ->
        consistent_distance_eq (Table.total_weight t -. kept)
          (Result.get_ok (Repair_srepair.Opt_s_repair.distance d t)))

let () =
  Alcotest.run "enumerate"
    [ ( "enumeration",
        [ Alcotest.test_case "known instance" `Quick test_enumerate_known;
          Alcotest.test_case "consistent table" `Quick test_enumerate_consistent_table;
          Alcotest.test_case "empty table" `Quick test_enumerate_empty;
          Alcotest.test_case "office" `Quick test_enumerate_office;
          Alcotest.test_case "limit" `Quick test_enumerate_limit;
          Alcotest.test_case "cardinality budget" `Quick test_cardinality_exists;
          prop_enumeration_sound_complete ] );
      ( "counting",
        [ Alcotest.test_case "known" `Quick test_count_known;
          Alcotest.test_case "office" `Quick test_count_office;
          Alcotest.test_case "marriage refused" `Quick test_count_refuses_marriage;
          prop_count_matches_enumeration;
          prop_count_weight_matches_algorithm1 ] ) ]
