open Repair_relational
open Repair_fd
open Helpers

let aset = Attr_set.of_list

let abc = aset [ "A"; "B"; "C" ]
let abcd = aset [ "A"; "B"; "C"; "D" ]

let test_project () =
  let d = Fd_set.parse "A -> B; B -> C" in
  let proj = Normalize.project d ~onto:(aset [ "A"; "C" ]) in
  Alcotest.(check bool) "A -> C survives" true
    (Fd_set.entails proj (Fd.parse "A -> C"));
  Alcotest.(check bool) "nothing about B" true
    (Attr_set.subset (Fd_set.attrs proj) (aset [ "A"; "C" ]))

let test_is_bcnf () =
  Alcotest.(check bool) "key FD only" true
    (Normalize.is_bcnf (Fd_set.parse "A -> B C") ~attrs:abc);
  Alcotest.(check bool) "transitive violates" false
    (Normalize.is_bcnf (Fd_set.parse "A -> B; B -> C") ~attrs:abc);
  Alcotest.(check bool) "empty Δ" true (Normalize.is_bcnf Fd_set.empty ~attrs:abc)

let test_is_3nf () =
  (* AB→C, C→B: C→B violates BCNF but B is prime (AB and AC are keys). *)
  let d = Fd_set.parse "A B -> C; C -> B" in
  Alcotest.(check bool) "3NF holds" true (Normalize.is_3nf d ~attrs:abc);
  Alcotest.(check bool) "BCNF fails" false (Normalize.is_bcnf d ~attrs:abc);
  Alcotest.(check bool) "transitive fails 3NF" false
    (Normalize.is_3nf (Fd_set.parse "A -> B; B -> C") ~attrs:abc)

let test_bcnf_decompose () =
  let d = Fd_set.parse "A -> B; B -> C" in
  let frags = Normalize.bcnf_decompose d ~attrs:abc in
  Alcotest.(check bool) "every fragment in BCNF" true
    (List.for_all
       (fun f -> Normalize.is_bcnf f.Normalize.fds ~attrs:f.Normalize.attrs)
       frags);
  let union =
    List.fold_left
      (fun acc f -> Attr_set.union acc f.Normalize.attrs)
      Attr_set.empty frags
  in
  Alcotest.check attr_set "attributes preserved" abc union;
  Alcotest.(check int) "two fragments" 2 (List.length frags)

let test_bcnf_decompose_table_lossless () =
  (* Lossless join on a concrete table: decompose, join back, compare. *)
  let schema = Schema.make "R" [ "A"; "B"; "C" ] in
  let d = Fd_set.parse "A -> B" in
  let mk a b c = Tuple.make [ Value.int a; Value.int b; Value.int c ] in
  let t = Table.of_tuples schema [ mk 1 10 100; mk 1 10 200; mk 2 20 100 ] in
  let frags = Normalize.bcnf_decompose d ~attrs:abc in
  let projected =
    List.map (fun f -> Normalize.decompose_table schema t f.Normalize.attrs) frags
  in
  (* natural join of the two fragments (they share A) *)
  match projected with
  | [ (s1, t1); (s2, t2) ] ->
    let joined = ref [] in
    Table.iter
      (fun _ u _ ->
        Table.iter
          (fun _ v _ ->
            let shared =
              Attr_set.inter (Schema.attribute_set s1) (Schema.attribute_set s2)
            in
            let agree =
              Attr_set.for_all
                (fun a ->
                  Value.equal (Tuple.get_attr s1 u a) (Tuple.get_attr s2 v a))
                shared
            in
            if agree then begin
              let values =
                List.map
                  (fun a ->
                    if Schema.mem s1 a then Tuple.get_attr s1 u a
                    else Tuple.get_attr s2 v a)
                  (Schema.attributes schema)
              in
              joined := Tuple.make values :: !joined
            end)
          t2)
      t1;
    let join_set = List.sort_uniq Tuple.compare !joined in
    let orig_set = List.sort_uniq Tuple.compare (Table.tuples t) in
    Alcotest.(check bool) "join reconstructs the table" true
      (join_set = orig_set)
  | _ -> Alcotest.fail "expected two fragments"

let test_synthesize_3nf () =
  let d = Fd_set.parse "A -> B; B -> C" in
  let frags = Normalize.synthesize_3nf d ~attrs:abc in
  Alcotest.(check bool) "all fragments in 3NF" true
    (List.for_all
       (fun f -> Normalize.is_3nf f.Normalize.fds ~attrs:f.Normalize.attrs)
       frags);
  (* Dependency preservation: the union of fragment projections entails Δ. *)
  let union_fds =
    List.fold_left
      (fun acc f -> Fd_set.union acc f.Normalize.fds)
      Fd_set.empty frags
  in
  Alcotest.(check bool) "dependencies preserved" true
    (List.for_all (Fd_set.entails union_fds) (Fd_set.to_list d));
  (* A fragment contains a key of the whole schema. *)
  let keys = Cover.keys d ~attrs:abc in
  Alcotest.(check bool) "some fragment holds a key" true
    (List.exists
       (fun f -> List.exists (fun k -> Attr_set.subset k f.Normalize.attrs) keys)
       frags)

let test_synthesize_with_loose_attr () =
  (* D occurs in no FD: it must still be stored. *)
  let d = Fd_set.parse "A -> B; B -> C" in
  let frags = Normalize.synthesize_3nf d ~attrs:abcd in
  let union =
    List.fold_left
      (fun acc f -> Attr_set.union acc f.Normalize.attrs)
      Attr_set.empty frags
  in
  Alcotest.check attr_set "all attributes covered" abcd union

let prop_bcnf_decomposition_sound =
  qcheck ~count:50 "BCNF decomposition: fragments in BCNF, attrs preserved"
    (gen_fd_set ~max_fds:3 small_schema)
    (fun d ->
      let frags = Normalize.bcnf_decompose d ~attrs:abc in
      List.for_all
        (fun f -> Normalize.is_bcnf f.Normalize.fds ~attrs:f.Normalize.attrs)
        frags
      && Attr_set.equal abc
           (List.fold_left
              (fun acc f -> Attr_set.union acc f.Normalize.attrs)
              Attr_set.empty frags))

let prop_3nf_dependency_preserving =
  qcheck ~count:50 "3NF synthesis preserves dependencies and attributes"
    (gen_fd_set ~max_fds:3 small_schema)
    (fun d ->
      let frags = Normalize.synthesize_3nf d ~attrs:abc in
      let union_fds =
        List.fold_left
          (fun acc f -> Fd_set.union acc f.Normalize.fds)
          Fd_set.empty frags
      in
      List.for_all (Fd_set.entails union_fds) (Fd_set.to_list d)
      && Attr_set.equal abc
           (List.fold_left
              (fun acc f -> Attr_set.union acc f.Normalize.attrs)
              Attr_set.empty frags))

let () =
  Alcotest.run "normalize"
    [ ( "projection",
        [ Alcotest.test_case "project" `Quick test_project ] );
      ( "normal forms",
        [ Alcotest.test_case "is_bcnf" `Quick test_is_bcnf;
          Alcotest.test_case "is_3nf" `Quick test_is_3nf ] );
      ( "decomposition",
        [ Alcotest.test_case "bcnf decompose" `Quick test_bcnf_decompose;
          Alcotest.test_case "lossless join" `Quick test_bcnf_decompose_table_lossless;
          Alcotest.test_case "3nf synthesis" `Quick test_synthesize_3nf;
          Alcotest.test_case "loose attribute" `Quick test_synthesize_with_loose_attr;
          prop_bcnf_decomposition_sound;
          prop_3nf_dependency_preserving ] ) ]
