(* Focused coverage for API corners not exercised by the thematic suites:
   smaller utilities, pretty-printers, generator structure, and the
   embedded hospital workload. *)

open Repair_relational
open Repair_fd
open Helpers
module D = Repair_workload.Datasets
module Rng = Repair_workload.Rng
module Gen_fd = Repair_workload.Gen_fd

let aset = Attr_set.of_list

(* ---------- graph utilities ---------- *)

let test_graph_weights () =
  let g = Repair_graph.Graph.of_edges ~weights:[| 1.0; 2.5; 4.0 |] 3 [ (0, 1) ] in
  check_float "total weight" 7.5 (Repair_graph.Graph.total_weight g);
  check_float "subgraph weight" 5.0 (Repair_graph.Graph.subgraph_weight g [ 0; 2 ]);
  Alcotest.(check bool) "pp mentions edges" true
    (String.length (Fmt.str "%a" Repair_graph.Graph.pp g) > 0)

(* ---------- rng ---------- *)

let test_rng_determinism () =
  let draw seed = List.init 10 (fun _ -> Rng.int (Rng.make seed) 100) in
  Alcotest.(check (list int)) "same seed, same stream" (draw 5) (draw 5);
  Alcotest.(check bool) "different seeds differ" true (draw 5 <> draw 6)

let test_rng_ranges () =
  let rng = Rng.make 1 in
  for _ = 1 to 200 do
    let x = Rng.in_range rng 3 7 in
    Alcotest.(check bool) "in range" true (x >= 3 && x <= 7)
  done;
  Alcotest.(check bool) "pick empty rejected" true
    (try ignore (Rng.pick rng ([] : int list)); false
     with Invalid_argument _ -> true);
  let xs = [ 1; 2; 3; 4; 5 ] in
  Alcotest.(check (list int)) "shuffle is a permutation" xs
    (List.sort compare (Rng.shuffle rng xs));
  let sub = Rng.split rng in
  Alcotest.(check bool) "split usable" true (Rng.int sub 10 >= 0)

(* ---------- covers ---------- *)

let test_cover_canonical () =
  let d = Fd_set.parse "A -> B; A -> C; B -> B" in
  let c = Cover.canonical d in
  Alcotest.(check bool) "equivalent" true (Fd_set.equivalent d c);
  (* same-lhs FDs merged into A -> BC *)
  Alcotest.(check int) "merged" 1 (Fd_set.size c);
  Alcotest.(check bool) "redundant detected" true
    (Cover.is_redundant (Fd_set.parse "A -> B; A -> B C") (Fd.parse "A -> B"))

(* ---------- dichotomy pretty-printers ---------- *)

let test_pp_step () =
  let txt step = Fmt.str "%a" Repair_dichotomy.Simplify.pp_step step in
  Alcotest.(check string) "common lhs" "(common lhs A)"
    (txt (Repair_dichotomy.Simplify.Common_lhs "A"));
  Alcotest.(check bool) "consensus mentions arrow" true
    (String.length (txt (Repair_dichotomy.Simplify.Consensus (Fd.parse "-> B"))) > 0);
  Alcotest.(check string) "marriage" "(lhs marriage (A, B))"
    (txt (Repair_dichotomy.Simplify.Marriage (aset [ "A" ], aset [ "B" ])))

(* ---------- generator structure ---------- *)

let test_gen_fd_families () =
  let rng = Rng.make 11 in
  let _, marriage = Gen_fd.marriage 2 in
  Alcotest.(check bool) "marriage has lhs marriage" true
    (Fd_set.lhs_marriage marriage <> None);
  let _, two = Gen_fd.two_unary () in
  Alcotest.(check int) "two unary FDs" 2 (Fd_set.size two);
  let _, chain = Gen_fd.chain rng ~n_attrs:5 ~n_fds:4 in
  Alcotest.(check bool) "chain is a chain" true (Fd_set.is_chain chain);
  let _, common = Gen_fd.common_lhs rng ~n_attrs:4 ~n_fds:3 in
  Alcotest.(check bool) "common lhs present" true (Fd_set.common_lhs common <> None)

(* ---------- datasets integrity ---------- *)

let test_dataset_consistency_flags () =
  Alcotest.(check bool) "S2 duplicate free + unweighted is from the paper" true
    (Table.is_duplicate_free D.office_s2);
  Alcotest.(check bool) "table1 sets all fail OSRSucceeds" true
    (List.for_all
       (fun (_, d) -> not (Repair_dichotomy.Simplify.succeeds d))
       D.table1)

let test_hospital_dataset () =
  let t = D.hospital ~n:300 () in
  Alcotest.(check int) "requested size" 300 (Table.size t);
  (* deterministic *)
  Alcotest.check table "deterministic" t (D.hospital ~n:300 ());
  Alcotest.(check bool) "dirty" false (Fd_set.satisfied_by D.hospital_fds t);
  Alcotest.(check bool) "hard for S-repairs" false
    (Repair_dichotomy.Simplify.succeeds D.hospital_fds);
  (* the whole cleaning pipeline runs on it *)
  let e = Repair_cleaning.Dirtiness.estimate D.hospital_fds t in
  Alcotest.(check bool) "bounds ordered" true
    (e.Repair_cleaning.Dirtiness.deletions_lower
     <= e.Repair_cleaning.Dirtiness.deletions_upper);
  let apx = Repair_srepair.S_approx.approx2 D.hospital_fds t in
  Alcotest.(check bool) "approx repair consistent" true
    (Fd_set.satisfied_by D.hospital_fds apx);
  let u, _ = Repair_urepair.U_approx.best D.hospital_fds t in
  Alcotest.(check bool) "update repair consistent" true
    (Fd_set.satisfied_by D.hospital_fds u)

(* ---------- mixed / misc validation ---------- *)

let test_mixed_validation () =
  let big =
    Table.of_tuples D.r3_schema
      (List.init 10 (fun i ->
           Tuple.make [ Value.int i; Value.int i; Value.int i ]))
  in
  Alcotest.(check bool) "oversized rejected" true
    (try
       ignore (Repair_mixed.Mixed_exact.optimal (Fd_set.parse "A -> B") big);
       false
     with Invalid_argument _ -> true)

let test_table_exists_forall () =
  let t = D.office_table in
  Alcotest.(check bool) "exists Paris" true
    (Table.exists
       (fun _ tp ->
         Value.equal (Tuple.get_attr D.office_schema tp "city") (Value.str "Paris"))
       t);
  Alcotest.(check bool) "not all Paris" false
    (Table.for_all
       (fun _ tp ->
         Value.equal (Tuple.get_attr D.office_schema tp "city") (Value.str "Paris"))
       t)

let test_implicants_nontrivial () =
  (* implicants of C under {A→B, B→C, AB→C}: minimal ones are {A} and {B}. *)
  let d = Fd_set.parse "A -> B; B -> C" in
  let imps = Lhs_analysis.implicants d "C" in
  Alcotest.(check int) "two minimal implicants" 2 (List.length imps);
  Alcotest.(check bool) "A and B" true
    (List.exists (Attr_set.equal (aset [ "A" ])) imps
     && List.exists (Attr_set.equal (aset [ "B" ])) imps)

(* ---------- scale smoke ---------- *)

let test_scale_smoke () =
  (* n = 20_000 through the tractable pipeline in well under a second. *)
  let rng = Rng.make 8 in
  let t =
    Repair_workload.Gen_table.dirty rng D.office_schema D.office_fds
      { Repair_workload.Gen_table.default with n = 20_000; noise = 0.03;
        domain_size = 60 }
  in
  let s = Repair_srepair.Opt_s_repair.run_exn D.office_fds t in
  Alcotest.(check bool) "consistent at 20k" true
    (Fd_set.satisfied_by D.office_fds s);
  Alcotest.(check bool) "kept most tuples" true
    (Table.size s > 17_000)

let () =
  Alcotest.run "api-surface"
    [ ( "utilities",
        [ Alcotest.test_case "graph weights" `Quick test_graph_weights;
          Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
          Alcotest.test_case "rng ranges" `Quick test_rng_ranges;
          Alcotest.test_case "canonical cover" `Quick test_cover_canonical;
          Alcotest.test_case "pp_step" `Quick test_pp_step;
          Alcotest.test_case "table exists/for_all" `Quick test_table_exists_forall;
          Alcotest.test_case "implicants" `Quick test_implicants_nontrivial;
          Alcotest.test_case "mixed validation" `Quick test_mixed_validation ] );
      ( "workload",
        [ Alcotest.test_case "generator families" `Quick test_gen_fd_families;
          Alcotest.test_case "dataset flags" `Quick test_dataset_consistency_flags;
          Alcotest.test_case "hospital dataset" `Quick test_hospital_dataset;
          Alcotest.test_case "scale smoke 20k" `Quick test_scale_smoke ] ) ]
