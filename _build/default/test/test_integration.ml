(* End-to-end tests through the Repair.Driver facade and CSV I/O —
   exercising the same flows as bin/repair_cli.ml. *)

module R = Repair_core.Repair
open R.Relational
open R.Fd
open Helpers
module D = R.Workload.Datasets

(* ---------- Driver strategy selection ---------- *)

let test_auto_poly_on_tractable () =
  let r = R.Driver.s_repair D.office_fds D.office_table in
  Alcotest.(check bool) "optimal" true r.optimal;
  check_float "distance" 2.0 r.distance;
  Alcotest.(check bool) "used Algorithm 1" true
    (r.method_used = "OptSRepair (Algorithm 1)")

let test_auto_exact_on_small_hard () =
  let mk a b c = Tuple.make [ Value.int a; Value.int b; Value.int c ] in
  let t =
    Table.of_tuples D.r3_schema [ mk 1 1 1; mk 1 1 2; mk 1 2 1 ]
  in
  let r = R.Driver.s_repair D.delta_a_to_b_to_c t in
  Alcotest.(check bool) "optimal" true r.optimal;
  Alcotest.(check bool) "used exact baseline" true
    (String.length r.method_used > 0 && r.method_used.[0] = 'e')

let test_auto_approx_on_large_hard () =
  let rng = R.Workload.Rng.make 1 in
  let t =
    R.Workload.Gen_table.dirty rng D.r3_schema D.delta_a_to_b_to_c
      { R.Workload.Gen_table.default with n = 200; noise = 0.1 }
  in
  let r = R.Driver.s_repair D.delta_a_to_b_to_c t in
  Alcotest.(check bool) "not claimed optimal" false r.optimal;
  check_float "ratio 2 certified" 2.0 r.ratio;
  Alcotest.(check bool) "consistent" true
    (Fd_set.satisfied_by D.delta_a_to_b_to_c r.result)

let test_forced_strategies () =
  let t = D.office_table in
  let poly = R.Driver.s_repair ~strategy:R.Driver.Poly D.office_fds t in
  let exact = R.Driver.s_repair ~strategy:R.Driver.Exact D.office_fds t in
  let approx = R.Driver.s_repair ~strategy:R.Driver.Approximate D.office_fds t in
  check_float "poly = exact" poly.distance exact.distance;
  Alcotest.(check bool) "approx within 2x" true
    (approx.distance <= (2.0 *. exact.distance) +. 1e-9);
  (* Poly on a hard set must raise. *)
  Alcotest.(check bool) "poly raises on hard set" true
    (try
       ignore (R.Driver.s_repair ~strategy:R.Driver.Poly D.delta_a_to_b_to_c
                 (Table.empty D.r3_schema) |> fun r -> r.result);
       (* empty table still fails in OptSRepair? It errors on Δ only after
          grouping; an empty table short-circuits nothing — run_exn fails
          whenever the FD set cannot be simplified. *)
       false
     with Failure _ -> true)

let test_u_driver () =
  let r = R.Driver.u_repair D.office_fds D.office_table in
  Alcotest.(check bool) "optimal" true r.optimal;
  check_float "distance 2" 2.0 r.distance;
  (* hard set on a tiny table: exact search *)
  let mk a b c = Tuple.make [ Value.int a; Value.int b; Value.int c ] in
  let t = Table.of_tuples D.r3_schema [ mk 1 1 1; mk 1 2 1 ] in
  let r2 = R.Driver.u_repair D.delta_a_to_b_to_c t in
  Alcotest.(check bool) "exact on small" true r2.optimal;
  (* hard set on a big table: certified approximation *)
  let rng = R.Workload.Rng.make 2 in
  let big =
    R.Workload.Gen_table.dirty rng D.r3_schema D.delta_a_to_b_to_c
      { R.Workload.Gen_table.default with n = 80; noise = 0.1 }
  in
  let r3 = R.Driver.u_repair D.delta_a_to_b_to_c big in
  Alcotest.(check bool) "ratio certified" true (r3.ratio >= 1.0);
  Alcotest.(check bool) "consistent" true
    (Fd_set.satisfied_by D.delta_a_to_b_to_c r3.result)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_describe () =
  let s = R.Driver.describe D.office_fds in
  Alcotest.(check bool) "mentions PTIME" true (contains s "polynomial");
  let h = R.Driver.describe D.delta_a_to_b_to_c in
  Alcotest.(check bool) "mentions APX" true (contains h "APX-complete");
  Alcotest.(check bool) "mentions KL ratio" true (contains h "Kolahi")

let test_multi_relation_repair () =
  (* Office + Purchase in one database, repaired per relation. *)
  let rng = R.Workload.Rng.make 6 in
  let purchase =
    R.Workload.Gen_table.dirty rng D.purchase_schema D.delta0
      { R.Workload.Gen_table.default with n = 20; noise = 0.2; domain_size = 4 }
  in
  let db =
    Database.empty
    |> fun db -> Database.add db ~name:"office" D.office_table
    |> fun db -> Database.add db ~name:"purchase" purchase
  in
  let constraints =
    [ ("office", D.office_fds); ("purchase", D.delta0) ]
  in
  let repaired, total = R.Driver.s_repair_database constraints db in
  Alcotest.(check bool) "office relation consistent" true
    (Fd_set.satisfied_by D.office_fds
       (Option.get (Database.find repaired "office")));
  Alcotest.(check bool) "purchase relation consistent" true
    (Fd_set.satisfied_by D.delta0
       (Option.get (Database.find repaired "purchase")));
  check_float "total = sum of per-relation distances" total
    (Database.dist_sub repaired db)

(* ---------- CSV end-to-end ---------- *)

let test_csv_repair_flow () =
  let csv =
    "#id,#weight,facility,room,floor,city\n\
     1,2,HQ,322,3,Paris\n\
     2,1,HQ,322,30,Madrid\n\
     3,1,HQ,122,1,Madrid\n\
     4,2,Lab1,B35,3,London\n"
  in
  let t = Csv_io.parse_string ~name:"Office" csv in
  (* Numeric-looking strings parse as ints, so compare behaviourally. *)
  Alcotest.(check int) "same size" (Table.size D.office_table) (Table.size t);
  let r = R.Driver.s_repair D.office_fds t in
  check_float "same optimal distance" 2.0 r.distance;
  let out = Csv_io.to_string r.result in
  let back = Csv_io.parse_string ~name:"Office" out in
  Alcotest.check table "repair roundtrips" r.result back

(* ---------- workload generators sanity ---------- *)

let test_generators_respect_fds () =
  let rng = R.Workload.Rng.make 99 in
  for _ = 1 to 10 do
    let t =
      R.Workload.Gen_table.consistent rng D.office_schema D.office_fds
        { R.Workload.Gen_table.default with n = 50; domain_size = 5 }
    in
    Alcotest.(check bool) "consistent generator output satisfies Δ" true
      (Fd_set.satisfied_by D.office_fds t);
    Alcotest.(check int) "requested size" 50 (Table.size t)
  done

let test_generator_duplicates_weights () =
  let rng = R.Workload.Rng.make 7 in
  let t =
    R.Workload.Gen_table.uniform rng D.r3_schema
      { R.Workload.Gen_table.default with
        n = 60; duplicate_rate = 0.5; weighted = true; domain_size = 2 }
  in
  Alcotest.(check int) "size" 60 (Table.size t);
  Alcotest.(check bool) "weighted" false (Table.is_unweighted t)

let test_zipf_skew () =
  let rng = R.Workload.Rng.make 3 in
  let counts = Array.make 11 0 in
  for _ = 1 to 2000 do
    let v = R.Workload.Rng.zipf rng ~n:10 ~s:1.2 in
    counts.(v) <- counts.(v) + 1
  done;
  Alcotest.(check bool) "rank 1 most frequent" true
    (counts.(1) > counts.(5) && counts.(1) > counts.(10))

let () =
  Alcotest.run "integration"
    [ ( "driver",
        [ Alcotest.test_case "auto poly" `Quick test_auto_poly_on_tractable;
          Alcotest.test_case "auto exact" `Quick test_auto_exact_on_small_hard;
          Alcotest.test_case "auto approx" `Quick test_auto_approx_on_large_hard;
          Alcotest.test_case "forced strategies" `Quick test_forced_strategies;
          Alcotest.test_case "u-repair driver" `Quick test_u_driver;
          Alcotest.test_case "describe" `Quick test_describe;
          Alcotest.test_case "multi-relation database" `Quick test_multi_relation_repair ] );
      ("csv", [ Alcotest.test_case "repair flow" `Quick test_csv_repair_flow ]);
      ( "workload",
        [ Alcotest.test_case "consistent generator" `Quick test_generators_respect_fds;
          Alcotest.test_case "duplicates & weights" `Quick test_generator_duplicates_weights;
          Alcotest.test_case "zipf skew" `Quick test_zipf_skew ] ) ]
