open Repair_relational
open Repair_fd
open Repair_sat
open Repair_reductions
open Helpers
module G = Repair_graph.Graph
module Vc = Repair_graph.Vertex_cover
module Triangle = Repair_graph.Triangle
module Rng = Repair_workload.Rng

(* ---------- generators ---------- *)

let gen_2cnf =
  QCheck2.Gen.(
    let* n_vars = int_range 2 5 in
    let* n_clauses = int_range 1 7 in
    let clause =
      let* x = int_range 0 (n_vars - 1) in
      let* shift = int_range 1 (n_vars - 1) in
      let y = (x + shift) mod n_vars in
      let* sx = bool and* sy = bool in
      return
        [ (if sx then Cnf.pos x else Cnf.neg x);
          (if sy then Cnf.pos y else Cnf.neg y) ]
    in
    let* clauses = list_repeat n_clauses clause in
    return (Cnf.make ~n_vars clauses))

let gen_non_mixed =
  QCheck2.Gen.(
    let* n_vars = int_range 2 5 in
    let* n_clauses = int_range 1 6 in
    let clause =
      let* polarity = bool in
      let* vars =
        list_size (int_range 1 3) (int_range 0 (n_vars - 1))
        |> map (List.sort_uniq compare)
      in
      return (List.map (fun v -> if polarity then Cnf.pos v else Cnf.neg v) vars)
    in
    let* clauses = list_repeat n_clauses clause in
    return (Cnf.make ~n_vars clauses))

let random_graph rng n p =
  let g = G.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Repair_workload.Rng.bernoulli rng p then G.add_edge g u v
    done
  done;
  g

(* ---------- SAT gadgets ---------- *)

let check_sat_gadget build f =
  let _, maxsat = Max_sat.exact f in
  let g : Sat_gadget.t = build f in
  let opt = Repair_srepair.S_exact.optimal g.fds g.table in
  Table.size opt = maxsat
  && Table.is_duplicate_free g.table
  && Table.is_unweighted g.table

let prop_chain_gadget =
  qcheck ~count:60 "Δ_A→B→C gadget: optimal kept = maxsat (Lemma A.5)"
    gen_2cnf (fun f -> check_sat_gadget Sat_gadget.of_2cnf_chain f)

let prop_fork_gadget =
  qcheck ~count:60 "Δ_A→C←B gadget: optimal kept = maxsat (Lemma A.4)"
    gen_2cnf (fun f -> check_sat_gadget Sat_gadget.of_2cnf_fork f)

let prop_non_mixed_gadget =
  qcheck ~count:60 "Δ_AB→C→B gadget: optimal kept = maxsat (Lemma A.13)"
    gen_non_mixed (fun f -> check_sat_gadget Sat_gadget.of_non_mixed f)

let prop_assignment_encoding =
  qcheck ~count:60 "assignments encode as consistent subsets of the right size"
    gen_2cnf (fun f ->
      let g = Sat_gadget.of_2cnf_chain f in
      let a, k = Max_sat.exact f in
      let enc = Sat_gadget.kept_of_assignment g f a in
      Fd_set.satisfied_by g.fds enc
      && Table.is_subset_of enc g.table
      && Table.size enc = k)

let test_gadget_validation () =
  let mixed = Cnf.make ~n_vars:2 [ [ Cnf.pos 0; Cnf.neg 1 ] ] in
  Alcotest.(check bool) "non-mixed rejects mixed" true
    (try ignore (Sat_gadget.of_non_mixed mixed); false
     with Invalid_argument _ -> true);
  let cnf3 = Cnf.make ~n_vars:3 [ [ Cnf.pos 0; Cnf.pos 1; Cnf.pos 2 ] ] in
  Alcotest.(check bool) "chain rejects 3-CNF" true
    (try ignore (Sat_gadget.of_2cnf_chain cnf3); false
     with Invalid_argument _ -> true);
  let dup = Cnf.make ~n_vars:2 [ [ Cnf.pos 0; Cnf.pos 0 ] ] in
  Alcotest.(check bool) "duplicate literal rejected" true
    (try ignore (Sat_gadget.of_2cnf_fork dup); false
     with Invalid_argument _ -> true)

(* ---------- triangle gadget ---------- *)

let gen_tripartite =
  QCheck2.Gen.(
    let* seed = int_range 0 100_000 in
    let rng = Rng.make seed in
    let parts = 2 in
    let edges = ref [] in
    for u = 0 to parts - 1 do
      for v = parts to (2 * parts) - 1 do
        if Repair_workload.Rng.bernoulli rng 0.7 then edges := (u, v) :: !edges
      done;
      for w = 2 * parts to (3 * parts) - 1 do
        if Repair_workload.Rng.bernoulli rng 0.7 then edges := (u, w) :: !edges
      done
    done;
    for v = parts to (2 * parts) - 1 do
      for w = 2 * parts to (3 * parts) - 1 do
        if Repair_workload.Rng.bernoulli rng 0.7 then edges := (v, w) :: !edges
      done
    done;
    return (Triangle.tripartite_of_parts parts parts parts !edges))

let prop_triangle_gadget =
  qcheck ~count:40 "Δ_AB↔AC↔BC gadget: optimal kept = max packing (Lemma A.11)"
    gen_tripartite (fun g ->
      let gadget = Triangle_gadget.of_tripartite g in
      let packing = Triangle.max_packing g in
      let opt = Repair_srepair.S_exact.optimal gadget.fds gadget.table in
      Table.size opt = List.length packing)

let prop_triangle_roundtrip =
  qcheck ~count:40 "packings encode and decode through the gadget"
    gen_tripartite (fun g ->
      let gadget = Triangle_gadget.of_tripartite g in
      let packing = Triangle.greedy_packing g in
      let kept = Triangle_gadget.kept_of_packing gadget packing in
      Fd_set.satisfied_by gadget.fds kept
      && Triangle_gadget.packing_of_kept gadget kept = packing)

(* ---------- vertex cover gadget (Theorem 4.10) ---------- *)

let test_vc_gadget_structure () =
  let g = G.of_edges 3 [ (0, 1); (1, 2) ] in
  let vg = Vc_gadget.of_graph g in
  Alcotest.(check int) "2|E| + |V| tuples" 7 (Table.size vg.table);
  Alcotest.(check bool) "gadget table is inconsistent" false
    (Fd_set.satisfied_by vg.fds vg.table)

let prop_vc_gadget_upper_bound =
  qcheck ~count:40 "cover → consistent update of distance 2|E| + |C|"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.make seed in
      let g = random_graph rng 5 0.4 in
      let vg = Vc_gadget.of_graph g in
      let cover = Vc.exact g in
      let u = Vc_gadget.update_of_cover vg cover in
      Fd_set.satisfied_by vg.fds u
      && Table.is_update_of u vg.table
      && consistent_distance_eq (Table.dist_upd u vg.table)
           (Vc_gadget.expected_distance vg ~tau:(List.length cover)))

let test_vc_gadget_exact_small () =
  (* On tiny graphs, confirm optimality: the exact update distance equals 2|E| + tau. *)
  List.iter
    (fun (n, edges) ->
      let g = G.of_edges n edges in
      let vg = Vc_gadget.of_graph g in
      let tau = List.length (Vc.exact g) in
      let d = Repair_urepair.U_exact.distance ~max_cells:24 vg.fds vg.table in
      check_float
        (Fmt.str "graph %d edges" (List.length edges))
        (Vc_gadget.expected_distance vg ~tau)
        d)
    [ (2, [ (0, 1) ]); (3, [ (0, 1); (1, 2) ]) ]

let test_vc_gadget_rejects_non_cover () =
  let g = G.of_edges 3 [ (0, 1); (1, 2) ] in
  let vg = Vc_gadget.of_graph g in
  Alcotest.(check bool) "non-cover rejected" true
    (try ignore (Vc_gadget.update_of_cover vg [ 0 ]); false
     with Invalid_argument _ -> true)



(* ---------- family gadgets (Theorem 4.14 / Appendix B.5) ---------- *)

module Fg = Family_gadget

let test_family_delta_k () =
  let src_schema, src_fds = Fg.chain_source in
  let mk a b c = Tuple.make [ Value.int a; Value.int b; Value.int c ] in
  List.iter
    (fun tuples ->
      let t = Table.of_tuples src_schema tuples in
      let base = Repair_urepair.U_exact.distance src_fds t in
      List.iter
        (fun k ->
          let inst = Fg.embed_in_delta_k ~k t in
          let lifted =
            Repair_urepair.U_exact.distance
              ~max_cells:(Table.size inst.Fg.table * Schema.arity inst.Fg.schema)
              inst.Fg.fds inst.Fg.table
          in
          check_float (Fmt.str "Δ%d distance preserved" k) base lifted)
        [ 1; 2 ])
    [ [ mk 1 1 1; mk 1 2 1 ];           (* A-group conflict *)
      [ mk 1 1 1; mk 2 1 2 ];           (* B-group conflict *)
      [ mk 1 1 1; mk 2 2 2 ] ]          (* consistent *)

let test_family_delta'_k () =
  let src_schema, src_fds = Fg.delta'_source in
  let mk vs = Tuple.make (List.map Value.int vs) in
  List.iter
    (fun tuples ->
      let t = Table.of_tuples src_schema tuples in
      let base = Repair_urepair.U_exact.distance ~max_cells:20 src_fds t in
      List.iter
        (fun k ->
          let inst = Fg.lift_to_delta'_k ~k t in
          let lifted =
            Repair_urepair.U_exact.distance
              ~max_cells:(Table.size inst.Fg.table * Schema.arity inst.Fg.schema)
              inst.Fg.fds inst.Fg.table
          in
          check_float (Fmt.str "Δ'%d distance preserved" k) base lifted)
        [ 2; 3 ])
    [ [ mk [ 1; 1; 1; 1; 1 ]; mk [ 1; 1; 2; 2; 1 ] ]; (* B0 conflict *)
      [ mk [ 1; 1; 1; 1; 1 ]; mk [ 2; 2; 2; 2; 2 ] ] ](* consistent *)

let test_family_validation () =
  Alcotest.(check bool) "wrong schema rejected" true
    (try
       ignore (Fg.embed_in_delta_k ~k:1 (Table.empty (Schema.make "X" [ "A" ])));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "k too small" true
    (try
       ignore (Fg.lift_to_delta'_k ~k:1 (Table.empty (fst Fg.delta'_source)));
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "reductions"
    [ ( "sat gadgets",
        [ prop_chain_gadget;
          prop_fork_gadget;
          prop_non_mixed_gadget;
          prop_assignment_encoding;
          Alcotest.test_case "validation" `Quick test_gadget_validation ] );
      ( "triangle gadget",
        [ prop_triangle_gadget; prop_triangle_roundtrip ] );
      ( "vc gadget",
        [ Alcotest.test_case "structure" `Quick test_vc_gadget_structure;
          prop_vc_gadget_upper_bound;
          Alcotest.test_case "optimal on small graphs" `Quick test_vc_gadget_exact_small;
          Alcotest.test_case "rejects non-cover" `Quick test_vc_gadget_rejects_non_cover ] );
      ( "family gadgets (Thm 4.14)",
        [ Alcotest.test_case "Δk embedding" `Quick test_family_delta_k;
          Alcotest.test_case "Δ'k lifting" `Quick test_family_delta'_k;
          Alcotest.test_case "validation" `Quick test_family_validation ] ) ]
