open Repair_relational
open Repair_fd
open Repair_urepair
open Helpers
module D = Repair_workload.Datasets
module Gen_fd = Repair_workload.Gen_fd
module Gen_table = Repair_workload.Gen_table
module Rng = Repair_workload.Rng

(* ---------- Figure 1 / Example 2.3 ---------- *)

let test_office_update_distances () =
  let t = D.office_table in
  check_float "U1" 2.0 (Table.dist_upd D.office_u1 t);
  check_float "U2" 3.0 (Table.dist_upd D.office_u2 t);
  check_float "U3" 4.0 (Table.dist_upd D.office_u3 t);
  List.iter
    (fun u ->
      Alcotest.(check bool) "consistent update" true
        (U_check.is_consistent_update D.office_fds ~of_:t u))
    [ D.office_u1; D.office_u2; D.office_u3 ]

let test_office_optimal_u () =
  let t = D.office_table in
  let u = Opt_u_repair.solve_exn D.office_fds t in
  check_float "optimal U distance 2" 2.0 (Table.dist_upd u t);
  Alcotest.(check bool) "consistent" true (Fd_set.satisfied_by D.office_fds u);
  check_float "exact baseline agrees" 2.0
    (U_exact.distance ~max_cells:16 D.office_fds t)

(* ---------- Proposition 4.4 transforms ---------- *)

let test_transform_subset_of_update () =
  let t = D.office_table in
  (* U1 touches only tuple 1, so the derived subset drops exactly it. *)
  let s = Transform.subset_of_update ~table:t D.office_u1 in
  Alcotest.(check (list int)) "drops tuple 1" [ 2; 3; 4 ] (Table.ids s);
  Alcotest.(check bool) "dist_sub ≤ dist_upd" true
    (Table.dist_sub s t <= Table.dist_upd D.office_u1 t +. 1e-9)

let test_transform_update_of_subset () =
  let t = D.office_table in
  let s = D.office_s1 in
  let u = Transform.update_of_subset D.office_fds ~table:t s in
  Alcotest.(check bool) "consistent" true (Fd_set.satisfied_by D.office_fds u);
  (* mlc = 1 (common lhs), so cost equals the subset distance. *)
  check_float "cost = dist_sub" (Table.dist_sub s t) (Table.dist_upd u t);
  Alcotest.(check bool) "consensus rejected" true
    (try
       ignore (Transform.update_of_subset (Fd_set.parse "-> A")
                 ~table:(Table.empty D.r3_schema)
                 (Table.empty D.r3_schema));
       false
     with Invalid_argument _ -> true)

let prop_transform_44 =
  qcheck ~count:50 "Prop 4.4: subset→update within mlc factor"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.make seed in
      let d = D.delta_a_to_b_to_c in
      let t =
        Gen_table.dirty rng D.r3_schema d
          { Gen_table.default with n = 8; noise = 0.3; domain_size = 3 }
      in
      let s = Repair_srepair.S_exact.optimal d t in
      let u = Transform.update_of_subset d ~table:t s in
      Fd_set.satisfied_by d u
      && Table.dist_upd u t
         <= (float_of_int (Lhs_analysis.mlc d) *. Table.dist_sub s t) +. 1e-9)

(* ---------- Corollary 4.5 sandwich ---------- *)

let prop_sandwich =
  qcheck ~count:30 "Cor 4.5: dist_sub(S*) ≤ dist_upd(U*) ≤ mlc·dist_sub(S*)"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.make seed in
      let d = D.delta_a_to_b_to_c in
      (* consensus-free, mlc = 2 *)
      let t =
        Gen_table.dirty rng D.r3_schema d
          { Gen_table.default with n = 4; noise = 0.4; domain_size = 3 }
      in
      let s_opt = Repair_srepair.S_exact.distance d t in
      let u_opt = U_exact.distance d t in
      s_opt <= u_opt +. 1e-9
      && u_opt <= (float_of_int (Lhs_analysis.mlc d) *. s_opt) +. 1e-9)

(* ---------- Opt_u_repair tractable cases ---------- *)

let prop_common_lhs_optimal =
  qcheck ~count:25 "common-lhs tractable case matches exhaustive baseline"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.make seed in
      let schema, d = Gen_fd.common_lhs rng ~n_attrs:3 ~n_fds:2 in
      if not (Opt_u_repair.tractable d) then true
      else
        let t =
          Gen_table.dirty rng schema d
            { Gen_table.default with n = 4; noise = 0.4; domain_size = 3 }
        in
        match Opt_u_repair.solve d t with
        | Error _ -> false
        | Ok u ->
          Fd_set.satisfied_by d u
          && Table.is_update_of u t
          && consistent_distance_eq (Table.dist_upd u t) (U_exact.distance d t))

let prop_two_way_unary_optimal =
  qcheck ~count:25 "Prop 4.9: {A→B, B→A} matches baseline and S-distance"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.make seed in
      let schema, d = Gen_fd.two_unary () in
      let t =
        Gen_table.dirty rng schema d
          { Gen_table.default with n = 5; noise = 0.4; domain_size = 3 }
      in
      match Opt_u_repair.solve d t with
      | Error _ -> false
      | Ok u ->
        let du = Table.dist_upd u t in
        Fd_set.satisfied_by d u
        && consistent_distance_eq du (U_exact.distance d t)
        && consistent_distance_eq du (Repair_srepair.S_exact.distance d t))

let prop_disjoint_composition =
  qcheck ~count:25 "Thm 4.1: attribute-disjoint composition is optimal"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.make seed in
      let schema = Schema.make "R" [ "A"; "B"; "C"; "D" ] in
      let d = Fd_set.parse "A -> B; C -> D" in
      let t =
        Gen_table.dirty rng schema d
          { Gen_table.default with n = 4; noise = 0.4; domain_size = 3 }
      in
      match Opt_u_repair.solve d t with
      | Error _ -> false
      | Ok u ->
        Fd_set.satisfied_by d u
        && consistent_distance_eq (Table.dist_upd u t)
             (U_exact.distance ~max_cells:16 d t))

let prop_consensus_majority =
  qcheck ~count:25 "Thm 4.3/Prop B.2: consensus attributes by weighted majority"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.make seed in
      let d = Fd_set.parse "-> A" in
      let t =
        Gen_table.uniform rng (Schema.make "R" [ "A"; "B" ])
          { Gen_table.default with n = 5; domain_size = 3; weighted = true }
      in
      match Opt_u_repair.solve d t with
      | Error _ -> false
      | Ok u ->
        Fd_set.satisfied_by d u
        && consistent_distance_eq (Table.dist_upd u t)
             (U_exact.distance ~max_cells:10 d t))

let test_refusals () =
  let check_hard name d =
    match Opt_u_repair.diagnose d with
    | Some { hardness = Opt_u_repair.Known_apx_hard _; _ } -> ()
    | Some { hardness = Opt_u_repair.Open_complexity; _ } ->
      Alcotest.fail (name ^ ": expected known-hard, got open")
    | None -> Alcotest.fail (name ^ ": expected refusal")
  in
  check_hard "{A→B,B→C}" (Fd_set.parse "A -> B; B -> C");
  check_hard "Δ_A↔B→C" D.delta_a_b_c_marriage;
  check_hard "Δ3" D.delta3;
  check_hard "Δ4" D.delta4;
  check_hard "zip" D.delta_zip;
  (* consensus decoration must not change the diagnosis (Thm 4.3 example) *)
  check_hard "{∅→D, AD→B, B→CD}" (Fd_set.parse "-> D; A D -> B; B -> C D")

let test_tractable_classifications () =
  List.iter
    (fun (name, d, expect) ->
      Alcotest.(check bool) name expect (Opt_u_repair.tractable d))
    [ ("office", D.office_fds, true);
      ("Δ0 (two disjoint FDs)", D.delta0, true);
      ("passport", D.delta_passport, true);
      ("single FD", Fd_set.parse "A B -> C", true);
      ("two-way unary", Fd_set.parse "A -> B; B -> A", true);
      ("consensus only", Fd_set.parse "-> A B", true);
      ("empty", Fd_set.empty, true);
      ("{A→B,B→C}", Fd_set.parse "A -> B; B -> C", false) ]

(* ---------- U_check ---------- *)

let test_u_check_minimality () =
  let t = D.office_table in
  (* U1 is a U-repair: restoring its single change breaks consistency. *)
  Alcotest.(check bool) "U1 is U-repair" true
    (U_check.is_u_repair D.office_fds ~of_:t D.office_u1);
  (* An update with a gratuitous change is not minimal. *)
  let gratuitous =
    Table.set_tuple D.office_u1 4
      (Tuple.make
         [ Value.str "Lab1"; Value.str "B36"; Value.int 3; Value.str "London" ])
  in
  Alcotest.(check bool) "gratuitous change not minimal" false
    (U_check.is_u_repair D.office_fds ~of_:t gratuitous);
  let minimized = U_check.minimize D.office_fds ~of_:t gratuitous in
  Alcotest.(check bool) "minimize restores it" true
    (U_check.is_u_repair D.office_fds ~of_:t minimized);
  check_float "minimized distance" 2.0 (Table.dist_upd minimized t)

let test_updated_cells () =
  let cells = U_check.updated_cells ~of_:D.office_table D.office_u2 in
  Alcotest.(check int) "three cells" 3 (List.length cells);
  Alcotest.(check bool) "tuple 2 floor+city, tuple 3 city" true
    (List.mem (2, 2) cells && List.mem (2, 3) cells && List.mem (3, 3) cells)

(* ---------- U_exact ---------- *)

let test_u_exact_consistent_input () =
  let t = D.office_s1 in
  Alcotest.check table "already consistent: unchanged" t
    (U_exact.optimal D.office_fds t)

let test_u_exact_needs_fresh () =
  (* {A→B, B→A}: (1,1) (1,2) (2,2). Best: 1 cell. With fresh disabled the
     optimum is still 1 here; construct a case where active-domain-only
     changes the answer: A→B with tuples (1,1),(1,2): both fixable with 1
     cell from the active domain. Sanity only. *)
  let s = Schema.make "R" [ "A"; "B" ] in
  let mk a b = Tuple.make [ Value.int a; Value.int b ] in
  let t = Table.of_list s [ (1, 1.0, mk 1 1); (2, 1.0, mk 1 2) ] in
  check_float "one cell suffices" 1.0 (U_exact.distance (Fd_set.parse "A -> B") t);
  check_float "active-domain-only agrees here" 1.0
    (U_exact.distance ~fresh:0 (Fd_set.parse "A -> B") t)

let test_restricted_domain_strictly_worse () =
  (* Section 5 discussion: the paper's updates draw from an infinite
     domain. Here a fresh constant on the lhs repairs in one cell, while
     active-domain-only updates need two: (1,1,1) vs (1,2,2) under
     {A→B, B→C} — any in-domain fix of the A-group creates or keeps a
     B-group violation. *)
  let s = Schema.make "R" [ "A"; "B"; "C" ] in
  let mk a b c = Tuple.make [ Value.int a; Value.int b; Value.int c ] in
  let t = Table.of_tuples s [ mk 1 1 1; mk 1 2 2 ] in
  let d = Fd_set.parse "A -> B; B -> C" in
  check_float "with fresh constants: 1 cell" 1.0 (U_exact.distance d t);
  check_float "active domain only: 2 cells" 2.0 (U_exact.distance ~fresh:0 d t)

let test_u_exact_weighted () =
  (* Updating the light tuple is preferred. *)
  let s = Schema.make "R" [ "A"; "B" ] in
  let mk a b = Tuple.make [ Value.int a; Value.int b ] in
  let t = Table.of_list s [ (1, 5.0, mk 1 1); (2, 1.0, mk 1 2) ] in
  check_float "light tuple updated" 1.0 (U_exact.distance (Fd_set.parse "A -> B") t)

(* ---------- U_approx ---------- *)

let prop_u_approx_certified =
  qcheck ~count:30 "U_approx.best stays within its certified ratio"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.make seed in
      let d = D.delta_a_to_b_to_c in
      let t =
        Gen_table.dirty rng D.r3_schema d
          { Gen_table.default with n = 4; noise = 0.4; domain_size = 3 }
      in
      let u, ratio = U_approx.best d t in
      let opt = U_exact.distance d t in
      Fd_set.satisfied_by d u
      && consistent_distance_eq ratio (U_approx.certified_ratio d)
      && Table.dist_upd u t <= (ratio *. opt) +. 1e-9)

let prop_u_approx_exact_when_tractable =
  qcheck ~count:20 "U_approx.best is exact (ratio 1) on tractable sets"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.make seed in
      let t =
        Gen_table.dirty rng D.office_schema D.office_fds
          { Gen_table.default with n = 5; noise = 0.3; domain_size = 3 }
      in
      let u, ratio = U_approx.best D.office_fds t in
      ratio = 1.0
      && Fd_set.satisfied_by D.office_fds u
      && consistent_distance_eq (Table.dist_upd u t)
           (Result.get_ok (Opt_u_repair.distance D.office_fds t)))

let prop_heuristic_always_consistent =
  qcheck ~count:40 "voting heuristic returns a consistent update"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.make seed in
      let d = D.delta_a_to_b_to_c in
      let t =
        Gen_table.dirty rng D.r3_schema d
          { Gen_table.default with n = 10; noise = 0.3; domain_size = 3;
            weighted = true }
      in
      let u = U_heuristic.local_repair d t in
      Fd_set.satisfied_by d u && Table.is_update_of u t)

let test_heuristic_votes_majority () =
  (* Two tuples say B=1, one says B=2: voting fixes the minority cell. *)
  let s = Schema.make "R" [ "A"; "B" ] in
  let mk a b = Tuple.make [ Value.int a; Value.int b ] in
  let t =
    Table.of_list s [ (1, 1.0, mk 1 1); (2, 1.0, mk 1 1); (3, 1.0, mk 1 2) ]
  in
  let u = U_heuristic.local_repair (Fd_set.parse "A -> B") t in
  check_float "one cell changed" 1.0 (Table.dist_upd u t);
  Alcotest.check tuple "minority adopted majority" (mk 1 1) (Table.tuple u 3)

let test_heuristic_helps_combined () =
  (* On voting-friendly instances the combined algorithm should do at least
     as well as the certified algorithm alone. *)
  let d = D.delta_a_to_b_to_c in
  let rng = Rng.make 77 in
  for _ = 1 to 10 do
    let t =
      Gen_table.dirty rng D.r3_schema d
        { Gen_table.default with n = 12; noise = 0.2; domain_size = 3 }
    in
    let certified, _ = U_approx.via_s_repair d t in
    let combined, _ = U_approx.best d t in
    Alcotest.(check bool) "combined ≤ certified" true
      (Table.dist_upd combined t <= Table.dist_upd certified t +. 1e-9)
  done

let test_ratio_families () =
  (* Section 4.4: our ratio on Δ_k is 2(k+2)?  mlc(Δ_k): lhs's are
     {A0..Ak}, {B0}, {B1}, ..., {Bk} — pairwise disjoint except nothing
     shared, so a cover needs one per disjoint lhs... each {Bi} needs Bi,
     plus one Ai: mlc = k+2, ratio 2(k+2). *)
  List.iter
    (fun k ->
      let _, dk = D.delta_k k in
      Alcotest.(check int)
        (Printf.sprintf "mlc Δ%d = k+2" k)
        (k + 2) (Lhs_analysis.mlc dk))
    [ 1; 2; 3 ];
  (* Δ'_k: ratio Θ(k) vs KL constant 9. *)
  List.iter
    (fun k ->
      let _, dk' = D.delta'_k k in
      Alcotest.(check int)
        (Printf.sprintf "KL Δ'%d constant" k)
        9 (Lhs_analysis.kl_ratio dk'))
    [ 1; 2; 3; 4; 5 ]

let () =
  Alcotest.run "urepair"
    [ ( "figure 1",
        [ Alcotest.test_case "update distances (Ex 2.3)" `Quick test_office_update_distances;
          Alcotest.test_case "optimal U-repair" `Quick test_office_optimal_u ] );
      ( "transform (Prop 4.4)",
        [ Alcotest.test_case "update→subset" `Quick test_transform_subset_of_update;
          Alcotest.test_case "subset→update" `Quick test_transform_update_of_subset;
          prop_transform_44 ] );
      ( "sandwich (Cor 4.5)", [ prop_sandwich ] );
      ( "tractable cases",
        [ prop_common_lhs_optimal;
          prop_two_way_unary_optimal;
          prop_disjoint_composition;
          prop_consensus_majority;
          Alcotest.test_case "refusals are diagnosed" `Quick test_refusals;
          Alcotest.test_case "tractability table" `Quick test_tractable_classifications ] );
      ( "u_check",
        [ Alcotest.test_case "minimality" `Quick test_u_check_minimality;
          Alcotest.test_case "updated cells" `Quick test_updated_cells ] );
      ( "u_exact",
        [ Alcotest.test_case "consistent input" `Quick test_u_exact_consistent_input;
          Alcotest.test_case "fresh values" `Quick test_u_exact_needs_fresh;
          Alcotest.test_case "restricted domain (§5)" `Quick
            test_restricted_domain_strictly_worse;
          Alcotest.test_case "weighted" `Quick test_u_exact_weighted ] );
      ( "approximation",
        [ prop_u_approx_certified;
          prop_u_approx_exact_when_tractable;
          prop_heuristic_always_consistent;
          Alcotest.test_case "voting heuristic" `Quick test_heuristic_votes_majority;
          Alcotest.test_case "combined beats certified" `Quick test_heuristic_helps_combined;
          Alcotest.test_case "ratio families (§4.4)" `Quick test_ratio_families ] ) ]
