(* Shared benchmark plumbing: section banners, aligned tables, and a thin
   wrapper over Bechamel's OLS pipeline returning ns/run per test. *)

let section id title =
  Fmt.pr "@.%s@.%s  %s@.%s@." (String.make 78 '=') id title
    (String.make 78 '=')

let subsection title = Fmt.pr "@.--- %s@." title

let row fmt = Fmt.pr fmt

(* Run a list of (label, thunk) under Bechamel; returns (label, ns/run). *)
let time_tests ?(quota = 0.3) ~name tests =
  let open Bechamel in
  let tests' =
    List.map (fun (n, f) -> Test.make ~name:n (Staged.stage f)) tests
  in
  let grouped = Test.make_grouped ~name ~fmt:"%s/%s" tests' in
  let cfg =
    Benchmark.cfg ~limit:300 ~quota:(Time.second quota) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  List.filter_map
    (fun (label, _) ->
      let key = name ^ "/" ^ label in
      match Hashtbl.find_opt results key with
      | None -> None
      | Some r -> (
        match Analyze.OLS.estimates r with
        | Some (ns :: _) -> Some (label, ns)
        | _ -> None))
    tests

let pp_ns ppf ns =
  if ns >= 1e9 then Fmt.pf ppf "%.2f s" (ns /. 1e9)
  else if ns >= 1e6 then Fmt.pf ppf "%.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Fmt.pf ppf "%.2f µs" (ns /. 1e3)
  else Fmt.pf ppf "%.0f ns" ns

let failures = ref 0

let check label ok =
  if not ok then incr failures;
  Fmt.pr "  [%s] %s@." (if ok then "OK " else "BAD") label

(* Called once at the end of the harness: nonzero exit on any BAD check so
   the bench doubles as a reproduction gate in CI. *)
let finish () =
  if !failures = 0 then Fmt.pr "@.All experiments completed.@."
  else begin
    Fmt.pr "@.%d experiment check(s) FAILED.@." !failures;
    exit 1
  end

(* Aggregates over per-seed measurements. *)
let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)
let maximum xs = List.fold_left max neg_infinity xs
