bench/main.mli:
