bench/main.ml: Array Bench_util Fd_set Float Fmt List Repair_core Result Schema Table Tuple Unix Value
