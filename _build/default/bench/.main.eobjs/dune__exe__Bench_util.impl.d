bench/bench_util.ml: Analyze Bechamel Benchmark Fmt Hashtbl List Measure Staged String Test Time Toolkit
