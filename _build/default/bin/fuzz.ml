(* repair-fuzz — differential fuzzer: cross-checks the polynomial
   algorithms against exponential baselines on random instances. Exits
   nonzero (printing the failing seed) on the first discrepancy, so it can
   run in CI or overnight.

   Checks per trial:
     1. OptSRepair succeeds iff OSRSucceeds (Algorithm 1 vs Algorithm 2);
     2. when it succeeds, its distance matches the exact vertex-cover
        baseline, and the result is a consistent subset;
     3. the 2-approximation respects its bound;
     4. when the U-repair solver claims tractability, its distance matches
        the exhaustive update search (small instances);
     5. the combined U-approximation is consistent and within its
        certificate (small instances);
     6. enumerated S-repairs are exactly maximal consistent subsets, and
        the polynomial optimum count agrees on chain sets;
     7. MPD via the reduction matches brute force (small instances);
     8. under a random step budget with the degrade policy, the driver
        still returns a consistent repair, and the degraded flag agrees
        with the recorded fallback edges.  *)

open Cmdliner
module R = Repair_core.Repair
open R.Relational
open R.Fd
module Rng = R.Workload.Rng
module Gen_fd = R.Workload.Gen_fd
module Gen_table = R.Workload.Gen_table

let close a b = Float.abs (a -. b) < 1e-6

exception Found of string

let fail fmt = Fmt.kstr (fun m -> raise (Found m)) fmt

let check_s_repair d t =
  match R.Srepair.Opt_s_repair.run d t with
  | Ok s ->
    if not (R.Dichotomy.Simplify.succeeds d) then
      fail "OptSRepair succeeded but OSRSucceeds says hard: %a" Fd_set.pp d;
    if not (R.Srepair.S_check.is_consistent_subset d ~of_:t s) then
      fail "OptSRepair produced a non-subset or inconsistent result";
    let exact = R.Srepair.S_exact.distance d t in
    if not (close (Table.dist_sub s t) exact) then
      fail "OptSRepair distance %g != exact %g under %a" (Table.dist_sub s t)
        exact Fd_set.pp d
  | Error _ ->
    if R.Dichotomy.Simplify.succeeds d then
      fail "OptSRepair failed but OSRSucceeds says tractable: %a" Fd_set.pp d

let check_approx d t =
  let apx = R.Srepair.S_approx.distance d t in
  let exact = R.Srepair.S_exact.distance d t in
  if apx > (2.0 *. exact) +. 1e-6 then
    fail "2-approximation %g exceeds 2x optimum %g under %a" apx exact
      Fd_set.pp d

let check_u_repair d t =
  if Table.size t * Schema.arity (Table.schema t) <= 12 then
    match R.Urepair.Opt_u_repair.solve d t with
    | Ok u ->
      if not (Fd_set.satisfied_by d u) then
        fail "U-repair solver produced inconsistent update under %a"
          Fd_set.pp d;
      let exact = R.Urepair.U_exact.distance ~max_cells:12 d t in
      if not (close (Table.dist_upd u t) exact) then
        fail "U-repair distance %g != exhaustive %g under %a"
          (Table.dist_upd u t) exact Fd_set.pp d
    | Error _ -> ()

let check_enumeration d t =
  if Table.size t <= 7 then begin
    (* enumerated repairs must be exactly the maximal consistent subsets,
       and on chain sets the polynomial count must agree. *)
    let reps = R.Enumerate.Enumerate.s_repairs d t in
    List.iter
      (fun s ->
        if not (R.Srepair.S_check.is_s_repair d ~of_:t s) then
          fail "enumeration produced a non-repair under %a" Fd_set.pp d)
      reps;
    if Fd_set.is_chain d then
      match R.Enumerate.Count.optimal_s_repairs d t with
      | Ok c ->
        let enumerated =
          List.length (R.Enumerate.Enumerate.optimal_s_repairs d t)
        in
        if c <> enumerated then
          fail "count %d != enumerated optima %d under %a" c enumerated
            Fd_set.pp d
      | Error _ -> ()
  end

let check_u_approx d t =
  let u, ratio = R.Urepair.U_approx.best d t in
  if not (Fd_set.satisfied_by d u) then
    fail "U_approx.best inconsistent under %a" Fd_set.pp d;
  if Table.size t * Schema.arity (Table.schema t) <= 9 then begin
    let opt = R.Urepair.U_exact.distance ~max_cells:9 d t in
    if Table.dist_upd u t > (ratio *. opt) +. 1e-6 then
      fail "U_approx.best exceeds its certificate under %a" Fd_set.pp d
  end

let check_mpd d t =
  if Table.size t <= 8 && R.Dichotomy.Simplify.succeeds d then begin
    let pt =
      R.Mpd.Prob_table.of_table (Table.map_weights t (fun _ _ -> 0.75))
    in
    match R.Mpd.Mpd.solve ~strategy:R.Mpd.Mpd.Poly d pt with
    | Ok (Some world) ->
      let bf = R.Mpd.Mpd.brute_force d pt in
      if
        not
          (close
             (R.Mpd.Prob_table.log_probability pt world)
             (R.Mpd.Prob_table.log_probability pt bf))
      then fail "MPD reduction suboptimal under %a" Fd_set.pp d
    | Ok None -> fail "MPD returned None without certain tuples"
    | Error _ -> fail "MPD Poly failed although OSRSucceeds holds"
  end

let check_budgeted rng d t =
  (* A fresh budget per call — budgets are single-use accumulators. *)
  let max_steps = Rng.in_range rng 1 50 in
  let budget () = R.Runtime.Budget.create ~max_steps () in
  (match
     R.Driver.s_repair_result ~budget:(budget ()) ~on_budget:`Degrade d t
   with
  | Ok r ->
    if not (R.Srepair.S_check.is_consistent_subset d ~of_:t r.result) then
      fail "budgeted s-repair (max_steps=%d) inconsistent under %a" max_steps
        Fd_set.pp d;
    if r.degraded <> (r.fallbacks <> []) then
      fail "s-repair degraded flag disagrees with fallbacks under %a"
        Fd_set.pp d
  | Error e ->
    fail "budgeted s-repair refused to degrade: %s under %a"
      (R.Runtime.Repair_error.to_string e)
      Fd_set.pp d);
  if Table.size t * Schema.arity (Table.schema t) <= 12 then
    match
      R.Driver.u_repair_result ~budget:(budget ()) ~on_budget:`Degrade d t
    with
    | Ok r ->
      if not (Fd_set.satisfied_by d r.result) then
        fail "budgeted u-repair (max_steps=%d) inconsistent under %a"
          max_steps Fd_set.pp d;
      if r.degraded <> (r.fallbacks <> []) then
        fail "u-repair degraded flag disagrees with fallbacks under %a"
          Fd_set.pp d
    | Error e ->
      fail "budgeted u-repair refused to degrade: %s under %a"
        (R.Runtime.Repair_error.to_string e)
        Fd_set.pp d

let trial seed =
  let rng = Rng.make seed in
  let n_attrs = Rng.in_range rng 2 4 in
  let schema, d =
    Gen_fd.random rng ~n_attrs ~n_fds:(Rng.in_range rng 1 3) ~max_lhs:2
  in
  let t =
    Gen_table.dirty rng schema d
      {
        Gen_table.default with
        n = Rng.in_range rng 0 10;
        noise = 0.3;
        domain_size = 3;
        weighted = Rng.bool rng;
        duplicate_rate = 0.1;
      }
  in
  check_s_repair d t;
  check_approx d t;
  check_u_repair d t;
  check_u_approx d t;
  check_enumeration d t;
  check_mpd d t;
  check_budgeted rng d t

let run trials seed0 quiet =
  let failures = ref 0 in
  (try
     for i = 0 to trials - 1 do
       let seed = seed0 + i in
       (try trial seed
        with Found msg ->
          incr failures;
          Fmt.epr "FAIL seed %d: %s@." seed msg);
       if (not quiet) && (i + 1) mod 500 = 0 then
         Fmt.epr "… %d/%d trials@." (i + 1) trials
     done
   with exn ->
     Fmt.epr "fuzzer crashed: %s@." (Printexc.to_string exn);
     exit 2);
  if !failures = 0 then begin
    Fmt.pr "repair-fuzz: %d trials, all checks passed@." trials;
    exit 0
  end
  else begin
    Fmt.pr "repair-fuzz: %d/%d trials failed@." !failures trials;
    exit 1
  end

let main =
  let trials =
    Arg.(value & opt int 1_000 & info [ "t"; "trials" ] ~doc:"Number of trials.")
  in
  let seed =
    Arg.(value & opt int 0 & info [ "seed" ] ~doc:"First seed (trials use seed, seed+1, ...).")
  in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No progress output.") in
  let doc = "differential fuzzer for the repair algorithms" in
  Cmd.v (Cmd.info "repair-fuzz" ~doc) Term.(const run $ trials $ seed $ quiet)

let () = exit (Cmd.eval main)
