open Repair_relational

type t = Table.t

let of_table tbl =
  Table.iter
    (fun i _ w ->
      if w > 1.0 then
        invalid_arg
          (Printf.sprintf "Prob_table.of_table: weight of tuple %d exceeds 1" i))
    tbl;
  tbl

let table pt = pt

let probability pt s =
  if not (Table.is_subset_of s pt) then
    invalid_arg "Prob_table.probability: not a subset";
  Table.fold
    (fun i _ w acc -> acc *. (if Table.mem s i then w else 1.0 -. w))
    pt 1.0

let log_probability pt s =
  if not (Table.is_subset_of s pt) then
    invalid_arg "Prob_table.log_probability: not a subset";
  Table.fold
    (fun i _ w acc ->
      acc +. (if Table.mem s i then log w else log (1.0 -. w)))
    pt 0.0

let certain pt =
  Table.fold (fun i _ w acc -> if w = 1.0 then i :: acc else acc) pt []
  |> List.rev
