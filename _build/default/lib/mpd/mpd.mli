(** The Most Probable Database problem (Section 3.4).

    Given a tuple-independent probabilistic table and a set Δ of FDs, find
    the consistent subset of maximal probability. Theorem 3.10 settles its
    complexity via reductions to and from optimal S-repairing:

    - {e to S-repairs}: certain tuples must jointly satisfy Δ (else every
      consistent world containing them has probability 0 and we return the
      most probable consistent world ignoring them); tuples with
      probability ≤ 1/2 may be deleted for free, so they are dropped; the
      rest get weight [log(p/(1−p))] and an optimal (max-weight-kept)
      S-repair is the most probable database;
    - {e from S-repairs}: give every tuple of an unweighted table
      probability 0.9 — a most probable world is then a maximum-cardinality
      consistent subset.

    [OSRSucceeds(Δ)] therefore decides MPD's tractability for {e all} FD
    sets, closing the open problem of Gribkoff, Van den Broeck and
    Suciu. *)

open Repair_relational
open Repair_fd

(** How to solve the weighted S-repair instance the reduction produces. *)
type strategy =
  | Poly  (** Algorithm 1; fails on the hard side of the dichotomy *)
  | Exact_search  (** branch-and-bound baseline, any Δ, small tables *)

(** [solve ~strategy d pt] is a most probable database of [pt] w.r.t. [d].
    [Error stuck] is returned only under [Poly] when OSRSucceeds fails.

    Certain tuples (probability 1) are handled as in the paper: if they
    conflict, the answer is an arbitrary maximally-probable world — we
    return [Ok None]; otherwise [Ok (Some world)]. *)
val solve :
  strategy:strategy ->
  Fd_set.t ->
  Prob_table.t ->
  (Table.t option, Fd_set.t) result

(** [brute_force d pt] maximizes Equation (2) over all 2^n subsets — for
    validation on tiny tables. *)
val brute_force : Fd_set.t -> Prob_table.t -> Table.t

(** [weights_of_probabilities pt] is the table with weight
    [log(p/(1−p))] per tuple, after dropping p ≤ 1/2 tuples and clamping
    certain tuples — the exact instance the reduction solves. Exposed for
    inspection and testing. *)
val weights_of_probabilities : Prob_table.t -> Table.t

(** [of_unweighted_table tbl ~p] is the reverse reduction: assign fixed
    probability [p] (default 0.9) to each tuple of an unweighted table. *)
val of_unweighted_table : ?p:float -> Table.t -> Prob_table.t
