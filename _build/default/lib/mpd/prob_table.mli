(** Tuple-independent probabilistic tables (Section 3.4).

    A table whose weights lie in (0, 1] is read as a tuple-independent
    probabilistic database: each tuple [T[i]] is present independently with
    probability [w_T(i)]. The probability of a specific subset [S] is
    Equation (2):

    [Pr_T(S) = Π_{i∈ids(S)} w_T(i) × Π_{i∉ids(S)} (1 − w_T(i))]. *)

open Repair_relational

type t

(** [of_table tbl] validates the weights.

    @raise Invalid_argument if some weight exceeds 1. *)
val of_table : Table.t -> t

val table : t -> Table.t

(** [probability pt s] is [Pr_T(S)] per Equation (2).

    @raise Invalid_argument if [s] is not a subset of the table. *)
val probability : t -> Table.t -> float

(** [log_probability pt s] is its logarithm, computed in log-space
    (tuples with probability exactly 1 contribute [−∞] when absent). *)
val log_probability : t -> Table.t -> float

(** [certain pt] lists ids with probability 1. *)
val certain : t -> Table.id list
