lib/mpd/mpd.mli: Fd_set Prob_table Repair_fd Repair_relational Table
