lib/mpd/prob_table.mli: Repair_relational Table
