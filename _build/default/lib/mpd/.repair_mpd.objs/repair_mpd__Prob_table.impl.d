lib/mpd/prob_table.ml: List Printf Repair_relational Table
