lib/mpd/mpd.ml: Array Fd_set Prob_table Repair_fd Repair_relational Repair_srepair Result Table
