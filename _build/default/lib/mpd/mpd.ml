open Repair_relational
open Repair_fd

type strategy = Poly | Exact_search

let log_odds p = log (p /. (1.0 -. p))

let weights_of_probabilities pt =
  let tbl = Prob_table.table pt in
  (* Tuples with p ≤ 1/2 can always be excluded without hurting the
     probability, so they leave the instance. *)
  let uncertain =
    Table.select tbl (fun i _ ->
        let w = Table.weight tbl i in
        w > 0.5 && w < 1.0)
  in
  let big =
    1.0 +. Table.fold (fun _ _ p acc -> acc +. log_odds p) uncertain 0.0
  in
  (* Certain tuples get a weight exceeding everything else combined: no
     optimal repair will delete one unless forced by inconsistency among
     certain tuples (handled by the caller). *)
  Table.fold
    (fun i t p acc ->
      if p >= 1.0 then Table.add ~id:i ~weight:big acc t
      else if p > 0.5 then Table.add ~id:i ~weight:(log_odds p) acc t
      else acc)
    tbl
    (Table.empty (Table.schema tbl))

let solve ~strategy d pt =
  let tbl = Prob_table.table pt in
  let certain_ids = Prob_table.certain pt in
  let certain_tbl = Table.restrict tbl certain_ids in
  if not (Fd_set.satisfied_by d certain_tbl) then
    (* Every world containing all certain tuples is inconsistent, and every
       world must contain them: probability 0 across the board. *)
    Ok None
  else
    let weighted = weights_of_probabilities pt in
    let repair =
      match strategy with
      | Poly -> Repair_srepair.Opt_s_repair.run d weighted
      | Exact_search -> Ok (Repair_srepair.S_exact.optimal d weighted)
    in
    Result.map (fun s -> Some (Table.restrict tbl (Table.ids s))) repair

let brute_force d pt =
  let tbl = Prob_table.table pt in
  let ids = Array.of_list (Table.ids tbl) in
  let n = Array.length ids in
  if n > 20 then invalid_arg "Mpd.brute_force: table too large";
  let best = ref (Table.empty (Table.schema tbl)) in
  let best_p = ref neg_infinity in
  for mask = 0 to (1 lsl n) - 1 do
    let keep = ref [] in
    for b = 0 to n - 1 do
      if mask land (1 lsl b) <> 0 then keep := ids.(b) :: !keep
    done;
    let s = Table.restrict tbl !keep in
    if Fd_set.satisfied_by d s then begin
      let p = Prob_table.log_probability pt s in
      if p > !best_p then begin
        best := s;
        best_p := p
      end
    end
  done;
  !best

let of_unweighted_table ?(p = 0.9) tbl =
  if p <= 0.5 || p >= 1.0 then
    invalid_arg "Mpd.of_unweighted_table: p must lie in (1/2, 1)";
  Prob_table.of_table (Table.map_weights tbl (fun _ _ -> p))
