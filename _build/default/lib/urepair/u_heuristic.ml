open Repair_relational
open Repair_fd

(* One sweep: for each FD X → Y and each X-group, overwrite every tuple's
   Y-projection with the group's weighted-majority Y-projection. A sweep
   resolves each FD in isolation; sweeps are iterated because fixing one
   FD's rhs can re-group another's lhs. *)
let vote_sweep d tbl =
  let schema = Table.schema tbl in
  List.fold_left
    (fun tbl fd ->
      let groups = Table.group_by tbl (Fd.lhs fd) in
      List.fold_left
        (fun tbl (_, sub) ->
          let totals = Hashtbl.create 8 in
          Table.iter
            (fun _ t w ->
              let key = Tuple.project schema t (Fd.rhs fd) in
              let prev = Option.value (Hashtbl.find_opt totals key) ~default:0.0 in
              Hashtbl.replace totals key (prev +. w))
            sub;
          let majority =
            Hashtbl.fold
              (fun key w best ->
                match best with
                | Some (_, bw) when bw >= w -> best
                | _ -> Some (key, w))
              totals None
          in
          match majority with
          | None -> tbl
          | Some (rhs_values, _) ->
            let rhs_attrs =
              Schema.indices_of schema (Fd.rhs fd)
              |> List.map (Schema.attribute_at schema)
            in
            List.fold_left
              (fun tbl i ->
                let t = Table.tuple tbl i in
                let t' =
                  List.fold_left2
                    (fun acc a v -> Tuple.set_attr schema acc a v)
                    t rhs_attrs (Tuple.values rhs_values)
                in
                if Tuple.equal t t' then tbl else Table.set_tuple tbl i t')
              tbl (Table.ids sub))
        tbl groups)
    tbl
    (Fd_set.to_list d)

(* Fallback: give every tuple still involved in a violation a fresh
   constant on a minimum lhs cover — afterwards it shares no lhs with
   anything, so all violations involving it vanish. *)
let isolate_violators d tbl =
  let violators =
    Fd_set.violations d tbl
    |> List.concat_map (fun (i, j, _) -> [ i; j ])
    |> List.sort_uniq compare
  in
  if violators = [] then tbl
  else begin
    let schema = Table.schema tbl in
    let cover = Lhs_analysis.lhs_cover d in
    let supply = Value.Supply.starting_above (Table.all_values tbl) in
    List.fold_left
      (fun tbl i ->
        let fresh = Value.Supply.next supply in
        let t =
          Attr_set.fold
            (fun a acc -> Tuple.set_attr schema acc a fresh)
            cover (Table.tuple tbl i)
        in
        Table.set_tuple tbl i t)
      tbl violators
  end

let local_repair ?(max_rounds = 4) d tbl =
  let d = Fd_set.normalize d in
  if Fd_set.is_empty d then tbl
  else begin
    if not (Fd_set.is_consensus_free d) then
      invalid_arg "U_heuristic.local_repair: consensus attributes present";
    let rec rounds n tbl =
      if n = 0 || Fd_set.satisfied_by d tbl then tbl
      else rounds (n - 1) (vote_sweep d tbl)
    in
    let swept = rounds max_rounds tbl in
    let result = isolate_violators d swept in
    assert (Fd_set.satisfied_by d result);
    result
  end
