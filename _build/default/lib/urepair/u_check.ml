open Repair_relational
open Repair_fd

let is_consistent_update d ~of_ u =
  Table.is_update_of u of_ && Fd_set.satisfied_by d u

let updated_cells ~of_ u =
  Table.fold
    (fun i t _ acc ->
      let ut = Table.tuple u i in
      let rec collect j acc =
        if j < 0 then acc
        else
          collect (j - 1)
            (if Value.equal (Tuple.get t j) (Tuple.get ut j) then acc
             else (i, j) :: acc)
      in
      collect (Tuple.arity t - 1) acc)
    of_ []

let restore ~of_ u cells =
  List.fold_left
    (fun acc (i, j) ->
      Table.set_tuple acc i
        (Tuple.set (Table.tuple acc i) j (Tuple.get (Table.tuple of_ i) j)))
    u cells

let is_u_repair ?(max_cells = 16) d ~of_ u =
  is_consistent_update d ~of_ u
  &&
  let cells = Array.of_list (updated_cells ~of_ u) in
  let c = Array.length cells in
  if c > max_cells then
    invalid_arg "U_check.is_u_repair: too many updated cells";
  (* Every nonempty restoration must break consistency. *)
  let rec masks m ok =
    if (not ok) || m >= 1 lsl c then ok
    else
      let subset = ref [] in
      for b = 0 to c - 1 do
        if m land (1 lsl b) <> 0 then subset := cells.(b) :: !subset
      done;
      let restored = restore ~of_ u !subset in
      masks (m + 1) (not (Fd_set.satisfied_by d restored))
  in
  masks 1 true

let minimize d ~of_ u =
  let rec loop u =
    let cells = updated_cells ~of_ u in
    let improvement =
      List.find_map
        (fun cell ->
          let restored = restore ~of_ u [ cell ] in
          if Fd_set.satisfied_by d restored then Some restored else None)
        cells
    in
    match improvement with Some u' -> loop u' | None -> u
  in
  loop u
