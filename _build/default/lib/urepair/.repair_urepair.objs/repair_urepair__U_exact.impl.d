lib/urepair/u_exact.ml: Array Budget Fd_set List Repair_error Repair_fd Repair_relational Repair_runtime Schema Table Tuple Value
