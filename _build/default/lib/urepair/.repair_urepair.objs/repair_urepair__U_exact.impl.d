lib/urepair/u_exact.ml: Array Fd_set List Repair_fd Repair_relational Schema Table Tuple Value
