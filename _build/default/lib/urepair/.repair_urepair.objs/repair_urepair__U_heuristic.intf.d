lib/urepair/u_heuristic.mli: Fd_set Repair_fd Repair_relational Table
