lib/urepair/u_heuristic.ml: Attr_set Fd Fd_set Hashtbl Lhs_analysis List Option Repair_fd Repair_relational Schema Table Tuple Value
