lib/urepair/transform.mli: Attr_set Fd_set Repair_fd Repair_relational Table
