lib/urepair/opt_u_repair.mli: Attr_set Fd_set Format Repair_fd Repair_relational Repair_runtime Table
