lib/urepair/u_approx.ml: Attr_set Fd_set Lhs_analysis List Opt_u_repair Repair_fd Repair_relational Repair_srepair Table Transform Tuple U_heuristic
