lib/urepair/u_approx.mli: Fd_set Repair_fd Repair_relational Table
