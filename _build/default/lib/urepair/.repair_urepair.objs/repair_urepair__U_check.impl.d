lib/urepair/u_check.ml: Array Fd_set List Repair_fd Repair_relational Table Tuple Value
