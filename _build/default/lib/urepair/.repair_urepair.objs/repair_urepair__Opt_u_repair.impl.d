lib/urepair/opt_u_repair.ml: Attr_set Budget Fd Fd_set Fmt Hashtbl List Option Repair_dichotomy Repair_fd Repair_relational Repair_runtime Repair_srepair Result Table Transform Tuple Value
