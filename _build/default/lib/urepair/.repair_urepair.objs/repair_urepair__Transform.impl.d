lib/urepair/transform.ml: Attr_set Fd Fd_set Lhs_analysis List Repair_fd Repair_relational Table Tuple Value
