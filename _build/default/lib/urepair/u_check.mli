(** Checking update-repair properties (Section 2.3).

    A {e consistent update} satisfies Δ; a {e U-repair} becomes
    inconsistent whenever any nonempty set of updated cells is restored to
    the original values. Exact minimality checking is exponential in the
    number of updated cells; {!is_u_repair} performs it on the (small) set
    of touched cells, and {!minimize} greedily restores cells to reach a
    U-repair with no increase of distance. *)

open Repair_relational
open Repair_fd

(** [is_consistent_update d ~of_:t u] holds iff [u] is an update of [t]
    satisfying [d]. *)
val is_consistent_update : Fd_set.t -> of_:Table.t -> Table.t -> bool

(** [updated_cells ~of_:t u] lists the changed cells as
    [(id, attribute-index)] pairs. *)
val updated_cells : of_:Table.t -> Table.t -> (Table.id * int) list

(** [is_u_repair ?max_cells d ~of_:t u] checks consistency and minimality
    by trying every nonempty subset of updated cells (2^c subsets; refuses
    beyond [max_cells], default 16). *)
val is_u_repair : ?max_cells:int -> Fd_set.t -> of_:Table.t -> Table.t -> bool

(** [minimize d ~of_:t u] greedily restores updated cells while
    consistency is preserved. The result is a consistent update with
    [dist_upd ≤] the input's; single-cell minimality is guaranteed
    (full-subset minimality is checked by [is_u_repair]). *)
val minimize : Fd_set.t -> of_:Table.t -> Table.t -> Table.t
