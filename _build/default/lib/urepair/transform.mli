(** The S↔U transformations of Proposition 4.4.

    (1) A consistent update [U] yields a consistent subset [S] with
    [dist_sub(S,T) ≤ dist_upd(U,T)]: drop every tuple touched by the
    update.

    (2) When Δ is consensus-free, a consistent subset [S] yields a
    consistent update [U] with [dist_upd(U,T) ≤ mlc(Δ) · dist_sub(S,T)]:
    keep surviving tuples intact and, in each deleted tuple, overwrite the
    attributes of a minimum lhs cover with fresh constants. *)

open Repair_relational
open Repair_fd

(** [subset_of_update ~table u] implements direction (1); it does not need
    Δ (dropping all touched tuples preserves consistency for any Δ).

    @raise Invalid_argument if [u] is not an update of [table]. *)
val subset_of_update : table:Table.t -> Table.t -> Table.t

(** [update_of_subset ?cover d ~table s] implements direction (2); [cover]
    defaults to a minimum lhs cover of [d].

    @raise Invalid_argument if [s] is not a subset of [table], [d] is not
    consensus-free, or [cover] misses some lhs. *)
val update_of_subset :
  ?cover:Attr_set.t -> Fd_set.t -> table:Table.t -> Table.t -> Table.t
