(** Approximate U-repairs with certified ratios (Section 4.4).

    Theorem 4.12: composing the 2-approximate S-repair (Proposition 3.3)
    with the subset→update transformation (Proposition 4.4) yields a
    [2·mlc(Δ)]-optimal U-repair. Theorem 4.1 sharpens the ratio to the
    maximum over attribute-disjoint components, and components that
    {!Opt_u_repair} solves exactly contribute ratio 1. The paper's closing
    remark of Section 4.4 — run every available algorithm and keep the
    cheapest update — is {!best}. *)

open Repair_relational
open Repair_fd

(** [via_s_repair d tbl] is the plain Theorem 4.12 algorithm (no
    decomposition): a consistent update together with its certified ratio
    [2·mlc(Δ)].

    @raise Invalid_argument if [d] has consensus attributes (eliminate
    them first — {!best} does). *)
val via_s_repair : Fd_set.t -> Table.t -> Table.t * float

(** [best d tbl] is the combined algorithm: consensus elimination
    (Theorem 4.3), per-component solving (Theorem 4.1) using the exact
    solver when the component is tractable and otherwise the better of the
    Theorem 4.12 approximation and the {!U_heuristic} voting repair,
    returning the update and the certified ratio (1.0 when everything was
    exact; the heuristic can only improve the cost, never the
    certificate). *)
val best : Fd_set.t -> Table.t -> Table.t * float

(** [certified_ratio d] is the ratio [best] would certify — depends only
    on Δ. *)
val certified_ratio : Fd_set.t -> float
