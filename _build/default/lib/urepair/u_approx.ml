open Repair_relational
open Repair_fd

let via_s_repair d tbl =
  let d = Fd_set.normalize d in
  if Fd_set.is_empty d then (tbl, 1.0)
  else begin
    if not (Fd_set.is_consensus_free d) then
      invalid_arg "U_approx.via_s_repair: consensus attributes present";
    let s = Repair_srepair.S_approx.approx2 d tbl in
    let u = Transform.update_of_subset d ~table:tbl s in
    (u, 2.0 *. float_of_int (Lhs_analysis.mlc d))
  end

let best d tbl =
  let schema = Table.schema tbl in
  let d = Fd_set.normalize d in
  let consensus = Fd_set.consensus_attrs d in
  (* Theorem 4.3: the consensus part is solved exactly (ratio 1). *)
  let base =
    if Attr_set.is_empty consensus then tbl
    else Opt_u_repair.consensus_majority tbl consensus
  in
  let rest = Fd_set.remove_trivial (Fd_set.minus d consensus) in
  let solve_component c =
    match Opt_u_repair.solve c tbl with
    | Ok u -> (u, 1.0)
    | Error _ ->
      (* Certified algorithm (Theorem 4.12) and the voting heuristic run
         side by side; keep the cheaper update under the certified ratio —
         the paper's "combine the two and take the best" remark. *)
      let certified, ratio = via_s_repair c tbl in
      let heuristic = U_heuristic.local_repair c tbl in
      let pick =
        if Table.dist_upd heuristic tbl < Table.dist_upd certified tbl then
          heuristic
        else certified
      in
      (pick, ratio)
  in
  let solved =
    Fd_set.components rest
    |> List.filter (fun c -> not (Fd_set.is_trivial c))
    |> List.map (fun c ->
           let u, ratio = solve_component c in
           (Fd_set.attrs c, u, ratio))
  in
  let u =
    List.fold_left
      (fun acc (attrs, cu, _) ->
        Table.map_tuples acc (fun i t ->
            Attr_set.fold
              (fun a t' ->
                Tuple.set_attr schema t' a
                  (Tuple.get_attr schema (Table.tuple cu i) a))
              attrs t))
      base solved
  in
  let ratio =
    List.fold_left (fun acc (_, _, r) -> max acc r) 1.0 solved
  in
  (u, ratio)

let certified_ratio d =
  let d = Fd_set.normalize d in
  let rest = Fd_set.remove_trivial (Fd_set.minus d (Fd_set.consensus_attrs d)) in
  Fd_set.components rest
  |> List.filter (fun c -> not (Fd_set.is_trivial c))
  |> List.fold_left
       (fun acc c ->
         let r =
           if Opt_u_repair.tractable c then 1.0
           else 2.0 *. float_of_int (Lhs_analysis.mlc c)
         in
         max acc r)
       1.0
