open Repair_relational
open Repair_fd

let subset_of_update ~table u =
  if not (Table.is_update_of u table) then
    invalid_arg "Transform.subset_of_update: not an update";
  let untouched =
    Table.fold
      (fun i t _ acc ->
        if Tuple.equal t (Table.tuple u i) then i :: acc else acc)
      table []
  in
  Table.restrict table untouched

let update_of_subset ?cover d ~table s =
  if not (Table.is_subset_of s table) then
    invalid_arg "Transform.update_of_subset: not a subset";
  let d = Fd_set.remove_trivial d in
  if not (Fd_set.is_consensus_free d) then
    invalid_arg "Transform.update_of_subset: FD set has consensus attributes";
  let cover =
    match cover with
    | Some c ->
      List.iter
        (fun fd ->
          if Attr_set.disjoint (Fd.lhs fd) c then
            invalid_arg "Transform.update_of_subset: cover misses an lhs")
        (Fd_set.to_list d);
      c
    | None -> if Fd_set.is_empty d then Attr_set.empty else Lhs_analysis.lhs_cover d
  in
  let schema = Table.schema table in
  let supply = Value.Supply.starting_above (Table.all_values table) in
  Table.map_tuples table (fun i t ->
      if Table.mem s i then t
      else
        (* One fresh constant per deleted tuple, written into every cover
           attribute: the tuple can no longer agree with anything on any
           lhs. *)
        let fresh = Value.Supply.next supply in
        Attr_set.fold (fun a acc -> Tuple.set_attr schema acc a fresh) cover t)
