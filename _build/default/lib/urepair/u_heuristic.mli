(** A local-repair heuristic for updates, in the spirit of
    Kolahi–Lakshmanan's algorithm: resolve each violated FD group by
    voting, falling back on fresh lhs values for stragglers.

    No approximation ratio is claimed (the paper only compares the
    {e ratios} of the two published algorithms); the value of the
    heuristic is practical — {!Repair_urepair.U_approx.best} runs it next
    to the certified algorithm and keeps the cheaper update, exactly the
    "combine the two and take the best" closing remark of Section 4.4. *)

open Repair_relational
open Repair_fd

(** [local_repair ?max_rounds d tbl] always returns a consistent update:
    up to [max_rounds] (default 4) voting sweeps — per FD and lhs group,
    every tuple adopts the group's weighted-majority rhs values — then, if
    violations persist (FD interactions can oscillate), the remaining
    violators get fresh constants on a minimum lhs cover.

    @raise Invalid_argument if Δ is not consensus-free (eliminate
    consensus attributes first, as {!U_approx.best} does). *)
val local_repair : ?max_rounds:int -> Fd_set.t -> Table.t -> Table.t
