lib/runtime/fault.mli:
