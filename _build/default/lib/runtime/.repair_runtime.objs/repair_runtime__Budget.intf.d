lib/runtime/budget.mli:
