lib/runtime/fault.ml: Fun Repair_error String
