lib/runtime/budget.ml: Fault Option Repair_error Unix
