lib/runtime/repair_error.mli: Format
