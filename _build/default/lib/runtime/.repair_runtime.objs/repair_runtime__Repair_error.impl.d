lib/runtime/repair_error.ml: Fmt Printexc
