lib/mixed/mixed_exact.mli: Fd_set Repair_fd Repair_relational Table
