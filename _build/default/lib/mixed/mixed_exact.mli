(** Mixed-operation repairs — the third extension direction of Section 5:
    allow deletions {e and} value updates in one repair, with the cost of
    deleting tuple [i] being [delete_factor · w(i)] and the cost of each
    cell update being [w(i)] (the paper's per-tuple weights).

    With [delete_factor = 1] a deletion costs the same as one cell update,
    so mixing strictly generalizes both repair notions:
    the optimal mixed cost is at most the minimum of the optimal subset
    and update distances — we test exactly that. The solver is an exponential baseline in the spirit of
    {!Repair_urepair.U_exact}: iterative deepening over the number of
    operations, with per-column candidate values (active domain + shared
    fresh constants). *)

open Repair_relational
open Repair_fd

type outcome = {
  result : Table.t;  (** the surviving, possibly updated tuples *)
  deleted : Table.id list;
  cost : float;
}

(** [optimal ?delete_factor ?fresh ?max_cells d tbl] computes a
    minimum-cost mixed repair. [delete_factor] defaults to 1.0 (a deletion
    costs one cell update of the same tuple).

    @raise Invalid_argument if the instance exceeds [max_cells] (default
    21) cells. *)
val optimal :
  ?delete_factor:float ->
  ?fresh:int ->
  ?max_cells:int ->
  Fd_set.t ->
  Table.t ->
  outcome

(** [cost ?delete_factor ?fresh ?max_cells d tbl] is the optimal cost. *)
val cost :
  ?delete_factor:float ->
  ?fresh:int ->
  ?max_cells:int ->
  Fd_set.t ->
  Table.t ->
  float
