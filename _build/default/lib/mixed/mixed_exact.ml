open Repair_relational
open Repair_fd

type outcome = { result : Table.t; deleted : Table.id list; cost : float }

(* Per-tuple local moves: keep, delete, or update a subset of cells. The
   solver iteratively deepens on the total number of operations (a deletion
   and a single-cell update each count as one operation). *)
let optimal ?(delete_factor = 1.0) ?(fresh = 2) ?(max_cells = 21) d tbl =
  let schema = Table.schema tbl in
  let arity = Schema.arity schema in
  let ids = Array.of_list (Table.ids tbl) in
  let n = Array.length ids in
  if n * arity > max_cells then
    invalid_arg "Mixed_exact.optimal: table too large for exhaustive search";
  let d = Fd_set.remove_trivial d in
  let supply = Value.Supply.starting_above (Table.all_values tbl) in
  let fresh_pool = List.init fresh (fun _ -> Value.Supply.next supply) in
  let candidates =
    Array.init arity (fun j ->
        Table.active_domain tbl (Schema.attribute_at schema j) @ fresh_pool)
  in
  (* All update variants of one tuple using at most [budget] cell changes,
     as (ops, tuple) pairs; the unchanged tuple is (0, t). *)
  let tuple_variants t budget =
    let rec extend acc changed j =
      if j = arity then [ (changed, acc) ]
      else
        let keep = extend acc changed (j + 1) in
        if changed >= budget then keep
        else
          let original = Tuple.get t j in
          List.fold_left
            (fun variants v ->
              if Value.equal v original then variants
              else
                extend (Tuple.set acc j v) (changed + 1) (j + 1) @ variants)
            keep candidates.(j)
    in
    extend t 0 0
  in
  let best = ref None in
  let best_cost = ref infinity in
  let min_op_cost =
    Table.fold
      (fun _ _ w acc -> min acc (min w (delete_factor *. w)))
      tbl infinity
  in
  (* [go idx budget cost kept deleted]: decide tuple ids.(idx). [kept] holds
     (id, tuple) survivors so far, newest first. *)
  let rec go idx budget cost kept deleted =
    if cost >= !best_cost then ()
    else if idx = n then begin
      let survivors =
        List.fold_left
          (fun acc (i, t) ->
            Table.add ~id:i ~weight:(Table.weight tbl i) acc t)
          (Table.empty schema) kept
      in
      if Fd_set.satisfied_by d survivors then begin
        best := Some (survivors, List.rev deleted);
        best_cost := cost
      end
    end
    else begin
      let i = ids.(idx) in
      let w = Table.weight tbl i in
      let t = Table.tuple tbl i in
      (* keep / update *)
      List.iter
        (fun (ops, t') ->
          if ops <= budget then
            go (idx + 1) (budget - ops)
              (cost +. (float_of_int ops *. w))
              ((i, t') :: kept) deleted)
        (tuple_variants t budget);
      (* delete *)
      if budget >= 1 then
        go (idx + 1) (budget - 1)
          (cost +. (delete_factor *. w))
          kept (i :: deleted)
    end
  in
  let k = ref 0 in
  let continue = ref true in
  while !continue do
    go 0 !k 0.0 [] [];
    if
      !k >= n * arity
      || (!best <> None && float_of_int (!k + 1) *. min_op_cost >= !best_cost)
    then continue := false
    else incr k
  done;
  match !best with
  | Some (result, deleted) -> { result; deleted; cost = !best_cost }
  | None ->
    (* Deleting everything is always consistent, so the search space always
       contains a repair once the budget reaches n. *)
    assert false

let cost ?delete_factor ?fresh ?max_cells d tbl =
  (optimal ?delete_factor ?fresh ?max_cells d tbl).cost
