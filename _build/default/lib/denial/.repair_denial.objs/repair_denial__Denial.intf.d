lib/denial/denial.mli: Fd Fd_set Repair_fd Repair_relational Schema Table Tuple
