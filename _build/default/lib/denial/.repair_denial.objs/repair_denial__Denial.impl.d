lib/denial/denial.ml: Array Fd Fd_set Fmt List Printf Repair_fd Repair_graph Repair_relational Schema Table Tuple Value
