open Repair_relational
open Repair_fd
module G = Repair_graph.Graph
module Vc = Repair_graph.Vertex_cover

type kind =
  | Unary of (Schema.t -> Tuple.t -> bool)
  | Binary of (Schema.t -> Tuple.t -> Tuple.t -> bool)

type t = { name : string; kind : kind }

let unary name p = { name; kind = Unary p }
let binary name p = { name; kind = Binary p }

let of_fd fd =
  binary (Fmt.str "fd:%a" Fd.pp fd) (fun schema t1 t2 ->
      Tuple.agree_on schema t1 t2 (Fd.lhs fd)
      && not (Tuple.agree_on schema t1 t2 (Fd.rhs fd)))

let of_fd_set d = List.map of_fd (Fd_set.to_list (Fd_set.normalize d))

let lt_atom a b =
  binary
    (Printf.sprintf "%s<%s" a b)
    (fun schema t1 t2 ->
      Value.compare (Tuple.get_attr schema t1 a) (Tuple.get_attr schema t2 b) < 0)

let name c = c.name

let pair_violates schema c t1 t2 =
  match c.kind with
  | Unary _ -> false
  | Binary p -> p schema t1 t2 || p schema t2 t1

let unary_violates schema c t =
  match c.kind with Unary p -> p schema t | Binary _ -> false

let violations cs tbl =
  let schema = Table.schema tbl in
  let rows = List.map (fun i -> (i, Table.tuple tbl i)) (Table.ids tbl) in
  let unary_hits =
    List.concat_map
      (fun (i, t) ->
        List.filter_map
          (fun c ->
            if unary_violates schema c t then Some (`Unary (i, c.name)) else None)
          cs)
      rows
  in
  let rec pair_hits acc = function
    | [] -> List.rev acc
    | (i, ti) :: rest ->
      let acc =
        List.fold_left
          (fun acc (j, tj) ->
            List.fold_left
              (fun acc c ->
                if pair_violates schema c ti tj then `Pair (i, j, c.name) :: acc
                else acc)
              acc cs)
          acc rest
      in
      pair_hits acc rest
  in
  unary_hits @ pair_hits [] rows

let satisfied_by cs tbl = violations cs tbl = []

let repair_with cs tbl cover_algorithm =
  let schema = Table.schema tbl in
  let mandatory, viable =
    List.partition
      (fun i ->
        List.exists (fun c -> unary_violates schema c (Table.tuple tbl i)) cs)
      (Table.ids tbl)
  in
  let viable = Array.of_list viable in
  let n = Array.length viable in
  let g =
    if n = 0 then G.create 0
    else G.create_weighted (Array.map (fun i -> Table.weight tbl i) viable)
  in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      if
        List.exists
          (fun c ->
            pair_violates schema c
              (Table.tuple tbl viable.(a))
              (Table.tuple tbl viable.(b)))
          cs
      then G.add_edge g a b
    done
  done;
  let cover = cover_algorithm g in
  Table.remove tbl (mandatory @ List.map (fun v -> viable.(v)) cover)

let optimal_s_repair cs tbl = repair_with cs tbl Vc.exact
let approx_s_repair cs tbl = repair_with cs tbl Vc.approx2
