(** Binary denial constraints — the second extension direction of
    Section 5.

    A (binary) denial constraint forbids certain single tuples or certain
    pairs of tuples from co-existing; FDs are the special case "agree on X
    but not on Y". Subset repairing under any family of unary + binary
    constraints is still a vertex-cover problem (mandatory deletions for
    unary violations, minimum-weight cover of the pair-conflict graph), so
    the exact solver and the factor-2 approximation of Proposition 3.3
    carry over verbatim — only the dichotomy is specific to FDs.

    Constraints are given semantically (OCaml predicates) with a name for
    diagnostics; {!of_fd_set} and comparison atoms cover the common
    syntactic fragments. *)

open Repair_relational
open Repair_fd

type t

(** [unary name p] forbids single tuples satisfying [p]. *)
val unary : string -> (Schema.t -> Tuple.t -> bool) -> t

(** [binary name p] forbids (unordered) pairs on which [p] holds; [p] must
    be symmetric — {!optimal_s_repair} evaluates it in both orders and
    takes the disjunction, so an asymmetric predicate is interpreted as
    "forbidden in either order". *)
val binary : string -> (Schema.t -> Tuple.t -> Tuple.t -> bool) -> t

(** [of_fd fd] is the denial form of an FD: pairs agreeing on the lhs and
    disagreeing on the rhs. *)
val of_fd : Fd.t -> t

(** [of_fd_set d] is one constraint per FD. *)
val of_fd_set : Fd_set.t -> t list

(** [lt_atom a b] forbids pairs where [t1.a < t2.b] and [t1], [t2] agree
    nowhere required — a classic order denial constraint example: use with
    care, it is asymmetric and therefore symmetrized as described in
    {!binary}. *)
val lt_atom : Schema.attribute -> Schema.attribute -> t

val name : t -> string

(** [violations cs tbl] lists named violations: [`Unary (i, name)] and
    [`Pair (i, j, name)] with [i < j]. *)
val violations :
  t list ->
  Table.t ->
  [ `Unary of Table.id * string | `Pair of Table.id * Table.id * string ] list

val satisfied_by : t list -> Table.t -> bool

(** [optimal_s_repair cs tbl] — exact optimal subset repair (exponential
    worst case, Proposition 3.3 machinery). *)
val optimal_s_repair : t list -> Table.t -> Table.t

(** [approx_s_repair cs tbl] — 2-approximation. *)
val approx_s_repair : t list -> Table.t -> Table.t
