module Relational = Repair_relational
module Fd = Repair_fd
module Graph = Repair_graph
module Sat = Repair_sat
module Srepair = Repair_srepair
module Urepair = Repair_urepair
module Dichotomy = Repair_dichotomy
module Mpd = Repair_mpd
module Reductions = Repair_reductions
module Workload = Repair_workload
module Enumerate = Repair_enumerate
module Cfd = Repair_cfd
module Denial = Repair_denial
module Mixed = Repair_mixed
module Cqa = Repair_cqa
module Prioritized = Repair_prioritized
module Cleaning = Repair_cleaning

module Driver = struct
  open Repair_relational
  open Repair_fd

  let src = Logs.Src.create "repair.driver" ~doc:"algorithm selection"

  module Log = (val Logs.src_log src : Logs.LOG)

  type strategy = Auto | Poly | Exact | Approximate

  type report = {
    result : Table.t;
    distance : float;
    optimal : bool;
    ratio : float;
    method_used : string;
  }

  let exact_size_limit = 64

  let s_report tbl result ~optimal ~ratio ~method_used =
    {
      result;
      distance = Table.dist_sub result tbl;
      optimal;
      ratio;
      method_used;
    }

  let s_repair ?(strategy = Auto) d tbl =
    let poly () =
      s_report tbl
        (Repair_srepair.Opt_s_repair.run_exn d tbl)
        ~optimal:true ~ratio:1.0 ~method_used:"OptSRepair (Algorithm 1)"
    in
    let exact () =
      s_report tbl
        (Repair_srepair.S_exact.optimal d tbl)
        ~optimal:true ~ratio:1.0
        ~method_used:"exact minimum-weight vertex cover (baseline)"
    in
    let approx () =
      s_report tbl
        (Repair_srepair.S_approx.approx2 d tbl)
        ~optimal:false ~ratio:2.0
        ~method_used:"Bar-Yehuda–Even 2-approximation (Proposition 3.3)"
    in
    match strategy with
    | Poly -> poly ()
    | Exact -> exact ()
    | Approximate -> approx ()
    | Auto ->
      if Repair_dichotomy.Simplify.succeeds d then begin
        Log.debug (fun m -> m "s-repair: OSRSucceeds — Algorithm 1");
        poly ()
      end
      else if Table.size tbl <= exact_size_limit then begin
        Log.debug (fun m ->
            m "s-repair: hard Δ, n=%d small — exact baseline" (Table.size tbl));
        exact ()
      end
      else begin
        Log.debug (fun m -> m "s-repair: hard Δ at scale — 2-approximation");
        approx ()
      end

  let u_report tbl result ~optimal ~ratio ~method_used =
    {
      result;
      distance = Table.dist_upd result tbl;
      optimal;
      ratio;
      method_used;
    }

  let u_repair ?(strategy = Auto) d tbl =
    let poly () =
      u_report tbl
        (Repair_urepair.Opt_u_repair.solve_exn d tbl)
        ~optimal:true ~ratio:1.0
        ~method_used:"tractable-case solver (Section 4)"
    in
    let exact () =
      u_report tbl
        (Repair_urepair.U_exact.optimal d tbl)
        ~optimal:true ~ratio:1.0
        ~method_used:"bounded exhaustive search (baseline)"
    in
    let approx () =
      let u, ratio = Repair_urepair.U_approx.best d tbl in
      u_report tbl u ~optimal:(ratio = 1.0) ~ratio
        ~method_used:
          "combined per-component approximation (Theorems 4.1/4.3/4.12)"
    in
    match strategy with
    | Poly -> poly ()
    | Exact -> exact ()
    | Approximate -> approx ()
    | Auto ->
      if Repair_urepair.Opt_u_repair.tractable d then begin
        Log.debug (fun m -> m "u-repair: Section-4 tractable case");
        poly ()
      end
      else if Table.size tbl * Schema.arity (Table.schema tbl) <= 18 then begin
        Log.debug (fun m -> m "u-repair: exhaustive search on tiny instance");
        exact ()
      end
      else begin
        Log.debug (fun m -> m "u-repair: certified combined approximation");
        approx ()
      end

  let s_repair_database ?strategy constraints db =
    let total = ref 0.0 in
    let repaired =
      Database.map db (fun name tbl ->
          match List.assoc_opt name constraints with
          | None -> tbl
          | Some d ->
            let r = s_repair ?strategy d tbl in
            total := !total +. r.distance;
            r.result)
    in
    (repaired, !total)

  let describe d =
    let module Simplify = Repair_dichotomy.Simplify in
    let module Classify = Repair_dichotomy.Classify in
    let buf = Buffer.create 256 in
    let ppf = Fmt.with_buffer buf in
    Fmt.pf ppf "Δ = %a@." Fd_set.pp d;
    (match Classify.classify d with
    | `Tractable trace ->
      Fmt.pf ppf
        "Optimal S-repair: polynomial time (OSRSucceeds holds).@.%a@."
        Simplify.pp_trace (d, trace)
    | `Hard (stuck, trace, cert) ->
      Fmt.pf ppf
        "Optimal S-repair: APX-complete (OSRSucceeds fails).@.%a@.Stuck \
         set: %a@.Certificate: %a@."
        Simplify.pp_trace (d, trace) Fd_set.pp stuck Classify.pp_certificate
        cert);
    (match Repair_urepair.Opt_u_repair.diagnose d with
    | None ->
      Fmt.pf ppf "Optimal U-repair: polynomial time (Section 4 cases).@."
    | Some f ->
      Fmt.pf ppf "Optimal U-repair: not known tractable — %a@."
        Repair_urepair.Opt_u_repair.pp_failure f);
    let d' = Fd_set.normalize d in
    if not (Fd_set.is_empty d') then begin
      Fmt.pf ppf
        "U-repair approximation ratios: ours (Thm 4.12, per-component) = \
         %g; Kolahi–Lakshmanan (Thm 4.13) = %d (MFS=%d, MCI=%d).@."
        (Repair_urepair.U_approx.certified_ratio d)
        (Lhs_analysis.kl_ratio d') (Lhs_analysis.mfs d')
        (Lhs_analysis.mci d')
    end;
    Fmt.flush ppf ();
    Buffer.contents buf
end
