open Repair_relational
open Repair_fd

type instance = { schema : Schema.t; fds : Fd_set.t; table : Table.t }

let chain_source =
  (Schema.make "S" [ "A"; "B"; "C" ], Fd_set.parse "A -> B; B -> C")

let attr_range prefix lo hi =
  List.init (hi - lo + 1) (fun i -> Printf.sprintf "%s%d" prefix (lo + i))

let delta_k_target k =
  let a = attr_range "A" 0 k and b = attr_range "B" 0 k in
  let schema = Schema.make "Rk" (a @ b @ [ "C" ]) in
  let fds =
    Fd.of_lists a [ "B0" ]
    :: Fd.of_lists [ "B0" ] [ "C" ]
    :: List.map (fun bi -> Fd.of_lists [ bi ] [ "A0" ]) (attr_range "B" 1 k)
  in
  (schema, Fd_set.of_list fds)

let embed_in_delta_k ~k tbl =
  if k < 1 then invalid_arg "Family_gadget.embed_in_delta_k: k must be >= 1";
  let src_schema, _ = chain_source in
  if not (Schema.equal (Table.schema tbl) src_schema) then
    invalid_arg "Family_gadget.embed_in_delta_k: table not over S(A,B,C)";
  let schema, fds = delta_k_target k in
  let zero = Value.int 0 in
  let embed t =
    (* r.A1 = s.A, r.B0 = s.B, r.C = s.C, everything else 0. *)
    Tuple.make
      (List.map
         (fun attr ->
           match attr with
           | "A1" -> Tuple.get t 0
           | "B0" -> Tuple.get t 1
           | "C" -> Tuple.get t 2
           | _ -> zero)
         (Schema.attributes schema))
  in
  let table =
    Table.fold
      (fun i t w acc -> Table.add ~id:i ~weight:w acc (embed t))
      tbl (Table.empty schema)
  in
  { schema; fds; table }

let delta'_source =
  let schema = Schema.make "R'1" [ "A0"; "A1"; "A2"; "B0"; "B1" ] in
  (schema, Fd_set.parse "A0 A1 -> B0; A1 A2 -> B1")

let delta'_k_target k =
  let a = attr_range "A" 0 (k + 1) and b = attr_range "B" 0 k in
  let schema = Schema.make "R'k" (a @ b) in
  let fds =
    List.init (k + 1) (fun i ->
        Fd.of_lists
          [ Printf.sprintf "A%d" i; Printf.sprintf "A%d" (i + 1) ]
          [ Printf.sprintf "B%d" i ])
  in
  (schema, Fd_set.of_list fds)

let lift_to_delta'_k ~k tbl =
  if k < 2 then invalid_arg "Family_gadget.lift_to_delta'_k: k must be >= 2";
  let src_schema, _ = delta'_source in
  if not (Schema.equal (Table.schema tbl) src_schema) then
    invalid_arg "Family_gadget.lift_to_delta'_k: table not over R'1";
  let schema, fds = delta'_k_target k in
  let lift t =
    Tuple.make
      (List.map
         (fun attr ->
           match Schema.index_of_opt src_schema attr with
           | Some i -> Tuple.get t i
           | None -> Value.Unit)
         (Schema.attributes schema))
  in
  let table =
    Table.fold
      (fun i t w acc -> Table.add ~id:i ~weight:w acc (lift t))
      tbl (Table.empty schema)
  in
  { schema; fds; table }
