open Repair_relational
open Repair_fd
module G = Repair_graph.Graph
module Vc = Repair_graph.Vertex_cover

type t = { schema : Schema.t; fds : Fd_set.t; table : Table.t; graph : G.t }

let schema_abc = Schema.make "R" [ "A"; "B"; "C" ]
let fds_marriage = Fd_set.parse "A -> B; B -> A; B -> C"

let row a b c = Tuple.make [ Value.int a; Value.int b; Value.int c ]

(* Edge {u,v} (u < v) at position e gets tuple ids 2e+1 (u,v,0) and 2e+2
   (v,u,0); vertex v gets id 2|E| + v + 1. *)
let of_graph g =
  let edges = G.edges g in
  let m = List.length edges in
  let table = ref (Table.empty schema_abc) in
  List.iteri
    (fun e (u, v) ->
      table := Table.add ~id:((2 * e) + 1) !table (row u v 0);
      table := Table.add ~id:((2 * e) + 2) !table (row v u 0))
    edges;
  for v = 0 to G.n_vertices g - 1 do
    table := Table.add ~id:((2 * m) + v + 1) !table (row v v 1)
  done;
  { schema = schema_abc; fds = fds_marriage; table = !table; graph = g }

let update_of_cover gadget cover =
  if not (Vc.is_cover gadget.graph cover) then
    invalid_arg "Vc_gadget.update_of_cover: not a vertex cover";
  let in_cover = Array.make (G.n_vertices gadget.graph) false in
  List.iter (fun v -> in_cover.(v) <- true) cover;
  let edges = G.edges gadget.graph in
  let m = List.length edges in
  let u = ref gadget.table in
  List.iteri
    (fun e (a, b) ->
      (* Collapse both edge tuples onto the covering endpoint: one cell
         each. *)
      let w = if in_cover.(a) then a else b in
      u := Table.set_tuple !u ((2 * e) + 1) (row w w 0);
      u := Table.set_tuple !u ((2 * e) + 2) (row w w 0))
    edges;
  for v = 0 to G.n_vertices gadget.graph - 1 do
    if in_cover.(v) then u := Table.set_tuple !u ((2 * m) + v + 1) (row v v 0)
  done;
  !u

let expected_distance gadget ~tau =
  float_of_int ((2 * G.n_edges gadget.graph) + tau)
