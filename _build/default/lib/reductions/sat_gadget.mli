(** SAT → S-repair hardness gadgets (Appendix A.2.1).

    Each constructor turns a formula into an unweighted, duplicate-free
    table over R(A,B,C) such that the maximum number of simultaneously
    satisfiable clauses equals the size (tuple count) of an optimal
    S-repair — so the optimal repair {e distance} is
    [#tuples − maxsat], making the reductions strict for the complement
    objective. Formulas must not repeat a literal inside a clause
    (duplicate tuples would inflate the count). *)

open Repair_relational
open Repair_fd
open Repair_sat

type t = { schema : Schema.t; fds : Fd_set.t; table : Table.t }

(** [of_2cnf_chain f] targets [Δ_{A→B→C} = {A→B, B→C}] (Lemma A.5 /
    Gribkoff et al.): clause [j] with literal [(x, s)] yields tuple
    [(j, x, s)]. [A→B] picks at most one variable per clause; [B→C] forces
    a global assignment.

    @raise Invalid_argument unless [f] is 2-CNF with distinct variables in
    each clause. *)
val of_2cnf_chain : Cnf.t -> t

(** [of_2cnf_fork f] targets [Δ_{A→C←B} = {A→C, B→C}] (Lemma A.4): clause
    [j] with literal [(x, s)] yields [(j, x, ⟨x,s⟩)]. [B→C] forces an
    assignment; [A→C] picks at most one literal per clause. *)
val of_2cnf_fork : Cnf.t -> t

(** [of_non_mixed f] targets [Δ_{AB→C→B} = {AB→C, C→B}] (Lemma A.13):
    clause [j], polarity [b], variable [x] yield [(j, b, x)].

    @raise Invalid_argument unless [f] is non-mixed. *)
val of_non_mixed : Cnf.t -> t

(** [kept_of_assignment g f assignment] builds the consistent subset
    corresponding to an assignment: for each satisfied clause, the tuple of
    one satisfied literal. Its size equals the number of satisfied
    clauses. The returned table is a consistent subset of [g.table]. *)
val kept_of_assignment : t -> Cnf.t -> bool array -> Table.t
