(** The Theorem 4.14 reductions (Appendix B.5): embedding small hard
    U-repair instances into the parameterized families Δk and Δ'k.

    - Lemma B.6: a table over S(A,B,C) for [{A→B, B→C}] embeds into
      R(A0..Ak, B0..Bk, C) for Δk by storing A in [A1], B in [B0], C in
      [C], and 0 everywhere else; optimal update distances coincide.
    - Lemma B.7: a table over R'1(A0,A1,A2,B0,B1) for Δ'1 lifts to
      R'k by padding the new attributes with the constant ⊙; optimal
      update distances coincide.

    Together with the hardness of the base cases, these make the whole
    families APX-complete; here they are executable and checked
    numerically against the exhaustive U-repair baseline. *)

open Repair_relational
open Repair_fd

type instance = { schema : Schema.t; fds : Fd_set.t; table : Table.t }

(** Source schema of Lemma B.6: S(A, B, C) with [{A→B, B→C}]. *)
val chain_source : Schema.t * Fd_set.t

(** [embed_in_delta_k ~k tbl] builds the Δk instance from a table over
    {!chain_source}.

    @raise Invalid_argument if [tbl] is not over S(A,B,C) or [k < 1]. *)
val embed_in_delta_k : k:int -> Table.t -> instance

(** Source schema of Lemma B.7: Δ'1 over R'1(A0, A1, A2, B0, B1). *)
val delta'_source : Schema.t * Fd_set.t

(** [lift_to_delta'_k ~k tbl] builds the Δ'k instance from a table over
    {!delta'_source}.

    @raise Invalid_argument if [tbl] is not over R'1 or [k < 2]. *)
val lift_to_delta'_k : k:int -> Table.t -> instance
