open Repair_relational
open Repair_fd
module Triangle = Repair_graph.Triangle

type t = {
  schema : Schema.t;
  fds : Fd_set.t;
  table : Table.t;
  triangles : Triangle.triangle array;
}

let schema_abc = Schema.make "R" [ "A"; "B"; "C" ]
let fds_abc = Fd_set.parse "A B -> C; A C -> B; B C -> A"

let of_tripartite g =
  let triangles = Array.of_list (Triangle.enumerate g) in
  let table =
    Array.to_list triangles
    |> List.mapi (fun i (a, b, c) ->
           (i + 1, 1.0, Tuple.make [ Value.int a; Value.int b; Value.int c ]))
    |> Table.of_list schema_abc
  in
  { schema = schema_abc; fds = fds_abc; table; triangles }

let id_of_triangle gadget t =
  let rec find i =
    if i >= Array.length gadget.triangles then raise Not_found
    else if gadget.triangles.(i) = t then i + 1
    else find (i + 1)
  in
  find 0

let kept_of_packing gadget ts =
  Table.restrict gadget.table (List.map (id_of_triangle gadget) ts)

let packing_of_kept gadget s =
  Table.ids s |> List.map (fun i -> gadget.triangles.(i - 1))
