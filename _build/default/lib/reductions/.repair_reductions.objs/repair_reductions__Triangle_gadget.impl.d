lib/reductions/triangle_gadget.ml: Array Fd_set List Repair_fd Repair_graph Repair_relational Schema Table Tuple Value
