lib/reductions/triangle_gadget.mli: Fd_set Repair_fd Repair_graph Repair_relational Schema Table
