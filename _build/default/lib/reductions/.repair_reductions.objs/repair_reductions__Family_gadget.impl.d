lib/reductions/family_gadget.ml: Fd Fd_set List Printf Repair_fd Repair_relational Schema Table Tuple Value
