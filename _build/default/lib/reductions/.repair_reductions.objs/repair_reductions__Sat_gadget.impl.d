lib/reductions/sat_gadget.ml: Array Cnf Fd_set List Repair_fd Repair_relational Repair_sat Schema Stdlib Table Tuple Value
