lib/reductions/sat_gadget.mli: Cnf Fd_set Repair_fd Repair_relational Repair_sat Schema Table
