lib/reductions/family_gadget.mli: Fd_set Repair_fd Repair_relational Schema Table
