(** Vertex cover → U-repair gadget for [Δ_{A↔B→C}] (Theorem 4.10).

    For a graph G(V, E): each edge {u, v} yields tuples (u, v, 0) and
    (v, u, 0); each vertex v yields (v, v, 1). All weights are 1. The
    theorem shows the optimal U-repair distance is exactly [2|E| + τ(G)],
    where τ is the minimum vertex cover size; {!update_of_cover} realizes
    the upper bound constructively, as in the proof's direction (1). *)

open Repair_relational
open Repair_fd

type t = {
  schema : Schema.t;
  fds : Fd_set.t;  (** [{A→B, B→A, B→C}] *)
  table : Table.t;
  graph : Repair_graph.Graph.t;
}

val of_graph : Repair_graph.Graph.t -> t

(** [update_of_cover gadget cover] is the consistent update built from a
    vertex cover, of distance [2|E| + |cover|].

    @raise Invalid_argument if [cover] is not a vertex cover. *)
val update_of_cover : t -> int list -> Table.t

(** [expected_distance gadget ~tau] is [2|E| + tau]. *)
val expected_distance : t -> tau:int -> float
