(** Triangle packing → S-repair gadget for [Δ_{AB↔AC↔BC}] (Lemma A.11).

    Every triangle (a, b, c) of a tripartite graph — one vertex per part —
    becomes the tuple (a, b, c). The three FDs [AB→C], [AC→B], [BC→A]
    forbid two kept tuples from sharing two coordinates, i.e. an edge: a
    consistent subset is exactly an edge-disjoint triangle set, so the
    optimal S-repair size equals the maximum packing. *)

open Repair_relational
open Repair_fd

type t = {
  schema : Schema.t;
  fds : Fd_set.t;
  table : Table.t;
  triangles : Repair_graph.Triangle.triangle array;
      (** tuple with id [i+1] encodes [triangles.(i)] *)
}

(** [of_tripartite g] builds the gadget from a tripartite graph (triangles
    necessarily take one vertex per part). *)
val of_tripartite : Repair_graph.Graph.t -> t

(** [kept_of_packing gadget ts] is the consistent subset encoding an
    edge-disjoint triangle set. *)
val kept_of_packing : t -> Repair_graph.Triangle.triangle list -> Table.t

(** [packing_of_kept gadget s] decodes a consistent subset back into the
    (edge-disjoint) triangle list it encodes. *)
val packing_of_kept : t -> Table.t -> Repair_graph.Triangle.triangle list
