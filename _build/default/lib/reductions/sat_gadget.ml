open Repair_relational
open Repair_fd
open Repair_sat

type t = { schema : Schema.t; fds : Fd_set.t; table : Table.t }

let schema_abc = Schema.make "R" [ "A"; "B"; "C" ]

let check_no_duplicate_literals f =
  List.iter
    (fun clause ->
      let distinct = List.sort_uniq Stdlib.compare clause in
      if List.length distinct <> List.length clause then
        invalid_arg "Sat_gadget: duplicate literal in a clause")
    (Cnf.clauses f)

(* Identifier of the l-th literal of clause j (both 0-based): 1 + the
   number of literals in earlier clauses + l. *)
let clause_offsets f =
  let offsets = Array.make (Cnf.n_clauses f) 0 in
  let _ =
    List.fold_left
      (fun (j, acc) clause ->
        offsets.(j) <- acc;
        (j + 1, acc + List.length clause))
      (0, 0) (Cnf.clauses f)
  in
  offsets

let tuple_id offsets j l = offsets.(j) + l + 1

let build f tuple_of_literal =
  check_no_duplicate_literals f;
  let offsets = clause_offsets f in
  List.fold_left
    (fun (j, tbl) clause ->
      let tbl =
        List.fold_left
          (fun (l, tbl) lit ->
            ( l + 1,
              Table.add ~id:(tuple_id offsets j l) tbl (tuple_of_literal j lit) ))
          (0, tbl) clause
        |> snd
      in
      (j + 1, tbl))
    (0, Table.empty schema_abc)
    (Cnf.clauses f)
  |> snd

let bool_value b = Value.int (if b then 1 else 0)

let of_2cnf_chain f =
  if not (Cnf.is_2cnf f) then invalid_arg "Sat_gadget.of_2cnf_chain: not 2-CNF";
  List.iter
    (fun clause ->
      match List.map (fun (l : Cnf.literal) -> l.var) clause with
      | [ x; y ] when x <> y -> ()
      | _ -> invalid_arg "Sat_gadget.of_2cnf_chain: repeated variable in clause")
    (Cnf.clauses f);
  let tuple_of j (lit : Cnf.literal) =
    Tuple.make [ Value.int j; Value.int lit.var; bool_value lit.positive ]
  in
  { schema = schema_abc; fds = Fd_set.parse "A -> B; B -> C"; table = build f tuple_of }

let of_2cnf_fork f =
  if not (Cnf.is_2cnf f) then invalid_arg "Sat_gadget.of_2cnf_fork: not 2-CNF";
  let tuple_of j (lit : Cnf.literal) =
    Tuple.make
      [ Value.int j;
        Value.int lit.var;
        Value.pair (Value.int lit.var) (bool_value lit.positive) ]
  in
  { schema = schema_abc; fds = Fd_set.parse "A -> C; B -> C"; table = build f tuple_of }

let of_non_mixed f =
  if not (Cnf.is_non_mixed f) then
    invalid_arg "Sat_gadget.of_non_mixed: formula is mixed";
  let tuple_of j (lit : Cnf.literal) =
    Tuple.make [ Value.int j; bool_value lit.positive; Value.int lit.var ]
  in
  { schema = schema_abc; fds = Fd_set.parse "A B -> C; C -> B"; table = build f tuple_of }

let kept_of_assignment g f assignment =
  let offsets = clause_offsets f in
  let eval (l : Cnf.literal) =
    if l.positive then assignment.(l.var) else not assignment.(l.var)
  in
  let keep =
    List.concat
      (List.mapi
         (fun j clause ->
           (* One satisfied literal per satisfied clause. *)
           let rec first l = function
             | [] -> []
             | lit :: rest ->
               if eval lit then [ tuple_id offsets j l ] else first (l + 1) rest
           in
           first 0 clause)
         (Cnf.clauses f))
  in
  Table.restrict g.table keep
