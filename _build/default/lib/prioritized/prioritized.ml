open Repair_relational
open Repair_fd
module Iset = Set.Make (Int)

type t = {
  d : Fd_set.t;
  tbl : Table.t;
  edges : (Table.id * Table.id) list; (* i ≻ j *)
}

let conflicts d tbl i j =
  let schema = Table.schema tbl in
  not (Fd_set.pair_consistent d schema (Table.tuple tbl i) (Table.tuple tbl j))

let acyclic edges ids =
  (* Kahn's algorithm over the preference digraph. *)
  let succs = Hashtbl.create 16 in
  let indeg = Hashtbl.create 16 in
  List.iter (fun i -> Hashtbl.replace indeg i 0) ids;
  List.iter
    (fun (i, j) ->
      Hashtbl.replace succs i (j :: Option.value (Hashtbl.find_opt succs i) ~default:[]);
      Hashtbl.replace indeg j (1 + Option.value (Hashtbl.find_opt indeg j) ~default:0))
    edges;
  let queue = Queue.create () in
  List.iter (fun i -> if Hashtbl.find indeg i = 0 then Queue.add i queue) ids;
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    incr seen;
    List.iter
      (fun j ->
        let deg = Hashtbl.find indeg j - 1 in
        Hashtbl.replace indeg j deg;
        if deg = 0 then Queue.add j queue)
      (Option.value (Hashtbl.find_opt succs i) ~default:[])
  done;
  !seen = List.length ids

let create d tbl preferences =
  let ids = Table.ids tbl in
  List.iter
    (fun (i, j) ->
      if not (Table.mem tbl i && Table.mem tbl j) then
        invalid_arg "Prioritized.create: unknown tuple id";
      if not (conflicts d tbl i j) then
        invalid_arg
          (Printf.sprintf
             "Prioritized.create: %d and %d do not conflict under Δ" i j))
    preferences;
  let edges = List.sort_uniq Stdlib.compare preferences in
  if not (acyclic edges ids) then
    invalid_arg "Prioritized.create: preference cycle";
  { d; tbl; edges }

let prefers p i j = List.mem (i, j) p.edges

let neighbours_in p i s =
  List.filter (fun j -> j <> i && conflicts p.d p.tbl i j) (Table.ids s)

let is_maximal_consistent p s =
  Table.is_subset_of s p.tbl
  && Fd_set.satisfied_by p.d s
  && List.for_all
       (fun i -> Table.mem s i || neighbours_in p i s <> [])
       (Table.ids p.tbl)

(* Binary conflicts: a Pareto improvement exists iff some excluded tuple
   dominates every conflicting survivor. *)
let is_pareto_optimal p s =
  is_maximal_consistent p s
  && not
       (List.exists
          (fun i ->
            (not (Table.mem s i))
            && List.for_all (prefers p i) (neighbours_in p i s))
          (Table.ids p.tbl))

let is_globally_optimal p s =
  let ids = Array.of_list (Table.ids p.tbl) in
  let n = Array.length ids in
  if n > 20 then invalid_arg "Prioritized.is_globally_optimal: table too large";
  if not (Table.is_subset_of s p.tbl && Fd_set.satisfied_by p.d s) then false
  else begin
    let in_s = Iset.of_list (Table.ids s) in
    let improvement = ref false in
    for mask = 0 to (1 lsl n) - 1 do
      if not !improvement then begin
        let s' = ref Iset.empty in
        for b = 0 to n - 1 do
          if mask land (1 lsl b) <> 0 then s' := Iset.add ids.(b) !s'
        done;
        let s' = !s' in
        if not (Iset.equal s' in_s) then begin
          let table' = Table.restrict p.tbl (Iset.elements s') in
          if Fd_set.satisfied_by p.d table' then begin
            let removed = Iset.diff in_s s' and added = Iset.diff s' in_s in
            let global =
              Iset.for_all
                (fun t -> Iset.exists (fun t' -> prefers p t' t) added)
                removed
            in
            if global then improvement := true
          end
        end
      end
    done;
    not !improvement
  end

let dominated p i unprocessed =
  List.exists (fun j -> prefers p j i) (Iset.elements unprocessed)

let c_repair ?(tie = Stdlib.compare) p =
  let rec go unprocessed s =
    if Iset.is_empty unprocessed then s
    else
      let maximal =
        Iset.elements unprocessed
        |> List.filter (fun i -> not (dominated p i unprocessed))
        |> List.sort tie
      in
      match maximal with
      | [] -> assert false (* acyclicity guarantees a maximal element *)
      | i :: _ ->
        let keep =
          Table.for_all
            (fun _ t ->
              Fd_set.pair_consistent p.d (Table.schema p.tbl)
                (Table.tuple p.tbl i) t)
            s
        in
        let s =
          if keep then
            Table.add ~id:i ~weight:(Table.weight p.tbl i) s (Table.tuple p.tbl i)
          else s
        in
        go (Iset.remove i unprocessed) s
  in
  go (Iset.of_list (Table.ids p.tbl)) (Table.empty (Table.schema p.tbl))

let all_c_repairs p =
  let module Sset = Set.Make (struct
    type t = Iset.t

    let compare = Iset.compare
  end) in
  let results = ref Sset.empty in
  let rec go unprocessed s =
    if Iset.is_empty unprocessed then results := Sset.add s !results
    else
      let maximal =
        Iset.elements unprocessed
        |> List.filter (fun i -> not (dominated p i unprocessed))
      in
      List.iter
        (fun i ->
          let consistent_with_s =
            Iset.for_all (fun j -> not (conflicts p.d p.tbl i j)) s
          in
          let s' = if consistent_with_s then Iset.add i s else s in
          go (Iset.remove i unprocessed) s')
        maximal
  in
  go (Iset.of_list (Table.ids p.tbl)) Iset.empty;
  Sset.elements !results
  |> List.map (fun s -> Table.restrict p.tbl (Iset.elements s))

let is_unambiguous p =
  match all_c_repairs p with
  | [] | [ _ ] -> true
  | first :: rest -> List.for_all (Table.equal first) rest
