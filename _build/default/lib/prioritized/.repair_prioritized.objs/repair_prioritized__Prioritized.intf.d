lib/prioritized/prioritized.mli: Fd_set Repair_fd Repair_relational Table
