lib/prioritized/prioritized.ml: Array Fd_set Hashtbl Int List Option Printf Queue Repair_fd Repair_relational Set Stdlib Table
