(** Prioritized repairing — the final future-work direction of Section 5,
    after Staworko, Chomicki and Marcinkowski ("prioritized repairing and
    consistent query answering", the paper's reference [29]) and the
    ambiguity analysis of Kimelfeld, Livshits and Peterfreund [23].

    A {e priority} is an acyclic relation [t1 ≻ t2] over {e conflicting}
    tuple pairs, stating that we trust [t1] over [t2]. It refines the
    space of S-repairs (maximal consistent subsets):

    - a {e Pareto improvement} of [S] replaces some tuples with a single
      witness tuple preferred to {e all} of them; [S] is a
      {e Pareto-optimal repair} (p-repair) if none exists — for FDs
      (binary conflicts) this reduces to a single-tuple test and is
      decided in polynomial time;
    - a {e global improvement} replaces tuples so that {e each} removed
      tuple is dominated by {e some} added tuple; [S] is a {e globally
      optimal repair} (g-repair) if none exists — checked here by
      exhaustive search (the decision problem is coNP-complete in
      general);
    - a {e completion-optimal repair} (c-repair) is produced by the greedy
      algorithm on some linear extension of ≻: every c-repair is a
      g-repair, every g-repair a p-repair.

    The paper asks (§5) how many priorities make cleaning
    {e unambiguous}; {!is_unambiguous} decides it for a given priority by
    enumerating the c-repairs. *)

open Repair_relational
open Repair_fd

type t

(** [create d tbl preferences] validates and builds a priority: each pair
    [(i, j)] states tuple [i] ≻ tuple [j].

    @raise Invalid_argument if some pair does not conflict under [d], ids
    are missing, or the relation has a cycle. *)
val create : Fd_set.t -> Table.t -> (Table.id * Table.id) list -> t

(** [prefers p i j] — is [i ≻ j] (directly)? *)
val prefers : t -> Table.id -> Table.id -> bool

(** [is_pareto_optimal p s] — [s] is a maximal consistent subset with no
    Pareto improvement (polynomial, single-tuple witness argument). *)
val is_pareto_optimal : t -> Table.t -> bool

(** [is_globally_optimal p s] — no global improvement exists; exhaustive
    over consistent subsets.

    @raise Invalid_argument on tables with more than ~20 tuples. *)
val is_globally_optimal : t -> Table.t -> bool

(** [c_repair ?tie p] — the greedy repair for the linear extension of ≻
    obtained by breaking ties with [tie] (a total order on ids; defaults
    to [compare]). *)
val c_repair : ?tie:(Table.id -> Table.id -> int) -> t -> Table.t

(** [all_c_repairs p] — every c-repair (over all linear extensions), by
    branching on the maximal available tuples. Exponential; small tables
    only. *)
val all_c_repairs : t -> Table.t list

(** [is_unambiguous p] — all c-repairs coincide: the priority is rich
    enough to clean the table deterministically [23]. *)
val is_unambiguous : t -> bool
