(** Counting optimal S-repairs in polynomial time.

    Livshits and Kimelfeld (PODS'17, the paper's reference [26]) showed
    that {e chain} FD sets are exactly the sets whose subset repairs can be
    counted in polynomial time. Here we count {e optimal} S-repairs along
    the recursion of Algorithm 1: the common-lhs case multiplies block
    counts, and the consensus case sums the counts of the maximum-weight
    blocks. The lhs-marriage case would require counting maximum-weight
    bipartite matchings (#P-hard in general), so it is refused — chain FD
    sets never need it (Corollary 3.6). *)

open Repair_relational
open Repair_fd

(** [optimal_s_repairs d tbl] is the number of distinct optimal S-repairs
    (as identifier sets), saturating at [max_int] — counts grow
    exponentially with the number of independent ties. [Error stuck] when
    the recursion hits an lhs-marriage or an unsimplifiable set. *)
val optimal_s_repairs : Fd_set.t -> Table.t -> (int, Fd_set.t) result

(** [optimal_s_repairs_exn d tbl] raises [Failure] instead. *)
val optimal_s_repairs_exn : Fd_set.t -> Table.t -> int

(** [optimal_weight_and_count d tbl] also returns the weight kept by an
    optimal S-repair — cross-checkable against
    {!Repair_srepair.Opt_s_repair.distance}. *)
val optimal_weight_and_count :
  Fd_set.t -> Table.t -> (float * int, Fd_set.t) result
