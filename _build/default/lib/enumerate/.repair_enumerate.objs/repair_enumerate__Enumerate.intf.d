lib/enumerate/enumerate.mli: Fd_set Repair_fd Repair_relational Repair_runtime Table
