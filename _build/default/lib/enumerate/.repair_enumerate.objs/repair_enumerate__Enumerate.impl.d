lib/enumerate/enumerate.ml: Array Fd_set Fun Int List Printf Repair_fd Repair_relational Repair_srepair Set Table
