lib/enumerate/enumerate.ml: Array Budget Fd_set Fun Int List Printf Repair_fd Repair_relational Repair_runtime Repair_srepair Set Table
