lib/enumerate/count.mli: Fd_set Repair_fd Repair_relational Table
