open Repair_relational
open Repair_fd

exception Stuck of Fd_set.t

(* Counts explode combinatorially; saturate at max_int rather than silently
   overflowing. *)
let sat_mul a b =
  if a = 0 || b = 0 then 0
  else if a > max_int / b then max_int
  else a * b

let sat_add a b = if a > max_int - b then max_int else a + b

(* Mirrors the recursion of OptSRepair but carries (optimal weight, number
   of optima) per subproblem. *)
let rec go d tbl =
  let d = Fd_set.remove_trivial d in
  if Fd_set.is_empty d then (Table.total_weight tbl, 1)
  else
    match Fd_set.common_lhs d with
    | Some a ->
      (* Groups are independent: weights add, counts multiply. *)
      let smaller = Fd_set.minus d (Attr_set.singleton a) in
      Table.group_by tbl (Attr_set.singleton a)
      |> List.fold_left
           (fun (w, c) (_, sub) ->
             let w', c' = go smaller sub in
             (w +. w', sat_mul c c'))
           (0.0, 1)
    | None -> (
      match Fd_set.consensus_fd d with
      | Some fd ->
        (* Exactly one block survives: the counts of all maximum-weight
           blocks add up. *)
        let smaller = Fd_set.minus d (Fd.rhs fd) in
        let blocks =
          Table.group_by tbl (Fd.rhs fd) |> List.map (fun (_, sub) -> go smaller sub)
        in
        (match blocks with
        | [] -> (0.0, 1) (* empty table: the empty repair *)
        | _ ->
          let best = List.fold_left (fun acc (w, _) -> max acc w) 0.0 blocks in
          let count =
            List.fold_left
              (fun acc (w, c) -> if w >= best -. 1e-9 then sat_add acc c else acc)
              0 blocks
          in
          (best, count))
      | None -> raise (Stuck d))

let optimal_s_repairs d tbl =
  match go d tbl with
  | _, c -> Ok c
  | exception Stuck stuck -> Error stuck

let optimal_weight_and_count d tbl =
  match go d tbl with
  | w, c -> Ok (w, c)
  | exception Stuck stuck -> Error stuck

let optimal_s_repairs_exn d tbl =
  match optimal_s_repairs d tbl with
  | Ok c -> c
  | Error stuck ->
    failwith
      (Fmt.str
         "Count.optimal_s_repairs: %a needs an lhs marriage (counting \
          maximum matchings is #P-hard)"
         Fd_set.pp stuck)
