open Repair_relational
module Iset = Set.Make (Int)

module Tmap = Map.Make (struct
  type t = Tuple.t

  let compare = Tuple.compare
end)

(* One entry per FD: lhs projection -> (rhs projection -> supporting ids). *)
type fd_entry = {
  fd : Fd.t;
  mutable groups : Iset.t Tmap.t Tmap.t;
}

type t = {
  schema : Schema.t;
  entries : fd_entry list;
  ids : (Table.id, Tuple.t) Hashtbl.t;
}

let create d schema =
  let fds = Fd_set.to_list (Fd_set.normalize d) in
  {
    schema;
    entries = List.map (fun fd -> { fd; groups = Tmap.empty }) fds;
    ids = Hashtbl.create 64;
  }

let project idx entry tuple =
  ( Tuple.project idx.schema tuple (Fd.lhs entry.fd),
    Tuple.project idx.schema tuple (Fd.rhs entry.fd) )

let add idx id tuple =
  if Hashtbl.mem idx.ids id then
    invalid_arg (Printf.sprintf "Fd_index.add: id %d already indexed" id);
  Hashtbl.add idx.ids id tuple;
  List.iter
    (fun entry ->
      let lhs, rhs = project idx entry tuple in
      let group = Option.value (Tmap.find_opt lhs entry.groups) ~default:Tmap.empty in
      let ids = Option.value (Tmap.find_opt rhs group) ~default:Iset.empty in
      entry.groups <- Tmap.add lhs (Tmap.add rhs (Iset.add id ids) group) entry.groups)
    idx.entries

let remove idx id tuple =
  (match Hashtbl.find_opt idx.ids id with
  | Some t when Tuple.equal t tuple -> Hashtbl.remove idx.ids id
  | _ -> invalid_arg "Fd_index.remove: id/tuple not indexed");
  List.iter
    (fun entry ->
      let lhs, rhs = project idx entry tuple in
      match Tmap.find_opt lhs entry.groups with
      | None -> ()
      | Some group ->
        let ids = Option.value (Tmap.find_opt rhs group) ~default:Iset.empty in
        let ids = Iset.remove id ids in
        let group =
          if Iset.is_empty ids then Tmap.remove rhs group
          else Tmap.add rhs ids group
        in
        entry.groups <-
          (if Tmap.is_empty group then Tmap.remove lhs entry.groups
           else Tmap.add lhs group entry.groups))
    idx.entries

let build d tbl =
  let idx = create d (Table.schema tbl) in
  Table.iter (fun i t _ -> add idx i t) tbl;
  idx

let conflicts idx tuple =
  List.fold_left
    (fun acc entry ->
      let lhs, rhs = project idx entry tuple in
      match Tmap.find_opt lhs entry.groups with
      | None -> acc
      | Some group ->
        Tmap.fold
          (fun rhs' ids acc ->
            if Tuple.equal rhs rhs' then acc else Iset.union ids acc)
          group acc)
    Iset.empty idx.entries
  |> Iset.elements

let compatible idx tuple =
  List.for_all
    (fun entry ->
      let lhs, rhs = project idx entry tuple in
      match Tmap.find_opt lhs entry.groups with
      | None -> true
      | Some group ->
        (* consistent iff the group holds no other rhs projection *)
        Tmap.for_all (fun rhs' _ -> Tuple.equal rhs rhs') group)
    idx.entries

let size idx = Hashtbl.length idx.ids

let is_consistent idx =
  List.for_all
    (fun entry -> Tmap.for_all (fun _ group -> Tmap.cardinal group <= 1) entry.groups)
    idx.entries
