(** Armstrong relations: tables that satisfy {e exactly} the closure of a
    given FD set — an FD holds in the table iff Δ entails it.

    Classic FD-toolkit functionality (Fagin 1982), and a powerful testing
    device: the table is a concrete witness separating entailed from
    non-entailed FDs, used by our property suite to cross-validate
    {!Fd_set.closure_of} against {!Fd_set.satisfied_by}. *)

open Repair_relational

(** [closed_sets d schema] is every [X ⊆ attrs] with [cl_Δ(X) ∩ attrs = X]
    (exponential in arity; data-complexity regime). *)
val closed_sets : Fd_set.t -> Schema.t -> Attr_set.t list

(** [relation d schema] builds an Armstrong relation for Δ over the
    schema: a base tuple of zeros plus, for every proper closed set [C],
    a tuple agreeing with the base exactly on [C]. Pairwise agreement
    sets are then exactly the closed sets, so

    [Fd_set.satisfied_by d' (relation d schema)] iff [Fd_set.entails d d']

    for every FD over the schema. *)
val relation : Fd_set.t -> Schema.t -> Table.t
