(** Covers of FD sets: equivalence-preserving normal forms.

    Not used by the paper's algorithms directly, but a standard part of any
    FD toolkit and convenient for presenting equivalent FD sets compactly
    (the paper freely switches between equivalent sets, e.g. when splitting
    right-hand sides). *)

open Repair_relational

(** [minimal d] is a minimal cover of [d]: every rhs is a singleton, no lhs
    contains an extraneous attribute, and no FD is redundant. The result is
    equivalent to [d]. *)
val minimal : Fd_set.t -> Fd_set.t

(** [canonical d] is [minimal d] with right-hand sides of equal lhs merged
    back together, sorted canonically; two equivalent FD sets over the same
    attributes need not have equal canonical covers in general, but the
    form is deterministic for a given input. *)
val canonical : Fd_set.t -> Fd_set.t

(** [remove_extraneous_lhs d fd] shrinks the lhs of [fd] as long as
    equivalence with [d] is preserved (assumes [fd ∈ d]). *)
val remove_extraneous_lhs : Fd_set.t -> Fd.t -> Fd.t

(** [is_redundant d fd] holds iff [d ∖ {fd} ⊧ fd]. *)
val is_redundant : Fd_set.t -> Fd.t -> bool

(** [keys d ~attrs] is the list of minimal keys of a relation with
    attribute set [attrs] under [d]: minimal [X ⊆ attrs] with
    [cl_Δ(X) ⊇ attrs]. *)
val keys : Fd_set.t -> attrs:Attr_set.t -> Attr_set.t list
