open Repair_relational

type t = Fd.t list

let of_list fds =
  let rec dedup seen = function
    | [] -> []
    | fd :: rest ->
      if List.exists (Fd.equal fd) seen then dedup seen rest
      else fd :: dedup (fd :: seen) rest
  in
  dedup [] fds

let empty = []

let parse s =
  String.split_on_char ';' s
  |> List.map String.trim
  |> List.filter (fun part -> part <> "")
  |> List.map Fd.parse
  |> of_list

let to_list d = d
let add fd d = of_list (d @ [ fd ])
let union d1 d2 = of_list (d1 @ d2)
let size = List.length
let is_empty d = d = []
let mem fd d = List.exists (Fd.equal fd) d
let filter = List.filter
let map f d = of_list (List.map f d)

let equal_syntactic d1 d2 =
  List.length d1 = List.length d2
  && List.for_all (fun fd -> mem fd d2) d1
  && List.for_all (fun fd -> mem fd d1) d2

let attrs d =
  List.fold_left (fun acc fd -> Attr_set.union acc (Fd.attrs fd)) Attr_set.empty d

let closure_of d x =
  (* Standard fixpoint computation of cl_Δ(X). *)
  let rec loop acc =
    let acc' =
      List.fold_left
        (fun acc fd ->
          if Attr_set.subset (Fd.lhs fd) acc then Attr_set.union acc (Fd.rhs fd)
          else acc)
        acc d
    in
    if Attr_set.equal acc acc' then acc else loop acc'
  in
  loop x

let entails d fd = Attr_set.subset (Fd.rhs fd) (closure_of d (Fd.lhs fd))

let equivalent d1 d2 =
  List.for_all (entails d1) d2 && List.for_all (entails d2) d1

let consensus_attrs d = closure_of d Attr_set.empty
let is_consensus_free d = Attr_set.is_empty (consensus_attrs d)
let is_trivial d = List.for_all Fd.is_trivial d
let remove_trivial d = List.filter (fun fd -> not (Fd.is_trivial fd)) d

let normalize d =
  of_list (List.concat_map Fd.split d) |> remove_trivial

let minus d x = of_list (List.map (fun fd -> Fd.minus fd x) d)

let common_lhs d =
  match d with
  | [] -> None
  | fd :: rest ->
    let shared =
      List.fold_left (fun acc fd' -> Attr_set.inter acc (Fd.lhs fd'))
        (Fd.lhs fd) rest
    in
    Attr_set.choose_opt shared

let consensus_fd d =
  List.find_opt
    (fun fd -> Fd.is_consensus fd && not (Attr_set.is_empty (Fd.rhs fd)))
    d

let lhss d =
  List.map Fd.lhs d
  |> List.sort_uniq Attr_set.compare

let lhs_marriage d =
  let sides = lhss d in
  let covers x1 x2 =
    List.for_all
      (fun fd ->
        Attr_set.subset x1 (Fd.lhs fd) || Attr_set.subset x2 (Fd.lhs fd))
      d
  in
  let rec pairs = function
    | [] -> None
    | x1 :: rest -> (
      let hit =
        List.find_opt
          (fun x2 ->
            Attr_set.equal (closure_of d x1) (closure_of d x2) && covers x1 x2)
          rest
      in
      match hit with Some x2 -> Some (x1, x2) | None -> pairs rest)
  in
  pairs sides

let is_chain d =
  let sides = lhss d in
  List.for_all
    (fun x1 ->
      List.for_all
        (fun x2 -> Attr_set.subset x1 x2 || Attr_set.subset x2 x1)
        sides)
    sides

let local_minima d =
  let sides = lhss d in
  List.filter
    (fun x -> not (List.exists (fun z -> Attr_set.strict_subset z x) sides))
    sides

let is_unary d = List.for_all Fd.is_unary d

let components d =
  (* Union-find-free small-scale merge: grow components greedily. *)
  let joins fd comp_attrs = not (Attr_set.disjoint (Fd.attrs fd) comp_attrs) in
  let place (comps : (Attr_set.t * Fd.t list) list) fd =
    let touching, apart =
      List.partition (fun (attrs, _) -> joins fd attrs) comps
    in
    let merged_attrs =
      List.fold_left
        (fun acc (attrs, _) -> Attr_set.union acc attrs)
        (Fd.attrs fd) touching
    in
    let merged_fds = fd :: List.concat_map snd touching in
    (merged_attrs, merged_fds) :: apart
  in
  List.fold_left place [] d
  |> List.rev_map (fun (_, fds) -> of_list (List.rev fds))

let pair_consistent d schema t1 t2 =
  List.for_all (Fd.holds_on schema t1 t2) d

let violations d tbl =
  let schema = Table.schema tbl in
  let rows = List.map (fun i -> (i, Table.tuple tbl i)) (Table.ids tbl) in
  let rec per_first acc = function
    | [] -> acc
    | (i, ti) :: rest ->
      let acc =
        List.fold_left
          (fun acc (j, tj) ->
            List.fold_left
              (fun acc fd ->
                if Fd.holds_on schema ti tj fd then acc else (i, j, fd) :: acc)
              acc d)
          acc rest
      in
      per_first acc rest
  in
  List.rev (per_first [] rows)

(* Satisfaction is checked FD by FD, grouping on the lhs projection: a
   table satisfies X → Y iff within every lhs group all rhs projections are
   equal. This is O(|T| log |T|) per FD rather than O(|T|²). *)
let satisfied_by d tbl =
  let schema = Table.schema tbl in
  let fd_ok fd =
    let groups = Table.group_by tbl (Fd.lhs fd) in
    List.for_all
      (fun (_, sub) ->
        match Table.tuples sub with
        | [] -> true
        | first :: rest ->
          let key = Tuple.project schema first (Fd.rhs fd) in
          List.for_all
            (fun t -> Tuple.equal (Tuple.project schema t (Fd.rhs fd)) key)
            rest)
      groups
  in
  List.for_all fd_ok d

let pp ppf d =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") Fd.pp) d

let to_string d = Fmt.str "%a" pp d
