open Repair_relational

type fragment = { attrs : Attr_set.t; fds : Fd_set.t }

let project d ~onto =
  (* Entailed FDs within [onto]: for each X ⊆ onto, X → (cl(X) ∩ onto).
     Reduced to a minimal cover for readability. *)
  let fds =
    Attr_set.subsets onto
    |> List.filter_map (fun x ->
           let rhs = Attr_set.diff (Attr_set.inter (Fd_set.closure_of d x) onto) x in
           if Attr_set.is_empty rhs then None else Some (Fd.make x rhs))
  in
  Cover.minimal (Fd_set.of_list fds)

let is_superkey d ~attrs x = Attr_set.subset attrs (Fd_set.closure_of d x)

let prime_attrs d ~attrs =
  Cover.keys d ~attrs
  |> List.fold_left Attr_set.union Attr_set.empty

let violating_fd d ~attrs =
  Fd_set.to_list (Fd_set.normalize d)
  |> List.find_opt (fun fd ->
         (not (Fd.is_trivial fd)) && not (is_superkey d ~attrs (Fd.lhs fd)))

let is_bcnf d ~attrs =
  (* It suffices to check the FDs of (a cover of) the projection. *)
  violating_fd (project d ~onto:attrs) ~attrs = None

let is_3nf d ~attrs =
  let proj = project d ~onto:attrs in
  let prime = prime_attrs proj ~attrs in
  Fd_set.to_list (Fd_set.normalize proj)
  |> List.for_all (fun fd ->
         Fd.is_trivial fd
         || is_superkey proj ~attrs (Fd.lhs fd)
         || Attr_set.subset (Fd.rhs fd) prime)

let bcnf_decompose d ~attrs =
  let rec split attrs =
    let proj = project d ~onto:attrs in
    match violating_fd proj ~attrs with
    | None -> [ { attrs; fds = proj } ]
    | Some fd ->
      let x = Fd.lhs fd in
      let clx = Attr_set.inter (Fd_set.closure_of proj x) attrs in
      let left = clx in
      let right = Attr_set.union x (Attr_set.diff attrs clx) in
      split left @ split right
  in
  split attrs

let synthesize_3nf d ~attrs =
  let cover = Cover.canonical d in
  let fragments =
    Fd_set.to_list cover
    |> List.map (fun fd -> Fd.attrs fd)
    (* drop fragments contained in others *)
    |> fun sets ->
    List.filter
      (fun s ->
        not
          (List.exists
             (fun s' -> Attr_set.strict_subset s s')
             sets))
      sets
    |> List.sort_uniq Attr_set.compare
  in
  let fragments =
    (* Add a key fragment when no fragment contains a key of [attrs]. *)
    let keys = Cover.keys d ~attrs in
    let contains_key s = List.exists (fun k -> Attr_set.subset k s) keys in
    if List.exists contains_key fragments then fragments
    else
      (match keys with
      | [] -> fragments
      | k :: _ -> k :: fragments)
  in
  (* Attributes in no FD must still be stored somewhere: attach them as a
     fragment with the key (standard completeness fix). *)
  let covered = List.fold_left Attr_set.union Attr_set.empty fragments in
  let loose = Attr_set.diff attrs covered in
  let fragments =
    if Attr_set.is_empty loose then fragments
    else
      match Cover.keys d ~attrs with
      | k :: _ -> Attr_set.union k loose :: fragments
      | [] -> loose :: fragments
  in
  List.map (fun s -> { attrs = s; fds = project d ~onto:s }) fragments

let decompose_table schema tbl fragment_attrs =
  let names =
    Schema.indices_of schema fragment_attrs
    |> List.map (Schema.attribute_at schema)
  in
  let sub_schema = Schema.make (Schema.name schema ^ "_frag") names in
  let distinct = Table.project_distinct tbl fragment_attrs in
  (sub_schema, Table.of_tuples sub_schema distinct)

let pp_fragment ppf f =
  Fmt.pf ppf "R(%a) with %a" Attr_set.pp f.attrs Fd_set.pp f.fds
