(** Left-hand-side analysis: the quantities governing the U-repair
    approximation ratios of Section 4.

    - [mlc(Δ)] — minimum cardinality of an {e lhs cover}, a set of
      attributes hitting every FD's lhs (Section 4). Our Theorem 4.12
      ratio is [2·mlc(Δ)].
    - [MFS(Δ)] — maximum lhs size, and [MCI(Δ)] — largest minimum core
      implicant, the two measures of Kolahi and Lakshmanan whose ratio is
      [(MCI + 2)(2·MFS − 1)] (Theorem 4.13). *)

open Repair_relational

(** [lhs_cover d] is a minimum-cardinality lhs cover of [d].

    @raise Invalid_argument if [d] contains a (nontrivial) consensus FD —
    an empty lhs cannot be hit — or is empty. *)
val lhs_cover : Fd_set.t -> Attr_set.t

(** [mlc d] is the cardinality of a minimum lhs cover. *)
val mlc : Fd_set.t -> int

(** [mfs d] is [MFS(Δ)]: the maximum number of attributes in any lhs
    (after normalization to singleton right-hand sides). 0 for trivial
    sets. *)
val mfs : Fd_set.t -> int

(** [implicants d a] is the list of {e minimal} implicants of attribute
    [a]: minimal sets [X] with [a ∈ cl_Δ(X)] and [a ∉ X], restricted to
    [X ⊆ attr(Δ)]. *)
val implicants : Fd_set.t -> Attr_set.attribute -> Attr_set.t list

(** [min_core_implicant d a] is a minimum-cardinality core implicant of
    [a]: a smallest attribute set hitting every implicant of [a]. The
    empty set when [a] has no implicant. *)
val min_core_implicant : Fd_set.t -> Attr_set.attribute -> Attr_set.t

(** [mci d] is [MCI(Δ)]: the size of the largest minimum core implicant
    over all attributes of [attr(Δ)]. *)
val mci : Fd_set.t -> int

(** [kl_ratio d] is the Kolahi–Lakshmanan approximation ratio
    [(MCI(Δ) + 2)·(2·MFS(Δ) − 1)] (Theorem 4.13). *)
val kl_ratio : Fd_set.t -> int

(** [our_ratio d] is the Theorem 4.12 ratio [2·mlc(Δ)], refined by
    Theorem 4.1: the maximum of [2·mlc] over the attribute-disjoint
    connected components of [d] (consensus attributes removed first, per
    Theorem 4.3). Returns 1 for trivial sets. *)
val our_ratio : Fd_set.t -> int
