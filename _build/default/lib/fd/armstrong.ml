open Repair_relational

let closed_sets d schema =
  let attrs = Schema.attribute_set schema in
  Attr_set.subsets attrs
  |> List.filter (fun x ->
         Attr_set.equal x (Attr_set.inter (Fd_set.closure_of d x) attrs))

let relation d schema =
  let attrs = Schema.attribute_set schema in
  let base = Tuple.make (List.map (fun _ -> Value.int 0) (Schema.attributes schema)) in
  let proper_closed =
    closed_sets d schema |> List.filter (fun c -> not (Attr_set.equal c attrs))
  in
  (* Tuple for closed set C: 0 on C, a value unique to C elsewhere. Two
     such tuples agree exactly on the intersection of their closed sets,
     which is again closed. *)
  let tuples =
    base
    :: List.mapi
         (fun i c ->
           Tuple.make
             (List.map
                (fun a ->
                  if Attr_set.mem a c then Value.int 0 else Value.int (i + 1))
                (Schema.attributes schema)))
         proper_closed
  in
  Table.of_tuples schema tuples
