(** Schema normalization: BCNF decomposition and 3NF synthesis.

    Not part of the paper's results, but the natural companion toolkit: a
    schema in BCNF admits no FD violations beyond key violations, i.e.
    normalization is the {e schema-level} counterpart of repairing. *)

open Repair_relational

(** A decomposed fragment: its attributes and the projection of Δ onto
    them. *)
type fragment = { attrs : Attr_set.t; fds : Fd_set.t }

(** [project d ~onto] is the projection of Δ onto an attribute set: all
    entailed FDs X → A with X ∪ {A} ⊆ onto, given as a minimal cover
    (exponential in |onto|, fine for fixed schemas). *)
val project : Fd_set.t -> onto:Attr_set.t -> Fd_set.t

(** [is_bcnf d ~attrs] — every nontrivial entailed FD over [attrs] has a
    super-key lhs. *)
val is_bcnf : Fd_set.t -> attrs:Attr_set.t -> bool

(** [is_3nf d ~attrs] — every nontrivial entailed FD has a super-key lhs
    or a prime rhs attribute (member of some key). *)
val is_3nf : Fd_set.t -> attrs:Attr_set.t -> bool

(** [bcnf_decompose d ~attrs] is the classic BCNF decomposition: split on
    a violating FD [X → Y] into [cl(X) ∩ attrs] and [X ∪ (attrs ∖ cl(X))]
    until every fragment is in BCNF. Lossless-join by construction; may
    lose dependencies. *)
val bcnf_decompose : Fd_set.t -> attrs:Attr_set.t -> fragment list

(** [synthesize_3nf d ~attrs] is the 3NF synthesis algorithm over a
    minimal cover: one fragment per lhs group, plus a key fragment if no
    fragment contains a key. Lossless and dependency-preserving. *)
val synthesize_3nf : Fd_set.t -> attrs:Attr_set.t -> fragment list

(** [decompose_table schema tbl fragment_attrs] projects a table onto a
    fragment (removing duplicate projections and re-numbering ids 1..n,
    unit weights). *)
val decompose_table : Schema.t -> Table.t -> Attr_set.t -> Schema.t * Table.t

val pp_fragment : Format.formatter -> fragment -> unit
