open Repair_relational

(* Minimum hitting set of a family of attribute sets, by depth-first search
   branching on the attributes of a smallest unhit set. The families here
   (FD left-hand sides, minimal implicants) are tiny under data complexity,
   so exhaustive search with a best-so-far bound is appropriate. *)
let min_hitting_set (family : Attr_set.t list) : Attr_set.t =
  let best = ref None in
  let best_size () =
    match !best with None -> max_int | Some b -> Attr_set.cardinal b
  in
  let rec go chosen remaining =
    if Attr_set.cardinal chosen >= best_size () then ()
    else
      match
        List.filter (fun x -> Attr_set.disjoint x chosen) remaining
        |> List.sort (fun x y ->
               Stdlib.compare (Attr_set.cardinal x) (Attr_set.cardinal y))
      with
      | [] -> best := Some chosen
      | unhit :: _ as left ->
        Attr_set.iter (fun a -> go (Attr_set.add a chosen) left) unhit
  in
  go Attr_set.empty family;
  match !best with
  | Some b -> b
  | None ->
    (* Only possible when some set in the family is empty. *)
    invalid_arg "min_hitting_set: family contains the empty set"

let lhs_cover d =
  let fds = Fd_set.remove_trivial d in
  if Fd_set.is_empty fds then
    invalid_arg "Lhs_analysis.lhs_cover: trivial FD set";
  let sides = List.map Fd.lhs (Fd_set.to_list fds) in
  if List.exists Attr_set.is_empty sides then
    invalid_arg "Lhs_analysis.lhs_cover: consensus FD has no lhs cover";
  min_hitting_set sides

let mlc d = Attr_set.cardinal (lhs_cover d)

let mfs d =
  Fd_set.normalize d |> Fd_set.to_list
  |> List.fold_left (fun acc fd -> max acc (Attr_set.cardinal (Fd.lhs fd))) 0

let implicants d a =
  let universe = Attr_set.remove a (Fd_set.attrs d) in
  let is_implicant x = Attr_set.mem a (Fd_set.closure_of d x) in
  let by_size =
    Attr_set.subsets universe
    |> List.sort (fun x y ->
           Stdlib.compare (Attr_set.cardinal x) (Attr_set.cardinal y))
  in
  List.fold_left
    (fun minimal x ->
      if
        is_implicant x
        && not (List.exists (fun m -> Attr_set.subset m x) minimal)
      then x :: minimal
      else minimal)
    [] by_size
  |> List.rev

(* A set C is a core implicant of a iff the complement D of C (within
   attr(Δ) ∖ {a}) derives nothing about a: a ∉ cl_Δ(D). So a minimum core
   implicant corresponds to a maximum D with a ∉ cl_Δ(D); we search for it
   directly, pruning on the monotonicity of the closure. *)
let min_core_implicant d a =
  let universe = Attr_set.elements (Attr_set.remove a (Fd_set.attrs d)) in
  let safe x = not (Attr_set.mem a (Fd_set.closure_of d x)) in
  let best = ref Attr_set.empty in
  (* [go kept pending i] explores choices for universe.(i..); [kept] is the
     current D, [pending] the attributes not yet decided. *)
  let rec go kept pending =
    if Attr_set.cardinal kept + List.length pending <= Attr_set.cardinal !best
    then ()
    else
      match pending with
      | [] -> if Attr_set.cardinal kept > Attr_set.cardinal !best then best := kept
      | attr :: rest ->
        let with_attr = Attr_set.add attr kept in
        if safe with_attr then go with_attr rest;
        go kept rest
  in
  if not (safe Attr_set.empty) then
    (* a is a consensus attribute: even the empty D derives a, so every
       implicant includes the empty set and no core implicant exists; the
       hitting set of a family containing ∅ is undefined. We return the
       whole universe as a conservative answer only when it works. *)
    invalid_arg "Lhs_analysis.min_core_implicant: consensus attribute"
  else begin
    go Attr_set.empty universe;
    let d_max = !best in
    Attr_set.diff (Attr_set.of_list universe) d_max
  end

let mci d =
  let d = Fd_set.normalize d in
  if Fd_set.is_empty d then 0
  else
    Fd_set.attrs d |> Attr_set.elements
    |> List.filter (fun a ->
           not (Attr_set.mem a (Fd_set.consensus_attrs d)))
    |> List.fold_left
         (fun acc a -> max acc (Attr_set.cardinal (min_core_implicant d a)))
         0

let kl_ratio d =
  let d = Fd_set.normalize d in
  if Fd_set.is_empty d then 1 else (mci d + 2) * ((2 * mfs d) - 1)

let our_ratio d =
  let d = Fd_set.normalize d in
  let without_consensus =
    Fd_set.remove_trivial (Fd_set.minus d (Fd_set.consensus_attrs d))
  in
  if Fd_set.is_empty without_consensus then 1
  else
    Fd_set.components without_consensus
    |> List.filter (fun c -> not (Fd_set.is_trivial c))
    |> List.fold_left (fun acc c -> max acc (2 * mlc c)) 1
