(** Sets of functional dependencies (Section 2.2) and the structural
    primitives used by the paper's algorithms:

    - {!closure_of} — attribute-set closure [cl_Δ(X)];
    - {!minus} — [Δ − X], removing attributes from all sides;
    - {!common_lhs} — a common left-hand-side attribute;
    - {!consensus_fd} / {!consensus_attrs} — consensus FDs [∅ → Y] and the
      consensus attributes [cl_Δ(∅)];
    - {!lhs_marriage} — an lhs marriage [(X1, X2)] (Section 3);
    - {!is_chain} — chain FD sets (lhs's totally ordered by inclusion);
    - {!local_minima} — FDs with set-minimal lhs (Section 3.3). *)

open Repair_relational

type t

(** {1 Construction} *)

(** [of_list fds] builds an FD set, de-duplicating syntactically equal
    FDs. The order of first occurrence is preserved (it matters for
    human-readable simplification traces). *)
val of_list : Fd.t list -> t

val empty : t

(** [parse s] parses a semicolon-separated list of FDs, e.g.
    ["A B -> C; C -> A"]. An empty/blank string is the empty set. *)
val parse : string -> t

val to_list : t -> Fd.t list
val add : Fd.t -> t -> t
val union : t -> t -> t
val size : t -> int
val is_empty : t -> bool
val mem : Fd.t -> t -> bool
val filter : (Fd.t -> bool) -> t -> t
val map : (Fd.t -> Fd.t) -> t -> t

(** [equal_syntactic d1 d2] compares as sets of syntactic FDs (not logical
    equivalence; see {!equivalent}). *)
val equal_syntactic : t -> t -> bool

(** {1 Attributes} *)

(** [attrs d] is [attr(Δ)]: every attribute on any side of any FD. *)
val attrs : t -> Attr_set.t

(** {1 Logical reasoning} *)

(** [closure_of d x] is [cl_Δ(X)]. *)
val closure_of : t -> Attr_set.t -> Attr_set.t

(** [entails d fd] is [Δ ⊧ fd]. *)
val entails : t -> Fd.t -> bool

(** [equivalent d1 d2] holds iff the sets have the same closure. *)
val equivalent : t -> t -> bool

(** [consensus_attrs d] is [cl_Δ(∅)], the consensus attributes. *)
val consensus_attrs : t -> Attr_set.t

val is_consensus_free : t -> bool

(** {1 Structure} *)

(** [is_trivial d] holds iff [d] contains no nontrivial FD. *)
val is_trivial : t -> bool

val remove_trivial : t -> t

(** [normalize d] splits right-hand sides into singletons and removes
    trivial FDs (the convention of Section 3). *)
val normalize : t -> t

(** [minus d x] is [Δ − X]. FDs that become trivial are kept (callers
    remove them explicitly, as Algorithm 1 does). *)
val minus : t -> Attr_set.t -> t

(** [common_lhs d] is an attribute occurring in the lhs of {e every} FD, if
    any (smallest lexicographically for determinism). [None] when [d] is
    empty. *)
val common_lhs : t -> Attr_set.attribute option

(** [consensus_fd d] is a syntactic consensus FD [∅ → Y] of [d] with
    [Y ≠ ∅], if any. *)
val consensus_fd : t -> Fd.t option

(** [lhs_marriage d] is an lhs marriage: a pair [(X1, X2)] of distinct FD
    left-hand sides with [cl_Δ(X1) = cl_Δ(X2)] such that every FD's lhs
    contains [X1] or [X2]. *)
val lhs_marriage : t -> (Attr_set.t * Attr_set.t) option

(** [is_chain d] holds iff lhs's are totally ordered by inclusion. *)
val is_chain : t -> bool

(** [lhss d] is the list of distinct left-hand sides. *)
val lhss : t -> Attr_set.t list

(** [local_minima d] is the list of distinct set-minimal left-hand sides
    (the "local minima" of Section 3.3). *)
val local_minima : t -> Attr_set.t list

(** [is_unary d] holds iff every FD has a singleton lhs. *)
val is_unary : t -> bool

(** [components d] partitions [d] into maximal attribute-disjoint
    sub-sets: two FDs belong to the same component iff they are linked by a
    chain of FDs sharing attributes. Theorem 4.1 allows solving each
    component independently. Trivial FDs over the empty attribute set form
    their own (irrelevant) component. *)
val components : t -> t list

(** {1 Satisfaction (Section 2.2)} *)

(** [satisfied_by d tbl] is [T ⊧ Δ]. *)
val satisfied_by : t -> Table.t -> bool

(** [violations d tbl] lists all [(i, j, fd)] with [i < j] such that tuples
    [T[i]], [T[j]] jointly violate [fd]. *)
val violations : t -> Table.t -> (Table.id * Table.id * Fd.t) list

(** [pair_consistent d schema t1 t2] holds iff [{t1, t2}] satisfies [d]. *)
val pair_consistent : t -> Schema.t -> Tuple.t -> Tuple.t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
