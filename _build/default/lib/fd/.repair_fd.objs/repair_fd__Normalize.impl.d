lib/fd/normalize.ml: Attr_set Cover Fd Fd_set Fmt List Repair_relational Schema Table
