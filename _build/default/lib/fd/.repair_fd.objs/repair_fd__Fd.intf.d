lib/fd/fd.mli: Attr_set Format Repair_relational Schema Tuple
