lib/fd/armstrong.ml: Attr_set Fd_set List Repair_relational Schema Table Tuple Value
