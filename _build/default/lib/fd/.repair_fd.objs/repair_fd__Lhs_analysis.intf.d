lib/fd/lhs_analysis.mli: Attr_set Fd_set Repair_relational
