lib/fd/fd_set.mli: Attr_set Fd Format Repair_relational Schema Table Tuple
