lib/fd/cover.ml: Attr_set Fd Fd_set List Repair_relational
