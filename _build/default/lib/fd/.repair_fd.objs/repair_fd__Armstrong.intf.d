lib/fd/armstrong.mli: Attr_set Fd_set Repair_relational Schema Table
