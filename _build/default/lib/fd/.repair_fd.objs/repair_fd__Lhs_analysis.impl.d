lib/fd/lhs_analysis.ml: Attr_set Fd Fd_set List Repair_relational Stdlib
