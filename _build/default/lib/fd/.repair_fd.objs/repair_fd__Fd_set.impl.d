lib/fd/fd_set.ml: Attr_set Fd Fmt List Repair_relational String Table Tuple
