lib/fd/fd.ml: Attr_set Buffer Char Fmt List Printf Repair_relational String Tuple
