lib/fd/cover.mli: Attr_set Fd Fd_set Repair_relational
