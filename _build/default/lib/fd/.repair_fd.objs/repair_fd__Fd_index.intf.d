lib/fd/fd_index.mli: Fd_set Repair_relational Schema Table Tuple
