lib/fd/fd_index.ml: Fd Fd_set Hashtbl Int List Map Option Printf Repair_relational Schema Set Table Tuple
