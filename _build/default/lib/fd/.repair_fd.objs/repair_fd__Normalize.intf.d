lib/fd/normalize.mli: Attr_set Fd_set Format Repair_relational Schema Table
