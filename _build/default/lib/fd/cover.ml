open Repair_relational

let remove_extraneous_lhs d fd =
  (* An lhs attribute a is extraneous in X → Y if (X ∖ a) → Y is already
     entailed; removing it preserves the closure. *)
  let rec shrink fd =
    let candidate =
      Attr_set.fold
        (fun a found ->
          match found with
          | Some _ -> found
          | None ->
            let smaller = Fd.make (Attr_set.remove a (Fd.lhs fd)) (Fd.rhs fd) in
            if Fd_set.entails d smaller then Some smaller else None)
        (Fd.lhs fd) None
    in
    match candidate with Some fd' -> shrink fd' | None -> fd
  in
  shrink fd

let is_redundant d fd =
  let rest = Fd_set.filter (fun fd' -> not (Fd.equal fd fd')) d in
  Fd_set.entails rest fd

let minimal d =
  let split = Fd_set.normalize d in
  let shrunk = Fd_set.map (remove_extraneous_lhs split) split in
  (* Drop redundant FDs one at a time; each removal preserves equivalence. *)
  List.fold_left
    (fun acc fd ->
      if is_redundant acc fd then
        Fd_set.filter (fun fd' -> not (Fd.equal fd fd')) acc
      else acc)
    shrunk (Fd_set.to_list shrunk)

let canonical d =
  let m = Fd_set.to_list (minimal d) in
  let merged =
    List.fold_left
      (fun acc fd ->
        let same, other =
          List.partition (fun fd' -> Attr_set.equal (Fd.lhs fd) (Fd.lhs fd')) acc
        in
        match same with
        | [] -> fd :: other
        | fd' :: _ ->
          Fd.make (Fd.lhs fd) (Attr_set.union (Fd.rhs fd) (Fd.rhs fd')) :: other)
      [] m
  in
  Fd_set.of_list (List.sort Fd.compare merged)

let keys d ~attrs =
  let all = Attr_set.subsets attrs in
  let is_key x = Attr_set.subset attrs (Fd_set.closure_of d x) in
  let key_sets = List.filter is_key all in
  List.filter
    (fun x ->
      not (List.exists (fun z -> Attr_set.strict_subset z x) key_sets))
    key_sets
  |> List.sort Attr_set.compare
