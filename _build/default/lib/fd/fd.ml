open Repair_relational

type t = { lhs : Attr_set.t; rhs : Attr_set.t }

let make lhs rhs = { lhs; rhs }
let of_lists xs ys = make (Attr_set.of_list xs) (Attr_set.of_list ys)
let lhs fd = fd.lhs
let rhs fd = fd.rhs
let is_trivial fd = Attr_set.subset fd.rhs fd.lhs
let is_consensus fd = Attr_set.is_empty fd.lhs
let is_unary fd = Attr_set.cardinal fd.lhs = 1
let attrs fd = Attr_set.union fd.lhs fd.rhs

let split fd =
  Attr_set.fold (fun a acc -> make fd.lhs (Attr_set.singleton a) :: acc) fd.rhs []
  |> List.rev

let minus fd x =
  make (Attr_set.diff fd.lhs x) (Attr_set.diff fd.rhs x)

let holds_on schema t1 t2 fd =
  (not (Tuple.agree_on schema t1 t2 fd.lhs))
  || Tuple.agree_on schema t1 t2 fd.rhs

let compare fd1 fd2 =
  let c = Attr_set.compare fd1.lhs fd2.lhs in
  if c <> 0 then c else Attr_set.compare fd1.rhs fd2.rhs

let equal fd1 fd2 = compare fd1 fd2 = 0

let parse_side s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char ',')
  |> List.map String.trim
  |> List.filter (fun tok -> tok <> "" && tok <> "∅")
  |> Attr_set.of_list

(* Accept both "->" and the UTF-8 arrow "→". *)
let arrowized s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && s.[!i] = '-' && s.[!i + 1] = '>' then begin
      Buffer.add_char b '\x01';
      i := !i + 2
    end
    else if
      !i + 2 < n
      && Char.code s.[!i] = 0xE2
      && Char.code s.[!i + 1] = 0x86
      && Char.code s.[!i + 2] = 0x92
    then begin
      Buffer.add_char b '\x01';
      i := !i + 3
    end
    else begin
      Buffer.add_char b s.[!i];
      incr i
    end
  done;
  Buffer.contents b

let parse s =
  match String.split_on_char '\x01' (arrowized s) with
  | [ l; r ] ->
    let rhs = parse_side r in
    if Attr_set.is_empty rhs then
      failwith (Printf.sprintf "Fd.parse: empty right-hand side in %S" s);
    make (parse_side l) rhs
  | _ -> failwith (Printf.sprintf "Fd.parse: expected one arrow in %S" s)

let pp ppf fd = Fmt.pf ppf "%a → %a" Attr_set.pp fd.lhs Attr_set.pp fd.rhs
let to_string fd = Fmt.str "%a" pp fd
