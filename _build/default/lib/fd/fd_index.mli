(** Incremental FD consistency index.

    A hash index per FD, keyed by the lhs projection and mapping to the
    rhs projections present (with the supporting tuple ids). It answers
    "which tuples would this candidate conflict with?" in expected O(|Δ|)
    time instead of scanning the table, and supports insertion and
    deletion — the building block a production cleaner uses for
    tuple-at-a-time maintenance (e.g. extending a consistent subset to a
    maximal one, or validating a stream of inserts). *)

open Repair_relational

type t

(** [create d schema] is an empty index for the (normalized) FD set. *)
val create : Fd_set.t -> Schema.t -> t

(** [build d tbl] indexes every tuple of [tbl]. *)
val build : Fd_set.t -> Table.t -> t

(** [add idx id tuple] indexes a tuple (its consistency is {e not}
    checked — indices may deliberately hold inconsistent data).

    @raise Invalid_argument if [id] is already indexed. *)
val add : t -> Table.id -> Tuple.t -> unit

(** [remove idx id tuple] un-indexes a tuple.

    @raise Invalid_argument if [id] is not indexed with this tuple. *)
val remove : t -> Table.id -> Tuple.t -> unit

(** [conflicts idx tuple] — ids of indexed tuples that agree with [tuple]
    on some FD's lhs but disagree on its rhs (deduplicated, sorted). *)
val conflicts : t -> Tuple.t -> Table.id list

(** [compatible idx tuple] is [conflicts idx tuple = []], computed with
    early exit. *)
val compatible : t -> Tuple.t -> bool

(** [size idx] — number of indexed tuples. *)
val size : t -> int

(** [is_consistent idx] — no indexed pair violates any FD. *)
val is_consistent : t -> bool
