(** Functional dependencies [X → Y] over a relation schema (Section 2.2).

    Sides are attribute sets. An FD with an empty left-hand side is a
    {e consensus} FD [∅ → Y]. *)

open Repair_relational

type t = private { lhs : Attr_set.t; rhs : Attr_set.t }

(** [make lhs rhs] builds the FD [lhs → rhs]. *)
val make : Attr_set.t -> Attr_set.t -> t

(** [of_lists xs ys] is [make (of_list xs) (of_list ys)]. *)
val of_lists : string list -> string list -> t

val lhs : t -> Attr_set.t
val rhs : t -> Attr_set.t

(** [is_trivial fd] holds iff [rhs ⊆ lhs]. *)
val is_trivial : t -> bool

(** [is_consensus fd] holds iff the lhs is empty. *)
val is_consensus : t -> bool

(** [is_unary fd] holds iff the lhs is a single attribute. *)
val is_unary : t -> bool

(** Attributes appearing on either side. *)
val attrs : t -> Attr_set.t

(** [split fd] rewrites [X → A1...An] into [[X → A1; ...; X → An]],
    preserving equivalence (the convention of Section 3). Trivial
    right-hand-side attributes are kept. *)
val split : t -> t list

(** [minus fd x] removes the attributes of [x] from both sides
    (the paper's [Δ − X] applied to one FD). *)
val minus : t -> Attr_set.t -> t

(** [holds_on schema t1 t2 fd] holds iff the pair [{t1, t2}] satisfies
    [fd]: if they agree on the lhs they also agree on the rhs. *)
val holds_on : Schema.t -> Tuple.t -> Tuple.t -> t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int

(** [parse s] parses ["A B -> C D"]; an empty lhs parses the consensus FD.
    @raise Failure on syntax errors. *)
val parse : string -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
