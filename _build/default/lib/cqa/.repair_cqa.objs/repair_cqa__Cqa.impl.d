lib/cqa/cqa.ml: Attr_set List Repair_enumerate Repair_relational Schema Set Table Tuple Value
