lib/cqa/cqa.mli: Attr_set Fd_set Repair_fd Repair_relational Schema Table Tuple Value
