open Repair_relational
module Enumerate = Repair_enumerate.Enumerate

type query = {
  select : (Schema.attribute * Value.t) list;
  project : Attr_set.t;
}

let query ?(select = []) project_attrs =
  { select; project = Attr_set.of_list project_attrs }

module Tset = Set.Make (struct
  type t = Tuple.t

  let compare = Tuple.compare
end)

let answer_set q tbl =
  let schema = Table.schema tbl in
  Table.fold
    (fun _ t _ acc ->
      let keep =
        List.for_all
          (fun (a, v) -> Value.equal (Tuple.get_attr schema t a) v)
          q.select
      in
      if keep then Tset.add (Tuple.project schema t q.project) acc else acc)
    tbl Tset.empty

let answers q tbl = Tset.elements (answer_set q tbl)

let repair_answer_sets ?limit q d tbl =
  Enumerate.s_repairs ?limit d tbl |> List.map (answer_set q)

let certain ?limit q d tbl =
  match repair_answer_sets ?limit q d tbl with
  | [] -> []
  | first :: rest -> Tset.elements (List.fold_left Tset.inter first rest)

let possible ?limit q d tbl =
  repair_answer_sets ?limit q d tbl
  |> List.fold_left Tset.union Tset.empty
  |> Tset.elements

let range ?limit q d tbl =
  match repair_answer_sets ?limit q d tbl with
  | [] -> ([], [])
  | first :: rest ->
    let certain = List.fold_left Tset.inter first rest in
    let possible = List.fold_left Tset.union first rest in
    (Tset.elements certain, Tset.elements possible)
