(** Consistent query answering (Arenas–Bertossi–Chomicki, the framework
    the paper's introduction builds on): the {e consistent answers} to a
    query are those returned in {e every} repair.

    We evaluate selection–projection queries over the S-repairs (maximal
    consistent subsets) of a table, by explicit repair enumeration — the
    semantics-first implementation suitable for moderate repair counts
    (see {!Repair_enumerate.Enumerate}); a [limit] guards the blow-up. *)

open Repair_relational
open Repair_fd

(** A selection–projection query: conjunctive equality selections, then
    projection onto [project] (in schema order). An empty [select] keeps
    every tuple. *)
type query = {
  select : (Schema.attribute * Value.t) list;
  project : Attr_set.t;
}

val query :
  ?select:(Schema.attribute * Value.t) list -> Schema.attribute list -> query

(** [answers q tbl] evaluates the query on one table: distinct projected
    tuples, sorted. *)
val answers : query -> Table.t -> Tuple.t list

(** [certain ?limit q d tbl] — tuples returned in every S-repair. *)
val certain : ?limit:int -> query -> Fd_set.t -> Table.t -> Tuple.t list

(** [possible ?limit q d tbl] — tuples returned in at least one
    S-repair. *)
val possible : ?limit:int -> query -> Fd_set.t -> Table.t -> Tuple.t list

(** [range ?limit q d tbl] is [(certain, possible)] computed in one
    enumeration pass. *)
val range :
  ?limit:int -> query -> Fd_set.t -> Table.t -> Tuple.t list * Tuple.t list
