open Repair_relational
open Repair_fd

type reason = {
  deleted : Table.id;
  conflicts : (Table.id * Fd.t) list;
}

let deletions d ~table s =
  if not (S_check.is_consistent_subset d ~of_:table s) then
    invalid_arg "Explain.deletions: not a consistent subset";
  let schema = Table.schema table in
  let fds = Fd_set.to_list (Fd_set.normalize d) in
  Table.fold
    (fun i t _ acc ->
      if Table.mem s i then acc
      else
        let conflicts =
          Table.fold
            (fun j t' _ acc ->
              List.fold_left
                (fun acc fd ->
                  if Fd.holds_on schema t t' fd then acc else (j, fd) :: acc)
                acc fds)
            s []
          |> List.rev
        in
        { deleted = i; conflicts } :: acc)
    table []
  |> List.rev

let gratuitous d ~table s =
  deletions d ~table s
  |> List.filter_map (fun r ->
         if r.conflicts = [] then Some r.deleted else None)

let pp_reason ppf r =
  match r.conflicts with
  | [] -> Fmt.pf ppf "tuple %d: gratuitous deletion (restorable)" r.deleted
  | cs ->
    Fmt.pf ppf "tuple %d conflicts with %a" r.deleted
      Fmt.(
        list ~sep:(any ", ") (fun ppf (j, fd) -> pf ppf "%d (%a)" j Fd.pp fd))
      cs
