open Repair_relational
open Repair_fd

let is_consistent_subset d ~of_ s =
  Table.is_subset_of s of_ && Fd_set.satisfied_by d s

let compatible d s tuple =
  let schema = Table.schema s in
  Table.for_all (fun _ t -> Fd_set.pair_consistent d schema tuple t) s

let is_s_repair d ~of_ s =
  is_consistent_subset d ~of_ s
  && Table.fold
       (fun i t _ ok -> ok && (Table.mem s i || not (compatible d s t)))
       of_ true

(* Tuple-at-a-time extension through the incremental index: expected
   O(|T|·|Δ|·log|T|) instead of the quadratic pairwise scan. *)
let make_maximal d ~of_ s =
  let idx = Fd_index.build d s in
  Table.fold
    (fun i t w acc ->
      if Table.mem acc i then acc
      else if Fd_index.compatible idx t then begin
        Fd_index.add idx i t;
        Table.add ~id:i ~weight:w acc t
      end
      else acc)
    of_ s

let is_alpha_optimal d ~of_ ~alpha s =
  is_consistent_subset d ~of_ s
  &&
  let opt = S_exact.distance d of_ in
  Table.dist_sub s of_ <= (alpha *. opt) +. 1e-9
