(** Exact optimal S-repairs for {e any} FD set, via minimum-weight vertex
    cover of the conflict graph. Exponential worst case — this is the
    optimality baseline used to validate {!Opt_s_repair} and to measure the
    quality of {!S_approx} on small instances of APX-hard FD sets. *)

open Repair_relational
open Repair_fd

(** [optimal d tbl] is an optimal S-repair of [tbl] under [d]. *)
val optimal : Fd_set.t -> Table.t -> Table.t

(** [distance d tbl] is [dist_sub(S*, T)]. *)
val distance : Fd_set.t -> Table.t -> float

(** [brute_force d tbl] enumerates all 2^|T| subsets — the ground-truth of
    ground truths, for tables of at most ~20 tuples. *)
val brute_force : Fd_set.t -> Table.t -> Table.t
