(** Explanations for subset repairs: why was each tuple deleted?

    In the human-in-the-loop workflow the paper motivates (Section 1),
    a cleaner wants not just a repair but the {e justification}: the
    surviving tuples and FDs each deletion conflicts with. A deletion with
    no surviving conflict partner is {e gratuitous} — the subset was not
    maximal — and is reported as such. *)

open Repair_relational
open Repair_fd

type reason = {
  deleted : Table.id;
  conflicts : (Table.id * Fd.t) list;
      (** surviving tuples (and the FD violated with each); empty means the
          deletion was gratuitous *)
}

(** [deletions d ~table s] explains every tuple of [table] missing from
    the consistent subset [s].

    @raise Invalid_argument if [s] is not a consistent subset of
    [table]. *)
val deletions : Fd_set.t -> table:Table.t -> Table.t -> reason list

(** [gratuitous d ~table s] — the deleted ids with no surviving conflict:
    restoring them keeps consistency. Empty iff [s] is an S-repair. *)
val gratuitous : Fd_set.t -> table:Table.t -> Table.t -> Table.id list

(** [pp_reason] renders e.g.
    ["tuple 2 conflicts with 1 (facility → city), 1 (facility room → floor)"]. *)
val pp_reason : Format.formatter -> reason -> unit
