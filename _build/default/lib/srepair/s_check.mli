(** Checking subset-repair properties (Section 2.3).

    A {e consistent subset} satisfies Δ; an {e S-repair} is a consistent
    subset not strictly contained in another one; the paper notes that a
    consistent subset can always be extended to an S-repair with no
    increase of distance ({!make_maximal}). *)

open Repair_relational
open Repair_fd

(** [is_consistent_subset d ~of_:t s] holds iff [s] is a subset of [t] and
    satisfies [d]. *)
val is_consistent_subset : Fd_set.t -> of_:Table.t -> Table.t -> bool

(** [is_s_repair d ~of_:t s] additionally checks maximality: restoring any
    deleted tuple breaks consistency. *)
val is_s_repair : Fd_set.t -> of_:Table.t -> Table.t -> bool

(** [make_maximal d ~of_:t s] greedily restores deleted tuples while
    consistency is preserved, yielding an S-repair containing [s]. *)
val make_maximal : Fd_set.t -> of_:Table.t -> Table.t -> Table.t

(** [is_alpha_optimal d ~of_:t ~alpha s] holds iff [s] is a consistent
    subset with [dist_sub(s, t) ≤ alpha · dist_sub(S*, t)], where the
    optimum is computed by the exact baseline (small tables only). *)
val is_alpha_optimal : Fd_set.t -> of_:Table.t -> alpha:float -> Table.t -> bool
