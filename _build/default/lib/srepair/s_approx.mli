(** The polynomial-time 2-approximation of optimal S-repairs
    (Proposition 3.3): Bar-Yehuda–Even weighted vertex cover on the
    conflict graph. The reduction is strict, so the cover's factor-2
    guarantee carries over to the repair distance. *)

open Repair_relational
open Repair_fd

(** [approx2 d tbl] is a consistent subset [S] with
    [dist_sub(S, T) ≤ 2 · dist_sub(S*, T)]. *)
val approx2 : Fd_set.t -> Table.t -> Table.t

(** [distance d tbl] is the achieved (not optimal) distance. *)
val distance : Fd_set.t -> Table.t -> float
