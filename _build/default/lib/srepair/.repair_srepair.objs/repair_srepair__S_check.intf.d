lib/srepair/s_check.mli: Fd_set Repair_fd Repair_relational Table
