lib/srepair/s_exact.mli: Fd_set Repair_fd Repair_relational Repair_runtime Table
