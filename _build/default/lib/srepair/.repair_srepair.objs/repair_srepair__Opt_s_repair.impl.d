lib/srepair/opt_s_repair.ml: Array Attr_set Fd Fd_set Fmt Hashtbl List Map Repair_fd Repair_graph Repair_relational Result Table Tuple
