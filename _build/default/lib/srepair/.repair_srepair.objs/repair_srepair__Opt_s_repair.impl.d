lib/srepair/opt_s_repair.ml: Array Attr_set Budget Fd Fd_set Fmt Hashtbl List Map Repair_fd Repair_graph Repair_relational Repair_runtime Result Table Tuple
