lib/srepair/opt_s_repair.mli: Fd_set Repair_fd Repair_relational Repair_runtime Table
