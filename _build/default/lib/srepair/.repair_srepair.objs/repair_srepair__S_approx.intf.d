lib/srepair/s_approx.mli: Fd_set Repair_fd Repair_relational Table
