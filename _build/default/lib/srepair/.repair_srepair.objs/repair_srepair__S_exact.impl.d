lib/srepair/s_exact.ml: Array Budget Conflict_graph Fd_set Repair_fd Repair_graph Repair_relational Repair_runtime Table
