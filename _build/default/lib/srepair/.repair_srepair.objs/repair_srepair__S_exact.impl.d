lib/srepair/s_exact.ml: Array Conflict_graph Fd_set Repair_fd Repair_graph Repair_relational Table
