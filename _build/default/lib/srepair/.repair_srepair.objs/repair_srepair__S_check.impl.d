lib/srepair/s_check.ml: Fd_index Fd_set Repair_fd Repair_relational S_exact Table
