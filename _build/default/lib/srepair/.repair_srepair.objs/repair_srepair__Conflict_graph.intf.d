lib/srepair/conflict_graph.mli: Fd_set Repair_fd Repair_graph Repair_relational Table
