lib/srepair/explain.mli: Fd Fd_set Format Repair_fd Repair_relational Table
