lib/srepair/conflict_graph.ml: Array Fd Fd_set Hashtbl List Repair_fd Repair_graph Repair_relational Table
