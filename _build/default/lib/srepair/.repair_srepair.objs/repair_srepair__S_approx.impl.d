lib/srepair/s_approx.ml: Conflict_graph Repair_graph Repair_relational Table
