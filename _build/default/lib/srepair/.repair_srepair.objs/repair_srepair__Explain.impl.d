lib/srepair/explain.ml: Fd Fd_set Fmt List Repair_fd Repair_relational S_check Table
