(** JSON-lines import/export for tables.

    One JSON object per line; attribute names are keys. Two reserved keys
    carry the repair metadata: [#id] (integer identifier) and [#weight]
    (positive number), both optional on input (ids then run 1..n, weights
    default to 1). Values map as: JSON numbers to {!Value.Int} (integers
    only), strings to {!Value.Str}, and the string forms understood by
    {!Value.of_string} apply. Nested arrays/objects, floats, booleans and
    null are rejected — the paper's data model is first-normal-form with a
    flat value domain.

    The parser is a minimal, dependency-free JSON subset reader sufficient
    for this format; it accepts arbitrary whitespace and the standard
    string escapes (quote, backslash, slash, n, t, r, b, f, uXXXX). *)

(** [parse_string ?file ~name s] reads JSON-lines text. [file] (default
    ["<jsonl>"]) labels error values.

    @raise Repair_runtime.Repair_error.Error on malformed input or schema
    drift between lines — a [Parse] error carrying the source name and
    1-based line number, or [Schema_mismatch]/[Io] as applicable. *)
val parse_string : ?file:string -> name:string -> string -> Table.t

(** [parse_result ?file ~name s] is {!parse_string} with the error
    returned instead of raised. *)
val parse_result :
  ?file:string ->
  name:string ->
  string ->
  (Table.t, Repair_runtime.Repair_error.t) result

(** [to_string ?with_meta tbl] renders one object per tuple; [with_meta]
    (default [true]) includes the [#id] and [#weight] keys. *)
val to_string : ?with_meta:bool -> Table.t -> string

val load : name:string -> string -> Table.t

val load_result :
  name:string -> string -> (Table.t, Repair_runtime.Repair_error.t) result

val save : ?with_meta:bool -> Table.t -> string -> unit

