module S = Set.Make (String)

type t = S.t
type attribute = string

let empty = S.empty
let is_empty = S.is_empty
let singleton = S.singleton
let of_list = S.of_list
let to_list = S.elements
let add = S.add
let remove = S.remove
let mem = S.mem
let cardinal = S.cardinal
let union = S.union
let inter = S.inter
let diff = S.diff
let subset = S.subset
let equal = S.equal
let strict_subset x y = subset x y && not (equal x y)
let compare = S.compare
let disjoint = S.disjoint
let exists = S.exists
let for_all = S.for_all
let fold = S.fold
let iter = S.iter
let filter = S.filter
let choose_opt = S.choose_opt
let elements = S.elements

let subsets x =
  let grow subs a = subs @ List.map (add a) subs in
  List.fold_left grow [ empty ] (elements x)

let pp ppf x =
  if is_empty x then Fmt.string ppf "∅"
  else
    let names = elements x in
    let sep = if List.for_all (fun n -> String.length n = 1) names then "" else " " in
    Fmt.string ppf (String.concat sep names)

let to_string x = Fmt.str "%a" pp x
