(** Minimal CSV reading/writing for tables.

    The format is: a header row of attribute names, then one row per tuple.
    Two optional reserved columns are recognized in the header: [#id] (tuple
    identifier, integer) and [#weight] (positive float). When absent, ids
    are assigned 1..n and weights default to 1. Fields containing commas,
    quotes or newlines are double-quoted on output; quoted fields are
    understood on input. Values are parsed with {!Value.of_string}. *)

(** [parse_string ~name s] parses CSV text into a table over a schema named
    [name].

    @raise Failure on malformed input. *)
val parse_string : name:string -> string -> Table.t

(** [to_string ?with_meta tbl] renders a table. With [with_meta] (default
    [true]) the [#id] and [#weight] columns are included. *)
val to_string : ?with_meta:bool -> Table.t -> string

(** File variants of the above. *)

val load : name:string -> string -> Table.t
val save : ?with_meta:bool -> Table.t -> string -> unit
