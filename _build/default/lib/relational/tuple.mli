(** Tuples: sequences of values conforming to a schema.

    A tuple is an immutable array of values; position [i] holds the value of
    the schema's [i]-th attribute. *)

type t

(** [make vs] builds a tuple from values in schema order. *)
val make : Value.t list -> t

val of_array : Value.t array -> t

(** [arity t] is the number of values. *)
val arity : t -> int

(** [get t i] is the value at position [i]. *)
val get : t -> int -> Value.t

(** [get_attr schema t a] is the value of attribute [a] (the paper's
    [t.A]). *)
val get_attr : Schema.t -> t -> Schema.attribute -> Value.t

(** [set t i v] is a copy of [t] with position [i] replaced by [v]. *)
val set : t -> int -> Value.t -> t

(** [set_attr schema t a v] is a copy of [t] with attribute [a] set to
    [v]. *)
val set_attr : Schema.t -> t -> Schema.attribute -> Value.t -> t

(** [project schema t x] is the paper's [t[X]]: the sequence of values of
    the attributes of [x], in schema order. *)
val project : Schema.t -> t -> Attr_set.t -> t

(** [agree_on schema t1 t2 x] holds iff [t1[X] = t2[X]]. *)
val agree_on : Schema.t -> t -> t -> Attr_set.t -> bool

(** [hamming t1 t2] is the Hamming distance [H(t1, t2)]: the number of
    positions where the tuples disagree (Section 2.3).

    @raise Invalid_argument on arity mismatch. *)
val hamming : t -> t -> int

val values : t -> Value.t list
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
