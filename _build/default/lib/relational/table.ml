module Imap = Map.Make (Int)

type id = int

type row = { tuple : Tuple.t; weight : float }

type t = { schema : Schema.t; rows : row Imap.t }

let empty schema = { schema; rows = Imap.empty }

let check_row schema ?(what = "Table.add") weight tuple =
  if weight <= 0.0 then invalid_arg (what ^ ": weight must be positive");
  if Tuple.arity tuple <> Schema.arity schema then
    invalid_arg (what ^ ": tuple arity does not match schema")

let next_id tbl =
  match Imap.max_binding_opt tbl.rows with
  | None -> 1
  | Some (i, _) -> i + 1

let add ?id ?(weight = 1.0) tbl tuple =
  check_row tbl.schema weight tuple;
  let id = match id with Some i -> i | None -> next_id tbl in
  if Imap.mem id tbl.rows then
    invalid_arg (Printf.sprintf "Table.add: duplicate identifier %d" id);
  { tbl with rows = Imap.add id { tuple; weight } tbl.rows }

let of_list schema rows =
  List.fold_left
    (fun tbl (id, weight, tuple) -> add ~id ~weight tbl tuple)
    (empty schema) rows

let of_tuples schema tuples =
  List.fold_left (fun tbl tuple -> add tbl tuple) (empty schema) tuples

let schema tbl = tbl.schema
let ids tbl = Imap.bindings tbl.rows |> List.map fst
let size tbl = Imap.cardinal tbl.rows
let is_empty tbl = Imap.is_empty tbl.rows
let mem tbl i = Imap.mem i tbl.rows

let find_opt tbl i =
  Imap.find_opt i tbl.rows |> Option.map (fun r -> (r.tuple, r.weight))

let tuple tbl i = (Imap.find i tbl.rows).tuple
let weight tbl i = (Imap.find i tbl.rows).weight

let tuples tbl = Imap.bindings tbl.rows |> List.map (fun (_, r) -> r.tuple)

let fold f tbl acc =
  Imap.fold (fun i r acc -> f i r.tuple r.weight acc) tbl.rows acc

let iter f tbl = Imap.iter (fun i r -> f i r.tuple r.weight) tbl.rows
let for_all p tbl = Imap.for_all (fun i r -> p i r.tuple) tbl.rows
let exists p tbl = Imap.exists (fun i r -> p i r.tuple) tbl.rows

let total_weight tbl = fold (fun _ _ w acc -> acc +. w) tbl 0.0

let is_duplicate_free tbl =
  let module Tset = Set.Make (struct
    type t = Tuple.t

    let compare = Tuple.compare
  end) in
  let distinct = Tset.of_list (tuples tbl) in
  Tset.cardinal distinct = size tbl

let is_unweighted tbl =
  match Imap.min_binding_opt tbl.rows with
  | None -> true
  | Some (_, r0) -> Imap.for_all (fun _ r -> r.weight = r0.weight) tbl.rows

let select tbl p =
  { tbl with rows = Imap.filter (fun i r -> p i r.tuple) tbl.rows }

let select_eq tbl x key =
  select tbl (fun _ t -> Tuple.equal (Tuple.project tbl.schema t x) key)

module Tmap = Map.Make (struct
  type t = Tuple.t

  let compare = Tuple.compare
end)

let group_by tbl x =
  let groups =
    fold
      (fun i t _ acc ->
        let key = Tuple.project tbl.schema t x in
        let prev = Option.value (Tmap.find_opt key acc) ~default:[] in
        Tmap.add key (i :: prev) acc)
      tbl Tmap.empty
  in
  let module Iset = Set.Make (Int) in
  Tmap.bindings groups
  |> List.map (fun (key, members) ->
         let keep = Iset.of_list members in
         let sub =
           { tbl with rows = Imap.filter (fun i _ -> Iset.mem i keep) tbl.rows }
         in
         (key, sub))

let project_distinct tbl x = group_by tbl x |> List.map fst

let restrict tbl keep =
  let module Iset = Set.Make (Int) in
  let keep = Iset.of_list keep in
  { tbl with rows = Imap.filter (fun i _ -> Iset.mem i keep) tbl.rows }

let remove tbl gone =
  let module Iset = Set.Make (Int) in
  let gone = Iset.of_list gone in
  { tbl with rows = Imap.filter (fun i _ -> not (Iset.mem i gone)) tbl.rows }

let union t1 t2 =
  let rows =
    Imap.union
      (fun i _ _ ->
        invalid_arg (Printf.sprintf "Table.union: identifier %d in both" i))
      t1.rows t2.rows
  in
  { t1 with rows }

let map_tuples tbl f =
  { tbl with rows = Imap.mapi (fun i r -> { r with tuple = f i r.tuple }) tbl.rows }

let set_tuple tbl i tp =
  let r = Imap.find i tbl.rows in
  check_row tbl.schema ~what:"Table.set_tuple" r.weight tp;
  { tbl with rows = Imap.add i { r with tuple = tp } tbl.rows }

let map_weights tbl f =
  let rows =
    Imap.mapi
      (fun i r ->
        let w = f i r.weight in
        if w <= 0.0 then invalid_arg "Table.map_weights: weight must be positive";
        { r with weight = w })
      tbl.rows
  in
  { tbl with rows }

let is_subset_of s tbl =
  Schema.equal s.schema tbl.schema
  && Imap.for_all
       (fun i r ->
         match Imap.find_opt i tbl.rows with
         | Some r' -> Tuple.equal r.tuple r'.tuple && r.weight = r'.weight
         | None -> false)
       s.rows

let is_update_of u tbl =
  Schema.equal u.schema tbl.schema
  && size u = size tbl
  && Imap.for_all
       (fun i r ->
         match Imap.find_opt i tbl.rows with
         | Some r' -> r.weight = r'.weight
         | None -> false)
       u.rows

let dist_sub s tbl =
  if not (is_subset_of s tbl) then invalid_arg "Table.dist_sub: not a subset";
  fold (fun i _ w acc -> if mem s i then acc else acc +. w) tbl 0.0

let dist_upd u tbl =
  if not (is_update_of u tbl) then invalid_arg "Table.dist_upd: not an update";
  fold
    (fun i t w acc -> acc +. (w *. float_of_int (Tuple.hamming t (tuple u i))))
    tbl 0.0

let active_domain tbl a =
  let i = Schema.index_of tbl.schema a in
  tuples tbl
  |> List.map (fun t -> Tuple.get t i)
  |> List.sort_uniq Value.compare

let all_values tbl =
  tuples tbl |> List.concat_map Tuple.values |> List.sort_uniq Value.compare

let equal t1 t2 =
  Schema.equal t1.schema t2.schema
  && Imap.equal
       (fun r1 r2 -> Tuple.equal r1.tuple r2.tuple && r1.weight = r2.weight)
       t1.rows t2.rows

let pp ppf tbl =
  Fmt.pf ppf "@[<v>%a@," Schema.pp tbl.schema;
  iter
    (fun i t w -> Fmt.pf ppf "  %3d | %a | w=%g@," i Tuple.pp t w)
    tbl;
  Fmt.pf ppf "@]"

let to_string tbl = Fmt.str "%a" pp tbl
