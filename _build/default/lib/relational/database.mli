(** Multi-relation databases.

    The paper works with a single table and notes (Section 1) that "in a
    general database, our results can be applied to each relation
    individually" — FDs never span relations. This module provides that
    lift: a named collection of tables, each with its own FD set, where
    consistency, distances and repairs are per-relation and aggregate
    additively. *)

type t

val empty : t

(** [add db ~name tbl] registers a relation.
    @raise Invalid_argument on duplicate names. *)
val add : t -> name:string -> Table.t -> t

val find : t -> string -> Table.t option
val names : t -> string list
val relations : t -> (string * Table.t) list

(** [update db ~name tbl] replaces a relation's table.
    @raise Not_found for unknown names. *)
val update : t -> name:string -> Table.t -> t

(** [total_weight db] sums over relations. *)
val total_weight : t -> float

(** [map db f] applies [f] to every relation's table (e.g. a per-relation
    repair), keeping names. *)
val map : t -> (string -> Table.t -> Table.t) -> t

(** [fold db f acc] folds over relations in name order. *)
val fold : t -> (string -> Table.t -> 'a -> 'a) -> 'a -> 'a

(** [dist_sub db' db] — sum of per-relation subset distances; relations
    must match by name.
    @raise Invalid_argument on name mismatch. *)
val dist_sub : t -> t -> float

(** [dist_upd db' db] — sum of per-relation update distances. *)
val dist_upd : t -> t -> float

val pp : Format.formatter -> t -> unit
