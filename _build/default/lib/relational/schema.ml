type attribute = string

type t = {
  name : string;
  attrs : attribute array;
  index : (attribute, int) Hashtbl.t;
}

let make name attrs =
  if attrs = [] then invalid_arg "Schema.make: no attributes";
  let index = Hashtbl.create (List.length attrs) in
  List.iteri
    (fun i a ->
      if Hashtbl.mem index a then
        invalid_arg (Printf.sprintf "Schema.make: duplicate attribute %s" a);
      Hashtbl.add index a i)
    attrs;
  { name; attrs = Array.of_list attrs; index }

let name s = s.name
let arity s = Array.length s.attrs
let attributes s = Array.to_list s.attrs
let attribute_set s = Attr_set.of_list (attributes s)

let index_of_opt s a = Hashtbl.find_opt s.index a

let index_of s a =
  match index_of_opt s a with Some i -> i | None -> raise Not_found

let mem s a = Hashtbl.mem s.index a
let attribute_at s i = s.attrs.(i)

let indices_of s x =
  Attr_set.fold (fun a acc -> index_of s a :: acc) x []
  |> List.sort Stdlib.compare

let equal s1 s2 = s1.name = s2.name && s1.attrs = s2.attrs

let pp ppf s =
  Fmt.pf ppf "%s(%s)" s.name (String.concat ", " (attributes s))
