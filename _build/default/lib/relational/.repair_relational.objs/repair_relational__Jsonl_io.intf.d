lib/relational/jsonl_io.mli: Repair_runtime Table
