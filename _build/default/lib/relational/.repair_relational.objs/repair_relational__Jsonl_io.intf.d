lib/relational/jsonl_io.mli: Table
