lib/relational/tuple.mli: Attr_set Format Schema Value
