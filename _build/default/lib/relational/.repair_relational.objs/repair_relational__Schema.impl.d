lib/relational/schema.ml: Array Attr_set Fmt Hashtbl List Printf Stdlib String
