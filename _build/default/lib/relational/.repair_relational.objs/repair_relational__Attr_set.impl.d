lib/relational/attr_set.ml: Fmt List Set String
