lib/relational/table.ml: Fmt Int List Map Option Printf Schema Set Tuple Value
