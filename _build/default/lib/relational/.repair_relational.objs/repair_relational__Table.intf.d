lib/relational/table.mli: Attr_set Format Schema Tuple Value
