lib/relational/csv_io.ml: Buffer Fmt Fun List Option Printf Repair_runtime Schema String Table Tuple Value
