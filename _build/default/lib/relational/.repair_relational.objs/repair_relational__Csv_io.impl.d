lib/relational/csv_io.ml: Buffer Fun List Option Printf Schema String Table Tuple Value
