lib/relational/tuple.ml: Array Fmt Hashtbl List Schema Stdlib Value
