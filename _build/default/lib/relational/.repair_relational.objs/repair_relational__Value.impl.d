lib/relational/value.ml: Fmt Hashtbl List Stdlib String
