lib/relational/database.ml: Fmt List Map Printf String Table
