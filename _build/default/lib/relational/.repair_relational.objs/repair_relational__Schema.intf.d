lib/relational/schema.mli: Attr_set Format
