lib/relational/jsonl_io.ml: Buffer Char Float Fmt Fun List Option Printf Schema String Table Tuple Value
