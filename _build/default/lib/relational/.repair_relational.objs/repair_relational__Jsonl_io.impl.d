lib/relational/jsonl_io.ml: Buffer Char Float Fmt Fun List Option Printf Repair_runtime Schema String Table Tuple Value
