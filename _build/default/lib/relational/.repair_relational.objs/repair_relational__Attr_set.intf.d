lib/relational/attr_set.mli: Format
