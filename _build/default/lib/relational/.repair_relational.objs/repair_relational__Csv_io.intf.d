lib/relational/csv_io.mli: Table
