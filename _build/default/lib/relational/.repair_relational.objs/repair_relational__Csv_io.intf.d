lib/relational/csv_io.mli: Repair_runtime Table
