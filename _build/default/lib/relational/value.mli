(** Attribute values.

    The paper assumes a countably infinite domain [Val] of attribute values.
    Beyond plain integers and strings we provide:

    - {!constructor:Unit}: the distinguished constant [⊙] used by the
      fact-wise reductions of the paper's appendix (Lemmas A.14-A.18);
    - {!constructor:Pair} and {!constructor:Triple}: value tupling, used by
      the same reductions to build values such as [⟨a,c⟩];
    - {!constructor:Fresh}: fresh constants drawn from the infinite domain,
      needed by update repairs (Proposition 4.4 updates cells of deleted
      tuples to fresh constants, and Figure 1(e) uses the fresh value
      [F01]). *)

type t =
  | Unit  (** the distinguished constant [⊙] *)
  | Int of int
  | Str of string
  | Pair of t * t
  | Triple of t * t * t
  | Fresh of int  (** [Fresh i] is the [i]-th fresh constant *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val int : int -> t
val str : string -> t
val pair : t -> t -> t
val triple : t -> t -> t -> t

(** [of_string s] parses the external syntax used by the CSV reader: an
    integer literal becomes [Int], the token ["_|_"] becomes [Unit], a token
    of the form ["$n"] becomes [Fresh n], anything else becomes [Str]. *)
val of_string : string -> t

(** Stateful supplies of fresh constants, guaranteed not to collide with any
    value already present in a given collection (fresh constants are tagged
    with their own constructor, so they can only collide with other fresh
    constants). *)
module Supply : sig
  type value := t
  type t

  (** [create ()] is a supply starting at [Fresh 0]. *)
  val create : unit -> t

  (** [starting_above vs] is a supply whose constants are distinct from every
      fresh constant occurring (at any nesting depth) in [vs]. *)
  val starting_above : value list -> t

  (** [next s] draws the next fresh constant. *)
  val next : t -> value
end
