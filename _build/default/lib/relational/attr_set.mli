(** Sets of attribute names.

    The paper writes attribute sets without braces or commas (e.g. [ABC]);
    {!pp} follows that convention when every attribute is a single character
    and falls back to space separation otherwise. *)

type t

type attribute = string

val empty : t
val is_empty : t -> bool
val singleton : attribute -> t
val of_list : attribute list -> t
val to_list : t -> attribute list
val add : attribute -> t -> t
val remove : attribute -> t -> t
val mem : attribute -> t -> bool
val cardinal : t -> int

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

val subset : t -> t -> bool

(** [strict_subset x y] is [subset x y && not (equal x y)]. *)
val strict_subset : t -> t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int
val disjoint : t -> t -> bool

val exists : (attribute -> bool) -> t -> bool
val for_all : (attribute -> bool) -> t -> bool
val fold : (attribute -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (attribute -> unit) -> t -> unit
val filter : (attribute -> bool) -> t -> t
val choose_opt : t -> attribute option
val elements : t -> attribute list

(** [subsets x] enumerates all subsets of [x] (exponential; intended for the
    small, fixed attribute sets of data complexity). *)
val subsets : t -> t list

(** [pp] prints in the paper's juxtaposition style: [∅] for the empty set,
    [ABC] when all names are single characters, [A1 B2 C] otherwise. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string
