(** Relation schemas [R(A1, ..., Ak)].

    A schema has a relation name and an ordered sequence of distinct
    attribute names. Attribute positions are fixed, so tuples can be stored
    as plain value arrays. *)

type t

type attribute = string

(** [make name attrs] builds a schema.

    @raise Invalid_argument if [attrs] contains duplicates or is empty. *)
val make : string -> attribute list -> t

val name : t -> string

(** [arity s] is the number [k] of attributes. *)
val arity : t -> int

(** Attributes in declaration order. *)
val attributes : t -> attribute list

val attribute_set : t -> Attr_set.t

(** [index_of s a] is the position of attribute [a].

    @raise Not_found if [a] is not an attribute of [s]. *)
val index_of : t -> attribute -> int

val index_of_opt : t -> attribute -> int option
val mem : t -> attribute -> bool

(** [attribute_at s i] is the attribute at position [i]. *)
val attribute_at : t -> int -> attribute

(** [indices_of s x] maps an attribute set to its sorted position list.

    @raise Not_found if some attribute of [x] is not in [s]. *)
val indices_of : t -> Attr_set.t -> int list

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
