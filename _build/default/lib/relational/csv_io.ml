(* A small CSV implementation: enough for round-tripping tables with
   quoted fields, without pulling in an external dependency. *)

let split_records s =
  (* Split into records, honoring quotes (newlines inside quotes kept). *)
  let buf = Buffer.create 64 in
  let records = ref [] in
  let in_quotes = ref false in
  let flush () =
    records := Buffer.contents buf :: !records;
    Buffer.clear buf
  in
  String.iter
    (fun c ->
      match c with
      | '"' ->
        in_quotes := not !in_quotes;
        Buffer.add_char buf c
      | '\n' when not !in_quotes -> flush ()
      | '\r' when not !in_quotes -> ()
      | c -> Buffer.add_char buf c)
    s;
  if Buffer.length buf > 0 then flush ();
  List.rev !records |> List.filter (fun r -> String.trim r <> "")

let split_fields record =
  let fields = ref [] in
  let buf = Buffer.create 16 in
  let n = String.length record in
  let flush () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let rec plain i =
    if i >= n then flush ()
    else
      match record.[i] with
      | ',' ->
        flush ();
        plain (i + 1)
      | '"' -> quoted (i + 1)
      | c ->
        Buffer.add_char buf c;
        plain (i + 1)
  and quoted i =
    if i >= n then failwith "Csv_io: unterminated quoted field"
    else
      match record.[i] with
      | '"' when i + 1 < n && record.[i + 1] = '"' ->
        Buffer.add_char buf '"';
        quoted (i + 2)
      | '"' -> plain (i + 1)
      | c ->
        Buffer.add_char buf c;
        quoted (i + 1)
  in
  plain 0;
  List.rev !fields

let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n') s

let quote_field s =
  if needs_quoting s then
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  else s

let parse_string ~name s =
  match split_records s with
  | [] -> failwith "Csv_io.parse_string: empty input"
  | header :: body ->
    let cols = split_fields header |> List.map String.trim in
    let id_col = ref None and weight_col = ref None in
    let attrs =
      List.filteri
        (fun i c ->
          match c with
          | "#id" ->
            id_col := Some i;
            false
          | "#weight" ->
            weight_col := Some i;
            false
          | _ -> true)
        cols
    in
    if attrs = [] then failwith "Csv_io.parse_string: no attribute columns";
    let schema = Schema.make name attrs in
    let parse_row line_no tbl record =
      let fields = split_fields record in
      if List.length fields <> List.length cols then
        failwith
          (Printf.sprintf "Csv_io: row %d has %d fields, expected %d" line_no
             (List.length fields) (List.length cols));
      let id =
        Option.map
          (fun i ->
            match int_of_string_opt (List.nth fields i) with
            | Some v -> v
            | None ->
              failwith (Printf.sprintf "Csv_io: row %d: bad #id" line_no))
          !id_col
      in
      let weight =
        match !weight_col with
        | None -> 1.0
        | Some i -> (
          match float_of_string_opt (List.nth fields i) with
          | Some v -> v
          | None ->
            failwith (Printf.sprintf "Csv_io: row %d: bad #weight" line_no))
      in
      let vs =
        List.filteri
          (fun i _ -> Some i <> !id_col && Some i <> !weight_col)
          fields
        |> List.map Value.of_string
      in
      Table.add ?id ~weight tbl (Tuple.make vs)
    in
    List.fold_left
      (fun (line_no, tbl) record -> (line_no + 1, parse_row line_no tbl record))
      (2, Table.empty schema) body
    |> snd

let to_string ?(with_meta = true) tbl =
  let schema = Table.schema tbl in
  let buf = Buffer.create 256 in
  let attrs = Schema.attributes schema in
  let header =
    (if with_meta then [ "#id"; "#weight" ] else []) @ attrs
  in
  Buffer.add_string buf (String.concat "," (List.map quote_field header));
  Buffer.add_char buf '\n';
  Table.iter
    (fun i t w ->
      let meta =
        if with_meta then [ string_of_int i; Printf.sprintf "%g" w ] else []
      in
      let fields =
        meta @ List.map Value.to_string (Tuple.values t)
        |> List.map quote_field
      in
      Buffer.add_string buf (String.concat "," fields);
      Buffer.add_char buf '\n')
    tbl;
  Buffer.contents buf

let load ~name path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      parse_string ~name (really_input_string ic n))

let save ?with_meta tbl path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string ?with_meta tbl))
