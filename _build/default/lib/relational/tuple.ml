type t = Value.t array

let make vs = Array.of_list vs
let of_array a = Array.copy a
let arity = Array.length
let get t i = t.(i)
let get_attr schema t a = t.(Schema.index_of schema a)

let set t i v =
  let t' = Array.copy t in
  t'.(i) <- v;
  t'

let set_attr schema t a v = set t (Schema.index_of schema a) v

let project schema t x =
  let idxs = Schema.indices_of schema x in
  Array.of_list (List.map (fun i -> t.(i)) idxs)

let agree_on schema t1 t2 x =
  let idxs = Schema.indices_of schema x in
  List.for_all (fun i -> Value.equal t1.(i) t2.(i)) idxs

let hamming t1 t2 =
  if Array.length t1 <> Array.length t2 then
    invalid_arg "Tuple.hamming: arity mismatch";
  let d = ref 0 in
  for i = 0 to Array.length t1 - 1 do
    if not (Value.equal t1.(i) t2.(i)) then incr d
  done;
  !d

let values = Array.to_list

let compare t1 t2 =
  let n1 = Array.length t1 and n2 = Array.length t2 in
  if n1 <> n2 then Stdlib.compare n1 n2
  else
    let rec loop i =
      if i = n1 then 0
      else
        let c = Value.compare t1.(i) t2.(i) in
        if c <> 0 then c else loop (i + 1)
    in
    loop 0

let equal t1 t2 = compare t1 t2 = 0

let hash t = Hashtbl.hash (Array.map Value.hash t)

let pp ppf t =
  Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any ", ") Value.pp) (values t)

let to_string t = Fmt.str "%a" pp t
