module Smap = Map.Make (String)

type t = Table.t Smap.t

let empty = Smap.empty

let add db ~name tbl =
  if Smap.mem name db then
    invalid_arg (Printf.sprintf "Database.add: duplicate relation %s" name);
  Smap.add name tbl db

let find db name = Smap.find_opt name db
let names db = List.map fst (Smap.bindings db)
let relations db = Smap.bindings db

let update db ~name tbl =
  if not (Smap.mem name db) then raise Not_found;
  Smap.add name tbl db

let total_weight db =
  Smap.fold (fun _ tbl acc -> acc +. Table.total_weight tbl) db 0.0

let map db f = Smap.mapi f db
let fold db f acc = Smap.fold f db acc

let matched_fold what f db' db =
  if names db' <> names db then
    invalid_arg (Printf.sprintf "Database.%s: relation names differ" what);
  Smap.fold
    (fun name tbl acc -> acc +. f (Smap.find name db') tbl)
    db 0.0

let dist_sub db' db = matched_fold "dist_sub" Table.dist_sub db' db
let dist_upd db' db = matched_fold "dist_upd" Table.dist_upd db' db

let pp ppf db =
  Fmt.pf ppf "@[<v>%a@]"
    Fmt.(
      list ~sep:cut (fun ppf (name, tbl) ->
          pf ppf "%s:@,%a" name Table.pp tbl))
    (relations db)
