type t =
  | Unit
  | Int of int
  | Str of string
  | Pair of t * t
  | Triple of t * t * t
  | Fresh of int

let rec compare v1 v2 =
  match v1, v2 with
  | Unit, Unit -> 0
  | Unit, _ -> -1
  | _, Unit -> 1
  | Int a, Int b -> Stdlib.compare a b
  | Int _, _ -> -1
  | _, Int _ -> 1
  | Str a, Str b -> String.compare a b
  | Str _, _ -> -1
  | _, Str _ -> 1
  | Pair (a1, b1), Pair (a2, b2) ->
    let c = compare a1 a2 in
    if c <> 0 then c else compare b1 b2
  | Pair _, _ -> -1
  | _, Pair _ -> 1
  | Triple (a1, b1, c1), Triple (a2, b2, c2) ->
    let c = compare a1 a2 in
    if c <> 0 then c
    else
      let c = compare b1 b2 in
      if c <> 0 then c else compare c1 c2
  | Triple _, _ -> -1
  | _, Triple _ -> 1
  | Fresh a, Fresh b -> Stdlib.compare a b

let equal v1 v2 = compare v1 v2 = 0

let rec hash = function
  | Unit -> 17
  | Int i -> Hashtbl.hash (0, i)
  | Str s -> Hashtbl.hash (1, s)
  | Pair (a, b) -> Hashtbl.hash (2, hash a, hash b)
  | Triple (a, b, c) -> Hashtbl.hash (3, hash a, hash b, hash c)
  | Fresh i -> Hashtbl.hash (4, i)

let rec pp ppf = function
  | Unit -> Fmt.string ppf "⊙"
  | Int i -> Fmt.int ppf i
  | Str s -> Fmt.string ppf s
  | Pair (a, b) -> Fmt.pf ppf "⟨%a,%a⟩" pp a pp b
  | Triple (a, b, c) -> Fmt.pf ppf "⟨%a,%a,%a⟩" pp a pp b pp c
  | Fresh i -> Fmt.pf ppf "$%d" i

let to_string v = Fmt.str "%a" pp v

let int i = Int i
let str s = Str s
let pair a b = Pair (a, b)
let triple a b c = Triple (a, b, c)

let of_string s =
  let s = String.trim s in
  if s = "_|_" then Unit
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None ->
      if String.length s > 1 && s.[0] = '$' then
        match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
        | Some i -> Fresh i
        | None -> Str s
      else Str s

module Supply = struct
  type value = t
  type t = { mutable next_id : int }

  let create () = { next_id = 0 }

  let rec max_fresh acc = function
    | Unit | Int _ | Str _ -> acc
    | Fresh i -> max acc i
    | Pair (a, b) -> max_fresh (max_fresh acc a) b
    | Triple (a, b, c) -> max_fresh (max_fresh (max_fresh acc a) b) c

  let starting_above vs =
    let top = List.fold_left max_fresh (-1) vs in
    { next_id = top + 1 }

  let next s =
    let i = s.next_id in
    s.next_id <- i + 1;
    (Fresh i : value)
end
