lib/cfd/cfd.mli: Attr_set Fd Format Repair_fd Repair_relational Schema Table Tuple Value
