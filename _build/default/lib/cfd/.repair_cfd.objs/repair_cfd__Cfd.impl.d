lib/cfd/cfd.ml: Array Attr_set Fd Fmt List Repair_fd Repair_graph Repair_relational String Table Tuple Value
