open Repair_relational
open Repair_fd
module G = Repair_graph.Graph
module Vc = Repair_graph.Vertex_cover

type pattern_entry = Const of Value.t | Any

type t = {
  embedded : Fd.t;
  lhs_pattern : (Attr_set.attribute * pattern_entry) list;
  rhs_pattern : pattern_entry;
}

let make fd ~lhs_pattern ~rhs_pattern =
  if Attr_set.cardinal (Fd.rhs fd) <> 1 then
    invalid_arg "Cfd.make: rhs must be a single attribute";
  let covered = Attr_set.of_list (List.map fst lhs_pattern) in
  if not (Attr_set.equal covered (Fd.lhs fd)) then
    invalid_arg "Cfd.make: lhs pattern must cover exactly the lhs attributes";
  { embedded = fd; lhs_pattern; rhs_pattern }

let of_fd fd =
  match Fd.split fd with
  | [ single ] ->
    make single
      ~lhs_pattern:(List.map (fun a -> (a, Any)) (Attr_set.elements (Fd.lhs single)))
      ~rhs_pattern:Any
  | _ -> invalid_arg "Cfd.of_fd: rhs must be a single attribute"

(* Syntax: "attr['='value] ... -> attr['='value]"; a value token "_" means
   the wildcard (as does omitting the '='). *)
let parse_entry token =
  match String.index_opt token '=' with
  | None -> (String.trim token, Any)
  | Some i ->
    let attr = String.trim (String.sub token 0 i) in
    let v = String.trim (String.sub token (i + 1) (String.length token - i - 1)) in
    let v = if String.length v >= 2 && v.[0] = '\'' then String.sub v 1 (String.length v - 2) else v in
    if v = "_" then (attr, Any) else (attr, Const (Value.of_string v))

let parse s =
  let arrow_split =
    let rec find i =
      if i + 1 >= String.length s then None
      else if s.[i] = '-' && s.[i + 1] = '>' then Some i
      else find (i + 1)
    in
    find 0
  in
  match arrow_split with
  | None -> failwith "Cfd.parse: expected ->"
  | Some i ->
    let left = String.sub s 0 i in
    let right = String.sub s (i + 2) (String.length s - i - 2) in
    let tokens side =
      String.split_on_char ' ' side
      |> List.map String.trim
      |> List.filter (fun tk -> tk <> "")
    in
    let lhs_entries = List.map parse_entry (tokens left) in
    (match List.map parse_entry (tokens right) with
    | [ (rhs_attr, rhs_pat) ] ->
      let fd =
        Fd.make (Attr_set.of_list (List.map fst lhs_entries))
          (Attr_set.singleton rhs_attr)
      in
      make fd ~lhs_pattern:lhs_entries ~rhs_pattern:rhs_pat
    | _ -> failwith "Cfd.parse: rhs must be a single attribute")

let rhs_attr cfd =
  match Attr_set.elements (Fd.rhs cfd.embedded) with
  | [ a ] -> a
  | _ -> assert false

let matches_lhs schema cfd t =
  List.for_all
    (fun (a, pat) ->
      match pat with
      | Any -> true
      | Const v -> Value.equal (Tuple.get_attr schema t a) v)
    cfd.lhs_pattern

let single_tuple_violation schema cfd t =
  matches_lhs schema cfd t
  &&
  match cfd.rhs_pattern with
  | Any -> false
  | Const v -> not (Value.equal (Tuple.get_attr schema t (rhs_attr cfd)) v)

let pair_violation schema cfd t1 t2 =
  matches_lhs schema cfd t1
  && matches_lhs schema cfd t2
  && Tuple.agree_on schema t1 t2 (Fd.lhs cfd.embedded)
  && not (Tuple.agree_on schema t1 t2 (Fd.rhs cfd.embedded))

let satisfied_by cfds tbl =
  let schema = Table.schema tbl in
  let tuples = Table.tuples tbl in
  List.for_all
    (fun cfd ->
      List.for_all
        (fun t -> not (single_tuple_violation schema cfd t))
        tuples
      &&
      let rec pairs = function
        | [] -> true
        | t :: rest ->
          List.for_all (fun t' -> not (pair_violation schema cfd t t')) rest
          && pairs rest
      in
      pairs tuples)
    cfds

(* Split the problem: tuples with single-tuple violations must go; the rest
   forms a conflict graph handled exactly like Proposition 3.3. *)
let conflict_structure cfds tbl =
  let schema = Table.schema tbl in
  let mandatory, viable =
    List.partition
      (fun i ->
        List.exists
          (fun cfd -> single_tuple_violation schema cfd (Table.tuple tbl i))
          cfds)
      (Table.ids tbl)
  in
  let viable = Array.of_list viable in
  let n = Array.length viable in
  let weights = Array.map (fun i -> Table.weight tbl i) viable in
  let g = if n = 0 then G.create 0 else G.create_weighted weights in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      if
        List.exists
          (fun cfd ->
            pair_violation schema cfd
              (Table.tuple tbl viable.(a))
              (Table.tuple tbl viable.(b)))
          cfds
      then G.add_edge g a b
    done
  done;
  (mandatory, viable, g)

let repair_with_cover cfds tbl cover_algorithm =
  let mandatory, viable, g = conflict_structure cfds tbl in
  let cover = cover_algorithm g in
  let deleted = mandatory @ List.map (fun v -> viable.(v)) cover in
  Table.remove tbl deleted

let optimal_s_repair cfds tbl = repair_with_cover cfds tbl Vc.exact
let approx_s_repair cfds tbl = repair_with_cover cfds tbl Vc.approx2

let pp_entry ppf = function
  | Any -> Fmt.string ppf "_"
  | Const v -> Fmt.pf ppf "'%a'" Value.pp v

let pp ppf cfd =
  let item ppf (a, pat) =
    match pat with Any -> Fmt.string ppf a | _ -> Fmt.pf ppf "%s=%a" a pp_entry pat
  in
  Fmt.pf ppf "%a → %s=%a"
    Fmt.(list ~sep:(any " ") item)
    cfd.lhs_pattern (rhs_attr cfd) pp_entry cfd.rhs_pattern
