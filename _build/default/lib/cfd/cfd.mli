(** Conditional functional dependencies — the first extension direction
    named in the paper's future work (Section 5, after Bohannon et al.).

    A CFD is an embedded FD [X → A] plus a {e pattern tuple} over [X ∪ {A}]
    whose entries are either constants or the wildcard [_]: the FD is only
    required to hold among tuples matching the [X]-pattern, and a constant
    in the [A] position additionally pins the value of [A] itself. CFDs
    with constants can be violated by a {e single} tuple, so the conflict
    structure is a graph plus a set of mandatory deletions — the
    vertex-cover view of Proposition 3.3 extends directly, giving an exact
    solver and a 2-approximation for optimal S-repairs under CFDs. (The
    dichotomy itself does not transfer; this module provides the machinery
    the paper's extension would need.) *)

open Repair_relational
open Repair_fd

type pattern_entry =
  | Const of Value.t
  | Any  (** the wildcard [_] *)

(** A conditional FD [(X → A, tp)]. *)
type t = private {
  embedded : Fd.t;  (** X → A with singleton rhs *)
  lhs_pattern : (Attr_set.attribute * pattern_entry) list;
      (** one entry per attribute of X *)
  rhs_pattern : pattern_entry;  (** entry for A *)
}

(** [make fd ~lhs_pattern ~rhs_pattern] builds a CFD.

    @raise Invalid_argument if the rhs of [fd] is not a single attribute or
    [lhs_pattern] does not cover exactly the lhs attributes. *)
val make :
  Fd.t ->
  lhs_pattern:(Attr_set.attribute * pattern_entry) list ->
  rhs_pattern:pattern_entry ->
  t

(** [of_fd fd] is the plain FD as a CFD (all wildcards). *)
val of_fd : Fd.t -> t

(** [parse s] parses e.g. ["country='UK' zip -> city = _"]: attributes
    optionally constrained with ['=' value]; values are read with
    {!Value.of_string}. *)
val parse : string -> t

(** [matches_lhs schema cfd t] — does tuple [t] match the X-pattern? *)
val matches_lhs : Schema.t -> t -> Tuple.t -> bool

(** [single_tuple_violation schema cfd t] — [t] matches the X-pattern but
    its [A]-value contradicts a constant rhs pattern. *)
val single_tuple_violation : Schema.t -> t -> Tuple.t -> bool

(** [pair_violation schema cfd t1 t2] — both match the X-pattern, agree on
    X, and disagree on A. *)
val pair_violation : Schema.t -> t -> Tuple.t -> Tuple.t -> bool

(** [satisfied_by cfds tbl] — no single-tuple and no pair violations. *)
val satisfied_by : t list -> Table.t -> bool

(** [optimal_s_repair cfds tbl] — exact optimal subset repair under CFDs:
    mandatory deletions (single-tuple violators) plus a minimum-weight
    vertex cover over the remaining conflict pairs. Exponential worst
    case, like {!Repair_srepair.S_exact}. *)
val optimal_s_repair : t list -> Table.t -> Table.t

(** [approx_s_repair cfds tbl] — the 2-approximation (the mandatory part
    is exact, the pairwise part is Bar-Yehuda–Even). *)
val approx_s_repair : t list -> Table.t -> Table.t

val pp : Format.formatter -> t -> unit
