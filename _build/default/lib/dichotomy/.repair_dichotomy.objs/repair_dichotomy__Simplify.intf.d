lib/dichotomy/simplify.mli: Attr_set Fd Fd_set Format Repair_fd Repair_relational
