lib/dichotomy/classify.mli: Attr_set Fd_set Format Repair_fd Repair_relational Simplify
