lib/dichotomy/factwise.mli: Attr_set Classify Fd_set Repair_fd Repair_relational Schema Table Tuple
