lib/dichotomy/simplify.ml: Attr_set Fd Fd_set Fmt List Repair_fd Repair_relational
