lib/dichotomy/factwise.ml: Attr_set Classify Fd_set List Printf Repair_fd Repair_relational Schema Table Tuple Value
