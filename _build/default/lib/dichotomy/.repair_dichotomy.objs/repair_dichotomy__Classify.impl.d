lib/dichotomy/classify.ml: Attr_set Fd_set Fmt List Option Repair_fd Repair_relational Simplify Stdlib
