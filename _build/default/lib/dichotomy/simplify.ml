open Repair_relational
open Repair_fd

type step =
  | Removed_trivial of Fd_set.t
  | Common_lhs of Attr_set.attribute
  | Consensus of Fd.t
  | Marriage of Attr_set.t * Attr_set.t

type trace = (step * Fd_set.t) list

type outcome = Tractable | Hard of Fd_set.t

let run d0 =
  (* Δ − X followed by silent removal of the FDs this made trivial, as in
     the paper's displayed derivations (Example 3.5). *)
  let shrink d x = Fd_set.remove_trivial (Fd_set.minus d x) in
  let rec loop d acc =
    if Fd_set.is_empty d then (Tractable, List.rev acc)
    else
      match Fd_set.common_lhs d with
      | Some a ->
        let d' = shrink d (Attr_set.singleton a) in
        loop d' ((Common_lhs a, d') :: acc)
      | None -> (
        match Fd_set.consensus_fd d with
        | Some fd ->
          let d' = shrink d (Fd.rhs fd) in
          loop d' ((Consensus fd, d') :: acc)
        | None -> (
          match Fd_set.lhs_marriage d with
          | Some (x1, x2) ->
            let d' = shrink d (Attr_set.union x1 x2) in
            loop d' ((Marriage (x1, x2), d') :: acc)
          | None -> (Hard d, List.rev acc)))
  in
  let trivial = Fd_set.filter Fd.is_trivial d0 in
  if Fd_set.is_empty trivial then loop d0 []
  else
    let d1 = Fd_set.remove_trivial d0 in
    let outcome, trace = loop d1 [] in
    (outcome, (Removed_trivial trivial, d1) :: trace)

let succeeds d = fst (run d) = Tractable

let pp_step ppf = function
  | Removed_trivial fds -> Fmt.pf ppf "(trivial: %a)" Fd_set.pp fds
  | Common_lhs a -> Fmt.pf ppf "(common lhs %s)" a
  | Consensus fd -> Fmt.pf ppf "(consensus %a)" Fd.pp fd
  | Marriage (x1, x2) ->
    Fmt.pf ppf "(lhs marriage (%a, %a))" Attr_set.pp x1 Attr_set.pp x2

let pp_trace ppf (d0, trace) =
  Fmt.pf ppf "@[<v>%a@," Fd_set.pp d0;
  List.iter
    (fun (step, d) ->
      Fmt.pf ppf "  %a ⇛ %a@," pp_step step Fd_set.pp d)
    trace;
  Fmt.pf ppf "@]"
