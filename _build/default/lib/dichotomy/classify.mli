(** Classification of unsimplifiable FD sets into the five classes of
    Figure 2 (Section 3.3, Lemma A.22).

    When [OSRSucceeds] fails, the residual Δ has at least two local minima
    (FDs with set-minimal lhs). Writing [X̂i = cl_Δ(Xi) ∖ Xi], the ordered
    pair falls into one of five classes, each admitting a fact-wise
    reduction from one of the four hard FD sets of Table 1:

    + class 1: [X̂2∩X1 = ∅], [X̂1∩cl(X2) = ∅] — from [Δ_{A→C←B}];
    + class 2: [X̂2∩X1 = ∅], [X̂1∩X̂2 ≠ ∅], [X̂1∩X2 = ∅] — from [Δ_{A→B→C}];
    + class 3: [X̂2∩X1 = ∅], [X̂1∩X2 ≠ ∅] — from [Δ_{A→B→C}];
    + class 4: [X̂2∩X1 ≠ ∅], [X̂1∩X2 ≠ ∅], [(X1∖X2) ⊆ X̂2], [(X2∖X1) ⊆ X̂1]
      (a third local minimum then exists) — from [Δ_{AB↔AC↔BC}];
    + class 5: [X̂2∩X1 ≠ ∅], [X̂1∩X2 ≠ ∅], [(X2∖X1) ⊄ X̂1] — from
      [Δ_{AB→C→B}]. *)

open Repair_relational
open Repair_fd

type source = From_a_c_b | From_a_b_c | From_triangle | From_ab_c_b

type certificate = {
  cls : int;  (** 1..5 *)
  x1 : Attr_set.t;
  x2 : Attr_set.t;
  x3 : Attr_set.t option;  (** the third local minimum, class 4 only *)
  source : source;  (** which Table-1 FD set reduces to Δ *)
}

(** [certify d] classifies an FD set on which no simplification applies.

    @raise Invalid_argument if a simplification still applies (the caller
    should run {!Simplify.run} to a fixpoint first) or [d] is trivial. *)
val certify : Fd_set.t -> certificate

(** [classify d] runs the full pipeline: [Tractable] with the
    simplification trace, or [Hard] with the stuck set and its
    certificate. *)
val classify :
  Fd_set.t ->
  [ `Tractable of Simplify.trace | `Hard of Fd_set.t * Simplify.trace * certificate ]

val source_name : source -> string
val pp_certificate : Format.formatter -> certificate -> unit
