open Repair_relational
open Repair_fd

type t = {
  source_schema : Schema.t;
  source_fds : Fd_set.t;
  target_schema : Schema.t;
  target_fds : Fd_set.t;
  map_tuple : Tuple.t -> Tuple.t;
}

let map_table r tbl =
  if not (Schema.equal (Table.schema tbl) r.source_schema) then
    invalid_arg "Factwise.map_table: wrong source schema";
  Table.fold
    (fun i t w acc -> Table.add ~id:i ~weight:w acc (r.map_tuple t))
    tbl
    (Table.empty r.target_schema)

let source_schema_abc = Schema.make "R" [ "A"; "B"; "C" ]

let source_fds_of = function
  | Classify.From_a_c_b -> Fd_set.parse "A -> C; B -> C"
  | Classify.From_a_b_c -> Fd_set.parse "A -> B; B -> C"
  | Classify.From_triangle -> Fd_set.parse "A B -> C; A C -> B; B C -> A"
  | Classify.From_ab_c_b -> Fd_set.parse "A B -> C; C -> B"

(* Build Π attribute by attribute: [rules] is an ordered list of
   (attribute-set, value constructor) cases; the first case whose set
   contains the attribute wins, [default] applies otherwise. *)
let tuple_mapper target_schema rules default =
  fun src ->
    let a = Tuple.get src 0 and b = Tuple.get src 1 and c = Tuple.get src 2 in
    let value_of attr =
      let rec pick = function
        | [] -> default (a, b, c)
        | (set, make) :: rest ->
          if Attr_set.mem attr set then make (a, b, c) else pick rest
      in
      pick rules
    in
    Tuple.make (List.map value_of (Schema.attributes target_schema))

let of_certificate target_schema d (cert : Classify.certificate) =
  let cl = Fd_set.closure_of d in
  let hat x = Attr_set.diff (cl x) x in
  let x1 = cert.x1 and x2 = cert.x2 in
  let inter = Attr_set.inter x1 x2 in
  let unit_ _ = Value.Unit in
  let fst3 (a, _, _) = a in
  let snd3 (_, b, _) = b in
  let thd3 (_, _, c) = c in
  let pair f g v = Value.pair (f v) (g v) in
  let rules, default =
    match cert.cls with
    | 1 ->
      (* Lemma A.14. *)
      ( [ (inter, unit_);
          (Attr_set.diff x1 x2, fst3);
          (Attr_set.diff x2 x1, snd3);
          (hat x1, pair fst3 thd3);
          (hat x2, pair snd3 thd3) ],
        pair fst3 snd3 )
    | 2 | 3 ->
      (* Lemma A.15 (covers both classes). *)
      ( [ (inter, unit_);
          (Attr_set.diff x1 x2, fst3);
          (Attr_set.diff x2 x1, snd3);
          (Attr_set.diff (hat x1) (cl x2), pair fst3 thd3);
          (hat x2, pair snd3 thd3) ],
        fst3 )
    | 4 ->
      (* Lemma A.16: uses three local minima. *)
      let x3 =
        match cert.x3 with
        | Some x3 -> x3
        | None -> invalid_arg "Factwise.of_certificate: class 4 needs X3"
      in
      let i123 = Attr_set.inter inter x3 in
      ( [ (i123, unit_);
          (Attr_set.diff (Attr_set.inter x1 x2) x3, fst3);
          (Attr_set.diff (Attr_set.inter x1 x3) x2, snd3);
          (Attr_set.diff (Attr_set.inter x2 x3) x1, thd3);
          (Attr_set.diff (Attr_set.diff x1 x2) x3, pair fst3 snd3);
          (Attr_set.diff (Attr_set.diff x2 x1) x3, pair fst3 thd3);
          (Attr_set.diff (Attr_set.diff x3 x1) x2, pair snd3 thd3) ],
        fun (a, b, c) -> Value.triple a b c )
    | 5 ->
      (* Lemma A.17. *)
      let x2m1 = Attr_set.diff x2 x1 in
      ( [ (inter, unit_);
          (Attr_set.diff x1 x2, thd3);
          (Attr_set.inter x2m1 (hat x1), snd3);
          (Attr_set.diff x2m1 (hat x1), pair fst3 snd3);
          (Attr_set.diff (hat x1) x2m1, pair snd3 thd3) ],
        fun (a, b, c) -> Value.triple a b c )
    | n -> invalid_arg (Printf.sprintf "Factwise.of_certificate: class %d" n)
  in
  {
    source_schema = source_schema_abc;
    source_fds = source_fds_of cert.source;
    target_schema;
    target_fds = d;
    map_tuple = tuple_mapper target_schema rules default;
  }

let minus_reduction schema d x =
  let map_tuple src =
    Tuple.make
      (List.mapi
         (fun i attr ->
           if Attr_set.mem attr x then Value.Unit else Tuple.get src i)
         (Schema.attributes schema))
  in
  {
    source_schema = schema;
    source_fds = Fd_set.minus d x;
    target_schema = schema;
    target_fds = d;
    map_tuple;
  }
