open Repair_relational
open Repair_fd

type source = From_a_c_b | From_a_b_c | From_triangle | From_ab_c_b

type certificate = {
  cls : int;
  x1 : Attr_set.t;
  x2 : Attr_set.t;
  x3 : Attr_set.t option;
  source : source;
}

let source_name = function
  | From_a_c_b -> "Δ_A→C←B"
  | From_a_b_c -> "Δ_A→B→C"
  | From_triangle -> "Δ_AB↔AC↔BC"
  | From_ab_c_b -> "Δ_AB→C→B"

let hat d x = Attr_set.diff (Fd_set.closure_of d x) x

(* The ordered-pair tests of Lemma A.22; [test_pair] returns the class and
   source when the pair (x1, x2) matches one of the five patterns. *)
let test_pair d x1 x2 =
  let x1h = hat d x1 and x2h = hat d x2 in
  let cl2 = Fd_set.closure_of d x2 in
  if Attr_set.disjoint x2h x1 then
    if Attr_set.disjoint x1h cl2 then Some (1, From_a_c_b, None)
    else if
      (not (Attr_set.disjoint x1h x2h)) && Attr_set.disjoint x1h x2
    then Some (2, From_a_b_c, None)
    else if not (Attr_set.disjoint x1h x2) then Some (3, From_a_b_c, None)
    else None
  else if not (Attr_set.disjoint x1h x2) then
    if not (Attr_set.subset (Attr_set.diff x2 x1) x1h) then
      Some (5, From_ab_c_b, None)
    else if
      Attr_set.subset (Attr_set.diff x1 x2) x2h
      && Attr_set.subset (Attr_set.diff x2 x1) x1h
    then Some (4, From_triangle, None)
    else None
  else None

let certify d =
  let d = Fd_set.remove_trivial d in
  if Fd_set.is_empty d then invalid_arg "Classify.certify: trivial FD set";
  if
    Fd_set.common_lhs d <> None
    || Fd_set.consensus_fd d <> None
    || Fd_set.lhs_marriage d <> None
  then invalid_arg "Classify.certify: a simplification still applies";
  let minima = Fd_set.local_minima d in
  let ordered_pairs =
    List.concat_map
      (fun x1 ->
        List.filter_map
          (fun x2 ->
            if Attr_set.equal x1 x2 then None else Some (x1, x2))
          minima)
      minima
  in
  let matched =
    List.filter_map
      (fun (x1, x2) ->
        Option.map (fun (cls, src, _) -> (cls, src, x1, x2)) (test_pair d x1 x2))
      ordered_pairs
  in
  (* Prefer the lowest class number for a deterministic, most-specific
     certificate. *)
  match List.sort (fun (a, _, _, _) (b, _, _, _) -> Stdlib.compare a b) matched with
  | [] ->
    invalid_arg
      (Fmt.str "Classify.certify: no class matched %a (unexpected)" Fd_set.pp d)
  | (cls, source, x1, x2) :: _ ->
    let x3 =
      if cls = 4 then
        List.find_opt
          (fun z -> not (Attr_set.equal z x1) && not (Attr_set.equal z x2))
          minima
      else None
    in
    if cls = 4 && x3 = None then
      invalid_arg "Classify.certify: class 4 without a third local minimum";
    { cls; x1; x2; x3; source }

let classify d =
  match Simplify.run d with
  | Simplify.Tractable, trace -> `Tractable trace
  | Simplify.Hard stuck, trace -> `Hard (stuck, trace, certify stuck)

let pp_certificate ppf c =
  Fmt.pf ppf "class %d (X1=%a, X2=%a%a) — fact-wise reduction from %s" c.cls
    Attr_set.pp c.x1 Attr_set.pp c.x2
    (fun ppf -> function
      | None -> ()
      | Some x3 -> Fmt.pf ppf ", X3=%a" Attr_set.pp x3)
    c.x3 (source_name c.source)
