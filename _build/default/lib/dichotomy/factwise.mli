(** Executable fact-wise reductions (Section 3.3, Lemmas A.14–A.18).

    A fact-wise reduction from (R, Δ) to (R', Δ') is an injective,
    polynomial-time tuple mapping Π that preserves consistency both ways;
    it yields a strict reduction between the optimal-S-repair problems
    (Lemma 3.7). We implement the concrete mappings used in the hardness
    proof, so the reductions can be exercised and property-tested rather
    than merely cited. *)

open Repair_relational
open Repair_fd

type t = {
  source_schema : Schema.t;
  source_fds : Fd_set.t;
  target_schema : Schema.t;
  target_fds : Fd_set.t;
  map_tuple : Tuple.t -> Tuple.t;
}

(** [map_table r tbl] applies [r.map_tuple] to every tuple, preserving ids
    and weights.

    @raise Invalid_argument if [tbl]'s schema is not the source schema. *)
val map_table : t -> Table.t -> Table.t

(** [of_certificate target_schema d cert] builds the Lemma A.14–A.17
    reduction from the hard Table-1 schema named by [cert.source] to
    [(target_schema, d)]; [d] must be the stuck FD set that produced
    [cert]. The source schema is R(A, B, C). *)
val of_certificate : Schema.t -> Fd_set.t -> Classify.certificate -> t

(** [minus_reduction schema d x] is the Lemma A.18 reduction from
    [(schema, Δ − X)] to [(schema, Δ)]: removed attributes are padded with
    the constant [⊙]. *)
val minus_reduction : Schema.t -> Fd_set.t -> Attr_set.t -> t
