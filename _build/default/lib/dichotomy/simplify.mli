(** Algorithm 2 ([OSRSucceeds]): the dichotomy test.

    Success or failure of [OptSRepair] depends only on Δ; this module
    simulates the simplification cases and records the trace, reproducing
    the derivations displayed in Example 3.5. By Theorem 3.4:

    - [Tractable]: an optimal S-repair is computable in PTIME;
    - [Hard]: the problem is APX-complete, even on unweighted,
      duplicate-free tables. *)

open Repair_relational
open Repair_fd

type step =
  | Removed_trivial of Fd_set.t  (** trivial FDs removed *)
  | Common_lhs of Attr_set.attribute  (** Δ := Δ − A *)
  | Consensus of Fd.t  (** consensus FD ∅ → X; Δ := Δ − X *)
  | Marriage of Attr_set.t * Attr_set.t  (** Δ := Δ − X1X2 *)

(** Each trace entry pairs the step applied with the FD set it produced. *)
type trace = (step * Fd_set.t) list

type outcome =
  | Tractable
  | Hard of Fd_set.t
      (** the fully-simplified, nontrivial FD set on which no rule applies *)

(** [run d] executes OSRSucceeds, returning the outcome and the full
    trace. Terminates in time polynomial in |Δ|. *)
val run : Fd_set.t -> outcome * trace

(** [succeeds d] is [true] iff [run d] is [Tractable]. *)
val succeeds : Fd_set.t -> bool

val pp_step : Format.formatter -> step -> unit

(** [pp_trace] renders an Example 3.5-style derivation:
    [{...} (common lhs) ⇛ {...} (consensus) ⇛ {}]. *)
val pp_trace : Format.formatter -> Fd_set.t * trace -> unit
