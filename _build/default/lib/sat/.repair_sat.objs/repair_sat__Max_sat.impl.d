lib/sat/max_sat.ml: Array Budget Cnf Random Repair_runtime
