lib/sat/max_sat.ml: Array Cnf Random
