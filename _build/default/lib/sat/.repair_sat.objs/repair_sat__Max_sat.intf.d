lib/sat/max_sat.mli: Cnf Repair_runtime
