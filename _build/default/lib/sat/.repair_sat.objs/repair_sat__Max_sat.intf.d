lib/sat/max_sat.mli: Cnf
