(** CNF formulas for the MAX-SAT source problems of the hardness proofs.

    The S-repair hardness for [Δ_{A→B→C}] and [Δ_{A→C←B}] is by reduction
    from MAX-2-SAT (Lemmas A.4/A.5); for [Δ_{AB→C→B}] from
    MAX-non-mixed-SAT, where every clause is all-positive or all-negative
    (Lemma A.13). *)

(** A literal: variable index (0-based) and polarity. *)
type literal = { var : int; positive : bool }

type clause = literal list

type t

(** [make ~n_vars clauses] builds a formula.

    @raise Invalid_argument if a variable index is out of range or a clause
    is empty. *)
val make : n_vars:int -> clause list -> t

val n_vars : t -> int
val n_clauses : t -> int
val clauses : t -> clause list

val pos : int -> literal
val neg : int -> literal

(** [eval_clause assignment c] — [assignment.(v)] is the truth value of
    variable [v]. *)
val eval_clause : bool array -> clause -> bool

(** [count_satisfied assignment f] counts satisfied clauses. *)
val count_satisfied : bool array -> t -> int

(** Every clause has exactly two literals. *)
val is_2cnf : t -> bool

(** Every clause is all-positive or all-negative (non-mixed). *)
val is_non_mixed : t -> bool

val pp : Format.formatter -> t -> unit
