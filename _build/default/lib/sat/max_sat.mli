(** MAX-SAT solvers: exact (for baselines) and local search (for scale). *)

(** [exact f] is [(assignment, k)] maximizing the number [k] of satisfied
    clauses, by exhaustive search over assignments — use only for
    [n_vars ≲ 22]. *)
val exact : Cnf.t -> bool array * int

(** [local_search ~seed ~restarts f] is a hill-climbing heuristic with
    random restarts; returns the best assignment found and its count. *)
val local_search : seed:int -> restarts:int -> Cnf.t -> bool array * int

(** [min_unsatisfied f] is [n_clauses − exact count]: the complement
    objective that the strict reductions of the paper preserve. *)
val min_unsatisfied : Cnf.t -> int
