(** MAX-SAT solvers: exact (for baselines) and local search (for scale). *)

(** [exact ?budget f] is [(assignment, k)] maximizing the number [k] of
    satisfied clauses, by exhaustive search over assignments — use only
    for [n_vars ≲ 22]. Each candidate assignment is a [budget] checkpoint
    (phase ["max-sat"]); exhaustion raises
    {!Repair_runtime.Repair_error.Budget_exhausted}. *)
val exact : ?budget:Repair_runtime.Budget.t -> Cnf.t -> bool array * int

(** [local_search ?budget ~seed ~restarts f] is a hill-climbing heuristic
    with random restarts (checkpoints under phase ["max-sat-local"]);
    returns the best assignment found and its count. *)
val local_search :
  ?budget:Repair_runtime.Budget.t ->
  seed:int ->
  restarts:int ->
  Cnf.t ->
  bool array * int

(** [min_unsatisfied ?budget f] is [n_clauses − exact count]: the
    complement objective that the strict reductions of the paper
    preserve. *)
val min_unsatisfied : ?budget:Repair_runtime.Budget.t -> Cnf.t -> int
