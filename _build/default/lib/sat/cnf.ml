type literal = { var : int; positive : bool }
type clause = literal list

type t = { n_vars : int; clauses : clause list }

let make ~n_vars clauses =
  List.iter
    (fun c ->
      if c = [] then invalid_arg "Cnf.make: empty clause";
      List.iter
        (fun l ->
          if l.var < 0 || l.var >= n_vars then
            invalid_arg "Cnf.make: variable out of range")
        c)
    clauses;
  { n_vars; clauses }

let n_vars f = f.n_vars
let n_clauses f = List.length f.clauses
let clauses f = f.clauses

let pos var = { var; positive = true }
let neg var = { var; positive = false }

let eval_literal assignment l =
  if l.positive then assignment.(l.var) else not assignment.(l.var)

let eval_clause assignment c = List.exists (eval_literal assignment) c

let count_satisfied assignment f =
  List.fold_left
    (fun acc c -> if eval_clause assignment c then acc + 1 else acc)
    0 f.clauses

let is_2cnf f = List.for_all (fun c -> List.length c = 2) f.clauses

let is_non_mixed f =
  List.for_all
    (fun c ->
      List.for_all (fun l -> l.positive) c
      || List.for_all (fun l -> not l.positive) c)
    f.clauses

let pp_literal ppf l =
  Fmt.pf ppf "%sx%d" (if l.positive then "" else "¬") l.var

let pp ppf f =
  Fmt.pf ppf "@[<h>%a@]"
    Fmt.(
      list ~sep:(any " ∧ ") (fun ppf c ->
          pf ppf "(%a)" (list ~sep:(any " ∨ ") pp_literal) c))
    f.clauses
