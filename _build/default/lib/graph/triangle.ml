type triangle = int * int * int

let enumerate g =
  let n = Graph.n_vertices g in
  let ts = ref [] in
  for u = 0 to n - 1 do
    let nu = Graph.neighbours g u in
    List.iter
      (fun v ->
        if v > u then
          List.iter
            (fun w -> if w > v && Graph.mem_edge g v w then ts := (u, v, w) :: !ts)
            nu)
      nu
  done;
  List.sort Stdlib.compare !ts

let edges_of (a, b, c) = [ (a, b); (a, c); (b, c) ]

module Eset = Set.Make (struct
  type t = int * int

  let compare = Stdlib.compare
end)

let edge_disjoint ts =
  let rec go seen = function
    | [] -> true
    | t :: rest ->
      let es = Eset.of_list (edges_of t) in
      Eset.disjoint es seen && go (Eset.union es seen) rest
  in
  go Eset.empty ts

let greedy_packing g =
  let rec go taken used = function
    | [] -> List.rev taken
    | t :: rest ->
      let es = Eset.of_list (edges_of t) in
      if Eset.disjoint es used then go (t :: taken) (Eset.union es used) rest
      else go taken used rest
  in
  go [] Eset.empty (enumerate g)

let max_packing g =
  let all = Array.of_list (enumerate g) in
  let n = Array.length all in
  let best = ref [] in
  let rec go i taken count used =
    (* Remaining triangles bound the achievable count. *)
    if count + (n - i) <= List.length !best then ()
    else if i = n then begin
      if count > List.length !best then best := List.rev taken
    end
    else begin
      let t = all.(i) in
      let es = Eset.of_list (edges_of t) in
      if Eset.disjoint es used then
        go (i + 1) (t :: taken) (count + 1) (Eset.union es used);
      go (i + 1) taken count used
    end
  in
  go 0 [] 0 Eset.empty;
  !best

let tripartite_of_parts p1 p2 p3 edge_list =
  let part v =
    if v < p1 then 0 else if v < p1 + p2 then 1 else 2
  in
  let g = Graph.create (p1 + p2 + p3) in
  List.iter
    (fun (u, v) ->
      if part u = part v then
        invalid_arg "Triangle.tripartite_of_parts: intra-part edge";
      Graph.add_edge g u v)
    edge_list;
  g
