(** Maximum flow / minimum cut (Dinic's algorithm).

    Substrate for the LP-based vertex-cover lower bound
    ({!Vertex_cover.lp_lower_bound}): the LP relaxation of weighted vertex
    cover is half-integral and computable as half the minimum weighted
    vertex cover of the bipartite double cover, which by König-style
    duality is a minimum s-t cut. Capacities are floats; [infinity] is a
    legal capacity. O(V²E) worst case — comfortably fast at conflict-graph
    scale. *)

type t

(** [create n] — a flow network on nodes [0 .. n-1]. *)
val create : int -> t

(** [add_edge net u v capacity] adds a directed edge (and its residual
    reverse edge of capacity 0).

    @raise Invalid_argument on negative capacity or bad nodes. *)
val add_edge : t -> int -> int -> float -> unit

(** [max_flow net ~source ~sink] computes the maximum flow value.
    Resets any previous flow first, so it can be called repeatedly.

    @raise Invalid_argument if [source = sink]. *)
val max_flow : t -> source:int -> sink:int -> float

(** [min_cut_side net ~source] — after {!max_flow}, the set of nodes
    reachable from [source] in the residual network (the source side of a
    minimum cut), sorted. *)
val min_cut_side : t -> source:int -> int list
