lib/graph/bipartite_matching.mli:
