lib/graph/max_flow.mli:
