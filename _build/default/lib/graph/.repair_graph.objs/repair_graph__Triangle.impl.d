lib/graph/triangle.ml: Array Graph List Set Stdlib
