lib/graph/vertex_cover.mli: Graph Repair_runtime
