lib/graph/bipartite_matching.ml: Array List Stdlib
