lib/graph/graph.ml: Array Fmt Int List Printf Set
