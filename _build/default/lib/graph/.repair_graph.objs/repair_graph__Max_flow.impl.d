lib/graph/max_flow.ml: Array List Queue
