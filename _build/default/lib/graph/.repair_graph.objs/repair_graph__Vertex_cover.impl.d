lib/graph/vertex_cover.ml: Array Graph Int List Max_flow Repair_runtime Set
