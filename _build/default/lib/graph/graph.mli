(** Simple undirected graphs with vertex weights.

    Vertices are integers [0 .. n-1]. Parallel edges and self-loops are
    rejected. This is the substrate for the vertex-cover view of subset
    repairs (Proposition 3.3) and for the hardness gadgets. *)

type t

(** [create n] is the edgeless graph on [n] vertices with unit weights. *)
val create : int -> t

(** [create_weighted weights] uses the given vertex weights.
    @raise Invalid_argument if a weight is not positive. *)
val create_weighted : float array -> t

(** [add_edge g u v] adds the undirected edge [{u, v}]; adding an existing
    edge is a no-op.
    @raise Invalid_argument on self-loops or out-of-range vertices. *)
val add_edge : t -> int -> int -> unit

(** [of_edges ?weights n edges] bulk-builds a graph. *)
val of_edges : ?weights:float array -> int -> (int * int) list -> t

val n_vertices : t -> int
val n_edges : t -> int
val weight : t -> int -> float
val total_weight : t -> float

(** [mem_edge g u v] tests edge presence (symmetric). *)
val mem_edge : t -> int -> int -> bool

(** Neighbours of a vertex, ascending. *)
val neighbours : t -> int -> int list

val degree : t -> int -> int
val max_degree : t -> int

(** Edges as pairs [(u, v)] with [u < v], lexicographic. *)
val edges : t -> (int * int) list

val fold_edges : ((int * int) -> 'a -> 'a) -> t -> 'a -> 'a

(** [subgraph_weight g vs] sums the weights of the listed vertices. *)
val subgraph_weight : t -> int list -> float

val pp : Format.formatter -> t -> unit
