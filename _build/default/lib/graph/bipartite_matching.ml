let validate w =
  let n1 = Array.length w in
  if n1 = 0 then 0
  else begin
    let n2 = Array.length w.(0) in
    Array.iter
      (fun row ->
        if Array.length row <> n2 then
          invalid_arg "Bipartite_matching: ragged matrix";
        Array.iter
          (fun x ->
            if x < 0.0 then
              invalid_arg "Bipartite_matching: negative weight")
          row)
      w;
    n2
  end

let matching_weight w pairs =
  List.fold_left (fun acc (i, j) -> acc +. w.(i).(j)) 0.0 pairs

let is_matching pairs =
  let rows = List.map fst pairs and cols = List.map snd pairs in
  let distinct xs = List.length (List.sort_uniq Stdlib.compare xs) = List.length xs in
  distinct rows && distinct cols

(* Hungarian algorithm (shortest augmenting paths with potentials), in its
   minimization form on a rows ≤ columns rectangular cost matrix; the
   classic O(n²m) implementation with 1-based arrays. *)
let hungarian_min cost n m =
  (* cost is n x m with n <= m; returns col_of_row array. *)
  let inf = infinity in
  let u = Array.make (n + 1) 0.0 in
  let v = Array.make (m + 1) 0.0 in
  let p = Array.make (m + 1) 0 in
  let way = Array.make (m + 1) 0 in
  for i = 1 to n do
    p.(0) <- i;
    let j0 = ref 0 in
    let minv = Array.make (m + 1) inf in
    let used = Array.make (m + 1) false in
    let continue = ref true in
    while !continue do
      used.(!j0) <- true;
      let i0 = p.(!j0) in
      let delta = ref inf in
      let j1 = ref 0 in
      for j = 1 to m do
        if not used.(j) then begin
          let cur = cost.(i0 - 1).(j - 1) -. u.(i0) -. v.(j) in
          if cur < minv.(j) then begin
            minv.(j) <- cur;
            way.(j) <- !j0
          end;
          if minv.(j) < !delta then begin
            delta := minv.(j);
            j1 := j
          end
        end
      done;
      for j = 0 to m do
        if used.(j) then begin
          u.(p.(j)) <- u.(p.(j)) +. !delta;
          v.(j) <- v.(j) -. !delta
        end
        else minv.(j) <- minv.(j) -. !delta
      done;
      j0 := !j1;
      if p.(!j0) = 0 then continue := false
    done;
    (* Augment along the alternating path. *)
    let j0 = ref !j0 in
    while !j0 <> 0 do
      let j1 = way.(!j0) in
      p.(!j0) <- p.(j1);
      j0 := j1
    done
  done;
  let col_of_row = Array.make n (-1) in
  for j = 1 to m do
    if p.(j) > 0 then col_of_row.(p.(j) - 1) <- j - 1
  done;
  col_of_row

let solve w =
  let n1 = Array.length w in
  let n2 = validate w in
  if n1 = 0 || n2 = 0 then ([], 0.0)
  else begin
    (* Maximize by minimizing the negated weights; append n1 zero-cost dummy
       columns so a row may profitably stay unmatched. *)
    let m = n2 + n1 in
    let cost =
      Array.init n1 (fun i ->
          Array.init m (fun j -> if j < n2 then -.w.(i).(j) else 0.0))
    in
    let col_of_row = hungarian_min cost n1 m in
    let pairs = ref [] in
    Array.iteri
      (fun i j -> if j >= 0 && j < n2 && w.(i).(j) > 0.0 then pairs := (i, j) :: !pairs)
      col_of_row;
    let pairs = List.rev !pairs in
    (pairs, matching_weight w pairs)
  end

let brute_force w =
  let n1 = Array.length w in
  let n2 = validate w in
  let best = ref ([], 0.0) in
  let rec go i used acc acc_w =
    if acc_w > snd !best then best := (List.rev acc, acc_w);
    if i < n1 then begin
      (* Leave row i unmatched. *)
      go (i + 1) used acc acc_w;
      for j = 0 to n2 - 1 do
        if (not (List.mem j used)) && w.(i).(j) > 0.0 then
          go (i + 1) (j :: used) ((i, j) :: acc) (acc_w +. w.(i).(j))
      done
    end
  in
  go 0 [] [] 0.0;
  !best
