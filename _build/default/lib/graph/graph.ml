module Iset = Set.Make (Int)

type t = {
  weights : float array;
  adj : Iset.t array;
  mutable n_edges : int;
}

let create_weighted weights =
  Array.iter
    (fun w ->
      if w <= 0.0 then invalid_arg "Graph.create_weighted: nonpositive weight")
    weights;
  {
    weights = Array.copy weights;
    adj = Array.make (Array.length weights) Iset.empty;
    n_edges = 0;
  }

let create n = create_weighted (Array.make n 1.0)

let check_vertex g v =
  if v < 0 || v >= Array.length g.weights then
    invalid_arg (Printf.sprintf "Graph: vertex %d out of range" v)

let add_edge g u v =
  check_vertex g u;
  check_vertex g v;
  if u = v then invalid_arg "Graph.add_edge: self-loop";
  if not (Iset.mem v g.adj.(u)) then begin
    g.adj.(u) <- Iset.add v g.adj.(u);
    g.adj.(v) <- Iset.add u g.adj.(v);
    g.n_edges <- g.n_edges + 1
  end

let of_edges ?weights n edge_list =
  let g =
    match weights with
    | Some w ->
      if Array.length w <> n then
        invalid_arg "Graph.of_edges: weights length mismatch";
      create_weighted w
    | None -> create n
  in
  List.iter (fun (u, v) -> add_edge g u v) edge_list;
  g

let n_vertices g = Array.length g.weights
let n_edges g = g.n_edges
let weight g v =
  check_vertex g v;
  g.weights.(v)

let total_weight g = Array.fold_left ( +. ) 0.0 g.weights

let mem_edge g u v =
  check_vertex g u;
  check_vertex g v;
  Iset.mem v g.adj.(u)

let neighbours g v =
  check_vertex g v;
  Iset.elements g.adj.(v)

let degree g v =
  check_vertex g v;
  Iset.cardinal g.adj.(v)

let max_degree g =
  let best = ref 0 in
  Array.iter (fun s -> best := max !best (Iset.cardinal s)) g.adj;
  !best

let fold_edges f g acc =
  let acc = ref acc in
  Array.iteri
    (fun u s -> Iset.iter (fun v -> if u < v then acc := f (u, v) !acc) s)
    g.adj;
  !acc

let edges g = List.rev (fold_edges (fun e acc -> e :: acc) g [])

let subgraph_weight g vs =
  List.fold_left (fun acc v -> acc +. weight g v) 0.0 vs

let pp ppf g =
  Fmt.pf ppf "graph(n=%d, m=%d, edges=[%a])" (n_vertices g) (n_edges g)
    Fmt.(list ~sep:(any "; ") (pair ~sep:(any ",") int int))
    (edges g)
