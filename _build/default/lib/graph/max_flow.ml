(* Dinic's algorithm with an adjacency-array edge list: edges are stored in
   pairs so that [e lxor 1] is the reverse edge of [e]. *)

type t = {
  n : int;
  mutable head : int array; (* edge target *)
  mutable cap : float array; (* residual capacity *)
  adj : int list array; (* edge indices leaving each node *)
  mutable n_edges : int;
  mutable level : int array;
  mutable iter : int list array;
  mutable original_cap : float array;
}

let create n =
  {
    n;
    head = Array.make 16 0;
    cap = Array.make 16 0.0;
    adj = Array.make n [];
    n_edges = 0;
    level = Array.make n (-1);
    iter = Array.make n [];
    original_cap = [||];
  }

let ensure_capacity net needed =
  let len = Array.length net.head in
  if needed > len then begin
    let len' = max needed (2 * len) in
    let head' = Array.make len' 0 and cap' = Array.make len' 0.0 in
    Array.blit net.head 0 head' 0 len;
    Array.blit net.cap 0 cap' 0 len;
    net.head <- head';
    net.cap <- cap'
  end

let add_edge net u v capacity =
  if capacity < 0.0 then invalid_arg "Max_flow.add_edge: negative capacity";
  if u < 0 || u >= net.n || v < 0 || v >= net.n then
    invalid_arg "Max_flow.add_edge: node out of range";
  ensure_capacity net (net.n_edges + 2);
  let e = net.n_edges in
  net.head.(e) <- v;
  net.cap.(e) <- capacity;
  net.head.(e + 1) <- u;
  net.cap.(e + 1) <- 0.0;
  net.adj.(u) <- e :: net.adj.(u);
  net.adj.(v) <- (e + 1) :: net.adj.(v);
  net.n_edges <- net.n_edges + 2

let bfs net source =
  Array.fill net.level 0 net.n (-1);
  net.level.(source) <- 0;
  let q = Queue.create () in
  Queue.add source q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun e ->
        let v = net.head.(e) in
        if net.cap.(e) > 1e-12 && net.level.(v) < 0 then begin
          net.level.(v) <- net.level.(u) + 1;
          Queue.add v q
        end)
      net.adj.(u)
  done

let rec dfs net u sink pushed =
  if u = sink then pushed
  else begin
    let rec try_edges () =
      match net.iter.(u) with
      | [] -> 0.0
      | e :: rest ->
        let v = net.head.(e) in
        if net.cap.(e) > 1e-12 && net.level.(v) = net.level.(u) + 1 then begin
          let d = dfs net v sink (min pushed net.cap.(e)) in
          if d > 1e-12 then begin
            net.cap.(e) <- net.cap.(e) -. d;
            net.cap.(e lxor 1) <- net.cap.(e lxor 1) +. d;
            d
          end
          else begin
            net.iter.(u) <- rest;
            try_edges ()
          end
        end
        else begin
          net.iter.(u) <- rest;
          try_edges ()
        end
    in
    try_edges ()
  end

let max_flow net ~source ~sink =
  if source = sink then invalid_arg "Max_flow.max_flow: source = sink";
  (* Reset residual capacities so repeated calls start fresh. *)
  if Array.length net.original_cap <> net.n_edges then
    net.original_cap <- Array.sub net.cap 0 net.n_edges
  else Array.blit net.original_cap 0 net.cap 0 net.n_edges;
  let flow = ref 0.0 in
  let continue = ref true in
  while !continue do
    bfs net source;
    if net.level.(sink) < 0 then continue := false
    else begin
      net.iter <- Array.copy net.adj;
      let rec push () =
        let f = dfs net source sink infinity in
        if f > 1e-12 then begin
          flow := !flow +. f;
          push ()
        end
      in
      push ()
    end
  done;
  !flow

let min_cut_side net ~source =
  bfs net source;
  let side = ref [] in
  for v = net.n - 1 downto 0 do
    if net.level.(v) >= 0 then side := v :: !side
  done;
  !side
