(** Weighted vertex cover: exact and 2-approximate.

    The paper reduces optimal S-repairing to minimum weighted vertex cover
    of the conflict graph (Proposition 3.3); the 2-approximation is the
    local-ratio algorithm of Bar-Yehuda and Even, and the exact solver
    (branch-and-bound) is our optimality baseline for small instances. *)

(** [is_cover g vs] holds iff [vs] touches every edge of [g]. *)
val is_cover : Graph.t -> int list -> bool

(** [approx2 g] is a vertex cover of weight at most twice the minimum, in
    time O(n + m) (Bar-Yehuda–Even local-ratio). Sorted ascending. *)
val approx2 : Graph.t -> int list

(** [greedy g] is the classic max-degree-first heuristic cover (no ratio
    guarantee for weighted instances; useful as a bound seed). *)
val greedy : Graph.t -> int list

(** [exact ?budget ?matching_bound g] is a minimum-weight vertex cover, by
    branch and bound on the heaviest uncovered edge with a greedy incumbent
    and — unless [matching_bound] is [false] (ablation) — a matching-based
    lower bound. Exponential in the worst case; intended for baseline
    checks on small graphs (tens of vertices). Sorted ascending.

    Every branch-and-bound node is a [budget] checkpoint (phase
    ["vertex-cover"]); on exhaustion the search raises
    {!Repair_runtime.Repair_error.Budget_exhausted}. *)
val exact :
  ?budget:Repair_runtime.Budget.t -> ?matching_bound:bool -> Graph.t -> int list

(** [cover_weight g vs] sums the cover's vertex weights. *)
val cover_weight : Graph.t -> int list -> float

(** [matching_lower_bound g] — the greedy-matching bound used inside
    {!exact}: the sum of [min(w u, w v)] over a maximal matching. *)
val matching_lower_bound : Graph.t -> float

(** [lp_lower_bound g] — the LP-relaxation bound: half the minimum-weight
    vertex cover of the bipartite double cover, computed as a minimum s-t
    cut ({!Max_flow}). Always at least the greedy-matching bound and at
    most the optimum; exact on bipartite graphs. *)
val lp_lower_bound : Graph.t -> float
