(** Triangles and edge-disjoint triangle packing.

    The APX-hardness of the FD set [Δ_{AB↔AC↔BC}] is proved by reduction
    from maximum edge-disjoint triangle packing in bounded-degree tripartite
    graphs (Lemma A.11, after Amini et al.). This module supplies the
    source problem: triangle enumeration, an exact packing solver for the
    baseline, and a greedy packing. *)

(** A triangle, as a sorted vertex triple. *)
type triangle = int * int * int

(** [enumerate g] lists all triangles of [g], each with sorted vertices,
    lexicographically. *)
val enumerate : Graph.t -> triangle list

(** [edge_disjoint ts] checks pairwise edge-disjointness. *)
val edge_disjoint : triangle list -> bool

(** [max_packing g] is a maximum-cardinality edge-disjoint set of
    triangles, by branch and bound (exponential; for small baselines). *)
val max_packing : Graph.t -> triangle list

(** [greedy_packing g] takes triangles first-fit — a 1/3-approximation. *)
val greedy_packing : Graph.t -> triangle list

(** [tripartite_of_parts p1 p2 p3 edges] builds a tripartite graph whose
    parts are [0..p1-1], [p1..p1+p2-1], [p1+p2..p1+p2+p3-1]; edges crossing
    within a part are rejected.

    @raise Invalid_argument if an edge stays inside one part. *)
val tripartite_of_parts : int -> int -> int -> (int * int) list -> Graph.t
