(** Maximum-weight bipartite matching.

    Subroutine [MarriageRep] of Algorithm 1 reduces the lhs-marriage case to
    a maximum-weight matching of a weighted bipartite graph; the paper notes
    that the Hungarian algorithm solves it in polynomial time. We implement
    the O(n³) shortest-augmenting-path form with potentials, allowing
    vertices to stay unmatched (via zero-cost dummy columns), plus a
    brute-force reference for testing. *)

(** [solve w] takes an [n1 × n2] weight matrix (nonnegative entries;
    [w.(i).(j) = 0.] means "no edge / worthless edge") and returns a
    maximum-weight matching as a list of [(i, j)] pairs with positive
    weight, each row and column used at most once, together with its total
    weight.

    @raise Invalid_argument on ragged or negatively-weighted input. *)
val solve : float array array -> (int * int) list * float

(** [brute_force w] is the same by exhaustive search — exponential, for
    cross-checking on small matrices. *)
val brute_force : float array array -> (int * int) list * float

(** [matching_weight w pairs] sums [w.(i).(j)] over the pairs. *)
val matching_weight : float array array -> (int * int) list -> float

(** [is_matching pairs] checks that no row or column repeats. *)
val is_matching : (int * int) list -> bool
