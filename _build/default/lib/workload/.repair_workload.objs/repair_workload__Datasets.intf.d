lib/workload/datasets.mli: Fd_set Repair_fd Repair_relational Schema Table
