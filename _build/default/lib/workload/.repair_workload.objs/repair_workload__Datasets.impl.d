lib/workload/datasets.ml: Fd Fd_set Gen_table List Printf Repair_fd Repair_relational Rng Schema Table Tuple Value
