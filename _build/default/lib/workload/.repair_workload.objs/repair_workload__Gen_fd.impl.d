lib/workload/gen_fd.ml: Array Attr_set Fd Fd_set List Printf Repair_fd Repair_relational Rng Schema
