lib/workload/gen_table.mli: Fd_set Repair_fd Repair_relational Rng Schema Table
