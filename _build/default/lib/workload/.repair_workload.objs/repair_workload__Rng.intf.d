lib/workload/rng.mli:
