lib/workload/gen_fd.mli: Fd_set Repair_fd Repair_relational Rng Schema
