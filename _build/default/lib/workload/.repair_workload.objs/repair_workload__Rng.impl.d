lib/workload/rng.ml: Array Float List Random
