lib/workload/gen_table.ml: Fd Fd_set Fun Hashtbl List Repair_fd Repair_relational Rng Schema Table Tuple Value
