(** The paper's worked examples, as ready-made schemas, FD sets and
    tables. All references are to Livshits–Kimelfeld–Roy (PODS'18). *)

open Repair_relational
open Repair_fd

(** {1 The running example (Figures 1a-1g, Examples 2.1-2.3)} *)

(** [Office(facility, room, floor, city)]. *)
val office_schema : Schema.t

(** [Δ = {facility → city, facility room → floor}]. *)
val office_fds : Fd_set.t

(** Figure 1(a): the inconsistent table [T] (weights 2,1,1,2). *)
val office_table : Table.t

(** Figures 1(b)-(d): consistent subsets S1, S2, S3 with
    [dist_sub] 2, 2, 3. *)
val office_s1 : Table.t

val office_s2 : Table.t
val office_s3 : Table.t

(** Figures 1(e)-(g): consistent updates U1, U2, U3 with
    [dist_upd] 2, 3, 4. *)
val office_u1 : Table.t

val office_u2 : Table.t
val office_u3 : Table.t

(** {1 FD sets from the introduction and Section 3} *)

(** [Δ0 = {product → price, buyer → email}] over
    Purchase(product, price, buyer, email, address). *)
val purchase_schema : Schema.t

val delta0 : Fd_set.t

(** [Δ3 = {email → buyer, buyer → address}] (hard for both repairs). *)
val delta3 : Fd_set.t

(** [Δ4 = {buyer → email, email → buyer, buyer → address}] (tractable for
    S-repairs, APX-complete for U-repairs). *)
val delta4 : Fd_set.t

(** Example 3.1: [Δ_{A↔B→C} = {A → B, B → A, B → C}] over R(A,B,C). *)
val r3_schema : Schema.t

val delta_a_b_c_marriage : Fd_set.t

(** Example 3.1: the employee FD set Δ1 over
    R(ssn, first, last, address, office, phone, fax). *)
val employee_schema : Schema.t

val delta_ssn : Fd_set.t

(** {1 Table 1: the four hard FD sets over R(A,B,C)} *)

val delta_a_to_b_to_c : Fd_set.t (* A → B, B → C *)
val delta_a_to_c_from_b : Fd_set.t (* A → C, B → C *)
val delta_ab_to_c_to_b : Fd_set.t (* AB → C, C → B *)
val delta_ab_ac_bc : Fd_set.t (* AB → C, AC → B, BC → A *)

(** All four, with their display names. *)
val table1 : (string * Fd_set.t) list

(** {1 Example 4.7 FD sets} *)

(** [{id country → passport, id passport → country}]. *)
val delta_passport : Fd_set.t

val passport_schema : Schema.t

(** [{state city → zip, state zip → country}]. *)
val delta_zip : Fd_set.t

val zip_schema : Schema.t

(** {1 Section 4.4 families} *)

(** [Δ_k = {A0…Ak → B0, B0 → C, B1 → A0, …, Bk → A0}] over
    R(A0..Ak, B0..Bk, C). Returns (schema, FD set). *)
val delta_k : int -> Schema.t * Fd_set.t

(** [Δ'_k = {A0 A1 → B0, A1 A2 → B1, …, Ak Ak+1 → Bk}] over
    R(A0..Ak+1, B0..Bk). Returns (schema, FD set). *)
val delta'_k : int -> Schema.t * Fd_set.t

(** {1 A realistic embedded workload} *)

(** [hospital ~n ~seed ()] is a deterministic dirty "provider directory"
    table in the style of the classic data-cleaning benchmarks:
    HospitalInfo(provider, hospital, city, state, zip, phone) with

    [Δ_hospital = {provider → hospital phone, zip → city state,
    hospital city → zip}]

    generated consistent and then perturbed with ~3% cell noise. The FD
    set is a chain-free mix: tractable for S-repairs? No — it fails
    OSRSucceeds — making it a realistic stress case for the approximation
    and dirtiness machinery. Defaults: n = 500, seed = 2018. *)
val hospital : ?n:int -> ?seed:int -> unit -> Table.t

val hospital_schema : Schema.t
val hospital_fds : Fd_set.t

(** {1 Example 3.8: representatives of the five hardness classes} *)

(** Class index (1..5) paired with schema and FD set, exactly as in
    Example 3.8. *)
val class_examples : (int * Schema.t * Fd_set.t) list
