(** Random table generators.

    The paper's experiments are over arbitrary tables; these generators
    produce instances with controllable size, skew, weighting, duplicate
    rate, and — most importantly — violation structure: a table is first
    generated {e consistent} with Δ (by functionally deriving determined
    attributes), then noise is injected by perturbing individual cells, so
    that the "dirtiness" level is a parameter. *)

open Repair_relational
open Repair_fd

type spec = {
  n : int;  (** number of tuples *)
  domain_size : int;  (** values per attribute pool *)
  zipf_s : float;  (** skew of value choice; 0.0 = uniform *)
  noise : float;  (** probability that a cell is perturbed *)
  weighted : bool;  (** integer weights in 1..5 instead of unit *)
  duplicate_rate : float;  (** probability a tuple copies an earlier one *)
}

val default : spec

(** [consistent rng schema d spec] generates a table satisfying [d]:
    attribute values are drawn left to right; when a prefix of drawn
    attributes already fixes an attribute via some FD of [d] and an earlier
    tuple shares that lhs value, the forced value is copied. *)
val consistent : Rng.t -> Schema.t -> Fd_set.t -> spec -> Table.t

(** [dirty rng schema d spec] is [consistent] followed by cell noise:
    each cell is redrawn with probability [spec.noise]. *)
val dirty : Rng.t -> Schema.t -> Fd_set.t -> spec -> Table.t

(** [uniform rng schema spec] ignores the FDs entirely — fully random
    tables (the adversarial case). *)
val uniform : Rng.t -> Schema.t -> spec -> Table.t
