open Repair_relational
open Repair_fd

type spec = {
  n : int;
  domain_size : int;
  zipf_s : float;
  noise : float;
  weighted : bool;
  duplicate_rate : float;
}

let default =
  {
    n = 100;
    domain_size = 10;
    zipf_s = 0.0;
    noise = 0.05;
    weighted = false;
    duplicate_rate = 0.0;
  }

let draw_value rng spec =
  let v =
    if spec.zipf_s > 0.0 then Rng.zipf rng ~n:spec.domain_size ~s:spec.zipf_s
    else Rng.in_range rng 1 spec.domain_size
  in
  Value.int v

let draw_weight rng spec =
  if spec.weighted then float_of_int (Rng.in_range rng 1 5) else 1.0

let random_tuple rng schema spec =
  Tuple.make (List.init (Schema.arity schema) (fun _ -> draw_value rng spec))

(* Rewrite a candidate tuple so that whenever its lhs projection matches an
   already-stored combination, the rhs values are copied from the store;
   iterate to a fixpoint (FDs interact through shared attributes). *)
let chase schema fds store tuple =
  let apply tuple fd =
    let key = Tuple.project schema tuple (Fd.lhs fd) in
    match Hashtbl.find_opt store (Fd.lhs fd, key) with
    | None -> tuple
    | Some rhs_tuple ->
      (* Attribute order must match Tuple.project's (schema position). *)
      let rhs_attrs =
        Schema.indices_of schema (Fd.rhs fd)
        |> List.map (Schema.attribute_at schema)
      in
      List.fold_left2
        (fun acc a value -> Tuple.set_attr schema acc a value)
        tuple rhs_attrs (Tuple.values rhs_tuple)
  in
  let step tuple = List.fold_left apply tuple fds in
  let rec fix tuple budget =
    if budget = 0 then tuple
    else
      let tuple' = step tuple in
      if Tuple.equal tuple tuple' then tuple else fix tuple' (budget - 1)
  in
  fix tuple (4 * (List.length fds + 1))

let consistent_with schema fds store tuple =
  List.for_all
    (fun fd ->
      let key = Tuple.project schema tuple (Fd.lhs fd) in
      match Hashtbl.find_opt store (Fd.lhs fd, key) with
      | None -> true
      | Some rhs ->
        Tuple.equal (Tuple.project schema tuple (Fd.rhs fd)) rhs)
    fds

let record schema fds store tuple =
  List.iter
    (fun fd ->
      let key = Tuple.project schema tuple (Fd.lhs fd) in
      if not (Hashtbl.mem store (Fd.lhs fd, key)) then
        Hashtbl.add store (Fd.lhs fd, key)
          (Tuple.project schema tuple (Fd.rhs fd)))
    fds

let consistent rng schema d spec =
  let fds = Fd_set.to_list (Fd_set.remove_trivial d) in
  let store = Hashtbl.create 64 in
  let accepted = ref [] in
  let n_accepted = ref 0 in
  let rec fresh_tuple retries =
    let candidate = chase schema fds store (random_tuple rng schema spec) in
    if consistent_with schema fds store candidate then candidate
    else if retries > 0 then fresh_tuple (retries - 1)
    else
      (* Fall back on duplicating an existing tuple: always consistent. *)
      match !accepted with
      | [] -> candidate (* empty store cannot actually conflict *)
      | ts -> Rng.pick rng ts
  in
  let tbl = ref (Table.empty schema) in
  while !n_accepted < spec.n do
    let tuple =
      if !accepted <> [] && Rng.bernoulli rng spec.duplicate_rate then
        Rng.pick rng !accepted
      else fresh_tuple 5
    in
    record schema fds store tuple;
    accepted := tuple :: !accepted;
    incr n_accepted;
    tbl := Table.add ~weight:(draw_weight rng spec) !tbl tuple
  done;
  !tbl

let perturb rng schema spec tbl =
  Table.map_tuples tbl (fun _ tuple ->
      List.fold_left
        (fun acc i ->
          if Rng.bernoulli rng spec.noise then
            Tuple.set acc i (draw_value rng spec)
          else acc)
        tuple
        (List.init (Schema.arity schema) Fun.id))

let dirty rng schema d spec = perturb rng schema spec (consistent rng schema d spec)

let uniform rng schema spec =
  let tbl = ref (Table.empty schema) in
  for _ = 1 to spec.n do
    tbl := Table.add ~weight:(draw_weight rng spec) !tbl (random_tuple rng schema spec)
  done;
  !tbl
