open Repair_relational
open Repair_fd

let attr i = Printf.sprintf "A%d" i

let schema k = Schema.make "R" (List.init k (fun i -> attr (i + 1)))

let random rng ~n_attrs ~n_fds ~max_lhs =
  let s = schema n_attrs in
  let attrs = Schema.attributes s in
  let draw_fd () =
    let lhs_size = Rng.in_range rng 1 (min max_lhs (n_attrs - 1)) in
    let shuffled = Rng.shuffle rng attrs in
    let lhs = Attr_set.of_list (List.filteri (fun i _ -> i < lhs_size) shuffled) in
    let rhs_candidates = List.filter (fun a -> not (Attr_set.mem a lhs)) attrs in
    Fd.make lhs (Attr_set.singleton (Rng.pick rng rhs_candidates))
  in
  (s, Fd_set.of_list (List.init n_fds (fun _ -> draw_fd ())))

let chain rng ~n_attrs ~n_fds =
  let s = schema n_attrs in
  let attrs = Array.of_list (Schema.attributes s) in
  (* Build nested lhs's: X1 ⊆ X2 ⊆ ... by extending a random permutation. *)
  let order = Rng.shuffle rng (Array.to_list attrs) in
  let fds =
    List.init n_fds (fun i ->
        let lhs_size = min (i + 1) (n_attrs - 1) in
        let lhs = Attr_set.of_list (List.filteri (fun j _ -> j < lhs_size) order) in
        let rhs_pool =
          List.filter (fun a -> not (Attr_set.mem a lhs)) (Array.to_list attrs)
        in
        Fd.make lhs (Attr_set.singleton (Rng.pick rng rhs_pool)))
  in
  (s, Fd_set.of_list fds)

let common_lhs rng ~n_attrs ~n_fds =
  let s = schema n_attrs in
  let attrs = Schema.attributes s in
  let shared = attr 1 in
  let fds =
    List.init n_fds (fun _ ->
        let extra =
          if Rng.bool rng && n_attrs > 2 then
            [ Rng.pick rng (List.filter (fun a -> a <> shared) attrs) ]
          else []
        in
        let lhs = Attr_set.of_list (shared :: extra) in
        let rhs_pool = List.filter (fun a -> not (Attr_set.mem a lhs)) attrs in
        Fd.make lhs (Attr_set.singleton (Rng.pick rng rhs_pool)))
  in
  (s, Fd_set.of_list fds)

let marriage n_extra =
  let cs = List.init n_extra (fun i -> Printf.sprintf "C%d" (i + 1)) in
  let s = Schema.make "R" ([ "A"; "B" ] @ cs) in
  let fds =
    Fd.of_lists [ "A" ] [ "B" ]
    :: Fd.of_lists [ "B" ] [ "A" ]
    :: List.map (fun c -> Fd.of_lists [ "B" ] [ c ]) cs
  in
  (s, Fd_set.of_list fds)

let two_unary () =
  let s = Schema.make "R" [ "A"; "B" ] in
  (s, Fd_set.parse "A -> B; B -> A")
