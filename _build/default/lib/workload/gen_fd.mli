(** Random FD-set generators for property tests and sweeps. *)

open Repair_relational
open Repair_fd

(** [schema k] is R(A1, ..., Ak). *)
val schema : int -> Schema.t

(** [random rng ~n_attrs ~n_fds ~max_lhs] draws nontrivial FDs with lhs
    size in [1..max_lhs] and a singleton rhs outside the lhs. *)
val random : Rng.t -> n_attrs:int -> n_fds:int -> max_lhs:int -> Schema.t * Fd_set.t

(** [chain rng ~n_attrs ~n_fds] draws a chain FD set: the lhs's form an
    inclusion chain (always tractable, Corollaries 3.6 and 4.8). *)
val chain : Rng.t -> n_attrs:int -> n_fds:int -> Schema.t * Fd_set.t

(** [common_lhs rng ~n_attrs ~n_fds] draws FDs all sharing attribute A1 on
    the left. Tractability then coincides for S- and U-repairs
    (Corollary 4.6). *)
val common_lhs : Rng.t -> n_attrs:int -> n_fds:int -> Schema.t * Fd_set.t

(** [marriage n_extra] is [{A → B, B → A, B → C1, ..., B → Cn}] — an
    lhs-marriage family on 2+n attributes. *)
val marriage : int -> Schema.t * Fd_set.t

(** [two_unary ()] is ({A,B} schema, [{A → B, B → A}]) — Proposition 4.9's
    set. *)
val two_unary : unit -> Schema.t * Fd_set.t
