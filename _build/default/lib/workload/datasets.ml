open Repair_relational
open Repair_fd

let v = Value.str
let vi = Value.int

let office_schema =
  Schema.make "Office" [ "facility"; "room"; "floor"; "city" ]

let office_fds =
  Fd_set.of_list
    [ Fd.of_lists [ "facility" ] [ "city" ];
      Fd.of_lists [ "facility"; "room" ] [ "floor" ] ]

let office_row facility room floor city =
  Tuple.make [ v facility; v room; vi floor; v city ]

let office_table =
  Table.of_list office_schema
    [ (1, 2.0, office_row "HQ" "322" 3 "Paris");
      (2, 1.0, office_row "HQ" "322" 30 "Madrid");
      (3, 1.0, office_row "HQ" "122" 1 "Madrid");
      (4, 2.0, office_row "Lab1" "B35" 3 "London") ]

let office_s1 = Table.remove office_table [ 1 ]
let office_s2 = Table.remove office_table [ 2; 3 ]
let office_s3 = Table.remove office_table [ 1; 2 ]

let office_u1 =
  Table.set_tuple office_table 1 (office_row "F01" "322" 3 "Paris")

let office_u2 =
  let t = Table.set_tuple office_table 2 (office_row "HQ" "322" 3 "Paris") in
  Table.set_tuple t 3 (office_row "HQ" "122" 1 "Paris")

let office_u3 =
  Table.set_tuple office_table 1 (office_row "HQ" "322" 30 "Madrid")

let purchase_schema =
  Schema.make "Purchase" [ "product"; "price"; "buyer"; "email"; "address" ]

let delta0 =
  Fd_set.of_list
    [ Fd.of_lists [ "product" ] [ "price" ]; Fd.of_lists [ "buyer" ] [ "email" ] ]

let delta3 =
  Fd_set.of_list
    [ Fd.of_lists [ "email" ] [ "buyer" ];
      Fd.of_lists [ "buyer" ] [ "address" ] ]

let delta4 =
  Fd_set.of_list
    [ Fd.of_lists [ "buyer" ] [ "email" ];
      Fd.of_lists [ "email" ] [ "buyer" ];
      Fd.of_lists [ "buyer" ] [ "address" ] ]

let r3_schema = Schema.make "R" [ "A"; "B"; "C" ]

let delta_a_b_c_marriage = Fd_set.parse "A -> B; B -> A; B -> C"

let employee_schema =
  Schema.make "Employee"
    [ "ssn"; "first"; "last"; "address"; "office"; "phone"; "fax" ]

let delta_ssn =
  Fd_set.parse
    "ssn -> first; ssn -> last; first last -> ssn; ssn -> address; ssn \
     office -> phone; ssn office -> fax"

let delta_a_to_b_to_c = Fd_set.parse "A -> B; B -> C"
let delta_a_to_c_from_b = Fd_set.parse "A -> C; B -> C"
let delta_ab_to_c_to_b = Fd_set.parse "A B -> C; C -> B"
let delta_ab_ac_bc = Fd_set.parse "A B -> C; A C -> B; B C -> A"

let table1 =
  [ ("Δ_A→B→C", delta_a_to_b_to_c);
    ("Δ_A→C←B", delta_a_to_c_from_b);
    ("Δ_AB→C→B", delta_ab_to_c_to_b);
    ("Δ_AB↔AC↔BC", delta_ab_ac_bc) ]

let passport_schema = Schema.make "Travel" [ "id"; "country"; "passport" ]

let delta_passport =
  Fd_set.parse "id country -> passport; id passport -> country"

let zip_schema = Schema.make "Address" [ "state"; "city"; "zip"; "country" ]
let delta_zip = Fd_set.parse "state city -> zip; state zip -> country"

let attr_range prefix lo hi =
  List.init (hi - lo + 1) (fun i -> Printf.sprintf "%s%d" prefix (lo + i))

let delta_k k =
  if k < 1 then invalid_arg "Datasets.delta_k: k must be >= 1";
  let a_attrs = attr_range "A" 0 k and b_attrs = attr_range "B" 0 k in
  let schema = Schema.make "Rk" (a_attrs @ b_attrs @ [ "C" ]) in
  let fds =
    Fd.of_lists a_attrs [ "B0" ]
    :: Fd.of_lists [ "B0" ] [ "C" ]
    :: List.map (fun bi -> Fd.of_lists [ bi ] [ "A0" ]) (attr_range "B" 1 k)
  in
  (schema, Fd_set.of_list fds)

let delta'_k k =
  if k < 1 then invalid_arg "Datasets.delta'_k: k must be >= 1";
  let a_attrs = attr_range "A" 0 (k + 1) and b_attrs = attr_range "B" 0 k in
  let schema = Schema.make "R'k" (a_attrs @ b_attrs) in
  let fds =
    List.init (k + 1) (fun i ->
        Fd.of_lists
          [ Printf.sprintf "A%d" i; Printf.sprintf "A%d" (i + 1) ]
          [ Printf.sprintf "B%d" i ])
  in
  (schema, Fd_set.of_list fds)

let hospital_schema =
  Schema.make "HospitalInfo"
    [ "provider"; "hospital"; "city"; "state"; "zip"; "phone" ]

let hospital_fds =
  Fd_set.parse
    "provider -> hospital phone; zip -> city state; hospital city -> zip"

let hospital ?(n = 500) ?(seed = 2018) () =
  let rng = Rng.make seed in
  Gen_table.dirty rng hospital_schema hospital_fds
    { Gen_table.default with n; domain_size = max 8 (n / 12); noise = 0.03;
      zipf_s = 0.7 }

let class_examples =
  [ (1, Schema.make "R1" [ "A"; "B"; "C"; "D" ], Fd_set.parse "A -> B; C -> D");
    ( 2,
      Schema.make "R2" [ "A"; "B"; "C"; "D"; "E" ],
      Fd_set.parse "A -> C D; B -> C E" );
    (3, Schema.make "R3" [ "A"; "B"; "C"; "D" ], Fd_set.parse "A -> B C; B -> D");
    ( 4,
      Schema.make "R4" [ "A"; "B"; "C" ],
      Fd_set.parse "A B -> C; A C -> B; B C -> A" );
    (5, Schema.make "R5" [ "A"; "B"; "C"; "D" ], Fd_set.parse "A B -> C; C -> A D")
  ]
