type t = Random.State.t

let make seed = Random.State.make [| seed; 0x5ee0; seed * 31 + 7 |]
let int t bound = Random.State.int t (max 1 bound)
let in_range t lo hi = lo + int t (hi - lo + 1)
let bool = Random.State.bool
let float = Random.State.float
let bernoulli t p = Random.State.float t 1.0 < p

let pick t xs =
  match xs with
  | [] -> invalid_arg "Rng.pick: empty list"
  | _ -> List.nth xs (int t (List.length xs))

let shuffle t xs =
  let arr = Array.of_list xs in
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr

let zipf t ~n ~s =
  (* Inverse-CDF sampling over the finite harmonic weights. *)
  let weights = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) s) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let x = Random.State.float t total in
  let rec find i acc =
    if i >= n - 1 then n
    else
      let acc = acc +. weights.(i) in
      if x < acc then i + 1 else find (i + 1) acc
  in
  find 0 0.0

let split t = Random.State.make [| Random.State.bits t; Random.State.bits t |]
