(** Seeded random sources for reproducible workloads. *)

type t

val make : int -> t
val int : t -> int -> int

(** [in_range rng lo hi] draws uniformly from [lo..hi] inclusive. *)
val in_range : t -> int -> int -> int

val bool : t -> bool
val float : t -> float -> float

(** [bernoulli rng p] is true with probability [p]. *)
val bernoulli : t -> float -> bool

(** [pick rng xs] draws a uniform element.
    @raise Invalid_argument on empty list. *)
val pick : t -> 'a list -> 'a

(** [shuffle rng xs] is a uniform permutation. *)
val shuffle : t -> 'a list -> 'a list

(** [zipf rng ~n ~s] draws from [1..n] with probability ∝ 1/rank^s —
    skewed value distributions make FD violations realistic. *)
val zipf : t -> n:int -> s:float -> int

val split : t -> t
