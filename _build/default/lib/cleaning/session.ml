open Repair_relational
open Repair_fd

type operation =
  | Delete of Table.id
  | Update of Table.id * Schema.attribute * Value.t
  | Restore of Table.id

type t = {
  fds : Fd_set.t;
  original : Table.t;
  current : Table.t;
  log : operation list; (* newest first *)
}

let start fds original = { fds; original; current = original; log = [] }
let current s = s.current
let original s = s.original
let fds s = s.fds
let log s = List.rev s.log
let violations s = Fd_set.violations s.fds s.current
let is_clean s = Fd_set.satisfied_by s.fds s.current
let dirtiness s = Dirtiness.estimate s.fds s.current

let delete s i =
  if not (Table.mem s.current i) then
    invalid_arg (Printf.sprintf "Session.delete: tuple %d not present" i);
  { s with current = Table.remove s.current [ i ]; log = Delete i :: s.log }

let update s i a v =
  match Table.find_opt s.current i with
  | None ->
    invalid_arg (Printf.sprintf "Session.update: tuple %d not present" i)
  | Some (t, _) ->
    let schema = Table.schema s.current in
    if not (Schema.mem schema a) then
      invalid_arg (Printf.sprintf "Session.update: no attribute %s" a);
    {
      s with
      current = Table.set_tuple s.current i (Tuple.set_attr schema t a v);
      log = Update (i, a, v) :: s.log;
    }

let restore s i =
  match Table.find_opt s.original i with
  | None ->
    invalid_arg (Printf.sprintf "Session.restore: tuple %d never existed" i)
  | Some (t, w) ->
    let current =
      if Table.mem s.current i then Table.set_tuple s.current i t
      else Table.add ~id:i ~weight:w s.current t
    in
    { s with current; log = Restore i :: s.log }

let cost s =
  Table.fold
    (fun i t w acc ->
      match Table.find_opt s.current i with
      | None -> acc +. w (* deleted *)
      | Some (t', _) ->
        acc +. (w *. float_of_int (Tuple.hamming t t')))
    s.original 0.0

let small_enough tbl = Table.size tbl <= 64

let auto_finish ?(prefer = `Deletions) s =
  match prefer with
  | `Deletions -> (
    match Repair_srepair.Opt_s_repair.run s.fds s.current with
    | Ok repaired -> repaired
    | Error _ ->
      if small_enough s.current then Repair_srepair.S_exact.optimal s.fds s.current
      else Repair_srepair.S_approx.approx2 s.fds s.current)
  | `Updates -> (
    match Repair_urepair.Opt_u_repair.solve s.fds s.current with
    | Ok repaired -> repaired
    | Error _ ->
      if Table.size s.current * Schema.arity (Table.schema s.current) <= 18
      then Repair_urepair.U_exact.optimal s.fds s.current
      else fst (Repair_urepair.U_approx.best s.fds s.current))
