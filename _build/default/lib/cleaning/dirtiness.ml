open Repair_relational
open Repair_fd

type estimate = {
  conflicts : int;
  deletions_lower : float;
  deletions_upper : float;
  deletions_exact : bool;
  updates_lower : float;
  updates_upper : float;
  updates_exact : bool;
}

let estimate d tbl =
  let conflicts = List.length (Fd_set.violations d tbl) in
  let deletions_lower, deletions_upper, deletions_exact =
    match Repair_srepair.Opt_s_repair.distance d tbl with
    | Ok dist -> (dist, dist, true)
    | Error _ ->
      let apx = Repair_srepair.S_approx.distance d tbl in
      (apx /. 2.0, apx, false)
  in
  let updates_lower, updates_upper, updates_exact =
    match Repair_urepair.Opt_u_repair.distance d tbl with
    | Ok dist -> (dist, dist, true)
    | Error _ ->
      let u, ratio = Repair_urepair.U_approx.best d tbl in
      let achieved = Table.dist_upd u tbl in
      (* Two lower bounds: the certified ratio, and Corollary 4.5 via the
         S-repair lower bound. *)
      (max (achieved /. ratio) deletions_lower, achieved, false)
  in
  {
    conflicts;
    deletions_lower;
    deletions_upper;
    deletions_exact;
    updates_lower;
    updates_upper;
    updates_exact;
  }

let fraction_dirty e tbl =
  let total = Table.total_weight tbl in
  if total = 0.0 then 0.0 else e.deletions_upper /. total

let pp_bound ppf (lo, hi, exact) =
  if exact then Fmt.pf ppf "%g (exact)" hi else Fmt.pf ppf "[%g, %g]" lo hi

let pp ppf e =
  Fmt.pf ppf
    "@[<v>conflicting pairs : %d@,optimal deletions : %a@,optimal updates   \
     : %a@]"
    e.conflicts pp_bound
    (e.deletions_lower, e.deletions_upper, e.deletions_exact)
    pp_bound
    (e.updates_lower, e.updates_upper, e.updates_exact)
