(** Dirtiness estimation — the paper's second motivation (Section 1): in
    iterative, human-in-the-loop cleaning, the cost of an optimal repair
    estimates how dirty the database is and how much work cleaning will
    take.

    On the tractable side of the dichotomies the estimates are exact; on
    the hard side they are certified intervals: the 2-approximation gives
    [approx/2 ≤ opt ≤ approx] for deletions (Proposition 3.3), and the
    per-component certified ratio does the same for updates
    (Theorem 4.12), sharpened from below by Corollary 4.5
    (dist_upd ≥ dist_sub). *)

open Repair_relational
open Repair_fd

type estimate = {
  conflicts : int;  (** number of violating tuple pairs *)
  deletions_lower : float;
  deletions_upper : float;  (** bounds on the optimal S-repair distance *)
  deletions_exact : bool;
  updates_lower : float;
  updates_upper : float;  (** bounds on the optimal U-repair distance *)
  updates_exact : bool;
}

(** [estimate d tbl] computes the bounds; polynomial time always. *)
val estimate : Fd_set.t -> Table.t -> estimate

(** [fraction_dirty e tbl] is [deletions_upper / total weight]: the upper
    bound on the fraction of (weighted) data that must go. *)
val fraction_dirty : estimate -> Table.t -> float

val pp : Format.formatter -> estimate -> unit
