lib/cleaning/dirtiness.mli: Fd_set Format Repair_fd Repair_relational Table
