lib/cleaning/session.ml: Dirtiness Fd_set List Printf Repair_fd Repair_relational Repair_srepair Repair_urepair Schema Table Tuple Value
