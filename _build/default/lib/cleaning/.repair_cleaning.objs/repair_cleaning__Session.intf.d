lib/cleaning/session.mli: Dirtiness Fd Fd_set Repair_fd Repair_relational Schema Table Value
