lib/cleaning/dirtiness.ml: Fd_set Fmt List Repair_fd Repair_relational Repair_srepair Repair_urepair Table
