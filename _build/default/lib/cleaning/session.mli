(** Interactive cleaning sessions — the human-in-the-loop workflow of
    Section 1 (DANCE/QOCO/NADEEF-style), built on the repair machinery:

    the user inspects violations, deletes or edits individual tuples,
    undoes mistakes, watches the dirtiness estimate shrink, and finally
    lets the optimal-repair algorithms finish the residual cleaning.
    Sessions are persistent values: every operation returns a new session
    and the full history is kept. *)

open Repair_relational
open Repair_fd

type t

type operation =
  | Delete of Table.id
  | Update of Table.id * Schema.attribute * Value.t
  | Restore of Table.id  (** reset a tuple to its original state *)

(** [start d tbl] opens a session. *)
val start : Fd_set.t -> Table.t -> t

(** The table as currently edited. *)
val current : t -> Table.t

(** The untouched input. *)
val original : t -> Table.t

val fds : t -> Fd_set.t

(** Chronological operation log. *)
val log : t -> operation list

(** Remaining violating pairs in the current table. *)
val violations : t -> (Table.id * Table.id * Fd.t) list

val is_clean : t -> bool

(** Dirtiness estimate for the current table. *)
val dirtiness : t -> Dirtiness.estimate

(** [delete s i] removes a tuple.
    @raise Invalid_argument if [i] is not present. *)
val delete : t -> Table.id -> t

(** [update s i a v] edits one cell.
    @raise Invalid_argument if [i] was deleted / never existed, or [a] is
    not an attribute. *)
val update : t -> Table.id -> Schema.attribute -> Value.t -> t

(** [restore s i] brings a tuple back to its original value (also
    un-deletes it).
    @raise Invalid_argument for unknown ids. *)
val restore : t -> Table.id -> t

(** [cost s] is the weighted cost of the manual work so far: deleted
    tuples count their weight, edited cells count the tuple weight per
    changed cell (relative to the original; a delete after edits costs the
    deletion only). *)
val cost : t -> float

(** [auto_finish ?prefer s] completes the cleaning automatically on the
    current table — by deletions ([`Deletions], default) or updates
    ([`Updates]) — using the dichotomy-driven driver strategies
    (polynomial when possible, exact when small, else certified
    approximation) and returns the final consistent table. *)
val auto_finish : ?prefer:[ `Deletions | `Updates ] -> t -> Table.t
