Budgets and graceful degradation from the command line.

A table violating the APX-hard set Δ = {A → B, B → C}:

  $ cat > hard.csv <<'CSV'
  > #id,A,B,C
  > 1,1,1,1
  > 2,1,1,2
  > 3,1,2,1
  > CSV

Unbudgeted, the small instance goes to the exact baseline:

  $ repair-cli s-repair -f "A -> B; B -> C" hard.csv
  s-repair: distance=2 method=exact minimum-weight vertex cover (baseline) (optimal)
  #id,#weight,A,B,C
  3,1,1,2,1

With a one-step budget the exact search cannot finish; the driver
degrades to the certified 2-approximation and says so. The repair is
still consistent:

  $ repair-cli s-repair -f "A -> B; B -> C" --max-steps 1 hard.csv
  s-repair: distance=2 method=Bar-Yehuda–Even 2-approximation (Proposition 3.3) (within factor 2 of optimal) [degraded]
    fallback: exact minimum-weight vertex cover (baseline) failed (budget-exhausted) → Bar-Yehuda–Even 2-approximation (Proposition 3.3)
  #id,#weight,A,B,C
  3,1,1,2,1

Degradation is deterministic — same budget, same result:

  $ repair-cli s-repair -f "A -> B; B -> C" --max-steps 1 hard.csv 2>/dev/null
  #id,#weight,A,B,C
  3,1,1,2,1

Under --on-budget=fail the budget error surfaces with exit code 5:

  $ repair-cli s-repair -f "A -> B; B -> C" --max-steps 1 --on-budget=fail hard.csv
  repair-cli: budget exhausted in vertex-cover after 2 steps (0.000s)
  [5]

A zero wall-clock timeout exhausts at the first checkpoint:

  $ repair-cli s-repair -f "A -> B; B -> C" --timeout 0 --on-budget=fail hard.csv 2>&1 | grep -c "budget exhausted"
  1

Update repairs degrade the same way:

  $ repair-cli u-repair -f "A -> B; B -> C" --max-steps 1 hard.csv 1>/dev/null
  u-repair: distance=2 method=combined per-component approximation (Theorems 4.1/4.3/4.12) (within factor 4 of optimal) [degraded]
    fallback: bounded exhaustive search (baseline) failed (budget-exhausted) → combined per-component approximation (Theorems 4.1/4.3/4.12)

Asking for the polynomial algorithm on the hard side is an intractability
error (exit code 6), not a crash:

  $ repair-cli s-repair -f "A -> B; B -> C" --strategy poly --on-budget=fail hard.csv
  repair-cli: OptSRepair: intractable: no simplification applies to {A → B, B → C}
  [6]

Missing input files are I/O errors (exit code 3):

  $ repair-cli s-repair -f "A -> B" no-such-file.csv
  repair-cli: INPUT.csv argument: no 'no-such-file.csv' file or directory
  Usage: repair-cli s-repair [OPTION]… INPUT.csv
  Try 'repair-cli s-repair --help' or 'repair-cli --help' for more information.
  [124]
