Classify a tractable FD set (the paper's running example):

  $ repair-cli classify -f "facility -> city; facility room -> floor" | head -3
  Δ = {facility → city, facility room → floor}
  Optimal S-repair: polynomial time (OSRSucceeds holds).
  {facility → city, facility room → floor}

Classify a hard FD set:

  $ repair-cli classify -f "A -> B; B -> C" | grep -c "APX"
  2

Repair a CSV table by deletions (weights respected):

  $ cat > office.csv <<'CSV'
  > #id,#weight,facility,room,floor,city
  > 1,2,HQ,322,3,Paris
  > 2,1,HQ,322,30,Madrid
  > 3,1,HQ,122,1,Madrid
  > 4,2,Lab1,B35,3,London
  > CSV
  $ repair-cli s-repair -f "facility -> city; facility room -> floor" office.csv
  s-repair: distance=2 method=OptSRepair (Algorithm 1) (optimal)
  #id,#weight,facility,room,floor,city
  2,1,HQ,322,30,Madrid
  3,1,HQ,122,1,Madrid
  4,2,Lab1,B35,3,London

Repair by updates (one cell of tuple 1 moves to a fresh constant):

  $ repair-cli u-repair -f "facility -> city; facility room -> floor" office.csv
  u-repair: distance=2 method=tractable-case solver (Section 4) (optimal)
  #id,#weight,facility,room,floor,city
  1,2,$0,322,3,Paris
  2,1,HQ,322,30,Madrid
  3,1,HQ,122,1,Madrid
  4,2,Lab1,B35,3,London

Most probable database (probabilities as weights):

  $ cat > readings.csv <<'CSV'
  > #id,#weight,sensor,location
  > 1,0.9,s1,atrium
  > 2,0.6,s1,garage
  > 3,0.8,s2,roof
  > CSV
  $ repair-cli mpd -f "sensor -> location" readings.csv
  mpd: log-probability=-1.24479
  #id,#weight,sensor,location
  1,0.9,s1,atrium
  3,0.8,s2,roof

Errors are reported cleanly:

  $ repair-cli s-repair -f "A -> " office.csv
  repair-cli: <fds>: Fd.parse: empty right-hand side in "A ->"
  [2]

Generate a reproducible dirty table and repair it end to end:

  $ repair-cli generate -f "A -> B" -a "A B C" --size 5 --seed 3 --noise 0.2 --domain 3 -o gen.csv
  $ repair-cli s-repair -f "A -> B" gen.csv -o /dev/null
  s-repair: distance=2 method=OptSRepair (Algorithm 1) (optimal)
  $ repair-cli generate -f "A -> B" -a "A B" --size 3 --seed 1
  #id,#weight,A,B
  1,1,3,10
  2,1,1,10
  3,1,9,9

Consistent query answering over the inconsistent table:

  $ repair-cli cqa -f "facility -> city; facility room -> floor" -w "facility=HQ" -p "city" office.csv
  certain answers (0):
  possible answers (2):
    (Madrid)
    (Paris)
  $ repair-cli cqa -f "facility -> city; facility room -> floor" -w "facility=Lab1" -p "city" office.csv
  certain answers (1):
    (London)
  possible answers (1):
    (London)

Explanations for deletions:

  $ repair-cli s-repair -f "facility -> city; facility room -> floor" --explain office.csv -o /dev/null
  s-repair: distance=2 method=OptSRepair (Algorithm 1) (optimal)
    tuple 1 conflicts with 2 (facility → city), 2 (facility room → floor), 3 (facility → city)

Normal forms and decomposition:

  $ repair-cli normalize -f "facility -> city; facility room -> floor"
  attributes: city facility floor room
  BCNF: false; 3NF: false
  keys: facility room
  BCNF decomposition:
    R(city facility) with {facility → city}
    R(facility floor room) with {facility room → floor}
  3NF synthesis:
    R(city facility) with {facility → city}
    R(facility floor room) with {facility room → floor}

Dirtiness estimation:

  $ repair-cli dirtiness -f "facility -> city; facility room -> floor" office.csv
  conflicting pairs : 3
  optimal deletions : 2 (exact)
  optimal updates   : 2 (exact)
  fraction dirty (upper bound): 33.3%

JSON-lines round trip (format chosen by extension):

  $ repair-cli s-repair -f "facility -> city; facility room -> floor" office.csv -o office.jsonl
  s-repair: distance=2 method=OptSRepair (Algorithm 1) (optimal)
  $ cat office.jsonl
  {"#id": 2, "#weight": 1, "facility": "HQ", "room": 322, "floor": 30, "city": "Madrid"}
  {"#id": 3, "#weight": 1, "facility": "HQ", "room": 122, "floor": 1, "city": "Madrid"}
  {"#id": 4, "#weight": 2, "facility": "Lab1", "room": "B35", "floor": 3, "city": "London"}
  $ repair-cli dirtiness -f "facility -> city" office.jsonl
  conflicting pairs : 0
  optimal deletions : 0 (exact)
  optimal updates   : 0 (exact)
  fraction dirty (upper bound): 0.0%

Interactive cleaning session driven from stdin:

  $ printf 'violations\ndelete 1\ncost\nfinish updates\n' | repair-cli session -f "facility -> city; facility room -> floor" office.csv
  tuples 1 and 2 violate facility → city
  tuples 1 and 2 violate facility room → floor
  tuples 1 and 3 violate facility → city
  manual cost so far: 2
  #id,#weight,facility,room,floor,city
  2,1,HQ,322,30,Madrid
  3,1,HQ,122,1,Madrid
  4,2,Lab1,B35,3,London

Explaining an update repair cell by cell:

  $ repair-cli u-repair -f "facility -> city; facility room -> floor" --explain office.csv -o /dev/null
  u-repair: distance=2 method=tractable-case solver (Section 4) (optimal)
    tuple 1, facility: HQ → $0

Generate validates that FD attributes appear in the schema:

  $ repair-cli generate -f "A -> B" -a "A C" --size 3
  repair-cli: <args>: FD attributes B not in --attrs
  [2]

Armstrong relations from the command line:

  $ repair-cli armstrong -f "A -> B"
  #id,#weight,A,B
  1,1,0,0
  2,1,1,1
  3,1,2,0
