(* repair-fuzz — differential fuzzer: cross-checks the polynomial
   algorithms against exponential baselines on random instances. Exits
   nonzero (printing the failing seed) on the first discrepancy, so it can
   run in CI or overnight.

   Checks per trial:
     1. OptSRepair succeeds iff OSRSucceeds (Algorithm 1 vs Algorithm 2);
     2. when it succeeds, its distance matches the exact vertex-cover
        baseline, and the result is a consistent subset;
     3. the 2-approximation respects its bound;
     4. when the U-repair solver claims tractability, its distance matches
        the exhaustive update search (small instances);
     5. the combined U-approximation is consistent and within its
        certificate (small instances);
     6. enumerated S-repairs are exactly maximal consistent subsets, and
        the polynomial optimum count agrees on chain sets;
     7. MPD via the reduction matches brute force (small instances);
     8. under a random step budget with the degrade policy, the driver
        still returns a consistent repair, and the degraded flag agrees
        with the recorded fallback edges.  *)

open Cmdliner
module R = Repair_core.Repair
open R.Relational
open R.Fd
module Rng = R.Workload.Rng
module Gen_fd = R.Workload.Gen_fd
module Gen_table = R.Workload.Gen_table

let close a b = Float.abs (a -. b) < 1e-6

exception Found of string

let fail fmt = Fmt.kstr (fun m -> raise (Found m)) fmt

let check_s_repair d t =
  match R.Srepair.Opt_s_repair.run d t with
  | Ok s ->
    if not (R.Dichotomy.Simplify.succeeds d) then
      fail "OptSRepair succeeded but OSRSucceeds says hard: %a" Fd_set.pp d;
    if not (R.Srepair.S_check.is_consistent_subset d ~of_:t s) then
      fail "OptSRepair produced a non-subset or inconsistent result";
    let exact = R.Srepair.S_exact.distance d t in
    if not (close (Table.dist_sub s t) exact) then
      fail "OptSRepair distance %g != exact %g under %a" (Table.dist_sub s t)
        exact Fd_set.pp d
  | Error _ ->
    if R.Dichotomy.Simplify.succeeds d then
      fail "OptSRepair failed but OSRSucceeds says tractable: %a" Fd_set.pp d

let check_approx d t =
  let apx = R.Srepair.S_approx.distance d t in
  let exact = R.Srepair.S_exact.distance d t in
  if apx > (2.0 *. exact) +. 1e-6 then
    fail "2-approximation %g exceeds 2x optimum %g under %a" apx exact
      Fd_set.pp d

let check_u_repair d t =
  if Table.size t * Schema.arity (Table.schema t) <= 12 then
    match R.Urepair.Opt_u_repair.solve d t with
    | Ok u ->
      if not (Fd_set.satisfied_by d u) then
        fail "U-repair solver produced inconsistent update under %a"
          Fd_set.pp d;
      let exact = R.Urepair.U_exact.distance ~max_cells:12 d t in
      if not (close (Table.dist_upd u t) exact) then
        fail "U-repair distance %g != exhaustive %g under %a"
          (Table.dist_upd u t) exact Fd_set.pp d
    | Error _ -> ()

let check_enumeration d t =
  if Table.size t <= 7 then begin
    (* enumerated repairs must be exactly the maximal consistent subsets,
       and on chain sets the polynomial count must agree. *)
    let reps = R.Enumerate.Enumerate.s_repairs d t in
    List.iter
      (fun s ->
        if not (R.Srepair.S_check.is_s_repair d ~of_:t s) then
          fail "enumeration produced a non-repair under %a" Fd_set.pp d)
      reps;
    if Fd_set.is_chain d then
      match R.Enumerate.Count.optimal_s_repairs d t with
      | Ok c ->
        let enumerated =
          List.length (R.Enumerate.Enumerate.optimal_s_repairs d t)
        in
        if c <> enumerated then
          fail "count %d != enumerated optima %d under %a" c enumerated
            Fd_set.pp d
      | Error _ -> ()
  end

let check_u_approx d t =
  let u, ratio = R.Urepair.U_approx.best d t in
  if not (Fd_set.satisfied_by d u) then
    fail "U_approx.best inconsistent under %a" Fd_set.pp d;
  if Table.size t * Schema.arity (Table.schema t) <= 9 then begin
    let opt = R.Urepair.U_exact.distance ~max_cells:9 d t in
    if Table.dist_upd u t > (ratio *. opt) +. 1e-6 then
      fail "U_approx.best exceeds its certificate under %a" Fd_set.pp d
  end

let check_mpd d t =
  if Table.size t <= 8 && R.Dichotomy.Simplify.succeeds d then begin
    let pt =
      R.Mpd.Prob_table.of_table (Table.map_weights t (fun _ _ -> 0.75))
    in
    match R.Mpd.Mpd.solve ~strategy:R.Mpd.Mpd.Poly d pt with
    | Ok (Some world) ->
      let bf = R.Mpd.Mpd.brute_force d pt in
      if
        not
          (close
             (R.Mpd.Prob_table.log_probability pt world)
             (R.Mpd.Prob_table.log_probability pt bf))
      then fail "MPD reduction suboptimal under %a" Fd_set.pp d
    | Ok None -> fail "MPD returned None without certain tuples"
    | Error _ -> fail "MPD Poly failed although OSRSucceeds holds"
  end

let check_budgeted rng d t =
  (* A fresh budget per call — budgets are single-use accumulators. *)
  let max_steps = Rng.in_range rng 1 50 in
  let budget () = R.Runtime.Budget.create ~max_steps () in
  (match
     R.Driver.s_repair_result ~budget:(budget ()) ~on_budget:`Degrade d t
   with
  | Ok r ->
    if not (R.Srepair.S_check.is_consistent_subset d ~of_:t r.result) then
      fail "budgeted s-repair (max_steps=%d) inconsistent under %a" max_steps
        Fd_set.pp d;
    if r.degraded <> (r.fallbacks <> []) then
      fail "s-repair degraded flag disagrees with fallbacks under %a"
        Fd_set.pp d
  | Error e ->
    fail "budgeted s-repair refused to degrade: %s under %a"
      (R.Runtime.Repair_error.to_string e)
      Fd_set.pp d);
  if Table.size t * Schema.arity (Table.schema t) <= 12 then
    match
      R.Driver.u_repair_result ~budget:(budget ()) ~on_budget:`Degrade d t
    with
    | Ok r ->
      if not (Fd_set.satisfied_by d r.result) then
        fail "budgeted u-repair (max_steps=%d) inconsistent under %a"
          max_steps Fd_set.pp d;
      if r.degraded <> (r.fallbacks <> []) then
        fail "u-repair degraded flag disagrees with fallbacks under %a"
          Fd_set.pp d
    | Error e ->
      fail "budgeted u-repair refused to degrade: %s under %a"
        (R.Runtime.Repair_error.to_string e)
        Fd_set.pp d

(* --- protocol mode: request-parser and admission-engine fuzzing -----

   Every line a client can send — malformed, truncated, mutated,
   type-confused, oversized, or valid — must come back as exactly one
   structured reply line, the engine's books must stay balanced, and the
   engine must keep answering afterwards. Mirrors the server's line
   handling (size gate, then Engine.handle_line) without sockets. *)

module Protocol = R.Serve.Protocol
module Engine = R.Serve.Engine
module Json = R.Obs.Json

let random_op rng =
  Rng.pick rng
    [ Protocol.S_repair; Protocol.U_repair; Protocol.Classify; Protocol.Ping;
      Protocol.Metrics; Protocol.Stats; Protocol.Invalidate_cache ]

let valid_line rng =
  let op = random_op rng in
  Protocol.request_line
    ~id:(Json.String (Printf.sprintf "f%d" (Rng.int rng 1000)))
    ~op ~fds:"A -> B" ~table:"A,B\n1,2\n2,3\n"
    ?timeout_s:(if Rng.bool rng then Some 1.0 else None)
    ?max_steps:(if Rng.bool rng then Some (1 + Rng.int rng 100) else None)
    ()

let garbage_line rng =
  String.init (Rng.int rng 64) (fun _ ->
      (* any byte but the line terminator *)
      match Char.chr (Rng.int rng 256) with '\n' -> 'x' | c -> c)

let type_confused_line rng =
  Rng.pick rng
    [ {|{"op": 42}|};
      {|{"op": "s-repair", "fds": 42, "table": "A\n1\n"}|};
      {|{"op": "s-repair", "fds": "A -> B", "table": ["A"]}|};
      {|{"op": "s-repair", "fds": "A -> B", "table": "A\n1\n", "timeout_s": "fast"}|};
      {|{"op": "s-repair", "fds": "A -> B", "table": "A\n1\n", "max_steps": 0.5}|};
      {|{"op": "s-repair", "fds": "A -> B", "table": "A\n1\n", "strategy": "psychic"}|};
      {|{"op": "s-repair", "fds": "A -> B", "table": "A\n1\n", "format": "xml"}|};
      {|{"op": "nonsense"}|};
      {|[1, 2, 3]|};
      {|"just a string"|};
      {|{}|};
      {|null|} ]

let fuzz_request_line rng =
  match Rng.int rng 6 with
  | 0 -> valid_line rng
  | 1 -> garbage_line rng
  | 2 ->
    let v = valid_line rng in
    String.sub v 0 (Rng.int rng (String.length v))
  | 3 ->
    let v = Bytes.of_string (valid_line rng) in
    if Bytes.length v > 0 then begin
      let i = Rng.int rng (Bytes.length v) in
      Bytes.set v i
        (match Char.chr (Rng.int rng 256) with '\n' -> '"' | c -> c)
    end;
    Bytes.to_string v
  | 4 -> type_confused_line rng
  | _ -> String.make (300 + Rng.int rng 200) 'a' (* oversized at 256 cap *)

let check_reply_line line =
  if line = "" || line.[String.length line - 1] <> '\n' then
    fail "reply is not newline-terminated: %S" line;
  if String.contains (String.sub line 0 (String.length line - 1)) '\n' then
    fail "reply spans multiple lines: %S" line;
  match Json.of_string line with
  | Error m -> fail "reply is not valid JSON (%s): %S" m line
  | Ok reply -> (
    match Json.member "ok" reply with
    | Some (Json.Bool true) -> ()
    | Some (Json.Bool false) -> (
      match
        Option.bind (Json.member "error" reply) (Json.member "class")
      with
      | Some (Json.String c) when c <> "" -> ()
      | _ -> fail "error reply without error.class: %S" line)
    | _ -> fail "reply lacks a boolean \"ok\" field: %S" line)

(* The poison executor: most requests succeed, some raise classified
   errors, some raise junk — the isolation boundary must classify all of
   them into replies rather than let anything unwind the server. *)
let stub_exec rng ~conn:_ ~degraded:_ (_ : Protocol.request) =
  match Rng.int rng 4 with
  | 0 -> R.Runtime.Repair_error.raise_error
           (Parse { source = "<fuzz>"; line = None; detail = "poison" })
  | 1 -> failwith "poison exception"
  | _ -> [ ("distance", Json.Float 0.0) ]

let protocol_trial seed =
  let rng = Rng.make seed in
  let config =
    {
      Engine.default_config with
      queue_capacity = 1 + Rng.int rng 8;
      max_request_bytes = 256;
      quota = (if Rng.bool rng then Some (1 + Rng.int rng 8) else None);
    }
  in
  let config =
    { config with
      degrade_watermark = 1 + Rng.int rng config.Engine.queue_capacity }
  in
  let engine = Engine.create config in
  for _ = 1 to 32 do
    let line = fuzz_request_line rng in
    (* the server's size gate, then the engine — total by construction *)
    (match
       if String.length line > config.Engine.max_request_bytes then
         `Reply (Engine.reject_oversized engine)
       else Engine.handle_line engine ~conn:0 ~quota_used:0 line
     with
    | `Reply reply | `Drain reply -> check_reply_line reply
    | `Enqueued -> ()
    | exception exn ->
      fail "engine raised on %S: %s" line (Printexc.to_string exn));
    (* opportunistically run some queued work mid-stream *)
    if Rng.bool rng then
      match Engine.take engine with
      | Some p ->
        check_reply_line (Engine.execute engine ~exec:(stub_exec rng) p)
      | None -> ()
  done;
  let rec drain_queue () =
    match Engine.take engine with
    | Some p ->
      check_reply_line (Engine.execute engine ~exec:(stub_exec rng) p);
      drain_queue ()
    | None -> ()
  in
  drain_queue ();
  if not (Engine.balanced engine) then
    fail "accounting identity violated after seed %d" seed;
  (* the server must still be alive and answering *)
  match
    Engine.handle_line engine ~conn:0 ~quota_used:0
      {|{"id": "live", "op": "ping"}|}
  with
  | `Reply reply ->
    check_reply_line reply;
    if not (String.length reply > 4 && Json.of_string reply <> Error "") then
      ()
  | _ -> fail "ping after fuzzing did not produce an immediate reply"

(* --- par mode: parallel vs sequential cross-check -------------------

   Same instance generators as differential mode, but the property is
   the DESIGN §13 contract: a driver run on a domain pool is
   bit-identical to the sequential run — result table, distance, method,
   degraded flag, fallbacks, and on the error path the error class.
   Budgeted runs ride along because a limited budget must take the
   sequential path unchanged. *)

let par_pool = lazy (R.Par.Pool.create ~domains:4)

let reports_agree what d (seq : (R.Driver.report, _) result)
    (par : (R.Driver.report, _) result) =
  match (seq, par) with
  | Ok s, Ok p ->
    if not (Table.equal s.R.Driver.result p.R.Driver.result) then
      fail "%s: parallel result table differs under %a" what Fd_set.pp d;
    if s.distance <> p.distance then
      fail "%s: parallel distance %g != sequential %g under %a" what
        p.distance s.distance Fd_set.pp d;
    if s.method_used <> p.method_used then
      fail "%s: parallel method %S != sequential %S under %a" what
        p.method_used s.method_used Fd_set.pp d;
    if s.degraded <> p.degraded || s.fallbacks <> p.fallbacks then
      fail "%s: parallel degradation trace differs under %a" what Fd_set.pp d
  | Error es, Error ep ->
    let cs = R.Runtime.Repair_error.class_name es
    and cp = R.Runtime.Repair_error.class_name ep in
    if cs <> cp then
      fail "%s: parallel error class %S != sequential %S under %a" what cp cs
        Fd_set.pp d
  | Ok _, Error e ->
    fail "%s: parallel run failed (%s) where sequential succeeded under %a"
      what (R.Runtime.Repair_error.class_name e) Fd_set.pp d
  | Error e, Ok _ ->
    fail "%s: parallel run succeeded where sequential failed (%s) under %a"
      what (R.Runtime.Repair_error.class_name e) Fd_set.pp d

let par_trial seed =
  let rng = Rng.make seed in
  let n_attrs = Rng.in_range rng 2 4 in
  let schema, d =
    Gen_fd.random rng ~n_attrs ~n_fds:(Rng.in_range rng 1 3) ~max_lhs:2
  in
  let t =
    Gen_table.dirty rng schema d
      {
        Gen_table.default with
        n = Rng.in_range rng 0 10;
        noise = 0.3;
        domain_size = 3;
        weighted = Rng.bool rng;
        duplicate_rate = 0.1;
      }
  in
  let pool = Lazy.force par_pool in
  reports_agree "s-repair" d
    (R.Driver.s_repair_result d t)
    (R.Driver.s_repair_result ~pool d t);
  reports_agree "u-repair" d
    (R.Driver.u_repair_result d t)
    (R.Driver.u_repair_result ~pool d t);
  (* Budgeted, both policies: limited budgets force the sequential path
     inside the pool run, so exhaustion points must be preserved. *)
  let max_steps = Rng.in_range rng 1 50 in
  List.iter
    (fun on_budget ->
      let budget () = R.Runtime.Budget.create ~max_steps () in
      reports_agree "budgeted s-repair" d
        (R.Driver.s_repair_result ~budget:(budget ()) ~on_budget d t)
        (R.Driver.s_repair_result ~pool ~budget:(budget ()) ~on_budget d t);
      reports_agree "budgeted u-repair" d
        (R.Driver.u_repair_result ~budget:(budget ()) ~on_budget d t)
        (R.Driver.u_repair_result ~pool ~budget:(budget ()) ~on_budget d t))
    [ `Degrade; `Fail ]

(* --- chaos mode: IO fault injection against the durability layer ----

   Every trial arms a randomized Io_fault plan and asserts the
   torn-world contract end to end. Even seeds hit the batch journal: a
   run under injected short writes / EINTR / ENOSPC / torn tails / bit
   flips either completes, dies with the simulated Crash, or raises a
   classified error; recovery then either truncates the torn tail or
   quarantines corruption to the sidecar with the structured Corruption
   class — never an unclassified exception; a faultless resume never
   re-executes a job whose terminal record survived; and the final
   journal matches the unfaulted reference run record for record
   (modulo the wall_ms telemetry field). Odd seeds hit the serving
   engine with an executor publishing through write_file_atomic while
   faults are armed: every reply must stay structured, the accounting
   identity must hold, and the engine must keep answering. *)

module Io_fault = R.Runtime.Io_fault
module Journal = R.Batch.Journal
module Manifest = R.Batch.Manifest
module Runner = R.Batch.Runner
module Rerr = R.Runtime.Repair_error

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (ENOENT, _, _) -> ()

let fresh_dir seed =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "repair-chaos-%d-%d" (Unix.getpid ()) seed)
  in
  rm_rf dir;
  Unix.mkdir dir 0o700;
  dir

(* Journal equality modulo wall_ms, the one nondeterministic field. *)
let scrub_entry = function
  | Journal.Commit c -> Journal.Commit { c with wall_ms = 0.0 }
  | e -> e

let journal_entries path =
  List.map scrub_entry (Journal.recover path).Journal.entries

let chaos_job id =
  {
    Manifest.id;
    input = id ^ ".csv";
    fds = "A -> B";
    kind = Manifest.S_repair;
    strategy = Manifest.Auto;
    timeout_s = None;
    max_steps = None;
    on_budget = `Degrade;
    output = None;
  }

let random_io_kind rng =
  match Rng.int rng 5 with
  | 0 -> Io_fault.Short_write
  | 1 -> Io_fault.Eintr
  | 2 -> Io_fault.Enospc
  | 3 -> Io_fault.Torn (Rng.int rng 48)
  | _ -> Io_fault.Bit_flip (Rng.int rng 2048)

let random_batch_plan rng =
  List.init
    (1 + Rng.int rng 2)
    (fun _ ->
      {
        Io_fault.op = (if Rng.bool rng then Io_fault.Write else Io_fault.Fsync);
        at = 1 + Rng.int rng 14;
        kind = random_io_kind rng;
      })

let batch_chaos seed =
  let rng = Rng.make seed in
  let dir = fresh_dir seed in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let n_jobs = 1 + Rng.int rng 4 in
  let ids =
    List.init n_jobs (fun i ->
        if Rng.int rng 8 = 0 then Printf.sprintf "poison%d" i
        else Printf.sprintf "job%d" i)
  in
  let manifest = { Manifest.jobs = List.map chaos_job ids } in
  let exec_log : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let exec (job : Manifest.job) =
    Hashtbl.replace exec_log job.Manifest.id
      (1 + Option.value (Hashtbl.find_opt exec_log job.Manifest.id) ~default:0);
    if String.length job.Manifest.id >= 6
       && String.sub job.Manifest.id 0 6 = "poison"
    then
      Rerr.raise_error
        (Parse { source = job.Manifest.id; line = None; detail = "poison job" });
    {
      Runner.status = `Ok;
      distance = float_of_int (String.length job.Manifest.id);
      method_used = "stub";
    }
  in
  let reference =
    let j = Filename.concat dir "reference.jsonl" in
    ignore (Runner.run ~exec ~journal:j manifest);
    journal_entries j
  in
  let journal = Filename.concat dir "batch.jsonl" in
  let plan = random_batch_plan rng in
  (match
     Io_fault.with_plan plan (fun () -> Runner.run ~exec ~journal manifest)
   with
  | (_ : Runner.summary) -> ()
  | exception Io_fault.Crash _ -> () (* simulated kill mid-write *)
  | exception Rerr.Error _ -> () (* classified IO failure *)
  | exception exn ->
    fail "chaos batch: unclassified escape under faults: %s"
      (Printexc.to_string exn));
  (* Recovery must classify what the faults left behind: a clean or torn
     journal recovers silently; corruption quarantines the damage and
     raises the structured class, after which the trusted prefix must
     recover cleanly. *)
  let recovered =
    match Journal.recover journal with
    | r -> r
    | exception Rerr.Error (Rerr.Corruption { file; _ }) -> (
      if not (Sys.file_exists (Journal.corrupt_sidecar file)) then
        fail "chaos batch: corruption raised without a quarantine sidecar";
      match Journal.recover journal with
      | r -> r
      | exception exn ->
        fail "chaos batch: trusted prefix failed to recover: %s"
          (Printexc.to_string exn))
    | exception exn ->
      fail "chaos batch: recovery raised unclassified: %s"
        (Printexc.to_string exn)
  in
  Hashtbl.reset exec_log;
  (match Runner.run ~resume:true ~exec ~journal manifest with
  | (_ : Runner.summary) -> ()
  | exception exn ->
    fail "chaos batch: faultless resume failed: %s" (Printexc.to_string exn));
  List.iter
    (fun (id, _) ->
      if Hashtbl.mem exec_log id then
        fail "chaos batch: job %s re-executed past its terminal record" id)
    recovered.Journal.committed;
  if journal_entries journal <> reference then
    fail "chaos batch: resumed journal diverged from the unfaulted run"

(* No Torn (= Crash) in serving plans: a crash is process death, not
   something the isolation boundary should absorb. Everything else must
   come back as a classified error reply. *)
let random_serve_plan rng =
  List.init
    (1 + Rng.int rng 3)
    (fun _ ->
      {
        Io_fault.op =
          Rng.pick rng [ Io_fault.Write; Io_fault.Fsync; Io_fault.Rename ];
        at = 1 + Rng.int rng 20;
        kind =
          (match Rng.int rng 3 with
          | 0 -> Io_fault.Short_write
          | 1 -> Io_fault.Eintr
          | _ -> Io_fault.Enospc);
      })

let serve_chaos seed =
  let rng = Rng.make seed in
  let dir = fresh_dir seed in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let out = Filename.concat dir "answer.json" in
  let config =
    {
      Engine.default_config with
      queue_capacity = 1 + Rng.int rng 8;
      max_request_bytes = 256;
    }
  in
  let config =
    { config with
      degrade_watermark = 1 + Rng.int rng config.Engine.queue_capacity }
  in
  let engine = Engine.create config in
  let exec ~conn:_ ~degraded:_ (_ : Protocol.request) =
    (* durably publish through the shim: injected faults must surface as
       classified Io errors the isolation boundary turns into replies *)
    Io_fault.write_file_atomic out
      (Printf.sprintf "{\"seq\": %d}\n" (Rng.int rng 1_000_000));
    [ ("distance", Json.Float 0.0) ]
  in
  Io_fault.with_plan (random_serve_plan rng) (fun () ->
      for _ = 1 to 24 do
        let line =
          if Rng.int rng 4 = 0 then fuzz_request_line rng else valid_line rng
        in
        (match
           if String.length line > config.Engine.max_request_bytes then
             `Reply (Engine.reject_oversized engine)
           else Engine.handle_line engine ~conn:0 ~quota_used:0 line
         with
        | `Reply reply | `Drain reply -> check_reply_line reply
        | `Enqueued -> ()
        | exception exn ->
          fail "chaos serve: engine raised on %S: %s" line
            (Printexc.to_string exn));
        if Rng.bool rng then
          match Engine.take engine with
          | Some p -> check_reply_line (Engine.execute engine ~exec p)
          | None -> ()
      done;
      let rec drain () =
        match Engine.take engine with
        | Some p ->
          check_reply_line (Engine.execute engine ~exec p);
          drain ()
        | None -> ()
      in
      drain ());
  if not (Engine.balanced engine) then
    fail "chaos serve: accounting identity violated (seed %d)" seed;
  match
    Engine.handle_line engine ~conn:0 ~quota_used:0
      {|{"id": "live", "op": "ping"}|}
  with
  | `Reply reply -> check_reply_line reply
  | _ -> fail "chaos serve: ping after fault sweep not answered inline"

let chaos_trial seed =
  if seed mod 2 = 0 then batch_chaos seed else serve_chaos seed

(* --- stream mode: incremental session vs cold recompute -------------

   DESIGN §16's identity contract, fuzzed: after EVERY delta on a random
   tape the session's summary must match a cold driver run on the
   materialized table — result table, distance, method, optimal flag,
   ratio, all compared exactly, no epsilon. A random edit script over
   Vertex_cover.Incremental rides along: the maintained store's cover
   must equal the batch greedy on the final graph, modulo slot
   renaming. *)

let check_vc_incremental rng =
  let module Vc = R.Graph.Vertex_cover in
  let module Vci = Vc.Incremental in
  let t = Vci.create () in
  let slots = ref [] in
  let pick ss = List.nth ss (Rng.int rng (List.length ss)) in
  for _ = 1 to Rng.in_range rng 2 16 do
    match (Rng.int rng 4, !slots) with
    | (0 | 1), _ | _, [] ->
      slots :=
        Vci.add_vertex t ~weight:(float_of_int (Rng.in_range rng 1 5))
        :: !slots
    | 2, ss ->
      let u = pick ss and v = pick ss in
      if u <> v then
        if Rng.bool rng then Vci.add_edge t u v else Vci.remove_edge t u v
    | _, ss ->
      let v = pick ss in
      Vci.remove_vertex t v;
      slots := List.filter (fun s -> s <> v) ss
  done;
  let g, map = Vci.to_graph t in
  let batch = List.map (fun i -> map.(i)) (Vc.greedy g) in
  if Vci.cover t <> batch then
    fail "incremental cover %a != batch greedy %a"
      Fmt.(Dump.list int)
      (Vci.cover t)
      Fmt.(Dump.list int)
      batch

let stream_trial seed =
  let module Ss = R.Stream.Session in
  let rng = Rng.make seed in
  check_vc_incremental rng;
  let n_attrs = Rng.in_range rng 2 3 in
  let schema, d =
    Gen_fd.random rng ~n_attrs ~n_fds:(Rng.in_range rng 1 2) ~max_lhs:2
  in
  let base =
    Gen_table.dirty rng schema d
      {
        Gen_table.default with
        n = Rng.in_range rng 0 8;
        noise = 0.4;
        domain_size = 3;
        weighted = Rng.bool rng;
        duplicate_rate = 0.1;
      }
  in
  let session = Ss.create d base in
  let next_id = ref (List.fold_left max (-1) (Table.ids base) + 1) in
  let live = ref (Table.ids base) in
  for _ = 1 to Rng.in_range rng 1 12 do
    (if !live <> [] && Rng.int rng 3 = 0 then begin
       let id = List.nth !live (Rng.int rng (List.length !live)) in
       live := List.filter (fun i -> i <> id) !live;
       Ss.tick session (R.Stream.Delta.Delete { id })
     end
     else begin
       let values = List.init n_attrs (fun _ -> Value.int (Rng.int rng 3)) in
       let weight =
         if Rng.bool rng then 1.0 else float_of_int (Rng.in_range rng 1 5)
       in
       let id = !next_id in
       incr next_id;
       live := id :: !live;
       Ss.tick session (R.Stream.Delta.Insert { id = Some id; weight; values })
     end);
    let m = Ss.materialized session in
    let s = Ss.summary session in
    match R.Driver.s_repair_result d m with
    | Error e ->
      fail "cold driver failed on materialized table: %s under %a"
        (R.Runtime.Repair_error.to_string e)
        Fd_set.pp d
    | Ok cold ->
      if not (Table.equal s.Ss.result cold.R.Driver.result) then
        fail "stream result table differs from cold recompute under %a"
          Fd_set.pp d;
      if s.Ss.distance <> cold.distance then
        fail "stream distance %g != cold %g under %a" s.Ss.distance
          cold.distance Fd_set.pp d;
      if s.Ss.method_used <> cold.method_used then
        fail "stream method %S != cold %S under %a" s.Ss.method_used
          cold.method_used Fd_set.pp d;
      if s.Ss.optimal <> cold.optimal || s.Ss.ratio <> cold.ratio then
        fail "stream optimality certificate differs from cold under %a"
          Fd_set.pp d
  done

let trial seed =
  let rng = Rng.make seed in
  let n_attrs = Rng.in_range rng 2 4 in
  let schema, d =
    Gen_fd.random rng ~n_attrs ~n_fds:(Rng.in_range rng 1 3) ~max_lhs:2
  in
  let t =
    Gen_table.dirty rng schema d
      {
        Gen_table.default with
        n = Rng.in_range rng 0 10;
        noise = 0.3;
        domain_size = 3;
        weighted = Rng.bool rng;
        duplicate_rate = 0.1;
      }
  in
  check_s_repair d t;
  check_approx d t;
  check_u_repair d t;
  check_u_approx d t;
  check_enumeration d t;
  check_mpd d t;
  check_budgeted rng d t

let run mode trials seed0 quiet =
  let trial =
    match mode with
    | `Differential -> trial
    | `Protocol -> protocol_trial
    | `Par -> par_trial
    | `Chaos -> chaos_trial
    | `Stream -> stream_trial
  in
  let failures = ref 0 in
  (try
     for i = 0 to trials - 1 do
       let seed = seed0 + i in
       (try trial seed
        with Found msg ->
          incr failures;
          Fmt.epr "FAIL seed %d: %s@." seed msg);
       if (not quiet) && (i + 1) mod 500 = 0 then
         Fmt.epr "… %d/%d trials@." (i + 1) trials
     done
   with exn ->
     Fmt.epr "fuzzer crashed: %s@." (Printexc.to_string exn);
     exit 2);
  if !failures = 0 then begin
    Fmt.pr "repair-fuzz: %d trials, all checks passed@." trials;
    exit 0
  end
  else begin
    Fmt.pr "repair-fuzz: %d/%d trials failed@." !failures trials;
    exit 1
  end

let main =
  let mode =
    let doc =
      "What to fuzz: $(b,differential) cross-checks polynomial algorithms \
       against exponential baselines; $(b,protocol) throws malformed, \
       truncated, mutated, and oversized request lines at the serving \
       engine and checks every one yields a structured reply, the \
       accounting identity holds, and the engine keeps answering; \
       $(b,par) cross-checks driver runs on a 4-domain pool against \
       sequential runs, asserting bit-identical reports and preserved \
       error classes (DESIGN §13); $(b,chaos) arms randomized IO fault \
       plans (short writes, EINTR, ENOSPC, torn tails, bit flips) \
       against the batch journal and the serving engine, asserting \
       recovery truncates torn tails, quarantines corruption with the \
       structured error class, never re-executes a committed job, and \
       keeps the serve accounting identity balanced (DESIGN §14); \
       $(b,stream) replays random delta tapes through an incremental \
       streaming session, asserting after every tick that the summary is \
       identical to a cold driver run on the materialized table, and \
       that the maintained vertex-cover store matches the batch greedy \
       (DESIGN §16)."
    in
    Arg.(value
         & opt
             (enum
                [ ("differential", `Differential); ("protocol", `Protocol);
                  ("par", `Par); ("chaos", `Chaos); ("stream", `Stream) ])
             `Differential
         & info [ "mode" ] ~docv:"MODE" ~doc)
  in
  let trials =
    Arg.(value & opt int 1_000 & info [ "t"; "trials" ] ~doc:"Number of trials.")
  in
  let seed =
    Arg.(value & opt int 0 & info [ "seed" ] ~doc:"First seed (trials use seed, seed+1, ...).")
  in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No progress output.") in
  let doc = "differential fuzzer for the repair algorithms" in
  Cmd.v (Cmd.info "repair-fuzz" ~doc) Term.(const run $ mode $ trials $ seed $ quiet)

let () = exit (Cmd.eval main)
