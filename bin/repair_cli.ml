(* repair-cli — command-line front end.

   Subcommands:
     classify   complexity report for an FD set
     s-repair   optimal/approximate subset repair of a CSV table
     u-repair   optimal/approximate update repair of a CSV table
     mpd        most probable database of a probabilistic CSV table  *)

open Cmdliner
module R = Repair_core.Repair
module E = R.Runtime.Repair_error
open R.Relational
open R.Fd

let fds_arg =
  let doc =
    "Functional dependencies, semicolon-separated, e.g. 'A B -> C; C -> A'."
  in
  Arg.(required & opt (some string) None & info [ "f"; "fds" ] ~docv:"FDS" ~doc)

let csv_in =
  let doc = "Input CSV file (header row; optional #id and #weight columns)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT.csv" ~doc)

let csv_out =
  let doc = "Output CSV file (defaults to stdout)." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"OUT" ~doc)

let strategy_arg =
  let strategies =
    [ ("auto", R.Driver.Auto);
      ("poly", R.Driver.Poly);
      ("exact", R.Driver.Exact);
      ("approx", R.Driver.Approximate) ]
  in
  let doc =
    "Algorithm choice: auto (dichotomy-driven), poly, exact, approx."
  in
  Arg.(value & opt (enum strategies) R.Driver.Auto & info [ "s"; "strategy" ] ~doc)

(* Error classes map to documented exit codes (see Repair_error.exit_code):
   0 success, 1 unexpected internal error, 2 parse, 3 i/o,
   4 schema mismatch, 5 budget exhausted, 6 intractable, 7 size limit,
   8 injected fault, 11 corruption. *)
let die_error e =
  Fmt.epr "repair-cli: %a@." E.pp e;
  exit (E.exit_code e)

let or_die_error = function Ok v -> v | Error e -> die_error e

(* Every file the CLI produces goes down atomically (tmp + fsync +
   rename): a crash mid-write leaves either the old artifact or the new
   one, never a torn file for downstream tooling to choke on. *)
let write_out path text =
  try R.Runtime.Io_fault.write_file_atomic path text
  with E.Error e -> die_error e

let parse_fds s =
  try Ok (Fd_set.parse s)
  with Failure m -> Error (E.Parse { source = "<fds>"; line = None; detail = m })

let is_jsonl path = Filename.check_suffix path ".jsonl"

let load_table path =
  if is_jsonl path then Jsonl_io.load_result ~name:"T" path
  else Csv_io.load_result ~name:"T" path

let or_die = function
  | Ok v -> v
  | Error (`Msg m) ->
    die_error (E.Parse { source = "<args>"; line = None; detail = m })

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log algorithm choices.")

let timeout_arg =
  let doc =
    "Wall-clock budget in seconds. Exponential solvers poll it \
     cooperatively; on exhaustion the driver degrades or fails per \
     $(b,--on-budget)."
  in
  Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SEC" ~doc)

let max_steps_arg =
  let doc =
    "Work budget: at most $(docv) solver checkpoints. Deterministic — the \
     same instance and budget always degrade at the same point."
  in
  Arg.(value & opt (some int) None & info [ "max-steps" ] ~docv:"N" ~doc)

let on_budget_arg =
  let doc =
    "Budget-exhaustion policy: $(b,degrade) falls back to the certified \
     polynomial approximation (marking the result degraded); $(b,fail) \
     exits with code 5."
  in
  Arg.(value
       & opt (enum [ ("degrade", `Degrade); ("fail", `Fail) ]) `Degrade
       & info [ "on-budget" ] ~docv:"POLICY" ~doc)

let metrics_arg =
  let doc =
    "Record solver counters and spans; write the JSON snapshot to $(docv) \
     after the repair ('-' = stdout, the default — combine with $(b,-o) to \
     keep the repair itself out of the way). Use the glued form \
     $(b,--metrics=FILE) to name a file."
  in
  Arg.(value
       & opt ~vopt:(Some "-") (some string) None
       & info [ "metrics" ] ~docv:"FILE" ~doc)

let trace_arg =
  let doc =
    "Record begin/end/instant trace events and write them as Chrome \
     trace-event JSON to $(docv) after the run (default $(b,trace.json); \
     '-' = stdout). Load the file in Perfetto or chrome://tracing, or \
     feed it to $(b,repair-cli profile)."
  in
  Arg.(value
       & opt ~vopt:(Some "trace.json") (some string) None
       & info [ "trace" ] ~docv:"FILE" ~doc)

let trace_buffer_arg =
  let doc =
    "Trace ring-buffer capacity, in events. When the ring is full the \
     oldest events are dropped (the drop count lands in the \
     trace.dropped counter and the trace's otherData)."
  in
  Arg.(value
       & opt int R.Obs.Trace.default_capacity
       & info [ "trace-buffer" ] ~docv:"N" ~doc)

(* Run [f] with the event tracer enabled and export the Chrome trace
   afterwards — same shape as [with_metrics] below, and independent of
   it: either, both, or neither can be on. *)
let with_trace dest capacity f =
  match dest with
  | None -> f ()
  | Some dest ->
    let module T = R.Obs.Trace in
    T.enable ~capacity ();
    let emit_trace () =
      let doc =
        R.Obs.Trace_export.to_chrome (T.events ()) ~dropped:(T.dropped ())
      in
      let text = R.Obs.Json.to_string ~pretty:true doc ^ "\n" in
      match dest with
      | "-" -> print_string text
      | path -> write_out path text
    in
    Fun.protect ~finally:emit_trace f

(* Run [f] with the metrics registry enabled and dump the snapshot
   afterwards. Degraded runs still snapshot (degradation happens inside
   [f]); error paths exit the process before the snapshot is written. *)
let with_metrics dest f =
  match dest with
  | None -> f ()
  | Some dest ->
    let module M = R.Obs.Metrics in
    M.reset ();
    M.enable ();
    let emit_snapshot () =
      let text = R.Obs.Json.to_string ~pretty:true (M.snapshot ()) ^ "\n" in
      match dest with
      | "-" -> print_string text
      | path -> write_out path text
    in
    Fun.protect ~finally:emit_snapshot f

let budget_of timeout max_steps =
  match (timeout, max_steps) with
  | None, None -> None
  | timeout_s, max_steps -> Some (R.Runtime.Budget.create ?timeout_s ?max_steps ())

let domains_arg =
  let doc =
    "Execute on $(docv) domains (the submitting one plus $(docv)-1 \
     workers). Results are bit-identical to a single-domain run: the \
     pool's merges are deterministic (DESIGN §13). 1, the default, \
     disables the pool entirely."
  in
  Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc)

(* Bracketed pool for the --domains flag. A value below 1 is a usage
   error (exit 2, like any bad argument) — there is no dedicated exit
   code for pool startup failure; a failed Domain.spawn surfaces as an
   internal error (exit 1). *)
let with_domains domains f =
  if domains < 1 then
    die_error
      (E.Parse
         { source = "<args>"; line = None; detail = "--domains must be >= 1" })
  else if domains = 1 then f None
  else R.Par.Pool.with_pool ~domains (fun pool -> f (Some pool))

let emit out tbl =
  match out with
  | None -> print_string (Csv_io.to_string tbl)
  | Some path ->
    let text =
      if is_jsonl path then Jsonl_io.to_string tbl else Csv_io.to_string tbl
    in
    write_out path text

let classify_cmd =
  let run fds =
    let d = or_die_error (parse_fds fds) in
    print_string (R.Driver.describe d)
  in
  let doc = "Report the repair complexity of an FD set (Theorem 3.4 etc.)." in
  Cmd.v (Cmd.info "classify" ~doc) Term.(const run $ fds_arg)

let report_header kind (r : R.Driver.report) =
  Fmt.epr "%s: distance=%g method=%s %s%s@." kind r.distance r.method_used
    (if r.optimal then "(optimal)"
     else Fmt.str "(within factor %g of optimal)" r.ratio)
    (if r.degraded then " [degraded]" else "");
  List.iter (fun f -> Fmt.epr "  fallback: %s@." f) r.fallbacks

let s_repair_cmd =
  let explain_arg =
    Arg.(value & flag
         & info [ "explain" ] ~doc:"Print why each tuple was deleted (stderr).")
  in
  let run fds input out strategy explain verbose timeout max_steps on_budget
      domains metrics trace trace_buffer =
    setup_logs verbose;
    let d = or_die_error (parse_fds fds) in
    let tbl = or_die_error (load_table input) in
    with_trace trace trace_buffer @@ fun () ->
    with_metrics metrics @@ fun () ->
    with_domains domains @@ fun pool ->
    let budget = budget_of timeout max_steps in
    let r =
      or_die_error
        (R.Driver.s_repair_result ?pool ~strategy ?budget ~on_budget d tbl)
    in
    report_header "s-repair" r;
    if explain then
      List.iter
        (fun reason -> Fmt.epr "  %a@." R.Srepair.Explain.pp_reason reason)
        (R.Srepair.Explain.deletions d ~table:tbl r.result);
    emit out r.result
  in
  let doc = "Compute a (weighted-)optimal subset repair of a CSV table." in
  Cmd.v
    (Cmd.info "s-repair" ~doc)
    Term.(const run $ fds_arg $ csv_in $ csv_out $ strategy_arg $ explain_arg
          $ verbose_arg $ timeout_arg $ max_steps_arg $ on_budget_arg
          $ domains_arg $ metrics_arg $ trace_arg $ trace_buffer_arg)

let u_repair_cmd =
  let explain_arg =
    Arg.(value & flag
         & info [ "explain" ] ~doc:"Print every changed cell (stderr).")
  in
  let run fds input out strategy explain verbose timeout max_steps on_budget
      domains metrics trace trace_buffer =
    setup_logs verbose;
    let d = or_die_error (parse_fds fds) in
    let tbl = or_die_error (load_table input) in
    with_trace trace trace_buffer @@ fun () ->
    with_metrics metrics @@ fun () ->
    with_domains domains @@ fun pool ->
    let budget = budget_of timeout max_steps in
    let r =
      or_die_error
        (R.Driver.u_repair_result ?pool ~strategy ?budget ~on_budget d tbl)
    in
    report_header "u-repair" r;
    if explain then begin
      let schema = Table.schema tbl in
      List.iter
        (fun (i, j) ->
          Fmt.epr "  tuple %d, %s: %a → %a@." i (Schema.attribute_at schema j)
            Value.pp (Tuple.get (Table.tuple tbl i) j)
            Value.pp (Tuple.get (Table.tuple r.result i) j))
        (R.Urepair.U_check.updated_cells ~of_:tbl r.result)
    end;
    emit out r.result
  in
  let doc = "Compute an optimal/approximate update repair of a CSV table." in
  Cmd.v
    (Cmd.info "u-repair" ~doc)
    Term.(const run $ fds_arg $ csv_in $ csv_out $ strategy_arg $ explain_arg
          $ verbose_arg $ timeout_arg $ max_steps_arg $ on_budget_arg
          $ domains_arg $ metrics_arg $ trace_arg $ trace_buffer_arg)

let mpd_cmd =
  let run fds input out =
    let d = or_die_error (parse_fds fds) in
    let tbl = or_die_error (load_table input) in
    let pt =
      try R.Mpd.Prob_table.of_table tbl
      with Invalid_argument m ->
        die_error
          (E.Schema_mismatch { source = input; detail = m })
    in
    match R.Mpd.Mpd.solve ~strategy:R.Mpd.Mpd.Poly d pt with
    | Ok (Some world) ->
      Fmt.epr "mpd: log-probability=%g@."
        (R.Mpd.Prob_table.log_probability pt world);
      emit out world
    | Ok None ->
      Fmt.epr "mpd: certain tuples conflict; every world has probability 0@."
    | Error stuck ->
      die_error
        (E.Intractable
           {
             what = "mpd";
             detail =
               Fmt.str
                 "FD set is on the hard side of the dichotomy (stuck at %a); \
                  rerun s-repair with --strategy exact on a small table"
                 Fd_set.pp stuck;
           })
  in
  let doc =
    "Most probable database: weights in (0,1] are tuple probabilities."
  in
  Cmd.v (Cmd.info "mpd" ~doc) Term.(const run $ fds_arg $ csv_in $ csv_out)

let generate_cmd =
  let attrs_arg =
    let doc = "Attribute names, space-separated, e.g. 'A B C'." in
    Arg.(required & opt (some string) None & info [ "a"; "attrs" ] ~docv:"ATTRS" ~doc)
  in
  let n_arg =
    Arg.(value & opt int 100 & info [ "size" ] ~doc:"Number of tuples.")
  in
  let noise_arg =
    Arg.(value & opt float 0.05 & info [ "noise" ] ~doc:"Cell perturbation probability.")
  in
  let domain_arg =
    Arg.(value & opt int 10 & info [ "domain" ] ~doc:"Values per attribute.")
  in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"RNG seed.") in
  let weighted_arg =
    Arg.(value & flag & info [ "weighted" ] ~doc:"Draw integer weights in 1..5.")
  in
  let dup_arg =
    Arg.(value & opt float 0.0 & info [ "duplicates" ] ~doc:"Duplicate-tuple rate.")
  in
  let run fds attrs n noise domain seed weighted duplicates out =
    let d = or_die_error (parse_fds fds) in
    let names =
      String.split_on_char ' ' attrs |> List.map String.trim
      |> List.filter (fun a -> a <> "")
    in
    let schema =
      try Schema.make "T" names
      with Invalid_argument m -> or_die (Error (`Msg m))
    in
    let missing =
      Attr_set.diff (Fd_set.attrs d) (Schema.attribute_set schema)
    in
    if not (Attr_set.is_empty missing) then
      or_die
        (Error
           (`Msg
             (Fmt.str "FD attributes %a not in --attrs" Attr_set.pp
                missing)));
    let rng = R.Workload.Rng.make seed in
    let spec =
      { R.Workload.Gen_table.default with
        n; noise; domain_size = domain; weighted; duplicate_rate = duplicates }
    in
    let t = R.Workload.Gen_table.dirty rng schema d spec in
    emit out t
  in
  let doc =
    "Generate a dirty CSV table: consistent w.r.t. the FDs, then perturbed."
  in
  Cmd.v
    (Cmd.info "generate" ~doc)
    Term.(
      const run $ fds_arg $ attrs_arg $ n_arg $ noise_arg $ domain_arg
      $ seed_arg $ weighted_arg $ dup_arg $ csv_out)

let cqa_cmd =
  let where_arg =
    let doc = "Selection, comma-separated equalities, e.g. 'facility=HQ'." in
    Arg.(value & opt string "" & info [ "w"; "where" ] ~docv:"COND" ~doc)
  in
  let select_arg =
    let doc = "Attributes to project, space-separated." in
    Arg.(required & opt (some string) None & info [ "p"; "project" ] ~docv:"ATTRS" ~doc)
  in
  let run fds input where select =
    let d = or_die_error (parse_fds fds) in
    let tbl = or_die_error (load_table input) in
    let parse_cond tok =
      match String.index_opt tok '=' with
      | Some i ->
        ( String.trim (String.sub tok 0 i),
          Value.of_string (String.sub tok (i + 1) (String.length tok - i - 1)) )
      | None -> or_die (Error (`Msg ("bad condition: " ^ tok)))
    in
    let conds =
      String.split_on_char ',' where
      |> List.map String.trim
      |> List.filter (fun tok -> tok <> "")
      |> List.map parse_cond
    in
    let attrs =
      String.split_on_char ' ' select |> List.map String.trim
      |> List.filter (fun a -> a <> "")
    in
    let q = R.Cqa.Cqa.query ~select:conds attrs in
    let certain, possible =
      try R.Cqa.Cqa.range q d tbl
      with Failure m -> or_die (Error (`Msg m))
    in
    let print_tuples label ts =
      Fmt.pr "%s (%d):@." label (List.length ts);
      List.iter (fun t -> Fmt.pr "  %a@." Tuple.pp t) ts
    in
    print_tuples "certain answers" certain;
    print_tuples "possible answers" possible
  in
  let doc =
    "Consistent query answering: answers holding in every/some S-repair."
  in
  Cmd.v
    (Cmd.info "cqa" ~doc)
    Term.(const run $ fds_arg $ csv_in $ where_arg $ select_arg)

let normalize_cmd =
  let attrs_arg =
    let doc = "Attribute names, space-separated (defaults to attr(Δ))." in
    Arg.(value & opt (some string) None & info [ "a"; "attrs" ] ~docv:"ATTRS" ~doc)
  in
  let run fds attrs =
    let d = or_die_error (parse_fds fds) in
    let attr_set =
      match attrs with
      | None -> R.Fd.Fd_set.attrs d
      | Some s ->
        String.split_on_char ' ' s |> List.map String.trim
        |> List.filter (fun a -> a <> "")
        |> Attr_set.of_list
    in
    Fmt.pr "attributes: %a@." Attr_set.pp attr_set;
    Fmt.pr "BCNF: %b; 3NF: %b@."
      (R.Fd.Normalize.is_bcnf d ~attrs:attr_set)
      (R.Fd.Normalize.is_3nf d ~attrs:attr_set);
    Fmt.pr "keys: %a@."
      Fmt.(list ~sep:(any "; ") Attr_set.pp)
      (R.Fd.Cover.keys d ~attrs:attr_set);
    Fmt.pr "BCNF decomposition:@.";
    List.iter
      (fun f -> Fmt.pr "  %a@." R.Fd.Normalize.pp_fragment f)
      (R.Fd.Normalize.bcnf_decompose d ~attrs:attr_set);
    Fmt.pr "3NF synthesis:@.";
    List.iter
      (fun f -> Fmt.pr "  %a@." R.Fd.Normalize.pp_fragment f)
      (R.Fd.Normalize.synthesize_3nf d ~attrs:attr_set)
  in
  let doc = "Check normal forms and decompose the schema (BCNF / 3NF)." in
  Cmd.v (Cmd.info "normalize" ~doc) Term.(const run $ fds_arg $ attrs_arg)

let dirtiness_cmd =
  let run fds input =
    let d = or_die_error (parse_fds fds) in
    let tbl = or_die_error (load_table input) in
    let e = R.Cleaning.Dirtiness.estimate d tbl in
    Fmt.pr "%a@." R.Cleaning.Dirtiness.pp e;
    Fmt.pr "fraction dirty (upper bound): %.1f%%@."
      (100.0 *. R.Cleaning.Dirtiness.fraction_dirty e tbl)
  in
  let doc =
    "Estimate how dirty a table is: certified bounds on the optimal repair \
     costs (Section 1 motivation)."
  in
  Cmd.v (Cmd.info "dirtiness" ~doc) Term.(const run $ fds_arg $ csv_in)

let session_cmd =
  let module Session = R.Cleaning.Session in
  let run fds input =
    let d = or_die_error (parse_fds fds) in
    let tbl = or_die_error (load_table input) in
    let session = ref (Session.start d tbl) in
    let done_ = ref false in
    let handle line =
      match
        String.split_on_char ' ' (String.trim line)
        |> List.filter (fun tok -> tok <> "")
      with
      | [] -> ()
      | [ "show" ] -> Fmt.pr "%a@." Table.pp (Session.current !session)
      | [ "violations" ] ->
        List.iter
          (fun (i, j, fd) ->
            Fmt.pr "tuples %d and %d violate %a@." i j R.Fd.Fd.pp fd)
          (Session.violations !session)
      | [ "dirtiness" ] ->
        Fmt.pr "%a@." R.Cleaning.Dirtiness.pp (Session.dirtiness !session)
      | [ "cost" ] -> Fmt.pr "manual cost so far: %g@." (Session.cost !session)
      | [ "delete"; i ] ->
        session := Session.delete !session (int_of_string i)
      | [ "restore"; i ] ->
        session := Session.restore !session (int_of_string i)
      | [ "update"; i; attr; value ] ->
        session :=
          Session.update !session (int_of_string i) attr (Value.of_string value)
      | [ "finish"; "deletions" ] ->
        print_string (Csv_io.to_string (Session.auto_finish ~prefer:`Deletions !session));
        done_ := true
      | [ "finish"; "updates" ] ->
        print_string (Csv_io.to_string (Session.auto_finish ~prefer:`Updates !session));
        done_ := true
      | [ "quit" ] -> done_ := true
      | toks ->
        Fmt.epr "session: unknown command %s@." (String.concat " " toks)
    in
    (try
       while not !done_ do
         handle (input_line stdin)
       done
     with
    | End_of_file -> ()
    | Invalid_argument m | Failure m -> or_die (Error (`Msg m)))
  in
  let doc =
    "Interactive cleaning session (reads commands from stdin): show, \
     violations, dirtiness, cost, delete ID, update ID ATTR VALUE, restore \
     ID, finish deletions|updates, quit."
  in
  Cmd.v (Cmd.info "session" ~doc) Term.(const run $ fds_arg $ csv_in)

let batch_cmd =
  let manifest_arg =
    let doc =
      "Manifest JSON file: {\"jobs\": [{\"id\", \"input\", \"fds\", \
       \"kind\", \"strategy\", \"max_steps\", \"timeout_s\", \
       \"on-budget\", \"output\"}, ...]}. Only id/input/fds are required."
    in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"MANIFEST.json" ~doc)
  in
  let journal_arg =
    let doc =
      "Write-ahead journal (JSONL, fsync'd per record). Every job outcome \
       is committed here; a killed run restarts from it with $(b,--resume)."
    in
    Arg.(value & opt string "journal.jsonl" & info [ "journal" ] ~docv:"FILE" ~doc)
  in
  let resume_arg =
    let doc =
      "Recover the journal, skip jobs whose commit record is durable, and \
       replay in-flight ones. Without this flag a non-empty journal is an \
       error."
    in
    Arg.(value & flag & info [ "resume" ] ~doc)
  in
  let retries_arg =
    let doc =
      "Retry transiently failed jobs (timeouts, injected faults) up to \
       $(docv) extra times; permanently failed jobs are quarantined \
       immediately."
    in
    Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N" ~doc)
  in
  let backoff_arg =
    let doc =
      "Base backoff before retry $(i,k), which waits $(docv)·2^(k-1) ms — \
       deterministic, so journals replay identically."
    in
    Arg.(value & opt int 100 & info [ "backoff-ms" ] ~docv:"MS" ~doc)
  in
  let summary_arg =
    let doc = "Write the summary JSON to $(docv) (defaults to stdout)." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"OUT" ~doc)
  in
  let run manifest journal resume retries backoff out verbose domains metrics
      trace trace_buffer =
    setup_logs verbose;
    let m = or_die_error (R.Batch.Manifest.load_result manifest) in
    let code =
      with_trace trace trace_buffer @@ fun () ->
      with_metrics metrics @@ fun () ->
      with_domains domains @@ fun pool ->
      let t0 = Unix.gettimeofday () in
      let summary =
        or_die_error
          (E.guard (fun () ->
               R.Batch.run ?pool ~retries ~backoff_ms:backoff ~resume ~journal
                 m))
      in
      let wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
      let text =
        R.Obs.Json.to_string ~pretty:true
          (R.Batch.Runner.summary_json ~wall_ms summary)
        ^ "\n"
      in
      (match out with
      | None -> print_string text
      | Some path -> write_out path text);
      if summary.R.Batch.Runner.quarantined > 0 then
        R.Batch.Runner.exit_some_quarantined
      else 0
    in
    exit code
  in
  let doc =
    "Run a manifest of repair jobs through the journaled batch runner: \
     per-job fault isolation, checkpoint/resume, retries with exponential \
     backoff, and poison-job quarantine. Exit status 0 when every job \
     committed cleanly, 9 when the batch finished but some jobs were \
     quarantined."
  in
  Cmd.v
    (Cmd.info "batch" ~doc)
    Term.(const run $ manifest_arg $ journal_arg $ resume_arg $ retries_arg
          $ backoff_arg $ summary_arg $ verbose_arg $ domains_arg
          $ metrics_arg $ trace_arg $ trace_buffer_arg)

let profile_cmd =
  let trace_file_arg =
    let doc = "Chrome trace-event JSON, as written by $(b,--trace)." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE.json" ~doc)
  in
  let top_arg =
    let doc = "Show the $(docv) hottest span names by self time." in
    Arg.(value & opt int 15 & info [ "top" ] ~docv:"N" ~doc)
  in
  let check_arg =
    let doc =
      "Only validate the trace — required fields, monotone timestamps, \
       matched begin/end pairs — and report its size; exit 1 if invalid."
    in
    Arg.(value & flag & info [ "check" ] ~doc)
  in
  let run file top check =
    let text =
      try
        let ic = open_in_bin file in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with Sys_error m -> die_error (E.Io { file; detail = m })
    in
    let j =
      match R.Obs.Json.of_string text with
      | Ok j -> j
      | Error m -> die_error (E.Parse { source = file; line = None; detail = m })
    in
    let events, dropped =
      match R.Obs.Trace_export.of_chrome j with
      | Ok v -> v
      | Error m -> die_error (E.Parse { source = file; line = None; detail = m })
    in
    (match R.Obs.Trace_export.validate ~dropped events with
    | Ok () -> ()
    | Error m ->
      Fmt.epr "repair-cli: %s: invalid trace: %s@." file m;
      exit 1);
    if check then
      Fmt.pr "%s: valid trace, %d events, %d dropped@." file
        (List.length events) dropped
    else
      Fmt.pr "%a"
        (R.Obs.Trace_export.pp_hotspots ~top)
        (R.Obs.Trace_export.hotspots events)
  in
  let doc =
    "Replay a trace file (from $(b,--trace)) into a plain-text hotspot \
     report: per span name, completed count, inclusive and self wall \
     time, and the longest single span, sorted by self time."
  in
  Cmd.v
    (Cmd.info "profile" ~doc)
    Term.(const run $ trace_file_arg $ top_arg $ check_arg)

let armstrong_cmd =
  let attrs_arg =
    let doc = "Attribute names, space-separated (defaults to attr(Δ))." in
    Arg.(value & opt (some string) None & info [ "a"; "attrs" ] ~docv:"ATTRS" ~doc)
  in
  let run fds attrs out =
    let d = or_die_error (parse_fds fds) in
    let names =
      match attrs with
      | Some s ->
        String.split_on_char ' ' s |> List.map String.trim
        |> List.filter (fun a -> a <> "")
      | None -> Attr_set.elements (R.Fd.Fd_set.attrs d)
    in
    let schema =
      try Schema.make "Armstrong" names
      with Invalid_argument m -> or_die (Error (`Msg m))
    in
    emit out (R.Fd.Armstrong.relation d schema)
  in
  let doc =
    "Emit an Armstrong relation: a table satisfying exactly the FDs \
     entailed by Δ."
  in
  Cmd.v
    (Cmd.info "armstrong" ~doc)
    Term.(const run $ fds_arg $ attrs_arg $ csv_out)

let socket_arg =
  let doc = "Unix-domain socket path." in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let port_arg =
  let doc = "TCP port on 127.0.0.1 (alternative to $(b,--socket))." in
  Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT" ~doc)

let listen_of socket port : R.Serve.Server.listen =
  match (socket, port) with
  | Some path, None -> Unix_sock path
  | None, Some p -> Tcp p
  | _ ->
    or_die (Error (`Msg "exactly one of --socket or --port is required"))

let serve_cmd =
  let queue_arg =
    let doc =
      "Admission queue capacity: once $(docv) repair requests are queued, \
       further ones are shed with a structured 'overloaded' error."
    in
    Arg.(value & opt int R.Serve.Engine.default_config.queue_capacity
         & info [ "queue-capacity" ] ~docv:"N" ~doc)
  in
  let watermark_arg =
    let doc =
      "Degrade watermark: requests admitted at queue depth >= $(docv) are \
       downgraded to the certified polynomial approximation rung, \
       whatever strategy they asked for."
    in
    Arg.(value & opt (some int) None
         & info [ "degrade-watermark" ] ~docv:"N" ~doc)
  in
  let quota_arg =
    let doc =
      "Per-connection repair-request quota; excess requests on the same \
       connection are shed with 'quota-exceeded'."
    in
    Arg.(value & opt (some int) None & info [ "quota" ] ~docv:"N" ~doc)
  in
  let default_timeout_arg =
    let doc =
      "Default per-request wall budget in seconds for requests that do \
       not send their own timeout_s. 0 means unlimited."
    in
    Arg.(value & opt float 10.0 & info [ "default-timeout" ] ~docv:"SEC" ~doc)
  in
  let max_steps_cap_arg =
    let doc = "Hard cap on any request's max_steps budget." in
    Arg.(value & opt (some int) None & info [ "max-steps-cap" ] ~docv:"N" ~doc)
  in
  let drain_arg =
    let doc =
      "Drain deadline in seconds: after SIGTERM/SIGINT/drain, queued work \
       gets this long to finish before remaining requests are cancelled."
    in
    Arg.(value & opt float R.Serve.Engine.default_config.drain_deadline_s
         & info [ "drain-deadline" ] ~docv:"SEC" ~doc)
  in
  let max_bytes_arg =
    let doc = "Maximum request line size in bytes; longer lines are rejected." in
    Arg.(value & opt int R.Serve.Engine.default_config.max_request_bytes
         & info [ "max-request-bytes" ] ~docv:"N" ~doc)
  in
  let read_deadline_arg =
    let doc =
      "Slow-loris defense: a connection holding a partial request line \
       must make read progress within $(docv) seconds or it is evicted \
       with a 'deadline-exceeded' error. 0 disables."
    in
    Arg.(value & opt float 30.0
         & info [ "read-deadline" ] ~docv:"SEC" ~doc)
  in
  let write_deadline_arg =
    let doc =
      "Slow-reader defense: a connection with pending replies must accept \
       bytes within $(docv) seconds or it is evicted. 0 disables."
    in
    Arg.(value & opt float 30.0
         & info [ "write-deadline" ] ~docv:"SEC" ~doc)
  in
  let cache_arg =
    let doc = "Warm FD-set cache capacity (LRU entries)." in
    Arg.(value & opt int R.Serve.default_cache_capacity
         & info [ "cache-capacity" ] ~docv:"N" ~doc)
  in
  let metrics_out_arg =
    let doc =
      "Where to flush the final metrics snapshot on drain: a path, or '-' \
       for stdout (default stderr)."
    in
    Arg.(value & opt (some string) None
         & info [ "metrics-out" ] ~docv:"OUT" ~doc)
  in
  let slow_ms_arg =
    let doc =
      "Slow-request threshold in milliseconds: settled requests whose \
       solver wall time reaches $(docv) are logged as structured JSON \
       records (one per line) to --slow-log. 0 disables."
    in
    Arg.(value & opt float 0.0 & info [ "slow-ms" ] ~docv:"MS" ~doc)
  in
  let slow_log_arg =
    let doc =
      "Where slow-request records go: a path (appended), or '-' for \
       stdout (default stderr)."
    in
    Arg.(value & opt (some string) None & info [ "slow-log" ] ~docv:"OUT" ~doc)
  in
  let stats_interval_arg =
    let doc =
      "Width in seconds of one rolling time-series window (the 'stats' \
       op's resolution)."
    in
    Arg.(value & opt float R.Serve.Engine.default_config.stats_interval_s
         & info [ "stats-interval" ] ~docv:"SEC" ~doc)
  in
  let stats_windows_arg =
    let doc = "Rolling time-series ring capacity, in windows." in
    Arg.(value & opt int R.Serve.Engine.default_config.stats_windows
         & info [ "stats-windows" ] ~docv:"N" ~doc)
  in
  let trace_arg =
    let doc =
      "Record request-scoped spans for the serve's lifetime and write a \
       Chrome trace-event JSON document to $(docv) (atomic write) after \
       drain. With --domains > 1, worker spans appear on per-task lanes \
       tagged with their wire request id."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"OUT" ~doc)
  in
  let run socket port queue watermark quota default_timeout max_steps_cap
      drain max_bytes read_deadline write_deadline cache_capacity metrics_out
      slow_ms slow_log stats_interval stats_windows trace_out domains verbose
      =
    setup_logs verbose;
    if domains < 1 then
      die_error
        (E.Parse
           { source = "<args>"; line = None; detail = "--domains must be >= 1" });
    let listen = listen_of socket port in
    let config =
      {
        R.Serve.Engine.queue_capacity = queue;
        degrade_watermark =
          (match watermark with Some w -> w | None -> max 1 (queue / 2));
        quota;
        default_timeout_s =
          (if default_timeout <= 0.0 then None else Some default_timeout);
        max_steps_cap;
        drain_deadline_s = drain;
        max_request_bytes = max_bytes;
        read_deadline_s =
          (if read_deadline <= 0.0 then None else Some read_deadline);
        write_deadline_s =
          (if write_deadline <= 0.0 then None else Some write_deadline);
        slow_ms = (if slow_ms <= 0.0 then None else Some slow_ms);
        stats_interval_s = stats_interval;
        stats_windows;
      }
    in
    let code =
      try
        R.Serve.run ~config ~cache_capacity ?metrics_out ?slow_log ?trace_out
          ~domains listen
      with
      | Invalid_argument m ->
        (* config validation (watermark vs capacity etc.) *)
        die_error (E.Parse { source = "<args>"; line = None; detail = m })
      | E.Error e -> die_error e
    in
    exit code
  in
  let doc =
    "Serve repairs over a newline-delimited JSON protocol on a Unix or \
     loopback-TCP socket: watermark admission control (downgrade, then \
     shed), per-request budget and error isolation, a warm FD-set cache, \
     and graceful drain on SIGTERM/SIGINT. Exit status 0 after a clean \
     drain, 10 when the drain deadline cancelled queued requests."
  in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(const run $ socket_arg $ port_arg $ queue_arg $ watermark_arg
          $ quota_arg $ default_timeout_arg $ max_steps_cap_arg $ drain_arg
          $ max_bytes_arg $ read_deadline_arg $ write_deadline_arg
          $ cache_arg $ metrics_out_arg $ slow_ms_arg $ slow_log_arg
          $ stats_interval_arg $ stats_windows_arg $ trace_arg $ domains_arg
          $ verbose_arg)

let load_cmd =
  let requests_arg =
    let doc = "Repair requests to pipeline at the server." in
    Arg.(value & opt int 50 & info [ "n"; "requests" ] ~docv:"N" ~doc)
  in
  let connections_arg =
    let doc = "Concurrent client connections." in
    Arg.(value & opt int 4 & info [ "c"; "connections" ] ~docv:"N" ~doc)
  in
  let op_arg =
    let ops =
      [ ("s-repair", R.Serve.Protocol.S_repair);
        ("u-repair", R.Serve.Protocol.U_repair);
        ("classify", R.Serve.Protocol.Classify) ]
    in
    Arg.(value & opt (enum ops) R.Serve.Protocol.S_repair
         & info [ "op" ] ~doc:"Request op: s-repair, u-repair, classify.")
  in
  let rows_arg =
    let doc = "Rows per generated table." in
    Arg.(value & opt int 30 & info [ "rows" ] ~docv:"N" ~doc)
  in
  let poison_arg =
    let doc = "Make every $(docv)-th request a poison one (garbage FDs)." in
    Arg.(value & opt (some int) None & info [ "poison-every" ] ~docv:"K" ~doc)
  in
  let malformed_arg =
    let doc = "Interleave one raw non-JSON line per $(docv) requests." in
    Arg.(value & opt (some int) None & info [ "malformed-every" ] ~docv:"K" ~doc)
  in
  let wall_arg =
    let doc = "Give up waiting for replies after $(docv) seconds." in
    Arg.(value & opt float 60.0 & info [ "wall-timeout" ] ~docv:"SEC" ~doc)
  in
  let seed_arg =
    Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Workload generator seed.")
  in
  let retries_arg =
    let doc =
      "Retry each shed request up to $(docv) times with jittered \
       exponential backoff (deterministic for a given --seed)."
    in
    Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N" ~doc)
  in
  let retry_backoff_arg =
    let doc = "Base backoff in milliseconds for the first retry." in
    Arg.(value & opt int 50 & info [ "retry-backoff" ] ~docv:"MS" ~doc)
  in
  let run socket port requests connections op rows poison malformed timeout
      wall seed retries retry_backoff out verbose =
    setup_logs verbose;
    let target : R.Workload.Load_gen.target =
      match listen_of socket port with
      | R.Serve.Server.Unix_sock p -> Unix_sock p
      | R.Serve.Server.Tcp p -> Tcp p
    in
    let spec =
      {
        R.Workload.Load_gen.default_spec with
        requests;
        connections;
        op;
        n_rows = rows;
        poison_every = poison;
        malformed_every = malformed;
        timeout_s = timeout;
        wall_timeout_s = wall;
        seed;
        retries;
        retry_backoff_ms = retry_backoff;
      }
    in
    let report =
      try R.Workload.Load_gen.run spec target with
      | Failure m ->
        let file =
          match target with
          | R.Workload.Load_gen.Unix_sock p -> p
          | R.Workload.Load_gen.Tcp p -> Printf.sprintf "127.0.0.1:%d" p
        in
        die_error (E.Io { file; detail = m })
      | Invalid_argument m ->
        die_error (E.Parse { source = "<args>"; line = None; detail = m })
    in
    let text =
      R.Obs.Json.to_string ~pretty:true
        (R.Workload.Load_gen.report_json report)
      ^ "\n"
    in
    (match out with
    | None -> print_string text
    | Some path -> write_out path text);
    exit (if report.R.Workload.Load_gen.unanswered > 0 then 1 else 0)
  in
  let out_arg =
    let doc = "Write the load report JSON to $(docv) (defaults to stdout)." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"OUT" ~doc)
  in
  let doc =
    "Generate pipelined load against a running $(b,repair-cli serve) \
     daemon and report outcome counts and latency quantiles. Exit status \
     1 if any request went unanswered within --wall-timeout."
  in
  Cmd.v
    (Cmd.info "load" ~doc)
    Term.(const run $ socket_arg $ port_arg $ requests_arg $ connections_arg
          $ op_arg $ rows_arg $ poison_arg $ malformed_arg $ timeout_arg
          $ wall_arg $ seed_arg $ retries_arg $ retry_backoff_arg $ out_arg
          $ verbose_arg)

let top_cmd =
  let interval_arg =
    let doc = "Seconds between dashboard refreshes." in
    Arg.(value & opt float 1.0 & info [ "interval" ] ~docv:"SEC" ~doc)
  in
  let once_arg =
    let doc =
      "Fetch one stats sample, print stable machine-readable 'key value' \
       lines, and exit."
    in
    Arg.(value & flag & info [ "once" ] ~doc)
  in
  let expo_arg =
    let doc =
      "Print the server's Prometheus-style text exposition instead of \
       the dashboard, and exit."
    in
    Arg.(value & flag & info [ "expo" ] ~doc)
  in
  let run socket port interval once expo verbose =
    setup_logs verbose;
    let target : R.Workload.Load_gen.target =
      match listen_of socket port with
      | R.Serve.Server.Unix_sock p -> Unix_sock p
      | R.Serve.Server.Tcp p -> Tcp p
    in
    let file =
      match target with
      | R.Workload.Load_gen.Unix_sock p -> p
      | R.Workload.Load_gen.Tcp p -> Printf.sprintf "127.0.0.1:%d" p
    in
    let fetch () =
      match R.Workload.Top.fetch target with
      | Ok s -> s
      | Error detail -> die_error (E.Io { file; detail })
    in
    if expo then begin
      print_string (R.Workload.Top.exposition (fetch ()));
      exit 0
    end;
    if once then begin
      R.Workload.Top.pp_machine Format.std_formatter (fetch ());
      Format.pp_print_flush Format.std_formatter ();
      exit 0
    end;
    if interval <= 0.0 then
      die_error
        (E.Parse
           { source = "<args>"; line = None; detail = "--interval must be > 0" });
    (* Live loop: home the cursor and clear to end-of-screen per frame
       (no full clears, so the terminal does not flicker); Ctrl-C exits. *)
    let rec loop () =
      let s = fetch () in
      print_string "\027[H\027[J";
      Format.printf "%a@?" R.Workload.Top.pp_dashboard s;
      Unix.sleepf interval;
      loop ()
    in
    loop ()
  in
  let doc =
    "Live operator view of a running $(b,repair-cli serve) daemon: \
     polls the 'stats' op and renders windowed rates, rolling latency \
     tails, gauges, and cumulative totals. $(b,--once) prints one \
     machine-readable sample; $(b,--expo) prints the Prometheus-style \
     text exposition."
  in
  Cmd.v
    (Cmd.info "top" ~doc)
    Term.(const run $ socket_arg $ port_arg $ interval_arg $ once_arg
          $ expo_arg $ verbose_arg)

let stream_cmd =
  let module Session = R.Stream.Session in
  let module Delta = R.Stream.Delta in
  let deltas_arg =
    let doc =
      "JSONL delta log: one {\"op\":\"insert\",\"tuple\":[...],\"weight\",\
       \"id\"} or {\"op\":\"delete\",\"id\"} object per line."
    in
    Arg.(required & opt (some file) None & info [ "deltas" ] ~docv:"FILE" ~doc)
  in
  let dump_table_arg =
    let doc =
      "Also write the materialized table (base plus applied deltas) to \
       $(docv) — the table a cold $(b,s-repair) run would see."
    in
    Arg.(value & opt (some string) None & info [ "dump-table" ] ~docv:"FILE" ~doc)
  in
  let chunk_arg =
    let doc = "Client mode: delta lines sent per request." in
    Arg.(value & opt int 256 & info [ "chunk" ] ~docv:"N" ~doc)
  in
  let read_lines path =
    match
      let ic = open_in path in
      Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
      let rec go acc n =
        match input_line ic with
        | line -> go ((n, line) :: acc) (n + 1)
        | exception End_of_file -> List.rev acc
      in
      go [] 1
    with
    | lines -> lines
    | exception Sys_error m -> die_error (E.Io { file = path; detail = m })
  in
  let finish ?dump_table out (r : R.Driver.report) =
    report_header "stream" r;
    Option.iter (fun (path, tbl) -> write_out path (Csv_io.to_string tbl))
      dump_table;
    emit out r.result
  in
  (* Local mode: the session lives in this process; a malformed delta
     line is reported on stderr and the stream keeps going, exactly like
     the daemon keeping a session alive across a rejected request. *)
  let run_local d tbl lines out dump_table =
    let session = Session.create d tbl in
    let rejected = ref 0 in
    List.iter
      (fun (n, line) ->
        if String.trim line <> "" then
          try Session.tick session (Delta.parse ~line:n line)
          with E.Error e ->
            incr rejected;
            Fmt.epr "stream: delta line %d rejected: %a@." n E.pp e)
      lines;
    let s = Session.summary session in
    let st = Session.stats session in
    Fmt.epr "stream: ticks=%d rejected=%d live-rows=%d@." st.Session.ticks
      !rejected st.Session.live;
    let r : R.Driver.report =
      { result = s.Session.result; distance = s.Session.distance;
        optimal = s.Session.optimal; ratio = s.Session.ratio;
        method_used = s.Session.method_used; degraded = false; fallbacks = [] }
    in
    let dump_table =
      Option.map (fun p -> (p, Session.materialized session)) dump_table
    in
    finish ?dump_table out r
  in
  (* Client mode: replay the (locally pre-validated) delta log through a
     running daemon's per-connection stream session, chunked so the
     request lines stay under the server's byte limit. *)
  let run_client fds tbl target lines chunk out dump_table =
    let module Json = R.Obs.Json in
    let file =
      match target with
      | R.Workload.Load_gen.Unix_sock p -> p
      | R.Workload.Load_gen.Tcp p -> Printf.sprintf "127.0.0.1:%d" p
    in
    let io detail = die_error (E.Io { file; detail }) in
    let valid =
      List.filter_map
        (fun (n, line) ->
          if String.trim line = "" then None
          else
            match Delta.parse ~line:n line with
            | _ -> Some line
            | exception E.Error e ->
              Fmt.epr "stream: delta line %d rejected: %a@." n E.pp e;
              None)
        lines
    in
    let rec chunks = function
      | [] -> []
      | rest ->
        let rec take k acc = function
          | r when k = 0 -> (List.rev acc, r)
          | [] -> (List.rev acc, [])
          | x :: r -> take (k - 1) (x :: acc) r
        in
        let c, rest = take chunk [] rest in
        c :: chunks rest
    in
    let batches = match chunks valid with [] -> [ [] ] | bs -> bs in
    let domain, addr =
      match target with
      | R.Workload.Load_gen.Unix_sock path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
      | R.Workload.Load_gen.Tcp port ->
        (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_loopback, port))
    in
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    let finally () = try Unix.close fd with Unix.Unix_error _ -> () in
    match
      Fun.protect ~finally @@ fun () ->
      Unix.connect fd addr;
      let rec write_all s off =
        if off < String.length s then
          write_all s (off + Unix.write_substring fd s off (String.length s - off))
      in
      let pending = ref "" in
      let chunk_buf = Bytes.create 65536 in
      let read_reply () =
        let rec go acc =
          match String.index_opt acc '\n' with
          | Some i ->
            pending := String.sub acc (i + 1) (String.length acc - i - 1);
            String.sub acc 0 i
          | None -> (
            match Unix.read fd chunk_buf 0 (Bytes.length chunk_buf) with
            | 0 -> io "server closed the connection mid-stream"
            | n -> go (acc ^ Bytes.sub_string chunk_buf 0 n))
        in
        go !pending
      in
      let exchange ~first k batch =
        let line =
          R.Serve.Protocol.request_line ~id:(Json.Int k) ~op:R.Serve.Protocol.Stream ~fds
            ?table:(if first then Some (Csv_io.to_string tbl) else None)
            ~deltas:(String.concat "\n" batch) ()
        in
        write_all line 0;
        match Json.of_string (read_reply ()) with
        | Error m -> io (Printf.sprintf "unparsable reply: %s" m)
        | Ok reply -> (
          match Json.member "ok" reply with
          | Some (Json.Bool true) -> reply
          | _ ->
            let err k' =
              match Option.bind (Json.member "error" reply)
                      (fun e -> Json.member k' e) with
              | Some (Json.String s) -> s
              | _ -> "?"
            in
            die_error
              (E.Parse
                 { source = "<server>"; line = None;
                   detail =
                     Printf.sprintf "stream request refused (%s): %s"
                       (err "class") (err "detail") }))
      in
      let last = List.length batches - 1 in
      List.mapi (fun k batch -> exchange ~first:(k = 0) k batch) batches
      |> fun replies -> List.nth replies last
    with
    | exception Unix.Unix_error (e, _, _) ->
      io (Printf.sprintf "cannot reach server: %s" (Unix.error_message e))
    | reply ->
      let module Json = R.Obs.Json in
      let fstr k = match Json.member k reply with
        | Some (Json.String s) -> s | _ -> "" in
      let ffloat k =
        Option.bind (Json.member k reply) Json.float_value
        |> Option.value ~default:0.0 in
      let fint k =
        Option.bind (Json.member k reply) Json.int_value
        |> Option.value ~default:0 in
      let fbool k = match Json.member k reply with
        | Some (Json.Bool b) -> b | _ -> false in
      let result =
        or_die_error
          (Csv_io.parse_result ~file:"<reply>" ~name:"T" (fstr "table"))
      in
      Fmt.epr "stream: ticks=%d live-rows=%d@." (fint "ticks") (fint "rows");
      let r : R.Driver.report =
        { result; distance = ffloat "distance"; optimal = fbool "optimal";
          ratio = ffloat "ratio"; method_used = fstr "method";
          degraded = false; fallbacks = [] }
      in
      finish out r;
      Option.iter
        (fun p ->
          Fmt.epr "stream: --dump-table is local-mode only; %s not written@." p)
        dump_table
  in
  let run fds input deltas out dump_table socket port chunk verbose metrics
      trace trace_buffer =
    setup_logs verbose;
    if chunk < 1 then
      die_error
        (E.Parse
           { source = "<args>"; line = None; detail = "--chunk must be >= 1" });
    let d = or_die_error (parse_fds fds) in
    let tbl = or_die_error (load_table input) in
    let lines = read_lines deltas in
    match (socket, port) with
    | None, None ->
      with_trace trace trace_buffer @@ fun () ->
      with_metrics metrics @@ fun () -> run_local d tbl lines out dump_table
    | _ ->
      let target : R.Workload.Load_gen.target =
        match listen_of socket port with
        | R.Serve.Server.Unix_sock p -> Unix_sock p
        | R.Serve.Server.Tcp p -> Tcp p
      in
      run_client fds tbl target lines chunk out dump_table
  in
  let doc =
    "Maintain a repair incrementally under a JSONL delta log \
     (DESIGN §16): each insert/delete re-solves only its own block, and \
     the final summary is byte-identical to a cold $(b,s-repair) run on \
     the materialized table. Without $(b,--socket)/$(b,--port) the \
     session runs in-process; with one, the log replays through a \
     running $(b,repair-cli serve) daemon's per-connection stream \
     session. A malformed delta line is rejected on stderr and the \
     stream keeps going. Exit codes are the standard table — streaming \
     adds none."
  in
  Cmd.v
    (Cmd.info "stream" ~doc)
    Term.(const run $ fds_arg $ csv_in $ deltas_arg $ csv_out $ dump_table_arg
          $ socket_arg $ port_arg $ chunk_arg $ verbose_arg $ metrics_arg
          $ trace_arg $ trace_buffer_arg)

let main =
  let doc = "optimal repairs for functional dependencies (PODS'18)" in
  let man =
    [ `S "EXIT STATUS";
      `P "0 on success; 1 on unexpected internal errors; 2 malformed input \
          (FDs, CSV/JSONL rows, inline expressions); 3 file-system errors; \
          4 schema mismatches; 5 budget exhausted under --on-budget=fail; \
          6 a polynomial algorithm was requested outside its tractable \
          class; 7 an exact baseline was refused by its size gate; 8 an \
          injected test fault fired; 9 a batch run finished with \
          quarantined (poison) jobs; 10 a serve drain deadline expired \
          with queued requests still pending (they were cancelled with \
          structured replies); 11 durable state failed its integrity \
          check — a journal record with a bad length prefix, checksum, \
          or payload that a torn tail cannot explain; the damaged \
          suffix was moved to a .corrupt sidecar and replay stopped at \
          the last valid commit point." ]
  in
  Cmd.group
    (Cmd.info "repair-cli" ~version:"1.0.0" ~doc ~man)
    [ classify_cmd; s_repair_cmd; u_repair_cmd; mpd_cmd; generate_cmd; cqa_cmd; normalize_cmd;
      dirtiness_cmd; session_cmd; armstrong_cmd; batch_cmd; profile_cmd;
      serve_cmd; load_cmd; top_cmd; stream_cmd ]

let () = exit (Cmd.eval main)
