open Repair_relational
open Helpers

(* ---------- Value ---------- *)

let test_value_order () =
  Alcotest.(check bool) "unit smallest" true (Value.compare Value.Unit (Value.int 0) < 0);
  Alcotest.(check int) "int eq" 0 (Value.compare (Value.int 3) (Value.int 3));
  Alcotest.(check bool) "pair ordered" true
    (Value.compare (Value.pair (Value.int 1) (Value.int 2))
       (Value.pair (Value.int 1) (Value.int 3))
     < 0);
  Alcotest.(check bool) "str vs int incomparable kinds ordered" true
    (Value.compare (Value.int 5) (Value.str "a") < 0)

let test_value_hash_consistent () =
  let vs =
    [ Value.Unit; Value.int 7; Value.str "x";
      Value.pair (Value.int 1) (Value.str "y");
      Value.triple Value.Unit (Value.int 2) (Value.str "z"); Value.Fresh 3 ]
  in
  List.iter
    (fun v ->
      List.iter
        (fun w ->
          if Value.equal v w then
            Alcotest.(check int) "equal values hash equal" (Value.hash v)
              (Value.hash w))
        vs)
    vs

let test_value_of_string () =
  Alcotest.check value "int" (Value.int 42) (Value.of_string "42");
  Alcotest.check value "negative" (Value.int (-3)) (Value.of_string "-3");
  Alcotest.check value "string" (Value.str "Paris") (Value.of_string "Paris");
  Alcotest.check value "unit" Value.Unit (Value.of_string "_|_");
  Alcotest.check value "fresh" (Value.Fresh 5) (Value.of_string "$5");
  Alcotest.check value "dollar word" (Value.str "$x") (Value.of_string "$x")

let test_value_pp_roundtrip () =
  Alcotest.(check string) "pp pair" "⟨1,a⟩"
    (Value.to_string (Value.pair (Value.int 1) (Value.str "a")));
  Alcotest.(check string) "pp fresh" "$7" (Value.to_string (Value.Fresh 7))

let test_supply_avoids_collisions () =
  let s = Value.Supply.starting_above [ Value.Fresh 4; Value.pair (Value.Fresh 9) (Value.int 1) ] in
  Alcotest.check value "next above nested max" (Value.Fresh 10) (Value.Supply.next s);
  Alcotest.check value "monotone" (Value.Fresh 11) (Value.Supply.next s)

let test_supply_fresh_start () =
  let s = Value.Supply.create () in
  Alcotest.check value "starts at 0" (Value.Fresh 0) (Value.Supply.next s)

(* ---------- Attr_set ---------- *)

let test_attr_set_basic () =
  let x = Attr_set.of_list [ "B"; "A"; "B" ] in
  Alcotest.(check int) "dedup" 2 (Attr_set.cardinal x);
  Alcotest.(check (list string)) "sorted" [ "A"; "B" ] (Attr_set.to_list x);
  Alcotest.(check bool) "mem" true (Attr_set.mem "A" x);
  Alcotest.(check bool) "strict subset" true
    (Attr_set.strict_subset (Attr_set.singleton "A") x);
  Alcotest.(check bool) "not strict of self" false (Attr_set.strict_subset x x)

let test_attr_set_pp () =
  Alcotest.(check string) "empty" "∅" (Attr_set.to_string Attr_set.empty);
  Alcotest.(check string) "juxtaposed" "ABC"
    (Attr_set.to_string (Attr_set.of_list [ "C"; "A"; "B" ]));
  Alcotest.(check string) "spaced" "city facility"
    (Attr_set.to_string (Attr_set.of_list [ "facility"; "city" ]))

let test_attr_set_subsets () =
  let x = Attr_set.of_list [ "A"; "B"; "C" ] in
  Alcotest.(check int) "2^3 subsets" 8 (List.length (Attr_set.subsets x));
  let all = Attr_set.subsets x in
  Alcotest.(check bool) "contains empty" true
    (List.exists Attr_set.is_empty all);
  Alcotest.(check bool) "contains full" true
    (List.exists (Attr_set.equal x) all)

(* ---------- Schema / Tuple ---------- *)

let test_schema_basic () =
  let s = Schema.make "R" [ "A"; "B"; "C" ] in
  Alcotest.(check int) "arity" 3 (Schema.arity s);
  Alcotest.(check int) "index" 1 (Schema.index_of s "B");
  Alcotest.(check string) "attr at" "C" (Schema.attribute_at s 2);
  Alcotest.(check (list int)) "indices sorted" [ 0; 2 ]
    (Schema.indices_of s (Attr_set.of_list [ "C"; "A" ]));
  Alcotest.check_raises "duplicate attrs rejected"
    (Invalid_argument "Schema.make: duplicate attribute A") (fun () ->
      ignore (Schema.make "R" [ "A"; "A" ]))

let mk vs = Tuple.make (List.map Value.int vs)

let test_tuple_ops () =
  let s = Schema.make "R" [ "A"; "B"; "C" ] in
  let t = mk [ 1; 2; 3 ] in
  Alcotest.check value "get_attr" (Value.int 2) (Tuple.get_attr s t "B");
  let t' = Tuple.set_attr s t "B" (Value.int 9) in
  Alcotest.check tuple "set_attr" (mk [ 1; 9; 3 ]) t';
  Alcotest.check tuple "original untouched" (mk [ 1; 2; 3 ]) t;
  Alcotest.check tuple "project" (mk [ 1; 3 ])
    (Tuple.project s t (Attr_set.of_list [ "C"; "A" ]))

let test_tuple_hamming () =
  Alcotest.(check int) "identical" 0 (Tuple.hamming (mk [ 1; 2 ]) (mk [ 1; 2 ]));
  Alcotest.(check int) "one diff" 1 (Tuple.hamming (mk [ 1; 2 ]) (mk [ 1; 3 ]));
  Alcotest.(check int) "all diff" 2 (Tuple.hamming (mk [ 1; 2 ]) (mk [ 3; 4 ]));
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Tuple.hamming: arity mismatch") (fun () ->
      ignore (Tuple.hamming (mk [ 1 ]) (mk [ 1; 2 ])))

let test_tuple_agree_on () =
  let s = Schema.make "R" [ "A"; "B"; "C" ] in
  let t1 = mk [ 1; 2; 3 ] and t2 = mk [ 1; 5; 3 ] in
  Alcotest.(check bool) "agree AC" true
    (Tuple.agree_on s t1 t2 (Attr_set.of_list [ "A"; "C" ]));
  Alcotest.(check bool) "disagree B" false
    (Tuple.agree_on s t1 t2 (Attr_set.singleton "B"));
  Alcotest.(check bool) "agree on empty" true
    (Tuple.agree_on s t1 t2 Attr_set.empty)

(* ---------- Table ---------- *)

let schema3 = Schema.make "R" [ "A"; "B"; "C" ]

let tbl3 () =
  Table.of_list schema3
    [ (1, 2.0, mk [ 1; 1; 1 ]);
      (2, 1.0, mk [ 1; 2; 1 ]);
      (3, 1.0, mk [ 2; 2; 2 ]);
      (4, 0.5, mk [ 1; 1; 1 ]) ]

let test_table_basics () =
  let t = tbl3 () in
  Alcotest.(check int) "size" 4 (Table.size t);
  Alcotest.(check (list int)) "ids ordered" [ 1; 2; 3; 4 ] (Table.ids t);
  check_float "total weight" 4.5 (Table.total_weight t);
  Alcotest.(check bool) "has duplicates" false (Table.is_duplicate_free t);
  Alcotest.(check bool) "not unweighted" false (Table.is_unweighted t);
  Alcotest.check tuple "tuple 3" (mk [ 2; 2; 2 ]) (Table.tuple t 3);
  check_float "weight 1" 2.0 (Table.weight t 1)

let test_table_add_checks () =
  Alcotest.check_raises "duplicate id"
    (Invalid_argument "Table.add: duplicate identifier 1") (fun () ->
      ignore (Table.add ~id:1 (tbl3 ()) (mk [ 9; 9; 9 ])));
  Alcotest.check_raises "bad weight"
    (Invalid_argument "Table.add: weight must be positive") (fun () ->
      ignore (Table.add ~weight:0.0 (tbl3 ()) (mk [ 9; 9; 9 ])));
  Alcotest.check_raises "bad arity"
    (Invalid_argument "Table.add: tuple arity does not match schema")
    (fun () -> ignore (Table.add (tbl3 ()) (mk [ 1 ])))

let test_table_fresh_ids () =
  let t = Table.add (tbl3 ()) (mk [ 7; 7; 7 ]) in
  Alcotest.(check (list int)) "next id is max+1" [ 1; 2; 3; 4; 5 ] (Table.ids t)

let test_table_select_group () =
  let t = tbl3 () in
  let a1 = Table.select_eq t (Attr_set.singleton "A") (mk [ 1 ]) in
  Alcotest.(check (list int)) "A=1" [ 1; 2; 4 ] (Table.ids a1);
  let groups = Table.group_by t (Attr_set.singleton "A") in
  Alcotest.(check int) "two groups" 2 (List.length groups);
  let keys = List.map fst groups in
  Alcotest.(check bool) "keys distinct" true
    (List.length (List.sort_uniq Tuple.compare keys) = 2);
  (* Groups partition the table. *)
  let total = List.fold_left (fun acc (_, sub) -> acc + Table.size sub) 0 groups in
  Alcotest.(check int) "partition" (Table.size t) total

let test_table_project_distinct () =
  let t = tbl3 () in
  Alcotest.(check int) "distinct A" 2
    (List.length (Table.project_distinct t (Attr_set.singleton "A")));
  Alcotest.(check int) "distinct AB" 3
    (List.length (Table.project_distinct t (Attr_set.of_list [ "A"; "B" ])))

let test_table_restrict_remove_union () =
  let t = tbl3 () in
  let s = Table.restrict t [ 1; 3; 99 ] in
  Alcotest.(check (list int)) "restrict ignores unknown" [ 1; 3 ] (Table.ids s);
  let r = Table.remove t [ 2 ] in
  Alcotest.(check (list int)) "remove" [ 1; 3; 4 ] (Table.ids r);
  let u = Table.union s (Table.restrict t [ 2 ]) in
  Alcotest.(check (list int)) "union" [ 1; 2; 3 ] (Table.ids u);
  Alcotest.(check bool) "union overlap rejected" true
    (try ignore (Table.union s s); false with Invalid_argument _ -> true)

let test_table_subset_update_checks () =
  let t = tbl3 () in
  let s = Table.restrict t [ 1; 2 ] in
  Alcotest.(check bool) "subset" true (Table.is_subset_of s t);
  Alcotest.(check bool) "not reverse" false (Table.is_subset_of t s);
  let u = Table.set_tuple t 1 (mk [ 9; 1; 1 ]) in
  Alcotest.(check bool) "update" true (Table.is_update_of u t);
  Alcotest.(check bool) "subset is not update" false (Table.is_update_of s t)

let test_table_distances () =
  let t = tbl3 () in
  check_float "dist_sub" 1.5 (Table.dist_sub (Table.restrict t [ 1; 3 ]) t);
  check_float "dist_sub self" 0.0 (Table.dist_sub t t);
  let u = Table.set_tuple (Table.set_tuple t 1 (mk [ 9; 1; 1 ])) 3 (mk [ 9; 9; 2 ]) in
  (* tuple 1 (w=2): 1 cell; tuple 3 (w=1): 2 cells *)
  check_float "dist_upd" 4.0 (Table.dist_upd u t);
  Alcotest.check_raises "dist_sub rejects non-subset"
    (Invalid_argument "Table.dist_sub: not a subset") (fun () ->
      ignore (Table.dist_sub u t))

let test_table_active_domain () =
  let t = tbl3 () in
  Alcotest.(check int) "adom A" 2 (List.length (Table.active_domain t "A"));
  Alcotest.(check int) "all values" 2 (List.length (Table.all_values t))

let test_table_map_weights () =
  let t = Table.map_weights (tbl3 ()) (fun _ w -> w *. 2.0) in
  check_float "doubled" 9.0 (Table.total_weight t);
  Alcotest.check_raises "rejects nonpositive"
    (Invalid_argument "Table.map_weights: weight must be positive") (fun () ->
      ignore (Table.map_weights t (fun _ _ -> 0.0)))

(* ---------- CSV ---------- *)

let test_csv_roundtrip () =
  let t = tbl3 () in
  let s = Csv_io.to_string t in
  let t' = Csv_io.parse_string ~name:"R" s in
  Alcotest.check table "roundtrip with meta" t t'

let test_csv_no_meta () =
  let t = tbl3 () in
  let s = Csv_io.to_string ~with_meta:false t in
  let t' = Csv_io.parse_string ~name:"R" s in
  Alcotest.(check int) "same size" (Table.size t) (Table.size t');
  Alcotest.(check bool) "unit weights" true (Table.is_unweighted t')

let test_csv_quoting () =
  let s = Schema.make "R" [ "A"; "B" ] in
  let t =
    Table.of_tuples s
      [ Tuple.make [ Value.str "a,b"; Value.str "say \"hi\"" ] ]
  in
  let t' = Csv_io.parse_string ~name:"R" (Csv_io.to_string t) in
  Alcotest.check value "comma survives" (Value.str "a,b") (Tuple.get (Table.tuple t' 1) 0);
  Alcotest.check value "quotes survive" (Value.str "say \"hi\"")
    (Tuple.get (Table.tuple t' 1) 1)

let test_csv_errors () =
  let module E = Repair_runtime.Repair_error in
  Alcotest.(check bool) "short row fails with line number" true
    (try ignore (Csv_io.parse_string ~name:"R" "A,B\n1\n"); false
     with E.Error (E.Parse { line = Some 2; _ }) -> true);
  Alcotest.(check bool) "empty fails" true
    (try ignore (Csv_io.parse_string ~name:"R" ""); false
     with E.Error (E.Parse _) -> true);
  (match Csv_io.parse_result ~name:"R" "A,B\n1\n" with
  | Error (E.Parse { source; _ }) ->
    Alcotest.(check string) "default source label" "<csv>" source
  | _ -> Alcotest.fail "parse_result must return a Parse error")

(* ---------- JSON lines ---------- *)

let test_jsonl_roundtrip () =
  let t = tbl3 () in
  let t' = Jsonl_io.parse_string ~name:"R" (Jsonl_io.to_string t) in
  Alcotest.check table "roundtrip with meta" t t'

let test_jsonl_strings_and_escapes () =
  let s = Schema.make "R" [ "A"; "B" ] in
  let t =
    Table.of_tuples s
      [ Tuple.make [ Value.str "say \"hi\""; Value.str "tab\there" ];
        Tuple.make [ Value.str "back\\slash"; Value.str "plain" ] ]
  in
  let t' = Jsonl_io.parse_string ~name:"R" (Jsonl_io.to_string t) in
  Alcotest.check value "quotes survive" (Value.str "say \"hi\"")
    (Tuple.get (Table.tuple t' 1) 0);
  Alcotest.check value "tab survives" (Value.str "tab\there")
    (Tuple.get (Table.tuple t' 1) 1);
  Alcotest.check value "backslash survives" (Value.str "back\\slash")
    (Tuple.get (Table.tuple t' 2) 0)

let test_jsonl_input_variants () =
  let t =
    Jsonl_io.parse_string ~name:"R"
      "{\"A\": 1, \"B\": \"x\"}\n{ \"A\" : 2 , \"B\" : \"\\u0041\" }\n"
  in
  Alcotest.(check int) "two rows, auto ids" 2 (Table.size t);
  Alcotest.check value "unicode escape" (Value.str "A")
    (Tuple.get (Table.tuple t 2) 1);
  Alcotest.(check bool) "unit weights" true (Table.is_unweighted t)

let test_jsonl_errors () =
  let module E = Repair_runtime.Repair_error in
  let fails s =
    try ignore (Jsonl_io.parse_string ~name:"R" s); false
    with E.Error (E.Parse _) -> true
  in
  Alcotest.(check bool) "float rejected" true (fails "{\"A\": 1.5}");
  Alcotest.(check bool) "bool rejected" true (fails "{\"A\": true}");
  Alcotest.(check bool) "nested rejected" true (fails "{\"A\": [1]}");
  Alcotest.(check bool) "missing attr" true
    (fails "{\"A\": 1, \"B\": 2}\n{\"A\": 3}");
  Alcotest.(check bool) "empty input" true (fails "");
  Alcotest.(check bool) "trailing junk" true (fails "{\"A\": 1} x")

let test_jsonl_fractional_weight () =
  let t =
    Table.of_list (Schema.make "R" [ "A" ])
      [ (1, 0.9, Tuple.make [ Value.int 1 ]) ]
  in
  let t' = Jsonl_io.parse_string ~name:"R" (Jsonl_io.to_string t) in
  check_float "weight 0.9 roundtrips" 0.9 (Table.weight t' 1)

let test_file_io_roundtrips () =
  let t = tbl3 () in
  let csv_path = Filename.temp_file "repair_test" ".csv" in
  let jsonl_path = Filename.temp_file "repair_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove csv_path; Sys.remove jsonl_path)
    (fun () ->
      Csv_io.save t csv_path;
      Alcotest.check table "csv file roundtrip" t (Csv_io.load ~name:"R" csv_path);
      Jsonl_io.save t jsonl_path;
      Alcotest.check table "jsonl file roundtrip" t
        (Jsonl_io.load ~name:"R" jsonl_path))

(* ---------- Database ---------- *)

let test_database_basics () =
  let db =
    Database.empty
    |> fun db -> Database.add db ~name:"office" (tbl3 ())
    |> fun db -> Database.add db ~name:"staff" (Table.empty schema3)
  in
  Alcotest.(check (list string)) "names sorted" [ "office"; "staff" ]
    (Database.names db);
  Alcotest.(check bool) "find" true (Database.find db "office" <> None);
  check_float "total weight" 4.5 (Database.total_weight db);
  Alcotest.(check bool) "duplicate rejected" true
    (try ignore (Database.add db ~name:"office" (tbl3 ())); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "update unknown" true
    (try ignore (Database.update db ~name:"nope" (tbl3 ())); false
     with Not_found -> true)

let test_database_distances () =
  let db = Database.add Database.empty ~name:"r" (tbl3 ()) in
  let db' = Database.update db ~name:"r" (Table.restrict (tbl3 ()) [ 1; 3 ]) in
  check_float "dist_sub sums per relation" 1.5 (Database.dist_sub db' db);
  let mismatched = Database.add Database.empty ~name:"other" (tbl3 ()) in
  Alcotest.(check bool) "name mismatch rejected" true
    (try ignore (Database.dist_sub mismatched db); false
     with Invalid_argument _ -> true)

(* ---------- structured IO error paths ---------- *)

(* Every IO-layer failure must surface as a classified Repair_error —
   Parse, Io or Schema_mismatch — never as a bare Failure/Sys_error
   that would bypass the CLI's exit-code mapping. [parse_result] only
   guards Repair_error.Error, so an unclassified exception escapes and
   fails the property. *)
let io_error_classified = function
  | Ok _ -> true
  | Error e -> (
    let module E = Repair_runtime.Repair_error in
    match e with
    | E.Parse _ | E.Io _ | E.Schema_mismatch _ -> true
    | _ -> false)

(* Random near-miss inputs: printable noise interleaved with the
   delimiters and escapes both parsers are touchiest about. *)
let gen_io_junk =
  QCheck2.Gen.(
    let chunk =
      oneof
        [ string_size ~gen:printable (int_range 0 8);
          oneofl
            [ "\""; ","; "\n"; "{"; "}"; ":"; "\\"; "\\u12"; "\\uZZZZ";
              "#id"; "#weight"; "A,B\n1,2\n"; "{\"A\": 1}\n"; "1.5"; "-" ] ]
    in
    list_size (int_range 0 12) chunk |> map (String.concat ""))

let prop_csv_errors_classified =
  qcheck ~count:500 ~print:(fun s -> Printf.sprintf "%S" s)
    "csv parse_result never raises unclassified" gen_io_junk (fun s ->
      io_error_classified (Csv_io.parse_result ~name:"R" s))

let prop_jsonl_errors_classified =
  qcheck ~count:500 ~print:(fun s -> Printf.sprintf "%S" s)
    "jsonl parse_result never raises unclassified" gen_io_junk (fun s ->
      io_error_classified (Jsonl_io.parse_result ~name:"R" s))

let test_io_error_classes () =
  let module E = Repair_runtime.Repair_error in
  (match Csv_io.parse_result ~name:"R" "A,A\n1,2\n" with
  | Error (E.Schema_mismatch _) -> ()
  | _ -> Alcotest.fail "duplicate CSV columns must be Schema_mismatch");
  (match Jsonl_io.parse_result ~name:"R" "{\"A\": 1, \"A\": 2}" with
  | Error (E.Schema_mismatch _) -> ()
  | _ -> Alcotest.fail "duplicate JSONL keys must be Schema_mismatch");
  (* unterminated quote = truncated record, reported with its line *)
  (match Csv_io.parse_result ~name:"R" "A,B\n1,\"x" with
  | Error (E.Parse { line = Some 2; _ }) -> ()
  | _ -> Alcotest.fail "unterminated quote must be Parse at line 2");
  (* a non-hex \u escape used to escape as Failure (int_of_string) *)
  (match Jsonl_io.parse_result ~name:"R" "{\"A\": \"\\uZZZZ\"}" with
  | Error (E.Parse { line = Some 1; _ }) -> ()
  | _ -> Alcotest.fail "bad \\u escape must be Parse at line 1");
  (match Jsonl_io.parse_result ~name:"R" "{\"A\": \"\\u12" with
  | Error (E.Parse _) -> ()
  | _ -> Alcotest.fail "truncated \\u escape must be Parse")

let test_io_error_files () =
  let module E = Repair_runtime.Repair_error in
  let missing = Filename.temp_file "repair_test" ".gone" in
  Sys.remove missing;
  (match Csv_io.load_result ~name:"R" missing with
  | Error (E.Io { file; _ }) ->
    Alcotest.(check string) "io error carries path" missing file
  | _ -> Alcotest.fail "missing CSV file must be Io");
  (match Jsonl_io.load_result ~name:"R" missing with
  | Error (E.Io _) -> ()
  | _ -> Alcotest.fail "missing JSONL file must be Io");
  let dir = Filename.temp_file "repair_test" ".dir" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> Unix.rmdir dir)
    (fun () ->
      match Csv_io.load_result ~name:"R" dir with
      | Error (E.Io _) -> ()
      | _ -> Alcotest.fail "directory must be Io")

(* ---------- properties ---------- *)

let prop_group_by_partitions =
  qcheck "group_by partitions the table"
    (gen_table ~max_size:10 small_schema)
    (fun t ->
      let groups = Table.group_by t (Attr_set.of_list [ "A"; "B" ]) in
      let total = List.fold_left (fun acc (_, s) -> acc + Table.size s) 0 groups in
      total = Table.size t
      && List.for_all (fun (_, s) -> Table.is_subset_of s t) groups)

let prop_dist_sub_additive =
  qcheck "dist_sub = total − kept weight" (gen_table ~weighted:true small_schema)
    (fun t ->
      let ids = Table.ids t in
      let half = List.filteri (fun i _ -> i mod 2 = 0) ids in
      let s = Table.restrict t half in
      consistent_distance_eq
        (Table.dist_sub s t)
        (Table.total_weight t -. Table.total_weight s))

let prop_hamming_triangle =
  qcheck "hamming satisfies triangle inequality"
    QCheck2.Gen.(
      triple (gen_tuple small_schema) (gen_tuple small_schema)
        (gen_tuple small_schema))
    (fun (a, b, c) -> Tuple.hamming a c <= Tuple.hamming a b + Tuple.hamming b c)

let prop_jsonl_roundtrip =
  qcheck "jsonl roundtrips arbitrary nonempty int tables"
    (gen_table ~weighted:true ~max_size:12 small_schema)
    (fun t ->
      (* an empty table has no lines, hence no schema to reconstruct *)
      Table.is_empty t
      || Table.equal t (Jsonl_io.parse_string ~name:"R" (Jsonl_io.to_string t)))

let prop_csv_roundtrip =
  qcheck "csv roundtrips arbitrary int tables"
    (gen_table ~weighted:true ~max_size:12 small_schema)
    (fun t ->
      Table.equal t (Csv_io.parse_string ~name:"R" (Csv_io.to_string t)))

let () =
  Alcotest.run "relational"
    [ ( "value",
        [ Alcotest.test_case "ordering" `Quick test_value_order;
          Alcotest.test_case "hash" `Quick test_value_hash_consistent;
          Alcotest.test_case "of_string" `Quick test_value_of_string;
          Alcotest.test_case "pp" `Quick test_value_pp_roundtrip;
          Alcotest.test_case "supply collision-free" `Quick test_supply_avoids_collisions;
          Alcotest.test_case "supply start" `Quick test_supply_fresh_start ] );
      ( "attr_set",
        [ Alcotest.test_case "basics" `Quick test_attr_set_basic;
          Alcotest.test_case "pp" `Quick test_attr_set_pp;
          Alcotest.test_case "subsets" `Quick test_attr_set_subsets ] );
      ( "schema+tuple",
        [ Alcotest.test_case "schema" `Quick test_schema_basic;
          Alcotest.test_case "tuple ops" `Quick test_tuple_ops;
          Alcotest.test_case "hamming" `Quick test_tuple_hamming;
          Alcotest.test_case "agree_on" `Quick test_tuple_agree_on ] );
      ( "table",
        [ Alcotest.test_case "basics" `Quick test_table_basics;
          Alcotest.test_case "add checks" `Quick test_table_add_checks;
          Alcotest.test_case "fresh ids" `Quick test_table_fresh_ids;
          Alcotest.test_case "select/group" `Quick test_table_select_group;
          Alcotest.test_case "project distinct" `Quick test_table_project_distinct;
          Alcotest.test_case "restrict/remove/union" `Quick test_table_restrict_remove_union;
          Alcotest.test_case "subset/update" `Quick test_table_subset_update_checks;
          Alcotest.test_case "distances" `Quick test_table_distances;
          Alcotest.test_case "active domain" `Quick test_table_active_domain;
          Alcotest.test_case "map_weights" `Quick test_table_map_weights ] );
      ( "jsonl",
        [ Alcotest.test_case "roundtrip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "escapes" `Quick test_jsonl_strings_and_escapes;
          Alcotest.test_case "input variants" `Quick test_jsonl_input_variants;
          Alcotest.test_case "errors" `Quick test_jsonl_errors;
          Alcotest.test_case "fractional weight" `Quick test_jsonl_fractional_weight;
          Alcotest.test_case "file roundtrips" `Quick test_file_io_roundtrips ] );
      ( "database",
        [ Alcotest.test_case "basics" `Quick test_database_basics;
          Alcotest.test_case "distances" `Quick test_database_distances ] );
      ( "csv",
        [ Alcotest.test_case "roundtrip" `Quick test_csv_roundtrip;
          Alcotest.test_case "no meta" `Quick test_csv_no_meta;
          Alcotest.test_case "quoting" `Quick test_csv_quoting;
          Alcotest.test_case "errors" `Quick test_csv_errors ] );
      ( "io-errors",
        [ Alcotest.test_case "classes" `Quick test_io_error_classes;
          Alcotest.test_case "files" `Quick test_io_error_files;
          prop_csv_errors_classified;
          prop_jsonl_errors_classified ] );
      ( "properties",
        [ prop_jsonl_roundtrip;
          prop_group_by_partitions;
          prop_dist_sub_additive;
          prop_hamming_triangle;
          prop_csv_roundtrip ] ) ]
