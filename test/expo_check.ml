(* Validate a Prometheus-style text exposition read from stdin against
   the grammar checker in Repair_obs.Expo — the CI telemetry drill pipes
   a live scrape through this. Exit 0 when the document checks, 1 with
   the offending line on stderr otherwise. *)

let () =
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf stdin 1
     done
   with End_of_file -> ());
  match Repair_obs.Expo.check (Buffer.contents buf) with
  | Ok () ->
    Printf.printf "exposition ok (%d bytes)\n" (Buffer.length buf)
  | Error msg ->
    Printf.eprintf "exposition invalid: %s\n" msg;
    exit 1
