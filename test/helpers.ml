(* Shared test utilities: alcotest testables, qcheck generators for tables
   and FD sets, and tolerance helpers. *)

open Repair_relational
open Repair_fd

let attr_set = Alcotest.testable Attr_set.pp Attr_set.equal
let fd = Alcotest.testable Fd.pp Fd.equal
let fd_set = Alcotest.testable Fd_set.pp Fd_set.equal_syntactic
let value = Alcotest.testable Value.pp Value.equal
let tuple = Alcotest.testable Tuple.pp Tuple.equal
let table = Alcotest.testable Table.pp Table.equal

let feq ?(eps = 1e-9) () = Alcotest.float eps

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.check (feq ~eps ()) msg expected actual

(* ---------- qcheck generators ---------- *)

let small_schema = Schema.make "R" [ "A"; "B"; "C" ]

(* A tuple over [schema] with values drawn from 1..dom per column. *)
let gen_tuple ?(dom = 3) schema =
  QCheck2.Gen.(
    list_repeat (Schema.arity schema) (int_range 1 dom)
    |> map (fun vs -> Tuple.make (List.map Value.int vs)))

(* A table of [size] tuples; optionally weighted with small integer
   weights. *)
let gen_table ?(dom = 3) ?(max_size = 8) ?(weighted = false) schema =
  QCheck2.Gen.(
    int_range 0 max_size >>= fun n ->
    list_repeat n (pair (gen_tuple ~dom schema) (int_range 1 3))
    |> map (fun rows ->
           List.fold_left
             (fun tbl (t, w) ->
               let weight = if weighted then float_of_int w else 1.0 in
               Table.add ~weight tbl t)
             (Table.empty schema) rows))

(* Random nontrivial FDs over the attributes of [schema]. *)
let gen_fd schema =
  let attrs = Schema.attributes schema in
  QCheck2.Gen.(
    let* lhs_mask = int_range 1 ((1 lsl List.length attrs) - 1) in
    let lhs =
      Attr_set.of_list
        (List.filteri (fun i _ -> lhs_mask land (1 lsl i) <> 0) attrs)
    in
    let outside = List.filter (fun a -> not (Attr_set.mem a lhs)) attrs in
    match outside with
    | [] ->
      (* lhs = all attributes; use a singleton lhs instead. *)
      let a = List.hd attrs and b = List.nth attrs 1 in
      return (Fd.make (Attr_set.singleton a) (Attr_set.singleton b))
    | _ ->
      let* rhs = oneofl outside in
      return (Fd.make lhs (Attr_set.singleton rhs)))

let gen_fd_set ?(max_fds = 3) schema =
  QCheck2.Gen.(
    int_range 1 max_fds >>= fun n ->
    list_repeat n (gen_fd schema) |> map Fd_set.of_list)

(* Wrap a qcheck property as an alcotest case. The generation seed is
   fixed so failures reproduce run-to-run; [print] renders the
   counterexample (for instance-by-seed generators, the seed itself). *)
let qcheck ?(count = 100) ?(seed = 0xC0FFEE) ?print name gen prop =
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| seed |])
    (QCheck2.Test.make ~count ~name ?print gen prop)

let consistent_distance_eq ?(eps = 1e-6) a b = Float.abs (a -. b) < eps
