(* The shared benchmark plumbing: the epsilon comparator that replaced
   float (=) in the experiment checks, and the BENCH_*.json record
   emission parsed back through the JSON codec. *)

module Json = Repair_core.Repair.Obs.Json

let test_approx_eq () =
  Alcotest.(check bool) "exact equality" true (Bench_util.approx_eq 2.0 2.0);
  Alcotest.(check bool) "classic float sum" true
    (Bench_util.approx_eq (0.1 +. 0.2) 0.3);
  Alcotest.(check bool) "within eps" true
    (Bench_util.approx_eq ~eps:0.1 1.0 1.05);
  Alcotest.(check bool) "outside eps" false (Bench_util.approx_eq 1.0 1.1);
  Alcotest.(check bool) "symmetric" true
    (Bench_util.approx_eq 1.1 1.0 = Bench_util.approx_eq 1.0 1.1);
  Alcotest.(check bool) "negative values" true
    (Bench_util.approx_eq (-2.0) (-2.0));
  Alcotest.(check bool) "sign matters" false (Bench_util.approx_eq 1e-3 (-1e-3))

let test_record_roundtrip () =
  Bench_util.current_experiment := "T1";
  Bench_util.record ~n:5 ~noise:0.25 ~counters:[ ("edges", 3) ]
    ~solver:"unit" ~wall_ms:1.5 ();
  let file = Filename.temp_file "bench" ".json" in
  Bench_util.write_bench ~file ();
  let text =
    let ic = open_in file in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Sys.remove file;
    s
  in
  match Json.of_string text with
  | Error msg -> Alcotest.failf "emitted invalid JSON: %s" msg
  | Ok doc ->
    Alcotest.(check (option int)) "schema version" (Some 1)
      (Option.bind (Json.member "schema_version" doc) Json.int_value);
    Alcotest.(check bool) "git-describe present" true
      (Option.bind (Json.member "git" doc) Json.string_value <> None);
    let records =
      Option.bind (Json.member "records" doc) Json.list_value
      |> Option.value ~default:[]
    in
    let mine =
      List.find_opt
        (fun r ->
          Option.bind (Json.member "name" r) Json.string_value
          = Some "T1/unit")
        records
    in
    (match mine with
    | None -> Alcotest.fail "record T1/unit not emitted"
    | Some r ->
      Alcotest.(check (option int)) "n" (Some 5)
        (Option.bind (Json.member "n" r) Json.int_value);
      Alcotest.(check bool) "wall_ms" true
        (Option.bind (Json.member "wall_ms" r) Json.float_value = Some 1.5);
      Alcotest.(check (option int)) "counters survive" (Some 3)
        (Option.bind
           (Option.bind (Json.member "counters" r) (Json.member "edges"))
           Json.int_value))

let () =
  Alcotest.run "bench-util"
    [ ( "bench-util",
        [ Alcotest.test_case "approx_eq" `Quick test_approx_eq;
          Alcotest.test_case "record round trip" `Quick test_record_roundtrip ]
      ) ]
