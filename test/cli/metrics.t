Metrics snapshots from the command line: --metrics records solver
counters, hierarchical spans, and per-span latency histograms and dumps
them as JSON after the repair. Durations are the only nondeterministic
values; the sed masks replace every float and drop the timing-dependent
histogram bucket lines so the checked output is stable (counters are
ints and deterministic, and the snapshot carries no timestamps).

  $ cat > t.csv <<'CSV'
  > #id,A,B,C
  > 1,1,1,1
  > 2,1,1,2
  > 3,1,2,1
  > CSV

A tractable set runs OptSRepair (Algorithm 1); the span tree mirrors the
simplification chain — CommonLHSRep then ConsensusRep recursions:

  $ repair-cli s-repair -f "A -> B; A -> C" t.csv -o /dev/null --metrics 2>/dev/null | sed -E -e 's/[0-9]+\.[0-9]+/_/g' -e '/^ *"[0-9]+": [0-9]+,?$/d'
  {
    "counters": {
      "ticks.opt-s-repair": 7
    },
    "spans": [
      {
        "name": "opt-s-repair",
        "count": 1,
        "total_ms": _,
        "children": [
          {
            "name": "common-lhs",
            "count": 1,
            "total_ms": _,
            "children": [
              {
                "name": "consensus",
                "count": 1,
                "total_ms": _,
                "children": [
                  {
                    "name": "consensus",
                    "count": 2,
                    "total_ms": _,
                    "children": []
                  }
                ]
              }
            ]
          }
        ]
      }
    ],
    "histograms": {
      "common-lhs": {
        "count": 1,
        "mean_ms": _,
        "min_ms": _,
        "max_ms": _,
        "p50_ms": _,
        "p90_ms": _,
        "p99_ms": _,
        "buckets": {
        }
      },
      "consensus": {
        "count": 3,
        "mean_ms": _,
        "min_ms": _,
        "max_ms": _,
        "p50_ms": _,
        "p90_ms": _,
        "p99_ms": _,
        "buckets": {
        }
      },
      "opt-s-repair": {
        "count": 1,
        "mean_ms": _,
        "min_ms": _,
        "max_ms": _,
        "p50_ms": _,
        "p90_ms": _,
        "p99_ms": _,
        "buckets": {
        }
      }
    }
  }

A hard set at this size takes the exact baseline: conflict-graph
construction, then branch-and-bound vertex cover (which warm-starts from
the 2-approximation — hence the nested approx2 span):

  $ repair-cli s-repair -f "A -> B; B -> C" t.csv -o /dev/null --metrics 2>/dev/null | sed -E -e 's/[0-9]+\.[0-9]+/_/g' -e '/^ *"[0-9]+": [0-9]+,?$/d'
  {
    "counters": {
      "conflict-graph.edges": 3,
      "conflict-graph.vertices": 3,
      "ticks.vertex-cover": 3,
      "vertex-cover.local-ratio-payments": 1
    },
    "spans": [
      {
        "name": "s-exact",
        "count": 1,
        "total_ms": _,
        "children": [
          {
            "name": "conflict-graph.build",
            "count": 1,
            "total_ms": _,
            "children": []
          },
          {
            "name": "vertex-cover.exact",
            "count": 1,
            "total_ms": _,
            "children": [
              {
                "name": "vertex-cover.approx2",
                "count": 1,
                "total_ms": _,
                "children": []
              }
            ]
          }
        ]
      }
    ],
    "histograms": {
      "conflict-graph.build": {
        "count": 1,
        "mean_ms": _,
        "min_ms": _,
        "max_ms": _,
        "p50_ms": _,
        "p90_ms": _,
        "p99_ms": _,
        "buckets": {
        }
      },
      "s-exact": {
        "count": 1,
        "mean_ms": _,
        "min_ms": _,
        "max_ms": _,
        "p50_ms": _,
        "p90_ms": _,
        "p99_ms": _,
        "buckets": {
        }
      },
      "vertex-cover.approx2": {
        "count": 1,
        "mean_ms": _,
        "min_ms": _,
        "max_ms": _,
        "p50_ms": _,
        "p90_ms": _,
        "p99_ms": _,
        "buckets": {
        }
      },
      "vertex-cover.exact": {
        "count": 1,
        "mean_ms": _,
        "min_ms": _,
        "max_ms": _,
        "p50_ms": _,
        "p90_ms": _,
        "p99_ms": _,
        "buckets": {
        }
      }
    }
  }

--metrics composes with the robustness flags: under --max-steps the exact
attempt exhausts its budget and the driver degrades to the certified
approximation — the snapshot (here written to a file) keeps both attempts,
and the tick counter shows exactly where the budget ran out:

  $ repair-cli s-repair -f "A -> B; B -> C" --max-steps 1 t.csv -o /dev/null --metrics=m.json 2>/dev/null
  $ sed -E -e 's/[0-9]+\.[0-9]+/_/g' -e '/^ *"[0-9]+": [0-9]+,?$/d' m.json
  {
    "counters": {
      "conflict-graph.edges": 6,
      "conflict-graph.vertices": 6,
      "ticks.vertex-cover": 2,
      "vertex-cover.local-ratio-payments": 2
    },
    "spans": [
      {
        "name": "s-approx",
        "count": 1,
        "total_ms": _,
        "children": [
          {
            "name": "conflict-graph.build",
            "count": 1,
            "total_ms": _,
            "children": []
          },
          {
            "name": "vertex-cover.approx2",
            "count": 1,
            "total_ms": _,
            "children": []
          }
        ]
      },
      {
        "name": "s-exact",
        "count": 1,
        "total_ms": _,
        "children": [
          {
            "name": "conflict-graph.build",
            "count": 1,
            "total_ms": _,
            "children": []
          },
          {
            "name": "vertex-cover.exact",
            "count": 1,
            "total_ms": _,
            "children": [
              {
                "name": "vertex-cover.approx2",
                "count": 1,
                "total_ms": _,
                "children": []
              }
            ]
          }
        ]
      }
    ],
    "histograms": {
      "conflict-graph.build": {
        "count": 2,
        "mean_ms": _,
        "min_ms": _,
        "max_ms": _,
        "p50_ms": _,
        "p90_ms": _,
        "p99_ms": _,
        "buckets": {
        }
      },
      "s-approx": {
        "count": 1,
        "mean_ms": _,
        "min_ms": _,
        "max_ms": _,
        "p50_ms": _,
        "p90_ms": _,
        "p99_ms": _,
        "buckets": {
        }
      },
      "s-exact": {
        "count": 1,
        "mean_ms": _,
        "min_ms": _,
        "max_ms": _,
        "p50_ms": _,
        "p90_ms": _,
        "p99_ms": _,
        "buckets": {
        }
      },
      "vertex-cover.approx2": {
        "count": 2,
        "mean_ms": _,
        "min_ms": _,
        "max_ms": _,
        "p50_ms": _,
        "p90_ms": _,
        "p99_ms": _,
        "buckets": {
        }
      },
      "vertex-cover.exact": {
        "count": 1,
        "mean_ms": _,
        "min_ms": _,
        "max_ms": _,
        "p50_ms": _,
        "p90_ms": _,
        "p99_ms": _,
        "buckets": {
        }
      }
    }
  }

u-repair records through the same registry, and an ample --timeout leaves
the counters deterministic (wall-clock budgets only change *whether* a
solver finishes, never what it counts on the way):

  $ repair-cli u-repair -f "A -> B; B -> C" --timeout 100 t.csv -o /dev/null --metrics 2>/dev/null | grep -oE '"(ticks|u-exact)[^"]*"' | sort -u
  "ticks.u-exact"
  "u-exact"

Without --metrics nothing is emitted — the registry stays disabled:

  $ repair-cli s-repair -f "A -> B; A -> C" t.csv -o /dev/null 2>/dev/null
