Malformed inputs surface as classified errors with the structured exit
codes (2 = parse, 3 = I/O, 4 = schema) — never as an uncaught exception.

A CSV row with the wrong arity is a parse error pointing at its line:

  $ printf '#id,A,B\n1,1,2,extra\n' > arity.csv
  $ repair-cli s-repair -f "A -> B" arity.csv
  repair-cli: arity.csv:2: row has 4 fields, expected 3
  [2]

An unterminated quote is a truncated record, not a crash:

  $ printf 'A,B\n1,"x' > torn.csv
  $ repair-cli s-repair -f "A -> B" torn.csv
  repair-cli: torn.csv:2: unterminated quoted field
  [2]

Duplicate columns are a schema error (exit 4):

  $ printf 'A,A\n1,2\n' > dup.csv
  $ repair-cli s-repair -f "A -> A" dup.csv
  repair-cli: dup.csv: schema mismatch: Schema.make: duplicate attribute A
  [4]

A JSONL string with a non-hex \u escape is a parse error — this used to
escape the error taxonomy as an uncaught Failure from int_of_string:

  $ printf '{"A": "\\uZZZZ", "B": "y"}\n' > bad.jsonl
  $ repair-cli s-repair -f "A -> B" bad.jsonl
  repair-cli: bad.jsonl:1: bad \u escape "ZZZZ"
  [2]

An unreadable JSONL path (here a directory — missing files are caught
earlier, by the argument parser) is an I/O error (exit 3):

  $ mkdir dir.jsonl && repair-cli s-repair -f "A -> B" dir.jsonl 2>/dev/null
  [3]
