Event tracing from the command line: --trace records begin/end/instant
events into a bounded ring and writes them as Chrome trace-event JSON
(loadable in chrome://tracing or Perfetto) when the command exits.
Timestamps are the only nondeterministic values — the sed mask replaces
every float; everything else (event order, names, phases, pids) is
deterministic.

  $ cat > t.csv <<'CSV'
  > #id,A,B,C
  > 1,1,1,1
  > 2,1,1,2
  > 3,1,2,1
  > CSV

A hard FD set takes the exact path: the span events mirror the Metrics
span tree (s-exact, conflict-graph.build, vertex-cover.exact with its
approx2 warm start), budget ticks and the conflict-graph.built marker
appear as instants with the mandatory "s":"t" scope:

  $ repair-cli s-repair -f "A -> B; B -> C" t.csv -o /dev/null --trace=out.json 2>/dev/null
  $ sed -E 's/[0-9]+\.[0-9]+/_/g' out.json
  {
    "traceEvents": [
      {
        "name": "s-exact",
        "cat": "repair",
        "ph": "B",
        "ts": _,
        "pid": 1,
        "tid": 1
      },
      {
        "name": "conflict-graph.build",
        "cat": "repair",
        "ph": "B",
        "ts": _,
        "pid": 1,
        "tid": 1
      },
      {
        "name": "conflict-graph.built",
        "cat": "repair",
        "ph": "i",
        "ts": _,
        "pid": 1,
        "tid": 1,
        "s": "t"
      },
      {
        "name": "conflict-graph.build",
        "cat": "repair",
        "ph": "E",
        "ts": _,
        "pid": 1,
        "tid": 1
      },
      {
        "name": "vertex-cover.exact",
        "cat": "repair",
        "ph": "B",
        "ts": _,
        "pid": 1,
        "tid": 1
      },
      {
        "name": "vertex-cover.approx2",
        "cat": "repair",
        "ph": "B",
        "ts": _,
        "pid": 1,
        "tid": 1
      },
      {
        "name": "vertex-cover.approx2",
        "cat": "repair",
        "ph": "E",
        "ts": _,
        "pid": 1,
        "tid": 1
      },
      {
        "name": "ticks.vertex-cover",
        "cat": "repair",
        "ph": "i",
        "ts": _,
        "pid": 1,
        "tid": 1,
        "s": "t"
      },
      {
        "name": "ticks.vertex-cover",
        "cat": "repair",
        "ph": "i",
        "ts": _,
        "pid": 1,
        "tid": 1,
        "s": "t"
      },
      {
        "name": "ticks.vertex-cover",
        "cat": "repair",
        "ph": "i",
        "ts": _,
        "pid": 1,
        "tid": 1,
        "s": "t"
      },
      {
        "name": "vertex-cover.exact",
        "cat": "repair",
        "ph": "E",
        "ts": _,
        "pid": 1,
        "tid": 1
      },
      {
        "name": "s-exact",
        "cat": "repair",
        "ph": "E",
        "ts": _,
        "pid": 1,
        "tid": 1
      }
    ],
    "displayTimeUnit": "ms",
    "otherData": {
      "dropped": 0
    }
  }

The emitted file is a valid trace — matched B/E pairs, monotone
timestamps — which the profiler confirms:

  $ repair-cli profile --check out.json
  out.json: valid trace, 12 events, 0 dropped

A bare --trace defaults to trace.json; --trace=- streams to stdout:

  $ repair-cli s-repair -f "A -> B; B -> C" t.csv -o /dev/null --trace 2>/dev/null
  $ repair-cli profile --check trace.json
  trace.json: valid trace, 12 events, 0 dropped
  $ repair-cli s-repair -f "A -> B; B -> C" t.csv -o /dev/null --trace=- 2>/dev/null | grep -c '"ph"'
  12

The ring is bounded: with --trace-buffer 4 only the newest four events
survive and the evictions are counted in otherData. A lossy trace still
validates (the head may hold orphaned span ends), and the drop count
rides along:

  $ repair-cli s-repair -f "A -> B; B -> C" t.csv -o /dev/null --trace=small.json --trace-buffer 4 2>/dev/null
  $ grep -c '"ph"' small.json
  4
  $ grep '"dropped"' small.json
      "dropped": 8
  $ repair-cli profile --check small.json
  small.json: valid trace, 4 events, 8 dropped

Tracing composes with --metrics — one instrumentation point feeds both —
and the repair output is byte-identical with tracing on or off:

  $ repair-cli s-repair -f "A -> B; B -> C" t.csv -o traced.csv --trace=both.json --metrics=m.json 2>/dev/null
  $ grep -c '"ph"' both.json
  12
  $ grep -c '"spans"' m.json
  1
  $ repair-cli s-repair -f "A -> B; B -> C" t.csv -o plain.csv 2>/dev/null
  $ cmp traced.csv plain.csv
