Incremental streaming repair (DESIGN §16): replay a JSONL delta tape
against a base table and print the refreshed repair. The summary is
byte-identical to a cold s-repair run on the materialized table.

  $ cat > base.csv <<'CSV'
  > #id,#weight,A,B
  > 1,1,1,1
  > 2,1,1,2
  > 3,5,1,1
  > 4,1,2,1
  > 5,1,2,2
  > CSV

Happy path — two inserts and a delete; the delete evicts the old
consensus winner of group A=1:

  $ cat > tape.jsonl <<'EOF'
  > {"op":"insert","id":6,"weight":2.0,"tuple":[2,1]}
  > {"op":"delete","id":3}
  > {"op":"insert","id":7,"weight":1.0,"tuple":[1,2]}
  > EOF
  $ repair-cli stream -f "A -> B" base.csv --deltas tape.jsonl --dump-table mat.csv
  stream: ticks=3 rejected=0 live-rows=6
  stream: distance=2 method=OptSRepair (Algorithm 1) (optimal)
  #id,#weight,A,B
  2,1,1,2
  4,1,2,1
  6,2,2,1
  7,1,1,2

The dumped materialized table is what a cold run sees — and the cold
run prints the identical repair:

  $ cat mat.csv
  #id,#weight,A,B
  1,1,1,1
  2,1,1,2
  4,1,2,1
  5,1,2,2
  6,2,2,1
  7,1,1,2
  $ repair-cli s-repair -f "A -> B" mat.csv
  s-repair: distance=2 method=OptSRepair (Algorithm 1) (optimal)
  #id,#weight,A,B
  2,1,1,2
  4,1,2,1
  6,2,2,1
  7,1,1,2

Malformed delta lines are rejected with a structured note naming the
line; the stream keeps going and the exit code stays 0 — streaming
adds no rows to the exit-code table:

  $ cat > bad.jsonl <<'EOF'
  > {"op":"insert","id":8,"weight":1.0,"tuple":[2,2]}
  > this is not json
  > {"op":"delete","id":99}
  > {"op":"delete","id":5}
  > EOF
  $ repair-cli stream -f "A -> B" base.csv --deltas bad.jsonl
  stream: delta line 2 rejected: <delta>:2: invalid JSON: expected true at offset 0
  stream: delta line 3 rejected: <delta>: delete of unknown or already-deleted id 99
  stream: ticks=2 rejected=2 live-rows=5
  stream: distance=2 method=OptSRepair (Algorithm 1) (optimal)
  #id,#weight,A,B
  1,1,1,1
  3,5,1,1
  4,1,2,1
  $ echo $?
  0

A stream run never touches a batch journal: set one up, stream next to
it, and the journal byte-for-byte survives (and --resume still replays
from it untouched).

  $ cat > batch.json <<'EOF'
  > { "jobs": [ { "id": "one", "input": "base.csv", "fds": "A -> B" } ] }
  > EOF
  $ repair-cli batch batch.json --journal j.jsonl -o summary.json > batch.out
  $ cp j.jsonl j.before
  $ repair-cli stream -f "A -> B" base.csv --deltas tape.jsonl -o /dev/null
  stream: ticks=3 rejected=0 live-rows=6
  stream: distance=2 method=OptSRepair (Algorithm 1) (optimal)
  $ cmp j.jsonl j.before
  $ repair-cli batch batch.json --journal j.jsonl --resume -o resumed.json > resume.out
  $ cmp j.jsonl j.before
  $ grep -c '"replayed": true' resumed.json
  1
