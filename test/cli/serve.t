The serving daemon end to end: start it on a Unix socket, throw a
pipelined burst at it — including poison requests (well-formed envelopes
with garbage FDs) and raw malformed lines — then drain it with SIGTERM
and check the final snapshot's accounting identity.

10 repair requests plus one malformed line per 5 requests = 12 lines on
the wire; every line gets exactly one structured reply. Requests 5 and
10 are poison: they come back as classified errors ("failed" here), the
malformed lines as protocol errors, and the server keeps serving.

  $ repair-cli serve --socket ./s.sock --metrics-out snapshot.json 2>server.log &
  $ SRV=$!
  $ for i in $(seq 100); do [ -S ./s.sock ] && break; sleep 0.1; done

  $ repair-cli load --socket ./s.sock -n 10 -c 2 --rows 8 --poison-every 5 --malformed-every 5 -o report.json
  $ grep -E '"(sent|answered|ok|degraded|shed|failed|protocol_errors|unanswered)"' report.json
    "sent": 12,
    "answered": 12,
    "ok": 8,
    "degraded": 0,
    "shed": 0,
    "failed": 2,
    "protocol_errors": 2,
    "unanswered": 0,

SIGTERM begins the graceful drain: admission stops, the (empty) queue is
settled, the final snapshot is flushed, and the exit code is 0 because
nothing had to be cancelled.

  $ kill -TERM $SRV
  $ wait $SRV

  $ cat server.log
  repair-serve: listening on ./s.sock

The snapshot's serve section carries the accounting identity
admitted = completed + quarantined + cancelled (the poison requests were
admitted, then quarantined at the isolation boundary). queue_depth_max
depends on scheduling, so it is masked:

  $ sed -n '/"serve": {/,/}/p' snapshot.json | sed -E 's/"queue_depth_max": [0-9]+/"queue_depth_max": _/'
    "serve": {
      "received": 12,
      "admitted": 10,
      "completed": 8,
      "degraded": 0,
      "shed": 0,
      "quarantined": 2,
      "cancelled": 0,
      "protocol_errors": 2,
      "queue_depth": 0,
      "queue_depth_max": _,
      "mode": "draining"
    },

The socket file is removed on drain:

  $ [ -S ./s.sock ] || echo gone
  gone

Config validation is a structured CLI error, not a crash:

  $ repair-cli serve --socket ./s2.sock --queue-capacity 4 --degrade-watermark 9 2>&1 | head -1
  repair-cli: <args>: Engine.create: degrade_watermark must be in 1..queue_capacity
  $ repair-cli load --socket ./nowhere.sock -n 1 2>&1 | head -1
  repair-cli: ./nowhere.sock: load_gen: cannot connect: No such file or directory
