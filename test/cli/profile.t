The offline profiler: repair-cli profile replays a Chrome trace file
(written by --trace) into a per-name hotspot table — completed spans
with inclusive, self, and max wall time, instants as zero-duration
marks. Durations are the only nondeterministic values; the sed mask
replaces every float.

  $ cat > t.csv <<'CSV'
  > #id,A,B,C
  > 1,1,1,1
  > 2,1,1,2
  > 3,1,2,1
  > CSV
  $ repair-cli s-repair -f "A -> B; B -> C" t.csv -o /dev/null --trace=out.json 2>/dev/null

The report is sorted by self time; --top bounds the table (the trailing
total line always covers the whole trace). Sub-millisecond rows can
swap ranks run to run, so the full table is re-sorted by name here:

  $ repair-cli profile out.json | sed -E 's/[0-9]+\.[0-9]+/_/g' | LC_ALL=C sort
  NAME                                        COUNT     TOTAL_MS      SELF_MS       MAX_MS
  conflict-graph.build                            1        _        _        _
  conflict-graph.built                            1        _        _        _
  s-exact                                         1        _        _        _
  ticks.vertex-cover                              3        _        _        _
  total: 8 events across 6 names, _ ms self time
  vertex-cover.approx2                            1        _        _        _
  vertex-cover.exact                              1        _        _        _
  $ repair-cli profile --top 2 out.json | sed -E 's/[0-9]+\.[0-9]+/_/g' | LC_ALL=C sort
  NAME                                        COUNT     TOTAL_MS      SELF_MS       MAX_MS
  conflict-graph.build                            1        _        _        _
  total: 8 events across 6 names, _ ms self time
  vertex-cover.exact                              1        _        _        _

--check validates without printing the table:

  $ repair-cli profile --check out.json
  out.json: valid trace, 12 events, 0 dropped

A file that is not JSON is a parse error (exit 2); JSON that is not a
trace document is too; a structurally broken trace — here an End with no
matching Begin in a lossless (dropped: 0) trace — fails validation with
exit 1:

  $ echo 'not json' > bad.json
  $ repair-cli profile bad.json
  repair-cli: bad.json: expected null at offset 0
  [2]
  $ cat > notrace.json <<'JSON'
  > {"hello": "world"}
  > JSON
  $ repair-cli profile notrace.json
  repair-cli: notrace.json: missing "traceEvents"
  [2]
  $ cat > broken.json <<'JSON'
  > {"traceEvents": [
  >   {"name": "a", "cat": "repair", "ph": "E", "ts": 1.0, "pid": 1, "tid": 1}
  > ], "displayTimeUnit": "ms", "otherData": {"dropped": 0}}
  > JSON
  $ repair-cli profile broken.json
  repair-cli: broken.json: invalid trace: end of "a" with no open span
  [1]

A missing file is caught by the command line parser before the profiler
runs:

  $ repair-cli profile nope.json 2>&1 | head -1
  repair-cli: TRACE.json argument: no 'nope.json' file or directory
