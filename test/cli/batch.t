The journaled batch runner: a manifest of repair jobs, per-job
isolation, a write-ahead journal, quarantine for poison jobs, and
per-batch latency histograms. Durations are the only nondeterministic
values — the sed masks replace every float and drop the
timing-dependent histogram bucket lines; the journal carries exactly
one wall-clock field per commit (wall_ms), masked the same way.

  $ cat > office.csv <<'CSV'
  > #id,#weight,facility,room,floor,city
  > 1,2,HQ,322,3,Paris
  > 2,1,HQ,322,30,Madrid
  > 3,1,HQ,122,1,Madrid
  > 4,2,Lab1,B35,3,London
  > CSV
  $ cat > hard.csv <<'CSV'
  > #id,A,B,C
  > 1,1,1,1
  > 2,1,1,2
  > 3,1,2,1
  > CSV
  $ cat > broken.csv <<'CSV'
  > #id,A,B
  > 1,1,2,extra
  > CSV
  $ cat > batch.json <<'JSON'
  > {"jobs": [
  >   {"id": "office", "input": "office.csv",
  >    "fds": "facility -> city; facility room -> floor",
  >    "output": "office.repaired.csv"},
  >   {"id": "hard", "input": "hard.csv", "fds": "A -> B; B -> C",
  >    "max_steps": 1},
  >   {"id": "poison", "input": "broken.csv", "fds": "A -> B"}
  > ]}
  > JSON

A mixed batch: one clean repair, one degraded by its step budget, one
poison job (malformed input). The poison job is quarantined, the batch
finishes, and the exit code is 9:

  $ repair-cli batch batch.json --journal j.jsonl -o summary.json
  [9]
  $ sed -E -e 's/[0-9]+\.[0-9]+/_/g' -e '/^ *"[0-9]+": [0-9]+,?$/d' summary.json
  {
    "total": 3,
    "ok": 1,
    "degraded": 1,
    "quarantined": 1,
    "retried": 0,
    "replayed": 0,
    "wall_ms": _,
    "latency": {
      "count": 2,
      "mean_ms": _,
      "min_ms": _,
      "max_ms": _,
      "p50_ms": _,
      "p90_ms": _,
      "p99_ms": _,
      "buckets": {
      }
    },
    "latency_by_method": {
      "Bar-Yehuda–Even 2-approximation (Proposition _)": {
        "count": 1,
        "mean_ms": _,
        "min_ms": _,
        "max_ms": _,
        "p50_ms": _,
        "p90_ms": _,
        "p99_ms": _,
        "buckets": {
        }
      },
      "OptSRepair (Algorithm 1)": {
        "count": 1,
        "mean_ms": _,
        "min_ms": _,
        "max_ms": _,
        "p50_ms": _,
        "p90_ms": _,
        "p99_ms": _,
        "buckets": {
        }
      }
    },
    "jobs": [
      {
        "id": "office",
        "status": "ok",
        "attempts": 1,
        "replayed": false,
        "wall_ms": _,
        "distance": _,
        "method": "OptSRepair (Algorithm 1)"
      },
      {
        "id": "hard",
        "status": "degraded",
        "attempts": 1,
        "replayed": false,
        "wall_ms": _,
        "distance": _,
        "method": "Bar-Yehuda–Even 2-approximation (Proposition _)"
      },
      {
        "id": "poison",
        "status": "quarantined",
        "attempts": 1,
        "replayed": false,
        "wall_ms": _,
        "error": "parse"
      }
    ],
    "poison": [
      {
        "id": "poison",
        "error": "parse",
        "detail": "broken.csv:2: row has 4 fields, expected 3",
        "counters": {}
      }
    ]
  }

The journal is deterministic up to the wall_ms telemetry on commit
records — one fsync'd, CRC-framed record per line ("@len:crc:payload"),
terminal records are the commit points. The frame header is a pure
function of the payload, so the first sed strips it and the second
masks the one wall-clock field:

  $ sed -E -e 's/^@[0-9]+:[0-9a-f]{8}://' -e 's/[0-9]+\.[0-9]+/_/g' j.jsonl
  {"event":"begin","jobs":3}
  {"event":"start","job":"office","attempt":1}
  {"event":"commit","job":"office","attempt":1,"status":"ok","method":"OptSRepair (Algorithm 1)","distance":_,"wall_ms":_,"counters":{}}
  {"event":"start","job":"hard","attempt":1}
  {"event":"commit","job":"hard","attempt":1,"status":"degraded","method":"Bar-Yehuda–Even 2-approximation (Proposition _)","distance":_,"wall_ms":_,"counters":{}}
  {"event":"start","job":"poison","attempt":1}
  {"event":"quarantine","job":"poison","attempts":1,"error":"parse","detail":"broken.csv:2: row has 4 fields, expected 3","counters":{}}

The clean job's repaired table was written:

  $ cat office.repaired.csv
  #id,#weight,facility,room,floor,city
  2,1,HQ,322,30,Madrid
  3,1,HQ,122,1,Madrid
  4,2,Lab1,B35,3,London

Resuming a finished run replays every job from the journal without
executing anything; the journal is untouched and the exit code still
reports the quarantined job:

  $ cp j.jsonl j.ref
  $ repair-cli batch batch.json --journal j.jsonl --resume -o resumed.json
  [9]
  $ sed -E -e 's/[0-9]+\.[0-9]+/_/g' -e '/^ *"[0-9]+": [0-9]+,?$/d' resumed.json
  {
    "total": 3,
    "ok": 1,
    "degraded": 1,
    "quarantined": 1,
    "retried": 0,
    "replayed": 3,
    "wall_ms": _,
    "latency": {
      "count": 2,
      "mean_ms": _,
      "min_ms": _,
      "max_ms": _,
      "p50_ms": _,
      "p90_ms": _,
      "p99_ms": _,
      "buckets": {
      }
    },
    "latency_by_method": {
      "Bar-Yehuda–Even 2-approximation (Proposition _)": {
        "count": 1,
        "mean_ms": _,
        "min_ms": _,
        "max_ms": _,
        "p50_ms": _,
        "p90_ms": _,
        "p99_ms": _,
        "buckets": {
        }
      },
      "OptSRepair (Algorithm 1)": {
        "count": 1,
        "mean_ms": _,
        "min_ms": _,
        "max_ms": _,
        "p50_ms": _,
        "p90_ms": _,
        "p99_ms": _,
        "buckets": {
        }
      }
    },
    "jobs": [
      {
        "id": "office",
        "status": "ok",
        "attempts": 0,
        "replayed": true,
        "wall_ms": _,
        "distance": _,
        "method": "OptSRepair (Algorithm 1)"
      },
      {
        "id": "hard",
        "status": "degraded",
        "attempts": 0,
        "replayed": true,
        "wall_ms": _,
        "distance": _,
        "method": "Bar-Yehuda–Even 2-approximation (Proposition _)"
      },
      {
        "id": "poison",
        "status": "quarantined",
        "attempts": 0,
        "replayed": true,
        "wall_ms": _,
        "error": "parse"
      }
    ],
    "poison": [
      {
        "id": "poison",
        "error": "parse",
        "detail": "broken.csv:2: row has 4 fields, expected 3",
        "counters": {}
      }
    ]
  }
  $ cmp j.jsonl j.ref

Without --resume an existing journal is refused (exit 3, I/O error) so
a finished run is never silently clobbered:

  $ repair-cli batch batch.json --journal j.jsonl
  repair-cli: j.jsonl: journal exists; pass --resume to continue or delete it
  [3]
