(* Property-based differential tests: the production solvers against the
   brute-force baselines on random small instances from Repair_workload.

   Instances are derived deterministically from a generated integer seed
   (and the qcheck generation seed itself is fixed in Helpers.qcheck), so
   any reported counterexample reproduces from the printed seed alone. *)

open Repair_relational
module W = Repair_workload
module Simplify = Repair_dichotomy.Simplify
module Opt_s = Repair_srepair.Opt_s_repair
module S_exact = Repair_srepair.S_exact
module S_approx = Repair_srepair.S_approx

type instance = { seed : int; n : int; noise : float }

let print_instance { seed; n; noise } =
  Printf.sprintf "{seed=%d; n=%d; noise=%g}" seed n noise

let gen_instance =
  QCheck2.Gen.(
    let* seed = int_range 0 10_000_000 in
    let* n = int_range 1 8 in
    let* noise = oneofl [ 0.1; 0.25; 0.5 ] in
    return { seed; n; noise })

(* Schema, FD set, and dirty table all flow from the one seed. n <= 8 keeps
   the 2^n brute-force subset search instant. *)
let build ?(weighted = false) { seed; n; noise } =
  let rng = W.Rng.make seed in
  let schema, d = W.Gen_fd.random rng ~n_attrs:3 ~n_fds:2 ~max_lhs:2 in
  let tbl =
    W.Gen_table.dirty rng schema d
      { W.Gen_table.default with n; noise; domain_size = 3; weighted }
  in
  (d, tbl)

let brute_weight d tbl = Table.total_weight (S_exact.brute_force d tbl)

(* Theorem 3.2 side: whenever OSRSucceeds, Algorithm 1 is exact. *)
let opt_s_matches_brute_force =
  Helpers.qcheck ~count:300 ~print:print_instance
    "OptSRepair weight = brute force on PTIME sets" gen_instance (fun inst ->
      let d, tbl = build ~weighted:true inst in
      QCheck2.assume (Simplify.succeeds d);
      let poly = Table.total_weight (Opt_s.run_exn d tbl) in
      Helpers.consistent_distance_eq poly (brute_weight d tbl))

(* The exact vertex-cover baseline against the subset search — two
   independent exact algorithms must agree on every instance. *)
let vertex_cover_matches_brute_force =
  Helpers.qcheck ~count:300 ~print:print_instance
    "exact vertex cover weight = brute force" gen_instance (fun inst ->
      let d, tbl = build ~weighted:true inst in
      Helpers.consistent_distance_eq
        (Table.total_weight (S_exact.optimal d tbl))
        (brute_weight d tbl))

(* Proposition 3.3: the local-ratio repair deletes at most twice the
   optimal weight — on every Δ, tractable or hard. *)
let approx_within_factor_two =
  Helpers.qcheck ~count:300 ~print:print_instance
    "S_approx distance <= 2x optimal" gen_instance (fun inst ->
      let d, tbl = build ~weighted:true inst in
      let opt = Table.dist_sub (S_exact.brute_force d tbl) tbl in
      S_approx.distance d tbl <= (2.0 *. opt) +. 1e-6)

(* The approximation must actually repair: its output satisfies Δ. *)
let approx_is_consistent =
  Helpers.qcheck ~count:300 ~print:print_instance
    "S_approx output satisfies the FDs" gen_instance (fun inst ->
      let d, tbl = build inst in
      Repair_fd.Fd_set.satisfied_by d (S_approx.approx2 d tbl))

let () =
  Alcotest.run "differential"
    [ ( "s-repair",
        [ opt_s_matches_brute_force;
          vertex_cover_matches_brute_force;
          approx_within_factor_two;
          approx_is_consistent ] ) ]
