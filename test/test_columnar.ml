(* Equivalence suite for the columnar table core.

   The seed implementation stored tables as [row Imap.t] and derived
   every relational operation from map primitives. The columnar core
   replaces the representation with id-slice views over shared arrays;
   this suite pins the observable semantics to the seed's by re-running
   each operation against a straightforward [Map]-based model and
   requiring [Table.equal] on materialized results — plus bit-identical
   (no-epsilon) [Opt_s_repair] weights across construction paths. *)

open Repair_relational
open Helpers
module Imap = Map.Make (Int)

module Tmap = Map.Make (struct
  type t = Tuple.t

  let compare = Tuple.compare
end)

type model = { m_schema : Schema.t; m_rows : (Tuple.t * float) Imap.t }

let model_of_table tbl =
  {
    m_schema = Table.schema tbl;
    m_rows =
      Table.fold (fun i t w acc -> Imap.add i (t, w) acc) tbl Imap.empty;
  }

let table_of_model m =
  Table.of_list m.m_schema
    (List.map (fun (i, (t, w)) -> (i, w, t)) (Imap.bindings m.m_rows))

(* Seed [group_by]: collect distinct keys into a [Tmap] (hence key-sorted
   output), then one [Imap.filter] over all rows per key. *)
let model_group_by m x =
  let keys =
    Imap.fold
      (fun _ (t, _) acc -> Tmap.add (Tuple.project m.m_schema t x) () acc)
      m.m_rows Tmap.empty
  in
  Tmap.bindings keys
  |> List.map (fun (key, ()) ->
         let rows =
           Imap.filter
             (fun _ (t, _) ->
               Tuple.equal (Tuple.project m.m_schema t x) key)
             m.m_rows
         in
         (key, { m with m_rows = rows }))

let model_select m p =
  { m with m_rows = Imap.filter (fun i (t, _) -> p i t) m.m_rows }

let model_union m1 m2 =
  {
    m1 with
    m_rows =
      Imap.union (fun i _ _ -> invalid_arg (string_of_int i)) m1.m_rows
        m2.m_rows;
  }

let model_project_distinct m x =
  model_group_by m x |> List.map fst

(* Random attribute subsets of the test schema, empty included (the
   empty set is the consensus-FD grouping case). *)
let gen_attrs schema =
  let attrs = Schema.attributes schema in
  QCheck2.Gen.(
    int_range 0 ((1 lsl List.length attrs) - 1)
    |> map (fun mask ->
           Attr_set.of_list
             (List.filteri (fun i _ -> mask land (1 lsl i) <> 0) attrs)))

let gen_table_and_attrs =
  QCheck2.Gen.(
    pair
      (gen_table ~dom:3 ~max_size:12 ~weighted:true small_schema)
      (gen_attrs small_schema))

(* ---------- group_by / project_distinct vs the model ---------- *)

let prop_group_by_model =
  qcheck ~count:300 "group_by agrees with the seed Imap semantics"
    gen_table_and_attrs
    (fun (tbl, x) ->
      let got = Table.group_by tbl x in
      let want = model_group_by (model_of_table tbl) x in
      List.length got = List.length want
      && List.for_all2
           (fun (k1, sub) (k2, msub) ->
             Tuple.equal k1 k2 && Table.equal sub (table_of_model msub))
           got want)

let prop_project_distinct_model =
  qcheck ~count:300 "project_distinct agrees with the seed semantics"
    gen_table_and_attrs
    (fun (tbl, x) ->
      let got = Table.project_distinct tbl x in
      let want = model_project_distinct (model_of_table tbl) x in
      List.length got = List.length want
      && List.for_all2 Tuple.equal got want)

(* ---------- select / restrict / remove vs the model ---------- *)

let pred tbl i t =
  (i mod 2 = 0) || Value.compare (Tuple.get t 0) (Value.int 2) < 0
  [@@warning "-27"]

let prop_select_model =
  qcheck ~count:300 "select agrees with the seed Imap.filter"
    (gen_table ~dom:3 ~max_size:12 ~weighted:true small_schema)
    (fun tbl ->
      let p = pred tbl in
      Table.equal (Table.select tbl p)
        (table_of_model (model_select (model_of_table tbl) p)))

let prop_restrict_remove_model =
  qcheck ~count:300 "restrict/remove agree with the seed semantics"
    QCheck2.Gen.(
      pair
        (gen_table ~dom:3 ~max_size:12 ~weighted:true small_schema)
        (list_size (int_range 0 8) (int_range 0 15)))
    (fun (tbl, ids) ->
      let m = model_of_table tbl in
      Table.equal (Table.restrict tbl ids)
        (table_of_model (model_select m (fun i _ -> List.mem i ids)))
      && Table.equal (Table.remove tbl ids)
           (table_of_model (model_select m (fun i _ -> not (List.mem i ids)))))

(* ---------- union vs the model ---------- *)

let prop_union_same_store =
  qcheck ~count:300 "same-store union splices two views back together"
    (gen_table ~dom:3 ~max_size:12 ~weighted:true small_schema)
    (fun tbl ->
      let p i _ = i mod 2 = 0 in
      let evens = Table.select tbl p in
      let odds = Table.select tbl (fun i t -> not (p i t)) in
      Table.equal (Table.union evens odds) tbl
      && Table.equal (Table.union odds evens) tbl)

let prop_union_cross_store =
  qcheck ~count:300 "cross-store union agrees with the seed Imap.union"
    QCheck2.Gen.(
      pair
        (gen_table ~dom:3 ~max_size:8 ~weighted:true small_schema)
        (gen_table ~dom:4 ~max_size:8 ~weighted:true small_schema))
    (fun (t1, t2) ->
      (* shift t2's ids past t1's so the id sets are disjoint *)
      let shift = Table.size t1 + 1 in
      let t2 =
        Table.of_list small_schema
          (Table.fold (fun i t w acc -> (i + shift, w, t) :: acc) t2 [])
      in
      let m = model_union (model_of_table t1) (model_of_table t2) in
      Table.equal (Table.union t1 t2) (table_of_model m))

let test_union_duplicate_id () =
  let t1 = Table.of_tuples small_schema [ Tuple.make (List.map Value.int [ 1; 2; 3 ]) ] in
  Alcotest.check_raises "duplicate id"
    (Invalid_argument "Table.union: identifier 1 in both") (fun () ->
      ignore (Table.union t1 t1))

(* ---------- construction-path equivalence ---------- *)

(* Random (id, weight, tuple) rows with distinct ids in shuffled order:
   folding [add] (exercising both the tip-append and the splice path)
   must equal the bulk [of_list]/Builder path. *)
let gen_rows =
  QCheck2.Gen.(
    let* n = int_range 0 12 in
    let* perm = shuffle_l (List.init n (fun i -> (i * 3) + 1)) in
    let* tws = list_repeat n (pair (gen_tuple ~dom:3 small_schema) (int_range 1 3)) in
    return (List.map2 (fun id (t, w) -> (id, float_of_int w, t)) perm tws))

let prop_builder_vs_fold_add =
  qcheck ~count:300 "of_list equals folding add over shuffled explicit ids"
    gen_rows
    (fun rows ->
      let bulk = Table.of_list small_schema rows in
      let folded =
        List.fold_left
          (fun tbl (id, weight, t) -> Table.add ~id ~weight tbl t)
          (Table.empty small_schema) rows
      in
      Table.equal bulk folded)

let prop_views_are_persistent =
  qcheck ~count:300 "adding to the base never changes existing views"
    gen_table_and_attrs
    (fun (tbl, x) ->
      let groups = Table.group_by tbl x in
      let snapshots =
        List.map (fun (_, sub) -> (model_of_table sub, sub)) groups
      in
      (* grow the base (tip-append) and one of the views (splice path) *)
      let fresh = Tuple.make (List.map Value.int [ 9; 9; 9 ]) in
      let _ = Table.add tbl fresh in
      let _ =
        match groups with
        | (_, sub) :: _ -> Table.add sub fresh
        | [] -> Table.add tbl fresh
      in
      List.for_all
        (fun (snap, sub) -> Table.equal (table_of_model snap) sub)
        snapshots)

(* ---------- OptSRepair representation-independence ---------- *)

(* The same logical table reached through three different construction
   paths (incremental adds, bulk Builder, a select-view of a larger
   store) must give bit-identical OptSRepair results: equal repairs and
   [Float.equal] distances, no epsilon. *)
let prop_opt_s_repair_bit_identical =
  qcheck ~count:150 "OptSRepair weights are bit-identical across layouts"
    QCheck2.Gen.(
      pair
        (gen_table ~dom:3 ~max_size:10 ~weighted:true small_schema)
        (gen_fd_set small_schema))
    (fun (tbl, fds) ->
      let module Opt_s = Repair_srepair.Opt_s_repair in
      let bulk =
        Table.of_list small_schema
          (List.rev (Table.fold (fun i t w acc -> (i, w, t) :: acc) tbl []))
      in
      let view =
        (* pad with rows beyond the max id, then select them away *)
        let padded =
          Table.add
            (Table.add tbl (Tuple.make (List.map Value.int [ 7; 8; 9 ])))
            (Tuple.make (List.map Value.int [ 8; 9; 7 ]))
        in
        Table.restrict padded (Table.ids tbl)
      in
      Table.equal bulk tbl && Table.equal view tbl
      &&
      match
        (Opt_s.run fds tbl, Opt_s.run fds bulk, Opt_s.run fds view)
      with
      | Ok r1, Ok r2, Ok r3 ->
        Table.equal r1 r2 && Table.equal r1 r3
        && Float.equal (Table.dist_sub r1 tbl) (Table.dist_sub r2 bulk)
        && Float.equal (Table.dist_sub r1 tbl) (Table.dist_sub r3 view)
      | Error s1, Error s2, Error s3 ->
        Repair_fd.Fd_set.equal_syntactic s1 s2
        && Repair_fd.Fd_set.equal_syntactic s1 s3
      | _ -> false)

(* ---------- IO round-trips through the Builder ---------- *)

let prop_csv_roundtrip_bulk =
  qcheck ~count:150 "csv round-trip through the bulk Builder"
    (gen_table ~dom:3 ~max_size:10 ~weighted:true small_schema)
    (fun tbl ->
      let s = Csv_io.to_string tbl in
      Table.equal tbl (Csv_io.parse_string ~name:"R" s))

let prop_jsonl_roundtrip_bulk =
  qcheck ~count:150 "jsonl round-trip through the bulk Builder"
    (gen_table ~dom:3 ~max_size:10 ~weighted:true small_schema)
    (fun tbl ->
      if Table.is_empty tbl then true
      else
        let s = Jsonl_io.to_string tbl in
        Table.equal tbl (Jsonl_io.parse_string ~name:"R" s))

let () =
  Alcotest.run "columnar"
    [ ( "model equivalence",
        [ prop_group_by_model;
          prop_project_distinct_model;
          prop_select_model;
          prop_restrict_remove_model;
          prop_union_same_store;
          prop_union_cross_store;
          Alcotest.test_case "union duplicate id" `Quick
            test_union_duplicate_id ] );
      ( "construction paths",
        [ prop_builder_vs_fold_add; prop_views_are_persistent ] );
      ( "repair bit-identity",
        [ prop_opt_s_repair_bit_identical ] );
      ( "io", [ prop_csv_roundtrip_bulk; prop_jsonl_roundtrip_bulk ] ) ]
