(* The serving daemon: protocol totality, the warm LRU cache, watermark
   admission control (downgrade, then shed), per-request isolation,
   graceful drain with cancellation, the accounting identity — and a
   forked end-to-end drill over a real Unix socket. *)

module Protocol = Repair_serve.Protocol
module Cache = Repair_serve.Cache
module Engine = Repair_serve.Engine
module Server = Repair_serve.Server
module Json = Repair_obs.Json
module E = Repair_runtime.Repair_error
module R = Repair_core.Repair

let reply_json line =
  match Json.of_string line with
  | Ok j -> j
  | Error m -> Alcotest.failf "reply is not JSON (%s): %S" m line

let reply_ok line =
  match Json.member "ok" (reply_json line) with
  | Some (Json.Bool b) -> b
  | _ -> Alcotest.failf "reply lacks ok: %S" line

let reply_class line =
  match
    Option.bind (Json.member "error" (reply_json line)) (Json.member "class")
  with
  | Some (Json.String c) -> c
  | _ -> Alcotest.failf "reply lacks error.class: %S" line

let reply_bool key line =
  match Json.member key (reply_json line) with
  | Some (Json.Bool b) -> b
  | _ -> false

(* ---------- protocol ---------- *)

let test_protocol_roundtrip () =
  let line =
    Protocol.request_line ~id:(Json.String "r1") ~op:Protocol.S_repair
      ~fds:"A -> B" ~table:"A,B\n1,2\n" ~format:Protocol.Csv
      ~strategy:Protocol.Exact ~timeout_s:1.5 ~max_steps:42 ()
  in
  match Protocol.parse (String.trim line) with
  | Error r -> Alcotest.failf "round-trip rejected: %s" r.Protocol.detail
  | Ok req ->
    Alcotest.(check string) "op" "s-repair" (Protocol.op_name req.Protocol.op);
    Alcotest.(check string) "fds" "A -> B" req.Protocol.fds;
    Alcotest.(check string) "table" "A,B\n1,2\n" req.Protocol.table;
    Alcotest.(check bool) "strategy" true (req.Protocol.strategy = Protocol.Exact);
    Alcotest.(check (option int)) "max_steps" (Some 42) req.Protocol.max_steps;
    (match req.Protocol.timeout_s with
    | Some t -> Alcotest.(check (float 1e-9)) "timeout" 1.5 t
    | None -> Alcotest.fail "timeout lost")

let test_protocol_total () =
  let reject line =
    match Protocol.parse line with
    | Error r ->
      Alcotest.(check string) "class" Protocol.err_protocol r.Protocol.error_class
    | Ok _ -> Alcotest.failf "accepted %S" line
  in
  reject "";
  reject "not json";
  reject "[1,2]";
  reject "\"str\"";
  reject "{}";
  reject {|{"op": 42}|};
  reject {|{"op": "warp"}|};
  reject {|{"op": "s-repair"}|};
  reject {|{"op": "s-repair", "fds": "A -> B"}|};
  reject {|{"op": "s-repair", "fds": "A -> B", "table": "A\n1\n", "format": "xml"}|};
  reject {|{"op": "s-repair", "fds": "A -> B", "table": "A\n1\n", "timeout_s": -1}|};
  (* id is recovered whenever the line parsed as an object *)
  match Protocol.parse {|{"id": "x7", "op": "warp"}|} with
  | Error r -> Alcotest.(check bool) "id kept" true (r.Protocol.id = Json.String "x7")
  | Ok _ -> Alcotest.fail "accepted unknown op"

let test_protocol_control_ops () =
  List.iter
    (fun (name, control) ->
      match
        Protocol.parse (Printf.sprintf {|{"op": %S, "fds": "A -> B"}|} name)
      with
      | Ok req ->
        Alcotest.(check bool) name control (Protocol.is_control req.Protocol.op)
      | Error r -> Alcotest.failf "%s rejected: %s" name r.Protocol.detail)
    [ ("ping", true); ("metrics", true); ("invalidate-cache", true);
      ("drain", true); ("classify", false) ]

(* ---------- cache ---------- *)

let test_cache_lru () =
  let c = Cache.create ~name:"t" ~capacity:2 in
  Cache.add c "a" 1;
  Cache.add c "b" 2;
  Alcotest.(check (option int)) "hit a" (Some 1) (Cache.find c "a");
  Cache.add c "c" 3;
  (* "b" was least recently used *)
  Alcotest.(check (option int)) "b evicted" None (Cache.find c "b");
  Alcotest.(check (option int)) "a kept" (Some 1) (Cache.find c "a");
  Alcotest.(check (option int)) "c kept" (Some 3) (Cache.find c "c");
  let s = Cache.stats c in
  Alcotest.(check int) "evictions" 1 s.Cache.evictions;
  Alcotest.(check int) "size" 2 s.Cache.size;
  Alcotest.(check int) "cleared" 2 (Cache.clear c);
  Alcotest.(check int) "empty" 0 (Cache.length c)

let test_cache_failed_produce_not_cached () =
  let c = Cache.create ~name:"t" ~capacity:4 in
  let calls = ref 0 in
  (try
     ignore (Cache.find_or_add c "k" (fun () -> incr calls; failwith "no"))
   with Failure _ -> ());
  Alcotest.(check (option int)) "not cached" None (Cache.find c "k");
  ignore (Cache.find_or_add c "k" (fun () -> incr calls; 9));
  Alcotest.(check int) "produce retried" 2 !calls;
  Alcotest.(check (option int)) "now cached" (Some 9) (Cache.find c "k")

(* ---------- engine ---------- *)

let repair_line i =
  Protocol.request_line
    ~id:(Json.String (Printf.sprintf "r%d" i))
    ~op:Protocol.S_repair ~fds:"A -> B" ~table:"A,B\n1,2\n1,3\n" ()
  |> String.trim

let config ~capacity ~watermark =
  { Engine.default_config with
    queue_capacity = capacity;
    degrade_watermark = watermark }

let ok_exec ~conn:_ ~degraded:_ (_ : Protocol.request) = [ ("distance", Json.Float 1.0) ]

let feed engine i =
  Engine.handle_line engine ~conn:0 ~quota_used:0 (repair_line i)

(* Satellite: the deterministic overload scenario. Capacity 4, watermark
   2: requests 0-1 are admitted normally, 2-3 are admitted downgraded,
   4 is shed with a structured `overloaded` error; every accepted request
   completes; the final accounting identity balances. *)
let test_deterministic_overload () =
  let engine = Engine.create (config ~capacity:4 ~watermark:2) in
  for i = 0 to 3 do
    match feed engine i with
    | `Enqueued -> ()
    | _ -> Alcotest.failf "request %d was not admitted" i
  done;
  (match feed engine 4 with
  | `Reply line ->
    Alcotest.(check bool) "shed is an error" false (reply_ok line);
    Alcotest.(check string) "shed class" Protocol.err_overloaded
      (reply_class line)
  | _ -> Alcotest.fail "request 4 should have been shed");
  (* drain the queue; record which replies carry the downgrade marker *)
  let downgraded = ref [] in
  let rec run () =
    match Engine.take engine with
    | None -> ()
    | Some p ->
      let line = Engine.execute engine ~exec:ok_exec p in
      Alcotest.(check bool) "completed ok" true (reply_ok line);
      if reply_bool "degraded" line then begin
        (match Json.member "downgraded" (reply_json line) with
        | Some (Json.String "overload") -> ()
        | _ -> Alcotest.failf "degraded reply lacks downgrade marker: %S" line);
        downgraded := line :: !downgraded
      end;
      run ()
  in
  run ();
  Alcotest.(check int) "exactly the above-watermark admissions degraded" 2
    (List.length !downgraded);
  let c = Engine.counters engine in
  Alcotest.(check int) "admitted" 4 c.Engine.admitted;
  Alcotest.(check int) "completed" 4 c.Engine.completed;
  Alcotest.(check int) "shed" 1 c.Engine.shed;
  Alcotest.(check int) "degraded" 2 c.Engine.degraded;
  Alcotest.(check int) "queue_depth_max" 4 c.Engine.queue_depth_max;
  Alcotest.(check bool) "accounting identity" true (Engine.balanced engine)

let test_poison_isolation () =
  let engine = Engine.create (config ~capacity:8 ~watermark:8) in
  let poison_exec ~conn:_ ~degraded:_ (req : Protocol.request) =
    match req.Protocol.id with
    | Json.String "r0" ->
      E.raise_error (Parse { source = "<t>"; line = None; detail = "bad fds" })
    | Json.String "r1" -> failwith "wild exception"
    | _ -> [ ("distance", Json.Float 0.0) ]
  in
  for i = 0 to 2 do
    match feed engine i with
    | `Enqueued -> ()
    | _ -> Alcotest.failf "request %d not admitted" i
  done;
  let classes = ref [] in
  let rec run () =
    match Engine.take engine with
    | None -> ()
    | Some p ->
      let line = Engine.execute engine ~exec:poison_exec p in
      if not (reply_ok line) then classes := reply_class line :: !classes;
      run ()
  in
  run ();
  Alcotest.(check (list string)) "classified errors"
    [ "parse"; Protocol.err_internal ]
    (List.rev !classes);
  let c = Engine.counters engine in
  Alcotest.(check int) "quarantined" 2 c.Engine.quarantined;
  Alcotest.(check int) "completed" 1 c.Engine.completed;
  Alcotest.(check bool) "identity" true (Engine.balanced engine);
  (* poison must not poison the server: next request still served *)
  (match feed engine 9 with
  | `Enqueued -> ()
  | _ -> Alcotest.fail "engine stopped admitting after poison");
  match Engine.take engine with
  | Some p ->
    Alcotest.(check bool) "still serving" true
      (reply_ok (Engine.execute engine ~exec:ok_exec p))
  | None -> Alcotest.fail "queue empty"

let test_drain_and_cancel () =
  let engine = Engine.create (config ~capacity:8 ~watermark:8) in
  for i = 0 to 2 do ignore (feed engine i) done;
  Engine.drain engine;
  (* no admission during drain *)
  (match feed engine 3 with
  | `Reply line ->
    Alcotest.(check string) "draining class" Protocol.err_draining
      (reply_class line)
  | _ -> Alcotest.fail "admitted during drain");
  (* one request finishes inside the deadline, the rest are cancelled *)
  (match Engine.take engine with
  | Some p -> ignore (Engine.execute engine ~exec:ok_exec p)
  | None -> Alcotest.fail "queue empty");
  let cancelled = Engine.cancel_remaining engine in
  Alcotest.(check int) "two cancelled" 2 (List.length cancelled);
  List.iter
    (fun (_, line) ->
      Alcotest.(check string) "cancelled class" Protocol.err_cancelled
        (reply_class line))
    cancelled;
  let c = Engine.counters engine in
  Alcotest.(check int) "admitted" 3 c.Engine.admitted;
  Alcotest.(check int) "completed" 1 c.Engine.completed;
  Alcotest.(check int) "cancelled" 2 c.Engine.cancelled;
  Alcotest.(check bool) "identity after drain" true (Engine.balanced engine);
  match Json.member "serve" (Engine.snapshot_json engine) with
  | Some (Json.Obj fields) ->
    Alcotest.(check bool) "snapshot mode" true
      (List.assoc_opt "mode" fields = Some (Json.String "draining"))
  | _ -> Alcotest.fail "snapshot lacks serve accounting"

let test_quota_shed () =
  let engine =
    Engine.create { (config ~capacity:8 ~watermark:8) with quota = Some 2 }
  in
  (match Engine.handle_line engine ~conn:0 ~quota_used:2 (repair_line 0) with
  | `Reply line ->
    Alcotest.(check string) "quota class" Protocol.err_quota (reply_class line)
  | _ -> Alcotest.fail "quota not enforced");
  match Engine.handle_line engine ~conn:0 ~quota_used:1 (repair_line 1) with
  | `Enqueued -> Alcotest.(check bool) "identity" true (Engine.balanced engine)
  | _ -> Alcotest.fail "under-quota request rejected"

let test_control_ops_bypass_admission () =
  let engine = Engine.create (config ~capacity:1 ~watermark:1) in
  ignore (feed engine 0);
  (* queue is now full; control ops must still answer immediately *)
  (match Engine.handle_line engine ~conn:0 ~quota_used:99
           {|{"id": "p", "op": "ping"}|} with
  | `Reply line -> Alcotest.(check bool) "pong" true (reply_ok line)
  | _ -> Alcotest.fail "ping queued");
  match Engine.handle_line engine ~conn:0 ~quota_used:0
          {|{"id": "d", "op": "drain"}|} with
  | `Drain line -> Alcotest.(check bool) "drain acked" true (reply_ok line)
  | _ -> Alcotest.fail "drain not signalled"

(* ---------- driver-backed executor ---------- *)

let budget () = Repair_runtime.Budget.create ()

let test_core_exec_repair () =
  let cache = R.Serve.make_cache () in
  let sessions = R.Serve.make_sessions () in
  let mutex = Mutex.create () in
  let req line =
    match Protocol.parse line with
    | Ok r -> r
    | Error r -> Alcotest.failf "bad request: %s" r.Protocol.detail
  in
  let fields =
    R.Serve.exec ~cache ~sessions ~mutex ~conn:0 ~degraded:false ~budget:(budget ())
      (req {|{"op": "s-repair", "fds": "A -> B", "table": "A,B\n1,2\n1,3\n"}|})
  in
  (match List.assoc_opt "distance" fields with
  | Some (Json.Float d) -> Alcotest.(check (float 1e-9)) "distance" 1.0 d
  | _ -> Alcotest.fail "no distance");
  (match List.assoc_opt "optimal" fields with
  | Some (Json.Bool b) -> Alcotest.(check bool) "optimal" true b
  | _ -> Alcotest.fail "no optimal flag");
  (* degraded forces the approximation rung *)
  let fields =
    R.Serve.exec ~cache ~sessions ~mutex ~conn:0 ~degraded:true ~budget:(budget ())
      (req {|{"op": "s-repair", "fds": "A -> B", "table": "A,B\n1,2\n1,3\n"}|})
  in
  (match List.assoc_opt "method" fields with
  | Some (Json.String m) ->
    let contains_sub hay needle =
      let h = String.lowercase_ascii hay and n = String.length needle in
      let rec at i = i + n <= String.length h
                     && (String.sub h i n = needle || at (i + 1)) in
      at 0
    in
    Alcotest.(check bool) "approx method" true
      (contains_sub m "approx" || contains_sub m "local")
  | _ -> Alcotest.fail "no method");
  (* classify is answered from the warm cache: same fds key hits *)
  let stats_before = (Cache.stats cache).Cache.hits in
  let fields =
    R.Serve.exec ~cache ~sessions ~mutex ~conn:0 ~degraded:false ~budget:(budget ())
      (req {|{"op": "classify", "fds": "A -> B"}|})
  in
  (match List.assoc_opt "s_tractable" fields with
  | Some (Json.Bool b) -> Alcotest.(check bool) "tractable" true b
  | _ -> Alcotest.fail "no s_tractable");
  Alcotest.(check bool) "warm hit" true
    ((Cache.stats cache).Cache.hits > stats_before)

let test_core_exec_parse_error_classified () =
  let cache = R.Serve.make_cache () in
  let sessions = R.Serve.make_sessions () in
  let mutex = Mutex.create () in
  match
    R.Serve.exec ~cache ~sessions ~mutex ~conn:0 ~degraded:false ~budget:(budget ())
      (match Protocol.parse {|{"op": "classify", "fds": "not an fd"}|} with
      | Ok r -> r
      | Error _ -> Alcotest.fail "request rejected")
  with
  | _ -> Alcotest.fail "garbage fds accepted"
  | exception E.Error (E.Parse _) -> ()

(* ---------- end to end over a real socket ---------- *)

let socket_path () =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "repair_serve_%d.sock" (Unix.getpid ()))

(* ---------- live telemetry ---------- *)

let with_metrics f =
  Repair_obs.Metrics.reset ();
  Repair_obs.Metrics.enable ();
  Fun.protect
    ~finally:(fun () ->
      Repair_obs.Metrics.disable ();
      Repair_obs.Metrics.reset ())
    f

(* The stats op under an injected clock: windows close deterministically,
   the windowed rate is non-zero after traffic, and the reply's
   cumulative totals equal the registry counters the metrics op reports
   (acceptance check (b) at engine level). *)
let test_stats_op () =
  with_metrics @@ fun () ->
  let now = ref 0.0 in
  let engine =
    Engine.create
      ~clock:(fun () -> !now)
      { (config ~capacity:8 ~watermark:8) with
        stats_interval_s = 1.0;
        stats_windows = 8 }
  in
  for i = 0 to 3 do
    match feed engine i with
    | `Enqueued -> ()
    | _ -> Alcotest.failf "request %d not admitted" i
  done;
  let rec drain () =
    match Engine.take engine with
    | Some p ->
      ignore (Engine.execute engine ~exec:ok_exec p);
      drain ()
    | None -> ()
  in
  drain ();
  now := 1.5;
  Engine.tick_stats engine;
  let line = {|{"id": "s1", "op": "stats", "fds": "-"}|} in
  match Engine.handle_line engine ~conn:0 ~quota_used:0 line with
  | `Enqueued | `Drain _ -> Alcotest.fail "stats must answer inline"
  | `Reply reply ->
    Alcotest.(check bool) "stats reply ok" true (reply_ok reply);
    let j = reply_json reply in
    let stats =
      match Json.member "stats" j with
      | Some s -> s
      | None -> Alcotest.fail "reply lacks stats"
    in
    (match Json.member "windows" stats with
    | Some (Json.List (_ :: _)) -> ()
    | _ -> Alcotest.fail "no closed windows in the stats reply");
    let rate =
      match
        Option.bind
          (Option.bind (Json.member "rates" stats)
             (Json.member "serve.requests"))
          Json.float_value
      with
      | Some r -> r
      | None -> Alcotest.fail "no serve.requests rate"
    in
    Alcotest.(check bool) "windowed rate non-zero" true (rate > 0.0);
    let total key =
      match
        Option.bind
          (Option.bind (Json.member "totals" j) (Json.member key))
          Json.int_value
      with
      | Some n -> n
      | None -> Alcotest.failf "no total for %s" key
    in
    Alcotest.(check int) "totals equal the registry counters"
      (Repair_obs.Metrics.counter "serve.requests")
      (total "serve.requests");
    Alcotest.(check int) "four requests settled" 4 (total "serve.requests");
    (* rolling p99 present for the request histogram *)
    (match
       Option.bind (Json.member "rolling" stats)
         (Json.member "serve.request")
     with
    | Some summary -> (
      match Repair_obs.Histogram.of_summary_json summary with
      | Ok h ->
        Alcotest.(check int) "rolling histogram holds the window" 4
          (Repair_obs.Histogram.count h)
      | Error m -> Alcotest.failf "rolling summary invalid: %s" m)
    | None -> Alcotest.fail "no rolling serve.request histogram");
    (* the embedded exposition passes the grammar checker *)
    (match Json.member "exposition" j with
    | Some (Json.String text) -> (
      match Repair_obs.Expo.check text with
      | Ok () -> ()
      | Error m -> Alcotest.failf "exposition fails its checker: %s" m)
    | _ -> Alcotest.fail "reply lacks exposition");
    (* accounting section rides along and still balances *)
    Alcotest.(check bool) "accounting balanced" true (Engine.balanced engine)

(* Slow-request records: with the threshold at 0 every settled request
   fires the callback with a structured record carrying the
   deterministic request id, op, outcome, and span breakdown. *)
let test_slow_log_records () =
  with_metrics @@ fun () ->
  let records = ref [] in
  let engine =
    Engine.create
      ~on_slow:(fun r -> records := r :: !records)
      { (config ~capacity:8 ~watermark:8) with slow_ms = Some 0.0 }
  in
  (match feed engine 0 with
  | `Enqueued -> ()
  | _ -> Alcotest.fail "not admitted");
  (match Engine.take engine with
  | Some p ->
    Alcotest.(check string) "deterministic request id" "c0.1"
      p.Engine.req_id;
    ignore (Engine.execute engine ~exec:ok_exec p)
  | None -> Alcotest.fail "nothing queued");
  match !records with
  | [ record ] ->
    let str key =
      match Option.bind (Json.member key record) Json.string_value with
      | Some s -> s
      | None -> Alcotest.failf "record lacks %s" key
    in
    Alcotest.(check string) "record req id" "c0.1" (str "req");
    Alcotest.(check string) "record op" "s-repair" (str "op");
    Alcotest.(check string) "record outcome" "ok" (str "outcome");
    Alcotest.(check bool) "wall_ms present" true
      (Option.bind (Json.member "wall_ms" record) Json.float_value <> None);
    Alcotest.(check bool) "queue_ms present" true
      (Option.bind (Json.member "queue_ms" record) Json.float_value <> None);
    Alcotest.(check bool) "span breakdown present" true
      (match Json.member "spans" record with
      | Some (Json.List _) -> true
      | _ -> false);
    Alcotest.(check int) "serve.slow counted" 1
      (Repair_obs.Metrics.counter "serve.slow")
  | rs -> Alcotest.failf "expected one slow record, got %d" (List.length rs)

let test_end_to_end_unix_socket () =
  let path = socket_path () in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  match Unix.fork () with
  | 0 ->
    (* child: the daemon. Quiet stderr; never return into alcotest. *)
    let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
    Unix.dup2 devnull Unix.stderr;
    let code =
      try
        R.Serve.run
          ~config:
            { Engine.default_config with
              queue_capacity = 16;
              degrade_watermark = 8 }
          (Server.Unix_sock path)
      with _ -> 99
    in
    Unix._exit code
  | pid ->
    let cleanup () =
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ()
    in
    Fun.protect ~finally:cleanup @@ fun () ->
    let deadline = Unix.gettimeofday () +. 10.0 in
    while
      (not (Sys.file_exists path)) && Unix.gettimeofday () < deadline
    do
      ignore (Unix.select [] [] [] 0.02)
    done;
    Alcotest.(check bool) "socket appeared" true (Sys.file_exists path);
    let report =
      Repair_workload.Load_gen.run
        { Repair_workload.Load_gen.default_spec with
          requests = 12;
          connections = 2;
          n_rows = 10;
          poison_every = Some 5;
          malformed_every = Some 6;
          wall_timeout_s = 20.0 }
        (Repair_workload.Load_gen.Unix_sock path)
    in
    Alcotest.(check int) "everything answered"
      report.Repair_workload.Load_gen.sent
      report.Repair_workload.Load_gen.answered;
    Alcotest.(check bool) "some requests repaired" true
      (report.Repair_workload.Load_gen.ok > 0);
    Alcotest.(check bool) "poison classified, not fatal" true
      (report.Repair_workload.Load_gen.failed > 0);
    Alcotest.(check bool) "malformed answered" true
      (report.Repair_workload.Load_gen.protocol_errors > 0);
    (* graceful drain on SIGTERM with an idle queue: clean exit 0 *)
    Unix.kill pid Sys.sigterm;
    let _, status = Unix.waitpid [] pid in
    match status with
    | Unix.WEXITED 0 -> ()
    | Unix.WEXITED c -> Alcotest.failf "daemon exited %d" c
    | _ -> Alcotest.fail "daemon killed by signal"

(* Slow-loris drill: a client that sends half a request line and stalls
   must be evicted within the read deadline — with the structured
   deadline-exceeded error on its way out — while a well-behaved
   connection keeps completing requests throughout, and the daemon still
   drains cleanly on SIGTERM. Wholly idle keep-alive connections (like B
   between its pings) are never evicted. *)
let test_slow_loris_eviction () =
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  let path = socket_path () ^ ".loris" in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  match Unix.fork () with
  | 0 ->
    let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
    Unix.dup2 devnull Unix.stderr;
    let code =
      try
        R.Serve.run
          ~config:
            { Engine.default_config with
              queue_capacity = 16;
              degrade_watermark = 8;
              read_deadline_s = Some 0.4;
              write_deadline_s = Some 0.4 }
          (Server.Unix_sock path)
      with _ -> 99
    in
    Unix._exit code
  | pid ->
    let cleanup () =
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ()
    in
    Fun.protect ~finally:cleanup @@ fun () ->
    let deadline = Unix.gettimeofday () +. 10.0 in
    while (not (Sys.file_exists path)) && Unix.gettimeofday () < deadline do
      ignore (Unix.select [] [] [] 0.02)
    done;
    Alcotest.(check bool) "socket appeared" true (Sys.file_exists path);
    let connect () =
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      fd
    in
    let a = connect () and b = connect () in
    let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> () in
    Fun.protect
      ~finally:(fun () ->
        close_quiet a;
        close_quiet b)
    @@ fun () ->
    (* A: half a request line, then silence *)
    let partial = {|{"id": "loris", "op|} in
    ignore (Unix.write_substring a partial 0 (String.length partial));
    (* B: a healthy client that keeps completing *)
    let ping_b () =
      let line = {|{"id": "live", "op": "ping"}|} ^ "\n" in
      ignore (Unix.write_substring b line 0 (String.length line));
      match Unix.select [ b ] [] [] 5.0 with
      | [], _, _ -> Alcotest.fail "healthy connection starved"
      | _ ->
        let buf = Bytes.create 4096 in
        let n = Unix.read b buf 0 4096 in
        Alcotest.(check bool) "B got a reply" true (n > 0);
        Alcotest.(check bool) "B's reply is ok" true
          (reply_ok (Bytes.sub_string buf 0 n))
    in
    ping_b ();
    (* A must be evicted within the deadline plus slack: the structured
       error (best-effort) and then EOF *)
    let t0 = Unix.gettimeofday () in
    let out = Buffer.create 256 in
    let chunk = Bytes.create 4096 in
    let rec drain_a () =
      match Unix.select [ a ] [] [] 3.0 with
      | [], _, _ ->
        Alcotest.fail "stalled connection not evicted within its deadline"
      | _ -> (
        match Unix.read a chunk 0 4096 with
        | 0 -> () (* EOF: evicted *)
        | n ->
          Buffer.add_subbytes out chunk 0 n;
          drain_a ()
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
          ())
    in
    drain_a ();
    Alcotest.(check bool) "evicted within deadline + slack" true
      (Unix.gettimeofday () -. t0 < 3.0);
    Alcotest.(check bool) "eviction reply names the error class" true
      (contains (Buffer.contents out) Protocol.err_deadline);
    (* the healthy connection is unaffected by the eviction *)
    ping_b ();
    Unix.kill pid Sys.sigterm;
    let _, status = Unix.waitpid [] pid in
    match status with
    | Unix.WEXITED 0 -> ()
    | Unix.WEXITED c -> Alcotest.failf "daemon exited %d" c
    | _ -> Alcotest.fail "daemon killed by signal"

(* The same drill against a 4-domain server: queued requests execute on
   the pool batch by batch, and the accounting identity
   [admitted = completed + quarantined + cancelled + queue_depth] must
   hold in the final snapshot the drained daemon writes. *)
let test_end_to_end_parallel_accounting () =
  let path = socket_path () ^ ".par" in
  let metrics_path = path ^ ".metrics.json" in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  (try Unix.unlink metrics_path with Unix.Unix_error _ -> ());
  match Unix.fork () with
  | 0 ->
    let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
    Unix.dup2 devnull Unix.stderr;
    let code =
      try
        R.Serve.run
          ~config:
            { Engine.default_config with
              queue_capacity = 16;
              degrade_watermark = 8 }
          ~metrics_out:metrics_path ~domains:4 (Server.Unix_sock path)
      with _ -> 99
    in
    Unix._exit code
  | pid ->
    let cleanup () =
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      try Unix.unlink metrics_path with Unix.Unix_error _ -> ()
    in
    Fun.protect ~finally:cleanup @@ fun () ->
    let deadline = Unix.gettimeofday () +. 10.0 in
    while (not (Sys.file_exists path)) && Unix.gettimeofday () < deadline do
      ignore (Unix.select [] [] [] 0.02)
    done;
    Alcotest.(check bool) "socket appeared" true (Sys.file_exists path);
    let report =
      Repair_workload.Load_gen.run
        { Repair_workload.Load_gen.default_spec with
          requests = 24;
          connections = 3;
          n_rows = 10;
          poison_every = Some 5;
          malformed_every = Some 7;
          wall_timeout_s = 20.0 }
        (Repair_workload.Load_gen.Unix_sock path)
    in
    Alcotest.(check int) "everything answered"
      report.Repair_workload.Load_gen.sent
      report.Repair_workload.Load_gen.answered;
    Alcotest.(check bool) "some requests repaired" true
      (report.Repair_workload.Load_gen.ok > 0);
    Unix.kill pid Sys.sigterm;
    let _, status = Unix.waitpid [] pid in
    (match status with
    | Unix.WEXITED 0 -> ()
    | Unix.WEXITED c -> Alcotest.failf "daemon exited %d" c
    | _ -> Alcotest.fail "daemon killed by signal");
    let ic = open_in_bin metrics_path in
    let text =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let snapshot =
      match Json.of_string text with
      | Ok j -> j
      | Error m -> Alcotest.failf "metrics snapshot is not JSON: %s" m
    in
    let serve_int key =
      match
        Option.bind
          (Option.bind (Json.member "serve" snapshot) (Json.member key))
          Json.int_value
      with
      | Some n -> n
      | None -> Alcotest.failf "snapshot lacks serve.%s" key
    in
    Alcotest.(check bool) "work was admitted" true (serve_int "admitted" > 0);
    Alcotest.(check int) "admitted = completed + quarantined + cancelled + queue_depth"
      (serve_int "admitted")
      (serve_int "completed" + serve_int "quarantined"
      + serve_int "cancelled" + serve_int "queue_depth")

(* Regression: a shed reply that schedules a retry must count once (in
   [retried]), not in [shed] as well — so with retries enabled against a
   deliberately tiny queue, every original request still resolves to
   exactly one terminal outcome: ok + shed + failed + protocol = requests.
   (The old double-count made that sum exceed [requests] by [retried].)
   report_json additionally asserts the reply-level identities. *)
let test_load_gen_retry_accounting () =
  let path = socket_path () ^ ".retry" in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  match Unix.fork () with
  | 0 ->
    let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
    Unix.dup2 devnull Unix.stderr;
    let code =
      try
        R.Serve.run
          ~config:
            { Engine.default_config with
              queue_capacity = 1;
              degrade_watermark = 1 }
          (Server.Unix_sock path)
      with _ -> 99
    in
    Unix._exit code
  | pid ->
    let cleanup () =
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ()
    in
    Fun.protect ~finally:cleanup @@ fun () ->
    let deadline = Unix.gettimeofday () +. 10.0 in
    while (not (Sys.file_exists path)) && Unix.gettimeofday () < deadline do
      ignore (Unix.select [] [] [] 0.02)
    done;
    Alcotest.(check bool) "socket appeared" true (Sys.file_exists path);
    let requests = 30 in
    let report =
      Repair_workload.Load_gen.run
        { Repair_workload.Load_gen.default_spec with
          requests;
          connections = 6;
          op = Repair_serve.Protocol.Classify;
          retries = 6;
          retry_backoff_ms = 20;
          wall_timeout_s = 30.0 }
        (Repair_workload.Load_gen.Unix_sock path)
    in
    let open Repair_workload.Load_gen in
    (* report_json runs the identity assertions *)
    ignore (report_json report);
    Alcotest.(check int) "everything answered" report.sent report.answered;
    Alcotest.(check bool) "the tiny queue shed and retries fired" true
      (report.retried > 0);
    Alcotest.(check int)
      "each request resolved to exactly one terminal outcome" requests
      (report.ok + report.shed + report.failed + report.protocol_errors);
    Unix.kill pid Sys.sigterm;
    let _, status = Unix.waitpid [] pid in
    match status with
    | Unix.WEXITED 0 -> ()
    | Unix.WEXITED c -> Alcotest.failf "daemon exited %d" c
    | _ -> Alcotest.fail "daemon killed by signal"

let () =
  Alcotest.run "serve"
    [ ( "protocol",
        [ Alcotest.test_case "roundtrip" `Quick test_protocol_roundtrip;
          Alcotest.test_case "total parser" `Quick test_protocol_total;
          Alcotest.test_case "control ops" `Quick test_protocol_control_ops ] );
      ( "cache",
        [ Alcotest.test_case "lru eviction" `Quick test_cache_lru;
          Alcotest.test_case "failed produce" `Quick
            test_cache_failed_produce_not_cached ] );
      ( "engine",
        [ Alcotest.test_case "deterministic overload" `Quick
            test_deterministic_overload;
          Alcotest.test_case "poison isolation" `Quick test_poison_isolation;
          Alcotest.test_case "drain and cancel" `Quick test_drain_and_cancel;
          Alcotest.test_case "quota shed" `Quick test_quota_shed;
          Alcotest.test_case "control ops bypass admission" `Quick
            test_control_ops_bypass_admission ] );
      ( "telemetry",
        [ Alcotest.test_case "stats op: windows, rates, totals" `Quick
            test_stats_op;
          Alcotest.test_case "slow-request records" `Quick
            test_slow_log_records ] );
      ( "executor",
        [ Alcotest.test_case "driver-backed repair" `Quick
            test_core_exec_repair;
          Alcotest.test_case "parse error classified" `Quick
            test_core_exec_parse_error_classified ] );
      ( "end-to-end",
        [ Alcotest.test_case "unix socket burst + drain" `Quick
            test_end_to_end_unix_socket;
          Alcotest.test_case "slow-loris client evicted" `Quick
            test_slow_loris_eviction;
          Alcotest.test_case "4-domain server keeps the books balanced"
            `Quick test_end_to_end_parallel_accounting;
          Alcotest.test_case "retry accounting counts each reply once"
            `Quick test_load_gen_retry_accounting ] ) ]
