open Repair_graph
open Helpers

(* ---------- Graph ---------- *)

let petersen_outer = [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0) ]

let test_graph_basics () =
  let g = Graph.of_edges 5 petersen_outer in
  Alcotest.(check int) "n" 5 (Graph.n_vertices g);
  Alcotest.(check int) "m" 5 (Graph.n_edges g);
  Alcotest.(check (list int)) "neighbours" [ 1; 4 ] (Graph.neighbours g 0);
  Alcotest.(check int) "degree" 2 (Graph.degree g 0);
  Alcotest.(check int) "max degree" 2 (Graph.max_degree g);
  Alcotest.(check bool) "mem both ways" true
    (Graph.mem_edge g 0 1 && Graph.mem_edge g 1 0);
  (* duplicate edge ignored *)
  Graph.add_edge g 0 1;
  Alcotest.(check int) "no dup edge" 5 (Graph.n_edges g)

let test_graph_errors () =
  let g = Graph.create 3 in
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.add_edge: self-loop")
    (fun () -> Graph.add_edge g 1 1);
  Alcotest.(check bool) "range" true
    (try Graph.add_edge g 0 7; false with Invalid_argument _ -> true);
  Alcotest.(check bool) "nonpositive weight" true
    (try ignore (Graph.create_weighted [| 1.0; 0.0 |]); false
     with Invalid_argument _ -> true)

(* ---------- Vertex cover ---------- *)

let test_vc_known () =
  (* C5 cycle: τ = 3. *)
  let g = Graph.of_edges 5 petersen_outer in
  let c = Vertex_cover.exact g in
  Alcotest.(check bool) "is cover" true (Vertex_cover.is_cover g c);
  Alcotest.(check int) "C5 tau" 3 (List.length c);
  (* Star K1,4: τ = 1. *)
  let star = Graph.of_edges 5 [ (0, 1); (0, 2); (0, 3); (0, 4) ] in
  Alcotest.(check int) "star tau" 1 (List.length (Vertex_cover.exact star));
  (* Edgeless graph: empty cover. *)
  let empty = Graph.create 4 in
  Alcotest.(check (list int)) "edgeless" [] (Vertex_cover.exact empty)

let test_vc_weighted () =
  (* Path a-b-c where b is very heavy: cover {a, c} beats {b}. *)
  let g = Graph.of_edges ~weights:[| 1.0; 10.0; 1.0 |] 3 [ (0, 1); (1, 2) ] in
  let c = Vertex_cover.exact g in
  check_float "weighted opt" 2.0 (Vertex_cover.cover_weight g c);
  Alcotest.(check (list int)) "endpoints" [ 0; 2 ] c

let random_graph rng n p =
  let g = Graph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Repair_workload.Rng.bernoulli rng p then Graph.add_edge g u v
    done
  done;
  g

let test_vc_approx_bound () =
  let rng = Repair_workload.Rng.make 5 in
  for _ = 1 to 30 do
    let g = random_graph rng 10 0.3 in
    let apx = Vertex_cover.approx2 g in
    let opt = Vertex_cover.exact g in
    Alcotest.(check bool) "approx is cover" true (Vertex_cover.is_cover g apx);
    Alcotest.(check bool) "within factor 2" true
      (Vertex_cover.cover_weight g apx
       <= (2.0 *. Vertex_cover.cover_weight g opt) +. 1e-9)
  done

let test_vc_greedy_is_cover () =
  let rng = Repair_workload.Rng.make 6 in
  for _ = 1 to 20 do
    let g = random_graph rng 8 0.4 in
    Alcotest.(check bool) "greedy covers" true
      (Vertex_cover.is_cover g (Vertex_cover.greedy g))
  done

(* The incremental-worklist greedy must still return a valid cover on
   the E11 gadget graphs (random n=6 p=0.5 graphs over the bench seeds,
   as fed to the Theorem 4.10 vertex-cover gadget), and must pick the
   exact same cover as the edge-rescanning reference it replaced. *)
let greedy_reference g =
  let module Iset = Set.Make (Int) in
  let n = Graph.n_vertices g in
  let rec loop chosen =
    let uncovered =
      Graph.fold_edges
        (fun (u, v) acc ->
          if Iset.mem u chosen || Iset.mem v chosen then acc else (u, v) :: acc)
        g []
    in
    if uncovered = [] then chosen
    else begin
      let gain = Array.make n 0 in
      List.iter
        (fun (u, v) ->
          gain.(u) <- gain.(u) + 1;
          gain.(v) <- gain.(v) + 1)
        uncovered;
      let best = ref (-1) and best_score = ref neg_infinity in
      for v = 0 to n - 1 do
        if gain.(v) > 0 then begin
          let score = float_of_int gain.(v) /. Graph.weight g v in
          if score > !best_score then begin
            best := v;
            best_score := score
          end
        end
      done;
      loop (Iset.add !best chosen)
    end
  in
  Iset.elements (loop Iset.empty)

let test_vc_greedy_gadget () =
  let bench_seeds = List.init 10 (fun i -> 1000 + (17 * i)) in
  List.iter
    (fun seed ->
      let rng = Repair_workload.Rng.make seed in
      let g = random_graph rng 6 0.5 in
      let cover = Vertex_cover.greedy g in
      Alcotest.(check bool) "greedy covers the gadget graph" true
        (Vertex_cover.is_cover g cover);
      Alcotest.(check (list int)) "matches the edge-rescanning reference"
        (greedy_reference g) cover;
      (* the gadget table built from the same graph stays repairable *)
      let vg = Repair_reductions.Vc_gadget.of_graph g in
      let u = Repair_reductions.Vc_gadget.update_of_cover vg cover in
      Alcotest.(check bool) "cover yields a consistent update" true
        (Repair_fd.Fd_set.satisfied_by vg.Repair_reductions.Vc_gadget.fds
           u))
    bench_seeds

(* ---------- Max flow & LP bound ---------- *)

let test_max_flow_known () =
  (* Classic 4-node diamond: S=0, T=3; S→1 (3), S→2 (2), 1→2 (1), 1→3 (2),
     2→3 (3): max flow = 5. *)
  let net = Max_flow.create 4 in
  Max_flow.add_edge net 0 1 3.0;
  Max_flow.add_edge net 0 2 2.0;
  Max_flow.add_edge net 1 2 1.0;
  Max_flow.add_edge net 1 3 2.0;
  Max_flow.add_edge net 2 3 3.0;
  check_float "diamond max flow" 5.0 (Max_flow.max_flow net ~source:0 ~sink:3);
  (* repeatable *)
  check_float "idempotent rerun" 5.0 (Max_flow.max_flow net ~source:0 ~sink:3);
  let side = Max_flow.min_cut_side net ~source:0 in
  Alcotest.(check bool) "source on its side" true (List.mem 0 side);
  Alcotest.(check bool) "sink not reachable" false (List.mem 3 side)

let test_max_flow_disconnected () =
  let net = Max_flow.create 3 in
  Max_flow.add_edge net 0 1 5.0;
  check_float "no path" 0.0 (Max_flow.max_flow net ~source:0 ~sink:2);
  Alcotest.(check bool) "source=sink rejected" true
    (try ignore (Max_flow.max_flow net ~source:1 ~sink:1); false
     with Invalid_argument _ -> true)

let test_lp_bound_known () =
  (* Single edge, unit weights: x_u = x_v = 1/2 is optimal, value 1. *)
  let g1 = Graph.of_edges 2 [ (0, 1) ] in
  check_float "single edge LP" 1.0 (Vertex_cover.lp_lower_bound g1);
  (* Triangle, unit weights: LP = 3/2 (all x = 1/2); IP optimum 2. *)
  let k3 = Graph.of_edges 3 [ (0, 1); (1, 2); (0, 2) ] in
  check_float "triangle LP 3/2" 1.5 (Vertex_cover.lp_lower_bound k3);
  Alcotest.(check int) "triangle IP 2" 2 (List.length (Vertex_cover.exact k3));
  (* Bipartite: LP is integral — equals the optimum. Star K1,3. *)
  let star = Graph.of_edges 4 [ (0, 1); (0, 2); (0, 3) ] in
  check_float "star LP integral" 1.0 (Vertex_cover.lp_lower_bound star);
  (* Edgeless. *)
  check_float "edgeless" 0.0 (Vertex_cover.lp_lower_bound (Graph.create 3))

let prop_lp_bound_sandwich =
  qcheck ~count:60 "matching bound ≤ LP bound ≤ optimum"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Repair_workload.Rng.make seed in
      let g = random_graph rng 8 0.35 in
      (* random small integer weights *)
      let g =
        Graph.of_edges
          ~weights:(Array.init 8 (fun _ -> float_of_int (Repair_workload.Rng.in_range rng 1 4)))
          8 (Graph.edges g)
      in
      let matching = Vertex_cover.matching_lower_bound g in
      let lp = Vertex_cover.lp_lower_bound g in
      let opt = Vertex_cover.cover_weight g (Vertex_cover.exact g) in
      matching <= lp +. 1e-6 && lp <= opt +. 1e-6)

let prop_lp_exact_on_bipartite =
  qcheck ~count:40 "LP bound equals the optimum on bipartite graphs"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Repair_workload.Rng.make seed in
      (* random bipartite graph on 4+4 nodes *)
      let g = Graph.create 8 in
      for u = 0 to 3 do
        for v = 4 to 7 do
          if Repair_workload.Rng.bernoulli rng 0.4 then Graph.add_edge g u v
        done
      done;
      let lp = Vertex_cover.lp_lower_bound g in
      let opt = Vertex_cover.cover_weight g (Vertex_cover.exact g) in
      Float.abs (lp -. opt) < 1e-6)

(* ---------- Bipartite matching ---------- *)

let test_matching_known () =
  (* 2x2: diagonal worth 3+3, antidiagonal 5+1: max is antidiag? 5+1=6 = 3+3.
     Make it unambiguous. *)
  let w = [| [| 4.0; 1.0 |]; [| 2.0; 3.0 |] |] in
  let pairs, total = Bipartite_matching.solve w in
  check_float "total" 7.0 total;
  Alcotest.(check bool) "diag chosen" true
    (List.mem (0, 0) pairs && List.mem (1, 1) pairs);
  (* Leaving a row unmatched can be optimal when columns are scarce. *)
  let w2 = [| [| 5.0 |]; [| 9.0 |] |] in
  let pairs2, total2 = Bipartite_matching.solve w2 in
  check_float "scarce column" 9.0 total2;
  Alcotest.(check int) "single pair" 1 (List.length pairs2)

let test_matching_rectangular () =
  let w = [| [| 1.0; 2.0; 3.0 |] |] in
  let pairs, total = Bipartite_matching.solve w in
  check_float "picks best column" 3.0 total;
  Alcotest.(check (list (pair int int))) "pair" [ (0, 2) ] pairs

let test_matching_empty () =
  let pairs, total = Bipartite_matching.solve [||] in
  Alcotest.(check (list (pair int int))) "empty" [] pairs;
  check_float "zero" 0.0 total;
  (* all-zero matrix: nothing worth matching *)
  let pairs2, _ = Bipartite_matching.solve [| [| 0.0; 0.0 |] |] in
  Alcotest.(check (list (pair int int))) "all zeros" [] pairs2

let prop_matching_optimal =
  qcheck ~count:200 "hungarian equals brute force"
    QCheck2.Gen.(
      let* n1 = int_range 1 5 and* n2 = int_range 1 5 in
      list_repeat n1 (list_repeat n2 (map float_of_int (int_range 0 9))))
    (fun rows ->
      let w = Array.of_list (List.map Array.of_list rows) in
      let pairs, total = Bipartite_matching.solve w in
      let _, best = Bipartite_matching.brute_force w in
      Bipartite_matching.is_matching pairs
      && consistent_distance_eq total best
      && consistent_distance_eq total (Bipartite_matching.matching_weight w pairs))

(* ---------- Triangles ---------- *)

let test_triangle_enumerate () =
  (* K4 has 4 triangles. *)
  let k4 = Graph.of_edges 4 [ (0,1); (0,2); (0,3); (1,2); (1,3); (2,3) ] in
  Alcotest.(check int) "K4 triangles" 4 (List.length (Triangle.enumerate k4));
  (* C5 has none. *)
  let c5 = Graph.of_edges 5 petersen_outer in
  Alcotest.(check (list (triple int int int))) "C5 none" [] (Triangle.enumerate c5)

let test_triangle_packing () =
  (* K4: any two triangles share an edge, so max packing = 1. *)
  let k4 = Graph.of_edges 4 [ (0,1); (0,2); (0,3); (1,2); (1,3); (2,3) ] in
  Alcotest.(check int) "K4 packing" 1 (List.length (Triangle.max_packing k4));
  (* Two disjoint triangles. *)
  let g2 = Graph.of_edges 6 [ (0,1); (1,2); (0,2); (3,4); (4,5); (3,5) ] in
  Alcotest.(check int) "two disjoint" 2 (List.length (Triangle.max_packing g2));
  Alcotest.(check bool) "greedy edge-disjoint" true
    (Triangle.edge_disjoint (Triangle.greedy_packing g2));
  (* K222: 8 triangles, max edge-disjoint packing 4. *)
  let k222 =
    Triangle.tripartite_of_parts 2 2 2
      [ (0,2);(0,3);(1,2);(1,3);(0,4);(0,5);(1,4);(1,5);(2,4);(2,5);(3,4);(3,5) ]
  in
  Alcotest.(check int) "K222 triangles" 8 (List.length (Triangle.enumerate k222));
  Alcotest.(check int) "K222 packing" 4 (List.length (Triangle.max_packing k222))

let test_tripartite_validation () =
  Alcotest.(check bool) "intra-part edge rejected" true
    (try ignore (Triangle.tripartite_of_parts 2 2 2 [ (0, 1) ]); false
     with Invalid_argument _ -> true)

let prop_packing_greedy_vs_exact =
  qcheck ~count:40 "greedy packing is edge-disjoint and at most exact"
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      let rng = Repair_workload.Rng.make seed in
      let g = random_graph rng 7 0.45 in
      let greedy = Triangle.greedy_packing g in
      let exact = Triangle.max_packing g in
      Triangle.edge_disjoint greedy
      && Triangle.edge_disjoint exact
      && List.length greedy <= List.length exact
      && 3 * List.length greedy >= List.length exact)

(* ---------- incremental vertex cover (DESIGN §16) ---------- *)

module Vci = Vertex_cover.Incremental

(* The stream layer's identity contract leans on this: after ANY edit
   script the maintained structure must hand back exactly the cover a
   fresh greedy run computes on the densified live graph. *)
let incremental_matches_fresh t =
  let g, map = Vci.to_graph t in
  Vci.cover t = List.map (fun i -> map.(i)) (Vertex_cover.greedy g)

let test_vc_incremental_edge_deletion () =
  let t = Vci.create () in
  let v =
    Array.init 6 (fun k -> Vci.add_vertex t ~weight:(float_of_int (1 + (k mod 3))))
  in
  (* path v0 - v1 - v2 - v3 - v4 - v5 *)
  for k = 0 to 4 do
    Vci.add_edge t v.(k) v.(k + 1)
  done;
  Alcotest.(check bool) "path cover matches" true (incremental_matches_fresh t);
  Vci.remove_edge t v.(2) v.(3);
  Alcotest.(check bool)
    "after interior edge deletion" true (incremental_matches_fresh t);
  (* deleting an absent edge is a no-op; re-adding restores the gain
     state; an endpoint deletion then perturbs a degree-1 vertex *)
  Vci.remove_edge t v.(2) v.(3);
  Vci.add_edge t v.(2) v.(3);
  Vci.remove_edge t v.(0) v.(1);
  Alcotest.(check bool)
    "after re-add + endpoint deletion" true (incremental_matches_fresh t);
  Alcotest.(check int) "edge count tracks" 4 (Vci.n_edges t);
  for k = 0 to 4 do
    Vci.remove_edge t v.(k) v.(k + 1)
  done;
  Alcotest.(check (list int)) "no edges, empty cover" [] (Vci.cover t)

let test_vc_incremental_remove_vertex () =
  let t = Vci.create () in
  let a = Vci.add_vertex t ~weight:1.0 in
  let b = Vci.add_vertex t ~weight:2.0 in
  let c = Vci.add_vertex t ~weight:3.0 in
  Vci.add_edge t a b;
  Vci.add_edge t b c;
  Vci.remove_vertex t b;
  Alcotest.(check int) "incident edges dropped" 0 (Vci.n_edges t);
  Alcotest.(check bool) "vertex gone" false (Vci.mem_vertex t b);
  Alcotest.(check (list int)) "cover empty" [] (Vci.cover t);
  Alcotest.(check int) "slots never reused" 3 (Vci.add_vertex t ~weight:1.0)

let prop_vc_incremental_interleavings =
  qcheck ~count:300
    "incremental cover = fresh greedy after every step of a random script"
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Repair_workload.Rng.make seed in
      let t = Vci.create () in
      let alive = ref [] in
      let ok = ref true in
      let steps = 5 + Repair_workload.Rng.int rng 45 in
      for _ = 1 to steps do
        (match Repair_workload.Rng.int rng 5 with
        | 0 | 1 ->
          let w = float_of_int (1 + Repair_workload.Rng.int rng 5) in
          alive := Vci.add_vertex t ~weight:w :: !alive
        | 2 when List.length !alive >= 2 ->
          let u = Repair_workload.Rng.pick rng !alive in
          let v = Repair_workload.Rng.pick rng !alive in
          if u <> v then Vci.add_edge t u v
        | 3 when List.length !alive >= 2 ->
          let u = Repair_workload.Rng.pick rng !alive in
          let v = Repair_workload.Rng.pick rng !alive in
          if u <> v then Vci.remove_edge t u v
        | 4 when !alive <> [] ->
          let v = Repair_workload.Rng.pick rng !alive in
          Vci.remove_vertex t v;
          alive := List.filter (fun x -> x <> v) !alive
        | _ -> ());
        ok := !ok && incremental_matches_fresh t
      done;
      !ok)

let () =
  Alcotest.run "graph"
    [ ( "graph",
        [ Alcotest.test_case "basics" `Quick test_graph_basics;
          Alcotest.test_case "errors" `Quick test_graph_errors ] );
      ( "vertex cover",
        [ Alcotest.test_case "known graphs" `Quick test_vc_known;
          Alcotest.test_case "weighted" `Quick test_vc_weighted;
          Alcotest.test_case "2-approx bound" `Quick test_vc_approx_bound;
          Alcotest.test_case "greedy covers" `Quick test_vc_greedy_is_cover;
          Alcotest.test_case "greedy on E11 gadget graphs" `Quick
            test_vc_greedy_gadget ] );
      ( "max flow / lp bound",
        [ Alcotest.test_case "max flow known" `Quick test_max_flow_known;
          Alcotest.test_case "disconnected" `Quick test_max_flow_disconnected;
          Alcotest.test_case "lp bound known" `Quick test_lp_bound_known;
          prop_lp_bound_sandwich;
          prop_lp_exact_on_bipartite ] );
      ( "matching",
        [ Alcotest.test_case "known" `Quick test_matching_known;
          Alcotest.test_case "rectangular" `Quick test_matching_rectangular;
          Alcotest.test_case "empty" `Quick test_matching_empty;
          prop_matching_optimal ] );
      ( "triangles",
        [ Alcotest.test_case "enumerate" `Quick test_triangle_enumerate;
          Alcotest.test_case "packing" `Quick test_triangle_packing;
          Alcotest.test_case "tripartite check" `Quick test_tripartite_validation;
          prop_packing_greedy_vs_exact ] );
      ( "incremental vertex cover",
        [ Alcotest.test_case "edge deletions rebuild gains" `Quick
            test_vc_incremental_edge_deletion;
          Alcotest.test_case "vertex removal drops incident edges" `Quick
            test_vc_incremental_remove_vertex;
          prop_vc_incremental_interleavings ] ) ]
