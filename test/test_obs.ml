(* The observability layer itself: metamorphic properties of the metrics
   registry (monotone counters, span nesting, pristine reset), the JSON
   codec, and the guarantee that instrumentation never changes solver
   results. *)

open Repair_relational
module Json = Repair_obs.Json
module Metrics = Repair_obs.Metrics
module R = Repair_core.Repair

let with_enabled f =
  Metrics.reset ();
  Metrics.enable ();
  Fun.protect ~finally:(fun () ->
      Metrics.disable ();
      Metrics.reset ())
    f

(* ---------- counters ---------- *)

let test_counters_monotone () =
  with_enabled @@ fun () ->
  let seen = ref [] in
  List.iter
    (fun by ->
      Metrics.incr ~by "m";
      seen := Metrics.counter "m" :: !seen)
    [ 1; 0; 5; 2; 0; 3 ];
  let decreasing =
    List.exists2 (fun later earlier -> later < earlier) !seen
      (List.tl !seen @ [ 0 ])
  in
  Alcotest.(check bool) "counter never decreases" false decreasing;
  Alcotest.(check int) "final value is the sum" 11 (Metrics.counter "m")

let test_counter_negative_rejected () =
  with_enabled @@ fun () ->
  Alcotest.check_raises "negative increment"
    (Invalid_argument "Metrics.incr: negative increment") (fun () ->
      Metrics.incr ~by:(-1) "m")

let test_counter_default_zero () =
  with_enabled @@ fun () ->
  Alcotest.(check int) "unknown counter reads 0" 0 (Metrics.counter "nope")

let test_counters_sorted () =
  with_enabled @@ fun () ->
  Metrics.incr "zeta";
  Metrics.incr "alpha";
  Metrics.incr "mid";
  Alcotest.(check (list string))
    "sorted by name" [ "alpha"; "mid"; "zeta" ]
    (List.map fst (Metrics.counters ()))

(* ---------- spans ---------- *)

let busy_wait seconds =
  let t0 = Unix.gettimeofday () in
  while Unix.gettimeofday () -. t0 < seconds do
    ()
  done

let test_nested_spans_sum_to_parent () =
  with_enabled @@ fun () ->
  Metrics.with_span "parent" (fun () ->
      Metrics.with_span "a" (fun () -> busy_wait 0.002);
      Metrics.with_span "b" (fun () -> busy_wait 0.002);
      Metrics.with_span "a" (fun () -> busy_wait 0.001));
  match Metrics.spans () with
  | [ parent ] ->
    Alcotest.(check string) "root span" "parent" parent.Metrics.name;
    Alcotest.(check int) "two distinct children" 2
      (List.length parent.Metrics.children);
    let child_total =
      List.fold_left
        (fun acc c -> acc +. c.Metrics.total_s)
        0.0 parent.Metrics.children
    in
    Alcotest.(check bool) "children sum <= parent" true
      (child_total <= parent.Metrics.total_s +. 1e-6);
    let a =
      List.find (fun c -> c.Metrics.name = "a") parent.Metrics.children
    in
    Alcotest.(check int) "re-entered child aggregates" 2 a.Metrics.count
  | spans ->
    Alcotest.failf "expected exactly one top-level span, got %d"
      (List.length spans)

let test_span_records_on_raise () =
  with_enabled @@ fun () ->
  (try Metrics.with_span "dying" (fun () -> raise Exit) with Exit -> ());
  match Metrics.span_total "dying" with
  | Some t -> Alcotest.(check bool) "duration recorded" true (t >= 0.0)
  | None -> Alcotest.fail "span lost on exception"

let test_span_total_path () =
  with_enabled @@ fun () ->
  Metrics.with_span "outer" (fun () ->
      Metrics.with_span "inner" (fun () -> busy_wait 0.001));
  Alcotest.(check bool) "path resolves" true
    (Metrics.span_total "outer/inner" <> None);
  Alcotest.(check bool) "missing path is None" true
    (Metrics.span_total "outer/nope" = None)

let test_disabled_records_nothing () =
  Metrics.reset ();
  Metrics.disable ();
  let r = Metrics.with_span "ghost" (fun () -> Metrics.incr "ghost"; 42) in
  Alcotest.(check int) "with_span is transparent" 42 r;
  Metrics.enable ();
  Alcotest.(check int) "no counter" 0 (Metrics.counter "ghost");
  Alcotest.(check bool) "no span" true (Metrics.spans () = []);
  Metrics.disable ()

let test_reset_pristine () =
  Metrics.reset ();
  Metrics.enable ();
  let pristine = Json.to_string (Metrics.snapshot ()) in
  Metrics.incr ~by:7 "dirt";
  Metrics.with_span "work" (fun () -> busy_wait 0.001);
  Alcotest.(check bool) "registry is dirty" true
    (Json.to_string (Metrics.snapshot ()) <> pristine);
  Metrics.reset ();
  Alcotest.(check string) "reset restores the pristine snapshot" pristine
    (Json.to_string (Metrics.snapshot ()));
  Metrics.disable ()

(* ---------- solver results are instrumentation-independent ---------- *)

let build_instance (seed, n, noise) =
  let module W = Repair_workload in
  let rng = W.Rng.make seed in
  let schema, d = W.Gen_fd.random rng ~n_attrs:3 ~n_fds:2 ~max_lhs:2 in
  let tbl =
    W.Gen_table.dirty rng schema d
      { W.Gen_table.default with n; noise; domain_size = 3 }
  in
  (d, tbl)

let gen_instance =
  QCheck2.Gen.(
    triple (int_range 0 1_000_000) (int_range 1 8) (oneofl [ 0.1; 0.25; 0.5 ]))

let print_instance (seed, n, noise) =
  Printf.sprintf "seed=%d n=%d noise=%g" seed n noise

let qcheck_same_repair =
  Helpers.qcheck ~count:100 ~print:print_instance
    "driver returns the same repair with metrics on and off" gen_instance
    (fun inst ->
      let d, tbl = build_instance inst in
      Metrics.reset ();
      Metrics.disable ();
      let off = R.Driver.s_repair d tbl in
      Metrics.reset ();
      Metrics.enable ();
      let on = R.Driver.s_repair d tbl in
      Metrics.disable ();
      Metrics.reset ();
      Table.equal off.R.Driver.result on.R.Driver.result
      && off.R.Driver.method_used = on.R.Driver.method_used)

(* ---------- the JSON codec ---------- *)

let sample =
  Json.Obj
    [ ("s", Json.String "a \"quoted\"\nline\twith \\ specials");
      ("i", Json.Int (-42));
      ("f", Json.Float 2.5);
      ("whole", Json.Float 12.0);
      ("b", Json.Bool true);
      ("nothing", Json.Null);
      ("l", Json.List [ Json.Int 1; Json.Obj []; Json.List [] ]) ]

let test_json_roundtrip () =
  List.iter
    (fun pretty ->
      match Json.of_string (Json.to_string ~pretty sample) with
      | Ok v -> Alcotest.(check bool) "round trip" true (v = sample)
      | Error msg -> Alcotest.failf "parse failed: %s" msg)
    [ false; true ]

let test_json_float_literals () =
  Alcotest.(check string) "whole floats keep the point" "12.0"
    (Json.to_string (Json.Float 12.0));
  Alcotest.(check string) "ints stay ints" "12" (Json.to_string (Json.Int 12));
  Alcotest.(check string) "non-finite becomes null" "null"
    (Json.to_string (Json.Float Float.nan))

let test_json_errors () =
  List.iter
    (fun text ->
      match Json.of_string text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed input %S" text)
    [ ""; "{"; "[1,]"; "{\"a\" 1}"; "tru"; "1 2"; "\"unterminated" ]

let test_json_accessors () =
  let v = Json.Obj [ ("x", Json.Int 3); ("y", Json.Float 1.5) ] in
  Alcotest.(check (option int)) "int member" (Some 3)
    (Option.bind (Json.member "x" v) Json.int_value);
  Alcotest.(check bool) "int coerces to float" true
    (Option.bind (Json.member "x" v) Json.float_value = Some 3.0);
  Alcotest.(check bool) "missing member" true (Json.member "z" v = None)

(* Dyadic floats and printable strings round trip exactly. *)
let gen_json =
  let open QCheck2.Gen in
  let leaf =
    oneof
      [ return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) (int_range (-1000) 1000);
        map (fun i -> Json.Float (float_of_int i /. 4.0)) (int_range (-1000) 1000);
        map (fun s -> Json.String s) (small_string ~gen:printable) ]
  in
  let rec tree depth =
    if depth = 0 then leaf
    else
      oneof
        [ leaf;
          map (fun l -> Json.List l) (small_list (tree (depth - 1)));
          map
            (fun kvs ->
              (* Duplicate keys would defeat the assoc-based comparison. *)
              Json.Obj
                (List.mapi (fun i (k, v) -> (Printf.sprintf "%d%s" i k, v)) kvs))
            (small_list (pair (small_string ~gen:printable) (tree (depth - 1)))) ]
  in
  tree 3

let qcheck_json_roundtrip =
  Helpers.qcheck ~count:500 ~print:(fun v -> Json.to_string ~pretty:true v)
    "random documents round trip" gen_json (fun v ->
      Json.of_string (Json.to_string v) = Ok v
      && Json.of_string (Json.to_string ~pretty:true v) = Ok v)

let () =
  Alcotest.run "obs"
    [ ( "counters",
        [ Alcotest.test_case "monotone" `Quick test_counters_monotone;
          Alcotest.test_case "negative rejected" `Quick
            test_counter_negative_rejected;
          Alcotest.test_case "default zero" `Quick test_counter_default_zero;
          Alcotest.test_case "sorted" `Quick test_counters_sorted ] );
      ( "spans",
        [ Alcotest.test_case "nesting sums to parent" `Quick
            test_nested_spans_sum_to_parent;
          Alcotest.test_case "recorded on raise" `Quick
            test_span_records_on_raise;
          Alcotest.test_case "path lookup" `Quick test_span_total_path;
          Alcotest.test_case "disabled is free" `Quick
            test_disabled_records_nothing;
          Alcotest.test_case "reset is pristine" `Quick test_reset_pristine ] );
      ("transparency", [ qcheck_same_repair ]);
      ( "json",
        [ Alcotest.test_case "round trip" `Quick test_json_roundtrip;
          Alcotest.test_case "float literals" `Quick test_json_float_literals;
          Alcotest.test_case "errors" `Quick test_json_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
          qcheck_json_roundtrip ] ) ]
