(* The observability layer itself: metamorphic properties of the metrics
   registry (monotone counters, span nesting, pristine reset), the JSON
   codec, and the guarantee that instrumentation never changes solver
   results. *)

open Repair_relational
module Json = Repair_obs.Json
module Metrics = Repair_obs.Metrics
module R = Repair_core.Repair

let with_enabled f =
  Metrics.reset ();
  Metrics.enable ();
  Fun.protect ~finally:(fun () ->
      Metrics.disable ();
      Metrics.reset ())
    f

(* ---------- counters ---------- *)

let test_counters_monotone () =
  with_enabled @@ fun () ->
  let seen = ref [] in
  List.iter
    (fun by ->
      Metrics.incr ~by "m";
      seen := Metrics.counter "m" :: !seen)
    [ 1; 0; 5; 2; 0; 3 ];
  let decreasing =
    List.exists2 (fun later earlier -> later < earlier) !seen
      (List.tl !seen @ [ 0 ])
  in
  Alcotest.(check bool) "counter never decreases" false decreasing;
  Alcotest.(check int) "final value is the sum" 11 (Metrics.counter "m")

let test_counter_negative_rejected () =
  with_enabled @@ fun () ->
  Alcotest.check_raises "negative increment"
    (Invalid_argument "Metrics.incr: negative increment") (fun () ->
      Metrics.incr ~by:(-1) "m")

let test_counter_default_zero () =
  with_enabled @@ fun () ->
  Alcotest.(check int) "unknown counter reads 0" 0 (Metrics.counter "nope")

let test_counters_sorted () =
  with_enabled @@ fun () ->
  Metrics.incr "zeta";
  Metrics.incr "alpha";
  Metrics.incr "mid";
  Alcotest.(check (list string))
    "sorted by name" [ "alpha"; "mid"; "zeta" ]
    (List.map fst (Metrics.counters ()))

(* ---------- spans ---------- *)

let busy_wait seconds =
  let t0 = Unix.gettimeofday () in
  while Unix.gettimeofday () -. t0 < seconds do
    ()
  done

let test_nested_spans_sum_to_parent () =
  with_enabled @@ fun () ->
  Metrics.with_span "parent" (fun () ->
      Metrics.with_span "a" (fun () -> busy_wait 0.002);
      Metrics.with_span "b" (fun () -> busy_wait 0.002);
      Metrics.with_span "a" (fun () -> busy_wait 0.001));
  match Metrics.spans () with
  | [ parent ] ->
    Alcotest.(check string) "root span" "parent" parent.Metrics.name;
    Alcotest.(check int) "two distinct children" 2
      (List.length parent.Metrics.children);
    let child_total =
      List.fold_left
        (fun acc c -> acc +. c.Metrics.total_s)
        0.0 parent.Metrics.children
    in
    Alcotest.(check bool) "children sum <= parent" true
      (child_total <= parent.Metrics.total_s +. 1e-6);
    let a =
      List.find (fun c -> c.Metrics.name = "a") parent.Metrics.children
    in
    Alcotest.(check int) "re-entered child aggregates" 2 a.Metrics.count
  | spans ->
    Alcotest.failf "expected exactly one top-level span, got %d"
      (List.length spans)

let test_span_records_on_raise () =
  with_enabled @@ fun () ->
  (try Metrics.with_span "dying" (fun () -> raise Exit) with Exit -> ());
  match Metrics.span_total "dying" with
  | Some t -> Alcotest.(check bool) "duration recorded" true (t >= 0.0)
  | None -> Alcotest.fail "span lost on exception"

let test_span_total_path () =
  with_enabled @@ fun () ->
  Metrics.with_span "outer" (fun () ->
      Metrics.with_span "inner" (fun () -> busy_wait 0.001));
  Alcotest.(check bool) "path resolves" true
    (Metrics.span_total "outer/inner" <> None);
  Alcotest.(check bool) "missing path is None" true
    (Metrics.span_total "outer/nope" = None)

let test_disabled_records_nothing () =
  Metrics.reset ();
  Metrics.disable ();
  let r = Metrics.with_span "ghost" (fun () -> Metrics.incr "ghost"; 42) in
  Alcotest.(check int) "with_span is transparent" 42 r;
  Metrics.enable ();
  Alcotest.(check int) "no counter" 0 (Metrics.counter "ghost");
  Alcotest.(check bool) "no span" true (Metrics.spans () = []);
  Metrics.disable ()

let test_reset_pristine () =
  Metrics.reset ();
  Metrics.enable ();
  let pristine = Json.to_string (Metrics.snapshot ()) in
  Metrics.incr ~by:7 "dirt";
  Metrics.with_span "work" (fun () -> busy_wait 0.001);
  Alcotest.(check bool) "registry is dirty" true
    (Json.to_string (Metrics.snapshot ()) <> pristine);
  Metrics.reset ();
  Alcotest.(check string) "reset restores the pristine snapshot" pristine
    (Json.to_string (Metrics.snapshot ()));
  Metrics.disable ()

(* ---------- solver results are instrumentation-independent ---------- *)

let build_instance (seed, n, noise) =
  let module W = Repair_workload in
  let rng = W.Rng.make seed in
  let schema, d = W.Gen_fd.random rng ~n_attrs:3 ~n_fds:2 ~max_lhs:2 in
  let tbl =
    W.Gen_table.dirty rng schema d
      { W.Gen_table.default with n; noise; domain_size = 3 }
  in
  (d, tbl)

let gen_instance =
  QCheck2.Gen.(
    triple (int_range 0 1_000_000) (int_range 1 8) (oneofl [ 0.1; 0.25; 0.5 ]))

let print_instance (seed, n, noise) =
  Printf.sprintf "seed=%d n=%d noise=%g" seed n noise

let qcheck_same_repair =
  Helpers.qcheck ~count:100 ~print:print_instance
    "driver returns the same repair with metrics on and off" gen_instance
    (fun inst ->
      let d, tbl = build_instance inst in
      Metrics.reset ();
      Metrics.disable ();
      let off = R.Driver.s_repair d tbl in
      Metrics.reset ();
      Metrics.enable ();
      let on = R.Driver.s_repair d tbl in
      Metrics.disable ();
      Metrics.reset ();
      Table.equal off.R.Driver.result on.R.Driver.result
      && off.R.Driver.method_used = on.R.Driver.method_used)

(* ---------- the tracer ---------- *)

module Trace = Repair_obs.Trace
module Trace_export = Repair_obs.Trace_export
module Histogram = Repair_obs.Histogram

let with_trace ?capacity f =
  Trace.enable ?capacity ();
  Fun.protect ~finally:(fun () ->
      Trace.disable ();
      Trace.reset ())
    f

let names events = List.map (fun e -> e.Trace.name) events
let kinds events = List.map (fun e -> e.Trace.kind) events

let test_trace_spans_balanced () =
  with_trace @@ fun () ->
  Metrics.with_span "outer" (fun () ->
      Metrics.with_span "inner" ignore;
      Trace.instant "tick");
  let events = Trace.events () in
  Alcotest.(check (list string))
    "names in emission order"
    [ "outer"; "inner"; "inner"; "tick"; "outer" ]
    (names events);
  Alcotest.(check bool)
    "kinds are B B E i E" true
    (kinds events = Trace.[ Begin; Begin; End; Instant; End ]);
  match Trace_export.validate events with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "validate rejected a balanced trace: %s" msg

let test_trace_balanced_on_raise () =
  with_trace @@ fun () ->
  (try Metrics.with_span "dying" (fun () -> raise Exit) with Exit -> ());
  let events = Trace.events () in
  Alcotest.(check bool)
    "B/E pair survives the exception" true
    (kinds events = Trace.[ Begin; End ] && names events = [ "dying"; "dying" ]);
  Alcotest.(check bool) "validates" true (Trace_export.validate events = Ok ())

let test_trace_overflow_drops_oldest () =
  with_trace ~capacity:4 @@ fun () ->
  for i = 0 to 9 do
    Trace.instant (Printf.sprintf "i%d" i)
  done;
  Alcotest.(check (list string))
    "ring keeps the newest events" [ "i6"; "i7"; "i8"; "i9" ]
    (names (Trace.events ()));
  Alcotest.(check int) "six evictions" 6 (Trace.dropped ());
  Alcotest.(check int) "surfaced as the trace.dropped counter" 6
    (Metrics.counter "trace.dropped");
  Alcotest.(check bool) "and listed in counters ()" true
    (List.assoc_opt "trace.dropped" (Metrics.counters ()) = Some 6);
  Trace.reset ();
  Alcotest.(check int) "reset clears the drop count" 0 (Trace.dropped ())

let test_trace_monotone () =
  with_trace ~capacity:8 @@ fun () ->
  for i = 0 to 19 do
    Trace.instant (string_of_int i)
  done;
  let events = Trace.events () in
  let ok_ts =
    List.for_all2
      (fun a b -> a.Trace.ts <= b.Trace.ts && a.Trace.seq < b.Trace.seq)
      (List.filteri (fun i _ -> i < List.length events - 1) events)
      (List.tl events)
  in
  Alcotest.(check bool) "ts non-decreasing, seq increasing" true ok_ts

let test_trace_disabled_records_nothing () =
  Trace.disable ();
  Trace.reset ();
  Trace.begin_ "ghost";
  Trace.instant "ghost";
  Trace.end_ "ghost";
  Alcotest.(check bool) "no events" true (Trace.events () = []);
  Alcotest.(check int) "no drops" 0 (Trace.dropped ())

let qcheck_same_repair_traced =
  Helpers.qcheck ~count:50 ~print:print_instance
    "driver returns the same repair with tracing on and off" gen_instance
    (fun inst ->
      let d, tbl = build_instance inst in
      Trace.disable ();
      Trace.reset ();
      let off = R.Driver.s_repair d tbl in
      Trace.enable ~capacity:1024 ();
      let on =
        Fun.protect ~finally:(fun () ->
            Trace.disable ();
            Trace.reset ())
          (fun () -> R.Driver.s_repair d tbl)
      in
      Table.equal off.R.Driver.result on.R.Driver.result
      && off.R.Driver.method_used = on.R.Driver.method_used)

(* ---------- histograms ---------- *)

let test_histogram_buckets () =
  Alcotest.(check int) "zero lands in bucket 0" 0 (Histogram.bucket_of 0.0);
  Alcotest.(check int) "below lowest lands in bucket 0" 0
    (Histogram.bucket_of (Histogram.lowest /. 10.0));
  Alcotest.(check int) "above highest lands in the overflow bucket"
    (Histogram.n_buckets - 1)
    (Histogram.bucket_of (2.0 *. Histogram.highest));
  for i = 0 to Histogram.n_buckets - 2 do
    let lo, hi = Histogram.bounds i in
    Alcotest.(check int)
      (Printf.sprintf "geometric midpoint of bucket %d maps back" i)
      i
      (Histogram.bucket_of (Float.sqrt (lo *. hi)))
  done;
  let lo, hi = Histogram.bounds (Histogram.n_buckets - 1) in
  Alcotest.(check bool) "overflow bucket is [highest, inf)" true
    (lo = Histogram.highest && hi = infinity)

let test_histogram_stats () =
  let h = Histogram.create () in
  Alcotest.(check int) "empty count" 0 (Histogram.count h);
  Alcotest.(check (float 0.0)) "empty quantile" 0.0 (Histogram.quantile h 0.5);
  List.iter (Histogram.observe h) [ 0.001; 0.002; 0.004; -1.0 ];
  Alcotest.(check int) "count" 4 (Histogram.count h);
  Alcotest.(check (float 1e-12)) "sum (negative clamped to 0)" 0.007
    (Histogram.sum h);
  Alcotest.(check (float 0.0)) "min" 0.0 (Histogram.min_value h);
  Alcotest.(check (float 0.0)) "max" 0.004 (Histogram.max_value h);
  (* All mass in one value: every quantile is clamped to that value. *)
  let h1 = Histogram.create () in
  for _ = 1 to 100 do
    Histogram.observe h1 0.001
  done;
  List.iter
    (fun q ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "degenerate q=%g" q)
        0.001 (Histogram.quantile h1 q))
    [ 0.0; 0.5; 0.9; 0.99; 1.0 ]

let test_histogram_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  List.iter (Histogram.observe a) [ 0.001; 0.010 ];
  List.iter (Histogram.observe b) [ 0.100; 0.500; 2.0 ];
  let all = Histogram.create () in
  List.iter (Histogram.observe all) [ 0.001; 0.010; 0.100; 0.500; 2.0 ];
  let m = Histogram.copy a in
  Histogram.merge ~into:m b;
  Alcotest.(check int) "merged count" 5 (Histogram.count m);
  Alcotest.(check bool) "merge equals observing everything" true
    (Histogram.summary_json m = Histogram.summary_json all);
  Alcotest.(check int) "merge source untouched" 3 (Histogram.count b);
  Alcotest.(check int) "copy detached a from m" 2 (Histogram.count a)

let test_histogram_json_roundtrip () =
  let h = Histogram.create () in
  List.iter (Histogram.observe h) [ 0.0005; 0.003; 0.003; 0.047; 1.5 ];
  let j = Histogram.summary_json h in
  (* Through the printer too: the summary must survive the codec. *)
  let reparsed =
    match Json.of_string (Json.to_string j) with
    | Ok v -> v
    | Error msg -> Alcotest.failf "summary does not reparse: %s" msg
  in
  match Histogram.of_summary_json reparsed with
  | Error msg -> Alcotest.failf "of_summary_json: %s" msg
  | Ok h' ->
    Alcotest.(check int) "count" (Histogram.count h) (Histogram.count h');
    Alcotest.(check (float 1e-9)) "mean" (Histogram.mean h) (Histogram.mean h');
    List.iter
      (fun q ->
        Alcotest.(check (float 1e-9))
          (Printf.sprintf "q=%g" q)
          (Histogram.quantile h q) (Histogram.quantile h' q))
      [ 0.5; 0.9; 0.99 ];
    Alcotest.(check bool) "bucket counts identical" true
      (Json.member "buckets" (Histogram.summary_json h')
      = Json.member "buckets" j)

let test_histogram_json_rejects_mismatch () =
  let j =
    Json.Obj
      [ ("count", Json.Int 3);
        ("mean_ms", Json.Float 1.0);
        ("min_ms", Json.Float 1.0);
        ("max_ms", Json.Float 1.0);
        ("p50_ms", Json.Float 1.0);
        ("p90_ms", Json.Float 1.0);
        ("p99_ms", Json.Float 1.0);
        ("buckets", Json.Obj [ ("0", Json.Int 1) ]) ]
  in
  match Histogram.of_summary_json j with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted bucket counts that disagree with count"

let test_span_histograms () =
  with_enabled @@ fun () ->
  Metrics.with_span "h" (fun () -> busy_wait 0.001);
  Metrics.with_span "h" ignore;
  match Metrics.histogram "h" with
  | None -> Alcotest.fail "with_span did not feed a histogram"
  | Some h ->
    Alcotest.(check int) "one observation per span" 2 (Histogram.count h);
    Alcotest.(check bool) "max >= busy wait" true
      (Histogram.max_value h >= 0.001);
    Alcotest.(check bool) "listed in histograms ()" true
      (List.mem_assoc "h" (Metrics.histograms ()))

(* ---------- Chrome export ---------- *)

let ev seq ts kind name =
  { Trace.seq; ts; kind; name; req = None; tid = Trace.tid_main }

let test_chrome_roundtrip () =
  with_trace @@ fun () ->
  Metrics.with_span "a" (fun () ->
      Trace.instant "p";
      Metrics.with_span "b" ignore);
  let events = Trace.events () in
  let doc = Trace_export.to_chrome events ~dropped:0 in
  (* Reparse through the printer, as repair-cli profile does. *)
  let doc =
    match Json.of_string (Json.to_string ~pretty:true doc) with
    | Ok v -> v
    | Error msg -> Alcotest.failf "export does not reparse: %s" msg
  in
  match Trace_export.of_chrome doc with
  | Error msg -> Alcotest.failf "of_chrome: %s" msg
  | Ok (events', dropped) ->
    Alcotest.(check int) "dropped preserved" 0 dropped;
    Alcotest.(check (list string)) "names" (names events) (names events');
    Alcotest.(check bool) "kinds" true (kinds events = kinds events');
    List.iter2
      (fun e e' ->
        Alcotest.(check (float 1e-6)) "ts survives µs round trip" e.Trace.ts
          e'.Trace.ts)
      events events'

let test_chrome_dropped_preserved () =
  with_trace ~capacity:2 @@ fun () ->
  List.iter Trace.instant [ "a"; "b"; "c"; "d"; "e" ];
  let doc = Trace_export.to_chrome (Trace.events ()) ~dropped:(Trace.dropped ()) in
  match Trace_export.of_chrome doc with
  | Ok (events', dropped) ->
    Alcotest.(check int) "dropped round trips" 3 dropped;
    Alcotest.(check (list string)) "surviving events" [ "d"; "e" ]
      (names events')
  | Error msg -> Alcotest.failf "of_chrome: %s" msg

let test_validate_rejects () =
  let reject what events =
    match Trace_export.validate events with
    | Error _ -> ()
    | Ok () -> Alcotest.failf "validate accepted %s" what
  in
  reject "an unclosed span" [ ev 0 0.0 Trace.Begin "a" ];
  reject "an orphan end"
    [ ev 0 0.0 Trace.Begin "a"; ev 1 1.0 Trace.End "a"; ev 2 2.0 Trace.End "a" ];
  reject "a name mismatch"
    [ ev 0 0.0 Trace.Begin "a"; ev 1 1.0 Trace.End "b" ];
  reject "a clock step backwards"
    [ ev 0 1.0 Trace.Instant "a"; ev 1 0.5 Trace.Instant "b" ];
  (* A lossy ring legitimately starts with orphaned ends. *)
  match
    Trace_export.validate ~dropped:1
      [ ev 0 0.0 Trace.End "evicted"; ev 1 1.0 Trace.Begin "a";
        ev 2 2.0 Trace.End "a" ]
  with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "lossy head rejected: %s" msg

let test_hotspots () =
  (* a [0,4] contains b [1,3]: a self = 2, b self = 2; instants only
     count when no span shares the name. *)
  let events =
    [ ev 0 0.0 Trace.Begin "a"; ev 1 1.0 Trace.Begin "b";
      ev 2 1.5 Trace.Instant "b"; ev 3 3.0 Trace.End "b";
      ev 4 3.5 Trace.Instant "mark"; ev 5 4.0 Trace.End "a" ]
  in
  let hs = Trace_export.hotspots events in
  let find n = List.find (fun h -> h.Trace_export.name = n) hs in
  let a = find "a" and b = find "b" and mark = find "mark" in
  Alcotest.(check (float 1e-9)) "a total" 4.0 a.Trace_export.total_s;
  Alcotest.(check (float 1e-9)) "a self" 2.0 a.Trace_export.self_s;
  Alcotest.(check (float 1e-9)) "b total" 2.0 b.Trace_export.total_s;
  Alcotest.(check (float 1e-9)) "b self" 2.0 b.Trace_export.self_s;
  Alcotest.(check int) "span beats instant for b" 1 b.Trace_export.count;
  Alcotest.(check int) "bare instant counted" 1 mark.Trace_export.count;
  Alcotest.(check (float 0.0)) "bare instant has no duration" 0.0
    mark.Trace_export.total_s;
  let report = Fmt.str "%a" (Trace_export.pp_hotspots ~top:10) hs in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "report has a total line" true
    (contains report "total:")

(* ---------- windowed histogram subtraction ---------- *)

let test_histogram_diff () =
  let h = Histogram.create () in
  List.iter (Histogram.observe h) [ 0.001; 0.010 ];
  let base = Histogram.copy h in
  List.iter (Histogram.observe h) [ 0.010; 0.500 ];
  let d = Histogram.diff ~since:base h in
  Alcotest.(check int) "delta count" 2 (Histogram.count d);
  (* The delta's bucket counts equal a histogram of just the window's
     observations — the property rolling quantiles rely on. *)
  let fresh = Histogram.create () in
  List.iter (Histogram.observe fresh) [ 0.010; 0.500 ];
  Alcotest.(check bool) "delta buckets equal fresh observation" true
    (Histogram.buckets d = Histogram.buckets fresh);
  Alcotest.(check (float 1e-9)) "delta sum" 0.510 (Histogram.sum d);
  (* min/max are bucket-edge approximations bracketing the real extremes *)
  Alcotest.(check bool) "approx min below real min" true
    (Histogram.min_value d <= 0.010 && Histogram.min_value d > 0.0);
  Alcotest.(check bool) "approx max above real max" true
    (Histogram.max_value d >= 0.500);
  (* diff against the current state is empty *)
  let e = Histogram.diff ~since:(Histogram.copy h) h in
  Alcotest.(check int) "empty window" 0 (Histogram.count e);
  Alcotest.(check (float 0.0)) "empty window sum" 0.0 (Histogram.sum e);
  (* a reversed diff (since ahead of t) clamps to empty, never negative *)
  let r = Histogram.diff ~since:h base in
  Alcotest.(check int) "reversed diff clamps to empty" 0 (Histogram.count r)

let test_histogram_empty_json () =
  let e = Histogram.create () in
  match Histogram.of_summary_json (Histogram.summary_json e) with
  | Error msg -> Alcotest.failf "empty summary does not round trip: %s" msg
  | Ok e' ->
    Alcotest.(check int) "empty round trips to empty" 0 (Histogram.count e');
    Alcotest.(check (float 0.0)) "empty quantile" 0.0
      (Histogram.quantile e' 0.99);
    (* merging two round-tripped empties is still the pristine summary *)
    let m = Histogram.create () in
    Histogram.merge ~into:m e';
    (match Histogram.of_summary_json (Histogram.summary_json e) with
    | Error msg -> Alcotest.failf "second empty: %s" msg
    | Ok e'' -> Histogram.merge ~into:m e'');
    Alcotest.(check int) "merge of empties is empty" 0 (Histogram.count m);
    Alcotest.(check bool) "merge of empties has the pristine summary" true
      (Histogram.summary_json m = Histogram.summary_json (Histogram.create ()))

(* ---------- ring wrap with mixed event kinds ---------- *)

let test_trace_wrap_mixed () =
  with_trace ~capacity:8 @@ fun () ->
  (* 5 spans of B/i/E = 15 events through an 8-slot ring *)
  for i = 1 to 5 do
    let s = Printf.sprintf "s%d" i in
    Trace.begin_ s;
    Trace.instant (Printf.sprintf "i%d" i);
    Trace.end_ s
  done;
  let events = Trace.events () in
  Alcotest.(check int) "ring holds exactly capacity" 8 (List.length events);
  Alcotest.(check int) "dropped counts every eviction" 7 (Trace.dropped ());
  (* the survivors are the newest events, in order, seq preserved *)
  Alcotest.(check (list int)) "survivor seqs contiguous to the end"
    [ 7; 8; 9; 10; 11; 12; 13; 14 ]
    (List.map (fun e -> e.Trace.seq) events);
  Alcotest.(check bool) "head is an orphaned non-Begin" true
    (match events with e :: _ -> e.Trace.kind <> Trace.Begin | [] -> false);
  (* the lossy stream still validates when drops are declared... *)
  (match Trace_export.validate ~dropped:(Trace.dropped ()) events with
  | Ok () -> ()
  | Error m -> Alcotest.failf "lossy trace should validate: %s" m);
  (* ...and the Chrome export round-trips events and the drop count *)
  let doc = Trace_export.to_chrome events ~dropped:(Trace.dropped ()) in
  match Trace_export.of_chrome doc with
  | Error m -> Alcotest.failf "export does not reparse: %s" m
  | Ok (events', dropped') ->
    Alcotest.(check int) "drop count survives export" 7 dropped';
    Alcotest.(check (list string)) "names survive export"
      (List.map (fun e -> e.Trace.name) events)
      (List.map (fun e -> e.Trace.name) events');
    Alcotest.(check bool) "kinds survive export" true
      (List.map (fun e -> e.Trace.kind) events
      = List.map (fun e -> e.Trace.kind) events')

(* ---------- request context, capture, and lanes ---------- *)

let test_trace_request_context () =
  with_trace @@ fun () ->
  Trace.instant "outside";
  Trace.with_request "r1" (fun () ->
      Trace.instant "inside";
      Trace.with_request "r2" (fun () -> Trace.instant "nested"));
  (try Trace.with_request "r3" (fun () -> failwith "boom") with _ -> ());
  Alcotest.(check bool) "context restored after raise" true
    (Trace.current_request () = None);
  Trace.instant "after";
  let reqs = List.map (fun e -> e.Trace.req) (Trace.events ()) in
  Alcotest.(check bool) "req threaded and restored" true
    (reqs = [ None; Some "r1"; Some "r2"; None ]);
  Alcotest.(check bool) "owner events ride lane tid_main" true
    (List.for_all (fun e -> e.Trace.tid = Trace.tid_main) (Trace.events ()))

let test_trace_capture_inject () =
  with_trace @@ fun () ->
  Trace.begin_ "owner";
  let got = ref [] in
  Trace.with_capture
    (fun evs -> got := evs)
    (fun () ->
      Trace.with_request "r9" (fun () ->
          Trace.begin_ "task";
          Trace.instant "tick";
          Trace.end_ "task"));
  Alcotest.(check int) "captured events bypass the ring" 1
    (List.length (Trace.events ()));
  Alcotest.(check int) "capture delivered all three" 3 (List.length !got);
  Trace.inject ~tid:5 !got;
  Trace.end_ "owner";
  let events = Trace.events () in
  Alcotest.(check int) "ring has owner pair plus injected three" 5
    (List.length events);
  Alcotest.(check (list int)) "seqs reassigned contiguously" [ 0; 1; 2; 3; 4 ]
    (List.map (fun e -> e.Trace.seq) events);
  let lanes = List.map (fun e -> e.Trace.tid) events in
  Alcotest.(check (list int)) "injected events take their lane"
    [ Trace.tid_main; 5; 5; 5; Trace.tid_main ] lanes;
  Alcotest.(check bool) "request id travels with the capture" true
    (List.map (fun e -> e.Trace.req) events
    = [ None; Some "r9"; Some "r9"; Some "r9"; None ]);
  (* per-lane validation accepts the interleaved stream *)
  (match Trace_export.validate events with
  | Ok () -> ()
  | Error m -> Alcotest.failf "lanes should validate independently: %s" m);
  (* capture delivers even when the task raises *)
  let got2 = ref [] in
  (try
     Trace.with_capture
       (fun evs -> got2 := evs)
       (fun () ->
         Trace.begin_ "dying";
         failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "capture survives a raise" 1 (List.length !got2)

(* ---------- rolling time-series ---------- *)

module Timeseries = Repair_obs.Timeseries

let synthetic_source () =
  let c = ref 0 and h = Histogram.create () in
  let src =
    {
      Timeseries.counters = (fun () -> [ ("reqs", !c) ]);
      histograms = (fun () -> [ ("lat", h) ]);
      gauges = (fun () -> [ ("depth", float_of_int (!c mod 3)) ]);
    }
  in
  (src, c, h)

let test_timeseries_windows () =
  let src, c, h = synthetic_source () in
  let now = ref 0.0 in
  let ts = Timeseries.create ~windows:4 ~interval_s:1.0 ~clock:(fun () -> !now) src in
  Timeseries.tick ts;
  Alcotest.(check int) "no elapsed, no window" 0 (Timeseries.n_windows ts);
  c := 5;
  Histogram.observe h 0.01;
  now := 1.0;
  Timeseries.tick ts;
  Alcotest.(check int) "first window closed" 1 (Timeseries.n_windows ts);
  Alcotest.(check (float 1e-9)) "rate over one window" 5.0
    (Timeseries.rate ts "reqs");
  Alcotest.(check int) "histogram delta captured" 1
    (Histogram.count (Timeseries.rolling ts "lat"));
  c := 8;
  now := 2.0;
  Timeseries.tick ts;
  Alcotest.(check (float 1e-9)) "rate averages windows" 4.0
    (Timeseries.rate ts "reqs");
  (* a stalled sampler closes ONE wide window, leaving rates unbiased *)
  c := 14;
  now := 5.0;
  Timeseries.tick ts;
  Alcotest.(check int) "stall closes a single window" 3
    (Timeseries.n_windows ts);
  (match List.rev (Timeseries.windows ts) with
  | w :: _ ->
    Alcotest.(check (float 1e-9)) "wide window spans the stall" 3.0
      w.Timeseries.span_s;
    Alcotest.(check bool) "wide window holds the whole delta" true
      (w.Timeseries.counters = [ ("reqs", 6) ])
  | [] -> Alcotest.fail "no windows");
  Alcotest.(check (float 1e-9)) "rate unbiased by the stall" (14.0 /. 5.0)
    (Timeseries.rate ts "reqs");
  (* ring eviction: two more ticks push out the first window *)
  now := 6.0;
  Timeseries.tick ts;
  now := 7.0;
  Timeseries.tick ts;
  Alcotest.(check int) "ring capped at capacity" 4 (Timeseries.n_windows ts);
  Alcotest.(check (float 1e-9)) "span over held windows" 6.0
    (Timeseries.span_total ts);
  Alcotest.(check (float 1e-9)) "rate over held windows only" 1.5
    (Timeseries.rate ts "reqs");
  Alcotest.(check (float 1e-9)) "gauge sampled at last close"
    (float_of_int (14 mod 3))
    (match Timeseries.last_gauge ts "depth" with
    | Some g -> g
    | None -> -1.0)

(* Acceptance (c): two series driven by identical deterministic sources
   and the same fake clock render byte-identical JSON. *)
let test_timeseries_deterministic_json () =
  let drive () =
    let src, c, h = synthetic_source () in
    let now = ref 0.0 in
    let ts =
      Timeseries.create ~windows:8 ~interval_s:0.5 ~clock:(fun () -> !now) src
    in
    List.iter
      (fun (t, n, obs) ->
        c := n;
        List.iter (Histogram.observe h) obs;
        now := t;
        Timeseries.tick ts)
      [ (0.5, 3, [ 0.001; 0.02 ]);
        (1.0, 7, []);
        (2.7, 11, [ 0.3 ]);
        (3.0, 11, []) ];
    Repair_obs.Json.to_string (Timeseries.to_json ts)
  in
  let a = drive () and b = drive () in
  Alcotest.(check string) "byte-identical stats JSON" a b;
  (* and the document reparses *)
  match Json.of_string a with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "stats JSON does not reparse: %s" m

(* ---------- text exposition ---------- *)

module Expo = Repair_obs.Expo

let test_expo_render_and_check () =
  let h = Histogram.create () in
  List.iter (Histogram.observe h) [ 0.001; 0.2; 50.0 ];
  let text =
    Expo.render
      ~counters:[ ("serve.requests", 12); ("trace.dropped", 0) ]
      ~gauges:[ ("serve.queue depth", 2.5) ]
      ~histograms:[ ("serve.request", h) ]
      ()
  in
  (match Expo.check text with
  | Ok () -> ()
  | Error m -> Alcotest.failf "render output fails its own checker: %s" m);
  let contains needle =
    let nh = String.length text and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub text i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "counter family suffixed _total" true
    (contains "# TYPE repair_serve_requests_total counter");
  Alcotest.(check bool) "gauge name sanitized" true
    (contains "repair_serve_queue_depth 2.5");
  Alcotest.(check bool) "histogram suffixed _seconds" true
    (contains "# TYPE repair_serve_request_seconds histogram");
  Alcotest.(check bool) "mandatory +Inf bucket" true
    (contains "repair_serve_request_seconds_bucket{le=\"+Inf\"} 3");
  Alcotest.(check bool) "histogram count series" true
    (contains "repair_serve_request_seconds_count 3");
  (* empty registries render an empty, valid document *)
  match Expo.check (Expo.render ~counters:[] ~gauges:[] ~histograms:[] ()) with
  | Ok () -> ()
  | Error m -> Alcotest.failf "empty exposition should check: %s" m

let test_expo_check_rejects () =
  let reject label text =
    match Expo.check text with
    | Error _ -> ()
    | Ok () -> Alcotest.failf "checker accepted %s" label
  in
  reject "a sample without a TYPE declaration" "repair_x_total 1\n";
  reject "duplicate TYPE lines"
    "# TYPE repair_x_total counter\n\
     # TYPE repair_x_total counter\n\
     repair_x_total 1\n";
  reject "an unparsable value"
    "# TYPE repair_x_total counter\nrepair_x_total banana\n";
  reject "a histogram without +Inf"
    "# TYPE repair_h_seconds histogram\n\
     repair_h_seconds_bucket{le=\"0.5\"} 1\n\
     repair_h_seconds_sum 0.1\n\
     repair_h_seconds_count 1\n";
  reject "non-cumulative buckets"
    "# TYPE repair_h_seconds histogram\n\
     repair_h_seconds_bucket{le=\"0.5\"} 2\n\
     repair_h_seconds_bucket{le=\"1\"} 1\n\
     repair_h_seconds_bucket{le=\"+Inf\"} 2\n\
     repair_h_seconds_sum 0.1\n\
     repair_h_seconds_count 2\n";
  reject "+Inf disagreeing with _count"
    "# TYPE repair_h_seconds histogram\n\
     repair_h_seconds_bucket{le=\"+Inf\"} 2\n\
     repair_h_seconds_sum 0.1\n\
     repair_h_seconds_count 3\n"

(* ---------- the JSON codec ---------- *)

let sample =
  Json.Obj
    [ ("s", Json.String "a \"quoted\"\nline\twith \\ specials");
      ("i", Json.Int (-42));
      ("f", Json.Float 2.5);
      ("whole", Json.Float 12.0);
      ("b", Json.Bool true);
      ("nothing", Json.Null);
      ("l", Json.List [ Json.Int 1; Json.Obj []; Json.List [] ]) ]

let test_json_roundtrip () =
  List.iter
    (fun pretty ->
      match Json.of_string (Json.to_string ~pretty sample) with
      | Ok v -> Alcotest.(check bool) "round trip" true (v = sample)
      | Error msg -> Alcotest.failf "parse failed: %s" msg)
    [ false; true ]

let test_json_float_literals () =
  Alcotest.(check string) "whole floats keep the point" "12.0"
    (Json.to_string (Json.Float 12.0));
  Alcotest.(check string) "ints stay ints" "12" (Json.to_string (Json.Int 12));
  Alcotest.(check string) "non-finite becomes null" "null"
    (Json.to_string (Json.Float Float.nan))

let test_json_errors () =
  List.iter
    (fun text ->
      match Json.of_string text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed input %S" text)
    [ ""; "{"; "[1,]"; "{\"a\" 1}"; "tru"; "1 2"; "\"unterminated" ]

(* \uXXXX decoding: surrogate pairs must combine into one astral-plane
   scalar (proper UTF-8, not CESU-8), and lone halves are malformed. *)
let test_json_surrogate_pairs () =
  let check_decodes escaped utf8 =
    match Json.of_string (Printf.sprintf "\"%s\"" escaped) with
    | Ok (Json.String s) ->
      Alcotest.(check string) (Printf.sprintf "decode %s" escaped) utf8 s
    | Ok _ -> Alcotest.failf "%s: not a string" escaped
    | Error msg -> Alcotest.failf "%s: %s" escaped msg
  in
  (* U+1F600 GRINNING FACE, U+10348 GOTHIC HWAIR, U+1D11E MUSICAL G CLEF *)
  check_decodes "\\ud83d\\ude00" "\xf0\x9f\x98\x80";
  check_decodes "\\uD800\\uDF48" "\xf0\x90\x8d\x88";
  check_decodes "\\uD834\\uDD1E" "\xf0\x9d\x84\x9e";
  check_decodes "x\\ud83d\\ude00y" "x\xf0\x9f\x98\x80y";
  (* BMP escapes still decode to 1-3 byte sequences. *)
  check_decodes "\\u00e9" "\xc3\xa9";
  check_decodes "\\u20ac" "\xe2\x82\xac";
  (* The decoded astral character round-trips as raw UTF-8 bytes. *)
  let v = Json.String "\xf0\x9f\x98\x80 clef \xf0\x9d\x84\x9e" in
  Alcotest.(check bool) "astral round trip" true
    (Json.of_string (Json.to_string v) = Ok v
    && Json.of_string (Json.to_string ~pretty:true v) = Ok v)

let test_json_unpaired_surrogates () =
  List.iter
    (fun text ->
      match Json.of_string text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted unpaired surrogate %S" text)
    [ "\"\\ud83d\"" (* lone high *);
      "\"\\ude00\"" (* lone low *);
      "\"\\ud83d\\ud83d\"" (* high followed by high *);
      "\"\\ud83dx\"" (* high followed by a plain char *);
      "\"\\ud83d\\n\"" (* high followed by a non-u escape *);
      "\"\\ud83d\\u00e9\"" (* high followed by a BMP escape *);
      "\"\\ud83d" (* truncated input after the high half *) ]

let test_json_accessors () =
  let v = Json.Obj [ ("x", Json.Int 3); ("y", Json.Float 1.5) ] in
  Alcotest.(check (option int)) "int member" (Some 3)
    (Option.bind (Json.member "x" v) Json.int_value);
  Alcotest.(check bool) "int coerces to float" true
    (Option.bind (Json.member "x" v) Json.float_value = Some 3.0);
  Alcotest.(check bool) "missing member" true (Json.member "z" v = None)

(* Dyadic floats and printable strings round trip exactly. *)
let gen_json =
  let open QCheck2.Gen in
  let leaf =
    oneof
      [ return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) (int_range (-1000) 1000);
        map (fun i -> Json.Float (float_of_int i /. 4.0)) (int_range (-1000) 1000);
        map (fun s -> Json.String s) (small_string ~gen:printable) ]
  in
  let rec tree depth =
    if depth = 0 then leaf
    else
      oneof
        [ leaf;
          map (fun l -> Json.List l) (small_list (tree (depth - 1)));
          map
            (fun kvs ->
              (* Duplicate keys would defeat the assoc-based comparison. *)
              Json.Obj
                (List.mapi (fun i (k, v) -> (Printf.sprintf "%d%s" i k, v)) kvs))
            (small_list (pair (small_string ~gen:printable) (tree (depth - 1)))) ]
  in
  tree 3

let qcheck_json_roundtrip =
  Helpers.qcheck ~count:500 ~print:(fun v -> Json.to_string ~pretty:true v)
    "random documents round trip" gen_json (fun v ->
      Json.of_string (Json.to_string v) = Ok v
      && Json.of_string (Json.to_string ~pretty:true v) = Ok v)

let () =
  Alcotest.run "obs"
    [ ( "counters",
        [ Alcotest.test_case "monotone" `Quick test_counters_monotone;
          Alcotest.test_case "negative rejected" `Quick
            test_counter_negative_rejected;
          Alcotest.test_case "default zero" `Quick test_counter_default_zero;
          Alcotest.test_case "sorted" `Quick test_counters_sorted ] );
      ( "spans",
        [ Alcotest.test_case "nesting sums to parent" `Quick
            test_nested_spans_sum_to_parent;
          Alcotest.test_case "recorded on raise" `Quick
            test_span_records_on_raise;
          Alcotest.test_case "path lookup" `Quick test_span_total_path;
          Alcotest.test_case "disabled is free" `Quick
            test_disabled_records_nothing;
          Alcotest.test_case "reset is pristine" `Quick test_reset_pristine ] );
      ("transparency", [ qcheck_same_repair; qcheck_same_repair_traced ]);
      ( "trace",
        [ Alcotest.test_case "spans balanced" `Quick test_trace_spans_balanced;
          Alcotest.test_case "balanced on raise" `Quick
            test_trace_balanced_on_raise;
          Alcotest.test_case "overflow drops oldest" `Quick
            test_trace_overflow_drops_oldest;
          Alcotest.test_case "monotone" `Quick test_trace_monotone;
          Alcotest.test_case "disabled is free" `Quick
            test_trace_disabled_records_nothing;
          Alcotest.test_case "wrap with mixed kinds" `Quick
            test_trace_wrap_mixed;
          Alcotest.test_case "request context" `Quick
            test_trace_request_context;
          Alcotest.test_case "capture and inject" `Quick
            test_trace_capture_inject ] );
      ( "histograms",
        [ Alcotest.test_case "bucket scheme" `Quick test_histogram_buckets;
          Alcotest.test_case "stats" `Quick test_histogram_stats;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
          Alcotest.test_case "json round trip" `Quick
            test_histogram_json_roundtrip;
          Alcotest.test_case "json rejects mismatch" `Quick
            test_histogram_json_rejects_mismatch;
          Alcotest.test_case "spans feed histograms" `Quick
            test_span_histograms;
          Alcotest.test_case "windowed diff" `Quick test_histogram_diff;
          Alcotest.test_case "empty summary round trip" `Quick
            test_histogram_empty_json ] );
      ( "timeseries",
        [ Alcotest.test_case "windows, rates, stalls, eviction" `Quick
            test_timeseries_windows;
          Alcotest.test_case "deterministic json" `Quick
            test_timeseries_deterministic_json ] );
      ( "exposition",
        [ Alcotest.test_case "render passes check" `Quick
            test_expo_render_and_check;
          Alcotest.test_case "check rejects malformed" `Quick
            test_expo_check_rejects ] );
      ( "chrome export",
        [ Alcotest.test_case "round trip" `Quick test_chrome_roundtrip;
          Alcotest.test_case "dropped preserved" `Quick
            test_chrome_dropped_preserved;
          Alcotest.test_case "validate rejects" `Quick test_validate_rejects;
          Alcotest.test_case "hotspots" `Quick test_hotspots ] );
      ( "json",
        [ Alcotest.test_case "round trip" `Quick test_json_roundtrip;
          Alcotest.test_case "float literals" `Quick test_json_float_literals;
          Alcotest.test_case "errors" `Quick test_json_errors;
          Alcotest.test_case "surrogate pairs" `Quick test_json_surrogate_pairs;
          Alcotest.test_case "unpaired surrogates" `Quick
            test_json_unpaired_surrogates;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
          qcheck_json_roundtrip ] ) ]
