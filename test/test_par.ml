(* Determinism and differential tests for the domain-pool parallelism
   layer (DESIGN §13).

   The hard contract under test: a parallel run is bit-identical to the
   sequential one — repair tables, distances, degraded flags, error
   classes, metrics counters, histogram sample counts, and span counts —
   at every pool width, for every chunk layout, and under any task
   hand-out order. Timing floats (span durations, histogram bucket
   indices) are wall-clock-dependent by nature and are excluded from
   every comparison here. *)

open Repair_relational
open Repair_fd
module Pool = Repair_par.Pool
module Metrics = Repair_obs.Metrics
module Json = Repair_obs.Json
module Budget = Repair_runtime.Budget
module W = Repair_workload
module Opt_s = Repair_srepair.Opt_s_repair
module Opt_u = Repair_urepair.Opt_u_repair
module S_approx = Repair_srepair.S_approx
module Cg = Repair_srepair.Conflict_graph
module G = Repair_graph.Graph
module Vc = Repair_graph.Vertex_cover
module Driver = Repair_core.Repair.Driver

(* One long-lived pool per width under test; spawning domains per qcheck
   iteration would dominate the suite's runtime. *)
let widths = [ 1; 2; 4; 8 ]

let pools = lazy (List.map (fun w -> (w, Pool.create ~domains:w)) widths)

let pool_of w = List.assoc w (Lazy.force pools)

(* ---------- instance generation (same shape as test_differential) --- *)

type instance = { seed : int; n : int; noise : float }

let print_instance { seed; n; noise } =
  Printf.sprintf "{seed=%d; n=%d; noise=%g}" seed n noise

let gen_instance =
  QCheck2.Gen.(
    let* seed = int_range 0 10_000_000 in
    let* n = int_range 0 24 in
    let* noise = oneofl [ 0.1; 0.25; 0.5 ] in
    return { seed; n; noise })

let build { seed; n; noise } =
  let rng = W.Rng.make seed in
  let schema, d = W.Gen_fd.random rng ~n_attrs:3 ~n_fds:2 ~max_lhs:2 in
  let tbl =
    W.Gen_table.dirty rng schema d
      {
        W.Gen_table.default with
        n;
        noise;
        domain_size = 3;
        weighted = true;
      }
  in
  (d, tbl)

(* ---------- integer-only metrics state ------------------------------ *)

type span_ints = { sname : string; scount : int; schildren : span_ints list }

let rec span_ints (s : Metrics.span) =
  {
    sname = s.name;
    scount = s.count;
    schildren = List.map span_ints s.children;
  }

(* Everything integer-valued in the registry: counter values, per-name
   histogram sample counts, and the span tree with entry counts. The
   merge contract makes all of these equal between a sequential run and
   any parallel run; durations and bucket indices are not compared. *)
let metrics_ints () =
  ( Metrics.counters (),
    List.map
      (fun (name, h) -> (name, Repair_obs.Histogram.count h))
      (Metrics.histograms ()),
    List.map span_ints (Metrics.spans ()) )

let with_fresh_metrics f =
  Metrics.reset ();
  Metrics.enable ();
  let x = f () in
  let ints = metrics_ints () in
  Metrics.disable ();
  Metrics.reset ();
  (x, ints)

(* ---------- comparison helpers -------------------------------------- *)

let groups_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (k1, t1) (k2, t2) -> Tuple.equal k1 k2 && Table.equal t1 t2)
       a b

let graphs_equal g1 g2 =
  G.n_vertices g1 = G.n_vertices g2
  && G.edges g1 = G.edges g2
  && List.for_all
       (fun v -> G.weight g1 v = G.weight g2 v)
       (List.init (G.n_vertices g1) Fun.id)

let cgs_equal c1 c2 =
  graphs_equal (Cg.graph c1) (Cg.graph c2)
  && Cg.n_conflicts c1 = Cg.n_conflicts c2
  && List.for_all
       (fun v -> Cg.id_of_vertex c1 v = Cg.id_of_vertex c2 v)
       (List.init (G.n_vertices (Cg.graph c1)) Fun.id)

(* Bit-identity, so distances and ratios compare with [=], not a
   tolerance. *)
let reports_equal (a : (Driver.report, _) result)
    (b : (Driver.report, _) result) =
  match (a, b) with
  | Ok ra, Ok rb ->
    Table.equal ra.Driver.result rb.Driver.result
    && ra.Driver.distance = rb.Driver.distance
    && ra.Driver.optimal = rb.Driver.optimal
    && ra.Driver.ratio = rb.Driver.ratio
    && ra.Driver.method_used = rb.Driver.method_used
    && ra.Driver.degraded = rb.Driver.degraded
    && ra.Driver.fallbacks = rb.Driver.fallbacks
  | Error ea, Error eb ->
    Repair_runtime.Repair_error.class_name ea
    = Repair_runtime.Repair_error.class_name eb
  | _ -> false

(* A random composition of [n] — the chunk-layout perturbation. *)
let random_chunk_sizes st n =
  let rec go remaining acc =
    if remaining = 0 then Array.of_list (List.rev acc)
    else
      let k = 1 + Random.State.int st remaining in
      go (remaining - k) (k :: acc)
  in
  if n = 0 then [||] else go n []

let random_perm st n =
  let a = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  a

(* ---------- pool unit tests ----------------------------------------- *)

let test_pool_rejects_zero () =
  Alcotest.check_raises "domains < 1" (Invalid_argument "Pool.create: domains must be >= 1")
    (fun () -> ignore (Pool.create ~domains:0))

let test_pool_exception_does_not_wedge () =
  let pool = pool_of 4 in
  (match Pool.run pool [| (fun () -> 1); (fun () -> failwith "boom"); (fun () -> 3) |] with
  | _ -> Alcotest.fail "expected the task exception to re-raise"
  | exception Failure m -> Alcotest.(check string) "task error surfaces" "boom" m);
  (* The batch ran to completion and the pool is still usable. *)
  let r = Pool.run pool [| (fun () -> 10); (fun () -> 20); (fun () -> 30) |] in
  Alcotest.(check (array int)) "pool survives a task exception" [| 10; 20; 30 |] r

let test_pool_lowest_index_exception () =
  let pool = pool_of 4 in
  match
    Pool.run pool
      [| (fun () -> 0);
         (fun () -> failwith "first");
         (fun () -> 2);
         (fun () -> failwith "second") |]
  with
  | _ -> Alcotest.fail "expected an exception"
  | exception Failure m ->
    Alcotest.(check string) "lowest-index exception wins" "first" m

let test_pool_reuse () =
  let pool = pool_of 4 in
  for round = 1 to 20 do
    let n = 1 + (round mod 7) in
    let r = Pool.run pool (Array.init n (fun i () -> i * i)) in
    Alcotest.(check (array int))
      (Printf.sprintf "round %d" round)
      (Array.init n (fun i -> i * i))
      r
  done

let test_pool_nested_guard () =
  let pool = pool_of 4 in
  let inner () = Pool.run pool (Array.init 4 (fun i () -> (i, Pool.in_task ()))) in
  let outer = Pool.run pool (Array.init 3 (fun _ () -> inner ())) in
  Array.iter
    (fun results ->
      Array.iteri
        (fun i (j, nested_in_task) ->
          Alcotest.(check int) "inner result" i j;
          Alcotest.(check bool) "inline fallback stays in-task" true
            nested_in_task)
        results)
    outer;
  Alcotest.(check bool) "in_task is false outside" false (Pool.in_task ())

let test_pool_schedule_validation () =
  let pool = pool_of 4 in
  let tasks = Array.init 3 (fun i () -> i) in
  (try
     ignore (Pool.run ~schedule:[| 0; 0; 1 |] pool tasks);
     Alcotest.fail "duplicate schedule accepted"
   with Invalid_argument _ -> ());
  let r = Pool.run ~schedule:[| 2; 0; 1 |] pool tasks in
  Alcotest.(check (array int)) "permuted hand-out, index-ordered results"
    [| 0; 1; 2 |] r

let test_pool_shutdown_idempotent () =
  let pool = Pool.create ~domains:2 in
  Alcotest.(check (array int)) "runs" [| 7; 8 |]
    (Pool.run pool [| (fun () -> 7); (fun () -> 8) |]);
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* Multi-task batch: single-task batches always run inline and never
     consult the pool state. *)
  (try
     ignore (Pool.run pool [| (fun () -> 1); (fun () -> 2) |]);
     Alcotest.fail "run after shutdown accepted"
   with Invalid_argument _ -> ())

let test_pool_capture_merge_point () =
  (* run_captured defers the merge: counters recorded by a task are
     invisible until its capture is merged, then land exactly once. *)
  Metrics.reset ();
  Metrics.enable ();
  let pool = pool_of 4 in
  let results =
    Pool.run_captured pool
      (Array.init 4 (fun i () ->
           Metrics.incr ~by:(i + 1) "par.capture-test";
           i))
  in
  Alcotest.(check int) "nothing merged yet" 0 (Metrics.counter "par.capture-test");
  Array.iter
    (fun (outcome, cap) ->
      (match outcome with
      | Ok _ -> ()
      | Error e -> raise e);
      Metrics.merge cap)
    results;
  Alcotest.(check int) "merge lands the exact total" 10
    (Metrics.counter "par.capture-test");
  Metrics.disable ();
  Metrics.reset ()

let test_pool_trace_lanes () =
  (* Pool.run gives each task's trace events a lane of its own: worker
     spans are captured domain-locally, then injected into the owner's
     ring on tid 2+i with the task's request context intact — so a
     worker-domain span carries a wire request id end to end. *)
  let module Trace = Repair_obs.Trace in
  let module Trace_export = Repair_obs.Trace_export in
  Metrics.reset ();
  Metrics.enable ();
  Trace.enable ();
  Fun.protect
    ~finally:(fun () ->
      Trace.disable ();
      Trace.reset ();
      Metrics.disable ();
      Metrics.reset ())
  @@ fun () ->
  let pool = pool_of 4 in
  Trace.begin_ "batch";
  let r =
    Pool.run pool
      (Array.init 6 (fun i () ->
           Trace.with_request
             (Printf.sprintf "req-%d" i)
             (fun () -> Metrics.with_span "par.task" (fun () -> i * i))))
  in
  Trace.end_ "batch";
  Alcotest.(check bool) "results unchanged by capture" true
    (r = Array.init 6 (fun i -> i * i));
  let events = Trace.events () in
  for i = 0 to 5 do
    let lane = List.filter (fun e -> e.Trace.tid = 2 + i) events in
    Alcotest.(check bool) (Printf.sprintf "lane %d has events" (2 + i)) true
      (lane <> []);
    Alcotest.(check bool)
      (Printf.sprintf "lane %d carries its request id" (2 + i))
      true
      (List.for_all
         (fun e -> e.Trace.req = Some (Printf.sprintf "req-%d" i))
         lane)
  done;
  Alcotest.(check bool) "owner lane still present" true
    (List.exists (fun e -> e.Trace.tid = Trace.tid_main) events);
  (* per-lane validation and the Chrome round trip both hold *)
  (match Trace_export.validate events with
  | Ok () -> ()
  | Error m -> Alcotest.failf "per-lane validation failed: %s" m);
  match Trace_export.of_chrome (Trace_export.to_chrome events ~dropped:0) with
  | Error m -> Alcotest.failf "chrome round trip failed: %s" m
  | Ok (events', _) ->
    Alcotest.(check bool) "request ids survive the chrome export" true
      (List.map (fun e -> (e.Trace.tid, e.Trace.req)) events
      = List.map (fun e -> (e.Trace.tid, e.Trace.req)) events')

let test_budget_absorb () =
  let b = Budget.unlimited () in
  Budget.tick b;
  Budget.tick b;
  Budget.absorb b ~steps:5;
  Alcotest.(check int) "absorb sums into steps" 7 (Budget.steps b)

(* ---------- differential: grouping ---------------------------------- *)

let group_by_par_matches width =
  Helpers.qcheck ~count:60 ~print:print_instance
    (Printf.sprintf "group_by_par = group_by at %d domains" width)
    gen_instance
    (fun inst ->
      let _, tbl = build inst in
      let attrs = Schema.attributes (Table.schema tbl) in
      let runner = Pool.runner (pool_of width) in
      List.for_all
        (fun k ->
          let x = Attr_set.of_list (List.filteri (fun i _ -> i < k) attrs) in
          groups_equal (Table.group_by tbl x) (Table.group_by_par runner tbl x))
        [ 1; 2; 3 ])

let group_by_par_chunk_layouts =
  Helpers.qcheck ~count:60 ~print:print_instance
    "group_by_par is chunk-layout independent" gen_instance
    (fun inst ->
      let _, tbl = build inst in
      let st = Random.State.make [| inst.seed; 77 |] in
      let attrs = Schema.attributes (Table.schema tbl) in
      let x = Attr_set.of_list (List.filteri (fun i _ -> i < 2) attrs) in
      let expected = Table.group_by tbl x in
      let runner = Pool.runner (pool_of 4) in
      List.for_all
        (fun _ ->
          let chunk_sizes = random_chunk_sizes st (Table.size tbl) in
          groups_equal expected (Table.group_by_par runner ~chunk_sizes tbl x))
        [ 1; 2; 3 ])

(* ---------- differential: conflict graph ---------------------------- *)

let conflict_graph_par_matches width =
  Helpers.qcheck ~count:60 ~print:print_instance
    (Printf.sprintf "Conflict_graph.build_par = build at %d domains" width)
    gen_instance
    (fun inst ->
      let d, tbl = build inst in
      let runner = Pool.runner (pool_of width) in
      cgs_equal (Cg.build d tbl) (Cg.build_par runner d tbl))

(* ---------- differential: s-repair / u-repair ----------------------- *)

let s_repair_par_matches width =
  Helpers.qcheck ~count:40 ~print:print_instance
    (Printf.sprintf "s-repair at %d domains is bit-identical" width)
    gen_instance
    (fun inst ->
      let d, tbl = build inst in
      let seq, seq_ints =
        with_fresh_metrics (fun () -> Driver.s_repair_result d tbl)
      in
      let par, par_ints =
        with_fresh_metrics (fun () ->
            Driver.s_repair_result ~pool:(pool_of width) d tbl)
      in
      reports_equal seq par && seq_ints = par_ints)

let u_repair_par_matches width =
  Helpers.qcheck ~count:40 ~print:print_instance
    (Printf.sprintf "u-repair at %d domains is bit-identical" width)
    gen_instance
    (fun inst ->
      let d, tbl = build inst in
      let seq, seq_ints =
        with_fresh_metrics (fun () -> Driver.u_repair_result d tbl)
      in
      let par, par_ints =
        with_fresh_metrics (fun () ->
            Driver.u_repair_result ~pool:(pool_of width) d tbl)
      in
      reports_equal seq par && seq_ints = par_ints)

let limited_budget_takes_sequential_path =
  Helpers.qcheck ~count:40 ~print:print_instance
    "limited budgets: parallel = sequential including exhaustion points"
    gen_instance
    (fun inst ->
      let d, tbl = build inst in
      let st = Random.State.make [| inst.seed; 13 |] in
      let max_steps = 1 + Random.State.int st 30 in
      let run pool =
        Driver.s_repair_result ?pool
          ~budget:(Budget.create ~max_steps ())
          ~on_budget:`Fail d tbl
      in
      reports_equal (run None) (run (Some (pool_of 4))))

(* ---------- determinism stress -------------------------------------- *)

(* A mid-size tractable instance (common lhs A → B, C) with enough
   A-blocks to keep every domain busy. *)
let stress_instance () =
  let schema = Schema.make "Stress" [ "A"; "B"; "C" ] in
  let d = Fd_set.parse "A -> B; A -> C" in
  let rng = W.Rng.make 4242 in
  let tbl =
    Table.of_list schema
      (List.init 240 (fun i ->
           ( i + 1,
             float_of_int (1 + W.Rng.in_range rng 0 4),
             Tuple.make
               [ Value.int (W.Rng.in_range rng 1 24);
                 Value.int (W.Rng.in_range rng 1 3);
                 Value.int (W.Rng.in_range rng 1 3) ] )))
  in
  (d, tbl)

let report_bytes (r : Driver.report) =
  Json.to_string
    (Json.Obj
       [ ("distance", Json.Float r.Driver.distance);
         ("optimal", Json.Bool r.Driver.optimal);
         ("ratio", Json.Float r.Driver.ratio);
         ("method", Json.String r.Driver.method_used);
         ("degraded", Json.Bool r.Driver.degraded);
         ( "fallbacks",
           Json.List (List.map (fun f -> Json.String f) r.Driver.fallbacks) );
         ("table", Json.String (Csv_io.to_string r.Driver.result)) ])

(* The scheduler-perturbation hook: every batch is handed out in a fresh
   random order, and the advertised width (hence the default chunk
   count of the grouping passes) is re-rolled per batch. *)
let perturbed_runner pool st =
  {
    Table.run =
      (fun fns ->
        let n = Array.length fns in
        Pool.run ~schedule:(random_perm st n) pool fns);
    width = 1 + Random.State.int st 8;
  }

let test_determinism_stress () =
  let d, tbl = stress_instance () in
  let reference =
    match Driver.s_repair_result d tbl with
    | Ok r -> report_bytes r
    | Error _ -> Alcotest.fail "stress instance must be tractable"
  in
  let pool = pool_of 4 in
  let st = Random.State.make [| 0xDEAD |] in
  for i = 1 to 50 do
    let runner = perturbed_runner pool st in
    match Opt_s.run_par runner d tbl with
    | Error _ -> Alcotest.fail "parallel run refused a tractable instance"
    | Ok s ->
      let r =
        {
          Driver.result = s;
          distance = Table.dist_sub s tbl;
          optimal = true;
          ratio = 1.0;
          method_used = "OptSRepair (Algorithm 1)";
          degraded = false;
          fallbacks = [];
        }
      in
      Alcotest.(check string)
        (Printf.sprintf "iteration %d is byte-identical" i)
        reference (report_bytes r)
  done

let test_approx_par_stress () =
  let d, tbl = stress_instance () in
  let reference = Csv_io.to_string (S_approx.approx2 d tbl) in
  let pool = pool_of 4 in
  let st = Random.State.make [| 0xBEEF |] in
  for i = 1 to 20 do
    let runner = perturbed_runner pool st in
    Alcotest.(check string)
      (Printf.sprintf "approx2_par iteration %d" i)
      reference
      (Csv_io.to_string (S_approx.approx2_par runner d tbl))
  done

(* ---------- domain-safety hammers ----------------------------------- *)

(* Each regression pins a singleton that was (or would be) unsafe under
   domains: metrics registries are domain-local, the interner pool is
   mutex-guarded, budget tick-name tables are domain-local, and the
   vertex-cover heuristics only touch per-call state. *)

let spawn_pair f =
  let a = Domain.spawn f and b = Domain.spawn f in
  (Domain.join a, Domain.join b)

let test_hammer_metrics () =
  Metrics.reset ();
  Metrics.enable ();
  let worker () =
    for _ = 1 to 10_000 do
      Metrics.incr "hammer.metrics"
    done;
    Metrics.with_span "hammer.span" (fun () -> ());
    Metrics.counter "hammer.metrics"
  in
  let c1, c2 = spawn_pair worker in
  Alcotest.(check int) "domain 1 sees its own registry" 10_000 c1;
  Alcotest.(check int) "domain 2 sees its own registry" 10_000 c2;
  Alcotest.(check int) "the spawning domain's registry is untouched" 0
    (Metrics.counter "hammer.metrics");
  Metrics.disable ();
  Metrics.reset ()

let test_hammer_interner () =
  let p = Interner.create () in
  let vals off = List.init 800 (fun i -> Value.int ((i + off) mod 300)) in
  let worker off () = List.iter (fun v -> ignore (Interner.intern p v)) (vals off) in
  let a = Domain.spawn (worker 0) and b = Domain.spawn (worker 150) in
  Domain.join a;
  Domain.join b;
  Alcotest.(check int) "no duplicate codes" 300 (Interner.size p);
  List.iter
    (fun v ->
      match Interner.code_opt p v with
      | None -> Alcotest.fail "interned value lost"
      | Some c ->
        Alcotest.(check bool) "code round-trips" true
          (Value.equal (Interner.value p c) v))
    (vals 0)

let test_hammer_budget_ticks () =
  let worker () =
    let b = Budget.create ~max_steps:100_000 () in
    for _ = 1 to 10_000 do
      Budget.tick ~phase:"hammer" b
    done;
    Budget.steps b
  in
  let s1, s2 = spawn_pair worker in
  Alcotest.(check int) "domain 1 tick count" 10_000 s1;
  Alcotest.(check int) "domain 2 tick count" 10_000 s2

let test_hammer_vertex_cover () =
  let st = Random.State.make [| 0xC0DE |] in
  let n = 60 in
  let edges =
    List.init 240 (fun _ ->
        let u = Random.State.int st n and v = Random.State.int st n in
        if u = v then (u, (v + 1) mod n) else (u, v))
  in
  let g =
    G.of_edges ~weights:(Array.init n (fun i -> float_of_int (1 + (i mod 5)))) n
      edges
  in
  let expected_approx = Vc.approx2 g and expected_greedy = Vc.greedy g in
  let worker () = (Vc.approx2 g, Vc.greedy g) in
  let (a1, g1), (a2, g2) = spawn_pair worker in
  Alcotest.(check (list int)) "approx2 domain 1" expected_approx a1;
  Alcotest.(check (list int)) "approx2 domain 2" expected_approx a2;
  Alcotest.(check (list int)) "greedy domain 1" expected_greedy g1;
  Alcotest.(check (list int)) "greedy domain 2" expected_greedy g2

let test_hammer_trace_single_writer () =
  let module T = Repair_obs.Trace in
  T.enable ~capacity:4096 ();
  T.begin_ "owner";
  let worker () =
    for i = 1 to 1_000 do
      T.instant (Printf.sprintf "worker-%d" i)
    done
  in
  let a = Domain.spawn worker and b = Domain.spawn worker in
  Domain.join a;
  Domain.join b;
  T.end_ "owner";
  let events = T.events () in
  Alcotest.(check int) "only the owning domain's events are recorded" 2
    (List.length events);
  T.disable ();
  T.reset ()

let test_hammer_fault_single_writer () =
  let module Fault = Repair_runtime.Fault in
  Fault.disarm ();
  Fault.arm ~phase:"hammer" ~at:4 Fault.Fail;
  (* Worker domains reach the hook both through Budget.tick and by
     calling it directly: neither may count against, or fire, the
     owner's fault — the guard lives inside on_checkpoint itself. *)
  let worker () =
    let b = Budget.create ~max_steps:1_000 () in
    for _ = 1 to 3 do
      Budget.tick ~phase:"hammer" b;
      Fault.on_checkpoint ~phase:"hammer" ~elapsed:0.0 ~steps:1
    done
  in
  let ((), ()) = spawn_pair worker in
  Alcotest.(check bool) "fault still armed after worker checkpoints" true
    (Fault.armed ());
  Alcotest.(check int) "worker checkpoints did not count" 0
    (Fault.checkpoints ());
  (* the owner's own ticks still count and fire at the armed trigger *)
  let b = Budget.create ~max_steps:1_000 () in
  for _ = 1 to 3 do
    Budget.tick ~phase:"hammer" b
  done;
  Alcotest.(check int) "owner checkpoints counted" 3 (Fault.checkpoints ());
  Alcotest.(check bool) "fourth owner tick fires" true
    (try
       Budget.tick ~phase:"hammer" b;
       false
     with
    | Repair_runtime.Repair_error.Error
        (Repair_runtime.Repair_error.Fault_injected _) -> true);
  Alcotest.(check bool) "one-shot: disarmed after firing" false (Fault.armed ());
  Alcotest.(check int) "one-shot: counter reset after firing" 0
    (Fault.checkpoints ())

(* ---------- suite ---------------------------------------------------- *)

let () =
  let unit name f = Alcotest.test_case name `Quick f in
  Alcotest.run "par"
    [ ( "pool",
        [ unit "create rejects domains < 1" test_pool_rejects_zero;
          unit "task exception does not wedge the pool"
            test_pool_exception_does_not_wedge;
          unit "lowest-index exception re-raises"
            test_pool_lowest_index_exception;
          unit "pool reuse across batches" test_pool_reuse;
          unit "nested parallelism runs inline" test_pool_nested_guard;
          unit "schedule is validated and result-neutral"
            test_pool_schedule_validation;
          unit "shutdown is idempotent and final"
            test_pool_shutdown_idempotent;
          unit "run_captured defers the merge" test_pool_capture_merge_point;
          unit "worker trace events get per-task lanes" test_pool_trace_lanes;
          unit "Budget.absorb sums steps" test_budget_absorb ] );
      ( "differential",
        List.map group_by_par_matches widths
        @ [ group_by_par_chunk_layouts ]
        @ List.map conflict_graph_par_matches widths
        @ List.map s_repair_par_matches widths
        @ List.map u_repair_par_matches widths
        @ [ limited_budget_takes_sequential_path ] );
      ( "determinism",
        [ unit "50 perturbed runs, byte-identical reports"
            test_determinism_stress;
          unit "perturbed approx2_par is byte-stable" test_approx_par_stress ] );
      ( "hammer",
        [ unit "metrics registries are domain-local" test_hammer_metrics;
          unit "interner pool survives concurrent interning"
            test_hammer_interner;
          unit "budget tick names are domain-local" test_hammer_budget_ticks;
          unit "vertex-cover heuristics are reentrant across domains"
            test_hammer_vertex_cover;
          unit "trace is single-writer" test_hammer_trace_single_writer;
          unit "fault injector is single-writer"
            test_hammer_fault_single_writer ] ) ]
