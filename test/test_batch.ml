(* The journaled batch runner: manifest parsing, journal append/recover,
   retries, quarantine, resume — and the kill-at-every-checkpoint matrix
   that proves crash-safety of the commit protocol. *)

module M = Repair_batch.Manifest
module J = Repair_batch.Journal
module Runner = Repair_batch.Runner
module E = Repair_runtime.Repair_error
module Fault = Repair_runtime.Fault
module R = Repair_core.Repair

(* ---------- helpers ---------- *)

let dir_seq = ref 0

let fresh_dir () =
  incr dir_seq;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "repair_batch_%d_%d" (Unix.getpid ()) !dir_seq)
  in
  Unix.mkdir d 0o755;
  d

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path text =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc text)

let stub_job id =
  {
    M.id;
    input = id ^ ".csv";
    fds = "A -> B";
    kind = M.S_repair;
    strategy = M.Auto;
    timeout_s = None;
    max_steps = None;
    on_budget = `Degrade;
    output = None;
  }

let stub_manifest ids = { M.jobs = List.map stub_job ids }

let ok_outcome = { Runner.status = `Ok; distance = 1.0; method_used = "stub" }

let raise_parse detail =
  E.raise_error (E.Parse { source = "stub"; line = None; detail })

let raise_transient () =
  E.raise_error (E.Budget_exhausted { phase = "stub"; elapsed = 0.0; steps = 1 })

(* An executor over a call-count table: deterministic, inspectable. *)
let counting_exec ?(behave = fun _ _ -> ok_outcome) counts (job : M.job) =
  let n = (try Hashtbl.find counts job.id with Not_found -> 0) + 1 in
  Hashtbl.replace counts job.id n;
  behave job.id n

(* ---------- manifest ---------- *)

let manifest_text =
  {|{ "jobs": [
      { "id": "a", "input": "a.csv", "fds": "A -> B" },
      { "id": "b", "input": "b.jsonl", "fds": "A -> B; B -> C",
        "kind": "u-repair", "strategy": "exact",
        "timeout_s": 2.5, "max_steps": 100, "on-budget": "fail",
        "output": "b.out.jsonl" } ] }|}

let test_manifest_parse () =
  let m = M.parse_string manifest_text in
  Alcotest.(check int) "two jobs" 2 (List.length m.jobs);
  let a = List.nth m.jobs 0 and b = List.nth m.jobs 1 in
  Alcotest.(check bool) "a defaults" true
    (a.kind = M.S_repair && a.strategy = M.Auto && a.on_budget = `Degrade
    && a.timeout_s = None && a.max_steps = None && a.output = None);
  Alcotest.(check bool) "b explicit" true
    (b.kind = M.U_repair && b.strategy = M.Exact && b.on_budget = `Fail
    && b.timeout_s = Some 2.5 && b.max_steps = Some 100
    && b.output = Some "b.out.jsonl")

let test_manifest_errors () =
  let parse_error s =
    try ignore (M.parse_string s); false with E.Error (E.Parse _) -> true
  in
  Alcotest.(check bool) "malformed json" true (parse_error "{");
  Alcotest.(check bool) "no jobs array" true (parse_error "{}");
  Alcotest.(check bool) "empty job list" true (parse_error {|{"jobs": []}|});
  Alcotest.(check bool) "missing id" true
    (parse_error {|{"jobs": [{"input": "x", "fds": "A -> B"}]}|});
  Alcotest.(check bool) "missing fds" true
    (parse_error {|{"jobs": [{"id": "a", "input": "x"}]}|});
  Alcotest.(check bool) "unknown strategy" true
    (parse_error
       {|{"jobs": [{"id": "a", "input": "x", "fds": "F", "strategy": "magic"}]}|});
  Alcotest.(check bool) "duplicate id is a schema error" true
    (try
       ignore
         (M.parse_string
            {|{"jobs": [{"id": "a", "input": "x", "fds": "F"},
                        {"id": "a", "input": "y", "fds": "F"}]}|});
       false
     with E.Error (E.Schema_mismatch _) -> true);
  (match M.load_result "/nonexistent/manifest.json" with
  | Error (E.Io _) -> ()
  | _ -> Alcotest.fail "unreadable manifest must be Io")

(* ---------- journal ---------- *)

let all_entries =
  [ J.Begin { jobs = 3 };
    J.Start { job = "a"; attempt = 1 };
    J.Retry { job = "a"; attempt = 1; error = "budget-exhausted"; backoff_ms = 100 };
    J.Commit
      { job = "a"; attempt = 2; status = `Degraded; method_used = "m";
        distance = 2.5; wall_ms = 12.5; counters = [ ("ticks.y", 3) ] };
    J.Quarantine
      { job = "b"; attempts = 3; error = "parse"; detail = "bad row";
        counters = [ ("ticks.x", 7) ] } ]

let test_journal_roundtrip () =
  List.iter
    (fun e ->
      match J.entry_of_json (J.entry_to_json e) with
      | Ok e' -> Alcotest.(check bool) "roundtrips" true (e = e')
      | Error m -> Alcotest.fail m)
    all_entries;
  (match J.entry_of_json (Repair_obs.Json.Obj []) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing event must not parse")

let test_journal_append_recover () =
  let dir = fresh_dir () in
  let path = Filename.concat dir "j.jsonl" in
  let w = J.open_append path in
  List.iter (J.append w) all_entries;
  J.close w;
  let r = J.recover path in
  Alcotest.(check bool) "clean journal untouched" false r.truncated;
  Alcotest.(check int) "all entries survive" (List.length all_entries)
    (List.length r.entries);
  Alcotest.(check int) "terminal map" 2 (List.length r.committed)

let test_journal_truncates_uncommitted_tail () =
  let dir = fresh_dir () in
  let path = Filename.concat dir "j.jsonl" in
  let w = J.open_append path in
  J.append w (J.Begin { jobs = 2 });
  J.append w (J.Start { job = "a"; attempt = 1 });
  J.append w
    (J.Commit
       { job = "a"; attempt = 1; status = `Ok; method_used = "m";
         distance = 0.0; wall_ms = 0.0; counters = [] });
  let committed_bytes = read_file path in
  (* a dangling start plus a torn half-line: crash mid-job, mid-write *)
  J.append w (J.Start { job = "b"; attempt = 1 });
  J.close w;
  write_file path (read_file path ^ {|{"event":"comm|});
  let r = J.recover path in
  Alcotest.(check bool) "tail discarded" true r.truncated;
  Alcotest.(check int) "prefix survives" 3 (List.length r.entries);
  Alcotest.(check string) "file truncated to committed prefix" committed_bytes
    (read_file path);
  (* recovery is idempotent *)
  let r2 = J.recover path in
  Alcotest.(check bool) "second pass clean" false r2.truncated

(* Byte-level damage matrix: flip a bit in every byte of a committed
   framed journal, and separately truncate it at every offset. Recovery
   must classify every outcome — torn tail (truncate silently) or
   corruption (quarantine the damaged suffix to the sidecar, truncate to
   the last valid commit point, raise the structured class) — and a
   subsequent resume must never re-execute a job whose terminal record
   survived. Never an unclassified exception. *)
let test_journal_corruption_matrix () =
  let dir = fresh_dir () in
  let pristine_path = Filename.concat dir "pristine.jsonl" in
  ignore
    (Runner.run
       ~exec:(counting_exec (Hashtbl.create 8))
       ~journal:pristine_path
       (stub_manifest [ "a"; "b" ]));
  let pristine = read_file pristine_path in
  let n = String.length pristine in
  let scratch = Filename.concat dir "mutated.jsonl" in
  let check_resume what =
    let survivors = (J.recover scratch).J.committed in
    let counts = Hashtbl.create 8 in
    ignore
      (Runner.run ~resume:true ~exec:(counting_exec counts) ~journal:scratch
         (stub_manifest [ "a"; "b" ]));
    List.iter
      (fun (id, _) ->
        if Hashtbl.mem counts id then
          Alcotest.failf "%s: job %s re-executed past its terminal record"
            what id)
      survivors
  in
  let corruptions = ref 0 and survived = ref 0 in
  for i = 0 to n - 1 do
    let mutated = Bytes.of_string pristine in
    Bytes.set mutated i (Char.chr (Char.code pristine.[i] lxor 1));
    write_file scratch (Bytes.to_string mutated);
    (match J.recover scratch with
    | (_ : J.recovery) -> incr survived (* torn tail or harmless *)
    | exception E.Error (E.Corruption _) ->
      incr corruptions;
      Alcotest.(check bool)
        "damage quarantined to sidecar" true
        (Sys.file_exists (J.corrupt_sidecar scratch));
      Sys.remove (J.corrupt_sidecar scratch);
      (* the trusted prefix must now recover silently *)
      ignore (J.recover scratch)
    | exception exn ->
      Alcotest.failf "bit flip at byte %d/%d escaped classification: %s" i n
        (Printexc.to_string exn));
    check_resume (Printf.sprintf "flip at byte %d" i);
    Sys.remove scratch
  done;
  (* a checksummed journal cannot fail to notice mid-file damage *)
  Alcotest.(check bool) "some flips detected as corruption" true
    (!corruptions > 0);
  Alcotest.(check bool) "flipping the final newline reads as torn" true
    (!survived > 0);
  (* an interrupted append is always a torn tail, never corruption *)
  for i = 0 to n - 1 do
    write_file scratch (String.sub pristine 0 i);
    (match J.recover scratch with
    | (_ : J.recovery) -> ()
    | exception exn ->
      Alcotest.failf "truncation at byte %d raised: %s" i
        (Printexc.to_string exn));
    check_resume (Printf.sprintf "truncation at byte %d" i);
    Sys.remove scratch
  done

(* Journals written before framing are plain JSONL: still recovered,
   still resumable, and appends continue in legacy format so a file is
   never format-mixed. Damage in a legacy journal is still corruption. *)
let test_journal_legacy_format () =
  let dir = fresh_dir () in
  let path = Filename.concat dir "legacy.jsonl" in
  write_file path
    ({|{"event":"begin","jobs":2}|} ^ "\n"
   ^ {|{"event":"start","job":"a","attempt":1}|} ^ "\n"
   ^ {|{"event":"commit","job":"a","attempt":1,"status":"ok","method":"m","distance":1.0}|}
   ^ "\n");
  let r = J.recover path in
  Alcotest.(check bool) "detected as legacy" true (r.J.format = `Legacy);
  Alcotest.(check int) "entries read" 3 (List.length r.J.entries);
  (match List.assoc "a" r.J.committed with
  | J.Commit { wall_ms; _ } ->
    Alcotest.(check (float 0.0)) "missing wall_ms reads as zero" 0.0 wall_ms
  | _ -> Alcotest.fail "terminal record for a is not a commit");
  (* resume executes only b and appends in the journal's own format *)
  let counts = Hashtbl.create 8 in
  let s =
    Runner.run ~resume:true ~exec:(counting_exec counts) ~journal:path
      (stub_manifest [ "a"; "b" ])
  in
  Alcotest.(check int) "one job replayed" 1 s.Runner.replayed;
  Alcotest.(check bool) "a not re-executed" false (Hashtbl.mem counts "a");
  Alcotest.(check int) "b executed once" 1 (Hashtbl.find counts "b");
  let text = read_file path in
  Alcotest.(check bool) "appends stayed legacy JSONL" true (text.[0] = '{');
  Alcotest.(check bool) "no framed record crept in" false
    (List.exists
       (fun l -> l <> "" && l.[0] = '@')
       (String.split_on_char '\n' text));
  let r2 = J.recover path in
  Alcotest.(check bool) "still legacy after resume" true (r2.J.format = `Legacy);
  Alcotest.(check int) "both terminal" 2 (List.length r2.J.committed);
  (* mid-file damage in a legacy journal is corruption too *)
  let lines = String.split_on_char '\n' (read_file path) in
  let mangled =
    List.mapi (fun i l -> if i = 2 then {|{"event":"comm_DAMAGE"}|} else l) lines
  in
  write_file path (String.concat "\n" mangled);
  (match J.recover path with
  | (_ : J.recovery) -> Alcotest.fail "legacy damage not detected"
  | exception E.Error (E.Corruption _) ->
    Alcotest.(check bool) "legacy damage quarantined" true
      (Sys.file_exists (J.corrupt_sidecar path)))

(* ---------- runner ---------- *)

let test_runner_happy_path () =
  let dir = fresh_dir () in
  let journal = Filename.concat dir "j.jsonl" in
  let counts = Hashtbl.create 8 in
  let s =
    Runner.run ~exec:(counting_exec counts) ~journal (stub_manifest [ "a"; "b" ])
  in
  Alcotest.(check int) "total" 2 s.total;
  Alcotest.(check int) "ok" 2 s.ok;
  Alcotest.(check int) "quarantined" 0 s.quarantined;
  Alcotest.(check int) "each executed once" 1 (Hashtbl.find counts "a");
  let r = J.recover journal in
  Alcotest.(check int) "begin + 2*(start,commit)" 5 (List.length r.entries)

let test_runner_refuses_existing_journal () =
  let dir = fresh_dir () in
  let journal = Filename.concat dir "j.jsonl" in
  let counts = Hashtbl.create 8 in
  ignore (Runner.run ~exec:(counting_exec counts) ~journal (stub_manifest [ "a" ]));
  Alcotest.(check bool) "second run without --resume refused" true
    (try
       ignore
         (Runner.run ~exec:(counting_exec counts) ~journal
            (stub_manifest [ "a" ]));
       false
     with E.Error (E.Io _) -> true);
  Alcotest.(check bool) "manifest drift under resume refused" true
    (try
       ignore
         (Runner.run ~resume:true ~exec:(counting_exec counts) ~journal
            (stub_manifest [ "a"; "b" ]));
       false
     with E.Error (E.Schema_mismatch _) -> true)

let test_runner_retries_then_succeeds () =
  let dir = fresh_dir () in
  let journal = Filename.concat dir "j.jsonl" in
  let counts = Hashtbl.create 8 in
  let behave id n =
    if id = "flaky" && n <= 2 then raise_transient () else ok_outcome
  in
  let s =
    Runner.run ~retries:3 ~backoff_ms:1 ~exec:(counting_exec ~behave counts)
      ~journal
      (stub_manifest [ "flaky"; "solid" ])
  in
  Alcotest.(check int) "ok" 2 s.ok;
  Alcotest.(check int) "retried twice" 2 s.retried;
  Alcotest.(check int) "three attempts" 3 (Hashtbl.find counts "flaky");
  let retry_backoffs =
    List.filter_map
      (function J.Retry { backoff_ms; _ } -> Some backoff_ms | _ -> None)
      (J.recover journal).entries
  in
  Alcotest.(check (list int)) "exponential backoff on record" [ 1; 2 ]
    retry_backoffs

let test_runner_quarantines () =
  let dir = fresh_dir () in
  let journal = Filename.concat dir "j.jsonl" in
  let counts = Hashtbl.create 8 in
  let behave id _ =
    match id with
    | "poison" -> raise_parse "bad row"
    | "exhausts" -> raise_transient ()
    | "crashes" -> failwith "unexpected"
    | _ -> ok_outcome
  in
  let s =
    Runner.run ~retries:1 ~exec:(counting_exec ~behave counts) ~journal
      (stub_manifest [ "poison"; "exhausts"; "crashes"; "fine" ])
  in
  Alcotest.(check int) "batch survives every failure" 4 s.total;
  Alcotest.(check int) "ok" 1 s.ok;
  Alcotest.(check int) "quarantined" 3 s.quarantined;
  (* permanent errors are not retried; transients use every attempt *)
  Alcotest.(check int) "poison tried once" 1 (Hashtbl.find counts "poison");
  Alcotest.(check int) "transient exhausted retries" 2
    (Hashtbl.find counts "exhausts");
  Alcotest.(check int) "crash tried once" 1 (Hashtbl.find counts "crashes");
  let quarantined =
    List.filter_map
      (function
        | J.Quarantine { job; error; attempts; _ } -> Some (job, error, attempts)
        | _ -> None)
      (J.recover journal).entries
  in
  Alcotest.(check bool) "classes recorded" true
    (quarantined
    = [ ("poison", "parse", 1); ("exhausts", "budget-exhausted", 2);
        ("crashes", "internal", 1) ])

let test_runner_full_resume_is_noop () =
  let dir = fresh_dir () in
  let journal = Filename.concat dir "j.jsonl" in
  let counts = Hashtbl.create 8 in
  let behave id _ = if id = "poison" then raise_parse "bad" else ok_outcome in
  let exec = counting_exec ~behave counts in
  ignore (Runner.run ~exec ~journal (stub_manifest [ "a"; "poison"; "b" ]));
  let bytes = read_file journal in
  Hashtbl.reset counts;
  let s = Runner.run ~resume:true ~exec ~journal (stub_manifest [ "a"; "poison"; "b" ]) in
  Alcotest.(check int) "everything replayed" 3 s.replayed;
  Alcotest.(check int) "quarantine state replayed too" 1 s.quarantined;
  Alcotest.(check int) "nothing executed" 0 (Hashtbl.length counts);
  Alcotest.(check string) "journal bytes unchanged" bytes (read_file journal)

let test_summary_latency_histograms () =
  let module H = Repair_obs.Histogram in
  let dir = fresh_dir () in
  let journal = Filename.concat dir "j.jsonl" in
  let counts = Hashtbl.create 8 in
  let behave id _ = if id = "poison" then raise_parse "bad" else ok_outcome in
  let exec = counting_exec ~behave counts in
  let s = Runner.run ~exec ~journal (stub_manifest [ "a"; "poison"; "b" ]) in
  Alcotest.(check int) "committed jobs only" 2 (H.count s.latency);
  (match s.latency_by_method with
  | [ ("stub", h) ] -> Alcotest.(check int) "by-method count" 2 (H.count h)
  | _ -> Alcotest.fail "expected exactly the \"stub\" method histogram");
  (* resume: replayed jobs reload their commit latency from the journal,
     so the resumed run's histogram matches the uninterrupted one *)
  let s2 =
    Runner.run ~resume:true ~exec ~journal (stub_manifest [ "a"; "poison"; "b" ])
  in
  Alcotest.(check int) "replayed latencies counted" 2 (H.count s2.latency);
  let journal_walls =
    List.filter_map
      (function
        | J.Commit { job; wall_ms; _ } -> Some (job, wall_ms) | _ -> None)
      (J.recover journal).entries
  in
  List.iter
    (fun (r : Runner.job_result) ->
      match r.state with
      | Runner.Committed _ ->
        Alcotest.(check (float 0.0))
          ("replayed wall_ms read back from journal: " ^ r.job.M.id)
          (List.assoc r.job.M.id journal_walls)
          r.wall_ms
      | Runner.Quarantined _ -> ())
    s2.results;
  let j = Runner.summary_json s2 in
  let mem k o = Repair_obs.Json.member k o in
  (match Option.bind (mem "latency" j) (mem "p99_ms") with
  | Some _ -> ()
  | None -> Alcotest.fail "summary latency lacks p99_ms");
  match Option.bind (mem "latency_by_method" j) (mem "stub") with
  | Some _ -> ()
  | None -> Alcotest.fail "summary lacks the per-method histogram"

(* ---------- the kill-at-every-checkpoint matrix ---------- *)

(* The runner ticks a phase-"batch" budget checkpoint after the Begin
   header and then three times per job (before Start, after Start, after
   the terminal record), so a 5-job single-attempt run has exactly
   1 + 3*5 = 16 checkpoints. Arming [Fault.Fail] at checkpoint [k]
   simulates kill -9 between two journal writes: the error escapes
   [Runner.run] (the runner's own ticks sit outside per-job isolation).
   Crash-safety means: for every k, crash-at-k then resume yields a
   journal byte-for-byte identical to the uninterrupted run's — after
   zeroing [wall_ms], the one wall-clock field Commit records carry —
   and no job whose terminal record was durable at the crash is
   executed again. *)

(* Zero the wall_ms telemetry field, the journal's one wall-clock value.
   Framed lines are unwrapped, normalized, and re-framed (the length
   prefix and CRC are pure functions of the payload, so normalized
   journals are still byte-comparable). *)
let reframe payload =
  Printf.sprintf "@%d:%s:%s" (String.length payload)
    (Repair_batch.Crc32.to_hex (Repair_batch.Crc32.string payload))
    payload

let normalize_journal text =
  String.split_on_char '\n' text
  |> List.map (fun line ->
         if line = "" then line
         else
           let payload, framed =
             if line.[0] = '@' then
               match String.index_opt line ':' with
               | Some c1 when String.length line >= c1 + 10 ->
                 ( String.sub line (c1 + 10) (String.length line - c1 - 10),
                   true )
               | _ -> (line, false)
             else (line, false)
           in
           match Repair_obs.Json.of_string payload with
           | Ok (Repair_obs.Json.Obj fields) ->
             let normalized =
               Repair_obs.Json.to_string
                 (Repair_obs.Json.Obj
                    (List.map
                       (fun (k, v) ->
                         if k = "wall_ms" then (k, Repair_obs.Json.Float 0.0)
                         else (k, v))
                       fields))
             in
             if framed then reframe normalized else normalized
           | Ok _ | Error _ -> line)
  |> String.concat "\n"

let matrix_ids = [ "j1"; "j2"; "poison"; "j4"; "j5" ]

let matrix_checkpoints = 1 + (3 * List.length matrix_ids)

let matrix_behave id _ =
  if id = "poison" then raise_parse "bad row" else ok_outcome

let run_matrix ~journal counts ~resume =
  Runner.run ~resume ~exec:(counting_exec ~behave:matrix_behave counts)
    ~journal (stub_manifest matrix_ids)

let test_crash_resume_matrix () =
  (* reference: the uninterrupted run *)
  let ref_dir = fresh_dir () in
  let ref_journal = Filename.concat ref_dir "j.jsonl" in
  ignore (run_matrix ~journal:ref_journal (Hashtbl.create 8) ~resume:false);
  let reference = normalize_journal (read_file ref_journal) in
  for k = 1 to matrix_checkpoints do
    let dir = fresh_dir () in
    let journal = Filename.concat dir "j.jsonl" in
    let counts = Hashtbl.create 8 in
    Fault.arm ~phase:"batch" ~at:k Fault.Fail;
    (match run_matrix ~journal counts ~resume:false with
    | _ -> Alcotest.failf "checkpoint %d: fault did not fire" k
    | exception E.Error (E.Fault_injected _) -> ());
    Fault.disarm ();
    (* which jobs were durable at the crash — and their exec counts *)
    let committed = (J.recover journal).committed in
    let committed_counts =
      List.map
        (fun (id, _) ->
          (id, try Hashtbl.find counts id with Not_found -> 0))
        committed
    in
    let s = run_matrix ~journal counts ~resume:true in
    Alcotest.(check int) (Printf.sprintf "checkpoint %d: all jobs land" k)
      (List.length matrix_ids) s.total;
    Alcotest.(check int)
      (Printf.sprintf "checkpoint %d: committed jobs replayed" k)
      (List.length committed) s.replayed;
    Alcotest.(check string)
      (Printf.sprintf "checkpoint %d: journal byte-identical to reference" k)
      reference
      (normalize_journal (read_file journal));
    List.iter
      (fun (id, n) ->
        Alcotest.(check int)
          (Printf.sprintf "checkpoint %d: %s not executed past its commit" k id)
          n
          (try Hashtbl.find counts id with Not_found -> 0))
      committed_counts
  done;
  (* the checkpoint count is exact: one past the end never fires *)
  let dir = fresh_dir () in
  let journal = Filename.concat dir "j.jsonl" in
  let s =
    Fault.with_fault ~phase:"batch" ~at:(matrix_checkpoints + 1) Fault.Fail
      (fun () -> run_matrix ~journal (Hashtbl.create 8) ~resume:false)
  in
  Alcotest.(check int) "run past the last checkpoint completes" 5 s.total

(* The same matrix on a 4-domain pool: speculative parallel first
   attempts must not change the journal. Crash at every checkpoint,
   resume on the pool, and require the journal byte-identical (modulo
   wall_ms) to the uninterrupted *sequential* reference — the strongest
   form of the DESIGN §13 contract for the batch runner. The exec
   call-count table is mutex-guarded because first attempts now run on
   worker domains. *)
let test_crash_resume_matrix_par () =
  let locked_exec lock counts job =
    Mutex.lock lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock lock)
      (fun () -> counting_exec ~behave:matrix_behave counts job)
  in
  let ref_dir = fresh_dir () in
  let ref_journal = Filename.concat ref_dir "j.jsonl" in
  ignore (run_matrix ~journal:ref_journal (Hashtbl.create 8) ~resume:false);
  let reference = normalize_journal (read_file ref_journal) in
  let pool = Repair_par.Pool.create ~domains:4 in
  Fun.protect
    ~finally:(fun () -> Repair_par.Pool.shutdown pool)
    (fun () ->
      let run_par ~journal counts ~resume =
        let lock = Mutex.create () in
        Runner.run ~pool ~resume ~exec:(locked_exec lock counts) ~journal
          (stub_manifest matrix_ids)
      in
      (* uninterrupted pooled run: already byte-identical *)
      let dir = fresh_dir () in
      let journal = Filename.concat dir "j.jsonl" in
      ignore (run_par ~journal (Hashtbl.create 8) ~resume:false);
      Alcotest.(check string) "pooled journal = sequential reference"
        reference
        (normalize_journal (read_file journal));
      for k = 1 to matrix_checkpoints do
        let dir = fresh_dir () in
        let journal = Filename.concat dir "j.jsonl" in
        let counts = Hashtbl.create 8 in
        Fault.arm ~phase:"batch" ~at:k Fault.Fail;
        (match run_par ~journal counts ~resume:false with
        | _ -> Alcotest.failf "checkpoint %d: fault did not fire" k
        | exception E.Error (E.Fault_injected _) -> ());
        Fault.disarm ();
        let committed = (J.recover journal).committed in
        let s = run_par ~journal counts ~resume:true in
        Alcotest.(check int)
          (Printf.sprintf "checkpoint %d: committed jobs replayed" k)
          (List.length committed) s.replayed;
        Alcotest.(check string)
          (Printf.sprintf
             "checkpoint %d: resumed pooled journal = sequential reference" k)
          reference
          (normalize_journal (read_file journal))
      done)

(* A mid-solver fault (no phase filter) fires inside [exec], where the
   per-job isolation catches it as a transient, retryable failure — a
   crash of the job, not of the runner. *)
let test_solver_fault_is_per_job () =
  let dir = fresh_dir () in
  let journal = Filename.concat dir "j.jsonl" in
  let counts = Hashtbl.create 8 in
  let behave id n =
    if id = "a" && n = 1 then
      E.raise_error (E.Fault_injected { phase = "solver"; checkpoint = 1 })
    else ok_outcome
  in
  let s =
    Runner.run ~retries:1 ~exec:(counting_exec ~behave counts) ~journal
      (stub_manifest [ "a"; "b" ])
  in
  Alcotest.(check int) "both jobs committed" 2 s.ok;
  Alcotest.(check int) "one retry" 1 s.retried

(* ---------- driver-wired executor ---------- *)

let test_batch_with_driver () =
  let dir = fresh_dir () in
  let path name = Filename.concat dir name in
  write_file (path "office.csv")
    "#id,#weight,facility,room,floor,city\n\
     1,2,HQ,322,3,Paris\n\
     2,1,HQ,322,30,Madrid\n\
     3,1,HQ,122,1,Madrid\n";
  write_file (path "broken.csv") "#id,A,B\n1,1,2,extra\n";
  let manifest =
    M.parse_string
      (Printf.sprintf
         {|{ "jobs": [
             { "id": "office", "input": "%s",
               "fds": "facility -> city; facility room -> floor",
               "output": "%s" },
             { "id": "badfds", "input": "%s", "fds": "A -> " },
             { "id": "broken", "input": "%s", "fds": "A -> B" } ] }|}
         (path "office.csv") (path "office.out.csv") (path "office.csv")
         (path "broken.csv"))
  in
  let s = R.Batch.run ~journal:(path "j.jsonl") manifest in
  Alcotest.(check int) "office repaired" 1 s.ok;
  Alcotest.(check int) "bad FDs and bad rows quarantined" 2 s.quarantined;
  Alcotest.(check bool) "repaired table written" true
    (Sys.file_exists (path "office.out.csv"));
  let t = R.Relational.Csv_io.load ~name:"office" (path "office.out.csv") in
  Alcotest.(check int) "one tuple deleted" 2 (R.Relational.Table.size t)

let () =
  Alcotest.run "batch"
    [ ( "manifest",
        [ Alcotest.test_case "parse" `Quick test_manifest_parse;
          Alcotest.test_case "errors" `Quick test_manifest_errors ] );
      ( "journal",
        [ Alcotest.test_case "roundtrip" `Quick test_journal_roundtrip;
          Alcotest.test_case "append/recover" `Quick test_journal_append_recover;
          Alcotest.test_case "corruption matrix" `Quick
            test_journal_corruption_matrix;
          Alcotest.test_case "legacy format" `Quick test_journal_legacy_format;
          Alcotest.test_case "truncates tail" `Quick
            test_journal_truncates_uncommitted_tail ] );
      ( "runner",
        [ Alcotest.test_case "happy path" `Quick test_runner_happy_path;
          Alcotest.test_case "refuses stale journal" `Quick
            test_runner_refuses_existing_journal;
          Alcotest.test_case "retries" `Quick test_runner_retries_then_succeeds;
          Alcotest.test_case "quarantine" `Quick test_runner_quarantines;
          Alcotest.test_case "full resume" `Quick test_runner_full_resume_is_noop;
          Alcotest.test_case "latency histograms" `Quick
            test_summary_latency_histograms;
          Alcotest.test_case "solver fault is per-job" `Quick
            test_solver_fault_is_per_job ] );
      ( "crash-resume",
        [ Alcotest.test_case "kill at every checkpoint" `Quick
            test_crash_resume_matrix;
          Alcotest.test_case "kill at every checkpoint, 4-domain pool" `Quick
            test_crash_resume_matrix_par ] );
      ( "driver",
        [ Alcotest.test_case "end to end" `Quick test_batch_with_driver ] ) ]
