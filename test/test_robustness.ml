(* Robustness layer: cooperative budgets, the degradation ladder in the
   driver, structured errors, and deterministic fault injection. Every
   fallback edge of Driver.s_repair/u_repair is exercised here without a
   single real timeout. *)

module R = Repair_core.Repair
module Budget = Repair_runtime.Budget
module Fault = Repair_runtime.Fault
module E = Repair_runtime.Repair_error
open R.Relational
open R.Fd
open Helpers
module D = R.Workload.Datasets

let contains s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let mk a b c = Tuple.make [ Value.int a; Value.int b; Value.int c ]

(* Three tuples violating the APX-hard Δ = {A→B, B→C}. *)
let hard_table = Table.of_tuples D.r3_schema [ mk 1 1 1; mk 1 1 2; mk 1 2 1 ]

let hard = D.delta_a_to_b_to_c

let ok = function
  | Ok r -> r
  | Error e -> Alcotest.failf "driver returned error: %s" (E.to_string e)

(* ---------- budget exhaustion through the public driver ---------- *)

let test_s_budget_degrades () =
  let budget = Budget.create ~max_steps:1 () in
  let r = ok (R.Driver.s_repair_result ~budget hard hard_table) in
  Alcotest.(check bool) "degraded" true r.degraded;
  Alcotest.(check bool) "fallback recorded" true (r.fallbacks <> []);
  Alcotest.(check bool) "consistent" true (Fd_set.satisfied_by hard r.result);
  Alcotest.(check bool)
    "subset" true
    (R.Srepair.S_check.is_consistent_subset hard ~of_:hard_table r.result);
  let exact = R.Srepair.S_exact.distance hard hard_table in
  Alcotest.(check bool)
    "within certified 2x" true
    (r.distance <= (2.0 *. exact) +. 1e-9)

let test_s_deadline_degrades () =
  (* A zero wall-clock budget is exhausted at the very first checkpoint —
     deterministic even though it is time-based. *)
  let budget = Budget.create ~timeout_s:0.0 () in
  let r = ok (R.Driver.s_repair_result ~budget hard hard_table) in
  Alcotest.(check bool) "degraded" true r.degraded;
  Alcotest.(check bool) "consistent" true (Fd_set.satisfied_by hard r.result)

let test_s_budget_fail_policy () =
  let budget = Budget.create ~max_steps:1 () in
  match R.Driver.s_repair_result ~budget ~on_budget:`Fail hard hard_table with
  | Ok _ -> Alcotest.fail "expected Budget_exhausted"
  | Error (E.Budget_exhausted { phase; steps; _ }) ->
    Alcotest.(check bool) "phase recorded" true (phase <> "");
    Alcotest.(check bool) "steps counted" true (steps >= 1)
  | Error e -> Alcotest.failf "wrong error class: %s" (E.class_name e)

let test_s_unlimited_not_degraded () =
  let r = ok (R.Driver.s_repair_result hard hard_table) in
  Alcotest.(check bool) "not degraded" false r.degraded;
  Alcotest.(check (list string)) "no fallbacks" [] r.fallbacks;
  Alcotest.(check bool) "optimal" true r.optimal

let test_u_budget_degrades () =
  let t = Table.of_tuples D.r3_schema [ mk 1 1 1; mk 1 2 1 ] in
  let budget = Budget.create ~max_steps:1 () in
  let r = ok (R.Driver.u_repair_result ~budget hard t) in
  Alcotest.(check bool) "degraded" true r.degraded;
  Alcotest.(check bool) "consistent" true (Fd_set.satisfied_by hard r.result)

(* ---------- every fallback edge, via deterministic faults ---------- *)

let edge ?phase driver =
  Fault.with_fault ?phase ~at:1 Fault.Exhaust (fun () -> ok (driver ()))

let test_edge_s_poly_to_approx () =
  let r =
    edge ~phase:"opt-s-repair" (fun () ->
        R.Driver.s_repair_result ~strategy:R.Driver.Poly D.office_fds
          D.office_table)
  in
  Alcotest.(check bool) "degraded" true r.degraded;
  Alcotest.(check bool)
    "edge names Algorithm 1" true
    (List.exists (fun f -> contains f "OptSRepair") r.fallbacks);
  Alcotest.(check bool)
    "consistent" true
    (Fd_set.satisfied_by D.office_fds r.result)

let test_edge_s_exact_to_approx () =
  let r =
    edge ~phase:"vertex-cover" (fun () ->
        R.Driver.s_repair_result ~strategy:R.Driver.Exact hard hard_table)
  in
  Alcotest.(check bool) "degraded" true r.degraded;
  Alcotest.(check bool)
    "edge names the exact baseline" true
    (List.exists (fun f -> contains f "vertex cover") r.fallbacks);
  Alcotest.(check bool) "consistent" true (Fd_set.satisfied_by hard r.result)

let test_edge_u_poly_to_approx () =
  let r =
    edge ~phase:"opt-u-repair" (fun () ->
        R.Driver.u_repair_result ~strategy:R.Driver.Poly D.office_fds
          D.office_table)
  in
  Alcotest.(check bool) "degraded" true r.degraded;
  Alcotest.(check bool)
    "consistent" true
    (Fd_set.satisfied_by D.office_fds r.result)

let test_edge_u_exact_to_approx () =
  let t = Table.of_tuples D.r3_schema [ mk 1 1 1; mk 1 2 1 ] in
  let r =
    edge ~phase:"u-exact" (fun () ->
        R.Driver.u_repair_result ~strategy:R.Driver.Exact hard t)
  in
  Alcotest.(check bool) "degraded" true r.degraded;
  Alcotest.(check bool) "consistent" true (Fd_set.satisfied_by hard r.result)

let test_fault_fail_mode () =
  (* A simulated crash (not a timeout) also walks the ladder… *)
  let r =
    Fault.with_fault ~phase:"vertex-cover" ~at:1 Fault.Fail (fun () ->
        ok (R.Driver.s_repair_result ~strategy:R.Driver.Exact hard hard_table))
  in
  Alcotest.(check bool)
    "edge records the fault class" true
    (List.exists (fun f -> contains f "fault-injected") r.fallbacks);
  (* …unless the policy says fail, in which case the error surfaces. *)
  (match
     Fault.with_fault ~phase:"vertex-cover" ~at:1 Fault.Fail (fun () ->
         R.Driver.s_repair_result ~strategy:R.Driver.Exact ~on_budget:`Fail
           hard hard_table)
   with
  | Error (E.Fault_injected { phase; checkpoint }) ->
    Alcotest.(check string) "phase" "vertex-cover" phase;
    Alcotest.(check int) "checkpoint" 1 checkpoint
  | Ok _ -> Alcotest.fail "fault did not fire"
  | Error e -> Alcotest.failf "wrong error class: %s" (E.class_name e));
  Alcotest.(check bool) "injector disarmed" false (Fault.armed ())

let test_fault_one_shot () =
  (* The fault disarms itself when it fires, so the fallback runs clean
     even though the approximation never ticks. A second budgeted call
     after with_fault must not see a stale fault. *)
  Fault.with_fault ~at:1 Fault.Exhaust (fun () ->
      match
        R.Driver.s_repair_result ~strategy:R.Driver.Exact ~on_budget:`Fail
          hard hard_table
      with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "fault did not fire");
  let r = ok (R.Driver.s_repair_result ~strategy:R.Driver.Exact hard hard_table) in
  Alcotest.(check bool) "no stale fault" false r.degraded;
  (* firing also resets the checkpoint counter, exactly like disarm *)
  Fault.with_fault ~at:1 Fault.Exhaust (fun () ->
      (match Budget.tick ~phase:"t" (Budget.create ~max_steps:10 ()) with
      | () -> Alcotest.fail "fault did not fire"
      | exception E.Error (E.Budget_exhausted _) -> ());
      Alcotest.(check int) "counter reset by the fire" 0 (Fault.checkpoints ()))

(* ---------- error taxonomy ---------- *)

let test_error_classes () =
  let be = E.Budget_exhausted { phase = "p"; elapsed = 0.1; steps = 7 } in
  Alcotest.(check int) "budget exit code" 5 (E.exit_code be);
  Alcotest.(check string) "budget class" "budget-exhausted" (E.class_name be);
  Alcotest.(check bool) "budget degradable" true (E.is_degradable be);
  let pe = E.Parse { source = "f.csv"; line = Some 3; detail = "bad" } in
  Alcotest.(check int) "parse exit code" 2 (E.exit_code pe);
  Alcotest.(check bool) "parse not degradable" false (E.is_degradable pe);
  let ie = E.Intractable { what = "x"; detail = "y" } in
  Alcotest.(check int) "intractable exit code" 6 (E.exit_code ie);
  let ce = E.Corruption { file = "j.jsonl"; offset = 42; detail = "bad crc" } in
  Alcotest.(check int) "corruption exit code" 11 (E.exit_code ce);
  Alcotest.(check string) "corruption class" "corruption" (E.class_name ce);
  Alcotest.(check bool) "corruption not degradable" false (E.is_degradable ce);
  Alcotest.(check bool)
    "guard catches" true
    (E.guard (fun () -> E.raise_error be) = Error be)

let test_poly_on_hard_is_intractable () =
  match
    R.Driver.s_repair_result ~strategy:R.Driver.Poly hard hard_table
  with
  | Error (E.Intractable _) -> ()
  | Error e -> Alcotest.failf "wrong class: %s" (E.class_name e)
  | Ok _ -> Alcotest.fail "Poly must refuse the hard side"

(* ---------- budget mechanics ---------- *)

let test_budget_counters () =
  let b = Budget.create ~max_steps:3 () in
  Budget.tick ~phase:"t" b;
  Budget.tick ~phase:"t" b;
  Alcotest.(check int) "steps" 2 (Budget.steps b);
  Alcotest.(check bool) "not yet exhausted" false (Budget.exhausted b);
  Budget.tick ~phase:"t" b;
  (match Budget.tick ~phase:"t" b with
  | () -> Alcotest.fail "fourth tick must raise"
  | exception E.Error (E.Budget_exhausted { phase; steps; _ }) ->
    Alcotest.(check string) "phase" "t" phase;
    Alcotest.(check int) "steps" 4 steps);
  Alcotest.(check bool) "exhausted probe" true (Budget.exhausted b);
  Alcotest.(check bool) "unlimited is unlimited" false
    (Budget.limited (Budget.unlimited ()))

let test_unlimited_is_fresh () =
  (* Regression: [unlimited] used to be one shared mutable budget, so its
     step counter leaked across independent calls (skewing ticks.<phase>
     metrics and fault checkpoint arithmetic). Every entry point must get
     a pristine counter. *)
  let a = Budget.unlimited () in
  Budget.tick ~phase:"t" a;
  Budget.tick ~phase:"t" a;
  Alcotest.(check int) "first budget ticked" 2 (Budget.steps a);
  let b = Budget.unlimited () in
  Alcotest.(check int) "fresh unlimited starts at zero" 0 (Budget.steps b);
  (* …including the ones driver entry points create as defaults: a repair
     run must not advance a budget created afterwards. *)
  let r = ok (R.Driver.s_repair_result hard hard_table) in
  Alcotest.(check bool) "repair ran" false r.degraded;
  Alcotest.(check int) "no cross-call accumulation" 0
    (Budget.steps (Budget.unlimited ()))

(* ---------- properties ---------- *)

let prop_budget_monotone =
  qcheck ~count:60 "larger budget never worsens the repair"
    QCheck2.Gen.(
      triple
        (gen_table ~max_size:6 small_schema)
        (gen_fd_set small_schema) (int_range 1 25))
    (fun (t, d, steps) ->
      let dist budget_steps =
        let budget = Budget.create ~max_steps:budget_steps () in
        (ok (R.Driver.s_repair_result ~budget d t)).distance
      in
      dist (steps + 200) <= dist steps +. 1e-6)

let prop_degraded_iff_fallbacks =
  qcheck ~count:60 "degraded flag agrees with the fallback log"
    QCheck2.Gen.(
      triple
        (gen_table ~max_size:6 small_schema)
        (gen_fd_set small_schema) (int_range 1 10))
    (fun (t, d, steps) ->
      let budget = Budget.create ~max_steps:steps () in
      let r = ok (R.Driver.s_repair_result ~budget d t) in
      r.degraded = (r.fallbacks <> []))

let prop_degraded_consistent =
  qcheck ~count:60 "degraded U-results still satisfy the FDs"
    QCheck2.Gen.(
      triple
        (gen_table ~max_size:4 small_schema)
        (gen_fd_set small_schema) (int_range 1 10))
    (fun (t, d, steps) ->
      let budget = Budget.create ~max_steps:steps () in
      let r = ok (R.Driver.u_repair_result ~budget d t) in
      Fd_set.satisfied_by d r.result)

(* ---------- IO fault shim (DESIGN §14) ---------- *)

module Io_fault = Repair_runtime.Io_fault

let tmp_path =
  let seq = ref 0 in
  fun () ->
    incr seq;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "repair_iofault_%d_%d" (Unix.getpid ()) !seq)

let with_fd path f =
  let fd = Unix.openfile path [ O_RDWR; O_CREAT; O_TRUNC ] 0o600 in
  Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> f fd)

let file_contents path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_io_fault_passthrough () =
  Io_fault.disarm ();
  Alcotest.(check bool) "disarmed by default" false (Io_fault.armed ());
  let path = tmp_path () in
  with_fd path (fun fd ->
      let n = Io_fault.write fd (Bytes.of_string "hello") 0 5 in
      Alcotest.(check int) "full write" 5 n;
      Io_fault.fsync fd);
  Alcotest.(check string) "bytes on disk" "hello" (file_contents path);
  Alcotest.(check int) "nothing counted while disarmed" 0
    (Io_fault.seen Io_fault.Write);
  Sys.remove path

let test_io_fault_kinds () =
  let path = tmp_path () in
  let buf = Bytes.of_string "0123456789" in
  Io_fault.with_plan
    [ { Io_fault.op = Io_fault.Write; at = 1; kind = Io_fault.Short_write };
      { Io_fault.op = Io_fault.Write; at = 2; kind = Io_fault.Eintr };
      { Io_fault.op = Io_fault.Write; at = 3; kind = Io_fault.Enospc };
      { Io_fault.op = Io_fault.Write; at = 4; kind = Io_fault.Bit_flip 1 } ]
    (fun () ->
      with_fd path (fun fd ->
          Alcotest.(check int) "short write transfers half" 5
            (Io_fault.write fd buf 0 10);
          (match Io_fault.write fd buf 0 10 with
          | _ -> Alcotest.fail "EINTR step did not fire"
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
          (match Io_fault.write fd buf 0 10 with
          | _ -> Alcotest.fail "ENOSPC step did not fire"
          | exception Unix.Unix_error (Unix.ENOSPC, _, _) -> ());
          Alcotest.(check int) "bit flip still transfers fully" 10
            (Io_fault.write fd buf 0 10));
      Alcotest.(check int) "four writes counted" 4
        (Io_fault.seen Io_fault.Write);
      Alcotest.(check int) "all steps fired" 4
        (List.length (Io_fault.fired ())));
  Alcotest.(check string) "caller's buffer never mutated" "0123456789"
    (Bytes.to_string buf);
  let on_disk = file_contents path in
  Alcotest.(check int) "short prefix + flipped copy" 15 (String.length on_disk);
  Alcotest.(check string) "first write was short" "01234"
    (String.sub on_disk 0 5);
  Alcotest.(check char) "bit 1 of byte 0 inverted"
    (Char.chr (Char.code '0' lxor 2))
    on_disk.[5];
  Alcotest.(check string) "rest of flipped write intact" "123456789"
    (String.sub on_disk 6 9);
  Sys.remove path

let test_io_fault_torn_crash () =
  let path = tmp_path () in
  Io_fault.with_plan
    [ { Io_fault.op = Io_fault.Write; at = 1; kind = Io_fault.Torn 3 } ]
    (fun () ->
      with_fd path (fun fd ->
          match Io_fault.write_all fd (Bytes.of_string "0123456789") with
          | () -> Alcotest.fail "torn write did not crash"
          | exception Io_fault.Crash { op = Io_fault.Write; n = 1 } -> ()
          | exception Io_fault.Crash _ -> Alcotest.fail "wrong crash site"));
  Alcotest.(check string) "exactly the torn prefix hit the disk" "012"
    (file_contents path);
  Sys.remove path

let test_io_fault_write_all_absorbs () =
  (* short writes and EINTR — injected here, genuine in production — are
     absorbed by the hardened helper *)
  let path = tmp_path () in
  Io_fault.with_plan
    [ { Io_fault.op = Io_fault.Write; at = 1; kind = Io_fault.Short_write };
      { Io_fault.op = Io_fault.Write; at = 2; kind = Io_fault.Eintr } ]
    (fun () ->
      with_fd path (fun fd ->
          Io_fault.write_all fd (Bytes.of_string "0123456789")));
  Alcotest.(check string) "full payload despite the faults" "0123456789"
    (file_contents path);
  Sys.remove path

let test_io_fault_atomic_write () =
  let path = tmp_path () in
  Io_fault.write_file_atomic path "old contents";
  (* a crash at the rename leaves the destination untouched *)
  (match
     Io_fault.with_plan
       [ { Io_fault.op = Io_fault.Rename; at = 1; kind = Io_fault.Torn 0 } ]
       (fun () -> Io_fault.write_file_atomic path "new contents")
   with
  | () -> Alcotest.fail "crash step did not fire"
  | exception Io_fault.Crash _ -> ());
  Alcotest.(check string) "crash before rename: old contents survive"
    "old contents" (file_contents path);
  (* a classified failure mid-write also leaves it untouched *)
  (match
     Io_fault.with_plan
       [ { Io_fault.op = Io_fault.Write; at = 1; kind = Io_fault.Enospc } ]
       (fun () -> Io_fault.write_file_atomic path "new contents")
   with
  | () -> Alcotest.fail "ENOSPC step did not fire"
  | exception E.Error (E.Io _) -> ());
  Alcotest.(check string) "failed write: old contents survive" "old contents"
    (file_contents path);
  (* and the faultless path replaces the file *)
  Io_fault.write_file_atomic path "new contents";
  Alcotest.(check string) "clean write lands" "new contents"
    (file_contents path);
  Sys.remove path

let test_io_fault_single_writer () =
  Io_fault.with_plan
    [ { Io_fault.op = Io_fault.Write; at = 1; kind = Io_fault.Enospc } ]
    (fun () ->
      let path = tmp_path () in
      let worker () =
        with_fd path (fun fd -> Io_fault.write fd (Bytes.of_string "ok") 0 2)
      in
      let n = Domain.join (Domain.spawn worker) in
      Alcotest.(check int) "non-owner write passes through" 2 n;
      Alcotest.(check int) "non-owner ops do not count" 0
        (Io_fault.seen Io_fault.Write);
      Alcotest.(check bool) "plan still armed for the owner" true
        (Io_fault.armed ());
      Sys.remove path)

let () =
  Alcotest.run "robustness"
    [ ( "budget",
        [ Alcotest.test_case "s degrade on steps" `Quick test_s_budget_degrades;
          Alcotest.test_case "s degrade on deadline" `Quick
            test_s_deadline_degrades;
          Alcotest.test_case "s fail policy" `Quick test_s_budget_fail_policy;
          Alcotest.test_case "unlimited clean" `Quick
            test_s_unlimited_not_degraded;
          Alcotest.test_case "u degrade on steps" `Quick test_u_budget_degrades;
          Alcotest.test_case "counters" `Quick test_budget_counters;
          Alcotest.test_case "unlimited is fresh per call" `Quick
            test_unlimited_is_fresh ] );
      ( "fault-edges",
        [ Alcotest.test_case "s poly→approx" `Quick test_edge_s_poly_to_approx;
          Alcotest.test_case "s exact→approx" `Quick
            test_edge_s_exact_to_approx;
          Alcotest.test_case "u poly→approx" `Quick test_edge_u_poly_to_approx;
          Alcotest.test_case "u exact→approx" `Quick
            test_edge_u_exact_to_approx;
          Alcotest.test_case "fail mode" `Quick test_fault_fail_mode;
          Alcotest.test_case "one-shot" `Quick test_fault_one_shot ] );
      ( "errors",
        [ Alcotest.test_case "taxonomy" `Quick test_error_classes;
          Alcotest.test_case "poly on hard" `Quick
            test_poly_on_hard_is_intractable ] );
      ( "io-fault",
        [ Alcotest.test_case "disarmed passthrough" `Quick
            test_io_fault_passthrough;
          Alcotest.test_case "every kind fires" `Quick test_io_fault_kinds;
          Alcotest.test_case "torn write crashes" `Quick
            test_io_fault_torn_crash;
          Alcotest.test_case "write_all absorbs faults" `Quick
            test_io_fault_write_all_absorbs;
          Alcotest.test_case "atomic file replace" `Quick
            test_io_fault_atomic_write;
          Alcotest.test_case "single-writer" `Quick
            test_io_fault_single_writer ] );
      ( "properties",
        [ prop_budget_monotone; prop_degraded_iff_fallbacks;
          prop_degraded_consistent ] ) ]
