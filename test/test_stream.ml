(* Differential and unit tests for the incremental streaming layer
   (DESIGN §16).

   The hard contract under test: after any tape of accepted deltas, a
   session summary is byte-identical to a from-scratch driver run on the
   materialized table — result table, distance, method, and the integer
   metrics state modulo the session's own [stream.*] counters — at every
   pool width the cold side runs under. Timing floats are wall-clock
   noise and are excluded, exactly as in test_par. *)

module R = Repair_core.Repair
module Ss = R.Stream.Session
module Delta = R.Stream.Delta
module Driver = R.Driver
module Pool = Repair_par.Pool
module Metrics = Repair_obs.Metrics
module W = Repair_workload
open Repair_relational
open Repair_fd

let widths = [ 1; 2; 4; 8 ]
let pools = lazy (List.map (fun w -> (w, Pool.create ~domains:w)) widths)
let pool_of w = List.assoc w (Lazy.force pools)

(* ---------- instance + tape generation ------------------------------ *)

type instance = { seed : int; n : int; noise : float; ticks : int }

let print_instance { seed; n; noise; ticks } =
  Printf.sprintf "{seed=%d; n=%d; noise=%g; ticks=%d}" seed n noise ticks

let gen_instance =
  QCheck2.Gen.(
    let* seed = int_range 0 10_000_000 in
    let* n = int_range 0 20 in
    let* noise = oneofl [ 0.1; 0.25; 0.5 ] in
    let* ticks = int_range 1 10 in
    return { seed; n; noise; ticks })

let build { seed; n; noise; _ } =
  let rng = W.Rng.make seed in
  let schema, d = W.Gen_fd.random rng ~n_attrs:3 ~n_fds:2 ~max_lhs:2 in
  let tbl =
    W.Gen_table.dirty rng schema d
      { W.Gen_table.default with n; noise; domain_size = 3; weighted = true }
  in
  (rng, schema, d, tbl)

(* A tape of deltas the session is guaranteed to accept: inserts use
   strictly increasing fresh ids, deletes only name live ids. *)
let random_tape rng schema tbl ticks =
  let next_id = ref (Table.fold (fun i _ _ acc -> max i acc) tbl 0) in
  let live = ref (Table.ids tbl) in
  List.init ticks (fun _ ->
      if !live <> [] && W.Rng.int rng 3 = 0 then begin
        let id = W.Rng.pick rng !live in
        live := List.filter (fun x -> x <> id) !live;
        Delta.Delete { id }
      end
      else begin
        incr next_id;
        live := !next_id :: !live;
        Delta.Insert
          {
            id = Some !next_id;
            weight = float_of_int (1 + W.Rng.int rng 3);
            values =
              List.init (Schema.arity schema) (fun _ ->
                  Value.int (1 + W.Rng.int rng 3));
          }
      end)

(* ---------- integer-only metrics state (test_par's idiom) ----------- *)

type span_ints = { sname : string; scount : int; schildren : span_ints list }

let rec span_ints (s : Metrics.span) =
  {
    sname = s.name;
    scount = s.count;
    schildren = List.map span_ints s.children;
  }

(* The session's own accounting is the one permitted divergence: the
   [stream.*] counters (ticks, dirty blocks, block-cache traffic) have
   no cold-side counterpart and are filtered before comparing. *)
let stream_counter name =
  String.length name >= 7 && String.sub name 0 7 = "stream."

let metrics_ints () =
  ( List.filter (fun (name, _) -> not (stream_counter name)) (Metrics.counters ()),
    List.map
      (fun (name, h) -> (name, Repair_obs.Histogram.count h))
      (Metrics.histograms ()),
    List.map span_ints (Metrics.spans ()) )

let with_fresh_metrics f =
  Metrics.reset ();
  Metrics.enable ();
  let x = f () in
  let ints = metrics_ints () in
  Metrics.disable ();
  Metrics.reset ();
  (x, ints)

let summary_matches_cold (s : Ss.report) = function
  | Error _ -> false
  | Ok (c : Driver.report) ->
    Table.equal s.Ss.result c.Driver.result
    && s.Ss.distance = c.Driver.distance
    && s.Ss.optimal = c.Driver.optimal
    && s.Ss.ratio = c.Driver.ratio
    && s.Ss.method_used = c.Driver.method_used
    && (not c.Driver.degraded)
    && c.Driver.fallbacks = []

(* ---------- differential: summary = cold run, all pool widths ------- *)

let stream_matches_cold width =
  Helpers.qcheck ~count:60 ~print:print_instance
    (Printf.sprintf "summary = cold driver run at %d domains" width)
    gen_instance
    (fun inst ->
      let rng, schema, d, tbl = build inst in
      let session = Ss.create d tbl in
      let tape = random_tape rng schema tbl inst.ticks in
      (* Metrics stay enabled across the whole session lifetime (the
         mli's caveat): block results captured at one summary replay at
         the next. Two summaries per tape — the first solves its blocks
         fresh, the second mixes cached replays with dirty re-solves. *)
      let half = List.length tape / 2 in
      List.iteri (fun k delta -> if k < half then Ss.tick session delta) tape;
      let s1, s1_ints = with_fresh_metrics (fun () -> Ss.summary session) in
      let m1 = Ss.materialized session in
      let c1, c1_ints =
        with_fresh_metrics (fun () ->
            Driver.s_repair_result ~pool:(pool_of width) d m1)
      in
      List.iteri (fun k delta -> if k >= half then Ss.tick session delta) tape;
      let s2, s2_ints = with_fresh_metrics (fun () -> Ss.summary session) in
      let m2 = Ss.materialized session in
      let c2, c2_ints =
        with_fresh_metrics (fun () ->
            Driver.s_repair_result ~pool:(pool_of width) d m2)
      in
      summary_matches_cold s1 c1
      && s1_ints = c1_ints
      && summary_matches_cold s2 c2
      && s2_ints = c2_ints)

(* ---------- block-cache staleness ----------------------------------- *)

let mk values = Tuple.make (List.map (fun v -> Value.int v) values)

let staleness_schema = Schema.make "S" [ "A"; "B" ]
let staleness_fds = Fd_set.parse "A -> B"

(* Two A-groups; id 3 is the heavyweight consensus winner of group A=1.
   Deleting it must change that block's cache key (member-id slice), so
   the next summary re-solves the block and picks a new winner — a stale
   cached entry would keep id 3 in the repair. *)
let staleness_table () =
  Table.of_list staleness_schema
    [ (1, 1.0, mk [ 1; 1 ]);
      (2, 1.0, mk [ 1; 2 ]);
      (3, 5.0, mk [ 1; 1 ]);
      (4, 1.0, mk [ 2; 1 ]);
      (5, 1.0, mk [ 2; 2 ]) ]

let check_against_cold session =
  let s = Ss.summary session in
  let cold = Driver.s_repair_result staleness_fds (Ss.materialized session) in
  Alcotest.(check bool) "summary = cold driver run" true
    (summary_matches_cold s cold);
  s

let test_block_cache_staleness () =
  let session = Ss.create staleness_fds (staleness_table ()) in
  let s0 = check_against_cold session in
  Alcotest.(check bool) "winner present before the delete" true
    (Table.mem s0.Ss.result 3);
  Ss.tick session (Delta.Delete { id = 3 });
  let s1 = check_against_cold session in
  Alcotest.(check bool) "deleted winner never served stale" false
    (Table.mem s1.Ss.result 3);
  let stats = Ss.stats session in
  Alcotest.(check bool) "untouched block came from the cache" true
    (stats.Ss.cache.hits >= 1);
  (* An insert undone by a delete restores the exact member-id slice, so
     the old cache entry is legitimately valid again: the third summary
     runs on cache hits alone. *)
  Ss.tick session
    (Delta.Insert { id = Some 6; weight = 1.0; values = [ Value.int 2; Value.int 3 ] });
  Ss.tick session (Delta.Delete { id = 6 });
  let hits_before = (Ss.stats session).Ss.cache.hits in
  let misses_before = (Ss.stats session).Ss.cache.misses in
  ignore (check_against_cold session);
  let stats = Ss.stats session in
  Alcotest.(check int) "no fresh solves after undo" misses_before
    stats.Ss.cache.misses;
  Alcotest.(check bool) "undone slice re-hits its old entry" true
    (stats.Ss.cache.hits > hits_before)

(* ---------- driver-ladder parity ------------------------------------ *)

(* Session duplicates the driver's Auto-ladder constants (it sits below
   lib/core). Pin them behaviorally: on either side of the session's
   exact-size limit, a hard instance must report the same method the
   cold driver picks, and the polynomial method string must match too. *)
let test_ladder_parity () =
  let schema = W.Datasets.r3_schema in
  let hard = W.Datasets.delta_a_to_b_to_c in
  let mk3 a b c = Tuple.make [ Value.int a; Value.int b; Value.int c ] in
  (* Distinct A and B values keep the instance consistent — the exact
     rung is the exponential baseline, so its conflict graph must stay
     tiny for the test to terminate; the ladder picks its rung on table
     size alone. *)
  let rows k = List.init k (fun i -> (i + 1, 1.0, mk3 i i i)) in
  let at_limit = Table.of_list schema (rows Ss.exact_size_limit) in
  let session = Ss.create hard at_limit in
  let s = Ss.summary session in
  Alcotest.(check string) "exact method at the size limit" Ss.exact_method
    s.Ss.method_used;
  Alcotest.(check bool) "cold run agrees at the limit" true
    (summary_matches_cold s (Driver.s_repair_result hard at_limit));
  Ss.tick session
    (Delta.Insert
       {
         id = Some (Ss.exact_size_limit + 1);
         weight = 1.0;
         values = [ Value.int 0; Value.int 1; Value.int 0 ];
       });
  let s = Ss.summary session in
  Alcotest.(check string) "approx method one row past the limit"
    Ss.approx_method s.Ss.method_used;
  Alcotest.(check bool) "cold run agrees past the limit" true
    (summary_matches_cold s
       (Driver.s_repair_result hard (Ss.materialized session)));
  let chain = Table.of_list schema (rows 8) in
  let poly = Ss.summary (Ss.create (Fd_set.parse "A -> B") chain) in
  Alcotest.(check string) "polynomial method string" Ss.poly_method
    poly.Ss.method_used;
  Alcotest.(check bool) "driver reports the same polynomial method" true
    (match Driver.s_repair_result (Fd_set.parse "A -> B") chain with
    | Ok c -> c.Driver.method_used = Ss.poly_method
    | Error _ -> false)

(* ---------- rejected ticks leave the session unchanged --------------- *)

let test_rejects_leave_state () =
  let session = Ss.create staleness_fds (staleness_table ()) in
  let before = Ss.summary session in
  let reject delta =
    match Ss.tick session delta with
    | () -> Alcotest.fail "expected a rejected tick"
    | exception Repair_runtime.Repair_error.Error (Parse _) -> ()
  in
  reject (Delta.Insert { id = Some 2; weight = 1.0; values = [ Value.int 1; Value.int 1 ] });
  reject (Delta.Insert { id = None; weight = -1.0; values = [ Value.int 1; Value.int 1 ] });
  reject (Delta.Insert { id = None; weight = 1.0; values = [ Value.int 1 ] });
  reject (Delta.Delete { id = 77 });
  let after = Ss.summary session in
  Alcotest.(check bool) "summary unchanged after rejects" true
    (Table.equal before.Ss.result after.Ss.result
    && before.Ss.distance = after.Ss.distance);
  Alcotest.(check int) "all four rejects counted" 4 (Ss.stats session).Ss.rejects;
  Alcotest.(check int) "no tick accepted" 0 (Ss.stats session).Ss.ticks

let () =
  Alcotest.run "stream"
    [ ( "differential",
        List.map (fun w -> stream_matches_cold w) widths );
      ( "block cache",
        [ Alcotest.test_case "staleness" `Quick test_block_cache_staleness ] );
      ( "driver parity",
        [ Alcotest.test_case "ladder constants" `Quick test_ladder_parity ] );
      ( "rejects",
        [ Alcotest.test_case "state unchanged" `Quick test_rejects_leave_state ]
      ) ]
