#!/bin/sh
# Tier-1 gate: build, full test suite (unit + property + cram), a trace
# round-trip check, then a benchmark smoke run gated against the
# committed BENCH_1.json baseline through the regression harness.
#
# The smoke run writes to a scratch file so the committed BENCH_1.json
# baseline is never clobbered by CI. To refresh the baseline after an
# intentional performance change, run the full suite and commit the
# result:
#
#   dune exec bench/main.exe -- --out BENCH_1.json
set -eu

dune build
dune runtest

# Fault-injection sweep: the kill-at-every-checkpoint crash/resume
# matrix of the batch runner (DESIGN §9), then a short differential-fuzz
# pass whose trials include random step budgets under the degrade
# policy. Both are deterministic.
dune exec test/test_batch.exe -- test crash-resume
dune exec bin/fuzz.exe -- --trials 60 --quiet

# Request-parser fuzz: malformed, truncated, mutated, and oversized
# lines against the serving engine — every line must yield a structured
# reply, the accounting identity must hold, and the engine must keep
# answering (DESIGN §12).
dune exec bin/fuzz.exe -- --mode protocol --trials 400 --quiet

# Torn-world sweep (DESIGN §14): randomized syscall fault plans against
# the batch runner (crash/short-write/EINTR/ENOSPC/torn-tail/bit-flip on
# the journal path — recovery must classify, never re-execute a
# committed job, and converge to the fault-free journal) and the serving
# engine (non-crash faults on result publication — every reply stays
# structured and the accounting identity holds).
dune exec bin/fuzz.exe -- --mode chaos --trials 60 --quiet

# Parallelism determinism (DESIGN §13): the pool differential suite,
# then the par-mode fuzz — driver runs on a 4-domain pool must be
# bit-identical to sequential runs, error classes included.
dune exec test/test_par.exe
dune exec bin/fuzz.exe -- --mode par --trials 500 --quiet

# Streaming identity (DESIGN §16): random delta tapes against a live
# session — after every tick the summary must be byte-identical to a
# from-scratch driver run on the materialized table.
dune exec bin/fuzz.exe -- --mode stream --trials 200 --quiet

# Trace round-trip: a traced repair must emit Chrome trace JSON that the
# profiler accepts — required keys present, timestamps monotone, every
# Begin matched by an End.
tdir=$(mktemp -d -t trace_ci.XXXXXX)
sdir=$(mktemp -d -t serve_ci.XXXXXX)
out=$(mktemp -t bench_smoke.XXXXXX.json)
trap 'rm -rf "$tdir" "$sdir"; rm -f "$out"' EXIT INT TERM
printf '#id,A,B,C\n1,1,1,1\n2,1,1,2\n3,1,2,1\n' > "$tdir/t.csv"
dune exec bin/repair_cli.exe -- s-repair -f "A -> B; B -> C" \
  "$tdir/t.csv" -o /dev/null --trace="$tdir/out.json"
dune exec bin/repair_cli.exe -- profile --check "$tdir/out.json"

# CLI determinism across --domains: the same repair at 1 and 4 domains
# must write byte-identical repaired tables and reports (DESIGN §13).
for sub in s-repair u-repair; do
  dune exec bin/repair_cli.exe -- "$sub" -f "A -> B; B -> C" \
    --domains 1 "$tdir/t.csv" -o "$tdir/d1.csv" > "$tdir/d1.out"
  dune exec bin/repair_cli.exe -- "$sub" -f "A -> B; B -> C" \
    --domains 4 "$tdir/t.csv" -o "$tdir/d4.csv" > "$tdir/d4.out"
  cmp "$tdir/d1.csv" "$tdir/d4.csv"
  cmp "$tdir/d1.out" "$tdir/d4.out"
done

# Journal format upgrade (DESIGN §14): a legacy plain-JSONL journal
# written before framing must resume cleanly — the committed job
# replayed, not re-executed, appends staying legacy — and damage in a
# legacy journal must still surface as the structured corruption error:
# exit code 11, a quarantine sidecar, and a clean second resume.
printf '{"jobs": [{"id": "a", "input": "%s", "fds": "A -> B; B -> C"},
 {"id": "b", "input": "%s", "fds": "A -> B; B -> C"}]}\n' \
  "$tdir/t.csv" "$tdir/t.csv" > "$tdir/m.json"
printf '%s\n' '{"event":"begin","jobs":2}' \
  '{"event":"start","job":"a","attempt":1}' \
  '{"event":"commit","job":"a","attempt":1,"status":"ok","method":"m","distance":1.0}' \
  > "$tdir/legacy.jsonl"
dune exec bin/repair_cli.exe -- batch "$tdir/m.json" \
  --journal "$tdir/legacy.jsonl" --resume -o "$tdir/upg.json"
grep -q '"replayed": 1' "$tdir/upg.json"
[ "$(grep -c '^@' "$tdir/legacy.jsonl")" -eq 0 ]   # appends stayed legacy
printf '%s\n' '{"event":"begin","jobs":2}' '{"event":"comm_DAMAGE"}' \
  > "$tdir/legacy.jsonl"
upg_code=0
dune exec bin/repair_cli.exe -- batch "$tdir/m.json" \
  --journal "$tdir/legacy.jsonl" --resume -o /dev/null \
  2> "$tdir/upg.err" || upg_code=$?
[ "$upg_code" -eq 11 ]
grep -q 'corruption' "$tdir/upg.err"
[ -f "$tdir/legacy.jsonl.corrupt" ]
dune exec bin/repair_cli.exe -- batch "$tdir/m.json" \
  --journal "$tdir/legacy.jsonl" --resume -o /dev/null

# Serving drill (DESIGN §12): daemon on a temp Unix socket; a pipelined
# burst with poison requests and malformed lines — every line must be
# answered (so tail latency is finite, not a hang); then SIGTERM while a
# second burst is in flight — the drain must finish with a documented
# exit code (0 clean, 10 deadline cancellations) and flush a snapshot
# whose accounting identity balances.
./_build/default/bin/repair_cli.exe serve --socket "$sdir/s.sock" \
  --metrics-out "$sdir/snap.json" 2> "$sdir/server.log" &
srv=$!
for _ in $(seq 100); do [ -S "$sdir/s.sock" ] && break; sleep 0.1; done
[ -S "$sdir/s.sock" ]
./_build/default/bin/repair_cli.exe load --socket "$sdir/s.sock" \
  -n 40 -c 4 --rows 12 --poison-every 7 --malformed-every 9 \
  -o "$sdir/load1.json"
grep -q '"unanswered": 0' "$sdir/load1.json"       # nothing hung
grep -q '"count": 40' "$sdir/load1.json"           # p99 over all 40 requests
./_build/default/bin/repair_cli.exe load --socket "$sdir/s.sock" \
  -n 60 -c 4 --rows 40 --wall-timeout 30 -o "$sdir/load2.json" &
ldr=$!
sleep 0.3
kill -TERM "$srv"
drain_code=0; wait "$srv" || drain_code=$?
[ "$drain_code" -eq 0 ] || [ "$drain_code" -eq 10 ]
wait "$ldr" || true   # mid-drain lines may legitimately go unanswered
grep -q '"mode": "draining"' "$sdir/snap.json"
# admitted = completed + quarantined + cancelled + queue_depth — the
# serve section leads the snapshot, so first matches are the right ones.
snap_field() { grep -m1 "\"$1\":" "$sdir/snap.json" | tr -dc '0-9'; }
admitted=$(snap_field admitted)
settled=$(( $(snap_field completed) + $(snap_field quarantined) \
  + $(snap_field cancelled) + $(snap_field queue_depth) ))
[ "$admitted" -eq "$settled" ]

# Telemetry drill (DESIGN §15): a 4-domain daemon with tracing, a slow
# log, and fast stats windows; a burst; a mid-burst scrape of the text
# exposition (validated by the grammar checker); a `top --once` view
# whose totals cross-check the final snapshot; and a Chrome trace with
# worker-lane spans carrying wire request ids.
./_build/default/bin/repair_cli.exe serve --socket "$sdir/t.sock" \
  --domains 4 --slow-ms 0.001 --slow-log "$sdir/slow.jsonl" \
  --stats-interval 0.2 --trace "$sdir/t.trace.json" \
  --metrics-out "$sdir/tsnap.json" 2> "$sdir/tserver.log" &
tsrv=$!
for _ in $(seq 100); do [ -S "$sdir/t.sock" ] && break; sleep 0.1; done
[ -S "$sdir/t.sock" ]
./_build/default/bin/repair_cli.exe load --socket "$sdir/t.sock" \
  -n 30 -c 3 --rows 12 -o "$sdir/tload.json" &
tldr=$!
./_build/default/bin/repair_cli.exe top --socket "$sdir/t.sock" --expo \
  | ./_build/default/test/expo_check.exe
wait "$tldr"
grep -q '"unanswered": 0' "$sdir/tload.json"
sleep 0.5   # let the last stats window close past the 0.2s interval
./_build/default/bin/repair_cli.exe top --socket "$sdir/t.sock" --once \
  > "$sdir/top.txt"
grep -q '^windows [1-9]' "$sdir/top.txt"             # non-empty series
grep -q '^total.serve.requests 30' "$sdir/top.txt"   # totals match the burst
grep -Eq '^rate\.serve\.requests [0-9]*\.?[0-9]*[1-9]' "$sdir/top.txt"
./_build/default/bin/repair_cli.exe top --socket "$sdir/t.sock" --expo \
  | ./_build/default/test/expo_check.exe
[ -s "$sdir/slow.jsonl" ]                            # 1µs threshold: all slow
grep -q '"req": *"c' "$sdir/slow.jsonl"
kill -TERM "$tsrv"
tdrain=0; wait "$tsrv" || tdrain=$?
[ "$tdrain" -eq 0 ]
# `top` totals were a live view of the same counters the snapshot
# flushes: a clean 30-request burst settles 30, so the top view's
# cumulative serve.requests equals the snapshot's completed count.
tsnap_field() { grep -m1 "\"$1\":" "$sdir/tsnap.json" | tr -dc '0-9'; }
[ "$(tsnap_field completed)" -eq \
  "$(grep -m1 '^total.serve.requests ' "$sdir/top.txt" | tr -dc '0-9')" ]
# Worker-domain spans ride per-task lanes (tid >= 2) stamped with the
# wire request id of the request whose solver half they ran.
grep -q '"req": *"c' "$sdir/t.trace.json"
grep -Eq '"tid": *[2-9]' "$sdir/t.trace.json"
grep -q '"traceEvents"' "$sdir/t.trace.json"

# Streaming drill (DESIGN §16): a 4-domain daemon; a 1000-delta JSONL
# tape replayed through `repair-cli stream` over the socket in 50-line
# chunks; the final repaired table and summary must be byte-identical
# to a cold s-repair run on the materialized table (dumped by a
# local-mode replay of the same tape); and the `top --once` stream row
# must reflect the tape (1000 ticks, a live block-cache hit rate).
awk 'BEGIN{print "#id,#weight,A,B";
  for(i=1;i<=500;i++) printf "%d,1,%d,%d\n", i, i%100+1, i%7+1}' \
  > "$sdir/sbase.csv"
awk 'BEGIN{for(k=0;k<1000;k++){
  if(k%2==0)
    printf "{\"op\":\"insert\",\"id\":%d,\"weight\":1.0,\"tuple\":[%d,%d]}\n", \
      501+k,(k*13)%100+1,(k*3)%7+1;
  else printf "{\"op\":\"delete\",\"id\":%d}\n",(97*(k-1)/2)%500+1 }}' \
  > "$sdir/tape.jsonl"
./_build/default/bin/repair_cli.exe serve --socket "$sdir/st.sock" \
  --domains 4 --metrics-out "$sdir/ssnap.json" 2> "$sdir/sserver.log" &
ssrv=$!
for _ in $(seq 100); do [ -S "$sdir/st.sock" ] && break; sleep 0.1; done
[ -S "$sdir/st.sock" ]
./_build/default/bin/repair_cli.exe stream -f "A -> B" "$sdir/sbase.csv" \
  --deltas "$sdir/tape.jsonl" --socket "$sdir/st.sock" --chunk 50 \
  -o "$sdir/swire.csv" > "$sdir/swire.out" 2>&1
./_build/default/bin/repair_cli.exe stream -f "A -> B" "$sdir/sbase.csv" \
  --deltas "$sdir/tape.jsonl" --dump-table "$sdir/smat.csv" \
  -o "$sdir/slocal.csv" > /dev/null 2>&1
./_build/default/bin/repair_cli.exe s-repair -f "A -> B" "$sdir/smat.csv" \
  -o "$sdir/scold.csv" 2> "$sdir/scold.err"
cmp "$sdir/swire.csv" "$sdir/scold.csv"    # wire repair = cold repair
cmp "$sdir/swire.csv" "$sdir/slocal.csv"   # wire repair = local replay
[ "$(sed -n 's/^stream: \(distance=.*\)/\1/p' "$sdir/swire.out")" = \
  "$(sed -n 's/^s-repair: \(distance=.*\)/\1/p' "$sdir/scold.err")" ]
./_build/default/bin/repair_cli.exe top --socket "$sdir/st.sock" --once \
  > "$sdir/stop.txt"
grep -q '^total.stream.ticks 1000' "$sdir/stop.txt"
grep -q '^stream.ticks_per_s ' "$sdir/stop.txt"
grep -Eq '^stream.affected_ratio 0\.[0-9]+' "$sdir/stop.txt"
grep -Eq '^stream.cache_hit_rate 0\.[0-9]+' "$sdir/stop.txt"
kill -TERM "$ssrv"
sdrain=0; wait "$ssrv" || sdrain=$?
[ "$sdrain" -eq 0 ]

# Median-of-3 runs keep the ms-scale smoke records (including the E20
# 1k sweep point) below the compare gate's noise threshold.
dune exec bench/main.exe -- --smoke --runs 3 --out "$out"

# Self-comparison exercises the parser and the matching logic; identical
# inputs must report zero regressions.
dune exec bench/compare.exe -- "$out" "$out"

# Regression gate against the committed baseline: the smoke subset is
# compared record-by-record; --subset lets the baseline carry the full
# suite without the smoke run's missing records counting as vanished.
# The allowance is calibrated for shared CI hosts, where even the frozen
# seed-replica records (code no PR touches) swing 1.5-2x between runs:
# this gate exists to catch accidental asymptotic blowups (those show up
# as 10x+), while precise tracking belongs to full-suite runs on a quiet
# machine with the default 25% threshold.
dune exec bench/compare.exe -- BENCH_1.json "$out" --subset \
  --threshold 150 --min-ms 2

echo "ci: OK"
