#!/bin/sh
# Tier-1 gate: build, full test suite (unit + property + cram), then a
# benchmark smoke run whose BENCH output must parse and self-compare
# cleanly through the regression harness.
#
# The smoke run writes to a scratch file so the committed BENCH_1.json
# baseline is never clobbered by CI.
set -eu

dune build
dune runtest

# Fault-injection sweep: the kill-at-every-checkpoint crash/resume
# matrix of the batch runner (DESIGN §9), then a short differential-fuzz
# pass whose trials include random step budgets under the degrade
# policy. Both are deterministic.
dune exec test/test_batch.exe -- test crash-resume
dune exec bin/fuzz.exe -- --trials 60 --quiet

out=$(mktemp -t bench_smoke.XXXXXX.json)
trap 'rm -f "$out"' EXIT INT TERM

dune exec bench/main.exe -- --smoke --out "$out"

# Self-comparison exercises the parser and the matching logic; identical
# inputs must report zero regressions.
dune exec bench/compare.exe -- "$out" "$out"

echo "ci: OK"
