#!/bin/sh
# Tier-1 gate: build, full test suite (unit + property + cram), a trace
# round-trip check, then a benchmark smoke run gated against the
# committed BENCH_1.json baseline through the regression harness.
#
# The smoke run writes to a scratch file so the committed BENCH_1.json
# baseline is never clobbered by CI. To refresh the baseline after an
# intentional performance change, run the full suite and commit the
# result:
#
#   dune exec bench/main.exe -- --out BENCH_1.json
set -eu

dune build
dune runtest

# Fault-injection sweep: the kill-at-every-checkpoint crash/resume
# matrix of the batch runner (DESIGN §9), then a short differential-fuzz
# pass whose trials include random step budgets under the degrade
# policy. Both are deterministic.
dune exec test/test_batch.exe -- test crash-resume
dune exec bin/fuzz.exe -- --trials 60 --quiet

# Trace round-trip: a traced repair must emit Chrome trace JSON that the
# profiler accepts — required keys present, timestamps monotone, every
# Begin matched by an End.
tdir=$(mktemp -d -t trace_ci.XXXXXX)
out=$(mktemp -t bench_smoke.XXXXXX.json)
trap 'rm -rf "$tdir"; rm -f "$out"' EXIT INT TERM
printf '#id,A,B,C\n1,1,1,1\n2,1,1,2\n3,1,2,1\n' > "$tdir/t.csv"
dune exec bin/repair_cli.exe -- s-repair -f "A -> B; B -> C" \
  "$tdir/t.csv" -o /dev/null --trace="$tdir/out.json"
dune exec bin/repair_cli.exe -- profile --check "$tdir/out.json"

# Median-of-3 runs keep the ms-scale smoke records (including the E20
# 1k sweep point) below the compare gate's noise threshold.
dune exec bench/main.exe -- --smoke --runs 3 --out "$out"

# Self-comparison exercises the parser and the matching logic; identical
# inputs must report zero regressions.
dune exec bench/compare.exe -- "$out" "$out"

# Regression gate against the committed baseline: the smoke subset is
# compared record-by-record; --subset lets the baseline carry the full
# suite without the smoke run's missing records counting as vanished.
dune exec bench/compare.exe -- BENCH_1.json "$out" --subset

echo "ci: OK"
