open Repair_relational
open Repair_fd
open Repair_runtime
module Metrics = Repair_obs.Metrics

exception Stuck of Fd_set.t

(* Subroutine 1: all FDs share lhs attribute a. Partition on a and solve
   independently under Δ − a; blocks never interact because any violation
   within the result would have to agree on a. *)
let rec common_lhs_rep budget delta a tbl =
  let smaller = Fd_set.minus delta (Attr_set.singleton a) in
  Table.group_by tbl (Attr_set.singleton a)
  |> List.fold_left
       (fun acc (_, sub) -> Table.union acc (solve budget smaller sub))
       (Table.empty (Table.schema tbl))

(* Subroutine 2: consensus FD ∅ → X. Every consistent subset lies within a
   single X-block, so solve each block under Δ − X and keep the heaviest
   optimal block repair. *)
and consensus_rep budget delta fd tbl =
  let x = Fd.rhs fd in
  let smaller = Fd_set.minus delta x in
  let candidates =
    Table.group_by tbl x
    |> List.map (fun (_, sub) -> solve budget smaller sub)
  in
  match candidates with
  | [] -> tbl (* empty table: already consistent *)
  | first :: rest ->
    List.fold_left
      (fun best s ->
        if Table.total_weight s > Table.total_weight best then s else best)
      first rest

(* Subroutine 3: lhs marriage (X1, X2). Within the consistent result, the
   X1-value of a tuple determines its X2-value and vice versa (their
   closures coincide), so the kept (a1, a2) combinations form a matching
   between the X1- and X2-projections; maximize its weight. *)
and marriage_rep budget delta (x1, x2) tbl =
  let x12 = Attr_set.union x1 x2 in
  let smaller = Fd_set.minus delta x12 in
  let schema = Table.schema tbl in
  let blocks =
    Table.group_by tbl x12
    |> List.map (fun (_, sub) ->
           (* Recover the X1/X2 projections of the block from any member. *)
           let witness = List.hd (Table.tuples sub) in
           let a1 = Tuple.project schema witness x1 in
           let a2 = Tuple.project schema witness x2 in
           (a1, a2, solve budget smaller sub))
  in
  let module Tmap = Map.Make (struct
    type t = Tuple.t

    let compare = Tuple.compare
  end) in
  let number side =
    List.fold_left
      (fun (next, m) key ->
        if Tmap.mem key m then (next, m) else (next + 1, Tmap.add key next m))
      (0, Tmap.empty) side
    |> snd
  in
  let v1 = number (List.map (fun (a1, _, _) -> a1) blocks) in
  let v2 = number (List.map (fun (_, a2, _) -> a2) blocks) in
  let n1 = Tmap.cardinal v1 and n2 = Tmap.cardinal v2 in
  let weights = Array.make_matrix n1 n2 0.0 in
  let repair_of = Hashtbl.create 16 in
  List.iter
    (fun (a1, a2, s) ->
      let i = Tmap.find a1 v1 and j = Tmap.find a2 v2 in
      weights.(i).(j) <- Table.total_weight s;
      Hashtbl.replace repair_of (i, j) s)
    blocks;
  let matching, _ = Repair_graph.Bipartite_matching.solve weights in
  List.fold_left
    (fun acc (i, j) ->
      match Hashtbl.find_opt repair_of (i, j) with
      | Some s -> Table.union acc s
      | None -> acc)
    (Table.empty schema) matching

(* Success must depend on Δ only (Theorem 3.4): when a recursion branch
   runs out of tuples, we still simulate the simplification chain so that a
   hard Δ fails regardless of the data. *)
and check_delta_only delta =
  let delta = Fd_set.remove_trivial delta in
  if Fd_set.is_empty delta then ()
  else
    match Fd_set.common_lhs delta with
    | Some a -> check_delta_only (Fd_set.minus delta (Attr_set.singleton a))
    | None -> (
      match Fd_set.consensus_fd delta with
      | Some fd -> check_delta_only (Fd_set.minus delta (Fd.rhs fd))
      | None -> (
        match Fd_set.lhs_marriage delta with
        | Some (x1, x2) ->
          check_delta_only (Fd_set.minus delta (Attr_set.union x1 x2))
        | None -> raise (Stuck delta)))

and solve budget delta tbl =
  Budget.tick ~phase:"opt-s-repair" budget;
  let delta = Fd_set.remove_trivial delta in
  if Fd_set.is_empty delta then tbl
  else if Table.is_empty tbl then begin
    check_delta_only delta;
    tbl
  end
  else
    match Fd_set.common_lhs delta with
    | Some a ->
      Metrics.with_span "common-lhs" (fun () ->
          common_lhs_rep budget delta a tbl)
    | None -> (
      match Fd_set.consensus_fd delta with
      | Some fd ->
        Metrics.with_span "consensus" (fun () ->
            consensus_rep budget delta fd tbl)
      | None -> (
        match Fd_set.lhs_marriage delta with
        | Some marriage ->
          Metrics.with_span "marriage" (fun () ->
              marriage_rep budget delta marriage tbl)
        | None -> raise (Stuck delta)))

let run ?(budget = Budget.unlimited ()) d tbl =
  match Metrics.with_span "opt-s-repair" (fun () -> solve budget d tbl) with
  | s -> Ok s
  | exception Stuck stuck -> Error stuck

let run_exn ?budget d tbl =
  match run ?budget d tbl with
  | Ok s -> s
  | Error stuck ->
    failwith
      (Fmt.str "OptSRepair failed: no simplification applies to %a" Fd_set.pp
         stuck)

let distance ?budget d tbl =
  Result.map (fun s -> Table.dist_sub s tbl) (run ?budget d tbl)
