open Repair_relational
open Repair_fd
open Repair_runtime
module Metrics = Repair_obs.Metrics

exception Stuck of Fd_set.t

(* The matching tail of subroutine 3, shared by the sequential and
   parallel drivers: given each (X1∪X2)-block's projections and its
   solved repair, keep the maximum-weight matching between X1- and
   X2-values. *)
let marriage_matching schema blocks =
  let module Tmap = Map.Make (struct
    type t = Tuple.t

    let compare = Tuple.compare
  end) in
  let number side =
    List.fold_left
      (fun (next, m) key ->
        if Tmap.mem key m then (next, m) else (next + 1, Tmap.add key next m))
      (0, Tmap.empty) side
    |> snd
  in
  let v1 = number (List.map (fun (a1, _, _) -> a1) blocks) in
  let v2 = number (List.map (fun (_, a2, _) -> a2) blocks) in
  let n1 = Tmap.cardinal v1 and n2 = Tmap.cardinal v2 in
  let weights = Array.make_matrix n1 n2 0.0 in
  let repair_of = Hashtbl.create 16 in
  List.iter
    (fun (a1, a2, s) ->
      let i = Tmap.find a1 v1 and j = Tmap.find a2 v2 in
      weights.(i).(j) <- Table.total_weight s;
      Hashtbl.replace repair_of (i, j) s)
    blocks;
  let matching, _ = Repair_graph.Bipartite_matching.solve weights in
  List.fold_left
    (fun acc (i, j) ->
      match Hashtbl.find_opt repair_of (i, j) with
      | Some s -> Table.union acc s
      | None -> acc)
    (Table.empty schema) matching

(* Subroutine 1: all FDs share lhs attribute a. Partition on a and solve
   independently under Δ − a; blocks never interact because any violation
   within the result would have to agree on a. *)
let rec common_lhs_rep budget delta a tbl =
  let smaller = Fd_set.minus delta (Attr_set.singleton a) in
  Table.group_by tbl (Attr_set.singleton a)
  |> List.fold_left
       (fun acc (_, sub) -> Table.union acc (solve budget smaller sub))
       (Table.empty (Table.schema tbl))

(* Subroutine 2: consensus FD ∅ → X. Every consistent subset lies within a
   single X-block, so solve each block under Δ − X and keep the heaviest
   optimal block repair. *)
and consensus_rep budget delta fd tbl =
  let x = Fd.rhs fd in
  let smaller = Fd_set.minus delta x in
  let candidates =
    Table.group_by tbl x
    |> List.map (fun (_, sub) -> solve budget smaller sub)
  in
  match candidates with
  | [] -> tbl (* empty table: already consistent *)
  | first :: rest ->
    List.fold_left
      (fun best s ->
        if Table.total_weight s > Table.total_weight best then s else best)
      first rest

(* Subroutine 3: lhs marriage (X1, X2). Within the consistent result, the
   X1-value of a tuple determines its X2-value and vice versa (their
   closures coincide), so the kept (a1, a2) combinations form a matching
   between the X1- and X2-projections; maximize its weight. *)
and marriage_rep budget delta (x1, x2) tbl =
  let x12 = Attr_set.union x1 x2 in
  let smaller = Fd_set.minus delta x12 in
  let schema = Table.schema tbl in
  let blocks =
    Table.group_by tbl x12
    |> List.map (fun (_, sub) ->
           (* Recover the X1/X2 projections of the block from any member. *)
           let witness = List.hd (Table.tuples sub) in
           let a1 = Tuple.project schema witness x1 in
           let a2 = Tuple.project schema witness x2 in
           (a1, a2, solve budget smaller sub))
  in
  marriage_matching schema blocks

(* Success must depend on Δ only (Theorem 3.4): when a recursion branch
   runs out of tuples, we still simulate the simplification chain so that a
   hard Δ fails regardless of the data. *)
and check_delta_only delta =
  let delta = Fd_set.remove_trivial delta in
  if Fd_set.is_empty delta then ()
  else
    match Fd_set.common_lhs delta with
    | Some a -> check_delta_only (Fd_set.minus delta (Attr_set.singleton a))
    | None -> (
      match Fd_set.consensus_fd delta with
      | Some fd -> check_delta_only (Fd_set.minus delta (Fd.rhs fd))
      | None -> (
        match Fd_set.lhs_marriage delta with
        | Some (x1, x2) ->
          check_delta_only (Fd_set.minus delta (Attr_set.union x1 x2))
        | None -> raise (Stuck delta)))

and solve budget delta tbl =
  Budget.tick ~phase:"opt-s-repair" budget;
  let delta = Fd_set.remove_trivial delta in
  if Fd_set.is_empty delta then tbl
  else if Table.is_empty tbl then begin
    check_delta_only delta;
    tbl
  end
  else
    match Fd_set.common_lhs delta with
    | Some a ->
      Metrics.with_span "common-lhs" (fun () ->
          common_lhs_rep budget delta a tbl)
    | None -> (
      match Fd_set.consensus_fd delta with
      | Some fd ->
        Metrics.with_span "consensus" (fun () ->
            consensus_rep budget delta fd tbl)
      | None -> (
        match Fd_set.lhs_marriage delta with
        | Some marriage ->
          Metrics.with_span "marriage" (fun () ->
              marriage_rep budget delta marriage tbl)
        | None -> raise (Stuck delta)))

(* ---------- parallel driver ---------- *)

(* The recursion fans out once, at the top level: the blocks of the
   first simplification are solved as independent runner tasks (each
   block's own recursion stays sequential inside its task — runners
   guard nested submission). Fan-out is restricted to unlimited budgets:
   a limited budget's exhaustion point is part of the observable
   behaviour, so limited runs take the sequential path unchanged. Each
   task solves its block under a fresh unlimited budget, and the spent
   steps are absorbed into the orchestrating budget at the barrier, in
   block order — tick totals (and the ticks.opt-s-repair counter, which
   the worker tasks feed through their captured registries) come out
   exactly equal to the sequential run's. *)
let solve_blocks (runner : Table.runner) budget smaller subs =
  match subs with
  | [] | [ _ ] -> List.map (solve budget smaller) subs
  | _ ->
    let tasks =
      List.map
        (fun sub () ->
          let b = Budget.unlimited () in
          let s = solve b smaller sub in
          (s, Budget.steps b))
        subs
    in
    let results = runner.Table.run (Array.of_list tasks) in
    Array.iter (fun (_, steps) -> Budget.absorb budget ~steps) results;
    Array.to_list (Array.map fst results)

let common_lhs_par runner budget delta a tbl =
  let smaller = Fd_set.minus delta (Attr_set.singleton a) in
  let groups = Table.group_by_par runner tbl (Attr_set.singleton a) in
  solve_blocks runner budget smaller (List.map snd groups)
  |> List.fold_left Table.union (Table.empty (Table.schema tbl))

let consensus_par runner budget delta fd tbl =
  let x = Fd.rhs fd in
  let smaller = Fd_set.minus delta x in
  let groups = Table.group_by_par runner tbl x in
  let candidates = solve_blocks runner budget smaller (List.map snd groups) in
  match candidates with
  | [] -> tbl
  | first :: rest ->
    List.fold_left
      (fun best s ->
        if Table.total_weight s > Table.total_weight best then s else best)
      first rest

let marriage_par runner budget delta (x1, x2) tbl =
  let x12 = Attr_set.union x1 x2 in
  let smaller = Fd_set.minus delta x12 in
  let schema = Table.schema tbl in
  let groups = Table.group_by_par runner tbl x12 in
  let projections =
    List.map
      (fun (_, sub) ->
        let witness = List.hd (Table.tuples sub) in
        (Tuple.project schema witness x1, Tuple.project schema witness x2))
      groups
  in
  let solved = solve_blocks runner budget smaller (List.map snd groups) in
  let blocks = List.map2 (fun (a1, a2) s -> (a1, a2, s)) projections solved in
  marriage_matching schema blocks

let solve_par runner budget delta tbl =
  if Budget.limited budget then solve budget delta tbl
  else begin
    Budget.tick ~phase:"opt-s-repair" budget;
    let delta = Fd_set.remove_trivial delta in
    if Fd_set.is_empty delta then tbl
    else if Table.is_empty tbl then begin
      check_delta_only delta;
      tbl
    end
    else
      match Fd_set.common_lhs delta with
      | Some a ->
        Metrics.with_span "common-lhs" (fun () ->
            common_lhs_par runner budget delta a tbl)
      | None -> (
        match Fd_set.consensus_fd delta with
        | Some fd ->
          Metrics.with_span "consensus" (fun () ->
              consensus_par runner budget delta fd tbl)
        | None -> (
          match Fd_set.lhs_marriage delta with
          | Some marriage ->
            Metrics.with_span "marriage" (fun () ->
                marriage_par runner budget delta marriage tbl)
          | None -> raise (Stuck delta)))
  end

(* Streaming entry points (DESIGN §16): the per-block solve and the
   marriage tail, exposed so an incremental maintainer can re-run exactly
   the computation a batch [run] performs on one block and combine cached
   block repairs the way the batch top level would. *)
let solve_block ?(budget = Budget.unlimited ()) d tbl = solve budget d tbl
let marriage_combine = marriage_matching

let run ?(budget = Budget.unlimited ()) d tbl =
  match Metrics.with_span "opt-s-repair" (fun () -> solve budget d tbl) with
  | s -> Ok s
  | exception Stuck stuck -> Error stuck

let run_par ?(budget = Budget.unlimited ()) runner d tbl =
  match
    Metrics.with_span "opt-s-repair" (fun () -> solve_par runner budget d tbl)
  with
  | s -> Ok s
  | exception Stuck stuck -> Error stuck

let run_exn ?budget d tbl =
  match run ?budget d tbl with
  | Ok s -> s
  | Error stuck ->
    failwith
      (Fmt.str "OptSRepair failed: no simplification applies to %a" Fd_set.pp
         stuck)

let distance ?budget d tbl =
  Result.map (fun s -> Table.dist_sub s tbl) (run ?budget d tbl)
