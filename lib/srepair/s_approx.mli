(** The polynomial-time 2-approximation of optimal S-repairs
    (Proposition 3.3): Bar-Yehuda–Even weighted vertex cover on the
    conflict graph. The reduction is strict, so the cover's factor-2
    guarantee carries over to the repair distance. *)

open Repair_relational
open Repair_fd

(** [approx2 d tbl] is a consistent subset [S] with
    [dist_sub(S, T) ≤ 2 · dist_sub(S*, T)]. *)
val approx2 : Fd_set.t -> Table.t -> Table.t

(** [approx2_par runner d tbl] is {!approx2} with the conflict graph
    built by {!Conflict_graph.build_par} — bit-identical result (the
    vertex-cover pass sees the same graph with the same edge insertion
    order). *)
val approx2_par : Table.runner -> Fd_set.t -> Table.t -> Table.t

(** [distance d tbl] is the achieved (not optimal) distance. *)
val distance : Fd_set.t -> Table.t -> float
