open Repair_relational
open Repair_fd
open Repair_runtime
module Vc = Repair_graph.Vertex_cover

let optimal ?budget d tbl =
  Repair_obs.Metrics.with_span "s-exact" @@ fun () ->
  let cg = Conflict_graph.build d tbl in
  let cover = Vc.exact ?budget (Conflict_graph.graph cg) in
  Conflict_graph.delete_cover cg tbl cover

let distance ?budget d tbl = Table.dist_sub (optimal ?budget d tbl) tbl

let brute_force ?(budget = Budget.unlimited ()) d tbl =
  Repair_obs.Metrics.with_span "s-exact.brute-force" @@ fun () ->
  let ids = Array.of_list (Table.ids tbl) in
  let n = Array.length ids in
  if n > 22 then invalid_arg "S_exact.brute_force: table too large";
  let best = ref (Table.empty (Table.schema tbl)) in
  let best_weight = ref 0.0 in
  for mask = 0 to (1 lsl n) - 1 do
    Budget.tick ~phase:"s-exact-brute" budget;
    let keep = ref [] in
    for b = 0 to n - 1 do
      if mask land (1 lsl b) <> 0 then keep := ids.(b) :: !keep
    done;
    let s = Table.restrict tbl !keep in
    if Table.total_weight s > !best_weight && Fd_set.satisfied_by d s then begin
      best := s;
      best_weight := Table.total_weight s
    end
  done;
  !best
