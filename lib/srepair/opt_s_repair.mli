(** Algorithm 1 ([OptSRepair]) with its three subroutines.

    The algorithm repeatedly simplifies (Δ, T):

    - {e common lhs} ([CommonLHSRep], Subroutine 1): if some attribute [A]
      occurs in every lhs, partition by [A], solve each block under
      [Δ − A], and return the union;
    - {e consensus} ([ConsensusRep], Subroutine 2): if Δ has a consensus FD
      [∅ → X], partition by [X], solve each block under [Δ − X], and keep
      the heaviest block repair;
    - {e lhs marriage} ([MarriageRep], Subroutine 3): if Δ has an lhs
      marriage [(X1, X2)], solve each [(a1, a2)]-block under [Δ − X1X2],
      and combine blocks with a maximum-weight bipartite matching between
      the [X1]- and [X2]-projections.

    If none applies and Δ is still nontrivial, the algorithm fails; by the
    dichotomy (Theorem 3.4) the problem is then APX-complete. On success
    the result is an optimal S-repair (Theorem 3.2), and the run takes
    polynomial time even under combined complexity. *)

open Repair_relational
open Repair_fd

(** [run ?budget d tbl] executes OptSRepair. [Ok s] is an optimal
    S-repair; [Error stuck] reports the simplified-but-nontrivial FD set
    on which the algorithm got stuck. Every recursive simplification step
    is a [budget] checkpoint (phase ["opt-s-repair"]); exhaustion raises
    {!Repair_runtime.Repair_error.Budget_exhausted}. *)
val run :
  ?budget:Repair_runtime.Budget.t ->
  Fd_set.t ->
  Table.t ->
  (Table.t, Fd_set.t) result

(** [run_par ?budget runner d tbl] is {!run} with the top-level
    simplification's blocks solved as independent [runner] tasks (each
    block's recursion stays sequential inside its task): the grouping
    pass goes through {!Table.group_by_par} and the per-block solves
    through [runner.run]. Results are bit-identical to {!run} —
    distances, block unions, metrics counters and tick totals — because
    blocks merge in group order, each task solves under a fresh
    unlimited budget whose steps are absorbed at the barrier, and worker
    metrics merge exactly. A {e limited} [budget] disables fan-out
    entirely (the sequential path runs unchanged), so exhaustion points
    are preserved bit-for-bit. *)
val run_par :
  ?budget:Repair_runtime.Budget.t ->
  Table.runner ->
  Fd_set.t ->
  Table.t ->
  (Table.t, Fd_set.t) result

(** [run_exn ?budget d tbl] is [run], raising [Failure] on the hard
    side. *)
val run_exn : ?budget:Repair_runtime.Budget.t -> Fd_set.t -> Table.t -> Table.t

(** [distance ?budget d tbl] is the optimal S-repair distance
    [dist_sub(S*, T)], when computable by OptSRepair. *)
val distance :
  ?budget:Repair_runtime.Budget.t ->
  Fd_set.t ->
  Table.t ->
  (float, Fd_set.t) result

(** Raised by the raw entry points below when no simplification applies
    to the (simplified, nontrivial) FD set — the hard side of the
    dichotomy. [run]/[run_par] turn it into [Error]. *)
exception Stuck of Fd_set.t

(** [solve_block ?budget d tbl] is the raw recursive solve on one block:
    exactly the computation a batch [run] performs on a sub-table under a
    residual FD set, including its spans and budget ticks, but without
    the top-level ["opt-s-repair"] span. Streaming maintenance (DESIGN
    §16) uses it to (re)solve a single dirty block.
    @raise Stuck on the hard side. *)
val solve_block :
  ?budget:Repair_runtime.Budget.t -> Fd_set.t -> Table.t -> Table.t

(** [check_delta_only d] simulates the simplification chain without data
    (Theorem 3.4: success depends on Δ only).
    @raise Stuck when the chain gets stuck. *)
val check_delta_only : Fd_set.t -> unit

(** [marriage_combine schema blocks] is the matching tail of Subroutine 3:
    given each (X1∪X2)-block's two projections and its solved repair,
    keep the maximum-weight matching between X1- and X2-values. Exposed
    so cached block repairs can be recombined exactly as the batch path
    combines fresh ones. *)
val marriage_combine :
  Schema.t -> (Tuple.t * Tuple.t * Table.t) list -> Table.t
