(** The conflict graph of a table under an FD set (Proposition 3.3).

    Vertices are tuple identifiers (weighted by tuple weight); there is an
    edge between [i] and [j] iff [{T[i], T[j]}] violates some FD of Δ.
    Consistent subsets of [T] are exactly the complements of vertex covers,
    so a minimum-weight vertex cover yields an optimal S-repair. *)

open Repair_relational
open Repair_fd

type t

(** [build d tbl] constructs the conflict graph. Edges are discovered per
    FD by grouping on the lhs projection and crossing the rhs-distinct
    subgroups, so construction is output-sensitive rather than always
    quadratic. *)
val build : Fd_set.t -> Table.t -> t

(** [build_par runner d tbl] is {!build} with the grouping pass fanned
    out over row chunks and the edge-discovery pass sharded over
    contiguous runs of lhs-groups, both through [runner] (see
    {!Table.runner}). Shards emit edge lists that are replayed in shard
    order, reproducing the sequential [add_edge] sequence exactly: the
    result is bit-identical to {!build} — same graph, same adjacency
    order, same counters — for every runner width. *)
val build_par : Table.runner -> Fd_set.t -> Table.t -> t

(** [build_naive d tbl] constructs the same graph by testing all O(|T|²)
    tuple pairs against every FD — the ablation baseline showing why
    {!build} groups on lhs projections first. *)
val build_naive : Fd_set.t -> Table.t -> t

(** The underlying weighted graph (vertices are dense indices). *)
val graph : t -> Repair_graph.Graph.t

(** [id_of_vertex cg v] maps a dense vertex index back to the tuple id. *)
val id_of_vertex : t -> int -> Table.id

(** [vertex_of_id cg i] maps a tuple id to its dense index. *)
val vertex_of_id : t -> Table.id -> int

(** [n_conflicts cg] is the number of conflicting pairs. *)
val n_conflicts : t -> int

(** [delete_cover cg tbl cover] removes the tuples of a vertex cover from
    the table, yielding a consistent subset. *)
val delete_cover : t -> Table.t -> int list -> Table.t
