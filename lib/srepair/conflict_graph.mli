(** The conflict graph of a table under an FD set (Proposition 3.3).

    Vertices are tuple identifiers (weighted by tuple weight); there is an
    edge between [i] and [j] iff [{T[i], T[j]}] violates some FD of Δ.
    Consistent subsets of [T] are exactly the complements of vertex covers,
    so a minimum-weight vertex cover yields an optimal S-repair. *)

open Repair_relational
open Repair_fd

type t

(** [build d tbl] constructs the conflict graph. Edges are discovered per
    FD by grouping on the lhs projection and crossing the rhs-distinct
    subgroups, so construction is output-sensitive rather than always
    quadratic. *)
val build : Fd_set.t -> Table.t -> t

(** [build_par runner d tbl] is {!build} with the grouping pass fanned
    out over row chunks and the edge-discovery pass sharded over
    contiguous runs of lhs-groups, both through [runner] (see
    {!Table.runner}). Shards emit edge lists that are replayed in shard
    order, reproducing the sequential [add_edge] sequence exactly: the
    result is bit-identical to {!build} — same graph, same adjacency
    order, same counters — for every runner width. *)
val build_par : Table.runner -> Fd_set.t -> Table.t -> t

(** [build_naive d tbl] constructs the same graph by testing all O(|T|²)
    tuple pairs against every FD — the ablation baseline showing why
    {!build} groups on lhs projections first. *)
val build_naive : Fd_set.t -> Table.t -> t

(** The underlying weighted graph (vertices are dense indices). *)
val graph : t -> Repair_graph.Graph.t

(** [id_of_vertex cg v] maps a dense vertex index back to the tuple id. *)
val id_of_vertex : t -> int -> Table.id

(** [vertex_of_id cg i] maps a tuple id to its dense index. *)
val vertex_of_id : t -> Table.id -> int

(** [n_conflicts cg] is the number of conflicting pairs. *)
val n_conflicts : t -> int

(** [delete_cover cg tbl cover] removes the tuples of a vertex cover from
    the table, yielding a consistent subset. *)
val delete_cover : t -> Table.t -> int list -> Table.t

type cg := t

(** Streaming maintenance (DESIGN §16): the conflict graph under tuple
    inserts and deletes at O(affected-group) cost per delta, with
    {!Repair_graph.Vertex_cover.Incremental} as the edge store.

    On insert, the new tuple is compared only against its own lhs-group
    per FD (a hash-index join on [t[X]]), emitting exactly the conflict
    edges {!build}'s subgroup-and-cross pass would discover; on delete,
    the vertex and its incident edges drop in O(deg). Ids must arrive in
    strictly increasing order and are never reused, which keeps slot
    order equal to id order — so {!Incremental.materialize} yields a
    conflict graph structurally identical to a fresh {!build} on the
    surviving tuples, emitted under the same ["conflict-graph.build"]
    span with the same counters. *)
module Incremental : sig
  type t

  (** [create d schema] — an empty maintainer for the nontrivial FDs of
      [d]. *)
  val create : Fd_set.t -> Schema.t -> t

  (** [of_table d tbl] seeds a maintainer by inserting every visible row
      in position (= id) order. *)
  val of_table : Fd_set.t -> Table.t -> t

  (** [insert t ~id ~weight tuple] — O(affected lhs-groups).
      @raise Invalid_argument unless [id] exceeds every id seen. *)
  val insert : t -> id:Table.id -> weight:float -> Tuple.t -> unit

  (** [delete t id] — O(deg) plus the per-FD group-index updates.
      @raise Invalid_argument if [id] is not live. *)
  val delete : t -> Table.id -> unit

  (** Live tuple count. *)
  val size : t -> int

  (** Live conflicting-pair count. *)
  val n_conflicts : t -> int

  val mem : t -> Table.id -> bool

  (** The underlying incremental vertex-cover store. *)
  val store : t -> Repair_graph.Vertex_cover.Incremental.t

  (** Densify the survivors into an ordinary conflict graph — same
      structure, instrumentation, and counters as a fresh {!build} on the
      materialized table. *)
  val materialize : t -> cg
end
