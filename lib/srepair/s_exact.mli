(** Exact optimal S-repairs for {e any} FD set, via minimum-weight vertex
    cover of the conflict graph. Exponential worst case — this is the
    optimality baseline used to validate {!Opt_s_repair} and to measure the
    quality of {!S_approx} on small instances of APX-hard FD sets.

    All entry points poll an optional {!Repair_runtime.Budget} inside their
    exponential loops and raise
    {!Repair_runtime.Repair_error.Budget_exhausted} when it runs out. *)

open Repair_relational
open Repair_fd

(** [optimal ?budget d tbl] is an optimal S-repair of [tbl] under [d]. *)
val optimal : ?budget:Repair_runtime.Budget.t -> Fd_set.t -> Table.t -> Table.t

(** [distance ?budget d tbl] is [dist_sub(S*, T)]. *)
val distance : ?budget:Repair_runtime.Budget.t -> Fd_set.t -> Table.t -> float

(** [brute_force ?budget d tbl] enumerates all 2^|T| subsets — the
    ground-truth of ground truths, for tables of at most ~20 tuples. *)
val brute_force :
  ?budget:Repair_runtime.Budget.t -> Fd_set.t -> Table.t -> Table.t
