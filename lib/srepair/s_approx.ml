open Repair_relational
module Vc = Repair_graph.Vertex_cover

let approx2 d tbl =
  Repair_obs.Metrics.with_span "s-approx" @@ fun () ->
  let cg = Conflict_graph.build d tbl in
  let cover = Vc.approx2 (Conflict_graph.graph cg) in
  Conflict_graph.delete_cover cg tbl cover

let approx2_par runner d tbl =
  Repair_obs.Metrics.with_span "s-approx" @@ fun () ->
  let cg = Conflict_graph.build_par runner d tbl in
  let cover = Vc.approx2 (Conflict_graph.graph cg) in
  Conflict_graph.delete_cover cg tbl cover

let distance d tbl = Table.dist_sub (approx2 d tbl) tbl
