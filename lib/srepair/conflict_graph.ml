open Repair_relational
open Repair_fd
module G = Repair_graph.Graph

type t = {
  graph : G.t;
  ids : Table.id array; (* dense vertex -> tuple id *)
  index : (Table.id, int) Hashtbl.t;
}

module Metrics = Repair_obs.Metrics

let record_built cg =
  Metrics.incr ~by:(Array.length cg.ids) "conflict-graph.vertices";
  Metrics.incr ~by:(G.n_edges cg.graph) "conflict-graph.edges";
  Repair_obs.Trace.instant "conflict-graph.built";
  cg

let build d tbl =
  Metrics.with_span "conflict-graph.build" @@ fun () ->
  let ids = Table.View.ids_array tbl in
  let n = Array.length ids in
  let index = Hashtbl.create n in
  Array.iteri (fun v i -> Hashtbl.add index i v) ids;
  let weights = Array.init n (fun v -> Table.View.weight tbl v) in
  let graph = G.create_weighted weights in
  (* For each FD X → Y: group tuples by their X-projection; within a group,
     split by the Y-projection; any two tuples in different Y-subgroups of
     the same X-group conflict. Grouping works on visible row positions,
     which ARE the dense vertex ids, so the cross-product loop adds edges
     straight from the position arrays — no id→vertex lookups. *)
  let all = Array.init n (fun v -> v) in
  let add_fd fd =
    let groups = Table.View.group_within tbl all (Fd.lhs fd) in
    List.iter
      (fun group ->
        let subgroups = Table.View.group_within tbl group (Fd.rhs fd) in
        let rec cross = function
          | [] -> ()
          | g1 :: rest ->
            List.iter
              (fun g2 ->
                Array.iter
                  (fun u -> Array.iter (fun v -> G.add_edge graph u v) g2)
                  g1)
              rest;
            cross rest
        in
        cross subgroups)
      groups
  in
  List.iter add_fd (Fd_set.to_list (Fd_set.remove_trivial d));
  record_built { graph; ids; index }

(* Parallel [build]: grouping fans out over row chunks
   ([group_within_par] is exactly equivalent to [group_within]), and the
   per-group subgroup-and-cross work is sharded over contiguous runs of
   groups. Shard tasks only read the store and emit their edges as
   lists in generation order; concatenating the shards in order
   reproduces the sequential [add_edge] call sequence exactly, so the
   resulting graph (adjacency order included) is bit-identical for any
   shard count. *)
let build_par (runner : Table.runner) d tbl =
  Metrics.with_span "conflict-graph.build" @@ fun () ->
  let ids = Table.View.ids_array tbl in
  let n = Array.length ids in
  let index = Hashtbl.create n in
  Array.iteri (fun v i -> Hashtbl.add index i v) ids;
  let weights = Array.init n (fun v -> Table.View.weight tbl v) in
  let graph = G.create_weighted weights in
  let all = Array.init n (fun v -> v) in
  let add_fd fd =
    let groups =
      Array.of_list (Table.View.group_within_par runner tbl all (Fd.lhs fd))
    in
    let n_groups = Array.length groups in
    let shards = max 1 (min runner.Table.width n_groups) in
    let base = n_groups / shards and rem = n_groups mod shards in
    let shard_edges s () =
      let len = base + if s < rem then 1 else 0 in
      let lo = (s * base) + min s rem in
      let acc = ref [] in
      for g = lo to lo + len - 1 do
        let subgroups = Table.View.group_within tbl groups.(g) (Fd.rhs fd) in
        let rec cross = function
          | [] -> ()
          | g1 :: rest ->
            List.iter
              (fun g2 ->
                Array.iter
                  (fun u -> Array.iter (fun v -> acc := (u, v) :: !acc) g2)
                  g1)
              rest;
            cross rest
        in
        cross subgroups
      done;
      List.rev !acc
    in
    runner.Table.run (Array.init shards shard_edges)
    |> Array.iter (List.iter (fun (u, v) -> G.add_edge graph u v))
  in
  List.iter add_fd (Fd_set.to_list (Fd_set.remove_trivial d));
  record_built { graph; ids; index }

let build_naive d tbl =
  Metrics.with_span "conflict-graph.build-naive" @@ fun () ->
  let d = Fd_set.remove_trivial d in
  let schema = Table.schema tbl in
  let ids = Array.of_list (Table.ids tbl) in
  let n = Array.length ids in
  let index = Hashtbl.create n in
  Array.iteri (fun v i -> Hashtbl.add index i v) ids;
  let weights = Array.map (fun i -> Table.weight tbl i) ids in
  let graph = G.create_weighted weights in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      if
        not
          (Fd_set.pair_consistent d schema
             (Table.tuple tbl ids.(a))
             (Table.tuple tbl ids.(b)))
      then G.add_edge graph a b
    done
  done;
  record_built { graph; ids; index }

(* Streaming maintenance (DESIGN §16): the conflict graph under tuple
   inserts and deletes, at O(affected-group) cost per delta. The edge
   store is [Vertex_cover.Incremental] — slots allocate in insertion
   order, which [insert]'s monotone-id contract keeps equal to id order,
   so materializing the survivors yields the id-ordered dense graph
   [build] would construct from scratch. Edge discovery on insert only
   looks at the new tuple's own lhs-groups: for each FD X -> Y it joins
   the per-FD hash index on t[X] and conflicts with exactly the members
   it disagrees with on Y — the same pairs [build]'s
   subgroup-and-cross pass would emit. *)
module Incremental = struct
  module Vci = Repair_graph.Vertex_cover.Incremental
  module Iset = Set.Make (Int)

  module Ttbl = Hashtbl.Make (struct
    type t = Tuple.t

    let equal = Tuple.equal
    let hash = Tuple.hash
  end)

  type t = {
    schema : Schema.t;
    fds : (Attr_set.t * Attr_set.t) list; (* nontrivial (lhs, rhs) *)
    vc : Vci.t;
    groups : Iset.t ref Ttbl.t array; (* per FD: lhs projection -> slots *)
    mutable ids : Table.id array; (* slot -> tuple id *)
    mutable tuples : Tuple.t array; (* slot -> tuple *)
    slot_of : (Table.id, int) Hashtbl.t;
    mutable last_id : int;
  }

  let create d schema =
    let fds =
      Fd_set.to_list (Fd_set.remove_trivial d)
      |> List.map (fun fd -> (Fd.lhs fd, Fd.rhs fd))
    in
    {
      schema;
      fds;
      vc = Vci.create ();
      groups = Array.init (List.length fds) (fun _ -> Ttbl.create 64);
      ids = [||];
      tuples = [||];
      slot_of = Hashtbl.create 64;
      last_id = min_int;
    }

  let insert t ~id ~weight tuple =
    if id <= t.last_id then
      invalid_arg
        (Printf.sprintf
           "Conflict_graph.Incremental.insert: id %d not above the last id %d"
           id t.last_id);
    let slot = Vci.add_vertex t.vc ~weight in
    let cap = Array.length t.ids in
    if slot = cap then begin
      let cap' = max 8 (2 * cap) in
      let ids = Array.make cap' 0 in
      let tuples = Array.make cap' tuple in
      Array.blit t.ids 0 ids 0 cap;
      Array.blit t.tuples 0 tuples 0 cap;
      t.ids <- ids;
      t.tuples <- tuples
    end;
    t.ids.(slot) <- id;
    t.tuples.(slot) <- tuple;
    Hashtbl.replace t.slot_of id slot;
    t.last_id <- id;
    List.iteri
      (fun k (lhs, rhs) ->
        let key = Tuple.project t.schema tuple lhs in
        let cell =
          match Ttbl.find_opt t.groups.(k) key with
          | Some c -> c
          | None ->
            let c = ref Iset.empty in
            Ttbl.add t.groups.(k) key c;
            c
        in
        Iset.iter
          (fun m ->
            if not (Tuple.agree_on t.schema tuple t.tuples.(m) rhs) then
              Vci.add_edge t.vc slot m)
          !cell;
        cell := Iset.add slot !cell)
      t.fds

  let delete t id =
    match Hashtbl.find_opt t.slot_of id with
    | None ->
      invalid_arg
        (Printf.sprintf "Conflict_graph.Incremental.delete: unknown id %d" id)
    | Some slot ->
      Hashtbl.remove t.slot_of id;
      Vci.remove_vertex t.vc slot;
      List.iteri
        (fun k (lhs, _) ->
          let key = Tuple.project t.schema t.tuples.(slot) lhs in
          match Ttbl.find_opt t.groups.(k) key with
          | None -> ()
          | Some cell ->
            cell := Iset.remove slot !cell;
            if Iset.is_empty !cell then Ttbl.remove t.groups.(k) key)
        t.fds

  let of_table d tbl =
    let t = create d (Table.schema tbl) in
    let n = Table.View.length tbl in
    for p = 0 to n - 1 do
      insert t ~id:(Table.View.id tbl p) ~weight:(Table.View.weight tbl p)
        (Table.View.tuple tbl p)
    done;
    t

  let size t = Vci.n_alive t.vc
  let n_conflicts t = Vci.n_edges t.vc
  let store t = t.vc
  let mem t id = Hashtbl.mem t.slot_of id

  (* Densify the survivors into an ordinary conflict graph, with
     [build]'s instrumentation. Alive slots ascending = id ascending, so
     vertices, weights, and (set-based) adjacency coincide with a fresh
     [build] on the materialized table. *)
  let materialize t =
    Metrics.with_span "conflict-graph.build" @@ fun () ->
    let graph, slots = Vci.to_graph t.vc in
    let ids = Array.map (fun s -> t.ids.(s)) slots in
    let index = Hashtbl.create (Array.length ids) in
    Array.iteri (fun v i -> Hashtbl.add index i v) ids;
    record_built { graph; ids; index }
end

let graph cg = cg.graph
let id_of_vertex cg v = cg.ids.(v)
let vertex_of_id cg i = Hashtbl.find cg.index i
let n_conflicts cg = G.n_edges cg.graph

let delete_cover cg tbl cover =
  Table.remove tbl (List.map (id_of_vertex cg) cover)
