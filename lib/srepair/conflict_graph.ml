open Repair_relational
open Repair_fd
module G = Repair_graph.Graph

type t = {
  graph : G.t;
  ids : Table.id array; (* dense vertex -> tuple id *)
  index : (Table.id, int) Hashtbl.t;
}

module Metrics = Repair_obs.Metrics

let record_built cg =
  Metrics.incr ~by:(Array.length cg.ids) "conflict-graph.vertices";
  Metrics.incr ~by:(G.n_edges cg.graph) "conflict-graph.edges";
  Repair_obs.Trace.instant "conflict-graph.built";
  cg

let build d tbl =
  Metrics.with_span "conflict-graph.build" @@ fun () ->
  let ids = Table.View.ids_array tbl in
  let n = Array.length ids in
  let index = Hashtbl.create n in
  Array.iteri (fun v i -> Hashtbl.add index i v) ids;
  let weights = Array.init n (fun v -> Table.View.weight tbl v) in
  let graph = G.create_weighted weights in
  (* For each FD X → Y: group tuples by their X-projection; within a group,
     split by the Y-projection; any two tuples in different Y-subgroups of
     the same X-group conflict. Grouping works on visible row positions,
     which ARE the dense vertex ids, so the cross-product loop adds edges
     straight from the position arrays — no id→vertex lookups. *)
  let all = Array.init n (fun v -> v) in
  let add_fd fd =
    let groups = Table.View.group_within tbl all (Fd.lhs fd) in
    List.iter
      (fun group ->
        let subgroups = Table.View.group_within tbl group (Fd.rhs fd) in
        let rec cross = function
          | [] -> ()
          | g1 :: rest ->
            List.iter
              (fun g2 ->
                Array.iter
                  (fun u -> Array.iter (fun v -> G.add_edge graph u v) g2)
                  g1)
              rest;
            cross rest
        in
        cross subgroups)
      groups
  in
  List.iter add_fd (Fd_set.to_list (Fd_set.remove_trivial d));
  record_built { graph; ids; index }

(* Parallel [build]: grouping fans out over row chunks
   ([group_within_par] is exactly equivalent to [group_within]), and the
   per-group subgroup-and-cross work is sharded over contiguous runs of
   groups. Shard tasks only read the store and emit their edges as
   lists in generation order; concatenating the shards in order
   reproduces the sequential [add_edge] call sequence exactly, so the
   resulting graph (adjacency order included) is bit-identical for any
   shard count. *)
let build_par (runner : Table.runner) d tbl =
  Metrics.with_span "conflict-graph.build" @@ fun () ->
  let ids = Table.View.ids_array tbl in
  let n = Array.length ids in
  let index = Hashtbl.create n in
  Array.iteri (fun v i -> Hashtbl.add index i v) ids;
  let weights = Array.init n (fun v -> Table.View.weight tbl v) in
  let graph = G.create_weighted weights in
  let all = Array.init n (fun v -> v) in
  let add_fd fd =
    let groups =
      Array.of_list (Table.View.group_within_par runner tbl all (Fd.lhs fd))
    in
    let n_groups = Array.length groups in
    let shards = max 1 (min runner.Table.width n_groups) in
    let base = n_groups / shards and rem = n_groups mod shards in
    let shard_edges s () =
      let len = base + if s < rem then 1 else 0 in
      let lo = (s * base) + min s rem in
      let acc = ref [] in
      for g = lo to lo + len - 1 do
        let subgroups = Table.View.group_within tbl groups.(g) (Fd.rhs fd) in
        let rec cross = function
          | [] -> ()
          | g1 :: rest ->
            List.iter
              (fun g2 ->
                Array.iter
                  (fun u -> Array.iter (fun v -> acc := (u, v) :: !acc) g2)
                  g1)
              rest;
            cross rest
        in
        cross subgroups
      done;
      List.rev !acc
    in
    runner.Table.run (Array.init shards shard_edges)
    |> Array.iter (List.iter (fun (u, v) -> G.add_edge graph u v))
  in
  List.iter add_fd (Fd_set.to_list (Fd_set.remove_trivial d));
  record_built { graph; ids; index }

let build_naive d tbl =
  Metrics.with_span "conflict-graph.build-naive" @@ fun () ->
  let d = Fd_set.remove_trivial d in
  let schema = Table.schema tbl in
  let ids = Array.of_list (Table.ids tbl) in
  let n = Array.length ids in
  let index = Hashtbl.create n in
  Array.iteri (fun v i -> Hashtbl.add index i v) ids;
  let weights = Array.map (fun i -> Table.weight tbl i) ids in
  let graph = G.create_weighted weights in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      if
        not
          (Fd_set.pair_consistent d schema
             (Table.tuple tbl ids.(a))
             (Table.tuple tbl ids.(b)))
      then G.add_edge graph a b
    done
  done;
  record_built { graph; ids; index }

let graph cg = cg.graph
let id_of_vertex cg v = cg.ids.(v)
let vertex_of_id cg i = Hashtbl.find cg.index i
let n_conflicts cg = G.n_edges cg.graph

let delete_cover cg tbl cover =
  Table.remove tbl (List.map (id_of_vertex cg) cover)
