open Repair_relational
open Repair_fd
open Repair_runtime

let optimal ?(budget = Budget.unlimited ()) ?(fresh = 3) ?(max_cells = 24) d tbl =
  Repair_obs.Metrics.with_span "u-exact" @@ fun () ->
  let schema = Table.schema tbl in
  let arity = Schema.arity schema in
  let ids = Array.of_list (Table.ids tbl) in
  let n = Array.length ids in
  let n_cells = n * arity in
  if n_cells > max_cells then
    Repair_error.raise_error
      (Size_limit
         { what = "U_exact.optimal"; limit = max_cells; actual = n_cells });
  let d = Fd_set.remove_trivial d in
  if Fd_set.satisfied_by d tbl then tbl
  else begin
    let supply = Value.Supply.starting_above (Table.all_values tbl) in
    let fresh_pool = List.init fresh (fun _ -> Value.Supply.next supply) in
    let candidates =
      Array.init arity (fun j ->
          Table.active_domain tbl (Schema.attribute_at schema j) @ fresh_pool)
    in
    let cells =
      Array.init n_cells (fun c -> (ids.(c / arity), c mod arity))
    in
    let min_weight =
      Table.fold (fun _ _ w acc -> min acc w) tbl infinity
    in
    let best = ref None in
    let best_cost = ref infinity in
    (* Choose [k] cells (indices ascending) and values for them; evaluate
       consistency at the leaves, pruning on accumulated cost. *)
    let rec assign u cost start k =
      Budget.tick ~phase:"u-exact" budget;
      if cost >= !best_cost then ()
      else if k = 0 then begin
        if Fd_set.satisfied_by d u then begin
          best := Some u;
          best_cost := cost
        end
      end
      else
        for c = start to n_cells - k do
          let id, j = cells.(c) in
          let original = Tuple.get (Table.tuple tbl id) j in
          let w = Table.weight tbl id in
          List.iter
            (fun v ->
              if not (Value.equal v original) then
                assign
                  (Table.set_tuple u id (Tuple.set (Table.tuple u id) j v))
                  (cost +. w) (c + 1) (k - 1))
            candidates.(j)
        done
    in
    let k = ref 1 in
    let continue = ref true in
    while !continue do
      assign tbl 0.0 0 !k;
      (* A solution changing more than k cells costs at least
         (k+1)·min_weight; stop as soon as that cannot improve. *)
      if
        !k >= n_cells
        || (!best <> None
            && float_of_int (!k + 1) *. min_weight >= !best_cost)
      then continue := false
      else incr k
    done;
    match !best with
    | Some u -> u
    | None ->
      (* Unreachable: replacing every cell with distinct fresh constants is
         consistent for any consensus-free set, and consensus FDs are
         satisfiable by equating columns — the search space always contains
         a consistent update. *)
      assert false
  end

let distance ?budget ?fresh ?max_cells d tbl =
  Table.dist_upd (optimal ?budget ?fresh ?max_cells d tbl) tbl
