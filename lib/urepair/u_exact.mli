(** Exact optimal U-repairs by bounded search — the ground-truth baseline.

    The search explores updates changing k = 0, 1, 2, ... cells (iterative
    deepening); each changed cell may take any value of its column's active
    domain or one of a small pool of shared fresh constants per column.
    It stops when no deeper level can beat the incumbent
    (k·min-tuple-weight ≥ best cost).

    The candidate restriction is justified for small k: a repair may need
    cells to agree on a value from outside the table, which shared fresh
    constants provide; [fresh] bounds how many mutually-distinct new values
    per column the optimum may use (at most the number of changed cells in
    that column, so [fresh ≥ k] is always safe and the default suits the
    small instances this baseline is for). The paper's Section 5 discusses
    restricting updates to the active domain — pass [~fresh:0] for that
    semantics. *)

open Repair_relational
open Repair_fd

(** [optimal ?budget ?fresh ?max_cells d tbl] is an optimal U-repair.
    Every search node is a [budget] checkpoint (phase ["u-exact"]).

    @raise Repair_runtime.Repair_error.Error with [Size_limit] if the
    search space is plainly too large (more than [max_cells], default 24,
    cells in the table), and with [Budget_exhausted] when [budget] runs
    out. *)
val optimal :
  ?budget:Repair_runtime.Budget.t ->
  ?fresh:int ->
  ?max_cells:int ->
  Fd_set.t ->
  Table.t ->
  Table.t

(** [distance ?budget ?fresh ?max_cells d tbl] is [dist_upd(U*, T)]. *)
val distance :
  ?budget:Repair_runtime.Budget.t ->
  ?fresh:int ->
  ?max_cells:int ->
  Fd_set.t ->
  Table.t ->
  float
