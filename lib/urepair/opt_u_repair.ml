open Repair_relational
open Repair_fd
open Repair_runtime
module Simplify = Repair_dichotomy.Simplify

type hardness = Known_apx_hard of string | Open_complexity

type failure = { component : Fd_set.t; hardness : hardness }

exception Refuse of failure

(* Proposition B.2 / Corollary B.3: per consensus attribute, keep the
   weighted-majority value and overwrite the rest. *)
let consensus_majority tbl attrs =
  let schema = Table.schema tbl in
  let majority_value a =
    let totals = Hashtbl.create 8 in
    Table.iter
      (fun _ t w ->
        let v = Tuple.get_attr schema t a in
        let prev = Option.value (Hashtbl.find_opt totals v) ~default:0.0 in
        Hashtbl.replace totals v (prev +. w))
      tbl;
    Hashtbl.fold
      (fun v w best ->
        match best with
        | Some (_, bw) when bw >= w -> best
        | _ -> Some (v, w))
      totals None
    |> Option.map fst
  in
  Attr_set.fold
    (fun a acc ->
      match majority_value a with
      | None -> acc (* empty table *)
      | Some v -> Table.map_tuples acc (fun _ t -> Tuple.set_attr schema t a v))
    attrs tbl

(* Corollary 4.6 (positive side): common lhs + OSRSucceeds. *)
let via_common_lhs ?budget d tbl =
  let s_star = Repair_srepair.Opt_s_repair.run_exn ?budget d tbl in
  let a =
    match Fd_set.common_lhs d with
    | Some a -> a
    | None -> invalid_arg "via_common_lhs: no common lhs"
  in
  Transform.update_of_subset ~cover:(Attr_set.singleton a) d ~table:tbl s_star

(* Proposition 4.9: Δ ≡ {A → B, B → A}. Rewrite each deleted tuple into a
   surviving tuple it agrees with on A or on B. *)
let via_two_way_unary ?budget d (a, b) tbl =
  let schema = Table.schema tbl in
  let s_star = Repair_srepair.Opt_s_repair.run_exn ?budget d tbl in
  Table.map_tuples tbl (fun i t ->
      if Table.mem s_star i then t
      else
        let va = Tuple.get_attr schema t a and vb = Tuple.get_attr schema t b in
        let partner_on attr v =
          Table.fold
            (fun _ s _ found ->
              match found with
              | Some _ -> found
              | None ->
                if Value.equal (Tuple.get_attr schema s attr) v then Some s
                else None)
            s_star None
        in
        match partner_on a va with
        | Some s -> Tuple.set_attr schema t b (Tuple.get_attr schema s b)
        | None -> (
          match partner_on b vb with
          | Some s -> Tuple.set_attr schema t a (Tuple.get_attr schema s a)
          | None ->
            (* Impossible: t conflicts with no survivor, contradicting the
               optimality (hence maximality) of S*. *)
            assert false))

let is_two_way_unary d =
  let attrs = Attr_set.elements (Fd_set.attrs d) in
  match attrs with
  | [ a; b ] ->
    let cl_a = Fd_set.closure_of d (Attr_set.singleton a) in
    let cl_b = Fd_set.closure_of d (Attr_set.singleton b) in
    if Attr_set.mem b cl_a && Attr_set.mem a cl_b then Some (a, b) else None
  | _ -> None

(* Diagnosis of a refused component, naming the applicable hardness
   result when we know one. *)
let diagnose_component c =
  let has_common = Fd_set.common_lhs c <> None in
  if has_common then
    (* Corollary 4.6 makes U-repairing inter-reducible with S-repairing;
       OSRSucceeds failed (else we'd have solved it), so Theorem 3.4 gives
       APX-completeness. *)
    Known_apx_hard "Corollary 4.6 + Theorem 3.4 (common lhs, OSRSucceeds fails)"
  else
    let norm = Fd_set.normalize c in
    let fds = Fd_set.to_list norm in
    let is_chain_of_two =
      match fds with
      | [ f1; f2 ] -> (
        let unary fd = Attr_set.cardinal (Fd.lhs fd) = 1 in
        unary f1 && unary f2
        &&
        let chain fa fb =
          (* fa = X → Y, fb = Y → Z with X, Y, Z distinct singletons. *)
          match
            ( Attr_set.elements (Fd.lhs fa),
              Attr_set.elements (Fd.rhs fa),
              Attr_set.elements (Fd.lhs fb),
              Attr_set.elements (Fd.rhs fb) )
          with
          | [ x ], [ y ], [ y' ], [ z ] ->
            y = y' && x <> z && x <> y && y <> z
          | _ -> false
        in
        chain f1 f2 || chain f2 f1)
      | _ -> false
    in
    if is_chain_of_two then
      Known_apx_hard "Kolahi–Lakshmanan (Example 4.2): {A → B, B → C}"
    else
      let attrs = Attr_set.elements (Fd_set.attrs c) in
      let matches_a_b_to_c () =
        (* Δ_{A↔B→C} up to renaming: two equivalent attributes determining
           a third. *)
        List.length attrs = 3
        && List.exists
             (fun a ->
               List.exists
                 (fun b ->
                   a <> b
                   &&
                   let template =
                     Fd_set.of_list
                       [ Fd.make (Attr_set.singleton a) (Attr_set.singleton b);
                         Fd.make (Attr_set.singleton b) (Attr_set.singleton a);
                         Fd.make (Attr_set.singleton b)
                           (Attr_set.of_list
                              (List.filter (fun x -> x <> a && x <> b) attrs))
                       ]
                   in
                   Fd_set.equivalent c template)
                 attrs)
             attrs
      in
      if matches_a_b_to_c () then
        Known_apx_hard "Theorem 4.10: Δ_{A↔B→C}"
      else Open_complexity

let solve_component ?(budget = Budget.unlimited ()) c tbl =
  Budget.tick ~phase:"opt-u-repair" budget;
  if Fd_set.is_trivial c then tbl
  else
    match is_two_way_unary c with
    | Some (a, b) when Simplify.succeeds c ->
      via_two_way_unary ~budget c (a, b) tbl
    | _ ->
      if Fd_set.common_lhs c <> None && Simplify.succeeds c then
        via_common_lhs ~budget c tbl
      else raise (Refuse { component = c; hardness = diagnose_component c })

(* Compose component solutions: each solution only modifies attributes
   inside its component, so copying those attribute values into the base
   update is Theorem 4.1's composition. *)
let compose schema base updates_with_attrs =
  List.fold_left
    (fun acc (attrs, u) ->
      Table.map_tuples acc (fun i t ->
          Attr_set.fold
            (fun a t' ->
              Tuple.set_attr schema t' a (Tuple.get_attr schema (Table.tuple u i) a))
            attrs t))
    base updates_with_attrs

let solve ?budget d tbl =
  let schema = Table.schema tbl in
  let d = Fd_set.normalize d in
  try
    let consensus = Fd_set.consensus_attrs d in
    let base =
      if Attr_set.is_empty consensus then tbl
      else consensus_majority tbl consensus
    in
    let rest = Fd_set.remove_trivial (Fd_set.minus d consensus) in
    let component_updates =
      Fd_set.components rest
      |> List.filter (fun c -> not (Fd_set.is_trivial c))
      |> List.map (fun c -> (Fd_set.attrs c, solve_component ?budget c tbl))
    in
    Ok (compose schema base component_updates)
  with Refuse f -> Error f

let solve_exn ?budget d tbl =
  match solve ?budget d tbl with
  | Ok u -> u
  | Error f ->
    failwith
      (Fmt.str "Opt_u_repair: component %a is not known tractable" Fd_set.pp
         f.component)

let distance ?budget d tbl =
  Result.map (fun u -> Table.dist_upd u tbl) (solve ?budget d tbl)

let diagnose d =
  let d = Fd_set.normalize d in
  let rest = Fd_set.remove_trivial (Fd_set.minus d (Fd_set.consensus_attrs d)) in
  let refusal c =
    if Fd_set.is_trivial c then None
    else
      match is_two_way_unary c with
      | Some _ when Simplify.succeeds c -> None
      | _ ->
        if Fd_set.common_lhs c <> None && Simplify.succeeds c then None
        else Some { component = c; hardness = diagnose_component c }
  in
  Fd_set.components rest |> List.find_map refusal

let tractable d = diagnose d = None

(* Parallel driver: Theorem 4.1's components touch disjoint attribute
   sets, so they solve as independent runner tasks and compose exactly
   as in the sequential pass. Fan-out needs two preconditions: an
   unlimited budget (a limited budget's exhaustion point is observable,
   so limited runs stay on the sequential path), and a refusal-free Δ —
   refusal depends on Δ only ({!diagnose}), and checking it up front
   keeps the Error path byte-identical to the sequential solver's (same
   first-refused component, no extra work on later components). Worker
   budgets are fresh and unlimited; their spent steps are absorbed into
   the orchestrating budget in component order, so tick totals match the
   sequential run exactly. *)
let solve_par ?(budget = Budget.unlimited ()) (runner : Table.runner) d tbl =
  if Budget.limited budget || diagnose d <> None then solve ~budget d tbl
  else
    let schema = Table.schema tbl in
    let d = Fd_set.normalize d in
    let consensus = Fd_set.consensus_attrs d in
    let base =
      if Attr_set.is_empty consensus then tbl
      else consensus_majority tbl consensus
    in
    let rest = Fd_set.remove_trivial (Fd_set.minus d consensus) in
    let comps =
      Fd_set.components rest
      |> List.filter (fun c -> not (Fd_set.is_trivial c))
    in
    let component_updates =
      match comps with
      | [] | [ _ ] ->
        List.map (fun c -> (Fd_set.attrs c, solve_component ~budget c tbl)) comps
      | _ ->
        let tasks =
          List.map
            (fun c () ->
              let b = Budget.unlimited () in
              let u = solve_component ~budget:b c tbl in
              (u, Budget.steps b))
            comps
        in
        let results = runner.Table.run (Array.of_list tasks) in
        Array.iter (fun (_, steps) -> Budget.absorb budget ~steps) results;
        List.map2
          (fun c (u, _) -> (Fd_set.attrs c, u))
          comps
          (Array.to_list results)
    in
    Ok (compose schema base component_updates)

let pp_failure ppf f =
  Fmt.pf ppf "component %a: %s" Fd_set.pp f.component
    (match f.hardness with
    | Known_apx_hard why -> "APX-hard — " ^ why
    | Open_complexity -> "complexity open (paper Section 4)")
