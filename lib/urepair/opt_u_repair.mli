(** Polynomial-time optimal U-repairs for the tractable cases established
    in Section 4.

    The solver composes the paper's positive results:

    - Theorem 4.3: consensus attributes [cl_Δ(∅)] are repaired
      independently by weighted majority vote per attribute
      (Proposition B.2), and removed from Δ;
    - Theorem 4.1: the remaining consensus-free set is split into
      attribute-disjoint components, each solved on its own attributes and
      composed;
    - Corollary 4.6: a component with a common lhs whose [OSRSucceeds]
      test passes is solved through an optimal S-repair, updating the
      common-lhs attribute of deleted tuples to fresh constants
      (mlc = 1, so the distance matches the S-repair distance, which by
      Corollary 4.5 lower-bounds the optimal update distance);
    - Proposition 4.9: a component equivalent to [{A → B, B → A}] is
      solved through an optimal S-repair, rewriting each deleted tuple
      into a surviving tuple it agrees with on A or on B.

    Components fitting none of these cases are refused with a diagnosis:
    either {e known APX-hard} (hard side of Corollary 4.6;
    Kolahi–Lakshmanan's [{A→B, B→C}]; Theorem 4.10's [Δ_{A↔B→C}]) or
    {e open} — the paper leaves the full U-repair dichotomy open. *)

open Repair_relational
open Repair_fd

type hardness =
  | Known_apx_hard of string  (** citation of the applicable result *)
  | Open_complexity

type failure = { component : Fd_set.t; hardness : hardness }

(** [consensus_majority tbl attrs] repairs the consensus FD [∅ → attrs]
    optimally: per attribute, the weighted-majority value is kept and
    written into every other tuple (Proposition B.2 / Corollary B.3). *)
val consensus_majority : Table.t -> Attr_set.t -> Table.t

(** [solve ?budget d tbl] is [Ok u] with [u] an optimal U-repair, or
    [Error f] naming the first component the solver cannot handle in
    polynomial time. Each component is a [budget] checkpoint (phase
    ["opt-u-repair"]), and the budget also covers the embedded OptSRepair
    runs; exhaustion raises
    {!Repair_runtime.Repair_error.Budget_exhausted}. *)
val solve :
  ?budget:Repair_runtime.Budget.t ->
  Fd_set.t ->
  Table.t ->
  (Table.t, failure) result

(** [solve_par ?budget runner d tbl] is {!solve} with Theorem 4.1's
    attribute-disjoint components solved as independent [runner] tasks.
    Bit-identical to {!solve}: components compose in component order,
    each task runs under a fresh unlimited budget whose steps are
    absorbed at the barrier, and worker metrics merge exactly. A
    {e limited} [budget], or a Δ with any refused component (refusal is
    Δ-only), takes the sequential path unchanged. *)
val solve_par :
  ?budget:Repair_runtime.Budget.t ->
  Repair_relational.Table.runner ->
  Fd_set.t ->
  Table.t ->
  (Table.t, failure) result

val solve_exn : ?budget:Repair_runtime.Budget.t -> Fd_set.t -> Table.t -> Table.t

(** [distance ?budget d tbl] is [dist_upd(U*, T)] when tractable. *)
val distance :
  ?budget:Repair_runtime.Budget.t ->
  Fd_set.t ->
  Table.t ->
  (float, failure) result

(** [tractable d] — would {!solve} succeed? Depends only on Δ. *)
val tractable : Fd_set.t -> bool

(** [diagnose d] is the failure {!solve} would report, if any. *)
val diagnose : Fd_set.t -> failure option

val pp_failure : Format.formatter -> failure -> unit
