(** Weighted vertex cover: exact and 2-approximate.

    The paper reduces optimal S-repairing to minimum weighted vertex cover
    of the conflict graph (Proposition 3.3); the 2-approximation is the
    local-ratio algorithm of Bar-Yehuda and Even, and the exact solver
    (branch-and-bound) is our optimality baseline for small instances. *)

(** [is_cover g vs] holds iff [vs] touches every edge of [g]. *)
val is_cover : Graph.t -> int list -> bool

(** [approx2 g] is a vertex cover of weight at most twice the minimum, in
    time O(n + m) (Bar-Yehuda–Even local-ratio). Sorted ascending. *)
val approx2 : Graph.t -> int list

(** [greedy g] is the classic max-degree-first heuristic cover (no ratio
    guarantee for weighted instances; useful as a bound seed). *)
val greedy : Graph.t -> int list

(** [exact ?budget ?matching_bound g] is a minimum-weight vertex cover, by
    branch and bound on the heaviest uncovered edge with a greedy incumbent
    and — unless [matching_bound] is [false] (ablation) — a matching-based
    lower bound. Exponential in the worst case; intended for baseline
    checks on small graphs (tens of vertices). Sorted ascending.

    Every branch-and-bound node is a [budget] checkpoint (phase
    ["vertex-cover"]); on exhaustion the search raises
    {!Repair_runtime.Repair_error.Budget_exhausted}. *)
val exact :
  ?budget:Repair_runtime.Budget.t -> ?matching_bound:bool -> Graph.t -> int list

(** [cover_weight g vs] sums the cover's vertex weights. *)
val cover_weight : Graph.t -> int list -> float

(** Dynamic companion to {!greedy}: a growable graph absorbing vertex and
    edge insertions/deletions with O(deg) state repair, whose {!Incremental.cover}
    runs the batch greedy loop — same score, same strict first-best
    tie-break, same ascending scan order — directly on the live state.

    Slots are allocated in insertion order and never reused, so the alive
    slots (ascending) are order-isomorphic to the dense vertex ids of a
    graph built fresh from the survivors: [cover] equals {!greedy} on
    {!Incremental.to_graph} modulo the slot <-> dense renaming. This is
    the edge-delta store behind streaming conflict-graph maintenance
    ({!Repair_stream}). *)
module Incremental : sig
  type t

  val create : unit -> t

  (** [add_vertex t ~weight] allocates the next slot (0, 1, 2, ...).
      @raise Invalid_argument if [weight <= 0]. *)
  val add_vertex : t -> weight:float -> int

  (** [remove_vertex t v] kills slot [v] and drops its incident edges.
      The slot is never reused. *)
  val remove_vertex : t -> int -> unit

  (** [add_edge t u v] — idempotent, undirected, no self-loops. *)
  val add_edge : t -> int -> int -> unit

  (** [remove_edge t u v] — a no-op when the edge is absent. *)
  val remove_edge : t -> int -> int -> unit

  val n_alive : t -> int
  val n_edges : t -> int
  val mem_vertex : t -> int -> bool
  val degree : t -> int -> int
  val weight : t -> int -> float

  (** [to_graph t] densifies the alive slots (ascending) into a fresh
      {!Graph.t}; the array maps dense index -> slot. *)
  val to_graph : t -> Graph.t * int array

  (** [cover t] is {!greedy} of the live graph, as slot ids (ascending). *)
  val cover : t -> int list
end

(** [matching_lower_bound g] — the greedy-matching bound used inside
    {!exact}: the sum of [min(w u, w v)] over a maximal matching. *)
val matching_lower_bound : Graph.t -> float

(** [lp_lower_bound g] — the LP-relaxation bound: half the minimum-weight
    vertex cover of the bipartite double cover, computed as a minimum s-t
    cut ({!Max_flow}). Always at least the greedy-matching bound and at
    most the optimum; exact on bipartite graphs. *)
val lp_lower_bound : Graph.t -> float
