module Iset = Set.Make (Int)
module Metrics = Repair_obs.Metrics

let is_cover g vs =
  let s = Iset.of_list vs in
  Graph.fold_edges
    (fun (u, v) ok -> ok && (Iset.mem u s || Iset.mem v s))
    g true

let cover_weight g vs =
  Iset.fold (fun v acc -> acc +. Graph.weight g v) (Iset.of_list vs) 0.0

(* Bar-Yehuda–Even local ratio: scan the edges once; for each edge still
   uncovered, pay ε = min of the residual weights of its endpoints on both
   endpoints. Vertices whose residual reaches zero enter the cover. The
   total payment is a lower bound on OPT and the cover costs at most twice
   the payment. *)
let approx2 g =
  Metrics.with_span "vertex-cover.approx2" @@ fun () ->
  let n = Graph.n_vertices g in
  let residual = Array.init n (Graph.weight g) in
  let in_cover = Array.make n false in
  let payments = ref 0 in
  Graph.fold_edges
    (fun (u, v) () ->
      if not (in_cover.(u) || in_cover.(v)) then begin
        incr payments;
        let eps = min residual.(u) residual.(v) in
        residual.(u) <- residual.(u) -. eps;
        residual.(v) <- residual.(v) -. eps;
        if residual.(u) <= 0.0 then in_cover.(u) <- true;
        if residual.(v) <= 0.0 then in_cover.(v) <- true
      end)
    g ();
  Metrics.incr ~by:!payments "vertex-cover.local-ratio-payments";
  let cover = ref [] in
  for v = n - 1 downto 0 do
    if in_cover.(v) then cover := v :: !cover
  done;
  !cover

(* Greedy set-cover heuristic, incremental form: [gain.(v)] counts the
   uncovered edges incident to [v] (initially the degree). Choosing a
   vertex covers exactly its [gain] edges, and only the gains of its
   not-yet-chosen neighbours change — so each iteration is one O(n)
   argmax scan plus O(deg) updates instead of an O(E) rescan of every
   edge. The scan order and strict improvement test match the previous
   implementation, so the chosen cover is identical. *)
let greedy g =
  let n = Graph.n_vertices g in
  let gain = Array.init n (Graph.degree g) in
  let chosen = Array.make n false in
  let uncovered = ref (Graph.n_edges g) in
  let cover = ref Iset.empty in
  while !uncovered > 0 do
    (* Pick the vertex covering the most uncovered edges per unit
       weight. *)
    let best = ref (-1) and best_score = ref neg_infinity in
    for v = 0 to n - 1 do
      if gain.(v) > 0 then begin
        let score = float_of_int gain.(v) /. Graph.weight g v in
        if score > !best_score then begin
          best := v;
          best_score := score
        end
      end
    done;
    let b = !best in
    uncovered := !uncovered - gain.(b);
    gain.(b) <- 0;
    chosen.(b) <- true;
    cover := Iset.add b !cover;
    List.iter
      (fun u -> if not chosen.(u) then gain.(u) <- gain.(u) - 1)
      (Graph.neighbours g b)
  done;
  Iset.elements !cover

(* Lower bound for branch and bound: a greedy matching on the uncovered
   edges; any cover pays at least min(w(u), w(v)) per matching edge, and the
   matched edges are disjoint. *)
let matching_bound_on g uncovered =
  let used = ref Iset.empty in
  List.fold_left
    (fun acc (u, v) ->
      if Iset.mem u !used || Iset.mem v !used then acc
      else begin
        used := Iset.add u (Iset.add v !used);
        acc +. min (Graph.weight g u) (Graph.weight g v)
      end)
    0.0 uncovered

let matching_lower_bound g = matching_bound_on g (Graph.edges g)

(* LP relaxation via the bipartite double cover: node u splits into u'
   (left, index u) and u'' (right, index n+u); every edge {u,v} becomes
   u'-v'' and v'-u''. A minimum-weight vertex cover of the double cover is
   a minimum s-t cut, and half its weight is exactly the LP optimum of the
   original instance (half-integrality). *)
let lp_lower_bound g =
  let n = Graph.n_vertices g in
  if Graph.n_edges g = 0 then 0.0
  else begin
    let source = 2 * n and sink = (2 * n) + 1 in
    let net = Max_flow.create ((2 * n) + 2) in
    for u = 0 to n - 1 do
      Max_flow.add_edge net source u (Graph.weight g u);
      Max_flow.add_edge net (n + u) sink (Graph.weight g u)
    done;
    Graph.fold_edges
      (fun (u, v) () ->
        Max_flow.add_edge net u (n + v) infinity;
        Max_flow.add_edge net v (n + u) infinity)
      g ();
    Max_flow.max_flow net ~source ~sink /. 2.0
  end

let exact ?(budget = Repair_runtime.Budget.unlimited ()) ?(matching_bound = true)
    g =
  Metrics.with_span "vertex-cover.exact" @@ fun () ->
  let all_edges = Graph.edges g in
  let best_cover = ref (Iset.of_list (approx2 g)) in
  let best_weight = ref (cover_weight g (Iset.elements !best_cover)) in
  let greedy_start = greedy g in
  let greedy_weight = cover_weight g greedy_start in
  if greedy_weight < !best_weight then begin
    best_cover := Iset.of_list greedy_start;
    best_weight := greedy_weight
  end;
  let rec branch chosen chosen_weight =
    Repair_runtime.Budget.tick ~phase:"vertex-cover" budget;
    let uncovered =
      List.filter
        (fun (u, v) -> not (Iset.mem u chosen || Iset.mem v chosen))
        all_edges
    in
    match uncovered with
    | [] ->
      if chosen_weight < !best_weight then begin
        best_cover := chosen;
        best_weight := chosen_weight;
        Repair_obs.Trace.instant "vertex-cover.incumbent"
      end
    | _ ->
      let bound =
        if matching_bound then
          chosen_weight +. matching_bound_on g uncovered
        else chosen_weight
      in
      if bound < !best_weight then begin
        (* Branch on an uncovered edge whose endpoints are heaviest: it
           tends to produce tighter early bounds. *)
        let u, v =
          List.fold_left
            (fun ((bu, bv) as bbest) ((cu, cv) as cand) ->
              let wb = Graph.weight g bu +. Graph.weight g bv in
              let wc = Graph.weight g cu +. Graph.weight g cv in
              if wc > wb then cand else bbest)
            (List.hd uncovered) (List.tl uncovered)
        in
        branch (Iset.add u chosen) (chosen_weight +. Graph.weight g u);
        branch (Iset.add v chosen) (chosen_weight +. Graph.weight g v)
      end
  in
  branch Iset.empty 0.0;
  Iset.elements !best_cover
