module Iset = Set.Make (Int)
module Metrics = Repair_obs.Metrics

let is_cover g vs =
  let s = Iset.of_list vs in
  Graph.fold_edges
    (fun (u, v) ok -> ok && (Iset.mem u s || Iset.mem v s))
    g true

let cover_weight g vs =
  Iset.fold (fun v acc -> acc +. Graph.weight g v) (Iset.of_list vs) 0.0

(* Bar-Yehuda–Even local ratio: scan the edges once; for each edge still
   uncovered, pay ε = min of the residual weights of its endpoints on both
   endpoints. Vertices whose residual reaches zero enter the cover. The
   total payment is a lower bound on OPT and the cover costs at most twice
   the payment. *)
let approx2 g =
  Metrics.with_span "vertex-cover.approx2" @@ fun () ->
  let n = Graph.n_vertices g in
  let residual = Array.init n (Graph.weight g) in
  let in_cover = Array.make n false in
  let payments = ref 0 in
  Graph.fold_edges
    (fun (u, v) () ->
      if not (in_cover.(u) || in_cover.(v)) then begin
        incr payments;
        let eps = min residual.(u) residual.(v) in
        residual.(u) <- residual.(u) -. eps;
        residual.(v) <- residual.(v) -. eps;
        if residual.(u) <= 0.0 then in_cover.(u) <- true;
        if residual.(v) <= 0.0 then in_cover.(v) <- true
      end)
    g ();
  Metrics.incr ~by:!payments "vertex-cover.local-ratio-payments";
  let cover = ref [] in
  for v = n - 1 downto 0 do
    if in_cover.(v) then cover := v :: !cover
  done;
  !cover

(* Greedy set-cover heuristic, incremental form: [gain.(v)] counts the
   uncovered edges incident to [v] (initially the degree). Choosing a
   vertex covers exactly its [gain] edges, and only the gains of its
   not-yet-chosen neighbours change — so each iteration is one O(n)
   argmax scan plus O(deg) updates instead of an O(E) rescan of every
   edge. The scan order and strict improvement test match the previous
   implementation, so the chosen cover is identical. *)
let greedy g =
  let n = Graph.n_vertices g in
  let gain = Array.init n (Graph.degree g) in
  let chosen = Array.make n false in
  let uncovered = ref (Graph.n_edges g) in
  let cover = ref Iset.empty in
  while !uncovered > 0 do
    (* Pick the vertex covering the most uncovered edges per unit
       weight. *)
    let best = ref (-1) and best_score = ref neg_infinity in
    for v = 0 to n - 1 do
      if gain.(v) > 0 then begin
        let score = float_of_int gain.(v) /. Graph.weight g v in
        if score > !best_score then begin
          best := v;
          best_score := score
        end
      end
    done;
    let b = !best in
    uncovered := !uncovered - gain.(b);
    gain.(b) <- 0;
    chosen.(b) <- true;
    cover := Iset.add b !cover;
    List.iter
      (fun u -> if not chosen.(u) then gain.(u) <- gain.(u) - 1)
      (Graph.neighbours g b)
  done;
  Iset.elements !cover

(* Dynamic companion to [greedy]: a growable graph that absorbs vertex
   and edge insertions/deletions, maintaining exactly the degree state
   [greedy] seeds its gain array from. Slots are allocated in insertion
   order and never reused, so the alive slots (ascending) are
   order-isomorphic to the dense vertex ids of a graph built fresh from
   the surviving vertices — [cover] runs the batch greedy loop over the
   alive slots in that order, with the same score and the same strict
   first-best tie-break, and therefore returns the same cover modulo the
   slot <-> dense-index renaming. *)
module Incremental = struct
  type t = {
    mutable weights : float array; (* slot -> weight *)
    mutable adj : Iset.t array; (* slot -> alive neighbour slots *)
    mutable alive : bool array;
    mutable n_slots : int;
    mutable n_alive : int;
    mutable n_edges : int;
  }

  let create () =
    {
      weights = [||];
      adj = [||];
      alive = [||];
      n_slots = 0;
      n_alive = 0;
      n_edges = 0;
    }

  let grow t =
    let cap = Array.length t.weights in
    if t.n_slots = cap then begin
      let cap' = max 8 (2 * cap) in
      let weights = Array.make cap' 1.0 in
      let adj = Array.make cap' Iset.empty in
      let alive = Array.make cap' false in
      Array.blit t.weights 0 weights 0 cap;
      Array.blit t.adj 0 adj 0 cap;
      Array.blit t.alive 0 alive 0 cap;
      t.weights <- weights;
      t.adj <- adj;
      t.alive <- alive
    end

  let check t who v =
    if v < 0 || v >= t.n_slots || not t.alive.(v) then
      invalid_arg
        (Printf.sprintf "Vertex_cover.Incremental.%s: dead or unknown slot %d"
           who v)

  let add_vertex t ~weight =
    if weight <= 0.0 then
      invalid_arg "Vertex_cover.Incremental.add_vertex: weight must be positive";
    grow t;
    let slot = t.n_slots in
    t.weights.(slot) <- weight;
    t.adj.(slot) <- Iset.empty;
    t.alive.(slot) <- true;
    t.n_slots <- slot + 1;
    t.n_alive <- t.n_alive + 1;
    slot

  let add_edge t u v =
    check t "add_edge" u;
    check t "add_edge" v;
    if u = v then invalid_arg "Vertex_cover.Incremental.add_edge: self-loop";
    if not (Iset.mem v t.adj.(u)) then begin
      t.adj.(u) <- Iset.add v t.adj.(u);
      t.adj.(v) <- Iset.add u t.adj.(v);
      t.n_edges <- t.n_edges + 1
    end

  let remove_edge t u v =
    check t "remove_edge" u;
    check t "remove_edge" v;
    if Iset.mem v t.adj.(u) then begin
      t.adj.(u) <- Iset.remove v t.adj.(u);
      t.adj.(v) <- Iset.remove u t.adj.(v);
      t.n_edges <- t.n_edges - 1
    end

  let remove_vertex t v =
    check t "remove_vertex" v;
    Iset.iter
      (fun u ->
        t.adj.(u) <- Iset.remove v t.adj.(u);
        t.n_edges <- t.n_edges - 1)
      t.adj.(v);
    t.adj.(v) <- Iset.empty;
    t.alive.(v) <- false;
    t.n_alive <- t.n_alive - 1

  let n_alive t = t.n_alive
  let n_edges t = t.n_edges
  let mem_vertex t v = v >= 0 && v < t.n_slots && t.alive.(v)

  let degree t v =
    check t "degree" v;
    Iset.cardinal t.adj.(v)

  let weight t v =
    check t "weight" v;
    t.weights.(v)

  (* Dense materialization: alive slots in ascending order become the
     vertex ids of a fresh [Graph.t]. Returns the graph together with the
     dense-index -> slot mapping. Adjacency sets make the edge insertion
     order irrelevant, so the result is structurally identical to a graph
     built from scratch on the surviving vertices. *)
  let to_graph t =
    let slots = Array.make t.n_alive 0 in
    let dense = Array.make (max 1 t.n_slots) (-1) in
    let k = ref 0 in
    for v = 0 to t.n_slots - 1 do
      if t.alive.(v) then begin
        slots.(!k) <- v;
        dense.(v) <- !k;
        incr k
      end
    done;
    let g = Graph.create_weighted (Array.map (fun s -> t.weights.(s)) slots) in
    Array.iteri
      (fun i s ->
        Iset.iter (fun u -> if u > s then Graph.add_edge g i dense.(u)) t.adj.(s))
      slots;
    (g, slots)

  (* The batch [greedy] loop, run directly on the live state: gains seed
     from the maintained degrees, the argmax scans alive slots in
     ascending order with the same strict [>] first-best tie-break, and a
     chosen slot repairs only its neighbours' gains in O(deg). *)
  let cover t =
    let n = t.n_slots in
    let gain =
      Array.init n (fun v -> if t.alive.(v) then Iset.cardinal t.adj.(v) else 0)
    in
    let chosen = Array.make n false in
    let uncovered = ref t.n_edges in
    let cover = ref Iset.empty in
    while !uncovered > 0 do
      let best = ref (-1) and best_score = ref neg_infinity in
      for v = 0 to n - 1 do
        if gain.(v) > 0 then begin
          let score = float_of_int gain.(v) /. t.weights.(v) in
          if score > !best_score then begin
            best := v;
            best_score := score
          end
        end
      done;
      let b = !best in
      uncovered := !uncovered - gain.(b);
      gain.(b) <- 0;
      chosen.(b) <- true;
      cover := Iset.add b !cover;
      Iset.iter
        (fun u -> if not chosen.(u) then gain.(u) <- gain.(u) - 1)
        t.adj.(b)
    done;
    Iset.elements !cover
end

(* Lower bound for branch and bound: a greedy matching on the uncovered
   edges; any cover pays at least min(w(u), w(v)) per matching edge, and the
   matched edges are disjoint. *)
let matching_bound_on g uncovered =
  let used = ref Iset.empty in
  List.fold_left
    (fun acc (u, v) ->
      if Iset.mem u !used || Iset.mem v !used then acc
      else begin
        used := Iset.add u (Iset.add v !used);
        acc +. min (Graph.weight g u) (Graph.weight g v)
      end)
    0.0 uncovered

let matching_lower_bound g = matching_bound_on g (Graph.edges g)

(* LP relaxation via the bipartite double cover: node u splits into u'
   (left, index u) and u'' (right, index n+u); every edge {u,v} becomes
   u'-v'' and v'-u''. A minimum-weight vertex cover of the double cover is
   a minimum s-t cut, and half its weight is exactly the LP optimum of the
   original instance (half-integrality). *)
let lp_lower_bound g =
  let n = Graph.n_vertices g in
  if Graph.n_edges g = 0 then 0.0
  else begin
    let source = 2 * n and sink = (2 * n) + 1 in
    let net = Max_flow.create ((2 * n) + 2) in
    for u = 0 to n - 1 do
      Max_flow.add_edge net source u (Graph.weight g u);
      Max_flow.add_edge net (n + u) sink (Graph.weight g u)
    done;
    Graph.fold_edges
      (fun (u, v) () ->
        Max_flow.add_edge net u (n + v) infinity;
        Max_flow.add_edge net v (n + u) infinity)
      g ();
    Max_flow.max_flow net ~source ~sink /. 2.0
  end

let exact ?(budget = Repair_runtime.Budget.unlimited ()) ?(matching_bound = true)
    g =
  Metrics.with_span "vertex-cover.exact" @@ fun () ->
  let all_edges = Graph.edges g in
  let best_cover = ref (Iset.of_list (approx2 g)) in
  let best_weight = ref (cover_weight g (Iset.elements !best_cover)) in
  let greedy_start = greedy g in
  let greedy_weight = cover_weight g greedy_start in
  if greedy_weight < !best_weight then begin
    best_cover := Iset.of_list greedy_start;
    best_weight := greedy_weight
  end;
  let rec branch chosen chosen_weight =
    Repair_runtime.Budget.tick ~phase:"vertex-cover" budget;
    let uncovered =
      List.filter
        (fun (u, v) -> not (Iset.mem u chosen || Iset.mem v chosen))
        all_edges
    in
    match uncovered with
    | [] ->
      if chosen_weight < !best_weight then begin
        best_cover := chosen;
        best_weight := chosen_weight;
        Repair_obs.Trace.instant "vertex-cover.incumbent"
      end
    | _ ->
      let bound =
        if matching_bound then
          chosen_weight +. matching_bound_on g uncovered
        else chosen_weight
      in
      if bound < !best_weight then begin
        (* Branch on an uncovered edge whose endpoints are heaviest: it
           tends to produce tighter early bounds. *)
        let u, v =
          List.fold_left
            (fun ((bu, bv) as bbest) ((cu, cv) as cand) ->
              let wb = Graph.weight g bu +. Graph.weight g bv in
              let wc = Graph.weight g cu +. Graph.weight g cv in
              if wc > wb then cand else bbest)
            (List.hd uncovered) (List.tl uncovered)
        in
        branch (Iset.add u chosen) (chosen_weight +. Graph.weight g u);
        branch (Iset.add v chosen) (chosen_weight +. Graph.weight g v)
      end
  in
  branch Iset.empty 0.0;
  Iset.elements !best_cover
