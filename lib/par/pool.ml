module Metrics = Repair_obs.Metrics
module Trace = Repair_obs.Trace
module Table = Repair_relational.Table

(* A fixed-size domain pool with chunked static batches.

   Concurrency model: at most one batch is active per pool. The
   submitting domain installs the batch under [lock], wakes the workers,
   then helps execute tasks itself, so a pool created with [~domains:n]
   runs tasks on exactly [n] domains (the submitter plus [n - 1]
   workers). Tasks are handed out by index (or by an explicit [schedule]
   permutation — the perturbation hook used by the determinism tests);
   results land in per-index slots, so completion order is irrelevant to
   the outcome.

   Determinism contract (DESIGN §13): every task runs under
   [Metrics.capture], and the captures are merged on the submitting
   domain in task-index order once the whole batch has finished. Worker
   exceptions are values in the per-index slots; [run] re-raises the
   lowest-index one after the merge. Nothing about scheduling — domain
   count, task interleaving, the [schedule] permutation — can therefore
   change what [run] returns, raises, or records. *)

type batch = {
  exec : int -> unit;  (* run task [i]; never raises *)
  n : int;
  order : int array;  (* hand-out permutation of [0 .. n-1] *)
  mutable next : int;  (* next position in [order] *)
  mutable unfinished : int;
}

type t = {
  domains : int;
  lock : Mutex.t;
  work : Condition.t;  (* workers: a batch arrived / shutdown *)
  finished : Condition.t;  (* submitter: batch fully executed *)
  mutable batch : batch option;
  mutable stopped : bool;
  mutable workers : unit Domain.t array;
}

(* True while the current domain is executing a pool task: nested
   [run] calls fall back to inline execution instead of deadlocking on
   the (single-batch) pool. *)
let in_task_key = Domain.DLS.new_key (fun () -> false)

let in_task () = Domain.DLS.get in_task_key

let take_index b =
  if b.next >= b.n then None
  else begin
    let i = b.order.(b.next) in
    b.next <- b.next + 1;
    Some i
  end

let finish_one t b =
  b.unfinished <- b.unfinished - 1;
  if b.unfinished = 0 then Condition.broadcast t.finished

let rec worker_loop t =
  Mutex.lock t.lock;
  let rec next () =
    if t.stopped then None
    else
      match t.batch with
      | Some b when b.next < b.n -> take_index b |> Option.map (fun i -> (b, i))
      | _ ->
        Condition.wait t.work t.lock;
        next ()
  in
  match next () with
  | None -> Mutex.unlock t.lock
  | Some (b, i) ->
    Mutex.unlock t.lock;
    b.exec i;
    Mutex.lock t.lock;
    finish_one t b;
    Mutex.unlock t.lock;
    worker_loop t

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let t =
    { domains;
      lock = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      batch = None;
      stopped = false;
      workers = [||] }
  in
  (try
     t.workers <-
       Array.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t))
   with e ->
     (* Partial spawn: release whatever came up, then let the failure
        surface to the caller (the CLI reports it as an internal error). *)
     Mutex.lock t.lock;
     t.stopped <- true;
     Condition.broadcast t.work;
     Mutex.unlock t.lock;
     Array.iter Domain.join t.workers;
     t.workers <- [||];
     raise e);
  t

let domains t = t.domains

let shutdown t =
  Mutex.lock t.lock;
  if t.stopped then Mutex.unlock t.lock
  else begin
    t.stopped <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.lock;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

let with_pool ~domains f =
  let t = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let check_schedule n = function
  | None -> Array.init n (fun i -> i)
  | Some order ->
    if Array.length order <> n then
      invalid_arg "Pool.run: schedule length mismatch";
    let seen = Array.make n false in
    Array.iter
      (fun i ->
        if i < 0 || i >= n || seen.(i) then
          invalid_arg "Pool.run: schedule is not a permutation";
        seen.(i) <- true)
      order;
    Array.copy order

(* Capture-only execution: every task runs under a fresh metrics
   registry; nothing is merged here. The inline fallback (1 domain, a
   nested call, or a pool already running a batch) executes in index
   order on the calling domain — captures and all — so callers see one
   uniform shape. *)
let run_captured ?schedule t fns =
  let n = Array.length fns in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let exec i =
      Domain.DLS.set in_task_key true;
      let r = Metrics.capture (fun () -> fns.(i) ()) in
      Domain.DLS.set in_task_key false;
      results.(i) <- Some r
    in
    let inline () =
      for i = 0 to n - 1 do
        exec i
      done
    in
    if t.domains = 1 || n = 1 || in_task () then inline ()
    else begin
      let order = check_schedule n schedule in
      let b = { exec; n; order; next = 0; unfinished = n } in
      Mutex.lock t.lock;
      let installed =
        match t.batch with
        | Some _ -> false (* a concurrent submitter owns the pool *)
        | None ->
          if t.stopped then
            invalid_arg "Pool.run: pool has been shut down";
          t.batch <- Some b;
          Condition.broadcast t.work;
          true
      in
      if not installed then begin
        Mutex.unlock t.lock;
        inline ()
      end
      else begin
        (* Help until the hand-out queue drains, then wait for stragglers. *)
        let rec help () =
          match take_index b with
          | Some i ->
            Mutex.unlock t.lock;
            exec i;
            Mutex.lock t.lock;
            finish_one t b;
            help ()
          | None -> ()
        in
        help ();
        while b.unfinished > 0 do
          Condition.wait t.finished t.lock
        done;
        t.batch <- None;
        Mutex.unlock t.lock
      end
    end;
    Array.map (function Some r -> r | None -> assert false) results
  end

let run ?schedule t fns =
  (* Worker-domain trace events: the decision is taken here, on the
     submitting domain — which must be the ring owner — before hand-out.
     Each task then runs under a domain-local capture buffer (even when
     the submitter helps execute it), and after the batch barrier the
     buffers are injected in task-index order, one trace lane per task
     ([tid = 2 + index]). Nested runs skip this so inner tasks buffer
     into their outer task's lane; [run_captured] callers (the batch
     Runner) keep the old behavior — owner-helped tasks write the ring
     directly, worker events drop. *)
  let tracing = Trace.enabled () && Trace.owned () && not (in_task ()) in
  let bufs = if tracing then Array.make (Array.length fns) [] else [||] in
  let fns =
    if tracing then
      Array.mapi
        (fun i fn () -> Trace.with_capture (fun evs -> bufs.(i) <- evs) fn)
        fns
    else fns
  in
  let results = run_captured ?schedule t fns in
  (* Merge first — even failed tasks recorded work, exactly as a
     sequential run records everything up to the raise — then surface
     the lowest-index failure. *)
  Array.iter (fun (_, cap) -> Metrics.merge cap) results;
  if tracing then Array.iteri (fun i evs -> Trace.inject ~tid:(2 + i) evs) bufs;
  Array.iter
    (fun (r, _) -> match r with Error e -> raise e | Ok _ -> ())
    results;
  Array.map
    (fun (r, _) -> match r with Ok v -> v | Error _ -> assert false)
    results

let runner t = { Table.run = (fun fns -> run t fns); width = t.domains }
