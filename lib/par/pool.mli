(** Fixed-size domain pool with bit-deterministic batch semantics.

    A pool created with [~domains:n] executes task batches on exactly
    [n] domains: the submitting domain plus [n - 1] worker domains
    spawned once at {!create} and reused across batches. Batches use
    chunked static hand-out — tasks are taken by index (or by an
    explicit {e schedule} permutation, the perturbation hook of the
    determinism tests) and results land in per-index slots.

    {b Determinism contract} (DESIGN §13). Scheduling can never change
    an outcome:

    - results are returned in task-index order, whatever the completion
      order;
    - every task runs under {!Repair_obs.Metrics.capture}, and {!run}
      merges the captures on the submitting domain in task-index order
      after the barrier — counters and histogram buckets aggregate to
      exactly the sequential totals;
    - a task exception is a value in its slot, not a pool failure:
      the batch always runs to completion, the pool stays usable, and
      {!run} re-raises the {e lowest-index} exception after merging;
    - {!Repair_obs.Trace} events from pool tasks are captured
      domain-locally ({!Repair_obs.Trace.with_capture}) and injected
      into the ring after the barrier, in task-index order, one trace
      lane per task ([tid = 2 + index]) — so worker spans appear in the
      export, request context intact, without the workers ever touching
      the single-writer ring. {!run_captured} skips this (its callers
      predate lanes and expect owner-only streams), and nested [run]s
      buffer into the enclosing task's lane. {!Repair_runtime.Fault}
      checkpoints from worker domains remain no-ops.

    Nested parallelism is guarded, not an error: {!run} called from
    inside a pool task (any pool) executes its tasks inline on the
    calling domain, in index order. The same fallback covers pools of
    one domain and a pool whose single batch slot is already taken by a
    concurrent submitter, so [run] never deadlocks. *)

type t

(** [create ~domains] spawns [domains - 1] worker domains (so [1] spawns
    none and all execution is inline).
    @raise Invalid_argument if [domains < 1]. Failures spawning domains
    (resource exhaustion) re-raise after releasing any workers that did
    start; no dedicated exit code — the CLI reports them as internal
    errors. *)
val create : domains:int -> t

(** The configured domain count (total, including the submitter). *)
val domains : t -> int

(** [run ?schedule t tasks] executes the batch and returns results in
    task-index order; merges all task metrics captures in task-index
    order; then re-raises the lowest-index task exception, if any.
    [schedule] permutes only the hand-out order (a determinism-test
    hook); it cannot affect the result.
    @raise Invalid_argument if [schedule] is not a permutation of the
    task indices, or if the pool was {!shutdown}. *)
val run : ?schedule:int array -> t -> (unit -> 'a) array -> 'a array

(** [run_captured] is {!run} without the merge/re-raise step: each
    task's outcome is paired with its unmerged metrics capture, letting
    callers that need sequential interleaving semantics (the batch
    runner's journal writer) merge each capture at the exact point the
    task would have run inline. *)
val run_captured :
  ?schedule:int array -> t -> (unit -> 'a) array ->
  (('a, exn) result * Repair_obs.Metrics.captured) array

(** The pool as a {!Repair_relational.Table.runner}, for the parallel
    grouping entry points. *)
val runner : t -> Repair_relational.Table.runner

(** True while the calling domain is executing a pool task (the nested
    fallback trigger). *)
val in_task : unit -> bool

(** [shutdown t] joins the workers; idempotent. Subsequent {!run} calls
    raise. {!create} installs no finalizer — long-lived callers (the
    serving daemon) own the pool lifecycle explicitly. *)
val shutdown : t -> unit

(** [with_pool ~domains f] — bracketed create/shutdown. *)
val with_pool : domains:int -> (t -> 'a) -> 'a
