(** A pipelined load generator for the repair-serve daemon.

    Drives a running server over its newline-delimited JSON protocol:
    opens [connections] sockets, pipelines [requests] randomly generated
    repair requests across them (optionally interleaving {e poison}
    requests — well-formed envelopes with garbage payloads — and raw
    {e malformed} lines), then reads replies until every line sent has
    been answered or [wall_timeout_s] expires. Single-threaded; a
    [select] loop keeps all connections moving, so a full server output
    buffer cannot deadlock the generator.

    Latency is measured per request id from kernel write to reply line
    and recorded in a log-bucketed {!Repair_obs.Histogram}, so [p99]
    is deterministic for a given set of observations. Replies are
    classified by outcome: [ok] (further split by [degraded]), shed
    ([overloaded]/[quota-exceeded]/[draining]), failed (any other
    [ok:false]), and protocol errors (replies to malformed lines).

    The generator is the client half of the overload drills in [ci.sh]
    and the [repair-cli load] subcommand; tests drive {!Repair_serve}
    engines directly instead. *)

type target = Unix_sock of string | Tcp of int

type spec = {
  requests : int;  (** repair requests to send (excluding poison/malformed) *)
  connections : int;  (** sockets to spread the burst across *)
  op : Repair_serve.Protocol.op;  (** [S_repair], [U_repair] or [Classify] *)
  n_rows : int;  (** rows per generated table *)
  n_attrs : int;
  n_fds : int;
  noise : float;  (** cell perturbation rate of the dirty tables *)
  distinct_fd_sets : int;  (** schemas cycled across requests (cache churn) *)
  poison_every : int option;  (** every k-th request gets unparsable FDs *)
  malformed_every : int option;  (** every k-th line is raw non-JSON garbage *)
  timeout_s : float option;  (** per-request budget sent on the wire *)
  strategy : Repair_serve.Protocol.strategy option;
  wall_timeout_s : float;  (** give up waiting for replies after this *)
  seed : int;
  retries : int;
      (** max retry attempts per shed request (0, the default, disables
          retries). A request answered [overloaded]/[quota-exceeded]/
          [draining] is re-sent after a jittered exponential backoff —
          [retry_backoff_ms * 2^(attempt-1) * U\[0.5, 1.5)] — drawn
          from the seeded Rng, so retry schedules are reproducible. *)
  retry_backoff_ms : int;  (** base backoff for the first retry (50) *)
}

val default_spec : spec

type report = {
  sent : int;  (** request lines written, including poison and malformed *)
  answered : int;  (** reply lines received *)
  ok : int;
  degraded : int;  (** subset of [ok] with [degraded:true] *)
  shed : int;
      (** {e terminal} shed replies — [overloaded]/[quota-exceeded]/
          [draining] with retries disabled or exhausted. A shed reply
          that schedules a retry counts in [retried] instead, so every
          answered reply lands in exactly one outcome bucket. *)
  failed : int;  (** other [ok:false] replies (parse, budget, internal...) *)
  protocol_errors : int;  (** replies classified [protocol]/[oversized] *)
  unanswered : int;  (** sent - answered at [wall_timeout_s] *)
  retried : int;
      (** shed replies that scheduled a retry (the retry line itself
          counts in [sent] again once flushed) *)
  wall_s : float;
  latency : Repair_obs.Histogram.t;  (** seconds, per answered request id *)
  rolling : Repair_obs.Json.t;
      (** client-side {!Repair_obs.Timeseries.to_json}: 0.5 s windows
          over the generator's own counters and latency histogram
          (names [load.sent], [load.answered], [load.ok], [load.shed],
          [load.retried], [load.latency], gauge [load.outstanding]),
          with the final partial window force-closed — for
          cross-checking windowed rates and rolling tails against the
          server's [stats] op *)
}

(** [run spec target] executes one burst against a listening server.

    @raise Failure when the target cannot be connected. *)
val run : spec -> target -> report

(** [report_json r] summarises [r] (latency via
    {!Repair_obs.Histogram.summary_json}; [rolling] passed through).
    Asserts the accounting identities
    [sent = answered + unanswered] and
    [answered = ok + shed + failed + protocol_errors + retried]. *)
val report_json : report -> Repair_obs.Json.t

(** Same identities asserted as {!report_json}. *)
val pp_report : Format.formatter -> report -> unit
