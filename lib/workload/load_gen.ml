module Protocol = Repair_serve.Protocol
module Json = Repair_obs.Json
module Histogram = Repair_obs.Histogram
module Timeseries = Repair_obs.Timeseries
open Repair_relational
open Repair_fd

type target = Unix_sock of string | Tcp of int

type spec = {
  requests : int;
  connections : int;
  op : Protocol.op;
  n_rows : int;
  n_attrs : int;
  n_fds : int;
  noise : float;
  distinct_fd_sets : int;
  poison_every : int option;
  malformed_every : int option;
  timeout_s : float option;
  strategy : Protocol.strategy option;
  wall_timeout_s : float;
  seed : int;
  retries : int;
  retry_backoff_ms : int;
}

let default_spec =
  {
    requests = 50;
    connections = 4;
    op = Protocol.S_repair;
    n_rows = 30;
    n_attrs = 4;
    n_fds = 2;
    noise = 0.1;
    distinct_fd_sets = 4;
    poison_every = None;
    malformed_every = None;
    timeout_s = Some 5.0;
    strategy = None;
    wall_timeout_s = 60.0;
    seed = 7;
    retries = 0;
    retry_backoff_ms = 50;
  }

type report = {
  sent : int;
  answered : int;
  ok : int;
  degraded : int;
  shed : int;
  failed : int;
  protocol_errors : int;
  unanswered : int;
  retried : int;
  wall_s : float;
  latency : Histogram.t;
  rolling : Json.t;
}

(* One outbound line: [id] is the correlation key for latency ([None]
   for deliberately malformed lines, whose replies carry a null id). *)
type line = { text : string; id : string option }

type conn = {
  fd : Unix.file_descr;
  mutable outbox : line list;  (** head is in flight *)
  mutable out_off : int;  (** bytes of the head already written *)
  inbox : Buffer.t;
  mutable alive : bool;
}

(* Render in the exact grammar [Fd_set.parse] accepts ([Fd_set.pp] adds
   set braces that the parser would read as attribute names). *)
let fd_render d =
  Fd_set.to_list d
  |> List.map (fun fd ->
         String.concat " " (Attr_set.to_list (Fd.lhs fd))
         ^ " -> "
         ^ String.concat " " (Attr_set.to_list (Fd.rhs fd)))
  |> String.concat "; "

let make_corpus spec =
  let rng = Rng.make spec.seed in
  let schemas =
    List.init (max 1 spec.distinct_fd_sets) (fun _ ->
        Gen_fd.random rng ~n_attrs:spec.n_attrs ~n_fds:spec.n_fds ~max_lhs:2)
  in
  let tspec =
    {
      Gen_table.default with
      n = spec.n_rows;
      noise = spec.noise;
      domain_size = max 4 (spec.n_rows / 4);
    }
  in
  let every k i = match k with Some k when k > 0 -> (i + 1) mod k = 0 | _ -> false in
  List.init spec.requests (fun i ->
      let id = Printf.sprintf "r%d" i in
      let jid = Json.String id in
      if every spec.poison_every i then
        (* Well-formed envelope, unparsable payload: must come back as a
           classified error while the server keeps serving. *)
        {
          text =
            Protocol.request_line ~id:jid ~op:spec.op
              ~fds:"this is not a functional dependency" ~table:"A\n1\n" ();
          id = Some id;
        }
      else
        let schema, d = List.nth schemas (i mod List.length schemas) in
        let table =
          match spec.op with
          | Protocol.Classify -> None
          | _ ->
            Some (Csv_io.to_string (Gen_table.dirty rng schema d tspec))
        in
        {
          text =
            Protocol.request_line ~id:jid ~op:spec.op ~fds:(fd_render d)
              ?table ?timeout_s:spec.timeout_s ?strategy:spec.strategy ();
          id = Some id;
        })

let malformed_lines spec n_requests =
  match spec.malformed_every with
  | Some k when k > 0 ->
    List.init (n_requests / k) (fun i ->
        let text =
          match i mod 3 with
          | 0 -> "this is not json\n"
          | 1 -> "{\"op\": \"s-repair\", \"fds\": 42}\n"
          | _ -> "{\"truncated\": \n"
        in
        { text; id = None })
  | _ -> []

(* Interleave malformed lines evenly through the request stream. *)
let interleave requests malformed =
  match malformed with
  | [] -> requests
  | _ ->
    let n = List.length requests and m = List.length malformed in
    let stride = max 1 (n / (m + 1)) in
    let rec weave i reqs mals acc =
      match (reqs, mals) with
      | [], rest -> List.rev_append acc rest
      | rest, [] -> List.rev_append acc rest
      | r :: rs, m :: ms ->
        if i > 0 && i mod stride = 0 then weave (i + 1) reqs ms (m :: acc)
        else weave (i + 1) rs mals (r :: acc)
    in
    weave 1 requests malformed []

let connect target =
  let domain, addr =
    match target with
    | Unix_sock path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | Tcp port ->
      (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_loopback, port))
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try Unix.connect fd addr
   with Unix.Unix_error (e, _, _) ->
     Unix.close fd;
     failwith
       (Printf.sprintf "load_gen: cannot connect: %s" (Unix.error_message e)));
  Unix.set_nonblock fd;
  { fd; outbox = []; out_off = 0; inbox = Buffer.create 4096; alive = true }

let classify_reply reply =
  let ok =
    match Json.member "ok" reply with Some (Json.Bool b) -> b | _ -> false
  in
  if ok then
    let degraded =
      match Json.member "degraded" reply with
      | Some (Json.Bool b) -> b
      | _ -> false
    in
    `Ok degraded
  else
    match
      Option.bind (Json.member "error" reply) (Json.member "class")
    with
    | Some (Json.String c)
      when c = Protocol.err_overloaded || c = Protocol.err_quota
           || c = Protocol.err_draining ->
      `Shed
    | Some (Json.String c)
      when c = Protocol.err_protocol || c = Protocol.err_oversized ->
      `Protocol
    | _ -> `Failed

let run spec target =
  if spec.requests < 1 then invalid_arg "Load_gen.run: requests must be >= 1";
  if spec.connections < 1 then
    invalid_arg "Load_gen.run: connections must be >= 1";
  let lines = interleave (make_corpus spec) (malformed_lines spec spec.requests) in
  let conns = Array.init spec.connections (fun _ -> connect target) in
  (* Round-robin the burst across connections up front; the select loop
     below just flushes outboxes and drains inboxes. *)
  List.iteri
    (fun i line ->
      let c = conns.(i mod spec.connections) in
      c.outbox <- c.outbox @ [ line ])
    lines;
  let sent_at : (string, float) Hashtbl.t = Hashtbl.create 256 in
  let latency = Histogram.create () in
  let sent = ref 0
  and answered = ref 0
  and ok = ref 0
  and degraded = ref 0
  and shed = ref 0
  and failed = ref 0
  and retried = ref 0
  and protocol_errors = ref 0 in
  (* Client-side rolling tails: the same {!Timeseries} machinery the
     server's [stats] op uses, pointed at the generator's own counters
     and latency histogram, so a drill can cross-check windowed rates
     and rolling quantiles from both ends of the wire. [skew] forces
     the final partial window closed when the burst ends, so short
     bursts still report at least one window. *)
  let skew = ref 0.0 in
  let ts_interval = 0.5 in
  let ts =
    Timeseries.create ~windows:240 ~interval_s:ts_interval
      ~clock:(fun () -> Unix.gettimeofday () +. !skew)
      {
        Timeseries.counters =
          (fun () ->
            [ ("load.sent", !sent);
              ("load.answered", !answered);
              ("load.ok", !ok);
              ("load.shed", !shed);
              ("load.retried", !retried) ]);
        histograms = (fun () -> [ ("load.latency", latency) ]);
        gauges =
          (fun () ->
            [ ("load.outstanding", float_of_int (!sent - !answered)) ]);
      }
  in
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. spec.wall_timeout_s in
  (* Client-side retry with jittered exponential backoff: a shed reply
     re-enqueues the same request line after
     backoff * 2^(attempt-1) * U[0.5, 1.5) seconds. The jitter comes
     from the spec's seeded Rng, so a load run is reproducible; spacing
     retries out (rather than hammering in lockstep) is what lets a
     drained or briefly overloaded server recover. *)
  let by_id : (string, line) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun l ->
      match l.id with Some id -> Hashtbl.replace by_id id l | None -> ())
    lines;
  let attempts : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let retry_rng = Rng.make (spec.seed + 0x5eed) in
  let retry_q : (float * line) list ref = ref [] in
  let next_conn = ref 0 in
  (* Returns whether a retry was actually scheduled: the caller counts
     the triggering reply in [retried] exactly when it was, and in
     [shed] otherwise — each reply lands in exactly one outcome
     bucket. *)
  let schedule_retry id =
    match Hashtbl.find_opt by_id id with
    | None -> false
    | Some l ->
      let k = 1 + (try Hashtbl.find attempts id with Not_found -> 0) in
      Hashtbl.replace attempts id k;
      let base = float_of_int spec.retry_backoff_ms /. 1000.0 in
      let backoff = base *. (2.0 ** float_of_int (k - 1)) in
      let jittered = backoff *. (0.5 +. Rng.float retry_rng 1.0) in
      retry_q := (Unix.gettimeofday () +. jittered, l) :: !retry_q;
      incr retried;
      true
  in
  let expected () =
    (* every fully flushed line earns exactly one reply line *)
    !sent
  in
  let handle_reply line =
    incr answered;
    match Json.of_string line with
    | Error _ -> incr failed
    | Ok reply ->
      let rid =
        match Json.member "id" reply with
        | Some (Json.String id) -> Some id
        | _ -> None
      in
      (match rid with
      | Some id -> (
        match Hashtbl.find_opt sent_at id with
        | Some t ->
          Histogram.observe latency (Unix.gettimeofday () -. t);
          Hashtbl.remove sent_at id
        | None -> ())
      | None -> ());
      (match classify_reply reply with
      | `Ok d ->
        incr ok;
        if d then incr degraded
      | `Shed ->
        (* A shed reply that earns a retry is counted once, in
           [retried]; only terminal sheds (retries disabled or
           exhausted) count in [shed]. *)
        let retrying =
          match rid with
          | Some id
            when spec.retries > 0
                 && (try Hashtbl.find attempts id with Not_found -> 0)
                    < spec.retries ->
            schedule_retry id
          | _ -> false
        in
        if not retrying then incr shed
      | `Protocol -> incr protocol_errors
      | `Failed -> incr failed)
  in
  (* Move due retries onto a live connection, round-robin. *)
  let release_due now =
    match !retry_q with
    | [] -> ()
    | q ->
      let due, later = List.partition (fun (at, _) -> at <= now) q in
      retry_q := later;
      List.iter
        (fun (_, l) ->
          let n = Array.length conns in
          let rec pick k =
            if k >= n then None
            else
              let c = conns.((!next_conn + k) mod n) in
              if c.alive then Some c else pick (k + 1)
          in
          incr next_conn;
          match pick 0 with
          | Some c -> c.outbox <- c.outbox @ [ l ]
          | None -> ())
        due
  in
  let drain_inbox c =
    let data = Buffer.contents c.inbox in
    let rec split from =
      match String.index_from_opt data from '\n' with
      | None ->
        Buffer.clear c.inbox;
        Buffer.add_substring c.inbox data from (String.length data - from)
      | Some nl ->
        handle_reply (String.sub data from (nl - from));
        split (nl + 1)
    in
    split 0
  in
  let kill c =
    if c.alive then begin
      c.alive <- false;
      (try Unix.close c.fd with Unix.Unix_error _ -> ());
      c.outbox <- []
    end
  in
  let pump_out c =
    match c.outbox with
    | [] -> ()
    | line :: rest -> (
      let len = String.length line.text in
      match
        Unix.write_substring c.fd line.text c.out_off (len - c.out_off)
      with
      | 0 -> ()
      | n ->
        c.out_off <- c.out_off + n;
        if c.out_off = len then begin
          c.outbox <- rest;
          c.out_off <- 0;
          incr sent;
          match line.id with
          | Some id -> Hashtbl.replace sent_at id (Unix.gettimeofday ())
          | None -> ()
        end
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
        ()
      | exception Unix.Unix_error _ -> kill c)
  in
  let pump_in c =
    let buf = Bytes.create 65536 in
    match Unix.read c.fd buf 0 (Bytes.length buf) with
    | 0 -> kill c
    | n ->
      Buffer.add_subbytes c.inbox buf 0 n;
      drain_inbox c
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
      ()
    | exception Unix.Unix_error _ -> kill c
  in
  let live () = Array.exists (fun c -> c.alive) conns in
  let outstanding () =
    Array.exists (fun c -> c.alive && c.outbox <> []) conns
    || !answered < expected ()
    || !retry_q <> []
  in
  let rec loop () =
    let now = Unix.gettimeofday () in
    release_due now;
    Timeseries.tick ts;
    if now >= deadline || (not (live ())) || not (outstanding ()) then ()
    else begin
      let readers =
        Array.to_list conns
        |> List.filter (fun c -> c.alive)
        |> List.map (fun c -> c.fd)
      in
      let writers =
        Array.to_list conns
        |> List.filter (fun c -> c.alive && c.outbox <> [])
        |> List.map (fun c -> c.fd)
      in
      let timeout = min 0.2 (deadline -. now) in
      let timeout =
        (* wake in time for the earliest scheduled retry *)
        List.fold_left
          (fun t (at, _) -> Float.min t (Float.max 0.0 (at -. now)))
          timeout !retry_q
      in
      match Unix.select readers writers [] timeout with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | rs, ws, _ ->
        Array.iter (fun c -> if c.alive && List.mem c.fd ws then pump_out c) conns;
        Array.iter (fun c -> if c.alive && List.mem c.fd rs then pump_in c) conns;
        loop ()
    end
  in
  loop ();
  Array.iter kill conns;
  skew := ts_interval;
  Timeseries.tick ts;
  {
    sent = !sent;
    answered = !answered;
    ok = !ok;
    degraded = !degraded;
    shed = !shed;
    failed = !failed;
    protocol_errors = !protocol_errors;
    unanswered = !sent - !answered;
    retried = !retried;
    wall_s = Unix.gettimeofday () -. t0;
    latency;
    rolling = Timeseries.to_json ts;
  }

(* The accounting identities: every line sent is answered or not, and
   every reply lands in exactly one outcome bucket ([retried] holds the
   shed replies that scheduled a retry). Checked at reporting time so a
   classification regression fails loudly rather than skewing tallies. *)
let check_identities r =
  assert (r.sent = r.answered + r.unanswered);
  assert (r.answered = r.ok + r.shed + r.failed + r.protocol_errors + r.retried)

let report_json r =
  check_identities r;
  Json.Obj
    [ ("sent", Json.Int r.sent);
      ("answered", Json.Int r.answered);
      ("ok", Json.Int r.ok);
      ("degraded", Json.Int r.degraded);
      ("shed", Json.Int r.shed);
      ("failed", Json.Int r.failed);
      ("protocol_errors", Json.Int r.protocol_errors);
      ("unanswered", Json.Int r.unanswered);
      ("retried", Json.Int r.retried);
      ("wall_s", Json.Float r.wall_s);
      ("latency", Histogram.summary_json r.latency);
      ("rolling", r.rolling) ]

let pp_report ppf r =
  check_identities r;
  Fmt.pf ppf
    "sent %d answered %d (ok %d, degraded %d, shed %d, failed %d, protocol \
     %d, unanswered %d, retried %d) in %.2fs; latency p50 %.4fs p99 %.4fs"
    r.sent r.answered r.ok r.degraded r.shed r.failed r.protocol_errors
    r.unanswered r.retried r.wall_s
    (Histogram.quantile r.latency 0.5)
    (Histogram.quantile r.latency 0.99)
