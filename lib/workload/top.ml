module Json = Repair_obs.Json
module Histogram = Repair_obs.Histogram

type sample = {
  stats : Json.t;
  totals : (string * int) list;
  serve : Json.t;
  exposition : string;
}

(* Blocking one-shot client: the operator view has no pipelining needs,
   so a plain connect / write line / read line keeps the failure modes
   obvious. *)
let fetch target =
  let domain, addr =
    match target with
    | Load_gen.Unix_sock path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | Load_gen.Tcp port ->
      (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_loopback, port))
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  let finally () = try Unix.close fd with Unix.Unix_error _ -> () in
  match
    Fun.protect ~finally (fun () ->
        Unix.connect fd addr;
        let line = "{\"id\": \"top\", \"op\": \"stats\"}\n" in
        let _ = Unix.write_substring fd line 0 (String.length line) in
        let buf = Buffer.create 4096 in
        let chunk = Bytes.create 65536 in
        let rec read_line () =
          if Buffer.length buf > 0 && Buffer.nth buf (Buffer.length buf - 1) = '\n'
          then ()
          else
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 -> ()
            | n ->
              (match Bytes.index_from_opt chunk 0 '\n' with
              | Some i when i < n -> Buffer.add_subbytes buf chunk 0 (i + 1)
              | _ ->
                Buffer.add_subbytes buf chunk 0 n;
                read_line ())
        in
        read_line ();
        Buffer.contents buf)
  with
  | exception Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "top: cannot reach server: %s" (Unix.error_message e))
  | "" -> Error "top: server closed the connection without a reply"
  | line -> (
    match Json.of_string line with
    | Error e -> Error (Printf.sprintf "top: unparsable stats reply: %s" e)
    | Ok reply -> (
      match Json.member "ok" reply with
      | Some (Json.Bool true) ->
        let obj k = Option.value ~default:(Json.Obj []) (Json.member k reply) in
        let totals =
          match Json.member "totals" reply with
          | Some (Json.Obj kvs) ->
            List.filter_map
              (fun (k, v) -> Option.map (fun n -> (k, n)) (Json.int_value v))
              kvs
          | _ -> []
        in
        let exposition =
          match Json.member "exposition" reply with
          | Some (Json.String s) -> s
          | _ -> ""
        in
        Ok { stats = obj "stats"; totals; serve = obj "serve"; exposition }
      | _ ->
        Error
          (Printf.sprintf "top: server refused the stats op: %s"
             (String.trim line))))

let exposition s = s.exposition

(* {2 Pulling fields out of the stats object} *)

let float_member k j =
  Option.bind (Json.member k j) Json.float_value |> Option.value ~default:0.0

let obj_members k j =
  match Json.member k j with Some (Json.Obj kvs) -> kvs | _ -> []

let rates s =
  obj_members "rates" s.stats
  |> List.filter_map (fun (k, v) ->
         Option.map (fun f -> (k, f)) (Json.float_value v))

let gauges s =
  obj_members "gauges" s.stats
  |> List.filter_map (fun (k, v) ->
         Option.map (fun f -> (k, f)) (Json.float_value v))

(* Rolling per-histogram tails, rebuilt from the summary JSON so the
   quantile estimator is the library's own. *)
let rolling s =
  obj_members "rolling" s.stats
  |> List.filter_map (fun (k, v) ->
         match Histogram.of_summary_json v with
         | Ok h -> Some (k, h)
         | Error _ -> None)

let n_windows s =
  match Json.member "windows" s.stats with
  | Some (Json.List ws) -> List.length ws
  | _ -> 0

let span_s s = float_member "span_s" s.stats

(* {2 Streaming-repair derivations}

   The stream row condenses the [stream.*] counters: tick throughput
   from the windowed rate, the affected-block ratio (dirty blocks
   re-solved per live block scanned — the locality the incremental
   engine is selling), and the block-cache hit rate. All three are
   hidden until the daemon has actually ticked a stream session. *)

let total k s = match List.assoc_opt k s.totals with Some n -> n | None -> 0

let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den

type stream_row = {
  ticks : int;
  ticks_per_s : float;
  affected_ratio : float;  (** dirty blocks / live blocks, cumulative *)
  cache_hit_rate : float;  (** block-cache hits / (hits + misses) *)
}

let stream s =
  match total "stream.ticks" s with
  | 0 -> None
  | ticks ->
    let hits = total "stream.block-cache.hit" s in
    Some
      {
        ticks;
        ticks_per_s =
          (match List.assoc_opt "stream.ticks" (rates s) with
          | Some r -> r
          | None -> 0.0);
        affected_ratio =
          ratio (total "stream.dirty-blocks" s) (total "stream.blocks" s);
        cache_hit_rate =
          ratio hits (hits + total "stream.block-cache.miss" s);
      }

let serve_str k s =
  match Option.bind (Json.member k s.serve) Json.string_value with
  | Some v -> v
  | None -> "?"

let serve_int k s =
  match Option.bind (Json.member k s.serve) Json.int_value with
  | Some v -> v
  | None -> 0

(* {2 Rendering} *)

(* One stable [key value] pair per line, keys sorted within each group —
   the [--once] contract scripts grep against. *)
let pp_machine ppf s =
  let kv fmt = Format.fprintf ppf fmt in
  kv "windows %d@." (n_windows s);
  kv "span_s %.3f@." (span_s s);
  kv "mode %s@." (serve_str "mode" s);
  kv "queue_depth %d@." (serve_int "queue_depth" s);
  List.iter (fun (k, v) -> kv "gauge.%s %g@." k v) (gauges s);
  List.iter (fun (k, v) -> kv "rate.%s %g@." k v) (rates s);
  List.iter
    (fun (k, h) ->
      kv "p50.%s_ms %.3f@." k (Histogram.quantile h 0.5 *. 1000.0);
      kv "p99.%s_ms %.3f@." k (Histogram.quantile h 0.99 *. 1000.0);
      kv "rolling_count.%s %d@." k (Histogram.count h))
    (rolling s);
  (match stream s with
  | None -> ()
  | Some r ->
    kv "stream.ticks_per_s %g@." r.ticks_per_s;
    kv "stream.affected_ratio %g@." r.affected_ratio;
    kv "stream.cache_hit_rate %g@." r.cache_hit_rate);
  List.iter (fun (k, v) -> kv "total.%s %d@." k v) s.totals

let pp_dashboard ppf s =
  let pf fmt = Format.fprintf ppf fmt in
  pf "repair-serve  mode %s  queue %d (max %d)  completed %d  shed %d@."
    (serve_str "mode" s)
    (serve_int "queue_depth" s)
    (serve_int "queue_depth_max" s)
    (serve_int "completed" s) (serve_int "shed" s);
  pf "rolling window: %d samples spanning %.1fs@." (n_windows s) (span_s s);
  (match gauges s with
  | [] -> ()
  | gs ->
    pf "@.GAUGES@.";
    List.iter (fun (k, v) -> pf "  %-28s %10g@." k v) gs);
  (match rates s with
  | [] -> pf "@.RATES: no closed windows yet@."
  | rs ->
    pf "@.RATES (per second)@.";
    List.iter (fun (k, v) -> pf "  %-28s %10.2f@." k v) rs);
  (match rolling s with
  | [] -> ()
  | hs ->
    pf "@.TAILS (rolling, ms)      %10s %10s %10s %8s@." "p50" "p90" "p99"
      "count";
    List.iter
      (fun (k, h) ->
        let q p = Histogram.quantile h p *. 1000.0 in
        pf "  %-22s %10.3f %10.3f %10.3f %8d@." k (q 0.5) (q 0.9) (q 0.99)
          (Histogram.count h))
      hs);
  (match stream s with
  | None -> ()
  | Some r ->
    pf "@.STREAM@.";
    pf "  %-28s %10d@." "ticks" r.ticks;
    pf "  %-28s %10.2f@." "ticks/s" r.ticks_per_s;
    pf "  %-28s %10.2f%%@." "affected blocks" (100.0 *. r.affected_ratio);
    pf "  %-28s %10.2f%%@." "block-cache hits" (100.0 *. r.cache_hit_rate));
  (match s.totals with
  | [] -> ()
  | ts ->
    pf "@.TOTALS (since boot)@.";
    List.iter (fun (k, v) -> pf "  %-28s %10d@." k v) ts)
