(** The client half of the [repair-cli top] operator view: fetch one
    [stats] reply from a running repair-serve daemon and render it.

    {!fetch} opens a blocking one-shot connection, sends a single
    [stats] request, and parses the reply into a {!sample}: the rolling
    time-series object ({!Repair_obs.Timeseries.to_json} shape), the
    cumulative counter totals, the ["serve"] accounting section, and the
    Prometheus-style text exposition.

    Two renderers share the sample: {!pp_machine} prints stable
    [key value] lines for scripts ([repair-cli top --once]), and
    {!pp_dashboard} prints the human view the live [top] loop redraws.
    Rolling tails are rebuilt via {!Repair_obs.Histogram.of_summary_json}
    so quantiles come from the library's own estimator, not a client
    reimplementation. *)

type sample = {
  stats : Repair_obs.Json.t;  (** the reply's ["stats"] time-series object *)
  totals : (string * int) list;  (** cumulative counters, sorted by name *)
  serve : Repair_obs.Json.t;  (** the ["serve"] accounting section *)
  exposition : string;  (** Prometheus-style text exposition *)
}

(** [fetch target] — one blocking [stats] round-trip. [Error] carries a
    human-readable reason (unreachable server, refused op, unparsable
    reply); it never raises. *)
val fetch : Load_gen.target -> (sample, string) result

val exposition : sample -> string

(** Windowed per-second counter rates, as served. *)
val rates : sample -> (string * float) list

(** Gauges sampled at the newest window's close. *)
val gauges : sample -> (string * float) list

(** Rolling histograms (merged per-window deltas), rebuilt from the
    summary JSON; entries that fail to parse are dropped. *)
val rolling : sample -> (string * Repair_obs.Histogram.t) list

(** Closed windows currently held by the server's ring. *)
val n_windows : sample -> int

(** Seconds covered by the held windows. *)
val span_s : sample -> float

(** The streaming-repair row, condensed from the [stream.*] counters
    (DESIGN §16). *)
type stream_row = {
  ticks : int;
  ticks_per_s : float;  (** windowed rate of [stream.ticks] *)
  affected_ratio : float;  (** dirty blocks / live blocks, cumulative *)
  cache_hit_rate : float;  (** block-cache hits / (hits + misses) *)
}

(** [stream s] is [None] until the daemon has ticked a stream session
    ([total.stream.ticks = 0]). *)
val stream : sample -> stream_row option

(** Stable machine-readable lines, one [key value] pair each:
    [windows]/[span_s]/[mode]/[queue_depth], then [gauge.*], [rate.*],
    [p50.*_ms]/[p99.*_ms]/[rolling_count.*], then — only once stream
    ticks exist — [stream.ticks_per_s]/[stream.affected_ratio]/
    [stream.cache_hit_rate], then [total.*]. *)
val pp_machine : Format.formatter -> sample -> unit

(** The live dashboard body: header, gauges, rates, rolling tails, the
    STREAM section (hidden until ticks exist), cumulative totals. *)
val pp_dashboard : Format.formatter -> sample -> unit
