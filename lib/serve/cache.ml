module Json = Repair_obs.Json
module Metrics = Repair_obs.Metrics

type ('k, 'v) t = {
  name : string;
  capacity : int;
  table : ('k, 'v * int ref) Hashtbl.t;  (** value, last-touch tick *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  (* Counter names are built once here, not per lookup. *)
  hit_name : string;
  miss_name : string;
  evict_name : string;
}

let create ~name ~capacity =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  {
    name;
    capacity;
    table = Hashtbl.create (min capacity 64);
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    hit_name = name ^ ".hit";
    miss_name = name ^ ".miss";
    evict_name = name ^ ".evict";
  }

let capacity t = t.capacity
let length t = Hashtbl.length t.table

let touch t recency =
  t.tick <- t.tick + 1;
  recency := t.tick

let find t k =
  match Hashtbl.find_opt t.table k with
  | Some (v, recency) ->
    touch t recency;
    t.hits <- t.hits + 1;
    Metrics.incr t.hit_name;
    Some v
  | None ->
    t.misses <- t.misses + 1;
    Metrics.incr t.miss_name;
    None

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun k (_, recency) acc ->
        match acc with
        | Some (_, best) when best <= !recency -> acc
        | _ -> Some (k, !recency))
      t.table None
  in
  match victim with
  | None -> ()
  | Some (k, _) ->
    Hashtbl.remove t.table k;
    t.evictions <- t.evictions + 1;
    Metrics.incr t.evict_name

let add t k v =
  if not (Hashtbl.mem t.table k) && Hashtbl.length t.table >= t.capacity then
    evict_lru t;
  t.tick <- t.tick + 1;
  Hashtbl.replace t.table k (v, ref t.tick)

let find_or_add t k produce =
  match find t k with
  | Some v -> v
  | None ->
    let v = produce () in
    add t k v;
    v

let remove t k = Hashtbl.remove t.table k

let clear t =
  let n = Hashtbl.length t.table in
  Hashtbl.reset t.table;
  n

type stats = { hits : int; misses : int; evictions : int; size : int }

let stats (t : ('k, 'v) t) : stats =
  { hits = t.hits; misses = t.misses; evictions = t.evictions;
    size = Hashtbl.length t.table }

let stats_json t =
  Json.Obj
    [ ("name", Json.String t.name);
      ("capacity", Json.Int t.capacity);
      ("size", Json.Int (Hashtbl.length t.table));
      ("hits", Json.Int t.hits);
      ("misses", Json.Int t.misses);
      ("evictions", Json.Int t.evictions) ]
