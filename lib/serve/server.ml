module Json = Repair_obs.Json
module Metrics = Repair_obs.Metrics
module Trace = Repair_obs.Trace
module Trace_export = Repair_obs.Trace_export
module Budget = Repair_runtime.Budget
module E = Repair_runtime.Repair_error

type listen = Unix_sock of string | Tcp of int

let exit_drain_cancelled = 10
let max_conn_out_bytes = 16 * 1024 * 1024

type exec =
  conn:int ->
  degraded:bool ->
  budget:Budget.t ->
  Protocol.request ->
  (string * Json.t) list

type conn = {
  fd : Unix.file_descr;
  cid : int;
  mutable inbuf : string;  (** partial line carried between reads *)
  out_q : string Queue.t;
  mutable out_off : int;  (** bytes of the queue head already written *)
  mutable out_bytes : int;
  mutable quota_used : int;
  mutable skipping : bool;  (** discarding the rest of an oversized line *)
  mutable last_read : float;
      (** last moment read progress was made; deadline base while a
          partial line is buffered *)
  mutable last_write : float;
      (** last moment write progress was made; deadline base while
          replies are pending *)
}

let listen_name = function
  | Unix_sock path -> path
  | Tcp port -> Printf.sprintf "127.0.0.1:%d" port

let write_snapshot engine metrics_out =
  let text =
    Json.to_string ~pretty:true (Engine.snapshot_json engine) ^ "\n"
  in
  match metrics_out with
  | Some "-" ->
    print_string text;
    flush stdout
  | Some path ->
    (* Atomic (tmp + fsync + rename): a crash mid-flush must never leave
       a torn snapshot for monitoring to misread. *)
    Repair_runtime.Io_fault.write_file_atomic path text
  | None ->
    prerr_string text;
    flush stderr

(* Extract complete lines out of [conn.inbuf ^ chunk], respecting the
   oversized-line discard mode, and leave any partial tail buffered.
   [on_line] sees each complete line (newline stripped); [on_oversized]
   is called once per over-limit line, complete or still partial. *)
let feed ~max_bytes conn chunk ~on_line ~on_oversized =
  let data = if conn.inbuf = "" then chunk else conn.inbuf ^ chunk in
  conn.inbuf <- "";
  let n = String.length data in
  let start = ref 0 in
  for i = 0 to n - 1 do
    if data.[i] = '\n' then begin
      if conn.skipping then conn.skipping <- false
      else begin
        let len = i - !start in
        let len = if len > 0 && data.[i - 1] = '\r' then len - 1 else len in
        let line = String.sub data !start len in
        if String.length line > max_bytes then on_oversized ()
        else on_line line
      end;
      start := i + 1
    end
  done;
  if not conn.skipping then begin
    let rest = String.sub data !start (n - !start) in
    if String.length rest > max_bytes then begin
      (* The line is already over budget with no newline in sight: answer
         now and discard until the terminator shows up. *)
      on_oversized ();
      conn.skipping <- true
    end
    else conn.inbuf <- rest
  end

let run ?(config = Engine.default_config) ?on_invalidate ?metrics_out
    ?slow_log ?trace_out ?pool ~exec listen =
  (* Slow-request records are JSONL, one line per offending request,
     flushed eagerly — the log exists to be tailed while the incident is
     happening. *)
  let slow_chan =
    match slow_log with
    | Some "-" -> Some (stdout, false)
    | Some path ->
      Some (open_out_gen [ Open_append; Open_creat ] 0o644 path, true)
    | None -> None
  in
  let on_slow record =
    let line = Json.to_string record ^ "\n" in
    match slow_chan with
    | Some (ch, _) ->
      output_string ch line;
      flush ch
    | None ->
      prerr_string line;
      flush stderr
  in
  let close_slow () =
    match slow_chan with
    | Some (ch, owned) -> if owned then close_out_noerr ch
    | None -> ()
  in
  let engine = Engine.create ?on_invalidate ~on_slow config in
  Metrics.reset ();
  Metrics.enable ();
  (* With a trace destination, the serve owns the (single-writer) trace
     ring for its lifetime: request spans land on the owner lane, and —
     with a pool — worker-domain spans are captured and injected on
     per-task lanes, every event stamped with its wire request id. *)
  if trace_out <> None then Trace.enable ();
  let drain_requested = ref false in
  let install signal =
    Sys.signal signal (Sys.Signal_handle (fun _ -> drain_requested := true))
  in
  let old_term = install Sys.sigterm in
  let old_int = install Sys.sigint in
  let old_pipe =
    (* Writes to vanished clients must surface as EPIPE, not kill us. *)
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ | Sys_error _ -> None
  in
  let restore_signals () =
    Sys.set_signal Sys.sigterm old_term;
    Sys.set_signal Sys.sigint old_int;
    match old_pipe with
    | Some behavior -> Sys.set_signal Sys.sigpipe behavior
    | None -> ()
  in
  let lfd, cleanup_listen =
    try
      match listen with
      | Unix_sock path ->
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind fd (Unix.ADDR_UNIX path);
        Unix.listen fd 64;
        (fd, fun () -> (try Unix.unlink path with Unix.Unix_error _ -> ()))
      | Tcp port ->
        let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        Unix.listen fd 64;
        (fd, fun () -> ())
    with Unix.Unix_error (err, fn, _) ->
      restore_signals ();
      E.raise_error
        (Io
           {
             file = listen_name listen;
             detail = Printf.sprintf "%s: %s" fn (Unix.error_message err);
           })
  in
  Unix.set_nonblock lfd;
  Fmt.epr "repair-serve: listening on %s@." (listen_name listen);
  let conns : (int, conn) Hashtbl.t = Hashtbl.create 16 in
  let next_cid = ref 0 in
  let listening = ref true in
  let drain_budget = ref None in
  let read_buf = Bytes.create 65536 in
  let close_conn c =
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    Hashtbl.remove conns c.cid
  in
  let enqueue_out c line =
    (* The write-stall clock measures pending-output-without-progress, so
       it restarts when the queue goes from empty to non-empty — a conn
       that flushed its last reply long ago must get the full deadline
       for this one, not be charged for the idle time in between. *)
    if Queue.is_empty c.out_q then c.last_write <- Unix.gettimeofday ();
    Queue.push line c.out_q;
    c.out_bytes <- c.out_bytes + String.length line;
    if c.out_bytes > max_conn_out_bytes then begin
      (* A reader this slow would otherwise grow the buffer without
         bound — disconnecting it is the OOM-safe answer. *)
      Metrics.incr "serve.slow-client-drops";
      close_conn c
    end
  in
  let route cid line =
    match Hashtbl.find_opt conns cid with
    | Some c -> enqueue_out c line
    | None -> () (* client left; the outcome is already accounted *)
  in
  let flush_conn c =
    let closed = ref false in
    let progress = ref true in
    while (not !closed) && !progress && not (Queue.is_empty c.out_q) do
      let head = Queue.peek c.out_q in
      let len = String.length head - c.out_off in
      match Unix.write_substring c.fd head c.out_off len with
      | written ->
        c.out_bytes <- c.out_bytes - written;
        if written > 0 then c.last_write <- Unix.gettimeofday ();
        if written = len then begin
          ignore (Queue.pop c.out_q);
          c.out_off <- 0
        end
        else begin
          c.out_off <- c.out_off + written;
          progress := false
        end
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
        progress := false
      | exception Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) ->
        closed := true
    done;
    if !closed then close_conn c
  in
  (* Per-connection progress deadlines (slow-loris / slow-reader
     defense): a connection holding a partial request line, or replies
     it will not read, must make progress within its deadline or it is
     evicted. Wholly idle connections (no partial input, nothing to
     write) are legitimate keep-alive and never evicted. Returns the
     earliest pending deadline so the select timeout can wake for it. *)
  let evict_stalled now =
    let victims = ref [] in
    let nearest = ref None in
    let consider d =
      nearest :=
        Some (match !nearest with None -> d | Some n -> Float.min n d)
    in
    Hashtbl.iter
      (fun _ c ->
        (match config.Engine.write_deadline_s with
        | Some d when not (Queue.is_empty c.out_q) ->
          if now -. c.last_write > d then victims := (c, `Write) :: !victims
          else consider (c.last_write +. d)
        | _ -> ());
        match config.Engine.read_deadline_s with
        | Some d when c.inbuf <> "" || c.skipping ->
          if now -. c.last_read > d then victims := (c, `Read) :: !victims
          else consider (c.last_read +. d)
        | _ -> ())
      conns;
    List.iter
      (fun (c, side) ->
        Metrics.incr "serve.evictions";
        Metrics.incr
          (match side with
          | `Read -> "serve.read-evictions"
          | `Write -> "serve.write-evictions");
        (* Best-effort goodbye on a read-stall: the socket buffer is
           almost certainly empty, but the client owes us nothing, so a
           single nonblocking write attempt is all it gets. A
           write-stalled client is not accepting bytes by definition. *)
        (match side with
        | `Read ->
          let line =
            Protocol.error_line ~id:Json.Null
              ~error_class:Protocol.err_deadline
              ~detail:"no request progress within read deadline; disconnecting"
          in
          (try
             ignore (Unix.write_substring c.fd line 0 (String.length line))
           with Unix.Unix_error _ -> ())
        | `Write -> ());
        close_conn c)
      !victims;
    !nearest
  in
  let begin_drain () =
    if Engine.mode engine = `Accepting then Engine.drain engine;
    if !listening then begin
      listening := false;
      (try Unix.close lfd with Unix.Unix_error _ -> ());
      cleanup_listen ()
    end;
    if !drain_budget = None then
      drain_budget :=
        Some (Budget.create ~timeout_s:config.Engine.drain_deadline_s ())
  in
  let drain_remaining () = Option.bind !drain_budget Budget.remaining_s in
  let budget_for (req : Protocol.request) =
    let base =
      match req.Protocol.timeout_s with
      | Some s -> Some s
      | None -> config.Engine.default_timeout_s
    in
    let timeout_s =
      (* During drain every request budget is additionally capped by the
         remaining drain allowance, so in-flight work cannot outlive the
         deadline by more than one checkpoint interval. *)
      match (drain_remaining (), base) with
      | Some rem, Some b -> Some (Float.max 0.001 (Float.min rem b))
      | Some rem, None -> Some (Float.max 0.001 rem)
      | None, b -> b
    in
    let max_steps =
      match (req.Protocol.max_steps, config.Engine.max_steps_cap) with
      | Some a, Some b -> Some (min a b)
      | Some a, None -> Some a
      | None, cap -> cap
    in
    Budget.create ?timeout_s ?max_steps ()
  in
  let exec_wrapped ~conn ~degraded req =
    exec ~conn ~degraded ~budget:(budget_for req) req
  in
  let handle_line_for c line =
    match
      Engine.handle_line engine ~conn:c.cid ~quota_used:c.quota_used line
    with
    | `Reply reply -> enqueue_out c reply
    | `Enqueued -> c.quota_used <- c.quota_used + 1
    | `Drain reply ->
      enqueue_out c reply;
      drain_requested := true
  in
  let handle_readable c =
    match Unix.read c.fd read_buf 0 (Bytes.length read_buf) with
    | 0 -> close_conn c
    | n ->
      c.last_read <- Unix.gettimeofday ();
      feed ~max_bytes:config.Engine.max_request_bytes c
        (Bytes.sub_string read_buf 0 n)
        ~on_line:(fun line -> handle_line_for c line)
        ~on_oversized:(fun () ->
          enqueue_out c (Engine.reject_oversized engine))
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error ((ECONNRESET | EPIPE | EBADF), _, _) ->
      close_conn c
  in
  let accept_ready () =
    let continue = ref !listening in
    while !continue do
      match Unix.accept ~cloexec:true lfd with
      | fd, _ ->
        Unix.set_nonblock fd;
        incr next_cid;
        let now = Unix.gettimeofday () in
        Hashtbl.add conns !next_cid
          {
            fd;
            cid = !next_cid;
            inbuf = "";
            out_q = Queue.create ();
            out_off = 0;
            out_bytes = 0;
            quota_used = 0;
            skipping = false;
            last_read = now;
            last_write = now;
          };
        Metrics.incr "serve.connections"
      | exception
          Unix.Unix_error
            ((EAGAIN | EWOULDBLOCK | EINTR | ECONNABORTED), _, _) ->
        continue := false
    done
  in
  let out_pending () =
    Hashtbl.fold
      (fun _ c acc -> acc || not (Queue.is_empty c.out_q))
      conns false
  in
  (* Best-effort flush window after the deadline fires: push what we can
     for a short, bounded moment, then give up. *)
  let flush_briefly () =
    let give_up = Budget.create ~timeout_s:0.5 () in
    let deadline_ok () =
      match Budget.remaining_s give_up with
      | Some r -> r > 0.0
      | None -> false
    in
    while out_pending () && deadline_ok () do
      let wfds =
        Hashtbl.fold
          (fun _ c acc ->
            if Queue.is_empty c.out_q then acc else (c.fd, c) :: acc)
          conns []
      in
      match Unix.select [] (List.map fst wfds) [] 0.05 with
      | _, writable, _ ->
        List.iter
          (fun (fd, c) -> if List.memq fd writable then flush_conn c)
          wfds
      | exception Unix.Unix_error (EINTR, _, _) -> ()
    done
  in
  let finished = ref false in
  while not !finished do
    (* Window boundaries for the rolling stats: once per poll iteration,
       so gauge samples and window closes track the poll cadence (and
       thus lag the configured interval by at most one poll timeout). *)
    Engine.tick_stats engine;
    if !drain_requested || Engine.mode engine = `Draining then begin_drain ();
    let queue_empty = Engine.queue_depth engine = 0 in
    if Engine.mode engine = `Draining && queue_empty && not (out_pending ())
    then finished := true
    else begin
      match drain_remaining () with
      | Some remaining when remaining <= 0.0 ->
        List.iter
          (fun (cid, line) -> route cid line)
          (Engine.cancel_remaining engine);
        flush_briefly ();
        finished := true
      | _ ->
        let next_deadline = evict_stalled (Unix.gettimeofday ()) in
        let fd_conns =
          Hashtbl.fold (fun _ c acc -> (c.fd, c) :: acc) conns []
        in
        let rfds =
          (if !listening then [ lfd ] else []) @ List.map fst fd_conns
        in
        let wfds =
          List.filter_map
            (fun (fd, c) ->
              if Queue.is_empty c.out_q then None else Some fd)
            fd_conns
        in
        let timeout =
          let base = if queue_empty then 0.2 else 0.0 in
          let base =
            (* Wake in time for the earliest connection deadline so
               eviction latency is bounded by the deadline itself, not
               by poll granularity. *)
            match next_deadline with
            | Some at ->
              Float.min base (Float.max 0.0 (at -. Unix.gettimeofday ()))
            | None -> base
          in
          match drain_remaining () with
          | Some remaining -> Float.min base (Float.max 0.0 remaining)
          | None -> base
        in
        let readable, writable, _ =
          try Unix.select rfds wfds [] timeout
          with Unix.Unix_error (EINTR, _, _) -> ([], [], [])
        in
        if !listening && List.memq lfd readable then accept_ready ();
        List.iter
          (fun (fd, c) -> if List.memq fd readable then handle_readable c)
          fd_conns;
        List.iter
          (fun (fd, c) ->
            if List.memq fd writable && Hashtbl.mem conns c.cid then
              flush_conn c)
          fd_conns;
        (* Drain up to [width] queued requests per poll: the pure halves
           run as pool tasks (or inline when no pool is given), then each
           request settles — counters, reply — on this domain, in
           take-order, so accounting and reply order match the
           sequential server exactly. Budgets are created here, before
           dispatch, because drain-deadline capping reads the drain
           state, which stays single-writer on this domain. *)
        let width =
          match pool with Some p -> Repair_par.Pool.domains p | None -> 1
        in
        let rec take_batch k acc =
          if k = 0 then List.rev acc
          else
            match Engine.take engine with
            | Some p -> take_batch (k - 1) (p :: acc)
            | None -> List.rev acc
        in
        (match take_batch width [] with
        | [] -> ()
        | [ p ] ->
          route p.Engine.conn (Engine.execute engine ~exec:exec_wrapped p)
        | batch -> (
          match pool with
          | None ->
            (* unreachable: width is 1 without a pool *)
            List.iter
              (fun p ->
                route p.Engine.conn
                  (Engine.execute engine ~exec:exec_wrapped p))
              batch
          | Some pool ->
            let prepared =
              List.map
                (fun p ->
                  let budget = budget_for p.Engine.request in
                  let exec ~conn ~degraded req =
                    exec ~conn ~degraded ~budget req
                  in
                  (p, fun () -> Engine.run_exec ~exec p))
                batch
            in
            let results =
              Repair_par.Pool.run pool
                (Array.of_list (List.map snd prepared))
            in
            List.iteri
              (fun i (p, _) ->
                route p.Engine.conn (Engine.settle engine p results.(i)))
              prepared))
    end
  done;
  flush_briefly ();
  Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
    conns;
  Hashtbl.reset conns;
  if !listening then begin
    (try Unix.close lfd with Unix.Unix_error _ -> ());
    cleanup_listen ()
  end;
  restore_signals ();
  write_snapshot engine metrics_out;
  (match trace_out with
  | Some path ->
    let doc =
      Trace_export.to_chrome (Trace.events ()) ~dropped:(Trace.dropped ())
    in
    Repair_runtime.Io_fault.write_file_atomic path (Json.to_string doc ^ "\n");
    Trace.disable ();
    Trace.reset ()
  | None -> ());
  close_slow ();
  if (Engine.counters engine).Engine.cancelled > 0 then exit_drain_cancelled
  else 0
