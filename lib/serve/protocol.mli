(** The repair-serve wire protocol: newline-delimited JSON.

    One request per line, one response line per request, in no
    guaranteed order (control requests are answered immediately while
    repair requests queue) — clients correlate by [id]. The codec is
    deliberately total: {e every} byte sequence a client can send maps
    to either a {!request} or a structured {!reject}; nothing raises.

    {2 Request grammar}

    {[
      { "id": <any scalar>,          // echoed back; null when absent
        "op": "s-repair" | "u-repair" | "classify" | "stream" | "ping"
            | "metrics" | "stats" | "invalidate-cache" | "drain",
        "fds": "A -> B; B -> C",     // repair + classify ops
        "table": "A,B\n1,2\n",       // repair ops; CSV or JSONL text
        "format": "csv" | "jsonl",   // of "table", default "csv"
        "strategy": "auto" | "poly" | "exact" | "approx",
        "timeout_s": 1.5,            // per-request wall budget
        "max_steps": 10000,          // per-request step budget
        "deltas": "{\"op\":...}\n" } // stream op: JSONL delta lines
    ]}

    Unknown fields are ignored (forward compatibility). Responses are
    [{"id", "ok": true, ...}] or
    [{"id", "ok": false, "error": {"class", "detail"}}]. *)

module Json = Repair_obs.Json

type op =
  | S_repair
  | U_repair
  | Classify  (** dichotomy/complexity report for the FD set *)
  | Stream
      (** apply JSONL deltas to this connection's streaming repair
          session and return the refreshed repair summary (DESIGN §16);
          queued through admission control like the repair ops *)
  | Ping
  | Metrics  (** snapshot of the live metrics registry + serve counters *)
  | Stats
      (** rolling time-series over the registry: windowed rates, rolling
          tail quantiles, sampled gauges, cumulative totals, and the
          Prometheus-style text exposition *)
  | Invalidate_cache  (** drop every warm FD-set cache entry *)
  | Drain  (** begin graceful drain, as if SIGTERM had arrived *)

val op_name : op -> string

(** [is_control op] — is [op] answered inline by the engine (true) or
    queued through admission control (false)? *)
val is_control : op -> bool

type format = Csv | Jsonl
type strategy = Auto | Poly | Exact | Approximate

type request = {
  id : Json.t;  (** echoed verbatim in the response; [Null] when absent *)
  op : op;
  fds : string;  (** [""] for control ops *)
  table : string;  (** [""] for non-repair ops *)
  format : format;
  strategy : strategy;
  timeout_s : float option;
  max_steps : int option;
  deltas : string;
      (** stream op only: newline-separated {!Repair_stream.Delta} lines;
          [""] otherwise. A stream request with a nonempty [table]
          (re)initializes the connection's session from it; with [""] it
          continues the existing session. *)
}

(** A structurally invalid request, already classified for the error
    response. [id] is recovered from the malformed request whenever the
    line at least parsed as a JSON object. *)
type reject = { id : Json.t; error_class : string; detail : string }

(** {2 Error classes}

    The closed set of [error.class] values a server may send. Requests
    that reached a solver reuse {!Repair_runtime.Repair_error.class_name}
    (["parse"], ["budget-exhausted"], ...) instead. *)

val err_protocol : string  (** malformed line / missing or bad fields *)

val err_oversized : string  (** line exceeded the request byte limit *)

val err_overloaded : string  (** shed: the admission queue is full *)

val err_quota : string  (** shed: per-connection request quota spent *)

val err_draining : string  (** shed: server is draining, no admission *)

val err_cancelled : string  (** admitted but cancelled by the drain deadline *)

val err_internal : string  (** unclassified server-side exception *)

val err_deadline : string
(** connection evicted: no read/write progress within its deadline
    (slow-loris / slow-reader defense) *)

(** [parse line] decodes one request line. Total: malformed input comes
    back as [Error reject], never an exception. *)
val parse : string -> (request, reject) result

val format_name : format -> string
val strategy_name : strategy -> string

(** [request_line ~id ~op ... ()] builds a request wire line (one compact
    JSON object plus ["\n"]) — the client-side dual of {!parse}. Omitted
    optional fields are left off the wire. *)
val request_line :
  id:Json.t ->
  op:op ->
  ?fds:string ->
  ?table:string ->
  ?format:format ->
  ?strategy:strategy ->
  ?timeout_s:float ->
  ?max_steps:int ->
  ?deltas:string ->
  unit ->
  string

(** {2 Response lines} — each is one compact JSON object plus ["\n"]. *)

val ok_line : id:Json.t -> (string * Json.t) list -> string
val error_line : id:Json.t -> error_class:string -> detail:string -> string
val reject_line : reject -> string
