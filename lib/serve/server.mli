(** The socket shell around {!Engine}: a single-threaded, select-driven
    daemon speaking the newline-delimited JSON {!Protocol} over a Unix
    or loopback-TCP socket.

    {2 Event loop}

    One [select] loop multiplexes the listening socket and every client
    connection; between polls it executes at most one admitted request,
    so I/O stays responsive while the queue drains. Requests remember
    their connection; replies to connections that have since closed are
    dropped (the accounting still records the outcome — a vanished
    client cannot corrupt the server's books). Per-connection buffers
    are bounded in both directions: request lines beyond the engine's
    [max_request_bytes] are answered with an [oversized] error and the
    rest of the line is discarded; a client that stops reading is
    disconnected once its pending output exceeds {!max_conn_out_bytes}.

    {2 Graceful drain}

    SIGTERM, SIGINT, or a [drain] request stops admission: the listening
    socket closes, queued requests keep executing — each under a budget
    capped by the remaining drain allowance
    ({!Repair_runtime.Budget.remaining_s}) — and when the drain deadline
    expires, still-queued requests are answered with structured
    [cancelled] errors. Either way the final metrics snapshot
    ({!Engine.snapshot_json}) is flushed before exit, so
    [admitted = completed + quarantined + cancelled] holds in the last
    thing the daemon writes.

    {2 Exit codes}

    {!run} returns the process exit code: [0] — clean drain, every
    admitted request executed; {!exit_drain_cancelled} ([10]) — the
    drain deadline forced cancellations. The caller [exit]s with it. *)

module Json = Repair_obs.Json

type listen =
  | Unix_sock of string  (** Unix-domain socket path (stale file replaced) *)
  | Tcp of int  (** TCP port, bound to 127.0.0.1 only *)

(** [10] — the drain deadline expired with requests still queued; they
    were cancelled (with structured replies), not silently dropped. *)
val exit_drain_cancelled : int

(** Pending output cap per connection (16 MiB); slower readers are
    disconnected rather than buffered without bound. *)
val max_conn_out_bytes : int

(** The Driver-backed executor contract: [budget] is the per-request
    budget already capped by the server (request [timeout_s]/[max_steps],
    the configured defaults, and — during drain — the remaining drain
    allowance). See {!Engine.exec} for [degraded] and error handling. *)
type exec =
  conn:int ->
  degraded:bool ->
  budget:Repair_runtime.Budget.t ->
  Protocol.request ->
  (string * Json.t) list

(** [run ?config ?on_invalidate ?metrics_out ?slow_log ?pool ~exec
    listen] serves until a drain completes, then writes the final
    snapshot to [metrics_out] (a path, ["-"] for stdout; default stderr)
    and returns the exit code. Enables {!Repair_obs.Metrics} for the
    lifetime of the serve. SIGTERM/SIGINT handlers are installed for the
    duration and restored on exit.

    [slow_log] is where slow-request records go when the engine's
    [slow_ms] threshold is configured: a path (appended, created 0644),
    ["-"] for stdout, default stderr. One JSON record per line, flushed
    per record.

    [trace_out] enables the {!Repair_obs.Trace} ring for the serve's
    lifetime and writes the Chrome trace-event document there (atomic
    write) after drain. Request spans carry their wire request id as
    [args.req]; with [pool], worker-domain spans ride per-task lanes
    ([tid >= 2]) via capture/injection.

    The poll loop ticks the engine's rolling time-series once per
    iteration ({!Engine.tick_stats}), so the [stats] op served from a
    live daemon carries windows that close within one poll timeout of
    the configured interval.

    With [pool], each poll drains up to [Repair_par.Pool.domains pool]
    queued requests: their pure halves ({!Engine.run_exec}) run as pool
    tasks, and each request then settles ({!Engine.settle}) on the
    server's domain in take-order — replies, counters, and the
    accounting identity are exactly those of the sequential server. The
    admission ladder is untouched: budgets are computed before dispatch
    on the owning domain, so drain-deadline capping still sees a
    single-writer drain state. The pool is borrowed, not owned; the
    caller shuts it down.

    @raise Repair_runtime.Repair_error.Error ([Io]) when the socket
    cannot be bound. *)
val run :
  ?config:Engine.config ->
  ?on_invalidate:(unit -> int) ->
  ?metrics_out:string ->
  ?slow_log:string ->
  ?trace_out:string ->
  ?pool:Repair_par.Pool.t ->
  exec:exec ->
  listen ->
  int
