module Json = Repair_obs.Json

type op =
  | S_repair
  | U_repair
  | Classify
  | Stream
  | Ping
  | Metrics
  | Stats
  | Invalidate_cache
  | Drain

let op_name = function
  | S_repair -> "s-repair"
  | U_repair -> "u-repair"
  | Classify -> "classify"
  | Stream -> "stream"
  | Ping -> "ping"
  | Metrics -> "metrics"
  | Stats -> "stats"
  | Invalidate_cache -> "invalidate-cache"
  | Drain -> "drain"

let op_of_name = function
  | "s-repair" -> Some S_repair
  | "u-repair" -> Some U_repair
  | "classify" -> Some Classify
  | "stream" -> Some Stream
  | "ping" -> Some Ping
  | "metrics" -> Some Metrics
  | "stats" -> Some Stats
  | "invalidate-cache" -> Some Invalidate_cache
  | "drain" -> Some Drain
  | _ -> None

let is_control = function
  | Ping | Metrics | Stats | Invalidate_cache | Drain -> true
  | S_repair | U_repair | Classify | Stream -> false

type format = Csv | Jsonl
type strategy = Auto | Poly | Exact | Approximate

type request = {
  id : Json.t;
  op : op;
  fds : string;
  table : string;
  format : format;
  strategy : strategy;
  timeout_s : float option;
  max_steps : int option;
  deltas : string;
}

type reject = { id : Json.t; error_class : string; detail : string }

let err_protocol = "protocol"
let err_oversized = "oversized"
let err_overloaded = "overloaded"
let err_quota = "quota-exceeded"
let err_draining = "draining"
let err_cancelled = "cancelled"
let err_internal = "internal"
let err_deadline = "deadline-exceeded"

exception Bad of string

let parse line =
  let id_of obj = Option.value (Json.member "id" obj) ~default:Json.Null in
  match Json.of_string line with
  | Error msg ->
    Error { id = Json.Null; error_class = err_protocol; detail = msg }
  | Ok (Json.Obj _ as obj) -> (
    let id = id_of obj in
    let fail fmt = Fmt.kstr (fun m -> raise (Bad m)) fmt in
    let string_field ?default key =
      match Json.member key obj with
      | None | Some Json.Null -> (
        match default with
        | Some d -> d
        | None -> fail "missing required field %S" key)
      | Some (Json.String s) -> s
      | Some _ -> fail "field %S must be a string" key
    in
    try
      let op =
        let name = string_field "op" in
        match op_of_name name with
        | Some op -> op
        | None -> fail "unknown op %S" name
      in
      let fds =
        if is_control op then "" else string_field "fds"
      in
      let table =
        match op with
        | S_repair | U_repair -> string_field "table"
        (* A stream request without a table continues (or starts empty)
           the connection's session; with a table it (re)initializes. *)
        | Stream -> string_field ~default:"" "table"
        | _ -> ""
      in
      let format =
        match string_field ~default:"csv" "format" with
        | "csv" -> Csv
        | "jsonl" -> Jsonl
        | f -> fail "unknown format %S (want \"csv\" or \"jsonl\")" f
      in
      let strategy =
        match string_field ~default:"auto" "strategy" with
        | "auto" -> Auto
        | "poly" -> Poly
        | "exact" -> Exact
        | "approx" -> Approximate
        | s -> fail "unknown strategy %S" s
      in
      let timeout_s =
        match Json.member "timeout_s" obj with
        | None | Some Json.Null -> None
        | Some j -> (
          match Json.float_value j with
          | Some f when f > 0.0 -> Some f
          | _ -> fail "field \"timeout_s\" must be a positive number")
      in
      let max_steps =
        match Json.member "max_steps" obj with
        | None | Some Json.Null -> None
        | Some (Json.Int i) when i >= 1 -> Some i
        | Some _ -> fail "field \"max_steps\" must be a positive integer"
      in
      let deltas =
        match op with Stream -> string_field ~default:"" "deltas" | _ -> ""
      in
      Ok { id; op; fds; table; format; strategy; timeout_s; max_steps; deltas }
    with Bad detail -> Error { id; error_class = err_protocol; detail })
  | Ok _ ->
    Error
      {
        id = Json.Null;
        error_class = err_protocol;
        detail = "request must be a JSON object";
      }

let format_name = function Csv -> "csv" | Jsonl -> "jsonl"

let strategy_name = function
  | Auto -> "auto"
  | Poly -> "poly"
  | Exact -> "exact"
  | Approximate -> "approx"

let request_line ~id ~op ?fds ?table ?format ?strategy ?timeout_s ?max_steps
    ?deltas () =
  let opt name f = function None -> [] | Some v -> [ (name, f v) ] in
  Json.to_string
    (Json.Obj
       ([ ("id", id); ("op", Json.String (op_name op)) ]
       @ opt "fds" (fun s -> Json.String s) fds
       @ opt "table" (fun s -> Json.String s) table
       @ opt "format" (fun f -> Json.String (format_name f)) format
       @ opt "strategy" (fun s -> Json.String (strategy_name s)) strategy
       @ opt "timeout_s" (fun f -> Json.Float f) timeout_s
       @ opt "max_steps" (fun i -> Json.Int i) max_steps
       @ opt "deltas" (fun s -> Json.String s) deltas))
  ^ "\n"

let ok_line ~id fields =
  Json.to_string (Json.Obj (("id", id) :: ("ok", Json.Bool true) :: fields))
  ^ "\n"

let error_line ~id ~error_class ~detail =
  Json.to_string
    (Json.Obj
       [ ("id", id);
         ("ok", Json.Bool false);
         ( "error",
           Json.Obj
             [ ("class", Json.String error_class);
               ("detail", Json.String detail) ] ) ])
  ^ "\n"

let reject_line r =
  error_line ~id:r.id ~error_class:r.error_class ~detail:r.detail
