(** Bounded LRU cache for warm cross-request state.

    The serving daemon keeps normalized FD sets and dichotomy verdicts
    warm between requests; this is the container that makes that reuse
    {e bounded} (strict capacity, least-recently-used eviction) and
    {e observable} (hit/miss/eviction counters, reported both through
    {!stats_json} and — when enabled — the {!Repair_obs.Metrics}
    registry as ["<name>.hit"], ["<name>.miss"], ["<name>.evict"]).

    Explicit invalidation ({!clear}, or per-key {!remove}) is part of
    the contract: a cache bug must be fixable at runtime without a
    restart, and cross-request leakage is bounded by the capacity.

    Not thread-safe — same single-domain contract as the rest of the
    runtime. Eviction scans for the least recent entry, O(capacity);
    capacities here are tens to hundreds, not millions. *)

type ('k, 'v) t

(** [create ~name ~capacity] — an empty cache holding at most
    [capacity] entries. [name] prefixes the metrics counters.
    @raise Invalid_argument when [capacity < 1]. *)
val create : name:string -> capacity:int -> ('k, 'v) t

val capacity : ('k, 'v) t -> int
val length : ('k, 'v) t -> int

(** [find t k] — the cached value, bumping [k]'s recency. Counts a hit
    or a miss. *)
val find : ('k, 'v) t -> 'k -> 'v option

(** [add t k v] inserts or replaces [k], evicting the least recently
    used entry if the cache is full. *)
val add : ('k, 'v) t -> 'k -> 'v -> unit

(** [find_or_add t k produce] — [find], or [produce ()] then [add]. If
    [produce] raises, nothing is cached: a poison key (e.g. a malformed
    FD set) is re-evaluated — and re-fails — on every lookup rather than
    poisoning the cache. *)
val find_or_add : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v

(** [remove t k] — explicit single-key invalidation. *)
val remove : ('k, 'v) t -> 'k -> unit

(** [clear t] — explicit full invalidation; returns how many entries
    were dropped. Hit/miss/eviction statistics survive. *)
val clear : ('k, 'v) t -> int

type stats = { hits : int; misses : int; evictions : int; size : int }

val stats : ('k, 'v) t -> stats

(** [{"name", "capacity", "size", "hits", "misses", "evictions"}] *)
val stats_json : ('k, 'v) t -> Repair_obs.Json.t
