module Json = Repair_obs.Json
module Metrics = Repair_obs.Metrics
module E = Repair_runtime.Repair_error

type config = {
  queue_capacity : int;
  degrade_watermark : int;
  quota : int option;
  default_timeout_s : float option;
  max_steps_cap : int option;
  drain_deadline_s : float;
  max_request_bytes : int;
  read_deadline_s : float option;
  write_deadline_s : float option;
}

let default_config =
  {
    queue_capacity = 64;
    degrade_watermark = 32;
    quota = None;
    default_timeout_s = Some 10.0;
    max_steps_cap = None;
    drain_deadline_s = 5.0;
    max_request_bytes = 8 * 1024 * 1024;
    read_deadline_s = Some 30.0;
    write_deadline_s = Some 30.0;
  }

type admission = Normal | Downgraded

type pending = {
  conn : int;
  request : Protocol.request;
  admission : admission;
}

type counters = {
  received : int;
  admitted : int;
  completed : int;
  degraded : int;
  shed : int;
  quarantined : int;
  cancelled : int;
  protocol_errors : int;
  queue_depth_max : int;
}

type state = {
  mutable received : int;
  mutable admitted : int;
  mutable completed : int;
  mutable degraded : int;
  mutable shed : int;
  mutable quarantined : int;
  mutable cancelled : int;
  mutable protocol_errors : int;
  mutable queue_depth_max : int;
}

type t = {
  config : config;
  queue : pending Queue.t;
  c : state;
  mutable mode : [ `Accepting | `Draining ];
  on_invalidate : unit -> int;
}

let create ?(on_invalidate = fun () -> 0) config =
  if config.queue_capacity < 1 then
    invalid_arg "Engine.create: queue_capacity must be >= 1";
  if
    config.degrade_watermark < 1
    || config.degrade_watermark > config.queue_capacity
  then
    invalid_arg
      "Engine.create: degrade_watermark must be in 1..queue_capacity";
  (match config.quota with
  | Some q when q < 1 -> invalid_arg "Engine.create: quota must be >= 1"
  | _ -> ());
  if config.drain_deadline_s <= 0.0 then
    invalid_arg "Engine.create: drain_deadline_s must be positive";
  if config.max_request_bytes < 2 then
    invalid_arg "Engine.create: max_request_bytes must be >= 2";
  (match config.read_deadline_s with
  | Some d when d <= 0.0 ->
    invalid_arg "Engine.create: read_deadline_s must be positive"
  | _ -> ());
  (match config.write_deadline_s with
  | Some d when d <= 0.0 ->
    invalid_arg "Engine.create: write_deadline_s must be positive"
  | _ -> ());
  {
    config;
    queue = Queue.create ();
    c =
      {
        received = 0;
        admitted = 0;
        completed = 0;
        degraded = 0;
        shed = 0;
        quarantined = 0;
        cancelled = 0;
        protocol_errors = 0;
        queue_depth_max = 0;
      };
    mode = `Accepting;
    on_invalidate;
  }

let config t = t.config
let mode t = t.mode
let drain t = t.mode <- `Draining
let queue_depth t = Queue.length t.queue

let accounting_json t =
  Json.Obj
    [ ("received", Json.Int t.c.received);
      ("admitted", Json.Int t.c.admitted);
      ("completed", Json.Int t.c.completed);
      ("degraded", Json.Int t.c.degraded);
      ("shed", Json.Int t.c.shed);
      ("quarantined", Json.Int t.c.quarantined);
      ("cancelled", Json.Int t.c.cancelled);
      ("protocol_errors", Json.Int t.c.protocol_errors);
      ("queue_depth", Json.Int (Queue.length t.queue));
      ("queue_depth_max", Json.Int t.c.queue_depth_max);
      ( "mode",
        Json.String
          (match t.mode with
          | `Accepting -> "accepting"
          | `Draining -> "draining") ) ]

let snapshot_json t =
  match Metrics.snapshot () with
  | Json.Obj fields -> Json.Obj (("serve", accounting_json t) :: fields)
  | other -> Json.Obj [ ("serve", accounting_json t); ("metrics", other) ]

let balanced t =
  t.c.admitted
  = t.c.completed + t.c.quarantined + t.c.cancelled + Queue.length t.queue

let counters t : counters =
  {
    received = t.c.received;
    admitted = t.c.admitted;
    completed = t.c.completed;
    degraded = t.c.degraded;
    shed = t.c.shed;
    quarantined = t.c.quarantined;
    cancelled = t.c.cancelled;
    protocol_errors = t.c.protocol_errors;
    queue_depth_max = t.c.queue_depth_max;
  }

let shed t ~id ~error_class ~detail =
  t.c.shed <- t.c.shed + 1;
  Metrics.incr "serve.shed";
  `Reply (Protocol.error_line ~id ~error_class ~detail)

let reject_oversized t =
  t.c.received <- t.c.received + 1;
  t.c.protocol_errors <- t.c.protocol_errors + 1;
  Metrics.incr "serve.protocol-errors";
  Protocol.error_line ~id:Json.Null ~error_class:Protocol.err_oversized
    ~detail:
      (Printf.sprintf "request line exceeds %d bytes"
         t.config.max_request_bytes)

let handle_line t ~conn ~quota_used line =
  t.c.received <- t.c.received + 1;
  match Protocol.parse line with
  | Error reject ->
    t.c.protocol_errors <- t.c.protocol_errors + 1;
    Metrics.incr "serve.protocol-errors";
    `Reply (Protocol.reject_line reject)
  | Ok req -> (
    let id = req.Protocol.id in
    match req.Protocol.op with
    | Protocol.Ping -> `Reply (Protocol.ok_line ~id [ ("pong", Json.Bool true) ])
    | Protocol.Metrics ->
      `Reply (Protocol.ok_line ~id [ ("snapshot", snapshot_json t) ])
    | Protocol.Invalidate_cache ->
      let dropped = t.on_invalidate () in
      `Reply
        (Protocol.ok_line ~id
           [ ("invalidated", Json.Bool true); ("entries", Json.Int dropped) ])
    | Protocol.Drain ->
      drain t;
      `Drain (Protocol.ok_line ~id [ ("draining", Json.Bool true) ])
    | Protocol.S_repair | Protocol.U_repair | Protocol.Classify ->
      if t.mode = `Draining then
        shed t ~id ~error_class:Protocol.err_draining
          ~detail:"server is draining; no new work is admitted"
      else if
        match t.config.quota with
        | Some q -> quota_used >= q
        | None -> false
      then
        shed t ~id ~error_class:Protocol.err_quota
          ~detail:
            (Printf.sprintf "connection quota of %d repair requests spent"
               (Option.get t.config.quota))
      else begin
        let depth = Queue.length t.queue in
        if depth >= t.config.queue_capacity then
          shed t ~id ~error_class:Protocol.err_overloaded
            ~detail:
              (Printf.sprintf "queue depth %d at capacity %d" depth
                 t.config.queue_capacity)
        else begin
          let admission =
            if depth >= t.config.degrade_watermark then Downgraded
            else Normal
          in
          t.c.admitted <- t.c.admitted + 1;
          Metrics.incr "serve.admitted";
          Queue.push { conn; request = req; admission } t.queue;
          t.c.queue_depth_max <-
            max t.c.queue_depth_max (Queue.length t.queue);
          `Enqueued
        end
      end)

type exec = degraded:bool -> Protocol.request -> (string * Json.t) list

let take t = Queue.take_opt t.queue

(* The execute step is split in two so a domain pool can run the solver
   halves of several queued requests concurrently: [run_exec] is the
   pure half — solver call, isolation boundary, wall-clock — touching no
   engine state, so it is safe on a worker domain; [settle] is the
   mutating half — counters, metrics, the reply line — and always runs
   on the engine's owning domain, in take-order, preserving the
   accounting identity and the reply order of the sequential server. *)

type executed = {
  result : ((string * Json.t) list, string * string) result;
  wall_s : float;
}

let run_exec ~exec p =
  let downgraded = p.admission = Downgraded in
  let t0 = Unix.gettimeofday () in
  let result =
    (* The per-request isolation boundary: classified errors keep their
       class, everything else — including a stack overflow from an
       adversarial instance — becomes an [internal] reply. Nothing a
       request does can unwind past this point. *)
    match exec ~degraded:downgraded p.request with
    | fields -> Ok fields
    | exception E.Error e -> Error (E.class_name e, E.to_string e)
    | exception Stack_overflow -> Error (Protocol.err_internal, "stack overflow")
    | exception exn -> Error (Protocol.err_internal, Printexc.to_string exn)
  in
  { result; wall_s = Unix.gettimeofday () -. t0 }

let settle t p executed =
  let id = p.request.Protocol.id in
  let downgraded = p.admission = Downgraded in
  Metrics.observe
    ("serve." ^ Protocol.op_name p.request.Protocol.op)
    executed.wall_s;
  Metrics.incr "serve.requests";
  match executed.result with
  | Ok fields ->
    t.c.completed <- t.c.completed + 1;
    let solver_degraded =
      match List.assoc_opt "degraded" fields with
      | Some (Json.Bool b) -> b
      | _ -> false
    in
    let degraded = downgraded || solver_degraded in
    if degraded then begin
      t.c.degraded <- t.c.degraded + 1;
      Metrics.incr "serve.degraded"
    end;
    let fields =
      List.filter (fun (k, _) -> k <> "degraded") fields
      @ [ ("degraded", Json.Bool degraded) ]
      @ if downgraded then [ ("downgraded", Json.String "overload") ] else []
    in
    Protocol.ok_line ~id fields
  | Error (error_class, detail) ->
    t.c.quarantined <- t.c.quarantined + 1;
    Metrics.incr "serve.quarantined";
    Protocol.error_line ~id ~error_class ~detail

let execute t ~exec p = settle t p (run_exec ~exec p)

let cancel_remaining t =
  let cancelled = ref [] in
  Queue.iter
    (fun p ->
      t.c.cancelled <- t.c.cancelled + 1;
      Metrics.incr "serve.cancelled";
      cancelled :=
        ( p.conn,
          Protocol.error_line ~id:p.request.Protocol.id
            ~error_class:Protocol.err_cancelled
            ~detail:"drain deadline expired before the request ran" )
        :: !cancelled)
    t.queue;
  Queue.clear t.queue;
  List.rev !cancelled
