module Json = Repair_obs.Json
module Metrics = Repair_obs.Metrics
module Trace = Repair_obs.Trace
module Timeseries = Repair_obs.Timeseries
module Expo = Repair_obs.Expo
module E = Repair_runtime.Repair_error

type config = {
  queue_capacity : int;
  degrade_watermark : int;
  quota : int option;
  default_timeout_s : float option;
  max_steps_cap : int option;
  drain_deadline_s : float;
  max_request_bytes : int;
  read_deadline_s : float option;
  write_deadline_s : float option;
  slow_ms : float option;
  stats_interval_s : float;
  stats_windows : int;
}

let default_config =
  {
    queue_capacity = 64;
    degrade_watermark = 32;
    quota = None;
    default_timeout_s = Some 10.0;
    max_steps_cap = None;
    drain_deadline_s = 5.0;
    max_request_bytes = 8 * 1024 * 1024;
    read_deadline_s = Some 30.0;
    write_deadline_s = Some 30.0;
    slow_ms = None;
    stats_interval_s = 1.0;
    stats_windows = 60;
  }

type admission = Normal | Downgraded

type pending = {
  conn : int;
  request : Protocol.request;
  admission : admission;
  req_id : string;
  enqueued_at : float;
}

type counters = {
  received : int;
  admitted : int;
  completed : int;
  degraded : int;
  shed : int;
  quarantined : int;
  cancelled : int;
  protocol_errors : int;
  queue_depth_max : int;
}

type state = {
  mutable received : int;
  mutable admitted : int;
  mutable completed : int;
  mutable degraded : int;
  mutable shed : int;
  mutable quarantined : int;
  mutable cancelled : int;
  mutable protocol_errors : int;
  mutable queue_depth_max : int;
  mutable in_flight : int;
}

type t = {
  config : config;
  queue : pending Queue.t;
  c : state;
  mutable mode : [ `Accepting | `Draining ];
  on_invalidate : unit -> int;
  on_slow : Json.t -> unit;
  ts : Timeseries.t;
}

let create ?(on_invalidate = fun () -> 0) ?(on_slow = fun _ -> ()) ?clock
    config =
  if config.queue_capacity < 1 then
    invalid_arg "Engine.create: queue_capacity must be >= 1";
  if
    config.degrade_watermark < 1
    || config.degrade_watermark > config.queue_capacity
  then
    invalid_arg
      "Engine.create: degrade_watermark must be in 1..queue_capacity";
  (match config.quota with
  | Some q when q < 1 -> invalid_arg "Engine.create: quota must be >= 1"
  | _ -> ());
  if config.drain_deadline_s <= 0.0 then
    invalid_arg "Engine.create: drain_deadline_s must be positive";
  if config.max_request_bytes < 2 then
    invalid_arg "Engine.create: max_request_bytes must be >= 2";
  (match config.read_deadline_s with
  | Some d when d <= 0.0 ->
    invalid_arg "Engine.create: read_deadline_s must be positive"
  | _ -> ());
  (match config.write_deadline_s with
  | Some d when d <= 0.0 ->
    invalid_arg "Engine.create: write_deadline_s must be positive"
  | _ -> ());
  (match config.slow_ms with
  | Some ms when ms < 0.0 ->
    invalid_arg "Engine.create: slow_ms must be non-negative"
  | _ -> ());
  if config.stats_interval_s <= 0.0 then
    invalid_arg "Engine.create: stats_interval_s must be positive";
  if config.stats_windows < 1 then
    invalid_arg "Engine.create: stats_windows must be >= 1";
  let queue = Queue.create () in
  let c =
    {
      received = 0;
      admitted = 0;
      completed = 0;
      degraded = 0;
      shed = 0;
      quarantined = 0;
      cancelled = 0;
      protocol_errors = 0;
      queue_depth_max = 0;
      in_flight = 0;
    }
  in
  let gauges () =
    [ ("serve.in_flight", float_of_int c.in_flight);
      ("serve.queue_depth", float_of_int (Queue.length queue)) ]
  in
  {
    config;
    queue;
    c;
    mode = `Accepting;
    on_invalidate;
    on_slow;
    ts =
      Timeseries.of_metrics ~gauges ~windows:config.stats_windows
        ~interval_s:config.stats_interval_s ?clock ();
  }

let config t = t.config
let mode t = t.mode
let drain t = t.mode <- `Draining
let queue_depth t = Queue.length t.queue
let in_flight t = t.c.in_flight
let timeseries t = t.ts

(* One window boundary check; the server poll loop calls this every
   iteration, so window closes track the configured interval to within
   one poll timeout. *)
let tick_stats t = Timeseries.tick t.ts

let gauges_now t =
  [ ("serve.in_flight", float_of_int t.c.in_flight);
    ("serve.queue_depth", float_of_int (Queue.length t.queue)) ]

let exposition t =
  Expo.render ~counters:(Metrics.counters ()) ~gauges:(gauges_now t)
    ~histograms:(Metrics.histograms ()) ()

let accounting_json t =
  Json.Obj
    [ ("received", Json.Int t.c.received);
      ("admitted", Json.Int t.c.admitted);
      ("completed", Json.Int t.c.completed);
      ("degraded", Json.Int t.c.degraded);
      ("shed", Json.Int t.c.shed);
      ("quarantined", Json.Int t.c.quarantined);
      ("cancelled", Json.Int t.c.cancelled);
      ("protocol_errors", Json.Int t.c.protocol_errors);
      ("queue_depth", Json.Int (Queue.length t.queue));
      ("queue_depth_max", Json.Int t.c.queue_depth_max);
      ( "mode",
        Json.String
          (match t.mode with
          | `Accepting -> "accepting"
          | `Draining -> "draining") ) ]

let snapshot_json t =
  match Metrics.snapshot () with
  | Json.Obj fields -> Json.Obj (("serve", accounting_json t) :: fields)
  | other -> Json.Obj [ ("serve", accounting_json t); ("metrics", other) ]

(* The [stats] payload: the windowed series, the cumulative counter
   totals (so a scraper can check that the windows' deltas sum to the
   same story the [metrics] op tells), the serve accounting section, and
   the text exposition ready to be written to a scrape endpoint. *)
let stats_fields t =
  [ ("stats", Timeseries.to_json t.ts);
    ( "totals",
      Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (Metrics.counters ()))
    );
    ("serve", accounting_json t);
    ("exposition", Json.String (exposition t)) ]

let balanced t =
  t.c.admitted
  = t.c.completed + t.c.quarantined + t.c.cancelled + Queue.length t.queue

let counters t : counters =
  {
    received = t.c.received;
    admitted = t.c.admitted;
    completed = t.c.completed;
    degraded = t.c.degraded;
    shed = t.c.shed;
    quarantined = t.c.quarantined;
    cancelled = t.c.cancelled;
    protocol_errors = t.c.protocol_errors;
    queue_depth_max = t.c.queue_depth_max;
  }

let shed t ~id ~error_class ~detail =
  t.c.shed <- t.c.shed + 1;
  Metrics.incr "serve.shed";
  `Reply (Protocol.error_line ~id ~error_class ~detail)

let reject_oversized t =
  t.c.received <- t.c.received + 1;
  t.c.protocol_errors <- t.c.protocol_errors + 1;
  Metrics.incr "serve.protocol-errors";
  Protocol.error_line ~id:Json.Null ~error_class:Protocol.err_oversized
    ~detail:
      (Printf.sprintf "request line exceeds %d bytes"
         t.config.max_request_bytes)

let handle_line t ~conn ~quota_used line =
  t.c.received <- t.c.received + 1;
  match Protocol.parse line with
  | Error reject ->
    t.c.protocol_errors <- t.c.protocol_errors + 1;
    Metrics.incr "serve.protocol-errors";
    `Reply (Protocol.reject_line reject)
  | Ok req -> (
    let id = req.Protocol.id in
    match req.Protocol.op with
    | Protocol.Ping -> `Reply (Protocol.ok_line ~id [ ("pong", Json.Bool true) ])
    | Protocol.Metrics ->
      `Reply (Protocol.ok_line ~id [ ("snapshot", snapshot_json t) ])
    | Protocol.Stats -> `Reply (Protocol.ok_line ~id (stats_fields t))
    | Protocol.Invalidate_cache ->
      let dropped = t.on_invalidate () in
      `Reply
        (Protocol.ok_line ~id
           [ ("invalidated", Json.Bool true); ("entries", Json.Int dropped) ])
    | Protocol.Drain ->
      drain t;
      `Drain (Protocol.ok_line ~id [ ("draining", Json.Bool true) ])
    | Protocol.S_repair | Protocol.U_repair | Protocol.Classify
    | Protocol.Stream ->
      if t.mode = `Draining then
        shed t ~id ~error_class:Protocol.err_draining
          ~detail:"server is draining; no new work is admitted"
      else if
        match t.config.quota with
        | Some q -> quota_used >= q
        | None -> false
      then
        shed t ~id ~error_class:Protocol.err_quota
          ~detail:
            (Printf.sprintf "connection quota of %d repair requests spent"
               (Option.get t.config.quota))
      else begin
        let depth = Queue.length t.queue in
        if depth >= t.config.queue_capacity then
          shed t ~id ~error_class:Protocol.err_overloaded
            ~detail:
              (Printf.sprintf "queue depth %d at capacity %d" depth
                 t.config.queue_capacity)
        else begin
          let admission =
            if depth >= t.config.degrade_watermark then Downgraded
            else Normal
          in
          t.c.admitted <- t.c.admitted + 1;
          Metrics.incr "serve.admitted";
          (* The deterministic request id: connection cookie × the
             engine's admission counter. Unique per engine lifetime,
             independent of scheduling, and cheap to grep for across the
             slow log, the trace ([args.req]), and client reports. *)
          let req_id = Printf.sprintf "c%d.%d" conn t.c.admitted in
          Queue.push
            { conn; request = req; admission; req_id;
              enqueued_at = Unix.gettimeofday () }
            t.queue;
          t.c.queue_depth_max <-
            max t.c.queue_depth_max (Queue.length t.queue);
          `Enqueued
        end
      end)

type exec = conn:int -> degraded:bool -> Protocol.request -> (string * Json.t) list

let take t =
  match Queue.take_opt t.queue with
  | Some p ->
    t.c.in_flight <- t.c.in_flight + 1;
    Some p
  | None -> None

(* The execute step is split in two so a domain pool can run the solver
   halves of several queued requests concurrently: [run_exec] is the
   pure half — solver call, isolation boundary, wall-clock — touching no
   engine state, so it is safe on a worker domain; [settle] is the
   mutating half — counters, metrics, the reply line — and always runs
   on the engine's owning domain, in take-order, preserving the
   accounting identity and the reply order of the sequential server.

   [run_exec] records the work under [Metrics.capture] with the trace
   request context set to [p.req_id]: on a worker domain the capture is
   the isolation the determinism contract needs anyway, and on the
   owner it makes the sequential path shape-identical — either way
   [settle] merges the capture, so the registry totals equal what
   inline recording would have produced, and the capture itself carries
   the request's own counters and span breakdown for the slow log. *)

type executed = {
  result : ((string * Json.t) list, string * string) result;
  wall_s : float;
  started_at : float;
  captured : Metrics.captured;
}

let run_exec ~exec p =
  let downgraded = p.admission = Downgraded in
  let t0 = Unix.gettimeofday () in
  let res, captured =
    Metrics.capture (fun () ->
        Trace.with_request p.req_id (fun () ->
            Metrics.with_span "serve.request" (fun () ->
                (* The per-request isolation boundary: classified errors
                   keep their class, everything else — including a stack
                   overflow from an adversarial instance — becomes an
                   [internal] reply. Nothing a request does can unwind
                   past this point. *)
                match exec ~conn:p.conn ~degraded:downgraded p.request with
                | fields -> Ok fields
                | exception E.Error e -> Error (E.class_name e, E.to_string e)
                | exception Stack_overflow ->
                  Error (Protocol.err_internal, "stack overflow")
                | exception exn ->
                  Error (Protocol.err_internal, Printexc.to_string exn))))
  in
  let result =
    match res with
    | Ok r -> r
    | Error exn ->
      (* Only reachable if the instrumentation wrappers themselves raise;
         the solver boundary above never lets an exception out. *)
      Error (Protocol.err_internal, Printexc.to_string exn)
  in
  { result; wall_s = Unix.gettimeofday () -. t0; started_at = t0; captured }

let rec span_json (s : Metrics.span) =
  Json.Obj
    [ ("name", Json.String s.name);
      ("count", Json.Int s.count);
      ("total_ms", Json.Float (s.total_s *. 1000.0));
      ("children", Json.List (List.map span_json s.children)) ]

let slow_record t p executed ~queue_wait_s ~outcome ~degraded =
  let captured_counter name =
    Option.value ~default:0
      (List.assoc_opt name (Metrics.captured_counters executed.captured))
  in
  Json.Obj
    [ ("slow", Json.Bool true);
      ("req", Json.String p.req_id);
      ("id", p.request.Protocol.id);
      ("op", Json.String (Protocol.op_name p.request.Protocol.op));
      ("conn", Json.Int p.conn);
      ("wall_ms", Json.Float (executed.wall_s *. 1000.0));
      ("queue_ms", Json.Float (queue_wait_s *. 1000.0));
      ( "admission",
        Json.String
          (match p.admission with
          | Normal -> "normal"
          | Downgraded -> "downgraded") );
      ("outcome", Json.String outcome);
      ("degraded", Json.Bool degraded);
      ( "cache",
        Json.Obj
          [ ("hit", Json.Int (captured_counter "serve.fd-cache.hit"));
            ("miss", Json.Int (captured_counter "serve.fd-cache.miss")) ] );
      ( "spans",
        Json.List
          (List.map span_json (Metrics.captured_spans executed.captured)) );
      ("queue_depth", Json.Int (Queue.length t.queue)) ]

let settle t p executed =
  let id = p.request.Protocol.id in
  let downgraded = p.admission = Downgraded in
  Metrics.merge executed.captured;
  t.c.in_flight <- t.c.in_flight - 1;
  let queue_wait_s = Float.max 0.0 (executed.started_at -. p.enqueued_at) in
  Metrics.observe "serve.queue-wait" queue_wait_s;
  Metrics.observe
    ("serve." ^ Protocol.op_name p.request.Protocol.op)
    executed.wall_s;
  Metrics.incr "serve.requests";
  let reply, outcome, degraded =
    match executed.result with
    | Ok fields ->
      t.c.completed <- t.c.completed + 1;
      let solver_degraded =
        match List.assoc_opt "degraded" fields with
        | Some (Json.Bool b) -> b
        | _ -> false
      in
      let degraded = downgraded || solver_degraded in
      if degraded then begin
        t.c.degraded <- t.c.degraded + 1;
        Metrics.incr "serve.degraded"
      end;
      let fields =
        List.filter (fun (k, _) -> k <> "degraded") fields
        @ [ ("degraded", Json.Bool degraded) ]
        @ if downgraded then [ ("downgraded", Json.String "overload") ] else []
      in
      (Protocol.ok_line ~id fields, "ok", degraded)
    | Error (error_class, detail) ->
      t.c.quarantined <- t.c.quarantined + 1;
      Metrics.incr "serve.quarantined";
      (Protocol.error_line ~id ~error_class ~detail, error_class, false)
  in
  (match t.config.slow_ms with
  | Some threshold_ms when executed.wall_s *. 1000.0 >= threshold_ms ->
    Metrics.incr "serve.slow";
    t.on_slow (slow_record t p executed ~queue_wait_s ~outcome ~degraded)
  | _ -> ());
  reply

let execute t ~exec p = settle t p (run_exec ~exec p)

let cancel_remaining t =
  let cancelled = ref [] in
  Queue.iter
    (fun p ->
      t.c.cancelled <- t.c.cancelled + 1;
      Metrics.incr "serve.cancelled";
      cancelled :=
        ( p.conn,
          Protocol.error_line ~id:p.request.Protocol.id
            ~error_class:Protocol.err_cancelled
            ~detail:"drain deadline expired before the request ran" )
        :: !cancelled)
    t.queue;
  Queue.clear t.queue;
  List.rev !cancelled
