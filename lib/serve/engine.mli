(** The serving engine: admission control, load shedding, per-request
    isolation, and drain accounting — everything about the daemon's
    failure behavior {e except} sockets, so the whole overload state
    machine is drivable deterministically from tests.

    {2 Watermark / degradation state machine}

    Repair requests pass admission; control requests ([ping], [metrics],
    [invalidate-cache], [drain]) are answered inline and never queue.
    Admission looks at the queue depth [q] against two watermarks:

    - [q < degrade_watermark]: admit {b Normal} — the request runs under
      its own budget with its requested strategy;
    - [degrade_watermark <= q < queue_capacity]: admit {b Downgraded} —
      the request is forced down the existing budget ladder
      (poly → exact → approx) to its certified-approximation rung, so
      the server trades answer optimality for queue drainage before it
      ever refuses work. The response carries [degraded: true] and
      ["downgraded": "overload"];
    - [q >= queue_capacity]: {b shed} — an immediate structured
      [overloaded] error. Never a hang, never an unbounded queue.

    A per-connection quota (when configured) rejects further repair
    requests from one client with [quota-exceeded] — one misbehaving
    client cannot monopolize the queue.

    {2 Per-request isolation}

    {!execute} runs one admitted request under a
    {!Repair_runtime.Repair_error} boundary: classified errors and
    arbitrary exceptions become structured error replies and count the
    request {e quarantined}; the engine (and the server around it) keeps
    serving. Latency is observed into the per-endpoint
    ["serve.<op>"] histogram of {!Repair_obs.Metrics}.

    {2 Accounting invariant}

    Every admitted request ends in exactly one of [completed],
    [quarantined], or [cancelled] (drain-deadline cancellation):
    [admitted = completed + quarantined + cancelled + still-queued],
    checked by {!balanced} and asserted by the overload tests. Shed and
    malformed requests are answered but never admitted. *)

module Json = Repair_obs.Json

type config = {
  queue_capacity : int;  (** shed watermark: hard queue bound *)
  degrade_watermark : int;  (** depth at which admissions downgrade *)
  quota : int option;  (** per-connection admitted-request quota *)
  default_timeout_s : float option;
      (** wall budget for requests that set none (server-side cap) *)
  max_steps_cap : int option;  (** hard cap on per-request step budgets *)
  drain_deadline_s : float;
      (** seconds granted to in-flight + queued work after drain begins *)
  max_request_bytes : int;  (** longest admissible request line *)
  read_deadline_s : float option;
      (** slow-loris defense: a connection with a {e partial} request
          line buffered must make read progress within this window or
          the server evicts it ([None] disables; wholly idle keep-alive
          connections are never evicted) *)
  write_deadline_s : float option;
      (** slow-reader defense: a connection with pending replies must
          accept bytes within this window or be evicted ([None]
          disables) *)
  slow_ms : float option;
      (** slow-request threshold: a settled request whose solver wall
          time is at least this many milliseconds fires the [on_slow]
          callback with a structured JSON record ([None] disables) *)
  stats_interval_s : float;  (** width of one time-series window *)
  stats_windows : int;  (** time-series ring capacity *)
}

(** queue 64, degrade at 32, no quota, 10 s default request budget, no
    step cap, 5 s drain deadline, 8 MiB request lines, 30 s read/write
    deadlines, no slow threshold, 60 × 1 s stats windows *)
val default_config : config

type admission = Normal | Downgraded

type pending = {
  conn : int;  (** connection cookie, routed back by the server *)
  request : Protocol.request;
  admission : admission;
  req_id : string;
      (** deterministic request id, ["c<conn>.<admission #>"] — carried
          by trace events ([args.req]) and slow-request records *)
  enqueued_at : float;  (** admission wall-clock, for queue-wait *)
}

type t

(** [create ?on_invalidate ?on_slow ?clock config] — [on_invalidate]
    backs the [invalidate-cache] op and returns how many entries were
    dropped (default: none); [on_slow] receives one JSON record per
    request at or above [slow_ms] (default: drop them); [clock] drives
    the time-series windows only (injectable for deterministic tests;
    default [Unix.gettimeofday]).
    @raise Invalid_argument on nonsensical watermarks (capacity < 1,
    degrade watermark outside [1..capacity], non-positive deadlines,
    byte limit, stats interval, or window count). *)
val create :
  ?on_invalidate:(unit -> int) ->
  ?on_slow:(Json.t -> unit) ->
  ?clock:(unit -> float) ->
  config ->
  t

val config : t -> config
val mode : t -> [ `Accepting | `Draining ]

(** [drain t] stops admission; already-queued work remains runnable. *)
val drain : t -> unit

val queue_depth : t -> int

(** Requests taken off the queue but not yet settled. *)
val in_flight : t -> int

(** [handle_line t ~conn ~quota_used line] processes one request line:
    - [`Reply line] — answer immediately (control op, malformed line, or
      a shed request);
    - [`Enqueued] — repair request admitted; the server executes it
      later via {!take}/{!execute} (the caller should count it against
      the connection's quota);
    - [`Drain line] — a [drain] op: reply {e and} stop admission. *)
val handle_line :
  t ->
  conn:int ->
  quota_used:int ->
  string ->
  [ `Reply of string | `Enqueued | `Drain of string ]

(** [reject_oversized t] accounts one over-limit line and returns its
    error reply ([oversized]). The server calls this instead of
    {!handle_line} when a line exceeds [max_request_bytes] — the line
    itself need not be materialized. *)
val reject_oversized : t -> string

(** The executor: produces the [ok] response fields for one request.
    [conn] is the connection cookie of the admitting connection (the
    [c<conn>] of the request id) — per-session executors (the stream op)
    key their state on it. [degraded] is true for downgraded admissions —
    implementations run the certified-approximation rung. May raise
    {!Repair_runtime.Repair_error.Error} (classified reply) or anything
    else (internal-error reply); {!execute} isolates both. *)
type exec =
  conn:int -> degraded:bool -> Protocol.request -> (string * Json.t) list

(** [take t] pops the oldest admitted request, if any. *)
val take : t -> pending option

(** [execute t ~exec p] runs one admitted request under the isolation
    boundary and returns its response line. Counts [completed] (or
    [quarantined] on failure) and, for downgraded admissions or
    solver-side degradation, [degraded]. Equal to
    [settle t p (run_exec ~exec p)]. *)
val execute : t -> exec:exec -> pending -> string

(** The outcome of the pure half of {!execute}: the solver result (or
    its classified error), the wall-clock spent, and the metrics/span
    capture the work recorded. *)
type executed

(** [run_exec ~exec p] — the pure half of {!execute}: runs the solver
    under the per-request isolation boundary without touching any
    engine state, so a {!Repair_par.Pool} may run several queued
    requests' [run_exec] concurrently on worker domains. The work runs
    under {!Repair_obs.Metrics.capture} with the trace request context
    set to [p.req_id], so worker-domain spans carry the request id and
    the capture travels back with the result. *)
val run_exec : exec:exec -> pending -> executed

(** [settle t p executed] — the mutating half of {!execute}: merges the
    capture into the owning domain's registry, records latency,
    queue-wait, and counters, fires the slow-request callback when the
    [slow_ms] threshold is met, and builds the reply line. Must run on
    the engine's owning domain; settling a batch in take-order preserves
    the sequential server's accounting and reply order exactly. *)
val settle : t -> pending -> executed -> string

(** [cancel_remaining t] empties the queue, counting each request
    [cancelled], and returns the [(conn, reply-line)] pairs to send —
    the drain deadline has expired. *)
val cancel_remaining : t -> (int * string) list

(** {2 Introspection} *)

(** The ["serve"] accounting section: received/admitted/completed/
    degraded/shed/quarantined/cancelled/protocol_errors counters, queue
    depth high-water mark, and the current mode. *)
val accounting_json : t -> Json.t

(** [snapshot_json t] — the full metrics snapshot
    ({!Repair_obs.Metrics.snapshot}) with the ["serve"] accounting
    section prepended; the payload of the [metrics] op and of the final
    drain flush. *)
val snapshot_json : t -> Json.t

(** [balanced t] — does the accounting identity hold?
    [admitted = completed + quarantined + cancelled + queue_depth]. *)
val balanced : t -> bool

(** {2 Live telemetry} *)

(** The engine's rolling time-series over the metrics registry (plus the
    [serve.queue_depth] / [serve.in_flight] gauges). Windows close only
    via {!tick_stats}. *)
val timeseries : t -> Repair_obs.Timeseries.t

(** [tick_stats t] — close a time-series window if [stats_interval_s]
    has elapsed on the engine's clock; cheap no-op otherwise. The server
    poll loop calls this every iteration. *)
val tick_stats : t -> unit

(** The [stats] op's response fields: [("stats", timeseries)],
    [("totals", cumulative counters)], [("serve", accounting)],
    [("exposition", text)]. *)
val stats_fields : t -> (string * Json.t) list

(** The Prometheus-style text exposition of the current registry state
    (cumulative counters, live gauges, cumulative histograms) via
    {!Repair_obs.Expo.render}. *)
val exposition : t -> string

type counters = {
  received : int;  (** request lines seen, malformed included *)
  admitted : int;
  completed : int;
  degraded : int;  (** completed with a degraded/downgraded answer *)
  shed : int;  (** overloaded + quota-exceeded + draining rejections *)
  quarantined : int;  (** isolated per-request failures *)
  cancelled : int;  (** drain-deadline cancellations *)
  protocol_errors : int;  (** malformed or oversized lines *)
  queue_depth_max : int;
}

val counters : t -> counters
