open Repair_runtime

let exact ?(budget = Budget.unlimited ()) f =
  Repair_obs.Metrics.with_span "max-sat.exact" @@ fun () ->
  let n = Cnf.n_vars f in
  if n > 24 then invalid_arg "Max_sat.exact: too many variables";
  let best = ref (Array.make (max n 1) false) in
  let best_count = ref (Cnf.count_satisfied !best f) in
  let assignment = Array.make (max n 1) false in
  let total = 1 lsl n in
  for mask = 0 to total - 1 do
    Budget.tick ~phase:"max-sat" budget;
    for v = 0 to n - 1 do
      assignment.(v) <- mask land (1 lsl v) <> 0
    done;
    let c = Cnf.count_satisfied assignment f in
    if c > !best_count then begin
      best := Array.copy assignment;
      best_count := c
    end
  done;
  (!best, !best_count)

let local_search ?(budget = Budget.unlimited ()) ~seed ~restarts f =
  Repair_obs.Metrics.with_span "max-sat.local-search" @@ fun () ->
  let n = Cnf.n_vars f in
  let rng = Random.State.make [| seed |] in
  let best = ref (Array.make (max n 1) false) in
  let best_count = ref (Cnf.count_satisfied !best f) in
  for _ = 1 to max 1 restarts do
    let a = Array.init (max n 1) (fun _ -> Random.State.bool rng) in
    let improved = ref true in
    while !improved do
      Budget.tick ~phase:"max-sat-local" budget;
      improved := false;
      let base = Cnf.count_satisfied a f in
      for v = 0 to n - 1 do
        a.(v) <- not a.(v);
        if Cnf.count_satisfied a f > base then improved := true
        else a.(v) <- not a.(v)
      done
    done;
    let c = Cnf.count_satisfied a f in
    if c > !best_count then begin
      best := Array.copy a;
      best_count := c
    end
  done;
  (!best, !best_count)

let min_unsatisfied ?budget f =
  let _, k = exact ?budget f in
  Cnf.n_clauses f - k
