(** Single entry point for the library: re-exports of every subsystem plus
    a high-level driver that picks the right algorithm from the paper's
    dichotomies.

    {1 Layout}

    - {!Relational}: values, schemas, tuples, weighted tables, CSV;
    - {!Fd}: functional dependencies, closures, covers, lhs analysis;
    - {!Graph}: vertex cover, bipartite matching, triangle packing;
    - {!Sat}: CNF and MAX-SAT (hardness-gadget sources);
    - {!Srepair}: Algorithm 1, exact baseline, 2-approximation;
    - {!Urepair}: tractable U-repairs, 2·mlc approximation, exact search;
    - {!Dichotomy}: OSRSucceeds, five-class certificates, fact-wise
      reductions;
    - {!Mpd}: the Most Probable Database problem;
    - {!Reductions}: executable hardness gadgets;
    - {!Workload}: datasets and generators;
    - {!Enumerate}: S-repair enumeration and optimal-repair counting
      (the PODS'17 connection, reference [26]);
    - {!Cfd}: conditional FDs, {!Denial}: binary denial constraints, and
      {!Mixed}: mixed deletion/update repairs, and {!Prioritized}:
      prioritized repairing — the Section 5 extension directions;
    - {!Cqa}: consistent query answering over the repair space;
    - {!Cleaning}: dirtiness estimation and interactive cleaning sessions
      (the human-in-the-loop workflow of Section 1).

    The {!Driver} chooses automatically: polynomial algorithms when the
    dichotomy permits, exact search on small instances otherwise, and
    certified approximations at scale. {!Runtime} supplies the resilience
    layer — cooperative budgets, the structured error taxonomy, and the
    deterministic fault injector — and the driver degrades along the
    ladder poly → exact → approx whenever a budget runs out. {!Obs} is
    the observability layer: counters and hierarchical spans the solvers
    report into (off by default; see {!Obs.Metrics}). *)

module Relational = Repair_relational
module Fd = Repair_fd
module Graph = Repair_graph
module Sat = Repair_sat
module Srepair = Repair_srepair
module Urepair = Repair_urepair
module Dichotomy = Repair_dichotomy
module Mpd = Repair_mpd
module Reductions = Repair_reductions
module Workload = Repair_workload
module Enumerate = Repair_enumerate
module Cfd = Repair_cfd
module Denial = Repair_denial
module Mixed = Repair_mixed
module Cqa = Repair_cqa
module Prioritized = Repair_prioritized
module Cleaning = Repair_cleaning
module Runtime = Repair_runtime
module Obs = Repair_obs

(** The domain-pool parallelism layer ({!Repair_par}): a fixed-size
    domain pool with bit-deterministic batch semantics (DESIGN §13).
    Every [?pool]/[?domains] parameter below threads through to it;
    results are bit-identical with and without a pool. *)
module Par = Repair_par

(** The incremental streaming repair layer ({!Repair_stream}):
    delta-driven sessions that keep a repair fresh at O(affected-group)
    cost per update (DESIGN §16). *)
module Stream = Repair_stream

module Driver : sig
  open Repair_relational
  open Repair_fd

  type strategy =
    | Auto  (** poly if tractable, exact if small, else approximate *)
    | Poly  (** insist on the paper's polynomial algorithm *)
    | Exact  (** insist on the exponential baseline *)
    | Approximate  (** insist on the certified approximation *)

  (** Budget-exhaustion policy. [`Degrade] (the default) walks down the
      degradation ladder — the exact or polynomial solver that ran out of
      budget is replaced by the certified polynomial approximation, which
      runs unbudgeted, so a repair is always produced. [`Fail] surfaces
      the {!Runtime.Repair_error.Budget_exhausted} error instead. *)
  type on_budget = [ `Degrade | `Fail ]

  type report = {
    result : Table.t;
    distance : float;
    optimal : bool;  (** distance is provably minimal *)
    ratio : float;  (** certified bound; 1.0 when optimal *)
    method_used : string;
    degraded : bool;
        (** a budget/fault forced a fallback below the requested rung *)
    fallbacks : string list;
        (** the fallback edges that fired, in firing order; empty unless
            [degraded] *)
  }

  (** [s_repair ?pool ?strategy ?budget ?on_budget d tbl] computes a
      subset repair. The [budget] (default unlimited) is polled
      cooperatively inside the solvers' hot loops; on exhaustion the
      driver degrades or fails per [on_budget]. With [pool], the poly
      rung runs {!Srepair.Opt_s_repair.run_par} and the approximation
      rung builds its conflict graph through
      {!Srepair.S_approx.approx2_par} — the report (distance, method,
      degraded flag, fallbacks) is bit-identical either way.

      @raise Failure if [Poly] was requested on the APX-hard side.
      @raise Runtime.Repair_error.Error on budget exhaustion under
      [`Fail]. *)
  val s_repair :
    ?pool:Repair_par.Pool.t ->
    ?strategy:strategy ->
    ?budget:Runtime.Budget.t ->
    ?on_budget:on_budget ->
    Fd_set.t ->
    Table.t ->
    report

  (** [s_repair_result] is {!s_repair} with every failure returned as a
      structured {!Runtime.Repair_error.t} instead of raised. *)
  val s_repair_result :
    ?pool:Repair_par.Pool.t ->
    ?strategy:strategy ->
    ?budget:Runtime.Budget.t ->
    ?on_budget:on_budget ->
    Fd_set.t ->
    Table.t ->
    (report, Runtime.Repair_error.t) result

  (** [u_repair ?pool ?strategy ?budget ?on_budget d tbl] computes an
      update repair; budget and degradation semantics as in {!s_repair}.
      With [pool], the poly rung solves Theorem 4.1's attribute-disjoint
      components as pool tasks ({!Urepair.Opt_u_repair.solve_par}) —
      again bit-identical. *)
  val u_repair :
    ?pool:Repair_par.Pool.t ->
    ?strategy:strategy ->
    ?budget:Runtime.Budget.t ->
    ?on_budget:on_budget ->
    Fd_set.t ->
    Table.t ->
    report

  val u_repair_result :
    ?pool:Repair_par.Pool.t ->
    ?strategy:strategy ->
    ?budget:Runtime.Budget.t ->
    ?on_budget:on_budget ->
    Fd_set.t ->
    Table.t ->
    (report, Runtime.Repair_error.t) result

  (** [s_repair_database ?strategy ?budget ?on_budget constraints db]
      repairs every relation of a multi-relation database by deletions —
      FDs never span relations, so per-relation repairs compose (paper,
      Section 1). [constraints] maps relation names to their FD sets
      (missing names mean no constraints). A shared [budget] bounds the
      whole pass. Returns the repaired database and the total deleted
      weight. *)
  val s_repair_database :
    ?strategy:strategy ->
    ?budget:Runtime.Budget.t ->
    ?on_budget:on_budget ->
    (string * Fd_set.t) list ->
    Database.t ->
    Database.t * float

  (** [describe d] is a human-readable complexity report for Δ: the
      OSRSucceeds trace or the hardness certificate, U-repair
      tractability, and the approximation ratios of Theorems 4.12/4.13. *)
  val describe : Fd_set.t -> string
end

(** The journaled batch runner ({!Repair_batch}) wired to the {!Driver}:
    a manifest of repair jobs executed with per-job isolation, an
    fsync'd write-ahead journal, checkpoint/resume, bounded retries with
    deterministic exponential backoff, and poison-job quarantine. See
    {!Repair_batch.Runner} for the protocol and DESIGN §9 for the
    journal format. *)
module Batch : sig
  module Manifest = Repair_batch.Manifest
  module Journal = Repair_batch.Journal
  module Runner = Repair_batch.Runner

  (** [exec_job job] parses the job's FDs, loads its input table
      (CSV/JSONL by extension), runs the {!Driver} under the job's
      budget/strategy/policy, writes the repaired table to [job.output]
      when set, and returns the outcome.

      @raise Runtime.Repair_error.Error on any per-job failure — the
      runner catches and classifies it. *)
  val exec_job : Repair_batch.Manifest.job -> Repair_batch.Runner.outcome

  (** [run ?pool ?retries ?backoff_ms ?resume ~journal manifest] is
      {!Repair_batch.Runner.run} with {!exec_job} as the executor. With
      [pool], first attempts run speculatively on the pool; the journal
      is byte-identical (modulo wall-clock fields) either way. *)
  val run :
    ?pool:Repair_par.Pool.t ->
    ?retries:int ->
    ?backoff_ms:int ->
    ?resume:bool ->
    journal:string ->
    Repair_batch.Manifest.t ->
    Repair_batch.Runner.summary
end

(** The serving daemon ({!Repair_serve}) wired to the {!Driver}: the
    newline-delimited JSON protocol served from a single-threaded select
    loop, with watermark admission control (downgrade, then shed),
    per-request budget/error isolation, a bounded LRU of warm FD-set
    state, and graceful drain. See {!Repair_serve.Server} for the event
    loop and DESIGN §12 for the overload ladder. *)
module Serve : sig
  open Repair_fd
  module Protocol = Repair_serve.Protocol
  module Cache = Repair_serve.Cache
  module Engine = Repair_serve.Engine
  module Server = Repair_serve.Server

  (** Warm per-FD-set state kept in the serving cache: the parsed and
      normalized sets, both dichotomy verdicts, and the lazily-rendered
      complexity report. Keyed by the raw FD string of the request. *)
  type warm = {
    fds : Fd_set.t;
    normalized : Fd_set.t;
    s_tractable : bool;
    u_tractable : bool;
    describe : string Lazy.t;
  }

  val default_cache_capacity : int

  (** [make_cache ()] is the warm-state LRU ([capacity] defaults to
      {!default_cache_capacity}), registered under ["serve.fd-cache"]
      in {!Obs.Metrics}. *)
  val make_cache : ?capacity:int -> unit -> (string, warm) Cache.t

  (** One connection's streaming repair session (DESIGN §16): the
      {!Stream.Session} plus the FD text it was initialized under. *)
  type session_slot = {
    fds_text : string;
    session : Repair_stream.Session.t;
  }

  val default_session_capacity : int

  (** [make_sessions ()] is the per-connection stream-session LRU,
      registered under ["stream.sessions"] in {!Obs.Metrics}. Keyed by
      the engine's connection cookie. *)
  val make_sessions : ?capacity:int -> unit -> (int, session_slot) Cache.t

  (** [exec ~cache ~sessions ~mutex ~conn ~degraded ~budget req]
      executes one repair request against the {!Driver}: [classify]
      answers from the warm cache; [s-repair]/[u-repair] run the ladder
      with [on_budget:`Degrade] under [budget], forcing the
      [Approximate] rung when [degraded]; [stream] applies the
      request's deltas to connection [conn]'s session under [mutex] and
      returns the refreshed summary (a nonempty [table] field
      (re)initializes the session, an empty one continues it).

      @raise Runtime.Repair_error.Error on any classified failure — the
      engine catches it at the isolation boundary.
      @raise Invalid_argument on control ops (the engine answers those). *)
  val exec :
    cache:(string, warm) Cache.t ->
    sessions:(int, session_slot) Cache.t ->
    mutex:Mutex.t ->
    conn:int ->
    degraded:bool ->
    budget:Runtime.Budget.t ->
    Protocol.request ->
    (string * Obs.Json.t) list

  (** [run ?config ?cache_capacity ?metrics_out ?slow_log ?domains
      listen] is {!Server.run} with a fresh warm cache, a fresh stream
      session registry, and {!exec}; [invalidate] requests clear both. [slow_log] is the
      slow-request record destination and [trace_out] the Chrome
      trace-event destination (see {!Server.run}). With [domains > 1]
      (default [1]) the serve owns a {!Par.Pool} for its lifetime and
      executes queued requests' solver halves on it, batch by batch,
      under the unchanged admission ladder. Returns the process exit
      code. *)
  val run :
    ?config:Engine.config ->
    ?cache_capacity:int ->
    ?metrics_out:string ->
    ?slow_log:string ->
    ?trace_out:string ->
    ?domains:int ->
    Server.listen ->
    int
end
